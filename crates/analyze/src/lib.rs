//! # mpise-analyze — static verification for the mpise stack
//!
//! The paper's security claim rests on the kernels being constant
//! time and on the custom encodings being exactly those of Table 1.
//! This crate *checks* both claims statically:
//!
//! * [`taint`] — a secret-taint dataflow analysis over decoded
//!   [`Program`](mpise_sim::asm::Program)s. Callers declare which
//!   registers and memory regions hold secrets; the analysis
//!   propagates taint through registers, memory and custom (XMUL)
//!   instructions and reports secret-dependent branches,
//!   secret-addressed memory accesses, and secret operands reaching
//!   the variable-latency divider as structured
//!   [`Diagnostic`](report::Diagnostic)s.
//! * [`lint`] — encoding lints over an
//!   [`IsaExtension`](mpise_sim::ext::IsaExtension): Table 1
//!   conformance, base-opcode collisions, intra-extension ambiguity,
//!   and encode→decode round-trips.
//!
//! Both passes are wired into the `ctcheck` binary of `mpise-bench`,
//! which gates CI.
//!
//! ## Example
//!
//! ```
//! use mpise_analyze::taint::{analyze_program, AnalysisOptions, Secrecy, TaintSpec};
//! use mpise_sim::asm::Program;
//! use mpise_sim::ext::IsaExtension;
//! use mpise_sim::inst::{BranchOp, Inst, LoadOp};
//! use mpise_sim::Reg;
//!
//! let mut spec = TaintSpec::new();
//! let key = spec.region("key", Secrecy::Secret);
//! spec.entry_pointer(Reg::A1, key);
//!
//! let leaky = Program::from_insts(vec![
//!     Inst::Load { op: LoadOp::Ld, rd: Reg::T0, rs1: Reg::A1, offset: 0 },
//!     Inst::Branch { op: BranchOp::Bne, rs1: Reg::T0, rs2: Reg::Zero, offset: 8 },
//!     Inst::Ebreak,
//! ]);
//! let report = analyze_program(
//!     &leaky,
//!     &IsaExtension::new("rv64im"),
//!     &spec,
//!     &AnalysisOptions::default(),
//! );
//! assert!(!report.passed());
//! assert_eq!(report.diagnostics[0].pc, 4);
//! ```

pub mod lint;
pub mod report;
pub mod taint;

pub use lint::{lint_extension, LintFinding, LintLevel, LintReport};
pub use report::{Diagnostic, TaintReport, ViolationKind};
pub use taint::{analyze_program, AnalysisOptions, RegionId, Secrecy, TaintSpec};
