//! ISA encoding lints for custom-instruction extensions.
//!
//! Validates every [`CustomInstDef`] registered in an [`IsaExtension`]
//! against the paper's Table 1 contract and against the structural
//! rules of the RV64 encoding space. Related reproduction efforts
//! report opcode/funct collisions as the single most common ISE bug,
//! so the checks are deliberately paranoid:
//!
//! 1. **field ranges** — opcode fits 7 bits with the 32-bit-length
//!    marker `0b11` in its low bits, funct3 fits 3 bits, funct2 fits
//!    2 bits;
//! 2. **opcode space** — the major opcode collides with none of the
//!    base RV64IM opcodes the decoder claims (error) and lies in one
//!    of the four reserved *custom-N* spaces (warning otherwise);
//! 3. **encode→decode round-trips** — for a grid of operand values,
//!    [`encode_custom`]/[`decode_custom_operands`] invert each other,
//!    [`IsaExtension::match_encoding`] resolves the raw word back to
//!    the same definition (catching intra-extension overlaps, e.g. an
//!    R4/RShamt pair sharing opcode+funct3 that becomes ambiguous when
//!    `rs3` sets bit 31), and the full [`encode`]/[`decode`] pipeline
//!    reproduces the instruction;
//! 4. **Table 1 contract** — the paper's six mnemonics carry exactly
//!    the encodings of Table 1 / Figures 1–3.

use mpise_sim::decode::decode;
use mpise_sim::encode::encode;
use mpise_sim::ext::{
    decode_custom_operands, encode_custom, CustomFormat, CustomInstDef, IsaExtension,
};
use mpise_sim::inst::Inst;
use mpise_sim::Reg;
use std::fmt;

/// Base RV64IM major opcodes claimed by `mpise_sim::decode`.
pub const BASE_RV64_OPCODES: [u8; 13] = [
    0b0110111, // lui
    0b0010111, // auipc
    0b1101111, // jal
    0b1100111, // jalr
    0b1100011, // branches
    0b0000011, // loads
    0b0100011, // stores
    0b0010011, // op-imm
    0b0011011, // op-imm-32
    0b0110011, // op
    0b0111011, // op-32
    0b0001111, // fence
    0b1110011, // system
];

/// The four major opcodes RISC-V reserves for custom extensions.
pub const CUSTOM_OPCODES: [u8; 4] = [
    0b0001011, // custom-0
    0b0101011, // custom-1
    0b1011011, // custom-2
    0b1111011, // custom-3
];

/// The paper's Table 1: expected encoding per mnemonic. `cadd` and
/// `madd57lu` intentionally share an encoding point — they belong to
/// *alternative* extensions that are never merged.
const TABLE1: [(&str, CustomFormat); 6] = [
    (
        "maddlu",
        CustomFormat::R4 {
            opcode: 0b1111011,
            funct3: 0b111,
            funct2: 0b00,
        },
    ),
    (
        "maddhu",
        CustomFormat::R4 {
            opcode: 0b1111011,
            funct3: 0b111,
            funct2: 0b01,
        },
    ),
    (
        "cadd",
        CustomFormat::R4 {
            opcode: 0b1111011,
            funct3: 0b111,
            funct2: 0b10,
        },
    ),
    (
        "madd57lu",
        CustomFormat::R4 {
            opcode: 0b1111011,
            funct3: 0b111,
            funct2: 0b10,
        },
    ),
    (
        "madd57hu",
        CustomFormat::R4 {
            opcode: 0b1111011,
            funct3: 0b111,
            funct2: 0b11,
        },
    ),
    (
        "sraiadd",
        CustomFormat::RShamt {
            opcode: 0b0101011,
            funct3: 0b111,
            bit31: true,
        },
    ),
];

/// Severity of a [`LintFinding`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintLevel {
    /// The encoding is wrong or ambiguous; the extension must not ship.
    Error,
    /// Unusual but functional (e.g. an opcode outside the custom-N
    /// spaces).
    Warning,
}

/// One lint finding against one instruction definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Mnemonic of the offending definition.
    pub mnemonic: String,
    /// Severity.
    pub level: LintLevel,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let tag = match self.level {
            LintLevel::Error => "error",
            LintLevel::Warning => "warning",
        };
        write!(f, "{tag}: `{}`: {}", self.mnemonic, self.message)
    }
}

/// Result of linting one extension.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Name of the linted extension.
    pub ext_name: String,
    /// Number of definitions checked.
    pub checked: usize,
    /// All findings, errors first.
    pub findings: Vec<LintFinding>,
}

impl LintReport {
    /// Whether the extension has no error-level findings.
    pub fn passed(&self) -> bool {
        self.findings.iter().all(|f| f.level != LintLevel::Error)
    }

    /// Renders every finding on its own line.
    pub fn render(&self) -> String {
        self.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Register values exercising every field boundary, including `rs3`
/// values with bit 31 of the encoding both clear (`< x16`) and set
/// (`>= x16`) — the case that exposes R4/RShamt ambiguity.
const SAMPLE_REGS: [Reg; 6] = [Reg::Zero, Reg::Ra, Reg::A0, Reg::A5, Reg::T3, Reg::T6];

/// Shift amounts exercising the 6-bit imm field of RShamt.
const SAMPLE_IMMS: [u8; 5] = [0, 1, 7, 57, 63];

/// Lints one extension.
pub fn lint_extension(ext: &IsaExtension) -> LintReport {
    let mut findings = Vec::new();
    for def in ext.defs() {
        lint_fields(def, &mut findings);
        lint_opcode_space(def, &mut findings);
        lint_round_trip(ext, def, &mut findings);
        lint_table1(def, &mut findings);
    }
    lint_cross_format(ext, &mut findings);
    findings.sort_by_key(|f| f.level == LintLevel::Warning);
    LintReport {
        ext_name: ext.name().to_owned(),
        checked: ext.defs().len(),
        findings,
    }
}

fn err(def: &CustomInstDef, message: String) -> LintFinding {
    LintFinding {
        mnemonic: def.mnemonic.to_owned(),
        level: LintLevel::Error,
        message,
    }
}

fn warn(def: &CustomInstDef, message: String) -> LintFinding {
    LintFinding {
        mnemonic: def.mnemonic.to_owned(),
        level: LintLevel::Warning,
        message,
    }
}

fn lint_fields(def: &CustomInstDef, findings: &mut Vec<LintFinding>) {
    let opcode = def.format.opcode();
    if opcode >= 0x80 {
        findings.push(err(def, format!("major opcode {opcode:#x} exceeds 7 bits")));
    }
    if opcode & 0b11 != 0b11 {
        findings.push(err(
            def,
            format!(
                "major opcode {opcode:#09b} lies in the compressed (16-bit) space; \
                 32-bit encodings need low bits 0b11"
            ),
        ));
    }
    match def.format {
        CustomFormat::R4 { funct3, funct2, .. } => {
            if funct3 >= 8 {
                findings.push(err(def, format!("funct3 {funct3:#x} exceeds 3 bits")));
            }
            if funct2 >= 4 {
                findings.push(err(def, format!("funct2 {funct2:#x} exceeds 2 bits")));
            }
        }
        CustomFormat::RShamt { funct3, .. } => {
            if funct3 >= 8 {
                findings.push(err(def, format!("funct3 {funct3:#x} exceeds 3 bits")));
            }
        }
    }
}

fn lint_opcode_space(def: &CustomInstDef, findings: &mut Vec<LintFinding>) {
    let opcode = def.format.opcode();
    if BASE_RV64_OPCODES.contains(&opcode) {
        findings.push(err(
            def,
            format!(
                "major opcode {opcode:#09b} collides with a base RV64IM opcode \
                 (the decoder resolves base opcodes first, so this instruction \
                 is unreachable or corrupts base decoding)"
            ),
        ));
    } else if !CUSTOM_OPCODES.contains(&opcode) {
        findings.push(warn(
            def,
            format!(
                "major opcode {opcode:#09b} is outside the reserved custom-0..3 \
                 spaces; future standard extensions may claim it"
            ),
        ));
    }
}

fn lint_round_trip(ext: &IsaExtension, def: &CustomInstDef, findings: &mut Vec<LintFinding>) {
    for &rd in &SAMPLE_REGS {
        for &rs1 in &SAMPLE_REGS {
            for &rs2 in &SAMPLE_REGS {
                let (rs3s, imms): (&[Reg], &[u8]) = if def.format.has_rs3() {
                    (&SAMPLE_REGS, &[0])
                } else {
                    (&[Reg::Zero], &SAMPLE_IMMS)
                };
                for &rs3 in rs3s {
                    for &imm in imms {
                        if !round_trip_once(ext, def, rd, rs1, rs2, rs3, imm, findings) {
                            return; // one counterexample per def is enough
                        }
                    }
                }
            }
        }
    }
}

/// Checks one operand assignment; returns `false` on the first finding
/// so the caller can stop early.
#[allow(clippy::too_many_arguments)]
fn round_trip_once(
    ext: &IsaExtension,
    def: &CustomInstDef,
    rd: Reg,
    rs1: Reg,
    rs2: Reg,
    rs3: Reg,
    imm: u8,
    findings: &mut Vec<LintFinding>,
) -> bool {
    let raw = encode_custom(def.format, rd, rs1, rs2, rs3, imm);
    let (drd, drs1, drs2, drs3, dimm) = decode_custom_operands(def.format, raw);
    if (drd, drs1, drs2, drs3, dimm) != (rd, rs1, rs2, rs3, imm) {
        findings.push(err(
            def,
            format!(
                "field round-trip mismatch: encoded ({rd}, {rs1}, {rs2}, {rs3}, {imm}), \
                 decoded ({drd}, {drs1}, {drs2}, {drs3}, {dimm}) from raw {raw:#010x}"
            ),
        ));
        return false;
    }
    match ext.match_encoding(raw) {
        Some(hit) if hit.id == def.id => {}
        Some(hit) => {
            findings.push(err(
                def,
                format!(
                    "encoding overlap: raw {raw:#010x} (operands {rd}, {rs1}, {rs2}, \
                     {rs3}/{imm}) decodes as `{}` — ambiguous encoding points within \
                     the extension",
                    hit.mnemonic
                ),
            ));
            return false;
        }
        None => {
            findings.push(err(
                def,
                format!("raw {raw:#010x} does not match any definition of its own extension"),
            ));
            return false;
        }
    }
    // Full pipeline: Inst -> encode -> decode -> Inst.
    let inst = Inst::Custom {
        id: def.id,
        rd,
        rs1,
        rs2,
        rs3: if def.format.has_rs3() { rs3 } else { Reg::Zero },
        imm: if def.format.has_rs3() { 0 } else { imm },
    };
    match encode(&inst, ext) {
        Ok(word) => match decode(word, ext) {
            Ok(back) if back == inst => true,
            Ok(back) => {
                findings.push(err(
                    def,
                    format!("encode/decode round-trip mismatch: {inst} became {back}"),
                ));
                false
            }
            Err(e) => {
                findings.push(err(def, format!("decode of own encoding failed: {e}")));
                false
            }
        },
        Err(e) => {
            findings.push(err(def, format!("encode failed: {e}")));
            false
        }
    }
}

fn lint_table1(def: &CustomInstDef, findings: &mut Vec<LintFinding>) {
    if let Some((_, expected)) = TABLE1.iter().find(|(m, _)| *m == def.mnemonic) {
        if def.format != *expected {
            findings.push(err(
                def,
                format!(
                    "Table 1 contract violation: expected {expected:?}, found {:?}",
                    def.format
                ),
            ));
        }
    }
}

/// R4 and RShamt definitions sharing (opcode, funct3) are structurally
/// ambiguous: an R4 `rs3` with its top bit equal to the RShamt `bit31`
/// produces a word matching both patterns. The sampled round-trip also
/// catches this, but only for whichever definition `match_encoding`
/// resolves second — this check names both parties.
fn lint_cross_format(ext: &IsaExtension, findings: &mut Vec<LintFinding>) {
    let defs = ext.defs();
    for (i, a) in defs.iter().enumerate() {
        for b in &defs[i + 1..] {
            let clash = match (a.format, b.format) {
                (
                    CustomFormat::R4 {
                        opcode: oa,
                        funct3: fa,
                        ..
                    },
                    CustomFormat::RShamt {
                        opcode: ob,
                        funct3: fb,
                        ..
                    },
                )
                | (
                    CustomFormat::RShamt {
                        opcode: oa,
                        funct3: fa,
                        ..
                    },
                    CustomFormat::R4 {
                        opcode: ob,
                        funct3: fb,
                        ..
                    },
                ) => oa == ob && fa == fb,
                _ => false,
            };
            if clash {
                findings.push(LintFinding {
                    mnemonic: a.mnemonic.to_owned(),
                    level: LintLevel::Error,
                    message: format!(
                        "R4/RShamt ambiguity with `{}`: both claim opcode {:#09b} \
                         funct3 {:#05b}, so half the rs3 space decodes as the other \
                         instruction",
                        b.mnemonic,
                        a.format.opcode(),
                        match a.format {
                            CustomFormat::R4 { funct3, .. }
                            | CustomFormat::RShamt { funct3, .. } => funct3,
                        }
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpise_sim::ext::{CustomArgs, CustomId, ExecUnit};

    fn nop_exec(_: CustomArgs) -> u64 {
        0
    }

    fn def(id: u16, mnemonic: &'static str, format: CustomFormat) -> CustomInstDef {
        CustomInstDef {
            id: CustomId(id),
            mnemonic,
            format,
            exec: nop_exec,
            unit: ExecUnit::Alu,
        }
    }

    #[test]
    fn clean_extension_passes() {
        let mut e = IsaExtension::new("clean");
        e.define(def(
            100,
            "alpha",
            CustomFormat::R4 {
                opcode: 0b1111011,
                funct3: 0b111,
                funct2: 0b00,
            },
        ))
        .unwrap();
        e.define(def(
            101,
            "beta",
            CustomFormat::RShamt {
                opcode: 0b0101011,
                funct3: 0b111,
                bit31: true,
            },
        ))
        .unwrap();
        let report = lint_extension(&e);
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.checked, 2);
    }

    #[test]
    fn base_opcode_collision_is_an_error() {
        let mut e = IsaExtension::new("bad");
        e.define(def(
            100,
            "stomp",
            CustomFormat::R4 {
                opcode: 0b0110011, // the base OP opcode
                funct3: 0b111,
                funct2: 0b00,
            },
        ))
        .unwrap();
        let report = lint_extension(&e);
        assert!(!report.passed());
        assert!(
            report.render().contains("base RV64IM"),
            "{}",
            report.render()
        );
    }

    #[test]
    fn non_custom_space_is_a_warning_only() {
        let mut e = IsaExtension::new("odd");
        e.define(def(
            100,
            "weird",
            CustomFormat::R4 {
                opcode: 0b1010011, // OP-FP space, unused by this decoder
                funct3: 0b111,
                funct2: 0b00,
            },
        ))
        .unwrap();
        let report = lint_extension(&e);
        assert!(report.passed(), "{}", report.render());
        assert!(report
            .findings
            .iter()
            .any(|f| f.level == LintLevel::Warning && f.message.contains("custom-0..3")));
    }

    #[test]
    fn r4_rshamt_ambiguity_is_detected() {
        let mut e = IsaExtension::new("ambiguous");
        e.define(def(
            100,
            "four",
            CustomFormat::R4 {
                opcode: 0b0101011,
                funct3: 0b111,
                funct2: 0b10,
            },
        ))
        .unwrap();
        e.define(def(
            101,
            "shamt",
            CustomFormat::RShamt {
                opcode: 0b0101011,
                funct3: 0b111,
                bit31: true,
            },
        ))
        .unwrap();
        let report = lint_extension(&e);
        assert!(!report.passed());
        assert!(report.render().contains("ambiguity"), "{}", report.render());
    }

    #[test]
    fn table1_contract_violation_is_detected() {
        let mut e = IsaExtension::new("drifted");
        // maddlu with the wrong funct2.
        e.define(def(
            1,
            "maddlu",
            CustomFormat::R4 {
                opcode: 0b1111011,
                funct3: 0b111,
                funct2: 0b11,
            },
        ))
        .unwrap();
        let report = lint_extension(&e);
        assert!(!report.passed());
        assert!(report.render().contains("Table 1"), "{}", report.render());
    }

    #[test]
    fn compressed_space_opcode_is_an_error() {
        let mut e = IsaExtension::new("c");
        e.define(def(
            100,
            "cmp",
            CustomFormat::R4 {
                opcode: 0b0001010, // low bits != 0b11
                funct3: 0b111,
                funct2: 0b00,
            },
        ))
        .unwrap();
        assert!(!lint_extension(&e).passed());
    }
}
