//! Structured diagnostics shared by the taint and lint passes.

use std::fmt;

/// The class of constant-time violation a [`Diagnostic`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ViolationKind {
    /// A conditional branch (or indirect jump) whose condition/target
    /// depends on secret data — the classic timing side channel.
    SecretBranch,
    /// A load or store whose *address* depends on secret data —
    /// observable through cache timing.
    SecretAddress,
    /// A secret operand reaching an instruction with data-dependent
    /// latency (the iterative divider on Rocket; see
    /// `mpise_sim::timing`).
    VariableLatency,
    /// A custom instruction not registered in the extension under
    /// analysis; its dataflow cannot be modelled, so the program is
    /// rejected rather than silently under-approximated.
    UnknownCustom,
    /// The dataflow fixpoint did not converge within the iteration
    /// budget; the analysis result would be unsound, so the program is
    /// rejected.
    AnalysisIncomplete,
}

impl ViolationKind {
    /// Short human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            ViolationKind::SecretBranch => "secret-dependent branch",
            ViolationKind::SecretAddress => "secret-dependent address",
            ViolationKind::VariableLatency => "secret operand to variable-latency instruction",
            ViolationKind::UnknownCustom => "unknown custom instruction",
            ViolationKind::AnalysisIncomplete => "analysis incomplete",
        }
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One constant-time violation, anchored to a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Instruction index within the program.
    pub index: usize,
    /// Byte address of the instruction (all instructions are 4 bytes).
    pub pc: u64,
    /// The offending instruction, rendered in assembler syntax.
    pub inst: String,
    /// Violation class.
    pub kind: ViolationKind,
    /// What exactly was tainted (registers, regions, …).
    pub detail: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[pc {:#06x}] {}: {} ({})",
            self.pc, self.inst, self.kind, self.detail
        )
    }
}

/// Result of one taint-analysis run over a program.
#[derive(Debug, Clone, Default)]
pub struct TaintReport {
    /// All violations, in program order.
    pub diagnostics: Vec<Diagnostic>,
    /// Instructions reachable from the entry (and therefore analyzed).
    pub insts_analyzed: usize,
    /// Worklist iterations until the fixpoint.
    pub iterations: usize,
}

impl TaintReport {
    /// Whether the program is constant-time under the given spec.
    pub fn passed(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Renders every diagnostic on its own line.
    pub fn render(&self) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_renders_pc_and_instruction() {
        let d = Diagnostic {
            index: 4,
            pc: 0x10,
            inst: "bne t0, zero, 8".into(),
            kind: ViolationKind::SecretBranch,
            detail: "operand t0 is secret".into(),
        };
        let s = d.to_string();
        assert!(s.contains("0x0010"), "pc missing: {s}");
        assert!(s.contains("bne t0, zero, 8"), "inst missing: {s}");
        assert!(s.contains("secret-dependent branch"), "kind missing: {s}");
    }

    #[test]
    fn empty_report_passes() {
        assert!(TaintReport::default().passed());
    }
}
