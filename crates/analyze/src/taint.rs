//! Static secret-taint dataflow analysis over simulator programs.
//!
//! The analysis is a forward worklist fixpoint over the program's CFG.
//! Its abstract domain tracks, per register, a *taint* bit (does the
//! value depend on secret data?) and an optional *pointer provenance*
//! (which declared memory region the value points into, and — when
//! statically known — at which byte offset). Memory is modelled as a
//! map from concrete `(region, offset)` cells to abstract values, with
//! a per-region summary taint for statically-unknown offsets. This is
//! precise enough to see through the idioms the generated kernels use:
//! stack frames (`addi sp, sp, -N` … `sd`/`ld` of callee-saved
//! registers), pointer save/reload through stack slots, and scratch
//! buffers re-derived with `addi rX, sp, off`.
//!
//! Three violation classes are reported (see
//! [`ViolationKind`](crate::report::ViolationKind)):
//!
//! 1. **secret-dependent branches** — any `Branch` whose operand is
//!    tainted, and any `Jalr` whose target register is tainted;
//! 2. **secret-addressed memory accesses** — any `Load`/`Store` whose
//!    address register is tainted;
//! 3. **variable-latency operands** — tainted operands reaching
//!    `div`/`rem` (the only data-dependent-latency unit in the Rocket
//!    timing model; multiplies — including the custom XMUL
//!    instructions — are fixed-latency and merely *propagate* taint).
//!
//! The analysis over-approximates: a PASS is a proof under the machine
//! model, a FAIL may in rare cases be a false positive (e.g. a load
//! through a pointer the analysis lost track of). For the straight-line
//! kernels this repository generates, the domain loses nothing.

use crate::report::{Diagnostic, TaintReport, ViolationKind};
use mpise_sim::asm::Program;
use mpise_sim::ext::IsaExtension;
use mpise_sim::inst::{AluImmOp, AluOp, Inst};
use mpise_sim::Reg;
use std::collections::{BTreeMap, HashSet};

/// Secrecy of a value or of a memory region's initial contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Secrecy {
    /// Attacker-known (or attacker-irrelevant) data.
    Public,
    /// Key-dependent data.
    Secret,
}

/// Handle to a declared memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(usize);

#[derive(Debug, Clone)]
struct RegionInfo {
    name: String,
    secrecy: Secrecy,
}

/// What the caller tells the analyzer about the program's entry state:
/// which registers hold pointers to which memory regions, which regions
/// hold secret data, and which plain registers are secret.
#[derive(Debug, Clone, Default)]
pub struct TaintSpec {
    regions: Vec<RegionInfo>,
    pointers: Vec<(Reg, RegionId)>,
    secret_regs: Vec<Reg>,
}

impl TaintSpec {
    /// An empty spec (everything public, no known pointers).
    pub fn new() -> Self {
        TaintSpec::default()
    }

    /// Declares a memory region whose initial contents have the given
    /// secrecy.
    pub fn region(&mut self, name: &str, secrecy: Secrecy) -> RegionId {
        self.regions.push(RegionInfo {
            name: name.to_owned(),
            secrecy,
        });
        RegionId(self.regions.len() - 1)
    }

    /// Declares that `reg` holds, at entry, a pointer to offset 0 of
    /// `region`.
    pub fn entry_pointer(&mut self, reg: Reg, region: RegionId) -> &mut Self {
        self.pointers.push((reg, region));
        self
    }

    /// Declares that `reg` itself holds a secret value at entry.
    pub fn secret_reg(&mut self, reg: Reg) -> &mut Self {
        self.secret_regs.push(reg);
        self
    }

    /// The name a region was declared with.
    pub fn region_name(&self, id: RegionId) -> &str {
        &self.regions[id.0].name
    }
}

/// Tunable analysis strictness.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisOptions {
    /// Also flag tainted operands reaching multiply instructions. The
    /// Rocket model (and the paper's XMUL datapath) multiplies in a
    /// fixed 2 cycles, so this is off by default; enable it when
    /// targeting cores with early-out multipliers.
    pub flag_multiplies: bool,
}

impl Secrecy {
    fn join(self, other: Secrecy) -> Secrecy {
        if self == Secrecy::Secret || other == Secrecy::Secret {
            Secrecy::Secret
        } else {
            Secrecy::Public
        }
    }

    fn is_secret(self) -> bool {
        self == Secrecy::Secret
    }
}

/// Pointer provenance: region plus statically-known byte offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ptr {
    region: RegionId,
    /// `None` once the offset is no longer statically known.
    offset: Option<i64>,
}

/// Abstract value of one register (or memory cell).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AbsVal {
    taint: Secrecy,
    ptr: Option<Ptr>,
}

impl AbsVal {
    const PUBLIC: AbsVal = AbsVal {
        taint: Secrecy::Public,
        ptr: None,
    };

    const SECRET: AbsVal = AbsVal {
        taint: Secrecy::Secret,
        ptr: None,
    };

    fn join(self, other: AbsVal) -> AbsVal {
        let ptr = match (self.ptr, other.ptr) {
            (Some(a), Some(b)) if a.region == b.region => Some(Ptr {
                region: a.region,
                offset: if a.offset == b.offset { a.offset } else { None },
            }),
            _ => None,
        };
        AbsVal {
            taint: self.taint.join(other.taint),
            ptr,
        }
    }

    /// The value stripped of pointer provenance (for arithmetic that
    /// destroys pointers, and for sub-word memory traffic).
    fn scalar(self) -> AbsVal {
        AbsVal {
            taint: self.taint,
            ptr: None,
        }
    }
}

/// Abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq)]
struct State {
    regs: [AbsVal; 32],
    /// Concrete memory cells, keyed by `(region, byte offset)`.
    mem: BTreeMap<(usize, i64), AbsVal>,
    /// Per-region summary taint governing cells not in `mem`.
    region_taint: Vec<Secrecy>,
}

impl State {
    fn entry(spec: &TaintSpec) -> State {
        let mut regs = [AbsVal::PUBLIC; 32];
        for &(reg, region) in &spec.pointers {
            regs[reg.number() as usize] = AbsVal {
                taint: Secrecy::Public,
                ptr: Some(Ptr {
                    region,
                    offset: Some(0),
                }),
            };
        }
        for &reg in &spec.secret_regs {
            regs[reg.number() as usize] = AbsVal::SECRET;
        }
        regs[Reg::Zero.number() as usize] = AbsVal::PUBLIC;
        State {
            regs,
            mem: BTreeMap::new(),
            region_taint: spec.regions.iter().map(|r| r.secrecy).collect(),
        }
    }

    fn read(&self, reg: Reg) -> AbsVal {
        if reg == Reg::Zero {
            AbsVal::PUBLIC
        } else {
            self.regs[reg.number() as usize]
        }
    }

    fn write(&mut self, reg: Reg, val: AbsVal) {
        if reg != Reg::Zero {
            self.regs[reg.number() as usize] = val;
        }
    }

    /// The value a cell holds when it is not explicitly tracked.
    fn region_default(&self, region: RegionId) -> AbsVal {
        AbsVal {
            taint: self.region_taint[region.0],
            ptr: None,
        }
    }

    /// Join of everything a load from `region` at an unknown offset
    /// could observe.
    fn region_any(&self, region: RegionId) -> AbsVal {
        let mut acc = self.region_default(region);
        for (&(r, _), &v) in &self.mem {
            if r == region.0 {
                acc = acc.join(v);
            }
        }
        acc.scalar()
    }

    /// Join of everything a load from a statically-unknown address
    /// could observe.
    fn anywhere(&self) -> AbsVal {
        let mut acc = AbsVal::PUBLIC;
        for &t in &self.region_taint {
            acc.taint = acc.taint.join(t);
        }
        for &v in self.mem.values() {
            acc = acc.join(v);
        }
        acc.scalar()
    }

    /// Pointwise join; returns whether `self` changed.
    fn join_from(&mut self, other: &State) -> bool {
        let mut changed = false;
        for i in 0..32 {
            let j = self.regs[i].join(other.regs[i]);
            if j != self.regs[i] {
                self.regs[i] = j;
                changed = true;
            }
        }
        for (i, t) in self.region_taint.iter_mut().enumerate() {
            let j = t.join(other.region_taint[i]);
            if j != *t {
                *t = j;
                changed = true;
            }
        }
        // Cells missing from one side hold that side's region default.
        let keys: Vec<(usize, i64)> = self.mem.keys().chain(other.mem.keys()).copied().collect();
        for key in keys {
            let a = self
                .mem
                .get(&key)
                .copied()
                .unwrap_or_else(|| self.region_default(RegionId(key.0)));
            let b = other
                .mem
                .get(&key)
                .copied()
                .unwrap_or_else(|| other.region_default(RegionId(key.0)));
            let j = a.join(b);
            if self.mem.get(&key) != Some(&j) {
                self.mem.insert(key, j);
                changed = true;
            }
        }
        changed
    }
}

/// Iteration budget multiplier before the fixpoint is declared
/// non-convergent (the domain has small finite height, so this fires
/// only on analyzer bugs).
const MAX_VISITS_PER_INST: usize = 128;

/// Runs the taint analysis over `program`.
///
/// `ext` resolves custom instructions (needed to know they exist; all
/// registered customs are fixed-latency register-to-register ops that
/// propagate taint). `spec` describes the entry state.
pub fn analyze_program(
    program: &Program,
    ext: &IsaExtension,
    spec: &TaintSpec,
    opts: &AnalysisOptions,
) -> TaintReport {
    Analysis {
        insts: program.insts(),
        ext,
        spec,
        opts,
        diagnostics: Vec::new(),
        seen: HashSet::new(),
    }
    .run()
}

struct Analysis<'a> {
    insts: &'a [Inst],
    ext: &'a IsaExtension,
    spec: &'a TaintSpec,
    opts: &'a AnalysisOptions,
    diagnostics: Vec<Diagnostic>,
    seen: HashSet<(usize, ViolationKind)>,
}

impl Analysis<'_> {
    fn run(mut self) -> TaintReport {
        let n = self.insts.len();
        let mut in_states: Vec<Option<State>> = vec![None; n];
        let mut worklist: Vec<usize> = Vec::new();
        let mut visits = 0usize;
        let budget = n
            .saturating_mul(MAX_VISITS_PER_INST)
            .max(MAX_VISITS_PER_INST);

        if n > 0 {
            in_states[0] = Some(State::entry(self.spec));
            worklist.push(0);
        }

        let mut iterations = 0usize;
        while let Some(index) = worklist.pop() {
            iterations += 1;
            visits += 1;
            if visits > budget {
                self.report(
                    index,
                    ViolationKind::AnalysisIncomplete,
                    format!("fixpoint exceeded {budget} visits"),
                );
                break;
            }
            let mut state = in_states[index].clone().expect("queued with a state");
            let succs = self.transfer(index, &mut state);
            for succ in succs {
                if succ >= n {
                    continue; // falls off the end: treated as exit
                }
                let changed = match &mut in_states[succ] {
                    Some(existing) => existing.join_from(&state),
                    slot @ None => {
                        *slot = Some(state.clone());
                        true
                    }
                };
                if changed && !worklist.contains(&succ) {
                    worklist.push(succ);
                }
            }
        }

        self.diagnostics.sort_by_key(|d| (d.index, d.kind));
        TaintReport {
            diagnostics: self.diagnostics,
            insts_analyzed: in_states.iter().filter(|s| s.is_some()).count(),
            iterations,
        }
    }

    fn report(&mut self, index: usize, kind: ViolationKind, detail: String) {
        // The fixpoint revisits instructions; each (site, kind) pair is
        // reported once. Taint only grows, so a flag raised on an
        // intermediate state also holds at the fixpoint.
        if self.seen.insert((index, kind)) {
            self.diagnostics.push(Diagnostic {
                index,
                pc: index as u64 * 4,
                inst: self.insts[index].to_string(),
                kind,
                detail,
            });
        }
    }

    fn secret_operands(&self, state: &State, regs: &[Reg]) -> Vec<Reg> {
        regs.iter()
            .copied()
            .filter(|&r| state.read(r).taint.is_secret())
            .collect()
    }

    fn describe(regs: &[Reg]) -> String {
        regs.iter()
            .map(|r| r.abi_name())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Applies instruction `index` to `state`, reporting violations,
    /// and returns the successor indices.
    fn transfer(&mut self, index: usize, state: &mut State) -> Vec<usize> {
        let inst = self.insts[index];
        match inst {
            Inst::Lui { rd, .. } | Inst::Auipc { rd, .. } => {
                state.write(rd, AbsVal::PUBLIC);
                vec![index + 1]
            }
            Inst::Jal { rd, offset } => {
                state.write(rd, AbsVal::PUBLIC);
                let target = index as i64 + offset as i64 / 4;
                if (0..self.insts.len() as i64).contains(&target) {
                    vec![target as usize]
                } else {
                    vec![] // jump out of the program: exit
                }
            }
            Inst::Jalr { rd, rs1, .. } => {
                let tainted = self.secret_operands(state, &[rs1]);
                if !tainted.is_empty() {
                    self.report(
                        index,
                        ViolationKind::SecretBranch,
                        format!(
                            "jump target register {} is secret",
                            Self::describe(&tainted)
                        ),
                    );
                }
                state.write(rd, AbsVal::PUBLIC);
                // Indirect targets are not resolved statically; `ret`
                // and tail calls end the analyzed path here.
                vec![]
            }
            Inst::Branch {
                rs1, rs2, offset, ..
            } => {
                let tainted = self.secret_operands(state, &[rs1, rs2]);
                if !tainted.is_empty() {
                    self.report(
                        index,
                        ViolationKind::SecretBranch,
                        format!(
                            "branch condition depends on secret register(s) {}",
                            Self::describe(&tainted)
                        ),
                    );
                }
                let mut succs = vec![index + 1];
                let target = index as i64 + offset as i64 / 4;
                if (0..self.insts.len() as i64).contains(&target) {
                    succs.push(target as usize);
                }
                succs
            }
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = state.read(rs1);
                if addr.taint.is_secret() {
                    self.report(
                        index,
                        ViolationKind::SecretAddress,
                        format!("load address register {} is secret", rs1.abi_name()),
                    );
                }
                let value = match addr.ptr {
                    Some(Ptr {
                        region,
                        offset: Some(base),
                    }) => {
                        let eff = base + offset as i64;
                        let cell = state
                            .mem
                            .get(&(region.0, eff))
                            .copied()
                            .unwrap_or_else(|| state.region_default(region));
                        // Only full-width aligned loads recover saved
                        // pointers; narrower loads see raw bytes.
                        if op.width() == 8 {
                            cell
                        } else {
                            cell.scalar()
                        }
                    }
                    Some(Ptr {
                        region,
                        offset: None,
                    }) => state.region_any(region),
                    None => state.anywhere(),
                };
                state.write(rd, value);
                vec![index + 1]
            }
            Inst::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let addr = state.read(rs1);
                if addr.taint.is_secret() {
                    self.report(
                        index,
                        ViolationKind::SecretAddress,
                        format!("store address register {} is secret", rs1.abi_name()),
                    );
                }
                let mut value = state.read(rs2);
                if op.width() != 8 {
                    value = value.scalar();
                }
                match addr.ptr {
                    Some(Ptr {
                        region,
                        offset: Some(base),
                    }) => {
                        // Exact address: strong update.
                        state.mem.insert((region.0, base + offset as i64), value);
                    }
                    Some(Ptr {
                        region,
                        offset: None,
                    }) => {
                        // Could hit any cell of the region.
                        state.region_taint[region.0] =
                            state.region_taint[region.0].join(value.taint);
                        for (&(r, _), cell) in state.mem.iter_mut() {
                            if r == region.0 {
                                *cell = cell.join(value);
                            }
                        }
                    }
                    None => {
                        // Could hit anything.
                        for t in state.region_taint.iter_mut() {
                            *t = t.join(value.taint);
                        }
                        for cell in state.mem.values_mut() {
                            *cell = cell.join(value);
                        }
                    }
                }
                vec![index + 1]
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let src = state.read(rs1);
                let value = if op == AluImmOp::Addi {
                    // Pointer arithmetic: offset moves with the
                    // immediate (the `addi rX, sp, off` re-derivation
                    // idiom in the fp kernels).
                    AbsVal {
                        taint: src.taint,
                        ptr: src.ptr.map(|p| Ptr {
                            region: p.region,
                            offset: p.offset.map(|o| o + imm as i64),
                        }),
                    }
                } else {
                    src.scalar()
                };
                state.write(rd, value);
                vec![index + 1]
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let a = state.read(rs1);
                let b = state.read(rs2);
                if op.is_divide() {
                    let tainted = self.secret_operands(state, &[rs1, rs2]);
                    if !tainted.is_empty() {
                        self.report(
                            index,
                            ViolationKind::VariableLatency,
                            format!(
                                "iterative divider ({}) consumes secret register(s) {}",
                                op.mnemonic(),
                                Self::describe(&tainted)
                            ),
                        );
                    }
                }
                if self.opts.flag_multiplies && op.is_multiply() {
                    let tainted = self.secret_operands(state, &[rs1, rs2]);
                    if !tainted.is_empty() {
                        self.report(
                            index,
                            ViolationKind::VariableLatency,
                            format!(
                                "multiplier ({}) consumes secret register(s) {} \
                                 (flag_multiplies is on)",
                                op.mnemonic(),
                                Self::describe(&tainted)
                            ),
                        );
                    }
                }
                let ptr = match (op, a.ptr, b.ptr) {
                    // pointer + scalar displacement (unknown amount).
                    (AluOp::Add, Some(p), None) | (AluOp::Add, None, Some(p)) => Some(Ptr {
                        region: p.region,
                        offset: None,
                    }),
                    (AluOp::Sub, Some(p), None) => Some(Ptr {
                        region: p.region,
                        offset: None,
                    }),
                    _ => None,
                };
                state.write(
                    rd,
                    AbsVal {
                        taint: a.taint.join(b.taint),
                        ptr,
                    },
                );
                vec![index + 1]
            }
            Inst::Custom {
                id,
                rd,
                rs1,
                rs2,
                rs3,
                ..
            } => {
                if self.ext.by_id(id).is_none() {
                    self.report(
                        index,
                        ViolationKind::UnknownCustom,
                        format!(
                            "custom id {id} is not registered in extension `{}`",
                            self.ext.name()
                        ),
                    );
                }
                // Every registered custom is a pure fixed-latency
                // register-to-register op (ISE design rule): taint
                // propagates, no violation.
                let taint = state
                    .read(rs1)
                    .taint
                    .join(state.read(rs2).taint)
                    .join(state.read(rs3).taint);
                state.write(rd, AbsVal { taint, ptr: None });
                vec![index + 1]
            }
            Inst::Fence => vec![index + 1],
            Inst::Ecall | Inst::Ebreak => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpise_sim::inst::{BranchOp, LoadOp, StoreOp};

    fn ext() -> IsaExtension {
        IsaExtension::new("rv64im")
    }

    fn spec_one_secret_region() -> (TaintSpec, RegionId, RegionId) {
        let mut spec = TaintSpec::new();
        let sec = spec.region("secret-in", Secrecy::Secret);
        let out = spec.region("out", Secrecy::Public);
        spec.entry_pointer(Reg::A1, sec);
        spec.entry_pointer(Reg::A0, out);
        (spec, sec, out)
    }

    fn analyze(insts: Vec<Inst>, spec: &TaintSpec) -> TaintReport {
        analyze_program(
            &Program::from_insts(insts),
            &ext(),
            spec,
            &AnalysisOptions::default(),
        )
    }

    const LD: fn(Reg, Reg, i32) -> Inst = |rd, rs1, offset| Inst::Load {
        op: LoadOp::Ld,
        rd,
        rs1,
        offset,
    };
    const SD: fn(Reg, Reg, i32) -> Inst = |rs2, rs1, offset| Inst::Store {
        op: StoreOp::Sd,
        rs1,
        rs2,
        offset,
    };
    const ADDI: fn(Reg, Reg, i32) -> Inst = |rd, rs1, imm| Inst::OpImm {
        op: AluImmOp::Addi,
        rd,
        rs1,
        imm,
    };

    #[test]
    fn straight_line_copy_is_clean() {
        let (spec, ..) = spec_one_secret_region();
        let report = analyze(
            vec![
                LD(Reg::T0, Reg::A1, 0),
                SD(Reg::T0, Reg::A0, 0),
                Inst::Ebreak,
            ],
            &spec,
        );
        assert!(report.passed(), "{}", report.render());
        assert_eq!(report.insts_analyzed, 3);
    }

    #[test]
    fn branch_on_secret_is_flagged_with_pc() {
        let (spec, ..) = spec_one_secret_region();
        let report = analyze(
            vec![
                LD(Reg::T0, Reg::A1, 0),
                Inst::Branch {
                    op: BranchOp::Bne,
                    rs1: Reg::T0,
                    rs2: Reg::Zero,
                    offset: 8,
                },
                Inst::Ebreak,
            ],
            &spec,
        );
        assert_eq!(report.diagnostics.len(), 1);
        let d = &report.diagnostics[0];
        assert_eq!(d.kind, ViolationKind::SecretBranch);
        assert_eq!(d.pc, 4);
        assert!(d.inst.starts_with("bne"), "inst: {}", d.inst);
    }

    #[test]
    fn branch_on_public_is_clean() {
        let (spec, ..) = spec_one_secret_region();
        let report = analyze(
            vec![
                ADDI(Reg::T0, Reg::Zero, 3),
                Inst::Branch {
                    op: BranchOp::Bne,
                    rs1: Reg::T0,
                    rs2: Reg::Zero,
                    offset: -4,
                },
                Inst::Ebreak,
            ],
            &spec,
        );
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn secret_addressed_load_is_flagged() {
        let (spec, ..) = spec_one_secret_region();
        let report = analyze(
            vec![
                LD(Reg::T0, Reg::A1, 0),
                Inst::Op {
                    op: AluOp::Add,
                    rd: Reg::T1,
                    rs1: Reg::A0,
                    rs2: Reg::T0,
                },
                LD(Reg::T2, Reg::T1, 0),
                Inst::Ebreak,
            ],
            &spec,
        );
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].kind, ViolationKind::SecretAddress);
        assert_eq!(report.diagnostics[0].index, 2);
    }

    #[test]
    fn secret_divisor_is_flagged() {
        let (spec, ..) = spec_one_secret_region();
        let report = analyze(
            vec![
                LD(Reg::T0, Reg::A1, 0),
                Inst::Op {
                    op: AluOp::Divu,
                    rd: Reg::T1,
                    rs1: Reg::T2,
                    rs2: Reg::T0,
                },
                Inst::Ebreak,
            ],
            &spec,
        );
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].kind, ViolationKind::VariableLatency);
    }

    #[test]
    fn multiply_on_secret_is_clean_by_default_but_optable() {
        let (spec, ..) = spec_one_secret_region();
        let insts = vec![
            LD(Reg::T0, Reg::A1, 0),
            Inst::Op {
                op: AluOp::Mulhu,
                rd: Reg::T1,
                rs1: Reg::T0,
                rs2: Reg::T0,
            },
            Inst::Ebreak,
        ];
        let report = analyze(insts.clone(), &spec);
        assert!(report.passed(), "{}", report.render());

        let strict = analyze_program(
            &Program::from_insts(insts),
            &ext(),
            &spec,
            &AnalysisOptions {
                flag_multiplies: true,
            },
        );
        assert_eq!(strict.diagnostics.len(), 1);
        assert_eq!(strict.diagnostics[0].kind, ViolationKind::VariableLatency);
    }

    #[test]
    fn taint_flows_through_memory_and_stack_frames() {
        // Secret limb parked in a stack slot, reloaded, then branched
        // on: the frame discipline must not launder taint.
        let mut spec = TaintSpec::new();
        let sec = spec.region("in", Secrecy::Secret);
        let stack = spec.region("stack", Secrecy::Public);
        spec.entry_pointer(Reg::A1, sec);
        spec.entry_pointer(Reg::Sp, stack);
        let report = analyze(
            vec![
                ADDI(Reg::Sp, Reg::Sp, -32),
                LD(Reg::T0, Reg::A1, 8),
                SD(Reg::T0, Reg::Sp, 16),
                ADDI(Reg::T0, Reg::Zero, 0), // clobber the register
                LD(Reg::T1, Reg::Sp, 16),    // reload the secret
                Inst::Branch {
                    op: BranchOp::Beq,
                    rs1: Reg::T1,
                    rs2: Reg::Zero,
                    offset: 8,
                },
                Inst::Ebreak,
            ],
            &spec,
        );
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].index, 5);
        assert_eq!(report.diagnostics[0].kind, ViolationKind::SecretBranch);
    }

    #[test]
    fn pointer_save_reload_keeps_provenance() {
        // The fp_mul idiom: save a0 to the frame, clobber it, reload
        // it, and store through it — must stay clean.
        let mut spec = TaintSpec::new();
        let sec = spec.region("in", Secrecy::Secret);
        let out = spec.region("out", Secrecy::Public);
        let stack = spec.region("stack", Secrecy::Public);
        spec.entry_pointer(Reg::A1, sec);
        spec.entry_pointer(Reg::A0, out);
        spec.entry_pointer(Reg::Sp, stack);
        let report = analyze(
            vec![
                ADDI(Reg::Sp, Reg::Sp, -64),
                SD(Reg::A0, Reg::Sp, 0), // save result pointer
                LD(Reg::A0, Reg::A1, 0), // clobber a0 with a secret limb
                SD(Reg::A0, Reg::Sp, 8), // spill it
                LD(Reg::A0, Reg::Sp, 0), // reload the result pointer
                LD(Reg::T0, Reg::Sp, 8), // reload the secret limb
                SD(Reg::T0, Reg::A0, 0), // store through the reloaded pointer
                ADDI(Reg::Sp, Reg::Sp, 64),
                Inst::Ebreak,
            ],
            &spec,
        );
        assert!(report.passed(), "{}", report.render());
    }

    #[test]
    fn loop_reaches_fixpoint_and_flags_once() {
        // A loop that keeps branching on a secret: one diagnostic, not
        // one per fixpoint iteration.
        let (spec, ..) = spec_one_secret_region();
        let report = analyze(
            vec![
                LD(Reg::T0, Reg::A1, 0),
                ADDI(Reg::T0, Reg::T0, -1),
                Inst::Branch {
                    op: BranchOp::Bne,
                    rs1: Reg::T0,
                    rs2: Reg::Zero,
                    offset: -4,
                },
                Inst::Ebreak,
            ],
            &spec,
        );
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.iterations >= 4, "loop must be re-analyzed");
    }

    #[test]
    fn unknown_custom_is_rejected() {
        let (spec, ..) = spec_one_secret_region();
        let report = analyze(
            vec![
                Inst::Custom {
                    id: mpise_sim::ext::CustomId(999),
                    rd: Reg::T0,
                    rs1: Reg::A1,
                    rs2: Reg::A1,
                    rs3: Reg::A1,
                    imm: 0,
                },
                Inst::Ebreak,
            ],
            &spec,
        );
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].kind, ViolationKind::UnknownCustom);
    }

    #[test]
    fn custom_propagates_taint_without_violating() {
        let mut e = IsaExtension::new("demo");
        e.define(mpise_sim::ext::CustomInstDef {
            id: mpise_sim::ext::CustomId(50),
            mnemonic: "mac",
            format: mpise_sim::ext::CustomFormat::R4 {
                opcode: 0b1111011,
                funct3: 0b111,
                funct2: 0b00,
            },
            exec: |a| a.rs1.wrapping_mul(a.rs2).wrapping_add(a.rs3),
            unit: mpise_sim::ext::ExecUnit::Xmul,
        })
        .unwrap();
        let (spec, ..) = spec_one_secret_region();
        let report = analyze_program(
            &Program::from_insts(vec![
                LD(Reg::T0, Reg::A1, 0),
                Inst::Custom {
                    id: mpise_sim::ext::CustomId(50),
                    rd: Reg::T1,
                    rs1: Reg::T0,
                    rs2: Reg::T0,
                    rs3: Reg::Zero,
                    imm: 0,
                },
                // The custom result is secret: branching on it must trip.
                Inst::Branch {
                    op: BranchOp::Beq,
                    rs1: Reg::T1,
                    rs2: Reg::Zero,
                    offset: 8,
                },
                Inst::Ebreak,
            ]),
            &e,
            &spec,
            &AnalysisOptions::default(),
        );
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].index, 2);
        assert_eq!(report.diagnostics[0].kind, ViolationKind::SecretBranch);
    }
}
