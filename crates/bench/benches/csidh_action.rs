//! Criterion benchmark of the CSIDH group action on the host backends
//! (small exponent bound so a single sample stays in milliseconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpise_csidh::{group_action, PrivateKey, PublicKey};
use mpise_fp::{Fp, FpFull, FpRed};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn sparse_key() -> PrivateKey {
    let mut exponents = [0i8; mpise_fp::params::NUM_PRIMES];
    exponents[0] = 1;
    exponents[25] = -1;
    exponents[73] = 1;
    PrivateKey { exponents }
}

fn bench_action<F: Fp>(c: &mut Criterion, name: &str, f: &F) {
    let key = sparse_key();
    let mut g = c.benchmark_group("csidh");
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("sparse-action", name), |bench| {
        bench.iter(|| {
            let mut rng = StdRng::seed_from_u64(42);
            group_action(f, &mut rng, black_box(&PublicKey::BASE), black_box(&key))
        })
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_action(c, "full-radix", &FpFull::new());
    bench_action(c, "reduced-radix", &FpRed::new());
}

criterion_group!(csidh, benches);
criterion_main!(csidh);
