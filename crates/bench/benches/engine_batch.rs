//! Criterion benchmark of lane-parallel batched validation against the
//! scalar path: `validate_many` over W lanes vs W sequential scalar
//! `validate` calls. The batched path shares the public ladder
//! scalars across lanes, so per-validation overhead (scalar scans,
//! cofactor products, control flow) amortises with the width.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpise_csidh::{validate, validate_many, PublicKey};
use mpise_fp::{FpBatch, FpFull};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_validation<F: FpBatch>(c: &mut Criterion, name: &str, f: &F) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    for width in [1usize, 4, 8] {
        let keys = vec![PublicKey::BASE; width];
        let seeds: Vec<u64> = (0..width as u64).collect();
        g.bench_function(
            BenchmarkId::new(format!("validate-batched-{name}"), width),
            |b| b.iter(|| validate_many(f, black_box(&keys), black_box(&seeds))),
        );
        g.bench_function(
            BenchmarkId::new(format!("validate-scalar-{name}"), width),
            |b| {
                b.iter(|| {
                    keys.iter()
                        .zip(&seeds)
                        .map(|(key, &seed)| {
                            let mut rng = StdRng::seed_from_u64(seed);
                            validate(f, &mut rng, black_box(key))
                        })
                        .collect::<Vec<bool>>()
                })
            },
        );
    }
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_validation(c, "full-radix", &FpFull::new());
}

criterion_group!(engine, benches);
criterion_main!(engine);
