//! Criterion microbenchmarks of the host-speed field backends
//! (full-radix vs reduced-radix), the host-side analogue of Table 4's
//! upper rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpise_fp::{Fp, FpFull, FpRed};
use mpise_mpi::U512;
use std::hint::black_box;

fn bench_backend<F: Fp>(c: &mut Criterion, name: &str, f: &F) {
    let a = f.from_uint(
        &U512::from_hex("0x123456789abcdef0fedcba987654321000112233445566778899aabbccddeeff")
            .unwrap(),
    );
    let b = f.from_uint(
        &U512::from_hex("0x0fedcba987654321123456789abcdef0ffeeddccbbaa99887766554433221100")
            .unwrap(),
    );
    let mut g = c.benchmark_group("fp");
    g.bench_function(BenchmarkId::new("mul", name), |bench| {
        bench.iter(|| f.mul(black_box(&a), black_box(&b)))
    });
    g.bench_function(BenchmarkId::new("sqr", name), |bench| {
        bench.iter(|| f.sqr(black_box(&a)))
    });
    g.bench_function(BenchmarkId::new("add", name), |bench| {
        bench.iter(|| f.add(black_box(&a), black_box(&b)))
    });
    g.bench_function(BenchmarkId::new("sub", name), |bench| {
        bench.iter(|| f.sub(black_box(&a), black_box(&b)))
    });
    g.bench_function(BenchmarkId::new("inv", name), |bench| {
        bench.iter(|| f.inv(black_box(&a)))
    });
    g.finish();
}

fn benches(c: &mut Criterion) {
    bench_backend(c, "full-radix", &FpFull::new());
    bench_backend(c, "reduced-radix", &FpRed::new());
}

criterion_group!(field, benches);
criterion_main!(field);
