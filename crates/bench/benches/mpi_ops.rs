//! Criterion microbenchmarks of the MPI layer, including the
//! multiplication-technique ablation the paper mentions in §4
//! ("product-scanning is more efficient than Karatsuba's algorithm").

use criterion::{criterion_group, criterion_main, Criterion};
use mpise_mpi::fast::{fast_reduce_add, fast_reduce_swap};
use mpise_mpi::mul::{mul_karatsuba, mul_os, mul_ps, square_ps};
use mpise_mpi::{MontCtx, U512};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let a = U512::from_hex("0x65b48e8f740f89bffc8ab0d15e3e4c4ab42d083aedc88c425afbfcc69322c9cd")
        .unwrap();
    let b = U512::from_hex("0xa7aac6c567f35507516730cc1f0b4f25c2721bf457aca8351b81b90533c6c87b")
        .unwrap();
    let p = U512::from_limbs(mpise_fp::params::P_LIMBS);
    let ctx = MontCtx::new(p).unwrap();

    let mut g = c.benchmark_group("mpi-mul-512");
    g.bench_function("product-scanning", |bench| {
        bench.iter(|| mul_ps(black_box(&a), black_box(&b)))
    });
    g.bench_function("operand-scanning", |bench| {
        bench.iter(|| mul_os(black_box(&a), black_box(&b)))
    });
    g.bench_function("karatsuba", |bench| {
        bench.iter(|| mul_karatsuba(black_box(&a), black_box(&b)))
    });
    g.bench_function("square-ps", |bench| bench.iter(|| square_ps(black_box(&a))));
    g.finish();

    let mut g = c.benchmark_group("mpi-reduce");
    let (lo, hi) = mul_ps(&a, &b);
    g.bench_function("montgomery-redc", |bench| {
        bench.iter(|| ctx.redc(black_box(&lo), black_box(&hi)))
    });
    let x = a.wrapping_add(&U512::from_u64(12345));
    g.bench_function("fast-reduce-add (Alg 1)", |bench| {
        bench.iter(|| fast_reduce_add(black_box(&x), black_box(&p)))
    });
    g.bench_function("fast-reduce-swap (Alg 2)", |bench| {
        bench.iter(|| fast_reduce_swap(black_box(&x), black_box(&p)))
    });
    g.finish();
}

criterion_group!(mpi, benches);
criterion_main!(mpi);
