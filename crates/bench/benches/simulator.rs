//! Criterion benchmark of the simulator itself: host-time cost of
//! executing one Fp-multiplication kernel, i.e. the price of the
//! direct (full-simulation) group-action mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpise_fp::kernels::{Config, OpKind};
use mpise_fp::measure::KernelRunner;
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    for config in Config::ALL {
        let mut runner = KernelRunner::new(config);
        let n = config.elem_words();
        let a = vec![3u64; n];
        let b = vec![5u64; n];
        // Use small canonical values; kernels are constant-time anyway.
        g.bench_function(
            BenchmarkId::new("fp-mul-kernel", config.to_string()),
            |bench| {
                bench.iter(|| runner.run(OpKind::FpMul, black_box(&[a.as_slice(), b.as_slice()])))
            },
        );
    }
    g.finish();
}

criterion_group!(sim, benches);
criterion_main!(sim);
