//! Ablations of the design decisions the paper discusses:
//!
//! 1. §4: "product-scanning is more efficient than Karatsuba's
//!    algorithm" — one-level Karatsuba kernels vs the product-scanning
//!    kernels, on the same pipeline model;
//! 2. §3.3: "XMUL does not extend the existing critical path" —
//!    combinational-depth analysis of the three datapath variants;
//! 3. micro-architecture sensitivity: how Table 4's Fp-multiplication
//!    row moves when the multiplier latency or the load-use latency of
//!    the core changes.
//!
//! ```text
//! cargo run --release -p mpise-bench --bin ablation
//! ```

use mpise_bench::rule;
use mpise_fp::kernels::ablation::{karatsuba_int_mul, rolled_int_mul};
use mpise_fp::kernels::{Config, IseMode, KernelSet, OpKind, Radix};
use mpise_fp::measure::KernelRunner;
use mpise_hw::depth::analyze;
use mpise_hw::xmul::{base_multiplier, full_radix_xmul, reduced_radix_xmul};
use mpise_mpi::U512;
use mpise_sim::machine::DATA_BASE;
use mpise_sim::{Machine, Reg, TimingConfig};

fn main() {
    karatsuba_vs_product_scanning();
    unrolling();
    critical_path();
    timing_sensitivity();
}

/// Measures what full unrolling buys (§3: "we also unroll the loops
/// fully").
fn unrolling() {
    println!("ablation 1b: fully unrolled vs rolled (looped) 512-bit multiplication");
    println!("{}", rule(72));
    for (mode, ise) in [(IseMode::IsaOnly, false), (IseMode::IseSupported, true)] {
        let config = Config {
            radix: Radix::Full,
            ise: mode,
        };
        let mut runner = KernelRunner::new(config);
        let a = U512::from_u64(3);
        let b = U512::from_u64(5);
        let (_, unrolled) = runner.run(OpKind::IntMul, &[a.limbs(), b.limbs()]);

        let prog = rolled_int_mul(ise);
        let mut m = Machine::with_ext(config.extension());
        m.load_program(&prog);
        m.mem.write_limbs(DATA_BASE + 0x100, a.limbs()).unwrap();
        m.mem.write_limbs(DATA_BASE + 0x200, b.limbs()).unwrap();
        let stats = m
            .call(&[
                (Reg::A0, DATA_BASE),
                (Reg::A1, DATA_BASE + 0x100),
                (Reg::A2, DATA_BASE + 0x200),
            ])
            .unwrap();
        println!(
            "{:24} unrolled {:>5} cycles, rolled {:>5} cycles ({:.2}x)",
            config.ise.to_string(),
            unrolled,
            stats.cycles,
            stats.cycles as f64 / unrolled as f64
        );
    }
    println!("{}", rule(72));
    println!("(register-resident, fully unrolled kernels are what Table 4 measures)\n");
}

fn karatsuba_vs_product_scanning() {
    println!("ablation 1: 512-bit integer multiplication technique (cycles)");
    println!("{}", rule(72));
    println!(
        "{:24} {:>16} {:>16} {:>10}",
        "configuration", "product-scanning", "karatsuba (1 lvl)", "winner"
    );
    println!("{}", rule(72));
    for (mode, ise) in [(IseMode::IsaOnly, false), (IseMode::IseSupported, true)] {
        let config = Config {
            radix: Radix::Full,
            ise: mode,
        };
        let mut runner = KernelRunner::new(config);
        let a = U512::from_u64(3);
        let b = U512::from_u64(5);
        let (_, ps) = runner.run(OpKind::IntMul, &[a.limbs(), b.limbs()]);

        let prog = karatsuba_int_mul(ise);
        let mut m = Machine::with_ext(config.extension());
        m.load_program(&prog);
        m.mem.write_limbs(DATA_BASE + 0x100, a.limbs()).unwrap();
        m.mem.write_limbs(DATA_BASE + 0x200, b.limbs()).unwrap();
        let stats = m
            .call(&[
                (Reg::A0, DATA_BASE),
                (Reg::A1, DATA_BASE + 0x100),
                (Reg::A2, DATA_BASE + 0x200),
            ])
            .unwrap();
        let kara = stats.cycles;
        println!(
            "{:24} {:>16} {:>16} {:>10}",
            config.ise.to_string(),
            ps,
            kara,
            if ps < kara { "PS" } else { "Karatsuba" }
        );
    }
    println!("{}", rule(72));
    println!("(paper §4 used product scanning for the same reason)\n");
}

fn critical_path() {
    println!("ablation 2: combinational depth of the multiplier datapath variants");
    println!("{}", rule(72));
    for (name, netlist) in [
        ("base multiplier", base_multiplier().netlist),
        ("XMUL full-radix", full_radix_xmul().netlist),
        ("XMUL reduced-radix", reduced_radix_xmul().netlist),
    ] {
        let d = analyze(&netlist);
        println!(
            "{:22} critical path {:>6.1} unit delays ({} nets)",
            name, d.critical_path, d.nets
        );
    }
    println!("{}", rule(72));
    println!("(§3.3: XMUL is pipelined so the additions stay off the clock-limiting path)\n");
}

fn timing_sensitivity() {
    println!("ablation 3: Fp-multiplication cycles vs core timing parameters");
    println!("{}", rule(72));
    println!(
        "{:34} {:>11} {:>11} {:>11}",
        "timing model", "full ISA", "full ISE", "red. ISE"
    );
    println!("{}", rule(72));
    let variants: [(&str, TimingConfig); 4] = [
        ("Rocket-like (default)", TimingConfig::default()),
        (
            "3-cycle multiplier",
            TimingConfig {
                mul_latency: 3,
                ..TimingConfig::default()
            },
        ),
        (
            "3-cycle loads",
            TimingConfig {
                load_latency: 3,
                ..TimingConfig::default()
            },
        ),
        (
            "single-cycle multiplier",
            TimingConfig {
                mul_latency: 1,
                ..TimingConfig::default()
            },
        ),
    ];
    for (name, timing) in variants {
        print!("{:34}", name);
        for config in [Config::ALL[0], Config::ALL[1], Config::ALL[3]] {
            let set = KernelSet::build(config);
            let mut m = Machine::with_ext(config.extension());
            m.set_timing(timing);
            m.load_program(set.kernel(OpKind::FpMul));
            let pool = match config.radix {
                Radix::Full => mpise_fp::kernels::const_pool_full(),
                Radix::Reduced => mpise_fp::kernels::const_pool_red(),
            };
            m.mem.write_limbs(DATA_BASE + 0x300, &pool).unwrap();
            let n = config.elem_words();
            m.mem
                .write_limbs(DATA_BASE + 0x100, &vec![3u64; n])
                .unwrap();
            m.mem
                .write_limbs(DATA_BASE + 0x200, &vec![5u64; n])
                .unwrap();
            let stats = m
                .call(&[
                    (Reg::A0, DATA_BASE),
                    (Reg::A1, DATA_BASE + 0x100),
                    (Reg::A2, DATA_BASE + 0x200),
                    (Reg::A3, DATA_BASE + 0x300),
                ])
                .unwrap();
            print!(" {:>11}", stats.cycles);
        }
        println!();
    }
    println!("{}", rule(72));
    println!("(the ISE advantage persists across plausible core timings)");
}
