//! The reproducible benchmark pipeline (kernel matrix + CSIDH action +
//! interpreter throughput → `BENCH_<date>.json`). See
//! [`mpise_bench::pipeline`] and DESIGN.md §9.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(mpise_bench::pipeline::run_cli(&args));
}
