//! Thin entry point for the constant-time gate; see
//! [`mpise_bench::ctcheck`] for what is checked.

fn main() {
    std::process::exit(mpise_bench::ctcheck::run());
}
