//! Reproduces Figures 1–3: the binary encodings and architectural
//! semantics of the six proposed instructions, printed from the live
//! registries with encode/decode round-trip checks.
//!
//! ```text
//! cargo run -p mpise-bench --bin figures
//! ```

use mpise_bench::rule;
use mpise_core::{full_radix_ext, reduced_radix_ext};
use mpise_sim::encode::encode;
use mpise_sim::ext::{CustomFormat, IsaExtension};
use mpise_sim::{Inst, Reg};

fn field(raw: u32, hi: u32, lo: u32) -> u32 {
    (raw >> lo) & ((1 << (hi - lo + 1)) - 1)
}

fn show(ext: &IsaExtension) {
    for def in ext.defs() {
        let inst = Inst::Custom {
            id: def.id,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
            rs3: if def.format.has_rs3() {
                Reg::A3
            } else {
                Reg::Zero
            },
            imm: if def.format.has_rs3() { 0 } else { 57 },
        };
        let raw = encode(&inst, ext).expect("encodes");
        let back = mpise_sim::decode::decode(raw, ext).expect("decodes");
        assert_eq!(back, inst, "{} round trip", def.mnemonic);
        match def.format {
            CustomFormat::R4 {
                opcode,
                funct3,
                funct2,
            } => {
                println!(
                    "  {:10} rd, rs1, rs2, rs3   raw={raw:#010x}  \
                     [rs3={:<2} f2={:02b} rs2={:<2} rs1={:<2} f3={:03b} rd={:<2} opc={:07b}]",
                    def.mnemonic,
                    field(raw, 31, 27),
                    funct2,
                    field(raw, 24, 20),
                    field(raw, 19, 15),
                    funct3,
                    field(raw, 11, 7),
                    opcode
                );
            }
            CustomFormat::RShamt {
                opcode,
                funct3,
                bit31,
            } => {
                println!(
                    "  {:10} rd, rs1, rs2, imm   raw={raw:#010x}  \
                     [b31={} imm={:<2} rs2={:<2} rs1={:<2} f3={:03b} rd={:<2} opc={:07b}]",
                    def.mnemonic,
                    bit31 as u8,
                    field(raw, 30, 25),
                    field(raw, 24, 20),
                    field(raw, 19, 15),
                    funct3,
                    field(raw, 11, 7),
                    opcode
                );
            }
        }
    }
}

fn main() {
    println!("Figures 1-3: proposed instruction encodings (encode/decode round-trip checked)");
    println!("{}", rule(100));
    println!("Figure 1 + Figure 3 (cadd): full-radix ISE");
    show(&full_radix_ext());
    println!();
    println!("Figure 2 + Figure 3 (sraiadd): reduced-radix ISE");
    show(&reduced_radix_ext());
    println!("{}", rule(100));

    // Semantics spot checks straight from the figures' pseudo-code.
    use mpise_core::intrinsics::*;
    let (x, y, z) = (0xffff_ffff_ffff_fff0u64, 0x1234_5678u64, 99u64);
    let p = x as u128 * y as u128 + z as u128;
    assert_eq!(maddlu(x, y, z), p as u64);
    assert_eq!(maddhu(x, y, z), (p >> 64) as u64);
    assert_eq!(cadd(u64::MAX, 1, z), z + 1);
    let q = x as u128 * y as u128;
    assert_eq!(madd57lu(x, y, z), ((q as u64) & ((1 << 57) - 1)) + z);
    assert_eq!(madd57hu(x, y, z), ((q >> 57) as u64).wrapping_add(z));
    assert_eq!(sraiadd(z, x, 57), z.wrapping_add(((x as i64) >> 57) as u64));
    println!("semantics: all six instructions match the figures' pseudo-code  [ok]");
}
