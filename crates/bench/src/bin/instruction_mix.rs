//! Static instruction mix of every generated kernel — the data behind
//! the paper's instruction-count arguments (§3.1: the MAC "dominates
//! the execution time", the `sltu` carry checks are the RISC-V tax).
//!
//! ```text
//! cargo run --release -p mpise-bench --bin instruction_mix
//! ```

use mpise_bench::rule;
use mpise_fp::kernels::{Config, KernelSet, OpKind};
use mpise_sim::profile::static_mix;

fn main() {
    for config in Config::ALL {
        let set = KernelSet::build(config);
        let ext = config.extension();
        println!("== {config}");
        println!(
            "{:26} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6}",
            "kernel", "total", "mul*", "madd*", "sltu", "add/sub", "ld/sd", "other"
        );
        println!("{}", rule(78));
        for (op, prog) in set.iter() {
            let mix = static_mix(prog, &ext);
            let mul = mix.count("mul") + mix.count("mulhu");
            let madd = mix.count("maddlu")
                + mix.count("maddhu")
                + mix.count("cadd")
                + mix.count("madd57lu")
                + mix.count("madd57hu")
                + mix.count("sraiadd");
            let sltu = mix.count("sltu");
            let addsub = mix.count("add") + mix.count("sub") + mix.count("addi");
            let mem = mix.count("ld") + mix.count("sd");
            let other = mix.total() - mul - madd - sltu - addsub - mem;
            println!(
                "{:26} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6}",
                op.label(),
                mix.total(),
                mul,
                madd,
                sltu,
                addsub,
                mem,
                other
            );
        }
        println!();
    }
    println!("(`sltu` columns show the carry-flag tax the ISEs remove: compare the");
    println!(" ISA-only and ISE-supported multiplication/reduction kernels)");

    // Machine-checked claim: the ISEs eliminate most sltu instructions
    // from the multiplicative kernels.
    let isa = KernelSet::build(Config::ALL[0]);
    let ise = KernelSet::build(Config::ALL[1]);
    let sltu =
        |set: &KernelSet, op| static_mix(set.kernel(op), &set.config.extension()).count("sltu");
    assert!(sltu(&ise, OpKind::IntMul) < sltu(&isa, OpKind::IntMul) / 4);
    println!();
    println!("check: full-radix ISE removes >75% of the IntMul sltu instructions  [ok]");
}
