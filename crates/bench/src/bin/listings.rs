//! Reproduces the instruction-count and latency claims of Listings 1–4
//! and the carry-propagation sequences of §3.2.
//!
//! ```text
//! cargo run -p mpise-bench --bin listings
//! ```

use mpise_bench::rule;
use mpise_core::{full_radix_ext, reduced_radix_ext};
use mpise_fp::kernels::mac;
use mpise_sim::asm::Program;
use mpise_sim::ext::IsaExtension;
use mpise_sim::{Inst, Machine, Reg};

/// Runs a MAC snippet `reps` times back-to-back and reports the cycle
/// count, showing throughput including pipelining effects.
fn latency(prog: &Program, ext: IsaExtension, reps: usize) -> u64 {
    let mut insts = Vec::new();
    for _ in 0..reps {
        insts.extend_from_slice(prog.insts());
    }
    insts.push(Inst::Ebreak);
    let mut m = Machine::with_ext(ext);
    m.load_program(&Program::from_insts(insts));
    m.cpu.write_reg(Reg::A0, 0x1234_5678_9abc_def0);
    m.cpu.write_reg(Reg::A1, 0x0fed_cba9_8765_4321);
    let stats = m.run().expect("snippet runs");
    stats.cycles - 1 // exclude the ebreak
}

fn main() {
    let plain = || IsaExtension::new("rv64im");
    let rows = [
        (
            "Listing 1: full-radix MAC, ISA-only",
            mac::listing1_full_isa(),
            plain(),
            8usize,
        ),
        (
            "Listing 2: reduced-radix MAC, ISA-only",
            mac::listing2_red_isa(),
            plain(),
            6,
        ),
        (
            "Listing 3: full-radix MAC, ISE",
            mac::listing3_full_ise(),
            full_radix_ext(),
            4,
        ),
        (
            "Listing 4: reduced-radix MAC, ISE",
            mac::listing4_red_ise(),
            reduced_radix_ext(),
            2,
        ),
        (
            "carry propagation, ISA-only",
            mac::carry_prop_isa(),
            plain(),
            3,
        ),
        (
            "carry propagation, ISE (sraiadd)",
            mac::carry_prop_ise(),
            reduced_radix_ext(),
            2,
        ),
    ];
    println!("MAC and carry-propagation micro-kernels (paper §3.1/§3.2)");
    println!("{}", rule(92));
    println!(
        "{:42} {:>7} {:>7} {:>11} {:>11}",
        "Snippet", "#insts", "paper", "1x cycles", "8x cycles"
    );
    println!("{}", rule(92));
    for (name, prog, ext, paper_count) in rows {
        let got = prog.len();
        let c1 = latency(&prog, ext.clone(), 1);
        let c8 = latency(&prog, ext, 8);
        println!(
            "{:42} {:>7} {:>7} {:>11} {:>11}",
            name, got, paper_count, c1, c8
        );
        assert_eq!(got, paper_count, "{name}: instruction count mismatch");
    }
    println!("{}", rule(92));
    println!("instruction counts match the paper: 8 -> 4 (full-radix MAC),");
    println!("6 -> 2 (reduced-radix MAC), 3 -> 2 (carry propagation)");

    // Disassembly of the four listings for the record.
    println!();
    for (name, prog, ext) in [
        ("Listing 1", mac::listing1_full_isa(), plain()),
        ("Listing 2", mac::listing2_red_isa(), plain()),
        ("Listing 3", mac::listing3_full_ise(), full_radix_ext()),
        ("Listing 4", mac::listing4_red_ise(), reduced_radix_ext()),
    ] {
        println!("{name}:");
        print!("{}", prog.disassemble(&ext));
    }
}
