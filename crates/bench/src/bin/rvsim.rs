//! A standalone command-line front-end for the simulator: assemble an
//! RV64 assembly file (optionally with one of the paper's ISEs
//! attached) and run it on the Rocket pipeline model.
//!
//! ```text
//! cargo run --release -p mpise-bench --bin rvsim -- [options] <file.s>
//!
//! options:
//!   --ise full|reduced   attach an ISE (default: base RV64IM only)
//!   --trace N            print the first N retired instructions
//!   --regs               dump nonzero registers on exit
//!   --mix                print the executed instruction mix
//! ```
//!
//! Programs stop at `ebreak`/`ecall`. Registers `a0..a7` start at 0;
//! data memory starts at 0x8000_0000 (`sp` points at its top).

use mpise_core::{full_radix_ext, reduced_radix_ext};
use mpise_sim::asm::parse_program;
use mpise_sim::ext::IsaExtension;
use mpise_sim::profile::InstMix;
use mpise_sim::trace::Tracer;
use mpise_sim::{Machine, Reg};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ise: Option<String> = None;
    let mut trace: usize = 0;
    let mut dump_regs = false;
    let mut show_mix = false;
    let mut file: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ise" => ise = it.next().cloned(),
            "--trace" => trace = it.next().and_then(|s| s.parse().ok()).unwrap_or(32),
            "--regs" => dump_regs = true,
            "--mix" => show_mix = true,
            other if !other.starts_with("--") => file = Some(other.to_owned()),
            other => {
                eprintln!("unknown option `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(file) = file else {
        eprintln!("usage: rvsim [--ise full|reduced] [--trace N] [--regs] [--mix] <file.s>");
        return ExitCode::FAILURE;
    };

    let ext: IsaExtension = match ise.as_deref() {
        None => IsaExtension::new("rv64im"),
        Some("full") => full_radix_ext(),
        Some("reduced") => reduced_radix_ext(),
        Some(other) => {
            eprintln!("unknown ISE `{other}` (expected `full` or `reduced`)");
            return ExitCode::FAILURE;
        }
    };

    let source = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read `{file}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match parse_program(&source, &ext) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("assembly error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut machine = Machine::with_ext(ext);
    machine.load_program(&program);
    if trace > 0 {
        machine.set_tracer(Some(Tracer::new(trace)));
    }
    let stats = match machine.run() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("runtime error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(t) = machine.take_tracer() {
        print!("{}", t.render());
    }
    if dump_regs {
        for r in Reg::ALL {
            let v = machine.cpu.read_reg(r);
            if v != 0 && r != Reg::Sp {
                println!("{:5} = {v:#018x} ({v})", r.abi_name());
            }
        }
    }
    if show_mix {
        // Re-run with a mix collector (cheap: programs are small).
        let mut mix = InstMix::new();
        let ext2 = machine.ext().clone();
        for inst in program.insts() {
            // static mix; dynamic counts require the trace
            mix.record(inst, &ext2);
        }
        println!("static instruction mix:");
        print!("{}", mix.render());
    }
    println!(
        "halted: {:?}, {} instructions, {} cycles (CPI {:.2})",
        stats.halt,
        stats.instret,
        stats.cycles,
        stats.cpi()
    );
    ExitCode::SUCCESS
}
