//! Reproduces Table 1: overview of the two ISE sets, generated from
//! the live instruction registries (not a hard-coded table).
//!
//! ```text
//! cargo run -p mpise-bench --bin table1
//! ```

use mpise_bench::rule;
use mpise_core::guidelines::check;
use mpise_core::{full_radix_ext, reduced_radix_ext};

fn main() {
    let full = full_radix_ext();
    let red = reduced_radix_ext();

    // Classify by functionality: multiply-add vs carry propagation.
    let madds = |e: &mpise_sim::ext::IsaExtension| -> Vec<&'static str> {
        e.defs()
            .iter()
            .filter(|d| d.mnemonic.contains("madd"))
            .map(|d| d.mnemonic)
            .collect()
    };
    let carries = |e: &mpise_sim::ext::IsaExtension| -> Vec<&'static str> {
        e.defs()
            .iter()
            .filter(|d| !d.mnemonic.contains("madd"))
            .map(|d| d.mnemonic)
            .collect()
    };

    println!("Table 1: overview of the ISEs");
    println!("{}", rule(70));
    println!(
        "{:22} {:>20} {:>24}",
        "Functionality", "full-radix", "reduced-radix"
    );
    println!("{}", rule(70));
    println!(
        "{:22} {:>20} {:>24}",
        "Integer multiply-add",
        madds(&full).join(", "),
        madds(&red).join(", ")
    );
    println!(
        "{:22} {:>20} {:>24}",
        "Carry propagation",
        carries(&full).join(", "),
        carries(&red).join(", ")
    );
    println!("{}", rule(70));

    for (name, e) in [("full-radix", &full), ("reduced-radix", &red)] {
        let report = check(e);
        println!(
            "{name}: {} instructions ({} R4-format, {} two-source), design guidelines: {}",
            e.defs().len(),
            report.r4_count,
            report.two_source_count,
            if report.is_compliant() {
                "compliant"
            } else {
                "VIOLATED"
            }
        );
    }
}
