//! Reproduces Table 2: examples of existing integer fused multiply-add
//! instructions on ARM and Intel AVX-512, with live conformance checks
//! of the executable reference models and a demonstration of the
//! AVX-512IFMA multiplier-saturation problem (§3.2).
//!
//! ```text
//! cargo run -p mpise-bench --bin table2
//! ```

use mpise_bench::rule;
use mpise_core::intrinsics::madd57lu;
use mpise_core::related::{
    arm_mla, avx512_vpmadd52huq, avx512_vpmadd52luq, ifma_saturates, Msa2, TABLE2,
};

fn main() {
    println!("Table 2: existing integer fused multiply-add instructions");
    println!("{}", rule(100));
    println!(
        "{:14} {:10} {:48} {:>8} {:>6} {:>5}",
        "Instruction", "ISA/ISE", "Computation", "Radix", "MSA2", "#src"
    );
    println!("{}", rule(100));
    for row in TABLE2 {
        println!(
            "{:14} {:10} {:48} {:>8} {:>6} {:>5}",
            row.instruction,
            row.isa,
            row.computation,
            row.radix.to_string(),
            if row.msa2 { "yes" } else { "no" },
            row.source_regs
        );
    }
    println!("{}", rule(100));

    // Live check: mla is MSA2 with j=0, m=2^64-1.
    let f = Msa2 { j: 0, m: u64::MAX };
    let (x, y, z) = (0xdead_beefu64, 0xcafe_f00du64, 42u64);
    assert_eq!(f.eval(x, y, z), arm_mla(x, y, z));
    println!("conformance: mla == MSA2(j=0, m=2^64-1) on sample inputs  [ok]");

    // The saturation problem (motivates the paper's full 64-bit
    // multiplier for the reduced-radix ISE).
    let fat = (1u64 << 53) + 7; // a 52-bit limb grown by a delayed carry
    let b = 123_456_789u64;
    assert!(ifma_saturates(fat, b));
    let ifma_hi = avx512_vpmadd52huq(fat, b, 0);
    let true_hi = (((fat as u128 * b as u128) >> 52) as u64) & ((1 << 52) - 1);
    println!(
        "saturation:  vpmadd52huq({fat:#x}, {b:#x}) = {ifma_hi:#x}, true hi52 = {true_hi:#x}  [IFMA silently wrong]"
    );
    let madd_lo = madd57lu(fat, b, 0);
    let true_lo57 = ((fat as u128 * b as u128) as u64) & ((1 << 57) - 1);
    assert_eq!(madd_lo, true_lo57);
    println!("             madd57lu on the same limbs is exact (full 64-bit multiplier)  [ok]");
    let _ = avx512_vpmadd52luq(fat, b, 0);
}
