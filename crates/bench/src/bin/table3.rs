//! Reproduces Table 3: hardware cost of the two ISE designs on top of
//! the Rocket base core.
//!
//! ```text
//! cargo run --release -p mpise-bench --bin table3
//! ```

use mpise_bench::{rule, PAPER_TABLE3};
use mpise_hw::{table3, Table3};

fn main() {
    let t: Table3 = table3();
    println!("Table 3: results of hardware-oriented evaluation");
    println!("measured = structural model (netlist + 6-LUT mapper + GE area);");
    println!("paper    = Vivado 2019.1 synthesis for an Artix-7 (DAC'24 Table 3)");
    println!("{}", rule(98));
    println!(
        "{:32} {:>12} {:>12} {:>8} {:>14}",
        "Components", "LUTs", "Regs", "DSPs", "CMOS"
    );
    println!("{}", rule(98));
    for (row, paper) in [&t.base, &t.full, &t.reduced].iter().zip(PAPER_TABLE3) {
        println!(
            "{:32} {:>5} ({:>5}) {:>5} ({:>5}) {:>3} ({:>2}) {:>7} ({:>6})",
            row.name, row.luts, paper.1, row.regs, paper.2, row.dsps, paper.3, row.cmos, paper.4
        );
    }
    println!("{}", rule(98));
    println!(
        "overheads vs base core: full-radix {:+.1}% LUTs / {:+.1}% Regs (paper: +4% / +11%)",
        t.lut_overhead_percent(&t.full),
        t.reg_overhead_percent(&t.full)
    );
    println!(
        "                        reduced-radix {:+.1}% LUTs / {:+.1}% Regs (paper: +9% / +9%)",
        t.lut_overhead_percent(&t.reduced),
        t.reg_overhead_percent(&t.reduced)
    );
    println!();
    println!("XMUL netlist mapping detail (multiplier datapath only):");
    for (name, r) in ["base", "full-radix", "reduced-radix"]
        .iter()
        .zip(t.xmul_reports)
    {
        println!(
            "  {:14} {:>5} LUTs {:>5} Regs {:>3} DSPs ({} cells)",
            name, r.luts, r.regs, r.dsps, r.cells
        );
    }
    println!();
    println!("(base-core row is the documented calibration constant — we cannot run");
    println!(" Vivado on Rocket here; the ISE deltas are derived from generated netlists)");
}
