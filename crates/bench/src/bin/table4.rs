//! Reproduces Table 4: execution times (cycles) of CSIDH-512
//! operations in the four configurations, including the class group
//! action.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p mpise-bench --bin table4 [--quick] [--full-sim]
//! ```
//!
//! * default: all eight kernel rows are measured by executing the
//!   generated assembly on the Rocket pipeline model; the group-action
//!   row is estimated as Σ op-count × per-op cycles, with the op
//!   counts taken from an instrumented run of the real group action
//!   (exponent bound ±5, fixed seed);
//! * `--quick`: exponent bound ±1 for the instrumented run;
//! * `--full-sim`: additionally runs the group action with *every
//!   field operation executed on the simulator* (slow; minutes) and
//!   reports the directly simulated cycle counts.

use mpise_bench::{paper_cycles, ratio, rule, PAPER_ACTION_MCYCLES};
use mpise_csidh::{group_action, PrivateKey, PublicKey};
use mpise_fp::kernels::{Config, OpKind};
use mpise_fp::measure::measure_config;
use mpise_fp::simfp::SimFp;
use mpise_fp::{CountingFp, FpFull, OpCounts};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[allow(clippy::needless_range_loop)] // cfg indexes two parallel tables
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let full_sim = args.iter().any(|a| a == "--full-sim");
    let bound = if quick { 1 } else { 5 };

    eprintln!("measuring kernels on the Rocket pipeline model ...");
    let measurements: Vec<Vec<(OpKind, u64)>> = Config::ALL
        .iter()
        .map(|&c| {
            measure_config(c, 2)
                .into_iter()
                .map(|m| (m.op, m.cycles))
                .collect()
        })
        .collect();
    let cycles = |cfg: usize, op: OpKind| -> u64 {
        measurements[cfg]
            .iter()
            .find(|(o, _)| *o == op)
            .expect("measured")
            .1
    };

    eprintln!("instrumenting the group action (exponent bound ±{bound}) ...");
    let counting = CountingFp::new(FpFull::new());
    let mut rng = StdRng::seed_from_u64(0xC51D);
    let key = PrivateKey::random_with_bound(&mut rng, bound);
    let pk = group_action(&counting, &mut rng, &PublicKey::BASE, &key);
    let counts = counting.counts();
    eprintln!(
        "  group action: {} mul, {} sqr, {} add, {} sub (public key {:.16}...)",
        counts.mul,
        counts.sqr,
        counts.add,
        counts.sub,
        pk.a.to_hex()
    );

    let action_cycles = |cfg: usize| -> u64 {
        counts.mul * cycles(cfg, OpKind::FpMul)
            + counts.sqr * cycles(cfg, OpKind::FpSqr)
            + counts.add * cycles(cfg, OpKind::FpAdd)
            + counts.sub * cycles(cfg, OpKind::FpSub)
    };

    println!("Table 4: execution times of CSIDH-512 operations (clock cycles)");
    println!("measured = this reproduction (Rocket pipeline model); paper = DAC'24 Table 4");
    println!("{}", rule(100));
    println!(
        "{:28} {:>16} {:>16} {:>16} {:>16}",
        "Operation", "Full ISA-only", "Full ISE-sup.", "Red. ISA-only", "Red. ISE-sup."
    );
    println!("{}", rule(100));
    for op in OpKind::ALL {
        print!("{:28}", op.label());
        for cfg in 0..4 {
            print!(" {:>9} ({:>4})", cycles(cfg, op), paper_cycles(op, cfg));
        }
        println!();
    }
    println!("{}", rule(100));
    let base = action_cycles(0) as f64;
    print!("{:28}", "CSIDH group action (est.)");
    for cfg in 0..4 {
        let c = action_cycles(cfg);
        print!(
            " {:>9.1}M ({:>3.0}M)",
            c as f64 / 1e6,
            PAPER_ACTION_MCYCLES[cfg]
        );
    }
    println!();
    print!("{:28}", "  speedup vs full ISA-only");
    for cfg in 0..4 {
        let r = ratio(base, action_cycles(cfg) as f64);
        let p = ratio(PAPER_ACTION_MCYCLES[0], PAPER_ACTION_MCYCLES[cfg]);
        print!(" {:>10} ({:>4})", r, p);
    }
    println!();
    println!("{}", rule(100));
    println!("(values in parentheses: the paper's numbers; the group-action row is");
    println!(" op-count x per-op-cycles with counts from the instrumented action)");

    if full_sim {
        println!();
        println!("direct full simulation of the group action (every Fp op on the simulator):");
        for (cfg_idx, &config) in Config::ALL.iter().enumerate() {
            let sim = SimFp::new(config);
            let mut rng = StdRng::seed_from_u64(0xC51D);
            let t0 = std::time::Instant::now();
            let pk_sim = group_action(&sim, &mut rng, &PublicKey::BASE, &key);
            assert_eq!(pk_sim, pk, "simulated action disagrees with host action");
            println!(
                "  {:32} {:>10.1}M cycles  ({} kernel calls, host time {:.1?})",
                config.to_string(),
                sim.cycles() as f64 / 1e6,
                sim.calls(),
                t0.elapsed()
            );
            let _ = cfg_idx;
        }
    }

    // Shape assertions (the reproduction's success criteria).
    let verdict = check_shape(&counts, &|cfg, op| cycles(cfg, op));
    println!();
    match verdict {
        Ok(()) => println!("shape check: PASS (all Table 4 orderings hold)"),
        Err(e) => println!("shape check: FAIL — {e}"),
    }
}

fn check_shape(counts: &OpCounts, cycles: &dyn Fn(usize, OpKind) -> u64) -> Result<(), String> {
    // ISA-only: full radix wins Fp-mul/sqr, loses add/sub.
    if cycles(0, OpKind::FpMul) >= cycles(2, OpKind::FpMul) {
        return Err("full-radix ISA-only Fp-mul should beat reduced-radix".into());
    }
    // ISE: reduced radix wins Fp-mul/sqr.
    if cycles(3, OpKind::FpMul) >= cycles(1, OpKind::FpMul) {
        return Err("reduced-radix ISE Fp-mul should beat full-radix ISE".into());
    }
    if cycles(3, OpKind::FpSqr) >= cycles(1, OpKind::FpSqr) {
        return Err("reduced-radix ISE Fp-sqr should beat full-radix ISE".into());
    }
    // Group action speedups in the paper's ballpark.
    let act = |cfg: usize| {
        (counts.mul * cycles(cfg, OpKind::FpMul)
            + counts.sqr * cycles(cfg, OpKind::FpSqr)
            + counts.add * cycles(cfg, OpKind::FpAdd)
            + counts.sub * cycles(cfg, OpKind::FpSub)) as f64
    };
    let speedup_red = act(0) / act(3);
    if !(1.3..2.4).contains(&speedup_red) {
        return Err(format!(
            "reduced-ISE speedup {speedup_red:.2}x outside the expected 1.3-2.4x window (paper: 1.71x)"
        ));
    }
    let speedup_full = act(0) / act(1);
    if !(1.1..2.0).contains(&speedup_full) {
        return Err(format!(
            "full-ISE speedup {speedup_full:.2}x outside the expected 1.1-2.0x window (paper: 1.39x)"
        ));
    }
    if speedup_red <= speedup_full {
        return Err("reduced-radix ISE must be the faster option (paper's conclusion)".into());
    }
    Ok(())
}
