//! `ctcheck` — the repository's constant-time gate.
//!
//! Runs the two static passes of `mpise-analyze` over everything this
//! repository ships and prints a per-kernel PASS/FAIL report:
//!
//! 1. **ISA encoding lint** of both Table 1 extensions (encoding
//!    contract, base-opcode collisions, encode→decode round-trips);
//! 2. **secret-taint analysis** of all 32 generated kernels (4
//!    configurations × 8 operations) under the kernel ABI threat model
//!    (operands secret; constants, pointers and code public);
//! 3. **constant-work check** of the dummy-isogeny group action on the
//!    host backend (`real + dummy == NUM_PRIMES × budget` for disparate
//!    keys);
//! 4. a **negative fixture** — a deliberately leaky program branching
//!    on a secret limb — which must FAIL with the offending
//!    pc/instruction, proving the analysis actually bites.
//!
//! Exit status is 0 only if every positive check passes *and* the
//! negative fixture is caught.

use mpise_analyze::lint::lint_extension;
use mpise_analyze::taint::{analyze_program, AnalysisOptions, Secrecy, TaintSpec};
use mpise_analyze::ViolationKind;
use mpise_csidh::ct_action::{group_action_ct, CtPrivateKey};
use mpise_csidh::PublicKey;
use mpise_fp::ctspec::verify_kernel;
use mpise_fp::kernels::{Config, OpKind};
use mpise_fp::params::NUM_PRIMES;
use mpise_fp::FpFull;
use mpise_sim::asm::Program;
use mpise_sim::ext::IsaExtension;
use mpise_sim::inst::{BranchOp, Inst, LoadOp};
use mpise_sim::Reg;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs every check, printing the report to stdout; returns the process
/// exit code (0 = gate passed).
pub fn run() -> i32 {
    let mut ok = true;

    println!("== ISA encoding lint ==");
    for ext in [
        mpise_core::full_radix_ext(),
        mpise_core::reduced_radix_ext(),
    ] {
        let report = lint_extension(&ext);
        let verdict = if report.passed() { "PASS" } else { "FAIL" };
        println!(
            "  {:<10} ({} instructions) {:.<40} {verdict}",
            report.ext_name, report.checked, ""
        );
        if !report.findings.is_empty() {
            for f in &report.findings {
                println!("      {f}");
            }
        }
        ok &= report.passed();
    }

    println!();
    println!("== Static constant-time taint analysis (secret operands: a1, a2) ==");
    for config in Config::ALL {
        for op in OpKind::ALL {
            let report = verify_kernel(config, op);
            let verdict = if report.passed() { "PASS" } else { "FAIL" };
            println!(
                "  {:<28} {:<11} {:>5} insts {:.<12} {verdict}",
                config.to_string(),
                format!("{op:?}"),
                report.insts_analyzed,
                ""
            );
            for d in &report.diagnostics {
                println!("      {d}");
            }
            ok &= report.passed();
        }
    }

    println!();
    println!("== Constant-time group action (dummy isogenies, host backend) ==");
    ok &= check_ct_action();

    println!();
    println!("== Negative fixture: secret-dependent branch must be caught ==");
    ok &= check_negative_fixture();

    println!();
    println!("overall: {}", if ok { "PASS" } else { "FAIL" });
    i32::from(!ok)
}

/// Evaluates the CT action for keys at both extremes of the exponent
/// range and checks the key-independent work-count invariant. The
/// field arithmetic the action lowers to is exactly the kernels
/// verified above.
fn check_ct_action() -> bool {
    let f = FpFull::new();
    let budget = 1u8;
    let keys: [(&str, CtPrivateKey); 2] = [
        (
            "all-dummy",
            CtPrivateKey {
                exponents: [0; NUM_PRIMES],
                budget,
            },
        ),
        (
            "all-real",
            CtPrivateKey {
                exponents: [budget; NUM_PRIMES],
                budget,
            },
        ),
    ];
    let mut ok = true;
    let mut totals = Vec::new();
    for (name, key) in keys {
        let mut rng = StdRng::seed_from_u64(0xC51D);
        let (_, stats) = group_action_ct(&f, &mut rng, &PublicKey::BASE, &key);
        let verdict = match stats.verify_constant_work(budget) {
            Ok(()) => "PASS",
            Err(e) => {
                println!("      {e}");
                ok = false;
                "FAIL"
            }
        };
        println!(
            "  {name:<12} {} real + {} dummy isogenies {:.<14} {verdict}",
            stats.real_isogenies, stats.dummy_isogenies, ""
        );
        totals.push(stats.real_isogenies + stats.dummy_isogenies);
    }
    if totals.windows(2).any(|w| w[0] != w[1]) {
        println!("      isogeny totals differ across keys: {totals:?}");
        ok = false;
    }
    ok
}

/// A deliberately leaky program: loads a secret limb and branches on
/// it. The analysis must FAIL it and name the branch.
fn check_negative_fixture() -> bool {
    let fixture = Program::from_insts(vec![
        Inst::Load {
            op: LoadOp::Ld,
            rd: Reg::T0,
            rs1: Reg::A1,
            offset: 0,
        },
        // "Skip the reduction when the limb is zero" — the classic
        // variable-time shortcut the paper's kernels avoid.
        Inst::Branch {
            op: BranchOp::Beq,
            rs1: Reg::T0,
            rs2: Reg::Zero,
            offset: 8,
        },
        Inst::Ebreak,
    ]);
    let mut spec = TaintSpec::new();
    let key = spec.region("key-limbs", Secrecy::Secret);
    spec.entry_pointer(Reg::A1, key);
    let report = analyze_program(
        &fixture,
        &IsaExtension::new("rv64im"),
        &spec,
        &AnalysisOptions::default(),
    );

    let caught = report
        .diagnostics
        .iter()
        .any(|d| d.kind == ViolationKind::SecretBranch && d.pc == 4 && d.inst.starts_with("beq"));
    if caught {
        println!("  leaky fixture rejected as expected:");
        for d in &report.diagnostics {
            println!("      {d}");
        }
        println!("  negative fixture {:.<44} PASS (reported FAIL)", "");
        true
    } else {
        println!(
            "  negative fixture NOT caught — analysis is unsound (diagnostics: {:?})",
            report.diagnostics
        );
        false
    }
}
