//! # mpise-bench — reproduction harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index):
//!
//! | Binary     | Reproduces                                            |
//! |------------|-------------------------------------------------------|
//! | `table1`   | Table 1 — overview of the two ISE sets                |
//! | `table2`   | Table 2 — existing ARM/AVX-512 fused multiply-adds    |
//! | `table3`   | Table 3 — hardware cost (LUTs/Regs/DSPs/CMOS)         |
//! | `table4`   | Table 4 — cycle counts of all operations + group action|
//! | `listings` | Listings 1–4 — MAC instruction counts and latencies   |
//! | `figures`  | Figures 1–3 — instruction encodings and semantics     |
//! | `bench`    | Full benchmark pipeline → `BENCH_<date>.json`         |
//!
//! This library holds the paper's reference numbers (for side-by-side
//! printing) and small formatting helpers shared by the binaries.

pub mod ctcheck;
pub mod pipeline;

use mpise_fp::kernels::OpKind;

/// The paper's Table 4 cycle counts, row-major:
/// `[full-ISA, full-ISE, reduced-ISA, reduced-ISE]` per operation.
pub const PAPER_TABLE4: [(OpKind, [u64; 4]); 8] = [
    (OpKind::IntMul, [608, 371, 625, 303]),
    (OpKind::IntSqr, [440, 371, 398, 216]),
    (OpKind::MontRedc, [730, 469, 818, 389]),
    (OpKind::FastReduce, [107, 107, 112, 104]),
    (OpKind::FpAdd, [163, 163, 148, 132]),
    (OpKind::FpSub, [143, 143, 139, 123]),
    (OpKind::FpMul, [1446, 954, 1561, 799]),
    (OpKind::FpSqr, [1279, 951, 1334, 712]),
];

/// The paper's group-action cycle counts (millions), same column
/// order.
pub const PAPER_ACTION_MCYCLES: [f64; 4] = [701.0, 502.9, 736.2, 411.1];

/// The paper's Table 3 rows: (label, LUTs, Regs, DSPs, CMOS).
pub const PAPER_TABLE3: [(&str, u64, u64, u64, u64); 3] = [
    ("Base core", 4807, 2156, 16, 428_680),
    ("Base core + ISE (full-radix)", 5019, 2390, 16, 483_248),
    ("Base core + ISE (reduced-radix)", 5223, 2352, 16, 495_290),
];

/// Looks up a paper Table 4 reference value.
pub fn paper_cycles(op: OpKind, column: usize) -> u64 {
    PAPER_TABLE4
        .iter()
        .find(|(o, _)| *o == op)
        .map(|(_, v)| v[column])
        .expect("all ops present")
}

/// Renders a ratio like `1.71x`.
pub fn ratio(baseline: f64, value: f64) -> String {
    format!("{:.2}x", baseline / value)
}

/// Prints a rule line of the given width.
pub fn rule(width: usize) -> String {
    "-".repeat(width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_consistent() {
        assert_eq!(paper_cycles(OpKind::FpMul, 0), 1446);
        assert_eq!(paper_cycles(OpKind::IntSqr, 3), 216);
        // The headline 1.71x speedup: full-ISA action vs reduced-ISE.
        let speedup = PAPER_ACTION_MCYCLES[0] / PAPER_ACTION_MCYCLES[3];
        assert!((speedup - 1.705).abs() < 0.01);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(701.0, 411.1), "1.71x");
        assert_eq!(rule(3), "---");
    }
}
