//! `bench` — the reproducible benchmark pipeline.
//!
//! One binary (`cargo run --release --bin bench`) measures everything
//! the paper's evaluation (Tables 4–5) is built from and writes a
//! machine-readable `BENCH_<date>.json`:
//!
//! 1. **Kernel matrix** — all four configurations × all eight Fp
//!    operations, executed on the Rocket pipeline model with one worker
//!    thread per configuration
//!    ([`mpise_fp::measure::measure_matrix_parallel`]). Every kernel is
//!    validated against the host arithmetic on random inputs and
//!    checked to be constant-time before its cycle count is reported.
//! 2. **CSIDH-512 group action** — the Table 4 bottom row, estimated as
//!    Σ op-count × per-op cycles with op counts from an instrumented
//!    host run, plus (in full mode) a direct full-simulation run whose
//!    public key is validated against the host backend.
//! 3. **Host throughput** — wall-clock simulated-instructions-per-
//!    second of the interpreter itself, so regressions in the
//!    simulator's own hot path are visible, not just regressions in the
//!    simulated cycle counts.
//!
//! The pipeline doubles as a regression gate: it exits non-zero when
//! any ISE-supported configuration fails to beat its radix-matched
//! RV64GC (ISA-only) baseline in simulated cycles — both summed over
//! the kernel matrix and on the group-action estimate. CI runs
//! `bench --smoke` (reduced iteration counts, no direct simulation)
//! and archives the JSON as an artifact.
//!
//! All simulated numbers are deterministic: fixed seeds, constant-time
//! kernels. Two runs with the same options produce byte-identical
//! `kernels` and `action_estimate` sections (the golden test in
//! `tests/bench_golden.rs` enforces this); only the `host` section
//! varies with the machine the pipeline runs on.

use mpise_csidh::{group_action, PrivateKey, PublicKey};
use mpise_fp::kernels::{Config, IseMode, OpKind};
use mpise_fp::measure::{measure_matrix_parallel, KernelRunner, OpMeasurement};
use mpise_fp::simfp::SimFp;
use mpise_fp::{CountingFp, FpFull, OpCounts};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Seed shared by every deterministic stage of the pipeline.
pub const BENCH_SEED: u64 = 0xC51D;

/// What to run and where to put the result.
#[derive(Debug, Clone, Default)]
pub struct BenchOptions {
    /// Reduced matrix for CI: one validation iteration per kernel,
    /// exponent bound ±1 for the instrumented action, a short host
    /// throughput window, and no direct-simulation action run.
    pub smoke: bool,
    /// Additionally run the direct-simulation group action on *all*
    /// four configurations (slow) instead of only the headline one.
    pub full_sim: bool,
    /// Output path; `None` = `BENCH_<utc-date>.json` in the working
    /// directory.
    pub out: Option<String>,
}

impl BenchOptions {
    /// Validation iterations per kernel.
    pub fn iterations(&self) -> usize {
        if self.smoke {
            1
        } else {
            2
        }
    }

    /// Exponent bound of the instrumented group action.
    pub fn action_bound(&self) -> i8 {
        if self.smoke {
            1
        } else {
            5
        }
    }

    /// Host-throughput measurement window per configuration (seconds).
    pub fn throughput_secs(&self) -> f64 {
        if self.smoke {
            0.15
        } else {
            1.0
        }
    }
}

/// Group-action cost of one configuration.
#[derive(Debug, Clone, Copy)]
pub struct ActionEstimate {
    /// The configuration.
    pub config: Config,
    /// Estimated cycles (Σ op-count × per-op cycles).
    pub cycles: u64,
}

/// Direct full-simulation group-action measurement.
#[derive(Debug, Clone, Copy)]
pub struct ActionSim {
    /// The configuration.
    pub config: Config,
    /// Simulated cycles spent in field kernels.
    pub cycles: u64,
    /// Field-kernel calls issued by the action.
    pub calls: u64,
    /// Host seconds the simulation took.
    pub host_secs: f64,
    /// Simulated cycles as attributed by the telemetry span tree; must
    /// reconcile with `cycles` within 1% (the run asserts it).
    pub span_cycles: u64,
}

/// Host-side interpreter throughput for one configuration.
#[derive(Debug, Clone, Copy)]
pub struct HostThroughput {
    /// The configuration.
    pub config: Config,
    /// Simulated instructions retired during the window.
    pub sim_instret: u64,
    /// Kernel calls during the window.
    pub calls: u64,
    /// Host seconds elapsed.
    pub host_secs: f64,
}

impl HostThroughput {
    /// Simulated instructions per host second (millions).
    pub fn mips(&self) -> f64 {
        self.sim_instret as f64 / self.host_secs / 1e6
    }
}

/// Everything one pipeline run produced.
#[derive(Debug)]
pub struct BenchReport {
    /// Options the run used.
    pub options: BenchOptions,
    /// Kernel matrix in [`Config::ALL`] order.
    pub matrix: Vec<(Config, Vec<OpMeasurement>)>,
    /// Op counts of the instrumented group action.
    pub action_counts: OpCounts,
    /// Estimated action cost per configuration.
    pub action_estimates: Vec<ActionEstimate>,
    /// Direct-simulation action runs (empty in smoke mode).
    pub action_sims: Vec<ActionSim>,
    /// Interpreter throughput per configuration.
    pub host: Vec<HostThroughput>,
    /// `Ok(())` when every ISE config beats its RV64GC baseline.
    pub gate: Result<(), String>,
}

/// Runs the kernel matrix (parallel over configurations) and validates
/// every kernel against the host arithmetic.
pub fn kernel_matrix(iterations: usize) -> Vec<(Config, Vec<OpMeasurement>)> {
    measure_matrix_parallel(iterations)
}

fn cycles_of(matrix: &[(Config, Vec<OpMeasurement>)], config: Config, op: OpKind) -> u64 {
    matrix
        .iter()
        .find(|(c, _)| *c == config)
        .and_then(|(_, ms)| ms.iter().find(|m| m.op == op))
        .map(|m| m.cycles)
        .expect("matrix covers every config × op")
}

fn isa_baseline(config: Config) -> Config {
    Config {
        radix: config.radix,
        ise: IseMode::IsaOnly,
    }
}

/// Instruments the group action on the host backend (fixed seed) and
/// returns its field-operation counts.
pub fn instrument_action(bound: i8) -> OpCounts {
    let counting = CountingFp::new(FpFull::new());
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let key = PrivateKey::random_with_bound(&mut rng, bound);
    let _ = group_action(&counting, &mut rng, &PublicKey::BASE, &key);
    counting.counts()
}

/// Estimates the action cost of every configuration from the kernel
/// matrix and the instrumented op counts (the default Table 4 mode).
pub fn estimate_actions(
    matrix: &[(Config, Vec<OpMeasurement>)],
    counts: &OpCounts,
) -> Vec<ActionEstimate> {
    Config::ALL
        .iter()
        .map(|&config| ActionEstimate {
            config,
            cycles: counts.mul * cycles_of(matrix, config, OpKind::FpMul)
                + counts.sqr * cycles_of(matrix, config, OpKind::FpSqr)
                + counts.add * cycles_of(matrix, config, OpKind::FpAdd)
                + counts.sub * cycles_of(matrix, config, OpKind::FpSub),
        })
        .collect()
}

/// Runs the group action with every field operation executed on the
/// simulator and validates the resulting public key against the host
/// backend.
///
/// Telemetry is enabled for the duration of the run so the action
/// decomposes into phase spans; the span tree's attributed cycles must
/// reconcile with the machine's cycle counter within 1%.
///
/// # Panics
///
/// Panics when the simulated action disagrees with the host action — a
/// simulator or kernel bug — or when the span attribution fails to
/// reconcile with the cycle counter.
pub fn simulate_action(config: Config, bound: i8) -> ActionSim {
    let host = FpFull::new();
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let key = PrivateKey::random_with_bound(&mut rng, bound);
    let pk_host = group_action(&host, &mut rng, &PublicKey::BASE, &key);

    let sim = SimFp::new(config);
    let mut rng = StdRng::seed_from_u64(BENCH_SEED);
    let key2 = PrivateKey::random_with_bound(&mut rng, bound);
    assert_eq!(key, key2, "deterministic key derivation");
    let was_enabled = mpise_obs::enabled();
    mpise_obs::set_enabled(true);
    let _ = mpise_obs::take_spans(); // start from a clean thread-local tree
    let t0 = Instant::now();
    let pk_sim = group_action(&sim, &mut rng, &PublicKey::BASE, &key2);
    let host_secs = t0.elapsed().as_secs_f64();
    mpise_obs::set_enabled(was_enabled);
    let spans = mpise_obs::take_spans();
    assert_eq!(
        pk_sim, pk_host,
        "{config}: simulated action disagrees with the host action"
    );
    let span_cycles = spans.total_cycles();
    let cycles = sim.cycles();
    let drift = span_cycles.abs_diff(cycles);
    assert!(
        drift * 100 <= cycles,
        "{config}: span-attributed cycles ({span_cycles}) drift more than 1% \
         from the machine cycle counter ({cycles})"
    );
    eprintln!("bench: action span tree ({config}):");
    eprint!("{}", spans.render());
    ActionSim {
        config,
        cycles,
        calls: sim.calls(),
        host_secs,
        span_cycles,
    }
}

/// Measures host-side interpreter throughput for one configuration by
/// running the Fp-multiplication kernel back-to-back for at least
/// `min_secs`.
pub fn host_throughput(config: Config, min_secs: f64) -> HostThroughput {
    let mut runner = KernelRunner::new(config);
    let n = config.elem_words();
    let a = vec![3u64; n];
    let b = vec![5u64; n];
    let inputs: [&[u64]; 2] = [&a, &b];
    // Warm-up call (machine construction, cache warming).
    let _ = runner.run_full(OpKind::FpMul, &inputs);
    let mut sim_instret = 0u64;
    let mut calls = 0u64;
    let t0 = Instant::now();
    loop {
        let (_, stats) = runner.run_full(OpKind::FpMul, &inputs);
        sim_instret += stats.instret;
        calls += 1;
        if t0.elapsed().as_secs_f64() >= min_secs {
            break;
        }
    }
    HostThroughput {
        config,
        sim_instret,
        calls,
        host_secs: t0.elapsed().as_secs_f64(),
    }
}

/// The regression gate: every ISE-supported configuration must beat its
/// radix-matched RV64GC (ISA-only) baseline in simulated cycles, both
/// summed over the kernel matrix and on the group-action estimate.
///
/// # Errors
///
/// Returns a description of every violated comparison.
pub fn check_gate(
    matrix: &[(Config, Vec<OpMeasurement>)],
    estimates: &[ActionEstimate],
) -> Result<(), String> {
    let mut violations = Vec::new();
    for &config in &Config::ALL {
        if config.ise != IseMode::IseSupported {
            continue;
        }
        let baseline = isa_baseline(config);
        let sum =
            |c: Config| -> u64 { OpKind::ALL.iter().map(|&op| cycles_of(matrix, c, op)).sum() };
        let (ise_sum, isa_sum) = (sum(config), sum(baseline));
        if ise_sum >= isa_sum {
            violations.push(format!(
                "{config}: kernel-matrix total {ise_sum} cycles is not below the \
                 RV64GC baseline's {isa_sum}"
            ));
        }
        let est = |c: Config| -> u64 {
            estimates
                .iter()
                .find(|e| e.config == c)
                .expect("estimate per config")
                .cycles
        };
        let (ise_act, isa_act) = (est(config), est(baseline));
        if ise_act >= isa_act {
            violations.push(format!(
                "{config}: estimated action {ise_act} cycles is not below the \
                 RV64GC baseline's {isa_act}"
            ));
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations.join("; "))
    }
}

/// Runs the whole pipeline with the given options.
pub fn run_pipeline(options: BenchOptions) -> BenchReport {
    eprintln!(
        "bench: measuring the kernel matrix (4 configs x 8 ops, {} iteration(s), parallel) ...",
        options.iterations()
    );
    let t0 = Instant::now();
    let matrix = kernel_matrix(options.iterations());
    eprintln!("bench: kernel matrix done in {:.2?}", t0.elapsed());

    eprintln!(
        "bench: instrumenting the group action (exponent bound +/-{}) ...",
        options.action_bound()
    );
    let action_counts = instrument_action(options.action_bound());
    let action_estimates = estimate_actions(&matrix, &action_counts);

    let mut action_sims = Vec::new();
    if !options.smoke {
        let sim_configs: Vec<Config> = if options.full_sim {
            Config::ALL.to_vec()
        } else {
            // The paper's headline configuration (reduced-radix ISE).
            vec![Config::ALL[3]]
        };
        for config in sim_configs {
            eprintln!("bench: direct-simulating the group action on {config} (bound +/-1) ...");
            action_sims.push(simulate_action(config, 1));
        }
    }

    eprintln!(
        "bench: measuring interpreter host throughput ({:.2}s per config) ...",
        options.throughput_secs()
    );
    let host: Vec<HostThroughput> = Config::ALL
        .iter()
        .map(|&c| host_throughput(c, options.throughput_secs()))
        .collect();

    let gate = check_gate(&matrix, &action_estimates);
    BenchReport {
        options,
        matrix,
        action_counts,
        action_estimates,
        action_sims,
        host,
        gate,
    }
}

/// Serializes the deterministic kernel-matrix section (the part the
/// golden test compares byte-for-byte).
pub fn kernels_json(matrix: &[(Config, Vec<OpMeasurement>)]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for (config, measurements) in matrix {
        let col = Config::ALL
            .iter()
            .position(|c| c == config)
            .expect("known config");
        for m in measurements {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let baseline = cycles_from(matrix, isa_baseline(*config), m.op);
            out.push_str(&format!(
                "    {{\"config\": \"{config}\", \"radix\": \"{}\", \"ise\": {}, \
                 \"op\": \"{:?}\", \"label\": \"{}\", \"cycles\": {}, \"instret\": {}, \
                 \"stall_cycles\": {}, \"flush_cycles\": {}, \
                 \"speedup_vs_rv64gc\": {:.4}, \"paper_cycles\": {}}}",
                config.radix,
                config.ise == IseMode::IseSupported,
                m.op,
                m.op.label(),
                m.cycles,
                m.instret,
                m.timing.stall_cycles,
                m.timing.flush_cycles,
                baseline as f64 / m.cycles as f64,
                crate::paper_cycles(m.op, col),
            ));
        }
    }
    out.push_str("\n  ]");
    out
}

fn cycles_from(matrix: &[(Config, Vec<OpMeasurement>)], config: Config, op: OpKind) -> u64 {
    cycles_of(matrix, config, op)
}

/// Serializes the deterministic action-estimate section.
pub fn action_json(counts: &OpCounts, estimates: &[ActionEstimate], sims: &[ActionSim]) -> String {
    let base = estimates
        .iter()
        .find(|e| e.config == Config::ALL[0])
        .expect("full-ISA estimate")
        .cycles;
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n    \"op_counts\": {{\"mul\": {}, \"sqr\": {}, \"add\": {}, \"sub\": {}}},\n",
        counts.mul, counts.sqr, counts.add, counts.sub
    ));
    out.push_str("    \"estimated\": [\n");
    for (i, e) in estimates.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"config\": \"{}\", \"cycles\": {}, \"mcycles\": {:.2}, \
             \"speedup_vs_full_isa\": {:.4}}}{}\n",
            e.config,
            e.cycles,
            e.cycles as f64 / 1e6,
            base as f64 / e.cycles as f64,
            if i + 1 < estimates.len() { "," } else { "" },
        ));
    }
    out.push_str("    ],\n    \"direct_sim\": [\n");
    for (i, s) in sims.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"config\": \"{}\", \"cycles\": {}, \"kernel_calls\": {}, \
             \"host_secs\": {:.2}, \"validated_vs_host\": true, \
             \"span_cycles\": {}, \"span_reconciled_1pct\": true}}{}\n",
            s.config,
            s.cycles,
            s.calls,
            s.host_secs,
            s.span_cycles,
            if i + 1 < sims.len() { "," } else { "" },
        ));
    }
    out.push_str("    ]\n  }");
    out
}

/// Serializes the whole report (see DESIGN.md §9 for the schema).
pub fn report_json(report: &BenchReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"mpise-bench/v1\",\n");
    out.push_str(&format!("  \"date\": \"{}\",\n", utc_date_string()));
    out.push_str(&format!(
        "  \"provenance\": {},\n",
        mpise_obs::Provenance::collect().json()
    ));
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if report.options.smoke {
            "smoke"
        } else {
            "full"
        }
    ));
    out.push_str(&format!("  \"seed\": {BENCH_SEED},\n"));
    out.push_str(&format!(
        "  \"iterations\": {},\n  \"action_exponent_bound\": {},\n",
        report.options.iterations(),
        report.options.action_bound()
    ));
    out.push_str(&format!(
        "  \"kernels\": {},\n",
        kernels_json(&report.matrix)
    ));
    out.push_str(&format!(
        "  \"action\": {},\n",
        action_json(
            &report.action_counts,
            &report.action_estimates,
            &report.action_sims
        )
    ));
    out.push_str("  \"host\": [\n");
    for (i, h) in report.host.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"config\": \"{}\", \"sim_instret\": {}, \"kernel_calls\": {}, \
             \"host_secs\": {:.3}, \"sim_insts_per_sec\": {:.0}}}{}\n",
            h.config,
            h.sim_instret,
            h.calls,
            h.host_secs,
            h.sim_instret as f64 / h.host_secs,
            if i + 1 < report.host.len() { "," } else { "" },
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"gate\": {{\"ise_faster_than_rv64gc\": {}}}\n",
        report.gate.is_ok()
    ));
    out.push_str("}\n");
    out
}

/// `YYYY-MM-DD` in UTC (kept as a re-export shim — the civil-from-days
/// implementation moved to [`mpise_obs::time`] so every artifact writer
/// stamps dates the same way).
pub fn utc_date_string() -> String {
    mpise_obs::time::utc_date_string()
}

/// Command-line entry point shared by the `bench` binaries; returns the
/// process exit code (0 = gate passed).
pub fn run_cli(args: &[String]) -> i32 {
    let mut options = BenchOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => options.smoke = true,
            "--full-sim" => options.full_sim = true,
            "--out" => match iter.next() {
                Some(path) => options.out = Some(path.clone()),
                None => {
                    eprintln!("bench: --out requires a path");
                    return 2;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: bench [--smoke] [--full-sim] [--out PATH]\n\
                     \n\
                     --smoke     reduced CI matrix (1 iteration, bound +/-1, no direct sim)\n\
                     --full-sim  direct-simulate the group action on all four configs\n\
                     --out PATH  output path (default BENCH_<utc-date>.json)"
                );
                return 0;
            }
            other => {
                eprintln!("bench: unknown argument `{other}` (try --help)");
                return 2;
            }
        }
    }

    let report = run_pipeline(options.clone());
    print_summary(&report);

    let path = report
        .options
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", utc_date_string()));
    let json = report_json(&report);
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("bench: failed to write {path}: {e}");
        return 2;
    }
    println!("\nwrote {path}");

    match &report.gate {
        Ok(()) => {
            println!("gate: every ISE configuration beats its RV64GC baseline — PASS");
            0
        }
        Err(e) => {
            println!("gate: FAIL — {e}");
            1
        }
    }
}

fn print_summary(report: &BenchReport) {
    println!(
        "{:28} {:>14} {:>14} {:>14} {:>14}",
        "Operation (cycles)", "full ISA", "full ISE", "reduced ISA", "reduced ISE"
    );
    for op in OpKind::ALL {
        print!("{:28}", op.label());
        for &config in &Config::ALL {
            print!(" {:>14}", cycles_of(&report.matrix, config, op));
        }
        println!();
    }
    print!("{:28}", "CSIDH action (est. Mcycles)");
    for e in &report.action_estimates {
        print!(" {:>14.1}", e.cycles as f64 / 1e6);
    }
    println!();
    for s in &report.action_sims {
        println!(
            "direct sim action on {}: {:.1}M cycles ({} kernel calls, {:.1}s host, matches host)",
            s.config,
            s.cycles as f64 / 1e6,
            s.calls,
            s.host_secs
        );
    }
    println!();
    for h in &report.host {
        println!(
            "interpreter throughput, {:32} {:>8.2}M sim insts/sec ({} calls)",
            format!("{}:", h.config),
            h.mips(),
            h.calls
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_passes_on_real_kernels_and_catches_inversions() {
        let matrix = kernel_matrix(1);
        let counts = OpCounts {
            mul: 1000,
            sqr: 800,
            add: 400,
            sub: 300,
        };
        let estimates = estimate_actions(&matrix, &counts);
        check_gate(&matrix, &estimates).expect("ISEs beat their baselines");

        // Swapping the ISE and ISA columns must trip the gate.
        let mut swapped = matrix;
        swapped.swap(0, 1);
        let (a, b) = (swapped[0].0, swapped[1].0);
        swapped[0].0 = b;
        swapped[1].0 = a;
        let bad_estimates = estimate_actions(&swapped, &counts);
        assert!(check_gate(&swapped, &bad_estimates).is_err());
    }

    #[test]
    fn date_is_well_formed() {
        let d = utc_date_string();
        assert_eq!(d.len(), 10);
        assert_eq!(&d[4..5], "-");
        assert_eq!(&d[7..8], "-");
    }
}
