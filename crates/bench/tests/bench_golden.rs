//! Golden determinism test for the benchmark pipeline (ISSUE 2,
//! satellite d): the simulated cycle counts for all 32 kernels —
//! serialized exactly as the `kernels` section of `BENCH_<date>.json` —
//! must be byte-identical across two same-seed runs. Anything
//! nondeterministic in the simulator hot path (hash-ordered iteration,
//! uninitialised state, racy parallel measurement) shows up here as a
//! diff.

use mpise_bench::pipeline::{kernel_matrix, kernels_json};
use mpise_fp::kernels::{Config, OpKind};

#[test]
fn kernel_matrix_is_byte_identical_across_runs() {
    let first = kernel_matrix(1);
    let second = kernel_matrix(1);

    // Full coverage: 4 configs x 8 ops, in Config::ALL order.
    assert_eq!(first.len(), Config::ALL.len());
    for (i, (config, measurements)) in first.iter().enumerate() {
        assert_eq!(*config, Config::ALL[i]);
        assert_eq!(measurements.len(), OpKind::ALL.len());
    }

    let a = kernels_json(&first);
    let b = kernels_json(&second);
    assert!(
        a == b,
        "kernel matrix serialization differs between two same-seed runs:\n\
         --- first ---\n{a}\n--- second ---\n{b}"
    );
}
