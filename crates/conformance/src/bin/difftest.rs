//! The differential conformance gate; see [`mpise_conformance::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(mpise_conformance::cli::run_cli(&args));
}
