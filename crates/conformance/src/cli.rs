//! The `difftest` gate: all three conformance modes in one binary.
//!
//! ```text
//! difftest [--smoke] [--programs N] [--budget-secs S] [--out PATH]
//!          [--corpus DIR] [--vectors DIR]
//! ```
//!
//! Modes, in order:
//!
//! 1. **ISA fuzz** — seeded random programs per extension target
//!    (RV64IM, full-radix ISE, reduced-radix ISE), simulator vs
//!    reference executor, with shrinking on divergence.
//! 2. **Kernel difftest** — all 32 kernel × configuration combos vs
//!    the schoolbook oracle, plus field-level and batch-lane byte
//!    diffs.
//! 3. **KAT + corpus** — the committed CSIDH-512 known-answer vectors
//!    on both host backends, and the regression corpus replay.
//!
//! The gate always writes a `mpise-difftest/v1` artifact and exits
//! non-zero on any divergence — wire it next to `ctcheck` in CI.

use crate::corpus;
use crate::fuzz::{self, ExtChoice};
use crate::kat;
use crate::kernel_diff;
use crate::report::GateReport;
use mpise_fp::{FpFull, FpRed};
use std::time::{Duration, Instant};

/// Deterministic base seed of the gate's fuzz campaign.
pub const DIFFTEST_SEED: u64 = 0xD1FF_7E57;

#[derive(Debug)]
struct Options {
    smoke: bool,
    programs: Option<u64>,
    budget: Option<Duration>,
    out: Option<String>,
    corpus_dir: Option<String>,
    vectors_dir: Option<String>,
}

const USAGE: &str = "usage: difftest [--smoke] [--programs N] [--budget-secs S] [--out PATH]\n\
                \x20                [--corpus DIR] [--vectors DIR]\n\
     --smoke          reduced CI matrix (seeded, fits a ~30s budget)\n\
     --programs N     total fuzz programs across the three extension targets\n\
                      (default 100000, smoke 3000)\n\
     --budget-secs S  stop generating new fuzz programs after S seconds\n\
     --out PATH       artifact path (default DIFFTEST_<utc-date>.json)\n\
     --corpus DIR     regression corpus directory (default tests/corpus)\n\
     --vectors DIR    KAT vector directory (default tests/vectors)";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        smoke: false,
        programs: None,
        budget: None,
        out: None,
        corpus_dir: None,
        vectors_dir: None,
    };
    let mut iter = args.iter();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--smoke" => o.smoke = true,
            "--programs" => {
                let v = iter.next().ok_or("--programs requires a count")?;
                o.programs = Some(v.parse().map_err(|e| format!("--programs: {e}"))?);
            }
            "--budget-secs" => {
                let v = iter.next().ok_or("--budget-secs requires seconds")?;
                let secs: u64 = v.parse().map_err(|e| format!("--budget-secs: {e}"))?;
                o.budget = Some(Duration::from_secs(secs));
            }
            "--out" => {
                o.out = Some(iter.next().ok_or("--out requires a path")?.clone());
            }
            "--corpus" => {
                o.corpus_dir = Some(iter.next().ok_or("--corpus requires a dir")?.clone());
            }
            "--vectors" => {
                o.vectors_dir = Some(iter.next().ok_or("--vectors requires a dir")?.clone());
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(o)
}

/// Runs the gate. Exit code: 0 = all modes pass, 1 = divergence,
/// 2 = usage or I/O error.
pub fn run_cli(args: &[String]) -> i32 {
    let o = match parse_args(args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return 2;
        }
    };
    let deadline = o.budget.map(|b| Instant::now() + b);
    let mut report = GateReport::default();

    // Mode 1: ISA fuzzing, split evenly across the extension targets.
    let total_programs = o.programs.unwrap_or(if o.smoke { 3_000 } else { 100_000 });
    let per_ext = total_programs.div_ceil(ExtChoice::ALL.len() as u64);
    for (i, ext) in ExtChoice::ALL.into_iter().enumerate() {
        let r = fuzz::fuzz(
            ext,
            DIFFTEST_SEED.wrapping_add((i as u64) << 40),
            per_ext,
            deadline,
            3,
        );
        report.fuzz_programs += r.programs;
        report.fuzz_exts += 1;
        for f in &r.failures {
            report.fuzz_failures.push(format!(
                "{} seed {}: {} (shrunk to {} insts)\n{}",
                ext.label(),
                f.seed,
                f.divergence,
                f.shrunk_len,
                f.listing
            ));
        }
        println!(
            "difftest: isa-fuzz {:>17}  {:>6} programs, {} failures",
            ext.label(),
            r.programs,
            r.failures.len()
        );
    }

    // Mode 2: kernel + field difftest.
    let (kernel_cases, field_cases, sim_cases) = if o.smoke { (3, 12, 1) } else { (10, 32, 3) };
    let kd = kernel_diff::merge(
        kernel_diff::run_kernel_layer(kernel_cases, DIFFTEST_SEED),
        kernel_diff::run_field_layer(field_cases, sim_cases, DIFFTEST_SEED),
    );
    report.kernel_combos = kd.combos;
    report.kernel_cases = kd.cases;
    report.lane_widths = kd.lane_widths;
    report.kernel_failures = kd.failures.clone();
    println!(
        "difftest: kernel-difftest       {} combos, {} cases, {} lane widths, {} failures",
        kd.combos,
        kd.cases,
        kd.lane_widths,
        kd.failures.len()
    );

    // Mode 3: KAT suite on both host backends, then corpus replay.
    let vectors_dir = o
        .vectors_dir
        .map(std::path::PathBuf::from)
        .unwrap_or_else(kat::default_vectors_dir);
    match kat::load_suite(&vectors_dir) {
        Ok(suite) => {
            for (label, run) in [
                ("FpFull", kat::run_suite(&FpFull::new(), &suite, "FpFull")),
                ("FpRed", kat::run_suite(&FpRed::new(), &suite, "FpRed")),
            ] {
                report.kat_backends += 1;
                report.kat_vectors += run.0;
                report.kat_failures.extend(run.1);
                let _ = label;
            }
        }
        Err(e) => report.kat_failures.push(format!("KAT suite: {e}")),
    }
    let corpus_dir = o
        .corpus_dir
        .map(std::path::PathBuf::from)
        .unwrap_or_else(corpus::default_corpus_dir);
    match corpus::load_corpus(&corpus_dir) {
        Ok(entries) => {
            let (n, failures) = corpus::replay(&entries);
            report.corpus_files = n;
            report.kat_failures.extend(failures);
        }
        Err(e) => report.kat_failures.push(format!("corpus: {e}")),
    }
    println!(
        "difftest: kat+corpus            {} vectors x {} backends, {} corpus files, {} failures",
        report.kat_vectors / report.kat_backends.max(1),
        report.kat_backends,
        report.corpus_files,
        report.kat_failures.len()
    );

    // Artifact.
    let out_path = o
        .out
        .unwrap_or_else(|| format!("DIFFTEST_{}.json", mpise_obs::time::utc_date_string()));
    if let Err(e) = std::fs::write(&out_path, report.to_json()) {
        eprintln!("difftest: cannot write {out_path}: {e}");
        return 2;
    }
    println!("difftest: wrote {out_path}");

    if report.pass() {
        println!("difftest: PASS");
        0
    } else {
        for f in report.all_failures() {
            eprintln!("difftest: FAIL {f}");
        }
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_unknown_flags_and_prints_usage() {
        assert!(parse_args(&["--bogus".to_owned()]).is_err());
        assert!(parse_args(&["--help".to_owned()])
            .unwrap_err()
            .contains("usage"));
    }

    #[test]
    fn parses_the_full_flag_set() {
        let o = parse_args(&[
            "--smoke".to_owned(),
            "--programs".to_owned(),
            "500".to_owned(),
            "--budget-secs".to_owned(),
            "30".to_owned(),
            "--out".to_owned(),
            "x.json".to_owned(),
        ])
        .unwrap();
        assert!(o.smoke);
        assert_eq!(o.programs, Some(500));
        assert_eq!(o.budget, Some(Duration::from_secs(30)));
        assert_eq!(o.out.as_deref(), Some("x.json"));
    }
}
