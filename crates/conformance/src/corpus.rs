//! Regression corpus of differential ISA programs.
//!
//! Each file under `tests/corpus/` is one program that once exposed a
//! divergence risk (carry chains, wrap-around, delayed 57-bit carries,
//! x0 discarding, control flow over memory ops). The gate replays every
//! file through the simulator/reference lockstep diff on every run.
//!
//! File format (line-oriented, `#` comments):
//!
//! ```text
//! ext: full            # full | red | none
//! init t0 = 0xffffffffffffffff
//! init s10 = data+0x00 # data+OFF means DATA_BASE + OFF
//! prog:
//!     maddlu a0, t0, t1, a2
//!     ebreak
//! ```
//!
//! The program section is parsed with the repo assembler (custom
//! mnemonics resolve through the chosen extension), so corpus files
//! read exactly like kernel listings.

use crate::fuzz::{DiffRunner, ExtChoice};
use mpise_sim::asm::parse_program;
use mpise_sim::machine::DATA_BASE;
use mpise_sim::Reg;

/// One parsed corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// File stem, for reporting.
    pub name: String,
    /// Extension the program targets.
    pub ext: ExtChoice,
    /// Initial register values.
    pub init: Vec<(Reg, u64)>,
    /// The program (must end in `ebreak`).
    pub insts: Vec<mpise_sim::Inst>,
}

fn reg_by_name(name: &str) -> Option<Reg> {
    Reg::ALL.into_iter().find(|r| r.to_string() == name)
}

fn parse_value(s: &str) -> Result<u64, String> {
    if let Some(off) = s.strip_prefix("data+") {
        let off = parse_value(off)?;
        return Ok(DATA_BASE + off);
    }
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map_err(|e| format!("bad hex `{s}`: {e}"))
    } else {
        s.parse::<u64>()
            .map_err(|e| format!("bad value `{s}`: {e}"))
    }
}

/// Parses one corpus file.
///
/// # Errors
///
/// Returns a description of the first malformed line.
pub fn parse_entry(name: &str, src: &str) -> Result<CorpusEntry, String> {
    let mut ext = ExtChoice::Base;
    let mut init = Vec::new();
    let mut prog_lines: Vec<&str> = Vec::new();
    let mut in_prog = false;
    for line in src.lines() {
        let trimmed = line.trim();
        if in_prog {
            prog_lines.push(line);
            continue;
        }
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if trimmed == "prog:" {
            in_prog = true;
        } else if let Some(e) = trimmed.strip_prefix("ext:") {
            ext = match e.trim() {
                "full" => ExtChoice::FullRadix,
                "red" => ExtChoice::ReducedRadix,
                "none" => ExtChoice::Base,
                other => return Err(format!("{name}: unknown ext `{other}`")),
            };
        } else if let Some(rest) = trimmed.strip_prefix("init ") {
            let (reg, val) = rest
                .split_once('=')
                .ok_or_else(|| format!("{name}: bad init line `{trimmed}`"))?;
            let reg = reg_by_name(reg.trim())
                .ok_or_else(|| format!("{name}: unknown register `{}`", reg.trim()))?;
            init.push((reg, parse_value(val.trim())?));
        } else {
            return Err(format!("{name}: unexpected line `{trimmed}`"));
        }
    }
    if prog_lines.is_empty() {
        return Err(format!("{name}: missing prog: section"));
    }
    let program = parse_program(&prog_lines.join("\n"), &ext.extension())
        .map_err(|e| format!("{name}: {e}"))?;
    let insts = program.insts().to_vec();
    if !matches!(insts.last(), Some(mpise_sim::Inst::Ebreak)) {
        return Err(format!("{name}: program must end with ebreak"));
    }
    Ok(CorpusEntry {
        name: name.to_owned(),
        ext,
        init,
        insts,
    })
}

/// Loads every `.txt` file in a corpus directory, sorted by name.
///
/// # Errors
///
/// Returns a description when the directory is unreadable or any file
/// is malformed — a broken corpus must fail the gate, not skip.
pub fn load_corpus(dir: &std::path::Path) -> Result<Vec<CorpusEntry>, String> {
    let mut names: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("{}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    names.sort();
    names
        .iter()
        .map(|p| {
            let stem = p
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or("corpus")
                .to_owned();
            let src = std::fs::read_to_string(p).map_err(|e| format!("{}: {e}", p.display()))?;
            parse_entry(&stem, &src)
        })
        .collect()
}

/// The committed corpus directory (`tests/corpus/` at the workspace
/// root), resolved relative to this crate at compile time.
pub fn default_corpus_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus")
}

/// Replays every entry; returns (entries replayed, failures).
pub fn replay(entries: &[CorpusEntry]) -> (u64, Vec<String>) {
    let mut failures = Vec::new();
    for entry in entries {
        let mut runner = DiffRunner::new(entry.ext);
        if let Some(d) = runner.run_insts(&entry.insts, &entry.init) {
            failures.push(format!("corpus {}: {d}", entry.name));
        }
    }
    (entries.len() as u64, failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_entry() {
        let src = "ext: full\ninit t0 = 0xff\ninit s10 = data+0x10\nprog:\n    add a0, t0, t0\n    ebreak\n";
        let e = parse_entry("mini", src).unwrap();
        assert_eq!(e.ext, ExtChoice::FullRadix);
        assert_eq!(e.init[0], (Reg::T0, 0xff));
        assert_eq!(e.init[1], (Reg::S10, DATA_BASE + 0x10));
        assert_eq!(e.insts.len(), 2);
    }

    #[test]
    fn rejects_missing_ebreak_and_bad_lines() {
        assert!(parse_entry("x", "prog:\n    add a0, a1, a2\n").is_err());
        assert!(parse_entry("x", "bogus\nprog:\n    ebreak\n").is_err());
        assert!(parse_entry("x", "ext: weird\nprog:\n    ebreak\n").is_err());
    }

    #[test]
    fn committed_corpus_replays_clean() {
        let entries = load_corpus(&default_corpus_dir()).expect("committed corpus parses");
        assert!(entries.len() >= 5, "corpus has at least 5 entries");
        let (n, failures) = replay(&entries);
        assert_eq!(n as usize, entries.len());
        assert!(failures.is_empty(), "{failures:?}");
    }
}
