//! Seed-driven random-program ISA fuzzing with input shrinking.
//!
//! Programs mix RV64IM and Table 1 custom instructions, run through the
//! pipelined [`Machine`] and the independent [`RefMachine`] in
//! lockstep, and have their **full architectural state** diffed at the
//! end: all 32 registers, every word of the data window the program
//! could touch, the retired-instruction count, and the exit reason.
//!
//! Generated programs are trap-free by construction so both executors
//! always reach the final `ebreak`:
//!
//! * loads/stores address a small window at [`DATA_BASE`] through two
//!   pinned pointer registers (`s10`/`s11`) that are never overwritten,
//!   with width-aligned in-window offsets;
//! * control flow is forward-only (`beq`…`bgeu`, `jal`), targets held
//!   as **instruction indices** so the generator and the shrinker can
//!   never produce a loop or an out-of-program jump;
//! * only registered custom ids are emitted.
//!
//! On divergence the failing program is shrunk by delta-debugging:
//! chunks, then single instructions, then initial register values are
//! removed while the divergence persists, yielding a minimal repro
//! (typically 1–3 instructions plus `ebreak`).

use crate::refexec::{RefExit, RefMachine};
use mpise_sim::asm::Program;
use mpise_sim::ext::{CustomId, IsaExtension};
use mpise_sim::inst::{AluImmOp, AluOp, BranchOp, Inst, LoadOp, StoreOp};
use mpise_sim::machine::{Halt, RunError, DATA_BASE};
use mpise_sim::{Machine, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bytes of data memory a fuzz program may touch, starting at
/// [`DATA_BASE`]. Kept small so the full window diff stays cheap.
pub const WINDOW: u64 = 512;

/// Instruction budget per program (forward-only control flow retires at
/// most `len` instructions; the budget only guards the injected-bug
/// case where a broken executor corrupts a pointer).
const FUEL: u64 = 4096;

/// Which instruction-set extension the fuzzer targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtChoice {
    /// Base RV64IM only.
    Base,
    /// RV64IM + the full-radix ISE (`maddlu`/`maddhu`/`cadd`).
    FullRadix,
    /// RV64IM + the reduced-radix ISE (`madd57lu`/`madd57hu`/`sraiadd`).
    ReducedRadix,
}

impl ExtChoice {
    /// All three targets, in gate order.
    pub const ALL: [ExtChoice; 3] = [
        ExtChoice::Base,
        ExtChoice::FullRadix,
        ExtChoice::ReducedRadix,
    ];

    /// The simulator extension registry for this choice.
    pub fn extension(self) -> IsaExtension {
        match self {
            ExtChoice::Base => IsaExtension::new("rv64im"),
            ExtChoice::FullRadix => mpise_core::full_radix_ext(),
            ExtChoice::ReducedRadix => mpise_core::reduced_radix_ext(),
        }
    }

    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ExtChoice::Base => "rv64im",
            ExtChoice::FullRadix => "full-radix-ise",
            ExtChoice::ReducedRadix => "reduced-radix-ise",
        }
    }

    /// The custom ids available under this choice (R4-format first).
    fn custom_ids(self) -> &'static [u16] {
        match self {
            ExtChoice::Base => &[],
            ExtChoice::FullRadix => &[1, 2, 3],
            ExtChoice::ReducedRadix => &[4, 5, 6],
        }
    }
}

/// One fuzz-program slot: either a fixed instruction or a control
/// transfer whose target is an instruction *index* (resolved to a byte
/// offset at materialisation time, so shrinking stays sound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzOp {
    /// A non-control instruction, emitted as-is.
    Plain(Inst),
    /// Forward conditional branch to `ops[target]` (or the final
    /// `ebreak` when `target == ops.len()`).
    Branch {
        /// Comparison.
        op: BranchOp,
        /// First compared register.
        rs1: Reg,
        /// Second compared register.
        rs2: Reg,
        /// Target instruction index, always `> `own index.
        target: usize,
    },
    /// Forward `jal` to `ops[target]`.
    Jal {
        /// Link register.
        rd: Reg,
        /// Target instruction index, always `>` own index.
        target: usize,
    },
}

/// A generated program plus its initial register state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzProgram {
    /// Extension the program may use.
    pub ext: ExtChoice,
    /// Initial register values (applied to both executors).
    pub init: Vec<(Reg, u64)>,
    /// The body; a final `ebreak` is appended at materialisation.
    pub ops: Vec<FuzzOp>,
}

impl FuzzProgram {
    /// Resolves index targets to byte offsets and appends the final
    /// `ebreak`.
    pub fn materialize(&self) -> Vec<Inst> {
        let mut out: Vec<Inst> = Vec::with_capacity(self.ops.len() + 1);
        for (i, op) in self.ops.iter().enumerate() {
            out.push(match *op {
                FuzzOp::Plain(inst) => inst,
                FuzzOp::Branch {
                    op,
                    rs1,
                    rs2,
                    target,
                } => Inst::Branch {
                    op,
                    rs1,
                    rs2,
                    offset: offset_for(i, target),
                },
                FuzzOp::Jal { rd, target } => Inst::Jal {
                    rd,
                    offset: offset_for(i, target),
                },
            });
        }
        out.push(Inst::Ebreak);
        out
    }

    /// A readable listing of the materialised program.
    pub fn listing(&self) -> String {
        let mut s = String::new();
        for (i, inst) in self.materialize().iter().enumerate() {
            s.push_str(&format!("{i:3}: {inst}\n"));
        }
        for &(r, v) in &self.init {
            if v != 0 {
                s.push_str(&format!("init {r} = {v:#x}\n"));
            }
        }
        s
    }
}

fn offset_for(index: usize, target: usize) -> i32 {
    debug_assert!(target > index, "fuzz control flow is forward-only");
    ((target - index) * 4) as i32
}

/// One architectural-state divergence between simulator and reference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// What differed first (exit reason, register, memory word or
    /// instret), with both observed values.
    pub what: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.what)
    }
}

/// Reusable differential runner: one pre-built [`Machine`] (reset
/// between programs) plus a fresh [`RefMachine`] per run.
#[derive(Debug)]
pub struct DiffRunner {
    machine: Machine,
}

impl DiffRunner {
    /// A runner whose machine executes the true extension semantics.
    pub fn new(ext: ExtChoice) -> Self {
        Self::with_machine_ext(ext.extension())
    }

    /// A runner with an explicit machine-side extension registry —
    /// the hook through which conformance tests inject deliberately
    /// broken executors (the reference side always uses the paper
    /// semantics).
    pub fn with_machine_ext(machine_ext: IsaExtension) -> Self {
        let mut machine = Machine::with_ext(machine_ext);
        machine.set_fuel(FUEL);
        DiffRunner { machine }
    }

    /// Runs `prog` on both executors and reports the first divergence.
    pub fn run(&mut self, prog: &FuzzProgram) -> Option<Divergence> {
        self.run_insts(&prog.materialize(), &prog.init)
    }

    /// Lockstep-runs an already-materialised instruction sequence (used
    /// by both the fuzzer and the corpus replayer).
    pub fn run_insts(&mut self, insts: &[Inst], init: &[(Reg, u64)]) -> Option<Divergence> {
        // Reset the machine: zero the data window and every register,
        // then apply the program's initial state to both sides.
        let zeros = [0u64; (WINDOW / 8) as usize];
        self.machine
            .mem
            .write_limbs(DATA_BASE, &zeros)
            .expect("window fits");
        self.machine
            .load_program(&Program::from_insts(insts.to_vec()));
        for r in Reg::ALL {
            self.machine.cpu.write_reg(r, 0);
        }
        let mut reference = RefMachine::new();
        reference.load(insts);
        for &(r, v) in init {
            self.machine.cpu.write_reg(r, v);
            reference.write_reg(r, v);
        }

        let sim_result = self.machine.run();
        let ref_exit = reference.run(FUEL);

        // Exit reasons must correspond exactly.
        let exits_match = matches!(
            (&sim_result, &ref_exit),
            (Ok(stats), RefExit::Breakpoint) if stats.halt == Halt::Breakpoint
        ) || matches!(
            (&sim_result, &ref_exit),
            (Ok(stats), RefExit::EnvironmentCall) if stats.halt == Halt::EnvironmentCall
        ) || matches!(
            (&sim_result, &ref_exit),
            (Err(RunError::Trap(_)), RefExit::Fault(_))
        ) || matches!(
            (&sim_result, &ref_exit),
            (Err(RunError::OutOfFuel { .. }), RefExit::OutOfFuel)
        );
        if !exits_match {
            return Some(Divergence {
                what: format!("exit mismatch: sim {sim_result:?} vs ref {ref_exit:?}"),
            });
        }

        // Registers.
        let sim_regs = self.machine.cpu.regs();
        for (i, (&s, &r)) in sim_regs.iter().zip(reference.regs.iter()).enumerate() {
            if s != r {
                let reg = Reg::from_number(i as u8).expect("index < 32");
                return Some(Divergence {
                    what: format!("reg {reg}: sim {s:#x} vs ref {r:#x}"),
                });
            }
        }

        // The whole data window, word by word.
        for off in (0..WINDOW).step_by(8) {
            let s = self
                .machine
                .mem
                .load_u64(DATA_BASE + off)
                .expect("window readable");
            let r = reference.load_mem(DATA_BASE + off, 8).expect("in window");
            if s != r {
                return Some(Divergence {
                    what: format!("mem[{:#x}]: sim {s:#x} vs ref {r:#x}", DATA_BASE + off),
                });
            }
        }

        // Retired-instruction counts.
        if let Ok(stats) = &sim_result {
            if stats.instret != reference.instret {
                return Some(Divergence {
                    what: format!(
                        "instret: sim {} vs ref {}",
                        stats.instret, reference.instret
                    ),
                });
            }
        }
        None
    }
}

/// Registers the generator may clobber. The pointer registers `s10` and
/// `s11` are deliberately absent so memory operands stay valid whatever
/// gets generated or shrunk away; `zero` is present so x0-write
/// discarding gets coverage.
const CLOBBERABLE: [Reg; 18] = [
    Reg::Zero,
    Reg::Ra,
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
    Reg::A0,
    Reg::A1,
    Reg::A2,
    Reg::A3,
    Reg::A4,
    Reg::A5,
    Reg::S0,
    Reg::S1,
    Reg::S2,
];

const POINTERS: [Reg; 2] = [Reg::S10, Reg::S11];

fn any_source(rng: &mut StdRng) -> Reg {
    // Sources may also read the pointers (their values are plain u64s).
    if rng.gen_range(0u8..10) == 0 {
        POINTERS[rng.gen_range(0..POINTERS.len())]
    } else {
        CLOBBERABLE[rng.gen_range(0..CLOBBERABLE.len())]
    }
}

fn dest(rng: &mut StdRng) -> Reg {
    CLOBBERABLE[rng.gen_range(0..CLOBBERABLE.len())]
}

/// Interesting 64-bit seeds: carry/borrow boundaries dominate the bug
/// surface of multi-precision arithmetic, so initial register values
/// are biased toward them.
fn interesting_u64(rng: &mut StdRng) -> u64 {
    match rng.gen_range(0u8..8) {
        0 => 0,
        1 => 1,
        2 => u64::MAX,
        3 => u64::MAX - 1,
        4 => (1 << 57) - 1,
        5 => 1 << 57,
        6 => 1 << 63,
        _ => rng.gen(),
    }
}

/// Generates one deterministic trap-free program from `seed`.
pub fn gen_program(ext: ExtChoice, seed: u64) -> FuzzProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let len = rng.gen_range(4usize..=28);
    let mut ops = Vec::with_capacity(len);
    let customs = ext.custom_ids();

    const ALU: [AluOp; 16] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::Sll,
        AluOp::Sltu,
        AluOp::Slt,
        AluOp::Xor,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Or,
        AluOp::And,
        AluOp::Mul,
        AluOp::Mulhu,
        AluOp::Mulh,
        AluOp::Mulhsu,
        AluOp::Addw,
        AluOp::Subw,
    ];
    const DIV: [AluOp; 4] = [AluOp::Div, AluOp::Divu, AluOp::Rem, AluOp::Remu];
    const ALU_IMM: [AluImmOp; 9] = [
        AluImmOp::Addi,
        AluImmOp::Sltiu,
        AluImmOp::Xori,
        AluImmOp::Ori,
        AluImmOp::Andi,
        AluImmOp::Slli,
        AluImmOp::Srli,
        AluImmOp::Srai,
        AluImmOp::Addiw,
    ];
    const LOADS: [LoadOp; 5] = [LoadOp::Ld, LoadOp::Lw, LoadOp::Lwu, LoadOp::Lbu, LoadOp::Lb];
    const STORES: [StoreOp; 3] = [StoreOp::Sd, StoreOp::Sw, StoreOp::Sb];
    const BRANCHES: [BranchOp; 6] = [
        BranchOp::Beq,
        BranchOp::Bne,
        BranchOp::Blt,
        BranchOp::Bge,
        BranchOp::Bltu,
        BranchOp::Bgeu,
    ];

    for i in 0..len {
        let kind = rng.gen_range(0u8..100);
        let op = if kind < 30 {
            FuzzOp::Plain(Inst::Op {
                op: ALU[rng.gen_range(0..ALU.len())],
                rd: dest(&mut rng),
                rs1: any_source(&mut rng),
                rs2: any_source(&mut rng),
            })
        } else if kind < 35 {
            FuzzOp::Plain(Inst::Op {
                op: DIV[rng.gen_range(0..DIV.len())],
                rd: dest(&mut rng),
                rs1: any_source(&mut rng),
                rs2: any_source(&mut rng),
            })
        } else if kind < 55 {
            let op = ALU_IMM[rng.gen_range(0..ALU_IMM.len())];
            let imm = if op.is_shift() {
                rng.gen_range(0i32..64)
            } else {
                rng.gen_range(-2048i32..=2047)
            };
            FuzzOp::Plain(Inst::OpImm {
                op,
                rd: dest(&mut rng),
                rs1: any_source(&mut rng),
                imm,
            })
        } else if kind < 75 && !customs.is_empty() {
            let id = customs[rng.gen_range(0..customs.len())];
            let (rs3, imm) = if id == 6 {
                // sraiadd carries a shift amount, not a third register.
                (Reg::Zero, rng.gen_range(0u8..64))
            } else {
                (any_source(&mut rng), 0)
            };
            FuzzOp::Plain(Inst::Custom {
                id: CustomId(id),
                rd: dest(&mut rng),
                rs1: any_source(&mut rng),
                rs2: any_source(&mut rng),
                rs3,
                imm,
            })
        } else if kind < 82 {
            let op = LOADS[rng.gen_range(0..LOADS.len())];
            FuzzOp::Plain(Inst::Load {
                op,
                rd: dest(&mut rng),
                rs1: POINTERS[rng.gen_range(0..POINTERS.len())],
                offset: aligned_offset(&mut rng, op.width()),
            })
        } else if kind < 89 {
            let op = STORES[rng.gen_range(0..STORES.len())];
            FuzzOp::Plain(Inst::Store {
                op,
                rs1: POINTERS[rng.gen_range(0..POINTERS.len())],
                rs2: any_source(&mut rng),
                offset: aligned_offset(&mut rng, op.width()),
            })
        } else if kind < 93 {
            FuzzOp::Plain(Inst::Lui {
                rd: dest(&mut rng),
                imm20: rng.gen_range(-(1i32 << 19)..(1 << 19)),
            })
        } else if kind < 95 {
            FuzzOp::Plain(Inst::Auipc {
                rd: dest(&mut rng),
                imm20: rng.gen_range(0i32..4096),
            })
        } else if kind < 97 {
            FuzzOp::Jal {
                rd: dest(&mut rng),
                target: rng.gen_range(i + 1..=len),
            }
        } else {
            FuzzOp::Branch {
                op: BRANCHES[rng.gen_range(0..BRANCHES.len())],
                rs1: any_source(&mut rng),
                rs2: any_source(&mut rng),
                target: rng.gen_range(i + 1..=len),
            }
        };
        ops.push(op);
    }

    let mut init: Vec<(Reg, u64)> = CLOBBERABLE
        .iter()
        .filter(|&&r| r != Reg::Zero)
        .map(|&r| (r, interesting_u64(&mut rng)))
        .collect();
    // Pointer registers: 8-aligned addresses in the first half of the
    // window, so every generated offset stays in bounds.
    for &p in &POINTERS {
        init.push((p, DATA_BASE + 8 * rng.gen_range(0..WINDOW / 16)));
    }
    FuzzProgram { ext, init, ops }
}

/// Width-aligned offset into the second half of the window (pointers
/// point into the first half, so `base + offset < DATA_BASE + WINDOW`).
fn aligned_offset(rng: &mut StdRng, width: u64) -> i32 {
    let slots = WINDOW / 2 / width;
    (rng.gen_range(0..slots) * width) as i32
}

/// Removes `ops[start..start + count]`, re-aiming branch targets.
fn remove_range(prog: &FuzzProgram, start: usize, count: usize) -> FuzzProgram {
    let mut ops = Vec::with_capacity(prog.ops.len() - count);
    for (i, op) in prog.ops.iter().enumerate() {
        if i >= start && i < start + count {
            continue;
        }
        let fix = |target: usize| -> usize {
            if target >= start + count {
                target - count
            } else {
                // Target fell inside the removed range: aim at the
                // removal point (still strictly forward).
                target.min(start).max(if i < start { start } else { 0 })
            }
        };
        ops.push(match *op {
            FuzzOp::Plain(inst) => FuzzOp::Plain(inst),
            FuzzOp::Branch {
                op,
                rs1,
                rs2,
                target,
            } => FuzzOp::Branch {
                op,
                rs1,
                rs2,
                target: fix(target),
            },
            FuzzOp::Jal { rd, target } => FuzzOp::Jal {
                rd,
                target: fix(target),
            },
        });
    }
    FuzzProgram {
        ext: prog.ext,
        init: prog.init.clone(),
        ops,
    }
}

/// Shrinks a failing program to a minimal one that still diverges:
/// halving chunk removal, then single-instruction removal, then
/// initial-register-value zeroing, iterated to a fixed point.
pub fn shrink(runner: &mut DiffRunner, prog: &FuzzProgram) -> FuzzProgram {
    let mut cur = prog.clone();
    debug_assert!(runner.run(&cur).is_some(), "shrink needs a failing input");
    loop {
        let mut progressed = false;
        // Chunked removal, largest first.
        let mut chunk = (cur.ops.len() / 2).max(1);
        while chunk >= 1 {
            let mut start = 0;
            while start < cur.ops.len() {
                let count = chunk.min(cur.ops.len() - start);
                let candidate = remove_range(&cur, start, count);
                if runner.run(&candidate).is_some() {
                    cur = candidate;
                    progressed = true;
                    // Retry the same start against the shorter program.
                } else {
                    start += 1;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Zero out initial register values that are not load-bearing.
        for i in 0..cur.init.len() {
            if cur.init[i].1 == 0 {
                continue;
            }
            let mut candidate = cur.clone();
            candidate.init[i].1 = 0;
            if runner.run(&candidate).is_some() {
                cur = candidate;
                progressed = true;
            }
        }
        if !progressed {
            return cur;
        }
    }
}

/// A divergence found by the fuzzer, with its minimal reproduction.
#[derive(Debug, Clone)]
pub struct FailureRepro {
    /// Generator seed of the original failing program.
    pub seed: u64,
    /// Extension target the program ran under.
    pub ext: ExtChoice,
    /// First-divergence description (from the shrunk program).
    pub divergence: String,
    /// Instructions in the shrunk body (excluding the final `ebreak`).
    pub shrunk_len: usize,
    /// Listing of the shrunk program.
    pub listing: String,
}

/// Aggregate outcome of one fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Programs generated and diffed.
    pub programs: u64,
    /// Divergences found (empty on a healthy build).
    pub failures: Vec<FailureRepro>,
}

/// Runs `count` seeded programs against `ext`, stopping early at
/// `deadline` or after `max_failures` divergences.
pub fn fuzz(
    ext: ExtChoice,
    base_seed: u64,
    count: u64,
    deadline: Option<std::time::Instant>,
    max_failures: usize,
) -> FuzzReport {
    let mut runner = DiffRunner::new(ext);
    let mut report = FuzzReport::default();
    for i in 0..count {
        if let Some(d) = deadline {
            // Deadline polls are cheap; checking every program keeps
            // the budget honest even for slow seeds.
            if std::time::Instant::now() >= d {
                break;
            }
        }
        let seed = base_seed.wrapping_add(i);
        let prog = gen_program(ext, seed);
        report.programs += 1;
        if runner.run(&prog).is_some() {
            let small = shrink(&mut runner, &prog);
            let divergence = runner
                .run(&small)
                .map(|d| d.what)
                .unwrap_or_else(|| "divergence vanished after shrink".to_owned());
            report.failures.push(FailureRepro {
                seed,
                ext,
                divergence,
                shrunk_len: small.ops.len(),
                listing: small.listing(),
            });
            if report.failures.len() >= max_failures {
                break;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = gen_program(ExtChoice::FullRadix, 42);
        let b = gen_program(ExtChoice::FullRadix, 42);
        assert_eq!(a, b);
        let c = gen_program(ExtChoice::FullRadix, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_programs_are_trap_free() {
        for ext in ExtChoice::ALL {
            let mut runner = DiffRunner::new(ext);
            for seed in 0..200 {
                let prog = gen_program(ext, seed);
                // A healthy simulator+reference pair must agree.
                if let Some(d) = runner.run(&prog) {
                    panic!("{} seed {seed}: {d}\n{}", ext.label(), prog.listing());
                }
            }
        }
    }

    #[test]
    fn control_flow_is_forward_only() {
        for seed in 0..300 {
            let prog = gen_program(ExtChoice::ReducedRadix, seed);
            for (i, op) in prog.ops.iter().enumerate() {
                match *op {
                    FuzzOp::Branch { target, .. } | FuzzOp::Jal { target, .. } => {
                        assert!(target > i && target <= prog.ops.len());
                    }
                    FuzzOp::Plain(_) => {}
                }
            }
        }
    }

    #[test]
    fn remove_range_keeps_targets_forward() {
        for seed in 0..100 {
            let prog = gen_program(ExtChoice::Base, seed);
            if prog.ops.len() < 4 {
                continue;
            }
            let cut = remove_range(&prog, 1, 2);
            assert_eq!(cut.ops.len(), prog.ops.len() - 2);
            for (i, op) in cut.ops.iter().enumerate() {
                match *op {
                    FuzzOp::Branch { target, .. } | FuzzOp::Jal { target, .. } => {
                        assert!(target > i && target <= cut.ops.len(), "seed {seed}");
                    }
                    FuzzOp::Plain(_) => {}
                }
            }
        }
    }

    #[test]
    fn healthy_fuzz_run_reports_no_failures() {
        for ext in ExtChoice::ALL {
            let report = fuzz(ext, 0xF00D, 150, None, 1);
            assert_eq!(report.programs, 150);
            assert!(
                report.failures.is_empty(),
                "{}: {}",
                ext.label(),
                report.failures[0].listing
            );
        }
    }
}
