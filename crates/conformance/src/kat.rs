//! CSIDH-512 known-answer tests.
//!
//! Vectors live as plain text under `tests/vectors/` at the workspace
//! root — `keygen.txt`, `exchange.txt` and `validate.txt` — and every
//! backend must reproduce them **byte-identically** (public keys and
//! shared secrets compare through their 64-byte wire encoding).
//!
//! The group action is deterministic in the key: the per-round random
//! points only change which isogeny is computed when, never the final
//! curve, so a (key → public key) pair is a well-defined answer
//! independent of the RNG driving the evaluation. Validation is
//! likewise deterministic in the candidate key.
//!
//! Regeneration: `cargo test -p mpise-conformance -- --ignored
//! regenerate_vectors` rewrites the files with `FpFull`; the KAT suite
//! then holds every other backend to those bytes.

use mpise_csidh::{validate, PrivateKey, PublicKey};
use mpise_fp::params::NUM_PRIMES;
use mpise_fp::Fp;
use mpise_mpi::U512;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One keygen vector: private exponents and the resulting public key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeygenVector {
    /// Private exponent vector.
    pub exponents: [i8; NUM_PRIMES],
    /// Expected public key (canonical Montgomery coefficient).
    pub public: U512,
}

/// One key-exchange vector: both private keys, both public keys, and
/// the agreed shared secret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExchangeVector {
    /// Alice's exponents.
    pub alice: [i8; NUM_PRIMES],
    /// Bob's exponents.
    pub bob: [i8; NUM_PRIMES],
    /// Alice's expected public key.
    pub alice_public: U512,
    /// Bob's expected public key.
    pub bob_public: U512,
    /// The expected shared secret (both directions).
    pub shared: U512,
}

/// One validation vector: a candidate coefficient and the verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidateVector {
    /// Candidate Montgomery coefficient.
    pub a: U512,
    /// Whether validation must accept it.
    pub accept: bool,
}

/// The full parsed suite.
#[derive(Debug, Clone, Default)]
pub struct KatSuite {
    /// Keygen vectors.
    pub keygen: Vec<KeygenVector>,
    /// Exchange vectors.
    pub exchange: Vec<ExchangeVector>,
    /// Validation vectors.
    pub validate: Vec<ValidateVector>,
}

impl KatSuite {
    /// Total vector count.
    pub fn len(&self) -> usize {
        self.keygen.len() + self.exchange.len() + self.validate.len()
    }

    /// Whether the suite is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn parse_exponents(s: &str) -> Result<[i8; NUM_PRIMES], String> {
    let vals: Result<Vec<i8>, _> = s.split(',').map(|t| t.trim().parse::<i8>()).collect();
    let vals = vals.map_err(|e| format!("bad exponent list: {e}"))?;
    vals.as_slice()
        .try_into()
        .map_err(|_| format!("expected {NUM_PRIMES} exponents, got {}", vals.len()))
}

fn fmt_exponents(e: &[i8; NUM_PRIMES]) -> String {
    e.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses `key: value` lines into records separated by `vector` lines;
/// `#` starts a comment.
fn records(src: &str) -> Vec<Vec<(String, String)>> {
    let mut out: Vec<Vec<(String, String)>> = Vec::new();
    for line in src.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "vector" {
            out.push(Vec::new());
            continue;
        }
        if let Some((k, v)) = line.split_once(':') {
            if let Some(rec) = out.last_mut() {
                rec.push((k.trim().to_owned(), v.trim().to_owned()));
            }
        }
    }
    out
}

fn field<'a>(rec: &'a [(String, String)], key: &str) -> Result<&'a str, String> {
    rec.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
        .ok_or_else(|| format!("missing field `{key}`"))
}

/// Parses `keygen.txt`.
pub fn parse_keygen(src: &str) -> Result<Vec<KeygenVector>, String> {
    records(src)
        .iter()
        .map(|rec| {
            Ok(KeygenVector {
                exponents: parse_exponents(field(rec, "exponents")?)?,
                public: U512::from_hex(field(rec, "public")?)?,
            })
        })
        .collect()
}

/// Parses `exchange.txt`.
pub fn parse_exchange(src: &str) -> Result<Vec<ExchangeVector>, String> {
    records(src)
        .iter()
        .map(|rec| {
            Ok(ExchangeVector {
                alice: parse_exponents(field(rec, "alice")?)?,
                bob: parse_exponents(field(rec, "bob")?)?,
                alice_public: U512::from_hex(field(rec, "alice_public")?)?,
                bob_public: U512::from_hex(field(rec, "bob_public")?)?,
                shared: U512::from_hex(field(rec, "shared")?)?,
            })
        })
        .collect()
}

/// Parses `validate.txt`.
pub fn parse_validate(src: &str) -> Result<Vec<ValidateVector>, String> {
    records(src)
        .iter()
        .map(|rec| {
            let accept = match field(rec, "expect")? {
                "accept" => true,
                "reject" => false,
                other => return Err(format!("bad verdict `{other}`")),
            };
            Ok(ValidateVector {
                a: U512::from_hex(field(rec, "a")?)?,
                accept,
            })
        })
        .collect()
}

/// Loads the whole suite from a directory holding the three files.
///
/// # Errors
///
/// Returns a description when a file is unreadable or malformed.
pub fn load_suite(dir: &std::path::Path) -> Result<KatSuite, String> {
    let read = |name: &str| -> Result<String, String> {
        std::fs::read_to_string(dir.join(name)).map_err(|e| format!("{name}: {e}"))
    };
    Ok(KatSuite {
        keygen: parse_keygen(&read("keygen.txt")?)?,
        exchange: parse_exchange(&read("exchange.txt")?)?,
        validate: parse_validate(&read("validate.txt")?)?,
    })
}

/// The committed vector directory, resolved relative to this crate at
/// compile time (`tests/vectors/` at the workspace root).
pub fn default_vectors_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/vectors")
}

/// Checks one keygen vector on a backend; byte-identical comparison.
pub fn check_keygen<F: Fp>(f: &F, v: &KeygenVector) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(1);
    let key = PrivateKey {
        exponents: v.exponents,
    };
    let got = key.public_key(f, &mut rng);
    if got.to_bytes() != (PublicKey { a: v.public }).to_bytes() {
        return Err(format!(
            "keygen mismatch: got {}, want {}",
            got.a.to_hex(),
            v.public.to_hex()
        ));
    }
    Ok(())
}

/// Checks one exchange vector: both public keys and both directions of
/// the shared secret.
pub fn check_exchange<F: Fp>(f: &F, v: &ExchangeVector) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(2);
    let alice = PrivateKey { exponents: v.alice };
    let bob = PrivateKey { exponents: v.bob };
    let ap = alice.public_key(f, &mut rng);
    let bp = bob.public_key(f, &mut rng);
    if ap.a != v.alice_public || bp.a != v.bob_public {
        return Err("exchange public keys mismatch".to_owned());
    }
    let s1 = alice.shared_secret(f, &mut rng, &bp);
    let s2 = bob.shared_secret(f, &mut rng, &ap);
    if s1.to_bytes() != s2.to_bytes() {
        return Err("shared secrets disagree between directions".to_owned());
    }
    if s1.a != v.shared {
        return Err(format!(
            "shared secret mismatch: got {}, want {}",
            s1.a.to_hex(),
            v.shared.to_hex()
        ));
    }
    Ok(())
}

/// Checks one validation vector.
pub fn check_validate<F: Fp>(f: &F, v: &ValidateVector) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(3);
    let got = validate(f, &mut rng, &PublicKey { a: v.a });
    if got != v.accept {
        return Err(format!(
            "validate({}) = {got}, want {}",
            v.a.to_hex(),
            v.accept
        ));
    }
    Ok(())
}

/// Runs the full suite on one backend; returns (vectors checked,
/// failures).
pub fn run_suite<F: Fp>(f: &F, suite: &KatSuite, label: &str) -> (u64, Vec<String>) {
    let mut failures = Vec::new();
    let mut checked = 0u64;
    for (i, v) in suite.keygen.iter().enumerate() {
        checked += 1;
        if let Err(e) = check_keygen(f, v) {
            failures.push(format!("{label} keygen[{i}]: {e}"));
        }
    }
    for (i, v) in suite.exchange.iter().enumerate() {
        checked += 1;
        if let Err(e) = check_exchange(f, v) {
            failures.push(format!("{label} exchange[{i}]: {e}"));
        }
    }
    for (i, v) in suite.validate.iter().enumerate() {
        checked += 1;
        if let Err(e) = check_validate(f, v) {
            failures.push(format!("{label} validate[{i}]: {e}"));
        }
    }
    (checked, failures)
}

/// The fixed private keys the committed suite is generated from: one
/// **sparse** key (two nonzero exponents — cheap enough for the
/// direct-simulation backend), then seeded dense keys of increasing
/// bound.
pub fn generation_keys() -> Vec<[i8; NUM_PRIMES]> {
    let mut keys = Vec::new();
    let mut sparse = [0i8; NUM_PRIMES];
    sparse[0] = 1;
    sparse[3] = -1;
    keys.push(sparse);
    let mut rng = StdRng::seed_from_u64(0xCA51D);
    for bound in [1i8, 1, 2, 5] {
        keys.push(PrivateKey::random_with_bound(&mut rng, bound).exponents);
    }
    keys
}

/// Renders the three vector files from a backend (the generator; the
/// suite then holds every backend to these bytes).
pub fn generate<F: Fp>(f: &F) -> (String, String, String) {
    let mut rng = StdRng::seed_from_u64(9);
    let keys = generation_keys();

    let mut keygen = String::from(
        "# CSIDH-512 keygen known-answer vectors.\n\
         # exponents: e_1..e_74 (class-group exponent vector)\n\
         # public: canonical Montgomery coefficient A, hex\n",
    );
    let mut publics = Vec::new();
    for k in &keys {
        let key = PrivateKey { exponents: *k };
        let public = key.public_key(f, &mut rng);
        publics.push(public);
        keygen.push_str(&format!(
            "vector\nexponents: {}\npublic: {}\n",
            fmt_exponents(k),
            public.a.to_hex()
        ));
    }

    let mut exchange = String::from(
        "# CSIDH-512 key-exchange known-answer vectors.\n\
         # shared: the agreed coefficient, identical in both directions\n",
    );
    for pair in [(0usize, 1usize), (1, 2)] {
        let alice = PrivateKey {
            exponents: keys[pair.0],
        };
        let bob = PrivateKey {
            exponents: keys[pair.1],
        };
        let shared = alice.shared_secret(f, &mut rng, &publics[pair.1]);
        let other = bob.shared_secret(f, &mut rng, &publics[pair.0]);
        assert_eq!(shared.a, other.a, "directions agree at generation time");
        exchange.push_str(&format!(
            "vector\nalice: {}\nbob: {}\nalice_public: {}\nbob_public: {}\nshared: {}\n",
            fmt_exponents(&keys[pair.0]),
            fmt_exponents(&keys[pair.1]),
            publics[pair.0].a.to_hex(),
            publics[pair.1].a.to_hex(),
            shared.a.to_hex()
        ));
    }

    let mut validate_txt = String::from(
        "# CSIDH-512 public-key validation vectors.\n\
         # accept: genuine public keys and the base curve.\n\
         # reject: A = ±2 (singular), small non-supersingular A.\n",
    );
    let p = mpise_fp::params::Csidh512::get().p;
    let candidates: Vec<U512> = vec![
        U512::ZERO,                         // base curve: accept
        publics[0].a,                       // genuine key: accept
        publics[3].a,                       // genuine key: accept
        U512::from_u64(2),                  // singular: reject
        p.wrapping_sub(&U512::from_u64(2)), // -2, singular: reject
        U512::from_u64(5),                  // ordinary curve: reject
        U512::from_u64(12345),              // ordinary curve: reject
    ];
    for a in candidates {
        let ok = validate(f, &mut rng, &PublicKey { a });
        validate_txt.push_str(&format!(
            "vector\na: {}\nexpect: {}\n",
            a.to_hex(),
            if ok { "accept" } else { "reject" }
        ));
    }

    (keygen, exchange, validate_txt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpise_fp::FpFull;

    #[test]
    fn record_parsing_round_trips() {
        let src = "# comment\nvector\nexponents: 1,-1,0\npublic: 0a\n";
        let recs = records(src);
        assert_eq!(recs.len(), 1);
        assert_eq!(field(&recs[0], "public").unwrap(), "0a");
        assert!(field(&recs[0], "missing").is_err());
    }

    #[test]
    fn exponent_parse_checks_length() {
        assert!(parse_exponents("1,2,3").is_err());
        let full = fmt_exponents(&[0i8; NUM_PRIMES]);
        assert!(parse_exponents(&full).is_ok());
    }

    #[test]
    fn committed_suite_loads_and_passes_on_host() {
        let suite = load_suite(&default_vectors_dir()).expect("committed vectors parse");
        assert!(suite.keygen.len() >= 3, "enough keygen vectors");
        assert!(!suite.exchange.is_empty());
        assert!(suite.validate.iter().any(|v| v.accept));
        assert!(suite.validate.iter().any(|v| !v.accept));
        let (n, failures) = run_suite(&FpFull::new(), &suite, "FpFull");
        assert_eq!(n as usize, suite.len());
        assert!(failures.is_empty(), "{failures:?}");
    }

    /// Regenerates the committed vector files from the full-radix host
    /// backend. Run manually after an intentional change:
    /// `cargo test -p mpise-conformance -- --ignored regenerate_vectors`
    #[test]
    #[ignore]
    fn regenerate_vectors() {
        let dir = default_vectors_dir();
        std::fs::create_dir_all(&dir).expect("create tests/vectors");
        let (keygen, exchange, validate_txt) = generate(&FpFull::new());
        std::fs::write(dir.join("keygen.txt"), keygen).unwrap();
        std::fs::write(dir.join("exchange.txt"), exchange).unwrap();
        std::fs::write(dir.join("validate.txt"), validate_txt).unwrap();
    }
}
