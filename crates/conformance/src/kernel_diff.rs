//! Cross-backend kernel difftest.
//!
//! Two layers of comparison, both against oracles that share no code
//! with the implementations under test:
//!
//! 1. **Kernel layer** — every Table 4 kernel in every configuration
//!    (4 configs × 8 ops = 32 combinations) runs on the simulator and
//!    is checked against a [`RefInt`] schoolbook oracle reimplemented
//!    here, on shared seeded random inputs *plus* adversarial edges:
//!    0, 1, p−1, p, 2p−1 and limb-boundary carry patterns.
//! 2. **Field layer** — `FpFull`, `FpRed`, the four `SimFp`
//!    configurations and the `FpBatch` lane kernels (lanes 1..=32) all
//!    evaluate the same operations, and their **canonical byte
//!    encodings** (`to_uint().to_le_bytes()`) are diffed pairwise.

use mpise_fp::kernels::{Config, OpKind, Radix};
use mpise_fp::measure::KernelRunner;
use mpise_fp::params::{Csidh512, FULL_LIMBS, RED_LIMBS};
use mpise_fp::simfp::SimFp;
use mpise_fp::{Fp, FpBatch, FpFull, FpRed};
use mpise_mpi::reference::RefInt;
use mpise_mpi::{mul as mpi_mul, Reduced, U512};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of the kernel + field difftest pass.
#[derive(Debug, Clone, Default)]
pub struct KernelDiffOutcome {
    /// Kernel × configuration combinations exercised (must be 32).
    pub combos: u64,
    /// Total input cases diffed across both layers.
    pub cases: u64,
    /// Distinct batch lane widths exercised (1..=32 → 32).
    pub lane_widths: u64,
    /// Human-readable divergence descriptions (empty on success).
    pub failures: Vec<String>,
}

impl KernelDiffOutcome {
    /// Whether every comparison agreed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn ref_p() -> RefInt {
    RefInt::from_limbs(Csidh512::get().p.limbs())
}

fn words_to_int(words: &[u64], radix: Radix) -> RefInt {
    match radix {
        Radix::Full => RefInt::from_limbs(words),
        Radix::Reduced => {
            let mut acc = RefInt::zero();
            for (i, &w) in words.iter().enumerate() {
                acc = acc.add(&RefInt::from_limbs(&[w]).shl(57 * i));
            }
            acc
        }
    }
}

/// Encodes a canonical value (`< 2^512`) in the element word layout.
fn int_to_words(v: &RefInt, radix: Radix) -> Vec<u64> {
    match radix {
        Radix::Full => v.to_limbs(FULL_LIMBS),
        Radix::Reduced => {
            let u = U512::from_limbs(v.to_limbs(FULL_LIMBS).try_into().expect("8 limbs"));
            Reduced::<RED_LIMBS>::from_uint(&u).limbs().to_vec()
        }
    }
}

/// Adversarial canonical residues: identities, the top of the range and
/// limb-boundary carry patterns (all limbs saturated, the 57-bit radix
/// boundary, a single bit straddling limb 4).
fn edge_residues() -> Vec<U512> {
    let p = Csidh512::get().p;
    let pm1 = p.wrapping_sub(&U512::ONE);
    let mut low_ones = [0u64; FULL_LIMBS];
    for l in low_ones.iter_mut().take(FULL_LIMBS / 2) {
        *l = u64::MAX;
    }
    let mask57 = (1u64 << 57) - 1;
    vec![
        U512::ZERO,
        U512::ONE,
        pm1,
        U512::from_limbs(low_ones),
        U512::from_limbs([mask57; FULL_LIMBS]),
        U512::ONE.shl(57),
        U512::ONE.shl(57 * 4),
        U512::ONE.shl(256).wrapping_sub(&U512::ONE),
    ]
}

fn random_residue(rng: &mut StdRng) -> U512 {
    let p = Csidh512::get().p;
    loop {
        let cand = U512::from_limbs(std::array::from_fn(|_| rng.gen())).and(&U512::MAX.shr(1));
        if cand < p {
            return cand;
        }
    }
}

/// Expected result of `op` (value, compare-mod) from the schoolbook
/// oracle. `MontRedc` kernels may return any representative in
/// `[0, 2p)`, so those compare mod `p` with a range check.
fn oracle(op: OpKind, radix: Radix, inputs: &[&[u64]]) -> (RefInt, Option<RefInt>) {
    let rp = ref_p();
    let r_bits = match radix {
        Radix::Full => 64 * FULL_LIMBS,
        Radix::Reduced => 57 * RED_LIMBS,
    };
    let r_inv = || {
        let pm2 = RefInt::from_limbs(Csidh512::get().p_minus_2.limbs());
        RefInt::one().shl(r_bits).powmod(&pm2, &rp)
    };
    let a = words_to_int(inputs[0], radix);
    match op {
        OpKind::IntMul => (a.mul(&words_to_int(inputs[1], radix)), None),
        OpKind::IntSqr => (a.mul(&a), None),
        OpKind::MontRedc => (a.mulmod(&r_inv(), &rp), Some(rp)),
        OpKind::FastReduce => (a.rem(&rp), None),
        OpKind::FpAdd => (a.add(&words_to_int(inputs[1], radix)).rem(&rp), None),
        OpKind::FpSub => (
            a.add(&rp).sub(&words_to_int(inputs[1], radix)).rem(&rp),
            None,
        ),
        OpKind::FpMul => (
            a.mulmod(&words_to_int(inputs[1], radix), &rp)
                .mulmod(&r_inv(), &rp),
            None,
        ),
        OpKind::FpSqr => (a.mulmod(&a, &rp).mulmod(&r_inv(), &rp), None),
    }
}

/// Builds the input case list for one op: per-op adversarial edges
/// first, then seeded random cases up to `cases` total.
fn build_cases(op: OpKind, radix: Radix, cases: usize, rng: &mut StdRng) -> Vec<Vec<Vec<u64>>> {
    let p = ref_p();
    let edges = edge_residues();
    let residue_pairs: Vec<(U512, U512)> = {
        let mut v: Vec<(U512, U512)> = edges
            .iter()
            .map(|&e| (e, *edges.last().expect("non-empty")))
            .collect();
        v.extend(edges.iter().map(|&e| (e, e)));
        v
    };
    let to_words = |v: &U512| int_to_words(&RefInt::from_limbs(v.limbs()), radix);
    let mut out: Vec<Vec<Vec<u64>>> = Vec::new();
    match op {
        OpKind::IntMul | OpKind::FpAdd | OpKind::FpSub | OpKind::FpMul => {
            for (a, b) in &residue_pairs {
                out.push(vec![to_words(a), to_words(b)]);
            }
            while out.len() < cases {
                out.push(vec![
                    to_words(&random_residue(rng)),
                    to_words(&random_residue(rng)),
                ]);
            }
        }
        OpKind::IntSqr | OpKind::FpSqr => {
            for e in &edges {
                out.push(vec![to_words(e)]);
            }
            while out.len() < cases {
                out.push(vec![to_words(&random_residue(rng))]);
            }
        }
        OpKind::FastReduce => {
            // Inputs range over [0, 2p): include the boundary values p
            // and 2p−1 that no canonical-residue generator produces.
            let two_p_m1 = p.add(&p).sub(&RefInt::one());
            for v in [
                RefInt::zero(),
                RefInt::one(),
                p.sub(&RefInt::one()),
                p.clone(),
                p.add(&RefInt::one()),
                two_p_m1,
            ] {
                out.push(vec![int_to_words(&v, radix)]);
            }
            while out.len() < cases {
                let r = RefInt::from_limbs(random_residue(rng).limbs());
                let v = if rng.gen::<bool>() { r.add(&p) } else { r };
                out.push(vec![int_to_words(&v, radix)]);
            }
        }
        OpKind::MontRedc => {
            // Double-length products, including products of the edges
            // (0·0, 1·(p−1), (p−1)·(p−1), saturated-limb patterns).
            let mut pairs: Vec<(U512, U512)> = residue_pairs;
            while pairs.len() < cases {
                pairs.push((random_residue(rng), random_residue(rng)));
            }
            for (a, b) in pairs.into_iter().take(cases.max(1)) {
                let t = match radix {
                    Radix::Full => {
                        let (lo, hi) = mpi_mul::mul_ps(&a, &b);
                        let mut t = lo.limbs().to_vec();
                        t.extend_from_slice(hi.limbs());
                        t
                    }
                    Radix::Reduced => {
                        let ra = Reduced::<RED_LIMBS>::from_uint(&a);
                        let rb = Reduced::<RED_LIMBS>::from_uint(&b);
                        let mut t = vec![0u64; 2 * RED_LIMBS];
                        mpise_mpi::reduced::mul_ps_slices_57(ra.limbs(), rb.limbs(), &mut t);
                        t
                    }
                };
                out.push(vec![t]);
            }
        }
    }
    out
}

/// Runs all 32 kernel × configuration combinations against the
/// schoolbook oracle.
pub fn run_kernel_layer(cases_per_combo: usize, seed: u64) -> KernelDiffOutcome {
    let mut outcome = KernelDiffOutcome::default();
    for (ci, &config) in Config::ALL.iter().enumerate() {
        let mut runner = KernelRunner::new(config);
        for (oi, &op) in OpKind::ALL.iter().enumerate() {
            outcome.combos += 1;
            let mut rng = StdRng::seed_from_u64(seed ^ ((ci as u64) << 32) ^ ((oi as u64) << 16));
            let cases = build_cases(op, config.radix, cases_per_combo, &mut rng);
            for (case_idx, inputs) in cases.iter().enumerate() {
                outcome.cases += 1;
                let refs: Vec<&[u64]> = inputs.iter().map(|v| v.as_slice()).collect();
                let (out, _cycles) = runner.run(op, &refs);
                let got = words_to_int(&out, config.radix);
                let (want, modulus) = oracle(op, config.radix, &refs);
                let ok = match &modulus {
                    None => got == want,
                    Some(m) => {
                        got.rem(m) == want.rem(m)
                            && got.cmp_ref(&m.add(m)) == std::cmp::Ordering::Less
                    }
                };
                if !ok {
                    outcome.failures.push(format!(
                        "{config}: {op:?} diverges from schoolbook oracle on case {case_idx}"
                    ));
                    break;
                }
            }
        }
    }
    outcome
}

/// Byte-level agreement of one operation across two backends.
fn diff_bytes<F1: Fp, F2: Fp>(
    label1: &str,
    f1: &F1,
    label2: &str,
    f2: &F2,
    a: &U512,
    b: &U512,
    failures: &mut Vec<String>,
) -> u64 {
    let (a1, b1) = (f1.from_uint(a), f1.from_uint(b));
    let (a2, b2) = (f2.from_uint(a), f2.from_uint(b));
    let ops: [(&str, U512, U512); 4] = [
        (
            "add",
            f1.to_uint(&f1.add(&a1, &b1)),
            f2.to_uint(&f2.add(&a2, &b2)),
        ),
        (
            "sub",
            f1.to_uint(&f1.sub(&a1, &b1)),
            f2.to_uint(&f2.sub(&a2, &b2)),
        ),
        (
            "mul",
            f1.to_uint(&f1.mul(&a1, &b1)),
            f2.to_uint(&f2.mul(&a2, &b2)),
        ),
        ("sqr", f1.to_uint(&f1.sqr(&a1)), f2.to_uint(&f2.sqr(&a2))),
    ];
    for (name, r1, r2) in &ops {
        if r1.to_le_bytes() != r2.to_le_bytes() {
            failures.push(format!(
                "field {name}: {label1} {} != {label2} {}",
                r1.to_hex(),
                r2.to_hex()
            ));
        }
    }
    ops.len() as u64
}

/// Field-layer difftest: host backends against each other and against
/// the four simulator configurations, plus batch lanes 1..=32.
///
/// `sim_cases` bounds the (slow) simulator comparisons; host and batch
/// comparisons always cover the full case list.
pub fn run_field_layer(cases: usize, sim_cases: usize, seed: u64) -> KernelDiffOutcome {
    let mut outcome = KernelDiffOutcome::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let p = Csidh512::get().p;
    let mut inputs: Vec<(U512, U512)> = Vec::new();
    let edges = edge_residues();
    // Non-canonical imports too: from_uint documents reduction mod p.
    let mut import_edges = edges.clone();
    import_edges.push(p);
    import_edges.push(p.wrapping_add(&U512::ONE));
    for (i, &e) in import_edges.iter().enumerate() {
        inputs.push((e, import_edges[(i + 1) % import_edges.len()]));
    }
    while inputs.len() < cases {
        inputs.push((random_residue(&mut rng), random_residue(&mut rng)));
    }

    let full = FpFull::new();
    let red = FpRed::new();
    for (a, b) in &inputs {
        outcome.cases += diff_bytes("FpFull", &full, "FpRed", &red, a, b, &mut outcome.failures);
    }

    // Simulator backends: every configuration against the host oracle.
    for config in Config::ALL {
        let sim = SimFp::new(config);
        for (a, b) in inputs.iter().take(sim_cases) {
            outcome.cases += diff_bytes(
                "FpFull",
                &full,
                &format!("SimFp[{config}]"),
                &sim,
                a,
                b,
                &mut outcome.failures,
            );
        }
    }

    // Batch kernels: every lane width 1..=32, each lane checked against
    // the scalar host result byte-for-byte.
    for lanes in 1..=32usize {
        outcome.lane_widths += 1;
        let take = |n: usize| -> Vec<U512> {
            (0..lanes)
                .map(|i| inputs[(n + i) % inputs.len()].0)
                .collect()
        };
        let av = take(0);
        let bv: Vec<U512> = (0..lanes).map(|i| inputs[i % inputs.len()].1).collect();
        check_batch(&full, "FpFull", &av, &bv, &mut outcome);
        check_batch(&red, "FpRed", &av, &bv, &mut outcome);
    }
    outcome
}

fn check_batch<F: FpBatch>(
    f: &F,
    label: &str,
    av: &[U512],
    bv: &[U512],
    out: &mut KernelDiffOutcome,
) {
    let scalar = FpFull::new();
    let s = |v: &U512| scalar.from_uint(v);
    let a: Vec<F::Elem> = av.iter().map(|v| f.from_uint(v)).collect();
    let b: Vec<F::Elem> = bv.iter().map(|v| f.from_uint(v)).collect();
    let lanes = a.len();
    let mut r = vec![f.zero(); lanes];
    for name in ["add_n", "sub_n", "mul_n", "sqr_n"] {
        match name {
            "add_n" => f.add_n(&a, &b, &mut r),
            "sub_n" => f.sub_n(&a, &b, &mut r),
            "mul_n" => f.mul_n(&a, &b, &mut r),
            _ => f.sqr_n(&a, &mut r),
        }
        for i in 0..lanes {
            out.cases += 1;
            let got = f.to_uint(&r[i]);
            let want = match name {
                "add_n" => scalar.add(&s(&av[i]), &s(&bv[i])),
                "sub_n" => scalar.sub(&s(&av[i]), &s(&bv[i])),
                "mul_n" => scalar.mul(&s(&av[i]), &s(&bv[i])),
                _ => scalar.sqr(&s(&av[i])),
            };
            let want = scalar.to_uint(&want);
            if got.to_le_bytes() != want.to_le_bytes() {
                out.failures.push(format!(
                    "batch {label}.{name} lanes={lanes} lane {i}: {} != {}",
                    got.to_hex(),
                    want.to_hex()
                ));
            }
        }
    }
}

/// Merges two outcomes (kernel layer + field layer) into one.
pub fn merge(a: KernelDiffOutcome, b: KernelDiffOutcome) -> KernelDiffOutcome {
    KernelDiffOutcome {
        combos: a.combos + b.combos,
        cases: a.cases + b.cases,
        lane_widths: a.lane_widths + b.lane_widths,
        failures: a.failures.into_iter().chain(b.failures).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_layer_covers_all_32_combos() {
        let out = run_kernel_layer(3, 0xD1FF);
        assert_eq!(out.combos, 32);
        assert!(out.passed(), "{:?}", out.failures);
    }

    #[test]
    fn field_layer_agrees_across_backends() {
        let out = run_field_layer(12, 1, 0xD1FF);
        assert_eq!(out.lane_widths, 32);
        assert!(out.passed(), "{:?}", out.failures);
    }

    #[test]
    fn oracle_matches_known_small_values() {
        // 3 · 5 = 15 through the IntMul oracle in both radices.
        for radix in [Radix::Full, Radix::Reduced] {
            let a = int_to_words(&RefInt::from_u64(3), radix);
            let b = int_to_words(&RefInt::from_u64(5), radix);
            let (want, m) = oracle(OpKind::IntMul, radix, &[&a, &b]);
            assert!(m.is_none());
            assert_eq!(want, RefInt::from_u64(15));
        }
    }

    #[test]
    fn edge_residues_are_canonical() {
        let p = Csidh512::get().p;
        for e in edge_residues() {
            assert!(e < p);
        }
    }
}
