//! # mpise-conformance — differential conformance and fuzzing
//!
//! The correctness backbone of the reproduction: every layer of the
//! stack is checked against an oracle that shares no code with it.
//!
//! * [`refexec`] — a pure reference executor for RV64IM plus the six
//!   Table 1 custom instructions, written directly from the paper's
//!   semantics in `u128` arithmetic, independent of `crates/sim`'s
//!   decode/dispatch.
//! * [`fuzz`] — a deterministic seed-driven random-program fuzzer that
//!   runs the simulator and the reference executor in lockstep and
//!   shrinks any divergence to a minimal failing program.
//! * [`kernel_diff`] — the cross-backend kernel difftest: all 32
//!   kernel × configuration combinations against a schoolbook oracle,
//!   plus field-level byte diffs across `FpFull`/`FpRed`/`SimFp` and
//!   batch lanes 1..=32.
//! * [`kat`] — the committed CSIDH-512 known-answer tests (keygen,
//!   shared-secret agreement, validation accept/reject) under
//!   `tests/vectors/`.
//! * [`corpus`] — the regression corpus of hand-written differential
//!   programs under `tests/corpus/`, replayed by the gate.
//! * [`report`] — the `mpise-difftest/v1` JSON artifact.
//! * [`cli`] — the `difftest` gate binary (also aliased at the
//!   workspace root), the correctness analogue of `ctcheck`.

pub mod cli;
pub mod corpus;
pub mod fuzz;
pub mod kat;
pub mod kernel_diff;
pub mod refexec;
pub mod report;

pub use fuzz::{fuzz, DiffRunner, ExtChoice, FuzzProgram};
pub use refexec::{ref_custom, RefMachine};
