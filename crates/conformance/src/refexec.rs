//! An independent reference executor for differential testing.
//!
//! Everything here is written directly from the architecture documents
//! — the RISC-V unprivileged spec for the base ISA and Figures 1–3 of
//! the paper for the six custom instructions — **without** calling into
//! `crates/sim`'s executor resolution or `mpise_core::intrinsics`. The
//! point of a differential oracle is that a bug must be introduced
//! twice, independently, before it can hide; sharing semantic code with
//! the system under test would defeat that.
//!
//! The custom-instruction semantics ([`ref_custom`]) are keyed by the
//! stable [`CustomId`] numbers of Table 1 and computed in `u128`
//! arithmetic exactly as the figures specify:
//!
//! | id | mnemonic   | semantics                                   |
//! |----|------------|---------------------------------------------|
//! | 1  | `maddlu`   | `(rs1 × rs2 + rs3) mod 2^64`                |
//! | 2  | `maddhu`   | `(rs1 × rs2 + rs3) div 2^64`                |
//! | 3  | `cadd`     | `carry(rs1 + rs2) + rs3 mod 2^64`           |
//! | 4  | `madd57lu` | `((rs1 × rs2) mod 2^57) + rs3 mod 2^64`     |
//! | 5  | `madd57hu` | `((rs1 × rs2) div 2^57 mod 2^64) + rs3`     |
//! | 6  | `sraiadd`  | `rs1 + sext(rs2) >> (imm mod 64)`           |
//!
//! [`RefMachine`] wraps the per-instruction semantics into a minimal
//! RV64IM interpreter (sparse byte-granular memory, 32 registers, an
//! instruction counter) so whole fuzz programs can run in lockstep with
//! [`mpise_sim::Machine`] and have their final architectural state
//! diffed.

use mpise_sim::ext::CustomId;
use mpise_sim::inst::{AluImmOp, AluOp, BranchOp, Inst, LoadOp};
use mpise_sim::machine::{DATA_BASE, DATA_SIZE, PROG_BASE};
use mpise_sim::Reg;
use std::collections::BTreeMap;

/// Reference semantics of one custom instruction, by [`CustomId`].
///
/// Returns `None` for ids outside Table 1 (the caller treats that as an
/// illegal instruction, as real hardware would).
///
/// # Examples
///
/// ```
/// use mpise_conformance::refexec::ref_custom;
/// use mpise_sim::ext::CustomId;
/// // cadd: carry out of rs1+rs2, plus rs3.
/// assert_eq!(ref_custom(CustomId(3), u64::MAX, 1, 10, 0), Some(11));
/// assert_eq!(ref_custom(CustomId(3), 5, 6, 10, 0), Some(10));
/// ```
pub fn ref_custom(id: CustomId, rs1: u64, rs2: u64, rs3: u64, imm: u8) -> Option<u64> {
    let x = rs1 as u128;
    let y = rs2 as u128;
    let z = rs3 as u128;
    let v = match id.0 {
        // maddlu (Figure 1): low 64 bits of the 128-bit x*y + z.
        1 => (x * y + z) as u64,
        // maddhu (Figure 1): high 64 bits of the same 128-bit sum; the
        // addend is applied before the shift so the low-half carry is
        // absorbed here.
        2 => ((x * y + z) >> 64) as u64,
        // cadd (Figure 3): the carry bit of x + y, added to z. The
        // result wraps modulo 2^64 like every register write.
        3 => (((x + y) >> 64) + z) as u64,
        // madd57lu (Figure 2): low 57 bits of the product, plus the
        // full 64-bit addend (delayed carries may exceed 57 bits).
        4 => ((x * y) % (1u128 << 57)).wrapping_add(z) as u64,
        // madd57hu (Figure 2): bits 120..57 of the product, truncated
        // to 64 bits, plus the addend.
        5 => (((x * y) >> 57) as u64 as u128 + z) as u64,
        // sraiadd (Figure 3): arithmetic shift of rs2 by the 6-bit
        // immediate, added to rs1.
        6 => {
            let shifted = ((rs2 as i64) >> (imm & 63)) as i128;
            (x as i128).wrapping_add(shifted) as u64
        }
        _ => return None,
    };
    Some(v)
}

/// Why a [`RefMachine`] run stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefExit {
    /// `ebreak` retired (normal program end in this harness).
    Breakpoint,
    /// `ecall` retired.
    EnvironmentCall,
    /// A fault, with a human-readable reason (illegal instruction,
    /// memory fault, PC escape).
    Fault(String),
    /// The instruction budget ran out.
    OutOfFuel,
}

/// Minimal independent RV64IM + Table 1 interpreter.
///
/// Memory is a sparse byte map over the simulator's data window
/// (`[DATA_BASE, DATA_BASE + DATA_SIZE)`); unwritten bytes read as
/// zero, matching the zero-initialised [`mpise_sim::mem::Memory`].
#[derive(Debug, Clone)]
pub struct RefMachine {
    /// Register file; index = architectural number, `x0` kept at zero.
    pub regs: [u64; 32],
    /// Program counter.
    pub pc: u64,
    /// Instructions retired so far.
    pub instret: u64,
    mem: BTreeMap<u64, u8>,
    program: Vec<Inst>,
    prog_base: u64,
}

impl Default for RefMachine {
    fn default() -> Self {
        Self::new()
    }
}

impl RefMachine {
    /// An empty machine with no program loaded.
    pub fn new() -> Self {
        RefMachine {
            regs: [0; 32],
            pc: PROG_BASE,
            instret: 0,
            mem: BTreeMap::new(),
            program: Vec::new(),
            prog_base: PROG_BASE,
        }
    }

    /// Loads a program at [`PROG_BASE`] and points the PC at it.
    pub fn load(&mut self, insts: &[Inst]) {
        self.program = insts.to_vec();
        self.pc = self.prog_base;
    }

    /// Writes a register (writes to `x0` are discarded).
    pub fn write_reg(&mut self, r: Reg, v: u64) {
        if r != Reg::Zero {
            self.regs[r.number() as usize] = v;
        }
    }

    /// Reads a register.
    pub fn read_reg(&self, r: Reg) -> u64 {
        self.regs[r.number() as usize]
    }

    fn mem_ok(addr: u64, width: u64) -> Result<(), String> {
        let end = DATA_BASE + DATA_SIZE as u64;
        if addr < DATA_BASE || addr.saturating_add(width) > end {
            return Err(format!("address {addr:#x} outside data memory"));
        }
        if !addr.is_multiple_of(width) {
            return Err(format!("misaligned {width}-byte access at {addr:#x}"));
        }
        Ok(())
    }

    /// Reads `width` little-endian bytes (zero for untouched bytes).
    pub fn load_mem(&self, addr: u64, width: u64) -> Result<u64, String> {
        Self::mem_ok(addr, width)?;
        let mut v = 0u64;
        for i in (0..width).rev() {
            v = (v << 8) | u64::from(*self.mem.get(&(addr + i)).unwrap_or(&0));
        }
        Ok(v)
    }

    /// Writes the low `width` bytes of `value`, little-endian.
    pub fn store_mem(&mut self, addr: u64, value: u64, width: u64) -> Result<(), String> {
        Self::mem_ok(addr, width)?;
        for i in 0..width {
            self.mem.insert(addr + i, (value >> (8 * i)) as u8);
        }
        Ok(())
    }

    /// Runs until exit or `fuel` instructions, whichever first.
    pub fn run(&mut self, mut fuel: u64) -> RefExit {
        loop {
            if fuel == 0 {
                return RefExit::OutOfFuel;
            }
            fuel -= 1;
            let off = self.pc.wrapping_sub(self.prog_base);
            if !off.is_multiple_of(4) || (off / 4) as usize >= self.program.len() {
                return RefExit::Fault(format!("pc {:#x} left the program", self.pc));
            }
            let inst = self.program[(off / 4) as usize];
            match self.step(&inst) {
                Ok(None) => {}
                Ok(Some(exit)) => {
                    self.instret += 1;
                    return exit;
                }
                Err(msg) => return RefExit::Fault(msg),
            }
            self.instret += 1;
        }
    }

    /// Executes one instruction. `Ok(Some(_))` means the instruction
    /// retired and ended the run (`ebreak`/`ecall`).
    #[allow(clippy::too_many_lines)]
    fn step(&mut self, inst: &Inst) -> Result<Option<RefExit>, String> {
        let link = self.pc.wrapping_add(4);
        let mut next = link;
        match *inst {
            Inst::Lui { rd, imm20 } => {
                self.write_reg(rd, (i64::from(imm20) << 12) as u64);
            }
            Inst::Auipc { rd, imm20 } => {
                self.write_reg(rd, self.pc.wrapping_add((i64::from(imm20) << 12) as u64));
            }
            Inst::Jal { rd, offset } => {
                self.write_reg(rd, link);
                next = self.pc.wrapping_add(offset as i64 as u64);
            }
            Inst::Jalr { rd, rs1, offset } => {
                let t = self.read_reg(rs1).wrapping_add(offset as i64 as u64) & !1u64;
                self.write_reg(rd, link);
                next = t;
            }
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let (a, b) = (self.read_reg(rs1), self.read_reg(rs2));
                let taken = match op {
                    BranchOp::Beq => a == b,
                    BranchOp::Bne => a != b,
                    BranchOp::Blt => (a as i64) < (b as i64),
                    BranchOp::Bge => (a as i64) >= (b as i64),
                    BranchOp::Bltu => a < b,
                    BranchOp::Bgeu => a >= b,
                };
                if taken {
                    next = self.pc.wrapping_add(offset as i64 as u64);
                }
            }
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.read_reg(rs1).wrapping_add(offset as i64 as u64);
                let raw = self.load_mem(addr, op.width())?;
                let v = match op {
                    LoadOp::Lb => i64::from(raw as u8 as i8) as u64,
                    LoadOp::Lh => i64::from(raw as u16 as i16) as u64,
                    LoadOp::Lw => i64::from(raw as u32 as i32) as u64,
                    LoadOp::Lbu | LoadOp::Lhu | LoadOp::Lwu | LoadOp::Ld => raw,
                };
                self.write_reg(rd, v);
            }
            Inst::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let addr = self.read_reg(rs1).wrapping_add(offset as i64 as u64);
                self.store_mem(addr, self.read_reg(rs2), op.width())?;
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let v = ref_alu_imm(op, self.read_reg(rs1), imm);
                self.write_reg(rd, v);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let v = ref_alu(op, self.read_reg(rs1), self.read_reg(rs2));
                self.write_reg(rd, v);
            }
            Inst::Fence => {}
            Inst::Ecall => return Ok(Some(RefExit::EnvironmentCall)),
            Inst::Ebreak => return Ok(Some(RefExit::Breakpoint)),
            Inst::Custom {
                id,
                rd,
                rs1,
                rs2,
                rs3,
                imm,
            } => {
                let v = ref_custom(
                    id,
                    self.read_reg(rs1),
                    self.read_reg(rs2),
                    self.read_reg(rs3),
                    imm,
                )
                .ok_or_else(|| format!("illegal custom id {}", id.0))?;
                self.write_reg(rd, v);
            }
        }
        self.pc = next;
        Ok(None)
    }
}

/// Reference RV64IM register–register semantics, written from the spec
/// text (division-by-zero → all-ones quotient / dividend remainder;
/// signed overflow → dividend / zero; `*w` forms operate on the low 32
/// bits and sign-extend).
pub fn ref_alu(op: AluOp, a: u64, b: u64) -> u64 {
    // Widen once; individual arms select the interpretation they need.
    let (sa, sb) = (a as i64, b as i64);
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl((b & 63) as u32),
        AluOp::Slt => u64::from(sa < sb),
        AluOp::Sltu => u64::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr((b & 63) as u32),
        AluOp::Sra => sa.wrapping_shr((b & 63) as u32) as u64,
        AluOp::Or => a | b,
        AluOp::And => a & b,
        AluOp::Addw => i64::from((a as i32).wrapping_add(b as i32)) as u64,
        AluOp::Subw => i64::from((a as i32).wrapping_sub(b as i32)) as u64,
        AluOp::Sllw => i64::from((a as i32).wrapping_shl((b & 31) as u32)) as u64,
        AluOp::Srlw => i64::from(((a as u32).wrapping_shr((b & 31) as u32)) as i32) as u64,
        AluOp::Sraw => i64::from((a as i32).wrapping_shr((b & 31) as u32)) as u64,
        AluOp::Mul => ((a as u128).wrapping_mul(b as u128)) as u64,
        AluOp::Mulh => ((i128::from(sa) * i128::from(sb)) >> 64) as u64,
        AluOp::Mulhsu => ((i128::from(sa) * (b as u128 as i128)) >> 64) as u64,
        AluOp::Mulhu => (((a as u128) * (b as u128)) >> 64) as u64,
        AluOp::Div => {
            if b == 0 {
                u64::MAX
            } else {
                sa.wrapping_div(sb) as u64
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                sa.wrapping_rem(sb) as u64
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
        AluOp::Mulw => i64::from((a as i32).wrapping_mul(b as i32)) as u64,
        AluOp::Divw => {
            let (x, y) = (a as i32, b as i32);
            let q = if y == 0 { -1 } else { x.wrapping_div(y) };
            i64::from(q) as u64
        }
        AluOp::Divuw => {
            let (x, y) = (a as u32, b as u32);
            let q = x.checked_div(y).unwrap_or(u32::MAX);
            i64::from(q as i32) as u64
        }
        AluOp::Remw => {
            let (x, y) = (a as i32, b as i32);
            let r = if y == 0 { x } else { x.wrapping_rem(y) };
            i64::from(r) as u64
        }
        AluOp::Remuw => {
            let (x, y) = (a as u32, b as u32);
            let r = if y == 0 { x } else { x % y };
            i64::from(r as i32) as u64
        }
    }
}

/// Reference RV64I register–immediate semantics.
pub fn ref_alu_imm(op: AluImmOp, a: u64, imm: i32) -> u64 {
    let simm = i64::from(imm) as u64;
    match op {
        AluImmOp::Addi => a.wrapping_add(simm),
        AluImmOp::Slti => u64::from((a as i64) < i64::from(imm)),
        AluImmOp::Sltiu => u64::from(a < simm),
        AluImmOp::Xori => a ^ simm,
        AluImmOp::Ori => a | simm,
        AluImmOp::Andi => a & simm,
        AluImmOp::Slli => a.wrapping_shl((imm & 63) as u32),
        AluImmOp::Srli => a.wrapping_shr((imm & 63) as u32),
        AluImmOp::Srai => ((a as i64).wrapping_shr((imm & 63) as u32)) as u64,
        AluImmOp::Addiw => i64::from((a as i32).wrapping_add(imm)) as u64,
        AluImmOp::Slliw => i64::from((a as i32).wrapping_shl((imm & 31) as u32)) as u64,
        AluImmOp::Srliw => i64::from(((a as u32).wrapping_shr((imm & 31) as u32)) as i32) as u64,
        AluImmOp::Sraiw => i64::from((a as i32).wrapping_shr((imm & 31) as u32)) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn custom_semantics_reassemble_products() {
        // maddlu/maddhu split the 128-bit sum exactly.
        for (x, y, z) in [
            (0u64, 0u64, 0u64),
            (u64::MAX, u64::MAX, u64::MAX),
            (0xdead_beef, 0xcafe_f00d, 42),
        ] {
            let full = (x as u128) * (y as u128) + z as u128;
            let lo = ref_custom(CustomId(1), x, y, z, 0).unwrap() as u128;
            let hi = ref_custom(CustomId(2), x, y, z, 0).unwrap() as u128;
            assert_eq!(full, (hi << 64) | lo);
            // madd57 pair reassembles the raw product.
            let p = (x as u128) * (y as u128);
            let lo57 = ref_custom(CustomId(4), x, y, 0, 0).unwrap() as u128;
            let hi57 = ref_custom(CustomId(5), x, y, 0, 0).unwrap() as u128;
            assert_eq!(p & ((1 << 57) - 1), lo57);
            assert_eq!((p >> 57) & u128::from(u64::MAX), hi57);
        }
    }

    #[test]
    fn sraiadd_shifts_arithmetically() {
        let neg = -1i64 as u64;
        assert_eq!(ref_custom(CustomId(6), 100, neg, 0, 57), Some(99));
        assert_eq!(ref_custom(CustomId(6), 100, 3 << 57, 0, 57), Some(103));
        // imm is taken modulo 64.
        assert_eq!(
            ref_custom(CustomId(6), 0, 8, 0, 3),
            ref_custom(CustomId(6), 0, 8, 0, 3 + 64)
        );
    }

    #[test]
    fn unknown_id_is_illegal() {
        assert_eq!(ref_custom(CustomId(7), 1, 2, 3, 0), None);
        assert_eq!(ref_custom(CustomId(0), 1, 2, 3, 0), None);
    }

    #[test]
    fn straight_line_program_runs() {
        let mut m = RefMachine::new();
        m.load(&[
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::T0,
                rs1: Reg::Zero,
                imm: 5,
            },
            Inst::Op {
                op: AluOp::Mul,
                rd: Reg::T1,
                rs1: Reg::T0,
                rs2: Reg::T0,
            },
            Inst::Ebreak,
        ]);
        assert_eq!(m.run(100), RefExit::Breakpoint);
        assert_eq!(m.read_reg(Reg::T1), 25);
        assert_eq!(m.instret, 3);
    }

    #[test]
    fn memory_round_trip_and_bounds() {
        let mut m = RefMachine::new();
        m.store_mem(DATA_BASE + 8, 0x1122_3344_5566_7788, 8)
            .unwrap();
        assert_eq!(m.load_mem(DATA_BASE + 8, 8).unwrap(), 0x1122_3344_5566_7788);
        // Sub-word views are little-endian.
        assert_eq!(m.load_mem(DATA_BASE + 8, 1).unwrap(), 0x88);
        assert_eq!(m.load_mem(DATA_BASE + 12, 4).unwrap(), 0x1122_3344);
        // Untouched memory reads zero; out-of-window faults.
        assert_eq!(m.load_mem(DATA_BASE + 64, 8).unwrap(), 0);
        assert!(m.load_mem(DATA_BASE - 8, 8).is_err());
        assert!(m.store_mem(DATA_BASE + 3, 0, 8).is_err(), "misaligned");
    }

    #[test]
    fn x0_discards_writes() {
        let mut m = RefMachine::new();
        m.load(&[
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::Zero,
                rs1: Reg::Zero,
                imm: 77,
            },
            Inst::Ebreak,
        ]);
        m.run(10);
        assert_eq!(m.read_reg(Reg::Zero), 0);
    }
}
