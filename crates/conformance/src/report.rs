//! The `mpise-difftest/v1` JSON artifact.
//!
//! One object per gate run, validated by `obscheck` and uploaded from
//! CI like the bench and load artifacts:
//!
//! ```json
//! {
//!   "schema": "mpise-difftest/v1",
//!   "date": "2026-08-07",
//!   "provenance": { "git_commit": "...", ... },
//!   "modes": {
//!     "isa_fuzz": { "programs": 100000, "exts": 3, "failures": [] },
//!     "kernel_difftest": { "combos": 32, "cases": 1234,
//!                          "lane_widths": 32, "failures": [] },
//!     "kat_corpus": { "kat_vectors": 14, "kat_backends": 2,
//!                     "corpus_files": 7, "failures": [] }
//!   },
//!   "pass": true
//! }
//! ```

use mpise_obs::Provenance;

/// Per-mode counters and failures feeding the artifact.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Fuzz programs executed across all extension targets.
    pub fuzz_programs: u64,
    /// Extension targets fuzzed.
    pub fuzz_exts: u64,
    /// Fuzz divergences (shrunk listings included in the message).
    pub fuzz_failures: Vec<String>,
    /// Kernel × configuration combinations diffed.
    pub kernel_combos: u64,
    /// Total kernel + field cases diffed.
    pub kernel_cases: u64,
    /// Batch lane widths exercised.
    pub lane_widths: u64,
    /// Kernel/field divergences.
    pub kernel_failures: Vec<String>,
    /// KAT vectors checked (summed over backends).
    pub kat_vectors: u64,
    /// Backends the KAT suite ran on.
    pub kat_backends: u64,
    /// Corpus entries replayed.
    pub corpus_files: u64,
    /// KAT/corpus failures.
    pub kat_failures: Vec<String>,
}

impl GateReport {
    /// Whether every mode passed.
    pub fn pass(&self) -> bool {
        self.fuzz_failures.is_empty()
            && self.kernel_failures.is_empty()
            && self.kat_failures.is_empty()
    }

    /// All failure messages, in mode order.
    pub fn all_failures(&self) -> impl Iterator<Item = &String> {
        self.fuzz_failures
            .iter()
            .chain(self.kernel_failures.iter())
            .chain(self.kat_failures.iter())
    }

    /// Renders the `mpise-difftest/v1` artifact.
    pub fn to_json(&self) -> String {
        let prov = Provenance::collect();
        let mut out = String::from("{\n");
        out.push_str("  \"schema\": \"mpise-difftest/v1\",\n");
        out.push_str(&format!(
            "  \"date\": \"{}\",\n",
            mpise_obs::time::utc_date_string()
        ));
        out.push_str(&format!("  \"provenance\": {},\n", prov.json()));
        out.push_str("  \"modes\": {\n");
        out.push_str(&format!(
            "    \"isa_fuzz\": {{\"programs\": {}, \"exts\": {}, \"failures\": {}}},\n",
            self.fuzz_programs,
            self.fuzz_exts,
            json_strings(&self.fuzz_failures)
        ));
        out.push_str(&format!(
            "    \"kernel_difftest\": {{\"combos\": {}, \"cases\": {}, \
             \"lane_widths\": {}, \"failures\": {}}},\n",
            self.kernel_combos,
            self.kernel_cases,
            self.lane_widths,
            json_strings(&self.kernel_failures)
        ));
        out.push_str(&format!(
            "    \"kat_corpus\": {{\"kat_vectors\": {}, \"kat_backends\": {}, \
             \"corpus_files\": {}, \"failures\": {}}}\n",
            self.kat_vectors,
            self.kat_backends,
            self.corpus_files,
            json_strings(&self.kat_failures)
        ));
        out.push_str("  },\n");
        out.push_str(&format!("  \"pass\": {}\n", self.pass()));
        out.push_str("}\n");
        out
    }
}

fn json_strings(v: &[String]) -> String {
    let items: Vec<String> = v
        .iter()
        .map(|s| {
            format!(
                "\"{}\"",
                s.replace('\\', "\\\\")
                    .replace('"', "\\\"")
                    .replace('\n', "\\n")
            )
        })
        .collect();
    format!("[{}]", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_has_schema_provenance_and_modes() {
        let mut r = GateReport {
            fuzz_programs: 10,
            fuzz_exts: 3,
            ..GateReport::default()
        };
        let j = r.to_json();
        assert!(j.contains("\"schema\": \"mpise-difftest/v1\""));
        assert!(j.contains("\"provenance\""));
        assert!(j.contains("\"git_commit\""));
        assert!(j.contains("\"isa_fuzz\""));
        assert!(j.contains("\"kernel_difftest\""));
        assert!(j.contains("\"kat_corpus\""));
        assert!(j.contains("\"pass\": true"));
        r.kernel_failures.push("bad \"thing\"\nline2".to_owned());
        let j = r.to_json();
        assert!(j.contains("\"pass\": false"));
        assert!(j.contains("bad \\\"thing\\\"\\nline2"));
    }
}
