//! Acceptance check for the differential fuzzer: a deliberately broken
//! executor must be caught and shrunk to a minimal reproduction.
//!
//! The injected bug is the classic multi-precision mutation: `cadd`
//! (carry(rs1 + rs2) + rs3) drops the carry and returns `rs3`
//! unchanged, so only inputs whose addition actually overflows 2^64
//! expose it — exactly the carry-boundary surface the fuzzer's
//! interesting-value bias targets.

use mpise_conformance::fuzz::{self, DiffRunner, ExtChoice, FuzzOp};
use mpise_sim::ext::{CustomId, IsaExtension};
use mpise_sim::Inst;

/// The full-radix extension with `cadd`'s executor mutated to drop the
/// carry. The reference side keeps the paper semantics, so every
/// overflowing `cadd` diverges.
fn broken_cadd_ext() -> IsaExtension {
    let mut ext = IsaExtension::new("full-radix-broken-cadd");
    for def in mpise_core::full_radix_ext().defs() {
        let mut def = def.clone();
        if def.id == CustomId(3) {
            def.exec = |a| a.rs3;
        }
        ext.define(def).expect("cloned definitions cannot conflict");
    }
    ext
}

#[test]
fn mutated_cadd_is_caught_and_shrunk_to_a_minimal_repro() {
    let mut runner = DiffRunner::with_machine_ext(broken_cadd_ext());
    let mut found = None;
    for seed in 0..20_000u64 {
        let prog = fuzz::gen_program(ExtChoice::FullRadix, seed);
        if runner.run(&prog).is_some() {
            found = Some((seed, prog));
            break;
        }
    }
    let (seed, prog) = found.expect("fuzzer exposes the dropped carry");

    let small = fuzz::shrink(&mut runner, &prog);
    let divergence = runner
        .run(&small)
        .expect("shrunk program still diverges")
        .to_string();
    assert!(
        small.ops.len() <= 10,
        "seed {seed}: shrunk repro has {} instructions (want <= 10):\n{}",
        small.ops.len(),
        small.listing()
    );
    // The minimal repro must actually contain the broken instruction.
    assert!(
        small.ops.iter().any(|op| matches!(
            op,
            FuzzOp::Plain(Inst::Custom { id, .. }) if *id == CustomId(3)
        )),
        "shrunk repro lost the cadd: {divergence}\n{}",
        small.listing()
    );
    // And the healthy simulator must agree with the reference on it.
    let mut healthy = DiffRunner::new(ExtChoice::FullRadix);
    assert!(
        healthy.run(&small).is_none(),
        "repro diverges only under the mutation"
    );
}

#[test]
fn healthy_extensions_survive_the_same_seeds() {
    // The exact seeds that expose the mutation must be clean on the
    // true executors — the finder above is not tripping on a latent
    // simulator/reference disagreement.
    for ext in ExtChoice::ALL {
        let report = fuzz::fuzz(ext, 0, 400, None, 1);
        assert!(
            report.failures.is_empty(),
            "{}: {}",
            ext.label(),
            report.failures[0].listing
        );
    }
}
