//! The full-radix ISE: `maddlu`, `maddhu`, `cadd` (Figures 1 and 3).
//!
//! Encodings use the custom-3 major opcode `0b1111011` with
//! funct3 = `0b111` and an R4-type format (three source registers), the
//! one exception the paper's design guidelines allow for the
//! performance-critical MAC operation (§3.2, guideline 3).
//!
//! | Instruction | funct2 | Semantics                                  |
//! |-------------|--------|--------------------------------------------|
//! | `maddlu`    | `00`   | `rd ← (rs1 × rs2 + rs3) & (2^64 − 1)`      |
//! | `maddhu`    | `01`   | `rd ← ((rs1 × rs2 + rs3) >> 64)`           |
//! | `cadd`      | `10`   | `rd ← ((rs1 + rs2) >> 64) + rs3`           |

use crate::intrinsics;
use mpise_sim::ext::{CustomArgs, CustomFormat, CustomId, CustomInstDef, ExecUnit, IsaExtension};

/// Major opcode shared by all R4-type custom instructions of the paper
/// (RISC-V custom-3 space).
pub const CUSTOM3_OPCODE: u8 = 0b1111011;

/// funct3 used by all the paper's R4-type custom instructions.
pub const ISE_FUNCT3: u8 = 0b111;

/// Stable id of `maddlu`.
pub const MADDLU: CustomId = CustomId(1);
/// Stable id of `maddhu`.
pub const MADDHU: CustomId = CustomId(2);
/// Stable id of `cadd`.
pub const CADD: CustomId = CustomId(3);

fn exec_maddlu(a: CustomArgs) -> u64 {
    intrinsics::maddlu(a.rs1, a.rs2, a.rs3)
}

fn exec_maddhu(a: CustomArgs) -> u64 {
    intrinsics::maddhu(a.rs1, a.rs2, a.rs3)
}

fn exec_cadd(a: CustomArgs) -> u64 {
    intrinsics::cadd(a.rs1, a.rs2, a.rs3)
}

fn r4(funct2: u8) -> CustomFormat {
    CustomFormat::R4 {
        opcode: CUSTOM3_OPCODE,
        funct3: ISE_FUNCT3,
        funct2,
    }
}

/// Builds the full-radix ISE as a pluggable extension.
///
/// All three instructions execute on the XMUL unit: the two MACs use its
/// multiplier array, and `cadd` uses its wide carry network — the paper
/// routes every custom instruction through XMUL (§3.3).
///
/// # Examples
///
/// ```
/// use mpise_core::full_radix_ext;
/// use mpise_sim::Machine;
/// let m = Machine::with_ext(full_radix_ext());
/// assert!(m.ext().by_mnemonic("maddlu").is_some());
/// assert!(m.ext().by_mnemonic("madd57lu").is_none());
/// ```
pub fn full_radix_ext() -> IsaExtension {
    let mut e = IsaExtension::new("Xmpimacfull");
    let defs = [
        CustomInstDef {
            id: MADDLU,
            mnemonic: "maddlu",
            format: r4(0b00),
            exec: exec_maddlu,
            unit: ExecUnit::Xmul,
        },
        CustomInstDef {
            id: MADDHU,
            mnemonic: "maddhu",
            format: r4(0b01),
            exec: exec_maddhu,
            unit: ExecUnit::Xmul,
        },
        CustomInstDef {
            id: CADD,
            mnemonic: "cadd",
            format: r4(0b10),
            exec: exec_cadd,
            unit: ExecUnit::Xmul,
        },
    ];
    for d in defs {
        e.define(d)
            .expect("full-radix ISE definitions are conflict-free");
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpise_sim::encode::encode;
    use mpise_sim::inst::Inst;
    use mpise_sim::{Assembler, Machine, Reg};

    #[test]
    fn encodings_match_figure_1_and_3() {
        let ext = full_radix_ext();
        // maddlu a0, a1, a2, a3: rs3=13,funct2=00,rs2=12,rs1=11,
        // funct3=111,rd=10,opcode=1111011
        let i = Inst::Custom {
            id: MADDLU,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
            rs3: Reg::A3,
            imm: 0,
        };
        let raw = encode(&i, &ext).unwrap();
        let expect: u32 =
            (13 << 27) | (12 << 20) | (11 << 15) | (0b111 << 12) | (10 << 7) | 0b1111011;
        assert_eq!(raw, expect);

        // funct2 distinguishes the three instructions.
        for (id, f2) in [(MADDLU, 0u32), (MADDHU, 1), (CADD, 2)] {
            let i = Inst::Custom {
                id,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
                rs3: Reg::A3,
                imm: 0,
            };
            let raw = encode(&i, &ext).unwrap();
            assert_eq!((raw >> 25) & 0x3, f2);
            assert_eq!(raw & 0x7f, 0b1111011);
            assert_eq!((raw >> 12) & 0x7, 0b111);
        }
    }

    #[test]
    fn decode_round_trip() {
        let ext = full_radix_ext();
        for id in [MADDLU, MADDHU, CADD] {
            let i = Inst::Custom {
                id,
                rd: Reg::T0,
                rs1: Reg::S2,
                rs2: Reg::S3,
                rs3: Reg::T6,
                imm: 0,
            };
            let raw = encode(&i, &ext).unwrap();
            let back = mpise_sim::decode::decode(raw, &ext).unwrap();
            assert_eq!(back, i);
        }
    }

    #[test]
    fn executes_on_machine() {
        let ext = full_radix_ext();
        let mut a = Assembler::new();
        // a0 = maddlu(a1, a2, a3); a4 = maddhu(a1, a2, a3)
        a.custom_r4(MADDLU, Reg::A0, Reg::A1, Reg::A2, Reg::A3);
        a.custom_r4(MADDHU, Reg::A4, Reg::A1, Reg::A2, Reg::A3);
        a.custom_r4(CADD, Reg::A5, Reg::A1, Reg::A1, Reg::A3);
        a.ebreak();
        let mut m = Machine::with_ext(ext);
        m.load_program(&a.finish());
        m.cpu.write_reg(Reg::A1, u64::MAX);
        m.cpu.write_reg(Reg::A2, u64::MAX);
        m.cpu.write_reg(Reg::A3, 5);
        m.run().unwrap();
        let p = (u64::MAX as u128) * (u64::MAX as u128) + 5;
        assert_eq!(m.cpu.read_reg(Reg::A0), p as u64);
        assert_eq!(m.cpu.read_reg(Reg::A4), (p >> 64) as u64);
        // cadd: carry(MAX + MAX) = 1, + 5 = 6
        assert_eq!(m.cpu.read_reg(Reg::A5), 6);
    }

    #[test]
    fn textual_assembly_knows_the_mnemonics() {
        let ext = full_radix_ext();
        let p = mpise_sim::asm::parse_program(
            "maddlu a0, a1, a2, a3\nmaddhu a4, a1, a2, a3\ncadd a5, a6, a7, t0\nebreak\n",
            &ext,
        )
        .unwrap();
        assert_eq!(p.len(), 4);
        let dis = p.disassemble(&ext);
        assert!(dis.contains("maddlu a0, a1, a2, a3"));
        assert!(dis.contains("cadd a5, a6, a7, t0"));
    }

    #[test]
    fn all_execute_in_one_cycle_on_xmul() {
        let ext = full_radix_ext();
        for d in ext.defs() {
            assert_eq!(d.unit, ExecUnit::Xmul, "{} must run on XMUL", d.mnemonic);
        }
    }
}
