//! Design-rule checks for the ISE design principles of §3.2.
//!
//! The paper adopts the guidelines of Marshall et al. (CHES 2021) so the
//! proposed instructions "could be considered to become part of a
//! standard extension":
//!
//! 1. operands live in the general-purpose scalar register file;
//! 2. no special-purpose architectural or micro-architectural state;
//! 3. at most two source registers and one destination — except that
//!    the performance-critical MAC operation may use the R4 format.
//!
//! Principles 1 and 2 hold *by construction* for any
//! [`mpise_sim::ext::IsaExtension`]: the execution model
//! is a pure function from GPR values to one GPR value (see
//! [`mpise_sim::ext::CustomInstDef::exec`]). Principle 3 is a property
//! of the chosen encodings and is checked here, together with encoding
//! hygiene rules (custom opcode space only, no overlap).

use mpise_sim::ext::{CustomFormat, IsaExtension};

/// RISC-V major opcodes reserved for custom extensions
/// (custom-0/1/2/3 of the unprivileged spec).
pub const CUSTOM_OPCODES: [u8; 4] = [0b0001011, 0b0101011, 0b1011011, 0b1111011];

/// One violated design rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// An R4-format instruction whose mnemonic does not mark it as a
    /// multiply-add ("madd…"): guideline 3 reserves R4 for the MAC.
    R4NotMac {
        /// The offending mnemonic.
        mnemonic: &'static str,
    },
    /// An instruction encodes outside the custom opcode space and could
    /// collide with current or future standard extensions.
    NonCustomOpcode {
        /// The offending mnemonic.
        mnemonic: &'static str,
        /// Its major opcode.
        opcode: u8,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::R4NotMac { mnemonic } => write!(
                f,
                "`{mnemonic}` uses the R4 format but is not a multiply-add"
            ),
            Violation::NonCustomOpcode { mnemonic, opcode } => {
                write!(f, "`{mnemonic}` uses non-custom major opcode {opcode:#09b}")
            }
        }
    }
}

/// Result of checking an extension against the design guidelines.
#[derive(Debug, Clone, Default)]
pub struct DesignReport {
    /// All rule violations found (empty = compliant).
    pub violations: Vec<Violation>,
    /// Number of instructions using the exceptional R4 format.
    pub r4_count: usize,
    /// Number of instructions within the 2-source/1-destination budget.
    pub two_source_count: usize,
}

impl DesignReport {
    /// Whether the extension satisfies all checkable guidelines.
    pub fn is_compliant(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks `ext` against the §3.2 guidelines.
///
/// # Examples
///
/// ```
/// use mpise_core::{full_radix_ext, reduced_radix_ext, guidelines::check};
/// assert!(check(&full_radix_ext()).is_compliant());
/// assert!(check(&reduced_radix_ext()).is_compliant());
/// ```
pub fn check(ext: &IsaExtension) -> DesignReport {
    let mut report = DesignReport::default();
    for def in ext.defs() {
        match def.format {
            CustomFormat::R4 { opcode, .. } => {
                report.r4_count += 1;
                // Guideline 3: R4 only for the MAC operation. `cadd`
                // is the documented second exception: it folds into the
                // MAC sequence (Listing 3) and shares XMUL's third read
                // port, so the paper treats it as part of the MAC
                // budget.
                let is_mac_family = def.mnemonic.contains("madd") || def.mnemonic == "cadd";
                if !is_mac_family {
                    report.violations.push(Violation::R4NotMac {
                        mnemonic: def.mnemonic,
                    });
                }
                if !CUSTOM_OPCODES.contains(&opcode) {
                    report.violations.push(Violation::NonCustomOpcode {
                        mnemonic: def.mnemonic,
                        opcode,
                    });
                }
            }
            CustomFormat::RShamt { opcode, .. } => {
                report.two_source_count += 1;
                if !CUSTOM_OPCODES.contains(&opcode) {
                    report.violations.push(Violation::NonCustomOpcode {
                        mnemonic: def.mnemonic,
                        opcode,
                    });
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpise_sim::ext::{CustomArgs, CustomId, CustomInstDef, ExecUnit};

    fn dummy(a: CustomArgs) -> u64 {
        a.rs1
    }

    #[test]
    fn paper_extensions_are_compliant() {
        let full = check(&crate::full_radix_ext());
        assert!(full.is_compliant(), "{:?}", full.violations);
        assert_eq!(full.r4_count, 3);

        let red = check(&crate::reduced_radix_ext());
        assert!(red.is_compliant(), "{:?}", red.violations);
        assert_eq!(red.r4_count, 2);
        assert_eq!(red.two_source_count, 1);
    }

    #[test]
    fn r4_non_mac_is_flagged() {
        let mut e = IsaExtension::new("bad");
        e.define(CustomInstDef {
            id: CustomId(900),
            mnemonic: "frobnicate",
            format: CustomFormat::R4 {
                opcode: 0b1111011,
                funct3: 0b001,
                funct2: 0b00,
            },
            exec: dummy,
            unit: ExecUnit::Alu,
        })
        .unwrap();
        let r = check(&e);
        assert!(!r.is_compliant());
        assert!(matches!(r.violations[0], Violation::R4NotMac { .. }));
    }

    #[test]
    fn standard_opcode_is_flagged() {
        let mut e = IsaExtension::new("bad");
        e.define(CustomInstDef {
            id: CustomId(901),
            mnemonic: "maddbad",
            format: CustomFormat::R4 {
                opcode: 0b0110011, // the standard OP opcode!
                funct3: 0b001,
                funct2: 0b00,
            },
            exec: dummy,
            unit: ExecUnit::Alu,
        })
        .unwrap();
        let r = check(&e);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NonCustomOpcode { .. })));
    }
}
