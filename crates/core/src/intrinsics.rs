//! Pure-Rust intrinsics with the exact semantics of the six custom
//! instructions (Figures 1–3 of the paper).
//!
//! These are the "software view" of the ISEs: the host-speed
//! ISE-supported field-arithmetic backends in `mpise-fp` are written in
//! terms of these functions, exactly as assembly kernels are written in
//! terms of the instructions. Each function documents the architectural
//! pseudo-code from the corresponding figure.

use crate::{REDUCED_RADIX_BITS, REDUCED_RADIX_MASK};

/// `maddlu rd, rs1, rs2, rs3` — full-radix fused multiply-add, low half
/// (Figure 1).
///
/// ```text
/// m ← (1 << 64) − 1
/// r ← (rs1 × rs2 + rs3) & m
/// ```
///
/// # Examples
///
/// ```
/// use mpise_core::intrinsics::maddlu;
/// assert_eq!(maddlu(3, 4, 5), 17);
/// assert_eq!(maddlu(u64::MAX, u64::MAX, u64::MAX), 0); // wraps mod 2^64
/// ```
#[inline]
pub const fn maddlu(x: u64, y: u64, z: u64) -> u64 {
    ((x as u128).wrapping_mul(y as u128).wrapping_add(z as u128)) as u64
}

/// `maddhu rd, rs1, rs2, rs3` — full-radix fused multiply-add, high half
/// (Figure 1).
///
/// ```text
/// m ← (1 << 64) − 1
/// r ← ((rs1 × rs2 + rs3) >> 64) & m
/// ```
///
/// Note the Multiply-**Add**-Shift-And order: the addend is applied to
/// the full 128-bit product *before* the shift, so the carry out of the
/// low half is absorbed here and needs no separate `sltu` (§3.2).
///
/// # Examples
///
/// ```
/// use mpise_core::intrinsics::{maddhu, maddlu};
/// // (x*y + z) == (maddhu << 64) | maddlu for any inputs:
/// let (x, y, z) = (0xdead_beef_u64, 0xcafe_f00d_dead_beef_u64, u64::MAX);
/// let full = (x as u128) * (y as u128) + (z as u128);
/// assert_eq!(full, ((maddhu(x, y, z) as u128) << 64) | maddlu(x, y, z) as u128);
/// ```
#[inline]
pub const fn maddhu(x: u64, y: u64, z: u64) -> u64 {
    (((x as u128).wrapping_mul(y as u128).wrapping_add(z as u128)) >> 64) as u64
}

/// `cadd rd, rs1, rs2, rs3` — compute-Carry-then-ADD (Figure 3).
///
/// ```text
/// r ← ((rs1 + rs2) >> 64) + rs3
/// ```
///
/// i.e. the carry-out of `rs1 + rs2` (0 or 1) added to `rs3`. Replaces
/// the `sltu`/`add` pair of the ISA-only full-radix MAC (Listing 1).
///
/// # Examples
///
/// ```
/// use mpise_core::intrinsics::cadd;
/// assert_eq!(cadd(u64::MAX, 1, 10), 11); // carry out
/// assert_eq!(cadd(5, 6, 10), 10);        // no carry
/// ```
#[inline]
pub const fn cadd(x: u64, y: u64, z: u64) -> u64 {
    (((x as u128 + y as u128) >> 64) as u64).wrapping_add(z)
}

/// `madd57lu rd, rs1, rs2, rs3` — reduced-radix fused multiply-add, low
/// 57 bits (Figure 2).
///
/// ```text
/// m ← (1 << 57) − 1
/// r ← ((rs1 × rs2) & m) + rs3
/// ```
///
/// Unlike AVX-512IFMA's `vpmadd52luq`, the multiplier is a full 64×64
/// one, so limbs that exceed 57 bits (delayed carries) do not saturate
/// it (§3.2, "multiplier saturation problem").
///
/// # Examples
///
/// ```
/// use mpise_core::intrinsics::madd57lu;
/// assert_eq!(madd57lu(1 << 56, 2, 3), 3); // product low 57 bits are 0
/// assert_eq!(madd57lu(3, 4, 5), 17);
/// ```
#[inline]
pub const fn madd57lu(x: u64, y: u64, z: u64) -> u64 {
    ((x as u128).wrapping_mul(y as u128) as u64 & REDUCED_RADIX_MASK).wrapping_add(z)
}

/// `madd57hu rd, rs1, rs2, rs3` — reduced-radix fused multiply-add,
/// bits 120…57 of the product (Figure 2).
///
/// ```text
/// m ← (1 << 64) − 1
/// r ← (((rs1 × rs2) >> 57) & m) + rs3
/// ```
///
/// The high part keeps all 64 result bits ("the product is usually
/// larger than 2·57 bits, especially when the carry-propagation is
/// delayed").
///
/// # Examples
///
/// ```
/// use mpise_core::intrinsics::{madd57hu, madd57lu};
/// let (x, y) = ((1u64 << 57) - 1, (1u64 << 57) - 1);
/// // Low + (high << 57) reassembles the product:
/// let p = (x as u128) * (y as u128);
/// let lo = madd57lu(x, y, 0) as u128;
/// let hi = madd57hu(x, y, 0) as u128;
/// assert_eq!(p, (hi << 57) | lo);
/// ```
#[inline]
pub const fn madd57hu(x: u64, y: u64, z: u64) -> u64 {
    ((((x as u128).wrapping_mul(y as u128)) >> REDUCED_RADIX_BITS) as u64).wrapping_add(z)
}

/// `sraiadd rd, rs1, rs2, imm` — fused arithmetic-shift-right and add
/// (Figure 3).
///
/// ```text
/// r ← rs1 + EXTS(rs2 >> imm)
/// ```
///
/// Implements the final one-time carry propagation of a reduced-radix
/// value in one instruction instead of `srai` + `add`, and breaks the
/// dependency chain of the propagation (§3.2).
///
/// # Examples
///
/// ```
/// use mpise_core::intrinsics::sraiadd;
/// // Propagate the carry of a 57-bit limb into the next limb:
/// let limb = (3u64 << 57) | 5; // value 5 with delayed carry 3
/// assert_eq!(sraiadd(100, limb, 57), 103);
/// // Arithmetic shift: negative limbs propagate a negative carry.
/// let neg = -1i64 as u64;
/// assert_eq!(sraiadd(100, neg, 57), 99);
/// ```
#[inline]
pub const fn sraiadd(x: u64, y: u64, imm: u32) -> u64 {
    x.wrapping_add(((y as i64) >> (imm & 63)) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maddlu_maddhu_reassemble_the_full_sum() {
        let cases = [
            (0u64, 0u64, 0u64),
            (1, 1, 1),
            (u64::MAX, u64::MAX, u64::MAX),
            (0x1234_5678_9abc_def0, 0xfedc_ba98_7654_3210, 42),
            (1 << 63, 2, 0),
        ];
        for (x, y, z) in cases {
            let full = (x as u128) * (y as u128) + z as u128;
            let lo = maddlu(x, y, z) as u128;
            let hi = maddhu(x, y, z) as u128;
            assert_eq!(full, (hi << 64) | lo, "x={x:#x} y={y:#x} z={z:#x}");
        }
    }

    #[test]
    fn maddhu_absorbs_low_half_carry() {
        // x*y low half = 2^64-1, adding z=1 carries into the high half.
        let x = u64::MAX;
        let y = 1;
        assert_eq!(maddhu(x, y, 1), 1);
        assert_eq!(maddlu(x, y, 1), 0);
    }

    #[test]
    fn cadd_is_carry_plus_addend() {
        assert_eq!(cadd(0, 0, 0), 0);
        assert_eq!(cadd(u64::MAX, u64::MAX, 0), 1);
        assert_eq!(cadd(u64::MAX, 1, u64::MAX), 0); // wraps
    }

    #[test]
    fn madd57_pair_reassembles_product() {
        let cases = [
            (0u64, 0u64),
            ((1 << 57) - 1, (1 << 57) - 1),
            // limbs exceeding 57 bits (delayed carries) still work:
            ((1 << 60) - 3, (1 << 59) + 12345),
            (u64::MAX, u64::MAX),
        ];
        for (x, y) in cases {
            let p = (x as u128).wrapping_mul(y as u128);
            let lo = madd57lu(x, y, 0) as u128;
            let hi = madd57hu(x, y, 0) as u128;
            // hi keeps only 64 bits of p >> 57; for x=y=2^64-1 the
            // product is < 2^128, p>>57 < 2^71 — compare modulo 2^64.
            assert_eq!(lo, p & ((1 << 57) - 1));
            assert_eq!(hi, (p >> 57) & ((1 << 64) - 1));
        }
    }

    #[test]
    fn madd57_addend_can_overflow_57_bits() {
        // The addend is a full 64-bit register value: delayed carries.
        let z = (1u64 << 62) + 7;
        assert_eq!(madd57lu(0, 0, z), z);
        assert_eq!(madd57hu(0, 0, z), z);
    }

    #[test]
    fn sraiadd_matches_srai_plus_add() {
        let vals = [0u64, 1, 5 << 57, u64::MAX, (1 << 63) | 12345];
        for &x in &vals {
            for &y in &vals {
                for imm in [0u32, 1, 57, 63] {
                    let expect = x.wrapping_add(((y as i64) >> imm) as u64);
                    assert_eq!(sraiadd(x, y, imm), expect);
                }
            }
        }
    }

    #[test]
    fn full_radix_mac_listing3_equals_listing1() {
        // The ISE-supported MAC (Listing 3) must compute the same
        // (e||h||l) += a*b as the ISA-only MAC (Listing 1).
        let cases = [
            (1u64, 2u64, 3u64, 4u64, 5u64),
            (u64::MAX, u64::MAX, u64::MAX, u64::MAX, u64::MAX),
            (0xdead_beef, 0xcafe_f00d, 1, 2, 3),
        ];
        for (a, b, e0, h0, l0) in cases {
            // Reference: 192-bit accumulator arithmetic.
            let acc = (e0 as u128) << 64 | h0 as u128;
            let wide = (a as u128) * (b as u128);
            let l_ref = (l0 as u128 + (wide & u64::MAX as u128)) as u64;
            let carry_l = (l0 as u128 + (wide & u64::MAX as u128)) >> 64;
            // The 192-bit accumulator wraps modulo 2^192; the e||h part
            // therefore wraps modulo 2^128.
            let hi_ref = acc.wrapping_add(wide >> 64).wrapping_add(carry_l);
            let (h_ref, e_ref) = (hi_ref as u64, (hi_ref >> 64) as u64);

            // Listing 3: maddhu z,a,b,l ; maddlu l,a,b,l ;
            //            cadd e,h,z,e ; add h,h,z
            let z = maddhu(a, b, l0);
            let l = maddlu(a, b, l0);
            let e = cadd(h0, z, e0);
            let h = h0.wrapping_add(z);
            assert_eq!(l, l_ref);
            assert_eq!(h, h_ref);
            assert_eq!(e, e_ref);
        }
    }

    #[test]
    fn reduced_radix_mac_listing4_equals_listing2() {
        // (h||l) += a*b in the "57-bit aligned" sense of §3.2:
        // l += (a*b)[56..0], h += (a*b)[120..57].
        let cases = [
            (1u64, 2u64, 3u64, 4u64),
            ((1 << 57) - 1, (1 << 57) - 1, 99, 7),
            ((1 << 60) + 5, (1 << 58) + 9, 1 << 62, 1 << 61),
        ];
        for (a, b, h0, l0) in cases {
            let p = (a as u128) * (b as u128);
            let l_ref = l0.wrapping_add((p as u64) & REDUCED_RADIX_MASK);
            let h_ref = h0.wrapping_add((p >> 57) as u64);
            assert_eq!(madd57lu(a, b, l0), l_ref);
            assert_eq!(madd57hu(a, b, h0), h_ref);
        }
    }
}
