//! # mpise-core — the paper's instruction-set extensions
//!
//! This crate implements the primary contribution of "RISC-V Instruction
//! Set Extensions for Multi-Precision Integer Arithmetic: A Case Study on
//! Post-Quantum Key Exchange Using CSIDH-512" (DAC 2024): two alternative
//! sets of custom instructions that accelerate the Multiply-and-ACcumulate
//! (MAC) inner loop and the carry propagation of multi-precision integer
//! arithmetic.
//!
//! | Functionality        | full-radix ISE     | reduced-radix ISE        |
//! |----------------------|--------------------|--------------------------|
//! | Integer multiply-add | `maddlu`, `maddhu` | `madd57lu`, `madd57hu`   |
//! | Carry propagation    | `cadd`             | `sraiadd`                |
//!
//! (Table 1 of the paper.)
//!
//! Each instruction exists in three coupled forms, all defined here:
//!
//! 1. **Intrinsics** ([`intrinsics`]): pure-Rust functions with the exact
//!    architectural semantics, usable by host-speed software backends.
//! 2. **Simulator definitions** ([`full_radix`], [`reduced_radix`]):
//!    [`mpise_sim::ext::CustomInstDef`]s with the binary encodings of
//!    Figures 1–3, pluggable into a [`mpise_sim::Machine`].
//! 3. **Datapath model** ([`xmul`]): a functional model of the unified
//!    XMUL execution unit of §3.3, demonstrating that all six
//!    instructions (plus the base `mul`/`mulhu`) share one 64×64
//!    multiplier, one wide adder and one shift/mask network. The
//!    structural hardware-cost model in `mpise-hw` is derived from the
//!    same decomposition.
//!
//! The [`related`] module provides executable reference models of the
//! pre-existing ARM and AVX-512 fused multiply-add instructions the
//! paper compares against (Table 2), and [`guidelines`] checks an
//! extension against the ISE design principles of §3.2.

pub mod full_radix;
pub mod guidelines;
pub mod intrinsics;
pub mod reduced_radix;
pub mod related;
pub mod xmul;

pub use full_radix::full_radix_ext;
pub use reduced_radix::reduced_radix_ext;

/// The limb width (bits) of the reduced-radix representation used by the
/// paper's CSIDH-512 implementation: radix 2^57, nine limbs for a
/// 511-bit prime.
pub const REDUCED_RADIX_BITS: u32 = 57;

/// Mask selecting one reduced-radix limb: `2^57 - 1`.
pub const REDUCED_RADIX_MASK: u64 = (1u64 << REDUCED_RADIX_BITS) - 1;
