//! The reduced-radix ISE: `madd57lu`, `madd57hu`, `sraiadd`
//! (Figures 2 and 3).
//!
//! `madd57lu`/`madd57hu` share the custom-3 opcode of the full-radix set
//! (funct2 = `10`/`11`); `sraiadd` uses the custom-1 opcode `0b0101011`
//! with a 6-bit shift amount embedded at bits 30:25 and bit 31 fixed
//! to 1.
//!
//! The paper's two ISE sets are *alternatives* (a deployment implements
//! one representation), so `madd57lu` reusing `cadd`'s encoding point is
//! intentional — see `tests::encoding_overlap_with_full_radix_is_by_design`.

use crate::intrinsics;
use mpise_sim::ext::{CustomArgs, CustomFormat, CustomId, CustomInstDef, ExecUnit, IsaExtension};

/// Major opcode of `sraiadd` (RISC-V custom-1 space).
pub const CUSTOM1_OPCODE: u8 = 0b0101011;

/// Stable id of `madd57lu`.
pub const MADD57LU: CustomId = CustomId(4);
/// Stable id of `madd57hu`.
pub const MADD57HU: CustomId = CustomId(5);
/// Stable id of `sraiadd`.
pub const SRAIADD: CustomId = CustomId(6);

fn exec_madd57lu(a: CustomArgs) -> u64 {
    intrinsics::madd57lu(a.rs1, a.rs2, a.rs3)
}

fn exec_madd57hu(a: CustomArgs) -> u64 {
    intrinsics::madd57hu(a.rs1, a.rs2, a.rs3)
}

fn exec_sraiadd(a: CustomArgs) -> u64 {
    intrinsics::sraiadd(a.rs1, a.rs2, a.imm as u32)
}

/// Builds the reduced-radix ISE as a pluggable extension.
///
/// The MACs execute on XMUL; `sraiadd` is a shift-and-add and executes
/// on the XMUL unit as well (§3.3 routes all custom instructions
/// through the extended multiplier).
///
/// # Examples
///
/// ```
/// use mpise_core::reduced_radix_ext;
/// use mpise_sim::Machine;
/// let m = Machine::with_ext(reduced_radix_ext());
/// assert!(m.ext().by_mnemonic("sraiadd").is_some());
/// ```
pub fn reduced_radix_ext() -> IsaExtension {
    let mut e = IsaExtension::new("Xmpimacred");
    let defs = [
        CustomInstDef {
            id: MADD57LU,
            mnemonic: "madd57lu",
            format: CustomFormat::R4 {
                opcode: crate::full_radix::CUSTOM3_OPCODE,
                funct3: crate::full_radix::ISE_FUNCT3,
                funct2: 0b10,
            },
            exec: exec_madd57lu,
            unit: ExecUnit::Xmul,
        },
        CustomInstDef {
            id: MADD57HU,
            mnemonic: "madd57hu",
            format: CustomFormat::R4 {
                opcode: crate::full_radix::CUSTOM3_OPCODE,
                funct3: crate::full_radix::ISE_FUNCT3,
                funct2: 0b11,
            },
            exec: exec_madd57hu,
            unit: ExecUnit::Xmul,
        },
        CustomInstDef {
            id: SRAIADD,
            mnemonic: "sraiadd",
            format: CustomFormat::RShamt {
                opcode: CUSTOM1_OPCODE,
                funct3: crate::full_radix::ISE_FUNCT3,
                bit31: true,
            },
            exec: exec_sraiadd,
            unit: ExecUnit::Xmul,
        },
    ];
    for d in defs {
        e.define(d)
            .expect("reduced-radix ISE definitions are conflict-free");
    }
    e
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpise_sim::encode::encode;
    use mpise_sim::inst::Inst;
    use mpise_sim::{Assembler, Machine, Reg};

    #[test]
    fn encodings_match_figure_2_and_3() {
        let ext = reduced_radix_ext();
        for (id, f2) in [(MADD57LU, 0b10u32), (MADD57HU, 0b11)] {
            let i = Inst::Custom {
                id,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
                rs3: Reg::A3,
                imm: 0,
            };
            let raw = encode(&i, &ext).unwrap();
            assert_eq!(raw & 0x7f, 0b1111011);
            assert_eq!((raw >> 25) & 0x3, f2);
        }
        // sraiadd t0, t1, t2, 57
        let i = Inst::Custom {
            id: SRAIADD,
            rd: Reg::T0,
            rs1: Reg::T1,
            rs2: Reg::T2,
            rs3: Reg::Zero,
            imm: 57,
        };
        let raw = encode(&i, &ext).unwrap();
        assert_eq!(raw & 0x7f, 0b0101011);
        assert_eq!(raw >> 31, 1);
        assert_eq!((raw >> 25) & 0x3f, 57);
    }

    #[test]
    fn decode_round_trip() {
        let ext = reduced_radix_ext();
        for (id, imm) in [(MADD57LU, 0u8), (MADD57HU, 0), (SRAIADD, 41)] {
            let rs3 = if id == SRAIADD { Reg::Zero } else { Reg::S11 };
            let i = Inst::Custom {
                id,
                rd: Reg::T4,
                rs1: Reg::A6,
                rs2: Reg::A7,
                rs3,
                imm,
            };
            let raw = encode(&i, &ext).unwrap();
            assert_eq!(mpise_sim::decode::decode(raw, &ext).unwrap(), i);
        }
    }

    #[test]
    fn executes_on_machine() {
        let ext = reduced_radix_ext();
        let mut a = Assembler::new();
        a.custom_r4(MADD57LU, Reg::A0, Reg::A1, Reg::A2, Reg::A3);
        a.custom_r4(MADD57HU, Reg::A4, Reg::A1, Reg::A2, Reg::A3);
        a.custom_shamt(SRAIADD, Reg::A5, Reg::A3, Reg::A1, 57);
        a.ebreak();
        let mut m = Machine::with_ext(ext);
        m.load_program(&a.finish());
        let x = (1u64 << 57) - 1;
        let y = (1u64 << 57) - 2;
        m.cpu.write_reg(Reg::A1, x);
        m.cpu.write_reg(Reg::A2, y);
        m.cpu.write_reg(Reg::A3, 7);
        m.run().unwrap();
        let p = (x as u128) * (y as u128);
        assert_eq!(m.cpu.read_reg(Reg::A0), ((p as u64) & ((1 << 57) - 1)) + 7);
        assert_eq!(m.cpu.read_reg(Reg::A4), ((p >> 57) as u64) + 7);
        assert_eq!(m.cpu.read_reg(Reg::A5), 7 + (x >> 57)); // x >= 0
    }

    #[test]
    fn carry_propagation_sequence_matches_isa_only() {
        // ISA-only: srai z, x, 57; add y, y, z; and x, x, m
        // ISE:      sraiadd y, y, x, 57; and x, x, m
        let mask = (1u64 << 57) - 1;
        for (x, y) in [(0u64, 0u64), ((5 << 57) | 123, 77), (u64::MAX, 1)] {
            let z = ((x as i64) >> 57) as u64;
            let y_isa = y.wrapping_add(z);
            let y_ise = crate::intrinsics::sraiadd(y, x, 57);
            assert_eq!(y_isa, y_ise);
            let _ = x & mask; // both variants mask x identically
        }
    }

    #[test]
    fn encoding_overlap_with_full_radix_is_by_design() {
        use crate::full_radix::{full_radix_ext, CADD};
        // madd57lu and cadd deliberately share funct2=10 on custom-3:
        // the two ISE sets are mutually exclusive deployments.
        let red = reduced_radix_ext();
        let full = full_radix_ext();
        let i_red = Inst::Custom {
            id: MADD57LU,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
            rs3: Reg::A3,
            imm: 0,
        };
        let i_full = Inst::Custom {
            id: CADD,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
            rs3: Reg::A3,
            imm: 0,
        };
        assert_eq!(
            encode(&i_red, &red).unwrap(),
            encode(&i_full, &full).unwrap()
        );
        // Consequently the two sets cannot be merged into one machine.
        let mut both = full_radix_ext();
        assert!(both.merge(&reduced_radix_ext()).is_err());
    }
}
