//! Executable reference models of existing integer fused multiply-add
//! instructions (Table 2 of the paper), and the MSA2 formalization.
//!
//! The paper analyses the ARM and Intel AVX-512IFMA instructions along
//! three axes — computation (the Multiply-Shift-And-Add paradigm),
//! instruction encoding, and supported radix. This module makes that
//! analysis executable: each instruction is modelled bit-exactly, the
//! MSA2 general form `rd ← (((rs1 × rs2) ≫ j) & m) + rs3` is a struct
//! that can be instantiated per instruction, and the classification
//! table used to regenerate Table 2 lives in [`TABLE2`].

use std::fmt;

/// ARM `mla rd, rs1, rs2, rs3`: low-half multiply-accumulate.
///
/// `rd ← lo(rs1 × rs2) + rs3`, modulo the register width.
///
/// # Examples
///
/// ```
/// use mpise_core::related::arm_mla;
/// assert_eq!(arm_mla(3, 4, 5), 17);
/// ```
pub fn arm_mla(rs1: u64, rs2: u64, rs3: u64) -> u64 {
    rs1.wrapping_mul(rs2).wrapping_add(rs3)
}

/// ARM `umlal rdLo, rdHi, rs1, rs2`: widening multiply-accumulate.
///
/// `(rd2 ‖ rd1) ← rs1 × rs2 + (rd2 ‖ rd1)` on 32-bit source registers,
/// accumulating into a 64-bit destination pair. Returns `(lo, hi)`.
pub fn arm_umlal(rs1: u32, rs2: u32, rd1: u32, rd2: u32) -> (u32, u32) {
    let acc = ((rd2 as u64) << 32) | rd1 as u64;
    let r = (rs1 as u64).wrapping_mul(rs2 as u64).wrapping_add(acc);
    (r as u32, (r >> 32) as u32)
}

/// ARM `umaal rdLo, rdHi, rs1, rs2`: multiply with double accumulate.
///
/// `(rd2 ‖ rd1) ← rs1 × rs2 + rd2 + rd1` — the "two additions" the
/// paper notes cannot be expressed in MSA2 form. Never overflows:
/// `(2^32−1)^2 + 2·(2^32−1) = 2^64 − 1`.
pub fn arm_umaal(rs1: u32, rs2: u32, rd1: u32, rd2: u32) -> (u32, u32) {
    let r = (rs1 as u64) * (rs2 as u64) + rd1 as u64 + rd2 as u64;
    (r as u32, (r >> 32) as u32)
}

/// AVX-512IFMA `vpmadd52luq` (one 64-bit lane).
///
/// `rd ← lo52(rs1 × rs2) + rs3`, where the multiplier sees only the low
/// 52 bits of each source — the saturation hazard §3.2 discusses.
pub fn avx512_vpmadd52luq(rs1: u64, rs2: u64, rs3: u64) -> u64 {
    let m = (1u64 << 52) - 1;
    let p = ((rs1 & m) as u128) * ((rs2 & m) as u128);
    ((p as u64) & m).wrapping_add(rs3)
}

/// AVX-512IFMA `vpmadd52huq` (one 64-bit lane).
///
/// `rd ← hi52(rs1 × rs2) + rs3` with the same 52-bit multiplier inputs.
pub fn avx512_vpmadd52huq(rs1: u64, rs2: u64, rs3: u64) -> u64 {
    let m = (1u64 << 52) - 1;
    let p = ((rs1 & m) as u128) * ((rs2 & m) as u128);
    (((p >> 52) as u64) & m).wrapping_add(rs3)
}

/// The Multiply-Shift-And-Add general form of §3.2:
/// `rd ← (((rs1 × rs2) ≫ j) & m) + rs3`.
///
/// # Examples
///
/// `madd57hu` is MSA2 with `j = 57`, `m = 2^64 − 1`:
///
/// ```
/// use mpise_core::related::Msa2;
/// use mpise_core::intrinsics::madd57hu;
/// let f = Msa2 { j: 57, m: u64::MAX };
/// let (x, y, z) = (123 << 50, 456 << 40, 99);
/// assert_eq!(f.eval(x, y, z), madd57hu(x, y, z));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msa2 {
    /// Shift offset `j` (bits).
    pub j: u32,
    /// Mask `m`.
    pub m: u64,
}

impl Msa2 {
    /// Evaluates the general form.
    pub fn eval(&self, rs1: u64, rs2: u64, rs3: u64) -> u64 {
        let p = (rs1 as u128).wrapping_mul(rs2 as u128);
        (((p >> self.j) as u64) & self.m).wrapping_add(rs3)
    }
}

/// Which MPI radix representation an instruction supports (Table 2's
/// last column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RadixSupport {
    /// Full-radix only.
    Full,
    /// Reduced-radix only.
    Reduced,
    /// Both representations.
    Both,
}

impl fmt::Display for RadixSupport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadixSupport::Full => write!(f, "F"),
            RadixSupport::Reduced => write!(f, "R"),
            RadixSupport::Both => write!(f, "F + R"),
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy)]
pub struct Table2Row {
    /// Instruction mnemonic.
    pub instruction: &'static str,
    /// Owning ISA/ISE.
    pub isa: &'static str,
    /// Computation, as printed in the paper.
    pub computation: &'static str,
    /// Radix support classification.
    pub radix: RadixSupport,
    /// Whether the computation fits the MSA2 paradigm.
    pub msa2: bool,
    /// Number of source register addresses in the encoding.
    pub source_regs: u8,
}

/// The rows of Table 2, in paper order.
pub const TABLE2: [Table2Row; 5] = [
    Table2Row {
        instruction: "mla",
        isa: "ARM",
        computation: "rd <- lo(rs1 x rs2) + rs3",
        radix: RadixSupport::Both,
        msa2: true,
        source_regs: 3,
    },
    Table2Row {
        instruction: "umlal",
        isa: "ARM",
        computation: "(rd2 || rd1) <- (rs1 x rs2) + (rd2 || rd1)",
        radix: RadixSupport::Both,
        msa2: true,
        source_regs: 4,
    },
    Table2Row {
        instruction: "umaal",
        isa: "ARM",
        computation: "(rd2 || rd1) <- (rs1 x rs2) + rd2 + rd1",
        radix: RadixSupport::Both,
        msa2: false, // two additions: not expressible in MSA2
        source_regs: 4,
    },
    Table2Row {
        instruction: "vpmadd52luq",
        isa: "AVX-512",
        computation: "rd <- lo52(rs1 x rs2) + rs3",
        radix: RadixSupport::Reduced,
        msa2: true,
        source_regs: 3,
    },
    Table2Row {
        instruction: "vpmadd52huq",
        isa: "AVX-512",
        computation: "rd <- hi52(rs1 x rs2) + rs3",
        radix: RadixSupport::Reduced,
        msa2: true,
        source_regs: 3,
    },
];

/// Demonstrates the multiplier-saturation problem of AVX-512IFMA that
/// motivated the paper's full-width multiplier (§3.2): returns `true`
/// when `vpmadd52luq` on the given limbs would silently compute a wrong
/// product because an input exceeds 52 bits.
pub fn ifma_saturates(limb_a: u64, limb_b: u64) -> bool {
    limb_a >> 52 != 0 || limb_b >> 52 != 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intrinsics;

    #[test]
    fn mla_is_msa2_with_j0() {
        let f = Msa2 { j: 0, m: u64::MAX };
        for (x, y, z) in [(3u64, 4u64, 5u64), (u64::MAX, 2, 7)] {
            assert_eq!(f.eval(x, y, z), arm_mla(x, y, z));
        }
    }

    #[test]
    fn umaal_never_overflows() {
        let m = u32::MAX;
        let (lo, hi) = arm_umaal(m, m, m, m);
        // (2^32-1)^2 + 2(2^32-1) = 2^64 - 1
        assert_eq!(((hi as u64) << 32) | lo as u64, u64::MAX);
    }

    #[test]
    fn umlal_accumulates_wide() {
        let (lo, hi) = arm_umlal(0x8000_0000, 2, 1, 0);
        assert_eq!(((hi as u64) << 32) | lo as u64, 0x1_0000_0001);
    }

    #[test]
    fn vpmadd52_pair_reassembles_products_of_52bit_limbs() {
        let a = (1u64 << 52) - 3;
        let b = (1u64 << 51) + 12345;
        let p = (a as u128) * (b as u128);
        let lo = avx512_vpmadd52luq(a, b, 0) as u128;
        let hi = avx512_vpmadd52huq(a, b, 0) as u128;
        assert_eq!(p, (hi << 52) | lo);
    }

    #[test]
    fn saturation_problem_is_real_for_ifma_but_not_for_madd57() {
        // A limb grown past 52 bits by a delayed carry:
        let fat = (1u64 << 53) + 7;
        let b = 12345u64;
        assert!(ifma_saturates(fat, b));
        // IFMA computes the wrong high product (the bits above 52 that
        // the saturated multiplier never sees):
        let wrong = avx512_vpmadd52huq(fat, b, 0);
        let right = (((fat as u128 * b as u128) >> 52) as u64) & ((1 << 52) - 1);
        assert_ne!(wrong, right);
        // The paper's madd57lu uses a full 64-bit multiplier: exact even
        // for limbs past 57 bits.
        let fat57 = (1u64 << 59) + 7;
        let got = intrinsics::madd57lu(fat57, b, 0);
        let expect = ((fat57 as u128 * b as u128) as u64) & ((1 << 57) - 1);
        assert_eq!(got, expect);
    }

    #[test]
    fn paper_instructions_fit_msa2_where_claimed() {
        // madd57lu: j=0, m=2^57-1, then +z. (§3.2 designs the
        // reduced-radix MACs "in MSA2 style".)
        let f = Msa2 {
            j: 0,
            m: (1 << 57) - 1,
        };
        let (x, y, z) = ((1u64 << 60) + 5, (1u64 << 58) + 9, 42u64);
        assert_eq!(f.eval(x, y, z), intrinsics::madd57lu(x, y, z));
        let g = Msa2 { j: 57, m: u64::MAX };
        assert_eq!(g.eval(x, y, z), intrinsics::madd57hu(x, y, z));
    }

    #[test]
    fn maddhu_is_not_plain_msa2() {
        // maddhu adds z BEFORE the shift (Multiply-Add-Shift-And), so
        // the MSA2 form with post-add must differ on carrying inputs.
        let f = Msa2 { j: 64, m: u64::MAX };
        let (x, y) = (u64::MAX, 1u64);
        let z = 2u64; // lo(x*y) + z carries; carry (1) != z (2)
        assert_ne!(
            f.eval(x, y, z),
            intrinsics::maddhu(x, y, z),
            "carry absorption distinguishes maddhu from MSA2"
        );
    }

    #[test]
    fn table2_is_consistent() {
        assert_eq!(TABLE2.len(), 5);
        // umaal is the only non-MSA2 row, as stated in §3.2.
        let non_msa2: Vec<_> = TABLE2.iter().filter(|r| !r.msa2).collect();
        assert_eq!(non_msa2.len(), 1);
        assert_eq!(non_msa2[0].instruction, "umaal");
        // All rows use at least three source register addresses.
        assert!(TABLE2.iter().all(|r| r.source_regs >= 3));
        // The IFMA rows are reduced-radix only.
        for r in TABLE2.iter().filter(|r| r.isa == "AVX-512") {
            assert_eq!(r.radix, RadixSupport::Reduced);
        }
    }
}
