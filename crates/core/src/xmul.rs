//! Functional model of the XMUL execution unit (§3.3).
//!
//! The paper extends the Rocket core's pipelined multiplier into an
//! "eXtended MULtiplier" that executes the base multiply instructions
//! *and* all six custom instructions, each in one cycle, on a shared
//! datapath. This module models that datapath explicitly:
//!
//! ```text
//!        x ──┬──────────────► 64×64 multiplier ─► P (128 bits)
//!        y ──┤                     │ (or bypass: P = x / EXTS(y))
//!            │                     ▼
//!   pre-add ─┴──────────────► 128-bit adder
//!                                  │
//!                                  ▼
//!                        shifter (0 / 57 / 64 / imm)
//!                                  │
//!                                  ▼
//!                      mask network (2^57−1 / 2^64−1)
//!                                  │
//!                                  ▼
//!  post-add ────────────────► 64-bit adder ─► rd
//! ```
//!
//! Every supported operation is a choice of control signals
//! ([`Control`]) on this one structure; [`Xmul::execute`] evaluates it.
//! The hardware cost model in `mpise-hw` prices exactly these blocks,
//! so this module is the executable specification tying the ISA-level
//! semantics to the synthesized-area experiment (Table 3).

/// Operations the XMUL unit executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XmulOp {
    /// Base-ISA `mul`.
    Mul,
    /// Base-ISA `mulh`.
    Mulh,
    /// Base-ISA `mulhsu`.
    Mulhsu,
    /// Base-ISA `mulhu`.
    Mulhu,
    /// Full-radix ISE `maddlu`.
    Maddlu,
    /// Full-radix ISE `maddhu`.
    Maddhu,
    /// Full-radix ISE `cadd`.
    Cadd,
    /// Reduced-radix ISE `madd57lu`.
    Madd57lu,
    /// Reduced-radix ISE `madd57hu`.
    Madd57hu,
    /// Reduced-radix ISE `sraiadd`.
    Sraiadd,
}

impl XmulOp {
    /// All operations of the base multiplier.
    pub const BASE: [XmulOp; 4] = [XmulOp::Mul, XmulOp::Mulh, XmulOp::Mulhsu, XmulOp::Mulhu];
    /// Operations added by the full-radix ISE.
    pub const FULL_RADIX: [XmulOp; 3] = [XmulOp::Maddlu, XmulOp::Maddhu, XmulOp::Cadd];
    /// Operations added by the reduced-radix ISE.
    pub const REDUCED_RADIX: [XmulOp; 3] = [XmulOp::Madd57lu, XmulOp::Madd57hu, XmulOp::Sraiadd];
}

/// Source selected onto the 128-bit main path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MainPath {
    /// The 64×64 product of `x` and `y` (sign treatment per op).
    Product {
        /// Treat `x` as signed.
        x_signed: bool,
        /// Treat `y` as signed.
        y_signed: bool,
    },
    /// Multiplier bypass: `x` zero-extended (used by `cadd`).
    XZext,
    /// Multiplier bypass: `y` sign-extended (used by `sraiadd`).
    YSext,
}

/// Addend applied on the 128-bit adder, before the shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreAdd {
    /// No pre-shift addend.
    Zero,
    /// The third operand `z` (full-radix MACs fold the accumulator in
    /// before the shift so the carry is absorbed — §3.2).
    Z,
    /// The second operand `y` (used by `cadd`'s carry computation).
    Y,
}

/// Shift applied after the wide add (arithmetic on the 128-bit value).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shift {
    /// No shift.
    None,
    /// Right shift by 57 (one reduced-radix limb).
    By57,
    /// Right shift by 64 (one full-radix digit).
    By64,
    /// Right shift by the instruction's 6-bit immediate.
    ByImm,
}

/// Mask applied after the shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mask {
    /// Keep the low 57 bits (`2^57 − 1`).
    Low57,
    /// Keep the low 64 bits (`2^64 − 1`, i.e. plain truncation).
    Low64,
}

/// Addend applied on the final 64-bit adder, after shift and mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostAdd {
    /// No post addend.
    Zero,
    /// The third operand `z` (reduced-radix MACs and `cadd`).
    Z,
    /// The first operand `x` (`sraiadd`).
    X,
}

/// The full control word of the datapath for one operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Control {
    /// What drives the 128-bit main path.
    pub main: MainPath,
    /// Pre-shift addend selection.
    pub pre_add: PreAdd,
    /// Shift selection.
    pub shift: Shift,
    /// Mask selection.
    pub mask: Mask,
    /// Post-shift addend selection.
    pub post_add: PostAdd,
}

/// Decodes an [`XmulOp`] into its datapath control word — the software
/// twin of the decoder modifications described in §3.3.
pub fn control(op: XmulOp) -> Control {
    use XmulOp::*;
    match op {
        Mul => Control {
            main: MainPath::Product {
                x_signed: false,
                y_signed: false,
            },
            pre_add: PreAdd::Zero,
            shift: Shift::None,
            mask: Mask::Low64,
            post_add: PostAdd::Zero,
        },
        Mulh => Control {
            main: MainPath::Product {
                x_signed: true,
                y_signed: true,
            },
            pre_add: PreAdd::Zero,
            shift: Shift::By64,
            mask: Mask::Low64,
            post_add: PostAdd::Zero,
        },
        Mulhsu => Control {
            main: MainPath::Product {
                x_signed: true,
                y_signed: false,
            },
            pre_add: PreAdd::Zero,
            shift: Shift::By64,
            mask: Mask::Low64,
            post_add: PostAdd::Zero,
        },
        Mulhu => Control {
            main: MainPath::Product {
                x_signed: false,
                y_signed: false,
            },
            pre_add: PreAdd::Zero,
            shift: Shift::By64,
            mask: Mask::Low64,
            post_add: PostAdd::Zero,
        },
        Maddlu => Control {
            main: MainPath::Product {
                x_signed: false,
                y_signed: false,
            },
            pre_add: PreAdd::Z,
            shift: Shift::None,
            mask: Mask::Low64,
            post_add: PostAdd::Zero,
        },
        Maddhu => Control {
            main: MainPath::Product {
                x_signed: false,
                y_signed: false,
            },
            pre_add: PreAdd::Z,
            shift: Shift::By64,
            mask: Mask::Low64,
            post_add: PostAdd::Zero,
        },
        Cadd => Control {
            main: MainPath::XZext,
            pre_add: PreAdd::Y,
            shift: Shift::By64,
            mask: Mask::Low64,
            post_add: PostAdd::Z,
        },
        Madd57lu => Control {
            main: MainPath::Product {
                x_signed: false,
                y_signed: false,
            },
            pre_add: PreAdd::Zero,
            shift: Shift::None,
            mask: Mask::Low57,
            post_add: PostAdd::Z,
        },
        Madd57hu => Control {
            main: MainPath::Product {
                x_signed: false,
                y_signed: false,
            },
            pre_add: PreAdd::Zero,
            shift: Shift::By57,
            mask: Mask::Low64,
            post_add: PostAdd::Z,
        },
        Sraiadd => Control {
            main: MainPath::YSext,
            pre_add: PreAdd::Zero,
            shift: Shift::ByImm,
            mask: Mask::Low64,
            post_add: PostAdd::X,
        },
    }
}

/// The XMUL unit: evaluates operations on the shared datapath.
///
/// # Examples
///
/// ```
/// use mpise_core::xmul::{Xmul, XmulOp};
/// let u = Xmul::new();
/// assert_eq!(u.execute(XmulOp::Mulhu, u64::MAX, u64::MAX, 0, 0), u64::MAX - 1);
/// assert_eq!(u.execute(XmulOp::Maddlu, 3, 4, 5, 0), 17);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Xmul;

impl Xmul {
    /// Creates the unit.
    pub fn new() -> Self {
        Xmul
    }

    /// Evaluates `op` on operands `x`, `y`, `z` and 6-bit immediate
    /// `imm` by walking the datapath stages.
    pub fn execute(&self, op: XmulOp, x: u64, y: u64, z: u64, imm: u8) -> u64 {
        let c = control(op);
        // Main path (128 bits, interpreted as signed for the shifts).
        let main: i128 = match c.main {
            MainPath::Product { x_signed, y_signed } => {
                let xv: i128 = if x_signed {
                    x as i64 as i128
                } else {
                    x as i128
                };
                let yv: i128 = if y_signed {
                    y as i64 as i128
                } else {
                    y as i128
                };
                xv.wrapping_mul(yv)
            }
            MainPath::XZext => x as i128,
            MainPath::YSext => y as i64 as i128,
        };
        // 128-bit adder.
        let pre: i128 = match c.pre_add {
            PreAdd::Zero => 0,
            PreAdd::Z => z as i128,
            PreAdd::Y => y as i128,
        };
        let summed = main.wrapping_add(pre);
        // Shifter (arithmetic; only the sraiadd path ever sees a
        // negative value here).
        let shifted = match c.shift {
            Shift::None => summed,
            Shift::By57 => summed >> 57,
            Shift::By64 => summed >> 64,
            Shift::ByImm => summed >> (imm & 63),
        };
        // Mask network.
        let masked = match c.mask {
            Mask::Low57 => (shifted as u64) & crate::REDUCED_RADIX_MASK,
            Mask::Low64 => shifted as u64,
        };
        // Final 64-bit adder.
        let post = match c.post_add {
            PostAdd::Zero => 0,
            PostAdd::Z => z,
            PostAdd::X => x,
        };
        masked.wrapping_add(post)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intrinsics;
    use mpise_sim::cpu::eval_alu;
    use mpise_sim::inst::AluOp;

    const CASES: [(u64, u64, u64, u8); 8] = [
        (0, 0, 0, 0),
        (1, 1, 1, 1),
        (u64::MAX, u64::MAX, u64::MAX, 57),
        (0x1234_5678_9abc_def0, 0xfedc_ba98_7654_3210, 42, 63),
        (1 << 63, 3, 7, 12),
        ((1 << 57) - 1, (1 << 57) + 5, 1 << 60, 57),
        (0xdead_beef, 0xcafe_f00d, 0x1111_2222_3333_4444, 31),
        (u64::MAX, 1, 1, 64 - 1),
    ];

    #[test]
    fn base_ops_match_rv64m_semantics() {
        let u = Xmul::new();
        for &(x, y, _, _) in &CASES {
            assert_eq!(
                u.execute(XmulOp::Mul, x, y, 0, 0),
                eval_alu(AluOp::Mul, x, y)
            );
            assert_eq!(
                u.execute(XmulOp::Mulh, x, y, 0, 0),
                eval_alu(AluOp::Mulh, x, y)
            );
            assert_eq!(
                u.execute(XmulOp::Mulhsu, x, y, 0, 0),
                eval_alu(AluOp::Mulhsu, x, y)
            );
            assert_eq!(
                u.execute(XmulOp::Mulhu, x, y, 0, 0),
                eval_alu(AluOp::Mulhu, x, y)
            );
        }
    }

    #[test]
    fn custom_ops_match_intrinsics() {
        let u = Xmul::new();
        for &(x, y, z, imm) in &CASES {
            assert_eq!(
                u.execute(XmulOp::Maddlu, x, y, z, 0),
                intrinsics::maddlu(x, y, z)
            );
            assert_eq!(
                u.execute(XmulOp::Maddhu, x, y, z, 0),
                intrinsics::maddhu(x, y, z)
            );
            assert_eq!(
                u.execute(XmulOp::Cadd, x, y, z, 0),
                intrinsics::cadd(x, y, z)
            );
            assert_eq!(
                u.execute(XmulOp::Madd57lu, x, y, z, 0),
                intrinsics::madd57lu(x, y, z)
            );
            assert_eq!(
                u.execute(XmulOp::Madd57hu, x, y, z, 0),
                intrinsics::madd57hu(x, y, z)
            );
            assert_eq!(
                u.execute(XmulOp::Sraiadd, x, y, 0, imm),
                intrinsics::sraiadd(x, y, imm as u32)
            );
        }
    }

    #[test]
    fn mulh_signed_corner() {
        let u = Xmul::new();
        let min = i64::MIN as u64;
        assert_eq!(u.execute(XmulOp::Mulh, min, min, 0, 0), (1u64 << 62));
    }

    #[test]
    fn op_groups_are_disjoint_and_complete() {
        let mut all: Vec<XmulOp> = Vec::new();
        all.extend(XmulOp::BASE);
        all.extend(XmulOp::FULL_RADIX);
        all.extend(XmulOp::REDUCED_RADIX);
        assert_eq!(all.len(), 10);
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
