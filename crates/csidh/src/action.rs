//! The CSIDH class group action, key exchange and validation.
//!
//! This is the original (Castryck–Lange–Martindale–Panny–Renes)
//! variable-time evaluation strategy, as in the authors' reference
//! software: sample a random x-coordinate, decide by a Legendre symbol
//! whether it lies on the curve or its twist, clear the cofactor, and
//! walk one ℓᵢ-isogeny per still-pending exponent of the matching
//! sign. The *field arithmetic* underneath is constant-time (§4); the
//! group action itself is randomized, exactly like the paper's
//! measured workload.

use crate::isogeny::isogeny;
use crate::mont::{is_infinity, normalize, rhs, xmul, Curve, Point};
use crate::scalar;
use mpise_fp::params::{Csidh512, NUM_PRIMES, PRIMES};
use mpise_fp::Fp;
use mpise_mpi::U512;
use rand::Rng;

/// The CSIDH-512 exponent bound: private exponents lie in `[-5, 5]`.
pub const EXPONENT_BOUND: i8 = 5;

/// A CSIDH-512 private key: one small exponent per prime `ℓᵢ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrivateKey {
    /// Exponents `eᵢ ∈ [-bound, bound]`.
    pub exponents: [i8; NUM_PRIMES],
}

/// A CSIDH-512 public key: the affine Montgomery coefficient `A` of a
/// supersingular curve (64 bytes — "extremely short keys", §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicKey {
    /// The canonical coefficient in `[0, p − 1]`.
    pub a: U512,
}

impl PublicKey {
    /// The starting curve `E₀ : y² = x³ + x`.
    pub const BASE: PublicKey = PublicKey { a: U512::ZERO };

    /// Serializes to the 64-byte little-endian wire format.
    pub fn to_bytes(&self) -> [u8; 64] {
        self.a.to_le_bytes().try_into().expect("64 bytes")
    }

    /// Parses the 64-byte wire format.
    ///
    /// # Errors
    ///
    /// Returns a message when the value is not a canonical residue.
    pub fn from_bytes(bytes: &[u8; 64]) -> Result<Self, String> {
        let a = U512::from_le_bytes(bytes)?;
        if a >= Csidh512::get().p {
            return Err("public key is not a canonical residue".to_owned());
        }
        Ok(PublicKey { a })
    }
}

impl PrivateKey {
    /// Samples a private key with exponents uniform in
    /// `[-EXPONENT_BOUND, EXPONENT_BOUND]`.
    pub fn random<R: Rng>(rng: &mut R) -> Self {
        Self::random_with_bound(rng, EXPONENT_BOUND)
    }

    /// Samples with a custom bound (small bounds make tests fast).
    pub fn random_with_bound<R: Rng>(rng: &mut R, bound: i8) -> Self {
        PrivateKey {
            exponents: std::array::from_fn(|_| rng.gen_range(-bound..=bound)),
        }
    }

    /// Derives the public key: the action of this ideal class on `E₀`.
    pub fn public_key<F: Fp, R: Rng>(&self, f: &F, rng: &mut R) -> PublicKey {
        group_action(f, rng, &PublicKey::BASE, self)
    }

    /// Derives the shared secret with a peer's public key.
    pub fn shared_secret<F: Fp, R: Rng>(
        &self,
        f: &F,
        rng: &mut R,
        their_public: &PublicKey,
    ) -> PublicKey {
        group_action(f, rng, their_public, self)
    }
}

/// A key pair.
#[derive(Debug, Clone, Copy)]
pub struct CsidhKeypair {
    /// The secret exponent vector.
    pub private: PrivateKey,
    /// The corresponding curve.
    pub public: PublicKey,
}

impl CsidhKeypair {
    /// Generates a CSIDH-512 key pair.
    pub fn generate<F: Fp, R: Rng>(f: &F, rng: &mut R) -> Self {
        let private = PrivateKey::random(rng);
        let public = private.public_key(f, rng);
        CsidhKeypair { private, public }
    }

    /// Generates with a custom exponent bound (for fast tests).
    pub fn generate_with_bound<F: Fp, R: Rng>(f: &F, rng: &mut R, bound: i8) -> Self {
        let private = PrivateKey::random_with_bound(rng, bound);
        let public = private.public_key(f, rng);
        CsidhKeypair { private, public }
    }
}

/// Samples a uniform field element (rejection from 512-bit strings).
pub(crate) fn random_fp<F: Fp, R: Rng>(f: &F, rng: &mut R) -> F::Elem {
    let p = &Csidh512::get().p;
    loop {
        let cand = U512::from_limbs(std::array::from_fn(|_| rng.gen())).and(&U512::MAX.shr(1));
        if cand < *p {
            return f.from_uint(&cand);
        }
    }
}

/// Evaluates the class group action `[𝔩₁^{e₁}⋯𝔩₇₄^{e₇₄}] ⋆ E_A`.
///
/// This is the operation whose cycle count dominates CSIDH (Table 4's
/// last row). The evaluation strategy matches the reference software:
/// per round, one random point serves every still-pending prime whose
/// exponent sign matches the point's curve/twist side.
pub fn group_action<F: Fp, R: Rng>(
    f: &F,
    rng: &mut R,
    start: &PublicKey,
    key: &PrivateKey,
) -> PublicKey {
    let _span = mpise_obs::span("csidh.action");
    let mut e = key.exponents;
    let mut curve = Curve::from_affine(f, f.from_uint(&start.a));

    while e.iter().any(|&x| x != 0) {
        // Sample a point and learn its side (curve vs. twist).
        let (x, sign, todo) = {
            let _s = mpise_obs::span("csidh.sample");
            let x = random_fp(f, rng);
            let r = rhs(f, &curve, &x);
            let s = f.legendre(&r);
            if s == 0 {
                continue;
            }
            let sign: i8 = if s == 1 { 1 } else { -1 };
            let todo: Vec<usize> = (0..NUM_PRIMES)
                .filter(|&i| (e[i] > 0 && sign == 1) || (e[i] < 0 && sign == -1))
                .collect();
            if todo.is_empty() {
                continue;
            }
            (x, sign, todo)
        };

        // Clear the cofactor: P has order dividing ∏_{i∈todo} ℓᵢ.
        let mut point = {
            let _s = mpise_obs::span("csidh.cofactor");
            let clear = scalar::four_times_product((0..NUM_PRIMES).filter(|i| !todo.contains(i)));
            let point = xmul(f, &curve, &Point { x, z: f.one() }, &clear);
            if is_infinity(f, &point) {
                continue;
            }
            point
        };

        // One ℓᵢ-isogeny per selected prime, largest first (walking the
        // big primes early keeps the remaining cofactor ladders short).
        {
            let _s = mpise_obs::span("csidh.isogeny");
            let mut remaining = todo.clone();
            for idx in (0..todo.len()).rev() {
                let i = todo[idx];
                let cof = scalar::product(remaining.iter().copied().filter(|&j| j != i));
                let kernel = xmul(f, &curve, &point, &cof);
                if !is_infinity(f, &kernel) {
                    let (new_curve, new_point) = isogeny(f, &curve, &point, &kernel, PRIMES[i]);
                    curve = new_curve;
                    point = new_point;
                    e[i] -= sign;
                }
                remaining.retain(|&j| j != i);
                if is_infinity(f, &point) {
                    break;
                }
            }
        }

        // Normalize to affine A (one inversion per round, as in the
        // reference code) so the next round's Legendre test is direct.
        let _s = mpise_obs::span("csidh.normalize");
        let a_affine = normalize(f, &curve);
        curve = Curve::from_affine(f, a_affine);
    }

    PublicKey {
        a: f.to_uint(&curve.a),
    }
}

/// Verifies that a public key is a supersingular Montgomery curve
/// (§2's implicit requirement; the reference software ships the same
/// check).
///
/// Finds a point of provably large order dividing `p + 1`: if a point
/// of order `d > 4√p` with `d | p + 1` exists, the group order is
/// exactly `p + 1` (Hasse), hence the curve is supersingular.
pub fn validate<F: Fp, R: Rng>(f: &F, rng: &mut R, key: &PublicKey) -> bool {
    let _span = mpise_obs::span("csidh.validate");
    let c = Csidh512::get();
    if key.a >= c.p {
        return false;
    }
    // A = ±2 gives a singular curve.
    let two = U512::from_u64(2);
    if key.a == two || key.a == c.p.wrapping_sub(&two) {
        return false;
    }
    let curve = Curve::from_affine(f, f.from_uint(&key.a));

    for _attempt in 0..3 {
        let x = random_fp(f, rng);
        let pt = Point { x, z: f.one() };
        // Clear the factor 4 once.
        let q4 = xmul(f, &curve, &pt, &U512::from_u64(4));
        if is_infinity(f, &q4) {
            continue;
        }
        // Accumulate proven order d.
        let mut order_bits = 2u32; // the factor 4 may or may not be present; be conservative: 1
        let mut proven = U512::ONE;
        for i in 0..NUM_PRIMES {
            let cof = scalar::product((0..NUM_PRIMES).filter(|&j| j != i));
            let q = xmul(f, &curve, &q4, &cof);
            if !is_infinity(f, &q) {
                // q must have order exactly ℓᵢ if the curve is
                // supersingular; otherwise the structure is wrong.
                if !is_infinity(f, &xmul(f, &curve, &q, &U512::from_u64(PRIMES[i]))) {
                    return false;
                }
                proven = scalar::mul_u64(&proven, PRIMES[i]);
                order_bits = proven.bit_length();
                // d > 4√p once d ≥ 2^259 (p < 2^511 ⇒ 4√p < 2^257.5).
                if order_bits >= 259 {
                    return true;
                }
            }
        }
        let _ = order_bits;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpise_fp::{CountingFp, FpFull, FpRed};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_action_is_identity() {
        let f = FpFull::new();
        let mut rng = StdRng::seed_from_u64(1);
        let key = PrivateKey {
            exponents: [0; NUM_PRIMES],
        };
        let out = group_action(&f, &mut rng, &PublicKey::BASE, &key);
        assert_eq!(out, PublicKey::BASE);
    }

    fn sparse_key(pairs: &[(usize, i8)]) -> PrivateKey {
        let mut exponents = [0i8; NUM_PRIMES];
        for &(i, e) in pairs {
            exponents[i] = e;
        }
        PrivateKey { exponents }
    }

    #[test]
    fn action_and_inverse_cancel() {
        let f = FpFull::new();
        let mut rng = StdRng::seed_from_u64(2);
        let key = sparse_key(&[(0, 1), (3, -2), (73, 1)]);
        let inv = PrivateKey {
            exponents: std::array::from_fn(|i| -key.exponents[i]),
        };
        let mid = group_action(&f, &mut rng, &PublicKey::BASE, &key);
        assert_ne!(mid, PublicKey::BASE);
        let back = group_action(&f, &mut rng, &mid, &inv);
        assert_eq!(back, PublicKey::BASE);
    }

    #[test]
    fn action_is_commutative() {
        let f = FpFull::new();
        let mut rng = StdRng::seed_from_u64(3);
        let k1 = sparse_key(&[(1, 1), (10, -1)]);
        let k2 = sparse_key(&[(5, -1), (20, 1)]);
        let e1 = group_action(&f, &mut rng, &PublicKey::BASE, &k1);
        let a12 = group_action(&f, &mut rng, &e1, &k2);
        let e2 = group_action(&f, &mut rng, &PublicKey::BASE, &k2);
        let a21 = group_action(&f, &mut rng, &e2, &k1);
        assert_eq!(a12, a21, "group action must be commutative");
    }

    #[test]
    fn action_is_deterministic_in_the_key() {
        // Different randomness, same key => same curve.
        let f = FpFull::new();
        let key = sparse_key(&[(2, 2), (30, -1)]);
        let mut rng1 = StdRng::seed_from_u64(100);
        let mut rng2 = StdRng::seed_from_u64(200);
        let a = group_action(&f, &mut rng1, &PublicKey::BASE, &key);
        let b = group_action(&f, &mut rng2, &PublicKey::BASE, &key);
        assert_eq!(a, b);
    }

    #[test]
    fn backends_agree_on_the_action() {
        let key = sparse_key(&[(0, -1), (40, 1), (73, -1)]);
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let a_full = group_action(&FpFull::new(), &mut rng1, &PublicKey::BASE, &key);
        let a_red = group_action(&FpRed::new(), &mut rng2, &PublicKey::BASE, &key);
        assert_eq!(a_full, a_red);
    }

    #[test]
    fn key_exchange_small_bound() {
        let f = FpFull::new();
        let mut rng = StdRng::seed_from_u64(11);
        let alice = CsidhKeypair::generate_with_bound(&f, &mut rng, 1);
        let bob = CsidhKeypair::generate_with_bound(&f, &mut rng, 1);
        let s1 = alice.private.shared_secret(&f, &mut rng, &bob.public);
        let s2 = bob.private.shared_secret(&f, &mut rng, &alice.public);
        assert_eq!(s1, s2);
        assert_ne!(alice.public, bob.public);
    }

    #[test]
    fn validate_accepts_base_and_derived_curves() {
        let f = FpFull::new();
        let mut rng = StdRng::seed_from_u64(13);
        assert!(validate(&f, &mut rng, &PublicKey::BASE));
        let key = sparse_key(&[(0, 1), (7, -1)]);
        let pk = group_action(&f, &mut rng, &PublicKey::BASE, &key);
        assert!(validate(&f, &mut rng, &pk));
    }

    #[test]
    fn validate_rejects_garbage() {
        let f = FpFull::new();
        let mut rng = StdRng::seed_from_u64(17);
        // A = 1 is an ordinary (or at least non-CSIDH) curve with
        // overwhelming probability; the order test must fail.
        let bogus = PublicKey { a: U512::ONE };
        assert!(!validate(&f, &mut rng, &bogus));
        // Singular curves rejected outright.
        assert!(!validate(
            &f,
            &mut rng,
            &PublicKey {
                a: U512::from_u64(2)
            }
        ));
        // Non-canonical rejected.
        assert!(!validate(
            &f,
            &mut rng,
            &PublicKey {
                a: Csidh512::get().p
            }
        ));
    }

    #[test]
    fn public_key_bytes_round_trip() {
        let pk = PublicKey {
            a: U512::from_u64(0x1234_5678),
        };
        let b = pk.to_bytes();
        assert_eq!(PublicKey::from_bytes(&b).unwrap(), pk);
        let bad = [0xffu8; 64];
        assert!(PublicKey::from_bytes(&bad).is_err());
    }

    #[test]
    fn action_emits_phase_spans() {
        mpise_obs::set_enabled(true);
        let _ = mpise_obs::take_spans(); // drop anything stale on this thread
        let f = FpFull::new();
        let mut rng = StdRng::seed_from_u64(31);
        let key = sparse_key(&[(0, 1), (5, -1)]);
        let _ = group_action(&f, &mut rng, &PublicKey::BASE, &key);
        mpise_obs::set_enabled(false);
        let tree = mpise_obs::take_spans();
        let action = tree.child("csidh.action").expect("action span recorded");
        for phase in [
            "csidh.sample",
            "csidh.cofactor",
            "csidh.isogeny",
            "csidh.normalize",
        ] {
            assert!(action.child(phase).is_some(), "missing phase span {phase}");
        }
    }

    #[test]
    fn op_counts_scale_with_exponents() {
        let f = CountingFp::new(FpFull::new());
        let mut rng = StdRng::seed_from_u64(23);
        let small = sparse_key(&[(0, 1)]);
        let _ = group_action(&f, &mut rng, &PublicKey::BASE, &small);
        let c_small = f.counts().total();
        f.reset();
        let big = sparse_key(&[(0, 1), (10, 2), (20, -2), (73, 1)]);
        let _ = group_action(&f, &mut rng, &PublicKey::BASE, &big);
        let c_big = f.counts().total();
        assert!(c_big > c_small, "{c_big} <= {c_small}");
    }
}
