//! Lane-parallel Montgomery-ladder kernels over independent requests.
//!
//! A key-exchange service validating many public keys runs the *same
//! public scalar sequence* (`4`, the 74 cofactors `(p+1)/4ℓᵢ`, the
//! primes `ℓᵢ`) over per-request curves and points. Because the
//! scalars are shared, every lane takes the same branch in every
//! ladder step, so independent requests can execute in lockstep on
//! the [`FpBatch`] structure-of-arrays kernels — the lane-parallel
//! batching the engine's worker pool uses for
//! `ValidatePublicKey` traffic.
//!
//! Two layers:
//!
//! * [`xmul_many`] — `[k]Pᵢ` on curve `Eᵢ` for every lane `i`, one
//!   shared scalar `k`, mirroring [`crate::mont::xmul`] exactly
//!   (results are bit-identical per lane);
//! * [`validate_many`] — the supersingularity check of
//!   [`crate::action::validate`] over a batch of keys, with per-lane
//!   deterministic randomness and per-lane early exit (decided lanes
//!   are compacted out so the remaining lanes keep full batch width).

use crate::action::{random_fp, PublicKey};
use crate::mont::{Curve, Point};
use crate::scalar;
use mpise_fp::params::{Csidh512, NUM_PRIMES, PRIMES};
use mpise_fp::FpBatch;
use mpise_mpi::U512;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scratch buffers shared by the batched ladder steps (allocated once
/// per [`xmul_many`] call, reused across all ladder iterations).
struct Scratch<E> {
    t0: Vec<E>,
    t1: Vec<E>,
    t2: Vec<E>,
    t3: Vec<E>,
    t4: Vec<E>,
    t5: Vec<E>,
}

impl<E: Copy> Scratch<E> {
    fn new(fill: E, n: usize) -> Self {
        Scratch {
            t0: vec![fill; n],
            t1: vec![fill; n],
            t2: vec![fill; n],
            t3: vec![fill; n],
            t4: vec![fill; n],
            t5: vec![fill; n],
        }
    }
}

/// Batched `xDBL`: `(ox, oz) = [2](px, pz)` per lane (4M + 2S per
/// lane, amortised over the batch).
#[allow(clippy::too_many_arguments)]
fn xdbl_n<F: FpBatch>(
    f: &F,
    px: &[F::Elem],
    pz: &[F::Elem],
    a24_plus: &[F::Elem],
    c24: &[F::Elem],
    s: &mut Scratch<F::Elem>,
    ox: &mut [F::Elem],
    oz: &mut [F::Elem],
) {
    f.sub_n(px, pz, &mut s.t0);
    f.add_n(px, pz, &mut s.t1);
    f.sqr_n(&s.t0, &mut s.t2);
    f.sqr_n(&s.t1, &mut s.t3);
    f.mul_n(c24, &s.t2, oz);
    f.mul_n(oz, &s.t3, ox);
    f.sub_n(&s.t3, &s.t2, &mut s.t1);
    f.mul_n(a24_plus, &s.t1, &mut s.t0);
    f.add_n(oz, &s.t0, &mut s.t2);
    f.mul_n(&s.t2, &s.t1, oz);
}

/// Batched `xADD`: `(ox, oz) = P + Q` given `P − Q` per lane.
#[allow(clippy::too_many_arguments)]
fn xadd_n<F: FpBatch>(
    f: &F,
    px: &[F::Elem],
    pz: &[F::Elem],
    qx: &[F::Elem],
    qz: &[F::Elem],
    diffx: &[F::Elem],
    diffz: &[F::Elem],
    s: &mut Scratch<F::Elem>,
    ox: &mut [F::Elem],
    oz: &mut [F::Elem],
) {
    f.add_n(px, pz, &mut s.t0);
    f.sub_n(px, pz, &mut s.t1);
    f.add_n(qx, qz, &mut s.t2);
    f.sub_n(qx, qz, &mut s.t3);
    f.mul_n(&s.t0, &s.t3, &mut s.t4);
    f.mul_n(&s.t1, &s.t2, &mut s.t5);
    f.add_n(&s.t4, &s.t5, &mut s.t0);
    f.sub_n(&s.t4, &s.t5, &mut s.t1);
    f.sqr_n(&s.t0, &mut s.t2);
    f.sqr_n(&s.t1, &mut s.t3);
    f.mul_n(diffz, &s.t2, ox);
    f.mul_n(diffx, &s.t3, oz);
}

/// Lane-parallel Montgomery ladder: `[k]Pᵢ` on curve `Eᵢ` for each
/// lane, with one **shared public scalar** `k`.
///
/// Sharing the scalar is what makes lockstep execution possible: the
/// per-bit branch of the ladder is identical across lanes, so every
/// step is two batched curve operations. Per lane the result is
/// bit-identical to [`crate::mont::xmul`] with the same inputs.
///
/// # Panics
///
/// Panics when `curves.len() != points.len()`.
pub fn xmul_many<F: FpBatch>(
    f: &F,
    curves: &[Curve<F::Elem>],
    points: &[Point<F::Elem>],
    k: &U512,
) -> Vec<Point<F::Elem>> {
    assert_eq!(curves.len(), points.len(), "one curve per lane");
    let n = curves.len();
    if n == 0 {
        return Vec::new();
    }
    let bits = k.bit_length();
    if bits == 0 {
        return (0..n)
            .map(|_| Point {
                x: f.one(),
                z: f.zero(),
            })
            .collect();
    }

    // Per-lane doubling constants (A + 2C : 4C), batched.
    let ca: Vec<F::Elem> = curves.iter().map(|e| e.a).collect();
    let cc: Vec<F::Elem> = curves.iter().map(|e| e.c).collect();
    let mut c2 = vec![f.zero(); n];
    let mut a24_plus = vec![f.zero(); n];
    let mut c24 = vec![f.zero(); n];
    f.add_n(&cc, &cc, &mut c2);
    f.add_n(&ca, &c2, &mut a24_plus);
    f.add_n(&c2, &c2, &mut c24);

    let px: Vec<F::Elem> = points.iter().map(|p| p.x).collect();
    let pz: Vec<F::Elem> = points.iter().map(|p| p.z).collect();
    let mut s = Scratch::new(f.zero(), n);

    // (r0, r1) = (P, [2]P), invariant r1 − r0 = P.
    let mut r0x = px.clone();
    let mut r0z = pz.clone();
    let mut r1x = vec![f.zero(); n];
    let mut r1z = vec![f.zero(); n];
    xdbl_n(f, &px, &pz, &a24_plus, &c24, &mut s, &mut r1x, &mut r1z);

    let mut nax = vec![f.zero(); n];
    let mut naz = vec![f.zero(); n];
    let mut ndx = vec![f.zero(); n];
    let mut ndz = vec![f.zero(); n];
    for i in (0..bits as usize - 1).rev() {
        if k.bit(i) == 1 {
            xadd_n(
                f, &r1x, &r1z, &r0x, &r0z, &px, &pz, &mut s, &mut nax, &mut naz,
            );
            xdbl_n(f, &r1x, &r1z, &a24_plus, &c24, &mut s, &mut ndx, &mut ndz);
            std::mem::swap(&mut r0x, &mut nax);
            std::mem::swap(&mut r0z, &mut naz);
            std::mem::swap(&mut r1x, &mut ndx);
            std::mem::swap(&mut r1z, &mut ndz);
        } else {
            xadd_n(
                f, &r0x, &r0z, &r1x, &r1z, &px, &pz, &mut s, &mut nax, &mut naz,
            );
            xdbl_n(f, &r0x, &r0z, &a24_plus, &c24, &mut s, &mut ndx, &mut ndz);
            std::mem::swap(&mut r1x, &mut nax);
            std::mem::swap(&mut r1z, &mut naz);
            std::mem::swap(&mut r0x, &mut ndx);
            std::mem::swap(&mut r0z, &mut ndz);
        }
    }

    (0..n)
        .map(|i| Point {
            x: r0x[i],
            z: r0z[i],
        })
        .collect()
}

/// Lane-parallel public-key validation: the supersingularity check of
/// [`crate::action::validate`] over a batch of independent keys.
///
/// `seeds[i]` seeds lane `i`'s point sampling, so a request's verdict
/// never depends on which other requests happened to share its batch
/// (the engine's determinism guarantee). Decided lanes are compacted
/// out after every prime, so early-exiting lanes stop paying for the
/// remaining ladder work exactly as in the scalar path.
///
/// # Panics
///
/// Panics when `keys.len() != seeds.len()`.
pub fn validate_many<F: FpBatch>(f: &F, keys: &[PublicKey], seeds: &[u64]) -> Vec<bool> {
    let _span = mpise_obs::span("csidh.batch.validate");
    assert_eq!(keys.len(), seeds.len(), "one seed per key");
    let c = Csidh512::get();
    let two = U512::from_u64(2);
    let n = keys.len();

    let mut decided: Vec<Option<bool>> = vec![None; n];
    let mut curves: Vec<Option<Curve<F::Elem>>> = Vec::with_capacity(n);
    let mut rngs: Vec<StdRng> = seeds.iter().map(|&s| StdRng::seed_from_u64(s)).collect();
    for (i, key) in keys.iter().enumerate() {
        // Non-canonical and singular (A = ±2) curves are rejected
        // before any field arithmetic, as in the scalar path.
        if key.a >= c.p || key.a == two || key.a == c.p.wrapping_sub(&two) {
            decided[i] = Some(false);
            curves.push(None);
        } else {
            curves.push(Some(Curve::from_affine(f, f.from_uint(&key.a))));
        }
    }

    for _attempt in 0..3 {
        let pending: Vec<usize> = (0..n).filter(|&i| decided[i].is_none()).collect();
        if pending.is_empty() {
            break;
        }

        // Sample one point per pending lane and clear the factor 4.
        let cvs: Vec<Curve<F::Elem>> = pending.iter().map(|&i| curves[i].expect("lane")).collect();
        let pts: Vec<Point<F::Elem>> = pending
            .iter()
            .map(|&i| Point {
                x: random_fp(f, &mut rngs[i]),
                z: f.one(),
            })
            .collect();
        let q4 = xmul_many(f, &cvs, &pts, &U512::from_u64(4));

        // Lanes whose point died in the 4-torsion retry next attempt.
        let mut lanes: Vec<usize> = Vec::new();
        let mut qpts: Vec<Point<F::Elem>> = Vec::new();
        let mut proven: Vec<U512> = Vec::new();
        for (pos, &i) in pending.iter().enumerate() {
            if !f.is_zero(&q4[pos].z) {
                lanes.push(i);
                qpts.push(q4[pos]);
                proven.push(U512::ONE);
            }
        }

        for pi in 0..NUM_PRIMES {
            if lanes.is_empty() {
                break;
            }
            let cof = scalar::product((0..NUM_PRIMES).filter(|&j| j != pi));
            let cvs: Vec<Curve<F::Elem>> =
                lanes.iter().map(|&i| curves[i].expect("lane")).collect();
            let q = xmul_many(f, &cvs, &qpts, &cof);

            // Lanes whose q is finite must see it die under [ℓᵢ].
            let tor: Vec<usize> = (0..lanes.len()).filter(|&p| !f.is_zero(&q[p].z)).collect();
            if !tor.is_empty() {
                let tcvs: Vec<Curve<F::Elem>> = tor
                    .iter()
                    .map(|&p| curves[lanes[p]].expect("lane"))
                    .collect();
                let tq: Vec<Point<F::Elem>> = tor.iter().map(|&p| q[p]).collect();
                let r = xmul_many(f, &tcvs, &tq, &U512::from_u64(PRIMES[pi]));
                for (tpos, &p) in tor.iter().enumerate() {
                    if !f.is_zero(&r[tpos].z) {
                        // Order not dividing p + 1: not supersingular.
                        decided[lanes[p]] = Some(false);
                    } else {
                        proven[p] = scalar::mul_u64(&proven[p], PRIMES[pi]);
                        // d > 4√p once d ≥ 2^259 (p < 2^511).
                        if proven[p].bit_length() >= 259 {
                            decided[lanes[p]] = Some(true);
                        }
                    }
                }
            }

            // Compact decided lanes out so survivors keep batch width.
            let mut w = 0;
            for rpos in 0..lanes.len() {
                if decided[lanes[rpos]].is_none() {
                    lanes[w] = lanes[rpos];
                    qpts[w] = qpts[rpos];
                    proven[w] = proven[rpos];
                    w += 1;
                }
            }
            lanes.truncate(w);
            qpts.truncate(w);
            proven.truncate(w);
        }
    }

    decided.into_iter().map(|d| d.unwrap_or(false)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{group_action, validate, PrivateKey};
    use crate::mont::xmul;
    use mpise_fp::{Fp, FpFull, FpRed, ScalarFallback};

    #[allow(clippy::type_complexity)]
    fn lane_setup<F: Fp>(f: &F, n: usize) -> (Vec<Curve<F::Elem>>, Vec<Point<F::Elem>>) {
        let curves: Vec<Curve<F::Elem>> = (0..n)
            .map(|i| Curve::from_affine(f, f.from_uint(&U512::from_u64(10 + i as u64))))
            .collect();
        let points: Vec<Point<F::Elem>> = (0..n)
            .map(|i| Point {
                x: f.from_uint(&U512::from_u64(3 + 7 * i as u64)),
                z: f.one(),
            })
            .collect();
        (curves, points)
    }

    fn check_xmul_many<F: FpBatch>(f: &F) {
        for n in [1usize, 2, 5] {
            let (curves, points) = lane_setup(f, n);
            for k in [
                U512::ZERO,
                U512::ONE,
                U512::from_u64(4),
                U512::from_u64(0xdead_beef),
            ] {
                let batched = xmul_many(f, &curves, &points, &k);
                for i in 0..n {
                    let scalar = xmul(f, &curves[i], &points[i], &k);
                    assert_eq!(
                        f.to_uint(&batched[i].x),
                        f.to_uint(&scalar.x),
                        "lane {i} x, k={k:?}"
                    );
                    assert_eq!(
                        f.to_uint(&batched[i].z),
                        f.to_uint(&scalar.z),
                        "lane {i} z, k={k:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_ladder_is_bit_identical_to_scalar_full() {
        check_xmul_many(&FpFull::new());
    }

    #[test]
    fn batched_ladder_is_bit_identical_to_scalar_red() {
        check_xmul_many(&FpRed::new());
    }

    #[test]
    fn batched_ladder_matches_on_fallback_path() {
        check_xmul_many(&ScalarFallback(FpFull::new()));
    }

    #[test]
    fn batched_validation_agrees_with_scalar() {
        let f = FpFull::new();
        let mut rng = StdRng::seed_from_u64(31);
        // One derived (valid) key, the base curve, one ordinary curve
        // (invalid), one singular and one non-canonical key.
        let mut exponents = [0i8; NUM_PRIMES];
        exponents[5] = 1;
        let derived = group_action(&f, &mut rng, &PublicKey::BASE, &PrivateKey { exponents });
        let keys = [
            derived,
            PublicKey::BASE,
            PublicKey { a: U512::ONE },
            PublicKey {
                a: U512::from_u64(2),
            },
            PublicKey {
                a: Csidh512::get().p,
            },
        ];
        let seeds = [101u64, 102, 103, 104, 105];
        let batched = validate_many(&f, &keys, &seeds);
        for (i, key) in keys.iter().enumerate() {
            let mut srng = StdRng::seed_from_u64(seeds[i]);
            assert_eq!(batched[i], validate(&f, &mut srng, key), "lane {i} verdict");
        }
        assert_eq!(batched, vec![true, true, false, false, false]);
    }

    #[test]
    fn batch_width_does_not_change_verdicts() {
        // A lane's verdict must not depend on its batch-mates: the
        // engine batches opportunistically, so the same request can
        // land in batches of any width.
        let f = FpFull::new();
        let keys = [PublicKey::BASE, PublicKey { a: U512::ONE }];
        let seeds = [7u64, 8];
        let wide = validate_many(&f, &keys, &seeds);
        let narrow: Vec<bool> = (0..keys.len())
            .map(|i| validate_many(&f, &keys[i..=i], &seeds[i..=i])[0])
            .collect();
        assert_eq!(wide, narrow);
    }

    #[test]
    fn empty_batch() {
        let f = FpFull::new();
        assert!(xmul_many(&f, &[], &[], &U512::from_u64(5)).is_empty());
        assert!(validate_many(&f, &[], &[]).is_empty());
    }
}
