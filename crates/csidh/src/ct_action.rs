//! A constant-time evaluation of the class group action
//! (dummy-isogeny style, after Meyer–Campos–Reith, "On Lions and
//! Elligators").
//!
//! The paper makes the *field arithmetic* constant time and keeps the
//! original variable-time group action (§4); a constant-time action is
//! the natural next layer of side-channel hardening and is included
//! here as an extension. The strategy:
//!
//! * private exponents are one-sided, `eᵢ ∈ [0, 2·B]` (equivalent key
//!   space to two-sided `[-B, B]`), so every step walks the same
//!   direction and only on-curve points are needed;
//! * for every prime, exactly `2·B` isogeny computations are performed:
//!   `eᵢ` real ones and `2·B − eᵢ` *dummies* whose outputs are
//!   discarded through branch-free selects ([`Fp::select`]), so the
//!   isogeny count is independent of the key;
//! * only the point-sampling retries depend on randomness (never on
//!   the key), as in all published constant-time CSIDH variants.

use crate::isogeny::isogeny;
use crate::mont::{is_infinity, normalize, rhs, xmul, Curve, Point};
use crate::scalar;
use crate::{PrivateKey, PublicKey};
use mpise_fp::params::{Csidh512, NUM_PRIMES, PRIMES};
use mpise_fp::Fp;
use mpise_mpi::ct::mask_from_bit;
use mpise_mpi::U512;
use rand::Rng;

/// A one-sided private key: exponents `eᵢ ∈ [0, 2·B]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtPrivateKey {
    /// Non-negative exponents.
    pub exponents: [u8; NUM_PRIMES],
    /// The per-prime isogeny budget (`2·B`); every prime performs
    /// exactly this many isogeny computations.
    pub budget: u8,
}

impl CtPrivateKey {
    /// Samples a key with exponents uniform in `[0, budget]`.
    pub fn random<R: Rng>(rng: &mut R, budget: u8) -> Self {
        CtPrivateKey {
            exponents: std::array::from_fn(|_| rng.gen_range(0..=budget)),
            budget,
        }
    }

    /// Converts a (non-negative) two-sided key for cross-checking
    /// against the variable-time action.
    ///
    /// # Panics
    ///
    /// Panics if any exponent is negative or exceeds `budget`.
    pub fn from_private(key: &PrivateKey, budget: u8) -> Self {
        CtPrivateKey {
            exponents: std::array::from_fn(|i| {
                let e = key.exponents[i];
                assert!(e >= 0 && (e as u8) <= budget, "exponent out of range");
                e as u8
            }),
            budget,
        }
    }
}

/// Bookkeeping of one constant-time action evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtStats {
    /// Real isogenies applied.
    pub real_isogenies: u64,
    /// Dummy isogenies computed and discarded.
    pub dummy_isogenies: u64,
    /// Kernel computations that found the point had no ℓᵢ-component
    /// (randomness-dependent retries; not key-dependent).
    pub failed_kernels: u64,
}

impl CtStats {
    /// Checks the constant-work invariant: exactly `NUM_PRIMES × budget`
    /// isogeny computations, regardless of the key.
    ///
    /// # Errors
    ///
    /// Returns a description of the discrepancy when the invariant does
    /// not hold (which would mean the action's work depends on the key).
    pub fn verify_constant_work(&self, budget: u8) -> Result<(), String> {
        let expected = NUM_PRIMES as u64 * budget as u64;
        let total = self.real_isogenies + self.dummy_isogenies;
        if total == expected {
            Ok(())
        } else {
            Err(format!(
                "isogeny work depends on the key: {} real + {} dummy = {total}, \
                 expected {expected} (NUM_PRIMES × budget)",
                self.real_isogenies, self.dummy_isogenies
            ))
        }
    }
}

/// Evaluates the group action with a key-independent isogeny count.
///
/// Returns the resulting public key plus the [`CtStats`] evidencing
/// the constant-work property:
/// `real + dummy == NUM_PRIMES × budget` always.
pub fn group_action_ct<F: Fp, R: Rng>(
    f: &F,
    rng: &mut R,
    start: &PublicKey,
    key: &CtPrivateKey,
) -> (PublicKey, CtStats) {
    let _span = mpise_obs::span("csidh.ct_action");
    let mut real: [u8; NUM_PRIMES] = key.exponents;
    let mut dummy: [u8; NUM_PRIMES] = std::array::from_fn(|i| key.budget - key.exponents[i]);
    let mut stats = CtStats::default();
    let mut curve = Curve::from_affine(f, f.from_uint(&start.a));

    while (0..NUM_PRIMES).any(|i| real[i] + dummy[i] > 0) {
        // Sample an on-curve point (one-sided keys walk one direction).
        let (x, todo) = {
            let _s = mpise_obs::span("csidh.sample");
            let x = random_fp(f, rng);
            if f.legendre(&rhs(f, &curve, &x)) != 1 {
                continue;
            }
            let todo: Vec<usize> = (0..NUM_PRIMES)
                .filter(|&i| real[i] + dummy[i] > 0)
                .collect();
            (x, todo)
        };
        let mut point = {
            let _s = mpise_obs::span("csidh.cofactor");
            let clear = scalar::four_times_product((0..NUM_PRIMES).filter(|i| !todo.contains(i)));
            let point = xmul(f, &curve, &Point { x, z: f.one() }, &clear);
            if is_infinity(f, &point) {
                continue;
            }
            point
        };

        let _iso_span = mpise_obs::span("csidh.isogeny");
        let mut remaining = todo.clone();
        for idx in (0..todo.len()).rev() {
            let i = todo[idx];
            let cof = scalar::product(remaining.iter().copied().filter(|&j| j != i));
            let kernel = xmul(f, &curve, &point, &cof);
            if is_infinity(f, &kernel) {
                stats.failed_kernels += 1;
            } else {
                // Always compute the isogeny AND the dummy path, then
                // keep one of them with a branch-free select.
                let (new_curve, pushed) = isogeny(f, &curve, &point, &kernel, PRIMES[i]);
                let multiplied = xmul(f, &curve, &point, &U512::from_u64(PRIMES[i]));
                let is_real = (real[i] > 0) as u64;
                let m = mask_from_bit(is_real);
                curve = Curve {
                    a: f.select(m, &new_curve.a, &curve.a),
                    c: f.select(m, &new_curve.c, &curve.c),
                };
                point = Point {
                    x: f.select(m, &pushed.x, &multiplied.x),
                    z: f.select(m, &pushed.z, &multiplied.z),
                };
                // Branch-free counter update.
                real[i] -= is_real as u8;
                dummy[i] -= 1 - is_real as u8;
                stats.real_isogenies += is_real;
                stats.dummy_isogenies += 1 - is_real;
            }
            remaining.retain(|&j| j != i);
            if is_infinity(f, &point) {
                break;
            }
        }

        drop(_iso_span);
        let _s = mpise_obs::span("csidh.normalize");
        let a_affine = normalize(f, &curve);
        curve = Curve::from_affine(f, a_affine);
    }

    (
        PublicKey {
            a: f.to_uint(&curve.a),
        },
        stats,
    )
}

fn random_fp<F: Fp, R: Rng>(f: &F, rng: &mut R) -> F::Elem {
    let p = &Csidh512::get().p;
    loop {
        let cand = U512::from_limbs(std::array::from_fn(|_| rng.gen())).and(&U512::MAX.shr(1));
        if cand < *p {
            return f.from_uint(&cand);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group_action;
    use mpise_fp::FpFull;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sparse(pairs: &[(usize, u8)], budget: u8) -> CtPrivateKey {
        let mut exponents = [0u8; NUM_PRIMES];
        for &(i, e) in pairs {
            exponents[i] = e;
        }
        CtPrivateKey { exponents, budget }
    }

    #[test]
    fn matches_the_variable_time_action() {
        let f = FpFull::new();
        let mut rng = StdRng::seed_from_u64(1);
        let ct_key = sparse(&[(0, 1), (10, 2), (73, 1)], 2);
        let (pk_ct, stats) = group_action_ct(&f, &mut rng, &PublicKey::BASE, &ct_key);

        let vt_key = PrivateKey {
            exponents: std::array::from_fn(|i| ct_key.exponents[i] as i8),
        };
        let pk_vt = group_action(&f, &mut rng, &PublicKey::BASE, &vt_key);
        assert_eq!(pk_ct, pk_vt);
        assert_eq!(stats.real_isogenies, 4);
    }

    #[test]
    fn isogeny_count_is_key_independent() {
        let f = FpFull::new();
        let budget = 1u8;
        let keys = [
            sparse(&[], budget),               // all dummy
            sparse(&[(5, 1), (6, 1)], budget), // two real
            CtPrivateKey {
                exponents: [1; NUM_PRIMES],
                budget,
            }, // all real
        ];
        for key in keys {
            let mut rng = StdRng::seed_from_u64(7);
            let (_, stats) = group_action_ct(&f, &mut rng, &PublicKey::BASE, &key);
            stats
                .verify_constant_work(budget)
                .expect("total isogeny work must not depend on the key");
            assert!(stats.verify_constant_work(budget + 1).is_err());
            let expected_real: u64 = key.exponents.iter().map(|&e| e as u64).sum();
            assert_eq!(stats.real_isogenies, expected_real);
        }
    }

    #[test]
    fn all_dummy_key_is_the_identity() {
        let f = FpFull::new();
        let mut rng = StdRng::seed_from_u64(9);
        let key = sparse(&[], 1);
        let (pk, stats) = group_action_ct(&f, &mut rng, &PublicKey::BASE, &key);
        assert_eq!(pk, PublicKey::BASE, "dummies must not move the curve");
        assert_eq!(stats.real_isogenies, 0);
        assert_eq!(stats.dummy_isogenies, NUM_PRIMES as u64);
    }

    #[test]
    fn ct_key_exchange() {
        let f = FpFull::new();
        let mut rng = StdRng::seed_from_u64(11);
        let ka = CtPrivateKey::random(&mut rng, 1);
        let kb = CtPrivateKey::random(&mut rng, 1);
        let (pa, _) = group_action_ct(&f, &mut rng, &PublicKey::BASE, &ka);
        let (pb, _) = group_action_ct(&f, &mut rng, &PublicKey::BASE, &kb);
        let (sa, _) = group_action_ct(&f, &mut rng, &pb, &ka);
        let (sb, _) = group_action_ct(&f, &mut rng, &pa, &kb);
        assert_eq!(sa, sb);
    }

    #[test]
    fn from_private_rejects_negatives() {
        let mut exponents = [0i8; NUM_PRIMES];
        exponents[0] = -1;
        let bad = PrivateKey { exponents };
        assert!(std::panic::catch_unwind(|| CtPrivateKey::from_private(&bad, 5)).is_err());
    }
}
