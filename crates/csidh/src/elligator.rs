//! Elligator-2 point sampling on Montgomery curves.
//!
//! The group action samples random x-coordinates and pays one Legendre
//! symbol to learn whether each lies on the curve or its twist — on
//! average half the samples are "wasted" when only one side is
//! needed. Elligator 2 (as applied to CSIDH by Meyer–Reith) instead
//! maps a field element `u` to a *pair* of x-coordinates of which
//! provably one is on the curve and the other on the twist:
//!
//! ```text
//! x₁ = −A / (1 − u²)        (projectively: X₁ = −A, Z₁ = 1 − u²)
//! x₂ = −x₁ − A              (projectively: X₂ = −A·u², Z₂ = Z₁)
//! ```
//!
//! using `z = −1` as the fixed non-square (valid because
//! `p ≡ 3 (mod 4)`). The rhs values satisfy
//! `rhs(x₁)·rhs(x₂) = rhs(x₁)·rhs(−x₁−A)`, which is `−u²·rhs(x₁)²`
//! times a square — a non-square — so exactly one of the two is a
//! square. One Legendre test yields a point on *each* side.
//!
//! Requires `A ≠ 0` and `u² ∉ {0, 1}`; the caller falls back to plain
//! sampling in those (rare) cases, as the CSIDH implementations do.

use crate::mont::{Curve, Point};
use mpise_fp::Fp;

/// The result of one Elligator-2 evaluation: an x-only point on the
/// curve and one on its quadratic twist (both with the same `Z`).
#[derive(Debug, Clone, Copy)]
pub struct ElligatorPair<E> {
    /// A point whose x-coordinate lies on `E_A`.
    pub on_curve: Point<E>,
    /// A point whose x-coordinate lies on the twist of `E_A`.
    pub on_twist: Point<E>,
}

/// Maps `u` to a curve/twist point pair on `e` (which must have
/// `C = 1`, i.e. an affine coefficient).
///
/// Returns `None` when the map is undefined: `A = 0`, `u = 0`, or
/// `u² = 1`.
pub fn elligator2<F: Fp>(f: &F, e: &Curve<F::Elem>, u: &F::Elem) -> Option<ElligatorPair<F::Elem>> {
    debug_assert!(
        f.to_uint(&e.c) == mpise_mpi::U512::ONE,
        "affine coefficient required"
    );
    if f.is_zero(&e.a) || f.is_zero(u) {
        return None;
    }
    let u2 = f.sqr(u);
    let z = f.sub(&f.one(), &u2); // 1 − u²
    if f.is_zero(&z) {
        return None;
    }
    // x₁ = −A/(1−u²): projectively X₁ = −A, Z = 1−u².
    let x1 = f.neg(&e.a);
    // x₂ = −x₁ − A = A·u²/(1−u²): projectively X₂ = −A·u² ... note
    // −x₁−A in projective form with the same Z: X₂ = −X₁ − A·Z
    //      = A − A(1−u²) = A·u².
    let x2 = f.mul(&e.a, &u2);

    // Decide which is on the curve: rhs(x)·Z⁴-squares ⇒ test the
    // projective value v = X·Z·(X² + A·X·Z + Z²).
    let v = {
        let xz = f.mul(&x1, &z);
        let t = f.add(&f.add(&f.sqr(&x1), &f.mul(&e.a, &xz)), &f.sqr(&z));
        f.mul(&xz, &t)
    };
    let x1_on_curve = f.legendre(&v) == 1;

    let p1 = Point { x: x1, z };
    let p2 = Point { x: x2, z };
    Some(if x1_on_curve {
        ElligatorPair {
            on_curve: p1,
            on_twist: p2,
        }
    } else {
        ElligatorPair {
            on_curve: p2,
            on_twist: p1,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mont::{is_infinity, rhs, xmul};
    use crate::scalar;
    use mpise_fp::{Fp, FpFull};
    use mpise_mpi::U512;

    fn affine_curve(f: &FpFull, a: u64) -> Curve<<FpFull as Fp>::Elem> {
        Curve::from_affine(f, f.from_uint(&U512::from_u64(a)))
    }

    #[test]
    fn pair_splits_curve_and_twist() {
        let f = FpFull::new();
        // A = 6 is a supersingular CSIDH curve coefficient? Not
        // necessarily — Elligator's curve/twist split works for any
        // nonsingular Montgomery curve.
        let e = affine_curve(&f, 6);
        let mut checked = 0;
        for u in 2..40u64 {
            let u = f.from_uint(&U512::from_u64(u));
            let Some(pair) = elligator2(&f, &e, &u) else {
                continue;
            };
            // on_curve has square rhs (projectively), on_twist non-square.
            let aff = |p: &Point<_>| f.mul(&p.x, &f.inv(&p.z));
            let xc = aff(&pair.on_curve);
            let xt = aff(&pair.on_twist);
            assert_eq!(f.legendre(&rhs(&f, &e, &xc)), 1, "curve side");
            assert_eq!(f.legendre(&rhs(&f, &e, &xt)), -1, "twist side");
            checked += 1;
        }
        assert!(checked > 30);
    }

    #[test]
    fn curve_points_have_curve_order() {
        // On a *supersingular* curve both sides are annihilated by
        // p+1; check for a curve produced by the group action.
        use crate::{group_action, PrivateKey, PublicKey};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let f = FpFull::new();
        let mut rng = StdRng::seed_from_u64(5);
        let mut exponents = [0i8; mpise_fp::params::NUM_PRIMES];
        exponents[0] = 1;
        let pk = group_action(&f, &mut rng, &PublicKey::BASE, &PrivateKey { exponents });
        let e = Curve::from_affine(&f, f.from_uint(&pk.a));
        let u = f.from_uint(&U512::from_u64(17));
        let pair = elligator2(&f, &e, &u).expect("A != 0 here");
        let pp1 = scalar::p_plus_one();
        assert!(is_infinity(&f, &xmul(&f, &e, &pair.on_curve, &pp1)));
        assert!(is_infinity(&f, &xmul(&f, &e, &pair.on_twist, &pp1)));
    }

    #[test]
    fn undefined_inputs_return_none() {
        let f = FpFull::new();
        let e0 = affine_curve(&f, 0);
        let u = f.from_uint(&U512::from_u64(5));
        assert!(elligator2(&f, &e0, &u).is_none(), "A = 0 unsupported");
        let e = affine_curve(&f, 6);
        assert!(elligator2(&f, &e, &f.zero()).is_none(), "u = 0 unsupported");
        assert!(elligator2(&f, &e, &f.one()).is_none(), "u² = 1 unsupported");
        assert!(
            elligator2(&f, &e, &f.neg(&f.one())).is_none(),
            "u = −1 unsupported"
        );
    }

    #[test]
    fn x2_is_minus_x1_minus_a() {
        let f = FpFull::new();
        let e = affine_curve(&f, 6);
        let u = f.from_uint(&U512::from_u64(11));
        let pair = elligator2(&f, &e, &u).unwrap();
        let aff = |p: &Point<_>| f.mul(&p.x, &f.inv(&p.z));
        let (x1, x2) = (aff(&pair.on_curve), aff(&pair.on_twist));
        // x1 + x2 == -A for the Elligator pair (in either order).
        let sum = f.add(&x1, &x2);
        assert_eq!(f.to_uint(&sum), f.to_uint(&f.neg(&e.a)));
    }
}
