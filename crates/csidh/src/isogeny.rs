//! Odd-degree Vélu isogenies in x-only Montgomery coordinates.
//!
//! The codomain coefficient is computed through the twisted-Edwards
//! form (Meyer–Reith, "A faster way to the CSIDH"), as in the CSIDH
//! reference implementation: with `a = A + 2C`, `d = A − 2C`, the
//! image curve is `a' = a^ℓ · (∏(Xᵢ+Zᵢ))⁸`, `d' = d^ℓ · (∏(Xᵢ−Zᵢ))⁸`,
//! where `(Xᵢ : Zᵢ)` are the first `(ℓ−1)/2` multiples of the kernel
//! generator, and back `A' = 2(a'+d')`, `C' = a'−d'`.

use crate::mont::{a24, xadd, xdbl, Curve, Point};
use mpise_fp::Fp;

/// Raises to a small public power by square-and-multiply.
fn pow_u64<F: Fp>(f: &F, base: &F::Elem, e: u64) -> F::Elem {
    debug_assert!(e >= 1);
    let mut acc = *base;
    let bits = 64 - e.leading_zeros();
    for i in (0..bits - 1).rev() {
        acc = f.sqr(&acc);
        if (e >> i) & 1 == 1 {
            acc = f.mul(&acc, base);
        }
    }
    acc
}

/// Computes the degree-`l` isogeny with kernel `⟨k⟩` (where `k` has
/// exact odd order `l ≥ 3` on `e`), returning the image curve and the
/// image of `p`.
///
/// # Panics
///
/// Panics (debug) if `l` is even or below 3.
pub fn isogeny<F: Fp>(
    f: &F,
    e: &Curve<F::Elem>,
    p: &Point<F::Elem>,
    k: &Point<F::Elem>,
    l: u64,
) -> (Curve<F::Elem>, Point<F::Elem>) {
    debug_assert!(l >= 3 && l % 2 == 1, "degree must be odd and >= 3");

    // Twisted-Edwards form of the domain: a = A+2C, d = A-2C.
    let c2 = f.add(&e.c, &e.c);
    let ed_a = f.add(&e.a, &c2);
    let ed_d = f.sub(&e.a, &c2);

    let p_sum = f.add(&p.x, &p.z);
    let p_dif = f.sub(&p.x, &p.z);

    // First multiple: K itself.
    let mut prod_minus = f.sub(&k.x, &k.z); // ∏ (X_i − Z_i)
    let mut prod_plus = f.add(&k.x, &k.z); // ∏ (X_i + Z_i)
    let t1 = f.mul(&prod_minus, &p_sum);
    let t0 = f.mul(&prod_plus, &p_dif);
    let mut q_x = f.add(&t0, &t1);
    let mut q_z = f.sub(&t0, &t1);

    // Remaining multiples [2]K .. [(l-1)/2]K via a differential chain.
    let half = ((l - 1) / 2) as usize;
    if half >= 2 {
        let (a24_plus, c24) = a24(f, e);
        let mut m_prev = *k; // [i-1]K
        let mut m_cur = xdbl(f, k, &a24_plus, &c24); // [i]K, starting at [2]K
        for i in 2..=half {
            let t_minus = f.sub(&m_cur.x, &m_cur.z);
            let t_plus = f.add(&m_cur.x, &m_cur.z);
            prod_minus = f.mul(&prod_minus, &t_minus);
            prod_plus = f.mul(&prod_plus, &t_plus);
            let t1 = f.mul(&t_minus, &p_sum);
            let t0 = f.mul(&t_plus, &p_dif);
            q_x = f.mul(&q_x, &f.add(&t0, &t1));
            q_z = f.mul(&q_z, &f.sub(&t0, &t1));
            if i < half {
                let next = xadd(f, &m_cur, k, &m_prev);
                m_prev = m_cur;
                m_cur = next;
            }
        }
    }

    // Image of P: (X·(∏…)² : Z·(∏…)²).
    let q_x = f.sqr(&q_x);
    let q_z = f.sqr(&q_z);
    let img = Point {
        x: f.mul(&p.x, &q_x),
        z: f.mul(&p.z, &q_z),
    };

    // Codomain via Edwards: a' = a^l·π₊⁸, d' = d^l·π₋⁸.
    let ed_a = pow_u64(f, &ed_a, l);
    let ed_d = pow_u64(f, &ed_d, l);
    let pi_plus8 = f.sqr(&f.sqr(&f.sqr(&prod_plus)));
    let pi_minus8 = f.sqr(&f.sqr(&f.sqr(&prod_minus)));
    let ed_a = f.mul(&ed_a, &pi_plus8);
    let ed_d = f.mul(&ed_d, &pi_minus8);

    // Back to Montgomery: A' = 2(a'+d'), C' = a'−d'.
    let sum = f.add(&ed_a, &ed_d);
    let image_curve = Curve {
        a: f.add(&sum, &sum),
        c: f.sub(&ed_a, &ed_d),
    };
    (image_curve, img)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mont::{is_infinity, rhs, xmul};
    use crate::scalar;
    use mpise_fp::params::PRIMES;
    use mpise_fp::{Fp, FpFull};
    use mpise_mpi::U512;

    fn find_order_l_point<F: Fp>(f: &F, e: &Curve<F::Elem>, l_index: usize) -> Point<F::Elem> {
        // [(p+1)/l] of a random on-curve point has order 1 or l; retry
        // until it is non-trivial.
        let cof = scalar::four_times_product((0..PRIMES.len()).filter(|&j| j != l_index));
        for seed in 2..100u64 {
            let x = f.from_uint(&U512::from_u64(seed));
            if f.legendre(&rhs(f, e, &x)) != 1 {
                continue;
            }
            let pt = Point { x, z: f.one() };
            let k = xmul(f, e, &pt, &cof);
            if !is_infinity(f, &k) {
                return k;
            }
        }
        panic!("no order-{} point found", PRIMES[l_index]);
    }

    #[test]
    fn kernel_point_has_exact_order() {
        let f = FpFull::new();
        let e = Curve::from_affine(&f, f.zero());
        let k = find_order_l_point(&f, &e, 0); // l = 3
        let three = xmul(&f, &e, &k, &U512::from_u64(3));
        assert!(is_infinity(&f, &three));
        assert!(!is_infinity(&f, &k));
    }

    #[test]
    fn isogeny_3_produces_supersingular_curve() {
        let f = FpFull::new();
        let e = Curve::from_affine(&f, f.zero());
        let k = find_order_l_point(&f, &e, 0);
        // Push some independent point through.
        let p = Point {
            x: f.from_uint(&U512::from_u64(12345)),
            z: f.one(),
        };
        let (e2, img) = isogeny(&f, &e, &p, &k, 3);
        assert!(!f.is_zero(&e2.c), "degenerate codomain");
        // The image point still has order dividing p+1 on the new
        // curve (supersingularity is preserved by isogenies).
        let pp1 = scalar::p_plus_one();
        let r = xmul(&f, &e2, &img, &pp1);
        assert!(is_infinity(&f, &r));
    }

    #[test]
    fn isogeny_larger_degrees() {
        let f = FpFull::new();
        let e = Curve::from_affine(&f, f.zero());
        for (idx, l) in [(1usize, 5u64), (2, 7), (73, 587)] {
            let k = find_order_l_point(&f, &e, idx);
            let p = Point {
                x: f.from_uint(&U512::from_u64(777)),
                z: f.one(),
            };
            let (e2, img) = isogeny(&f, &e, &p, &k, l);
            let pp1 = scalar::p_plus_one();
            assert!(
                is_infinity(&f, &xmul(&f, &e2, &img, &pp1)),
                "degree {l}: image not annihilated by p+1"
            );
            // The kernel must die: the image of K itself is infinity.
            let (_, k_img) = isogeny(&f, &e, &k, &k, l);
            assert!(is_infinity(&f, &k_img), "degree {l}: kernel survives");
        }
    }

    #[test]
    fn image_order_drops_by_l() {
        // If P has order l·m, its image has order m.
        let f = FpFull::new();
        let e = Curve::from_affine(&f, f.zero());
        // P of order 3·5: clear all primes but 3 and 5.
        let cof = scalar::four_times_product((0..PRIMES.len()).filter(|&j| j != 0 && j != 1));
        let mut p15 = None;
        for seed in 2..200u64 {
            let x = f.from_uint(&U512::from_u64(seed));
            if f.legendre(&rhs(&f, &e, &x)) != 1 {
                continue;
            }
            let pt = Point { x, z: f.one() };
            let q = xmul(&f, &e, &pt, &cof);
            // Order divides 15; require exactly 15.
            let q3 = xmul(&f, &e, &q, &U512::from_u64(3));
            let q5 = xmul(&f, &e, &q, &U512::from_u64(5));
            if !is_infinity(&f, &q3) && !is_infinity(&f, &q5) {
                p15 = Some(q);
                break;
            }
        }
        let p15 = p15.expect("point of order 15");
        // Kernel = [5]P (order 3).
        let k = xmul(&f, &e, &p15, &U512::from_u64(5));
        let (e2, img) = isogeny(&f, &e, &p15, &k, 3);
        // Image has order exactly 5.
        assert!(!is_infinity(&f, &img));
        let i5 = xmul(&f, &e2, &img, &U512::from_u64(5));
        assert!(is_infinity(&f, &i5));
    }

    #[test]
    fn pow_u64_small_cases() {
        let f = FpFull::new();
        let three = f.from_uint(&U512::from_u64(3));
        assert_eq!(f.to_uint(&pow_u64(&f, &three, 1)), U512::from_u64(3));
        assert_eq!(f.to_uint(&pow_u64(&f, &three, 4)), U512::from_u64(81));
        assert_eq!(f.to_uint(&pow_u64(&f, &three, 7)), U512::from_u64(2187));
    }
}
