//! # mpise-csidh — the CSIDH-512 post-quantum key exchange
//!
//! The case-study workload of the paper (§2, "Basic CSIDH facts"):
//! Commutative Supersingular Isogeny Diffie-Hellman over the prime
//! `p = 4·ℓ₁⋯ℓ₇₄ − 1`. The crate implements, generically over any
//! [`Fp`](mpise_fp::Fp) field backend:
//!
//! * x-only Montgomery curve arithmetic ([`mont`]): `xDBL`, `xADD`,
//!   the Montgomery ladder;
//! * odd-degree Vélu isogenies with the Meyer–Reith twisted-Edwards
//!   codomain computation ([`isogeny`]);
//! * the class group action, key generation, key exchange and public
//!   key validation ([`action`]);
//!
//! mirroring the structure of the authors' software: one shared
//! high-level implementation, swappable constant-time field arithmetic
//! underneath (§4, "All implementations are based on the same code for
//! the high-level computations").
//!
//! ## Example
//!
//! ```
//! use mpise_csidh::{CsidhKeypair, PrivateKey};
//! use mpise_fp::FpFull;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let f = FpFull::new();
//! let mut rng = StdRng::seed_from_u64(1);
//! // Small exponent bound keeps the doc test fast; CSIDH-512 uses 5.
//! let alice = CsidhKeypair::generate_with_bound(&f, &mut rng, 1);
//! let bob = CsidhKeypair::generate_with_bound(&f, &mut rng, 1);
//! let s1 = alice.private.shared_secret(&f, &mut rng, &bob.public);
//! let s2 = bob.private.shared_secret(&f, &mut rng, &alice.public);
//! assert_eq!(s1, s2);
//! ```

// Carry-chain and multi-array arithmetic code indexes several slices in
// lockstep; iterator rewrites of those loops obscure the digit algebra.
#![allow(clippy::needless_range_loop)]

pub mod action;
pub mod batch;
pub mod ct_action;
pub mod elligator;
pub mod isogeny;
pub mod mont;
pub mod scalar;

pub use action::{group_action, validate, CsidhKeypair, PrivateKey, PublicKey};
pub use batch::{validate_many, xmul_many};
pub use ct_action::{group_action_ct, CtPrivateKey, CtStats};
