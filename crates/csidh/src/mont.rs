//! x-only Montgomery curve arithmetic, generic over the field backend.
//!
//! Curves are `E_A : y² = x³ + A·x² + x` with the coefficient kept
//! projectively as `(A : C)`; points are x-only `(X : Z)`. These are
//! the standard Montgomery formulas used by the CSIDH reference
//! implementation (4M + 2S `xDBL`, 4M + 2S `xADD`, ladder).

use mpise_fp::Fp;
use mpise_mpi::U512;

/// An x-only projective point `(X : Z)`; the point at infinity has
/// `Z = 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point<E> {
    /// X coordinate.
    pub x: E,
    /// Z coordinate.
    pub z: E,
}

/// A Montgomery coefficient held projectively: `a = A/C`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Curve<E> {
    /// Numerator of the coefficient.
    pub a: E,
    /// Denominator of the coefficient.
    pub c: E,
}

impl<E: Copy> Curve<E> {
    /// The curve with affine coefficient `a` (i.e. `C = 1`).
    pub fn from_affine<F: Fp<Elem = E>>(f: &F, a: E) -> Self {
        Curve { a, c: f.one() }
    }
}

/// Whether `p` is the point at infinity.
pub fn is_infinity<F: Fp>(f: &F, p: &Point<F::Elem>) -> bool {
    f.is_zero(&p.z)
}

/// The doubling constants `(A + 2C : 4C)` of a curve.
pub fn a24<F: Fp>(f: &F, e: &Curve<F::Elem>) -> (F::Elem, F::Elem) {
    let c2 = f.add(&e.c, &e.c);
    let a24_plus = f.add(&e.a, &c2);
    let c24 = f.add(&c2, &c2);
    (a24_plus, c24)
}

/// x-only doubling: `[2]P` (4M + 2S with the precomputed `(A+2C : 4C)`).
pub fn xdbl<F: Fp>(f: &F, p: &Point<F::Elem>, a24_plus: &F::Elem, c24: &F::Elem) -> Point<F::Elem> {
    let t0 = f.sub(&p.x, &p.z);
    let t1 = f.add(&p.x, &p.z);
    let t0 = f.sqr(&t0);
    let t1 = f.sqr(&t1);
    let z2 = f.mul(c24, &t0);
    let x2 = f.mul(&z2, &t1);
    let t1 = f.sub(&t1, &t0);
    let t0 = f.mul(a24_plus, &t1);
    let z2 = f.add(&z2, &t0);
    let z2 = f.mul(&z2, &t1);
    Point { x: x2, z: z2 }
}

/// x-only differential addition: `P + Q` given `P − Q` (4M + 2S).
pub fn xadd<F: Fp>(
    f: &F,
    p: &Point<F::Elem>,
    q: &Point<F::Elem>,
    diff: &Point<F::Elem>,
) -> Point<F::Elem> {
    let t0 = f.add(&p.x, &p.z);
    let t1 = f.sub(&p.x, &p.z);
    let t2 = f.add(&q.x, &q.z);
    let t3 = f.sub(&q.x, &q.z);
    let t0 = f.mul(&t0, &t3);
    let t1 = f.mul(&t1, &t2);
    let t2 = f.sqr(&f.add(&t0, &t1));
    let t3 = f.sqr(&f.sub(&t0, &t1));
    Point {
        x: f.mul(&diff.z, &t2),
        z: f.mul(&diff.x, &t3),
    }
}

/// Montgomery ladder: `[k]P` on curve `e`.
///
/// Scans the scalar from its most significant set bit; the zero scalar
/// yields the point at infinity.
pub fn xmul<F: Fp>(f: &F, e: &Curve<F::Elem>, p: &Point<F::Elem>, k: &U512) -> Point<F::Elem> {
    let bits = k.bit_length();
    if bits == 0 {
        return Point {
            x: f.one(),
            z: f.zero(),
        };
    }
    let (a24_plus, c24) = a24(f, e);
    // (r0, r1) = (P, [2]P), invariant r1 - r0 = P.
    let mut r0 = *p;
    let mut r1 = xdbl(f, p, &a24_plus, &c24);
    for i in (0..bits as usize - 1).rev() {
        if k.bit(i) == 1 {
            r0 = xadd(f, &r1, &r0, p);
            r1 = xdbl(f, &r1, &a24_plus, &c24);
        } else {
            r1 = xadd(f, &r0, &r1, p);
            r0 = xdbl(f, &r0, &a24_plus, &c24);
        }
    }
    r0
}

/// The projective "right-hand side" value `X³·C + A·X²·Z + X·Z²·C`
/// used to decide whether an x-coordinate lies on the curve or on its
/// quadratic twist: `x` is on `E_A` iff `rhs·C` is a square.
///
/// For an affine coefficient (`C = 1`) this is `x³ + A·x² + x`.
pub fn rhs<F: Fp>(f: &F, e: &Curve<F::Elem>, x: &F::Elem) -> F::Elem {
    // C·x³ + A·x² + C·x = x·(C·(x²+1) + A·x)
    let x2 = f.sqr(x);
    let t = f.add(&x2, &f.one());
    let t = f.mul(&e.c, &t);
    let t = f.add(&t, &f.mul(&e.a, x));
    f.mul(x, &t)
}

/// Normalizes the coefficient to affine `a = A/C` (one inversion).
pub fn normalize<F: Fp>(f: &F, e: &Curve<F::Elem>) -> F::Elem {
    f.mul(&e.a, &f.inv(&e.c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar;
    use mpise_fp::params::Csidh512;
    use mpise_fp::{FpFull, FpRed};

    fn base_curve<F: Fp>(f: &F) -> Curve<F::Elem> {
        Curve::from_affine(f, f.zero()) // E_0: y² = x³ + x
    }

    /// A point of order dividing p+1 on E_0 or its twist.
    fn sample_point<F: Fp>(f: &F, seed: u64) -> Point<F::Elem> {
        Point {
            x: f.from_uint(&U512::from_u64(seed)),
            z: f.one(),
        }
    }

    #[test]
    fn ladder_edge_cases() {
        let f = FpFull::new();
        let e = base_curve(&f);
        let p = sample_point(&f, 9);
        // [0]P = infinity, [1]P = P (projectively).
        assert!(is_infinity(&f, &xmul(&f, &e, &p, &U512::ZERO)));
        let one = xmul(&f, &e, &p, &U512::ONE);
        // same affine x: X/Z equal
        let lhs = f.mul(&one.x, &p.z);
        let rhs_ = f.mul(&p.x, &one.z);
        assert_eq!(f.to_uint(&lhs), f.to_uint(&rhs_));
    }

    #[test]
    fn double_matches_ladder_by_two() {
        let f = FpFull::new();
        let e = base_curve(&f);
        let p = sample_point(&f, 7);
        let (ap, c24) = a24(&f, &e);
        let d1 = xdbl(&f, &p, &ap, &c24);
        let d2 = xmul(&f, &e, &p, &U512::from_u64(2));
        let lhs = f.mul(&d1.x, &d2.z);
        let rhs_ = f.mul(&d2.x, &d1.z);
        assert_eq!(f.to_uint(&lhs), f.to_uint(&rhs_));
    }

    #[test]
    fn ladder_is_additive_in_the_scalar() {
        // [6]P computed as [2]([3]P) and as [3]([2]P) agree.
        let f = FpRed::new();
        let e = base_curve(&f);
        let p = sample_point(&f, 5);
        let a = xmul(
            &f,
            &e,
            &xmul(&f, &e, &p, &U512::from_u64(3)),
            &U512::from_u64(2),
        );
        let b = xmul(
            &f,
            &e,
            &xmul(&f, &e, &p, &U512::from_u64(2)),
            &U512::from_u64(3),
        );
        let lhs = f.mul(&a.x, &b.z);
        let rhs_ = f.mul(&b.x, &a.z);
        assert_eq!(f.to_uint(&lhs), f.to_uint(&rhs_));
    }

    #[test]
    fn p_plus_one_annihilates_curve_points() {
        // E_0 is supersingular with #E(Fp) = p+1: any point with x on
        // the curve (rhs a square) satisfies [(p+1)]P = infinity.
        let f = FpFull::new();
        let e = base_curve(&f);
        let pp1 = scalar::p_plus_one();
        let mut checked = 0;
        for seed in 2..40u64 {
            let pt = sample_point(&f, seed);
            if f.legendre(&rhs(&f, &e, &pt.x)) == 1 {
                let r = xmul(&f, &e, &pt, &pp1);
                assert!(is_infinity(&f, &r), "x={seed} not annihilated");
                checked += 1;
                if checked >= 3 {
                    break;
                }
            }
        }
        assert!(checked >= 3, "not enough on-curve samples");
    }

    #[test]
    fn twist_points_are_annihilated_too() {
        // Points with non-square rhs live on the twist, which also has
        // order p+1 (supersingular, p ≡ 3 mod 4).
        let f = FpFull::new();
        let e = base_curve(&f);
        let pp1 = scalar::p_plus_one();
        let mut checked = 0;
        for seed in 2..40u64 {
            let pt = sample_point(&f, seed);
            if f.legendre(&rhs(&f, &e, &pt.x)) == -1 {
                let r = xmul(&f, &e, &pt, &pp1);
                assert!(is_infinity(&f, &r));
                checked += 1;
                if checked >= 3 {
                    break;
                }
            }
        }
        assert!(checked >= 3);
    }

    #[test]
    fn rhs_affine_matches_definition() {
        let f = FpFull::new();
        let a_coeff = f.from_uint(&U512::from_u64(6));
        let e = Curve::from_affine(&f, a_coeff);
        let x = f.from_uint(&U512::from_u64(5));
        // x³ + 6x² + x at x=5: 125 + 150 + 5 = 280
        assert_eq!(f.to_uint(&rhs(&f, &e, &x)), U512::from_u64(280));
    }

    #[test]
    fn normalize_recovers_affine() {
        let f = FpFull::new();
        let two = f.from_uint(&U512::from_u64(2));
        let six = f.from_uint(&U512::from_u64(6));
        let e = Curve { a: six, c: two };
        assert_eq!(f.to_uint(&normalize(&f, &e)), U512::from_u64(3));
    }

    #[test]
    fn full_and_reduced_backends_agree_on_ladder() {
        let ff = FpFull::new();
        let fr = FpRed::new();
        let k = U512::from_u64(0xdead_beef);
        let pf = sample_point(&ff, 11);
        let pr = sample_point(&fr, 11);
        let rf = xmul(&ff, &base_curve(&ff), &pf, &k);
        let rr = xmul(&fr, &base_curve(&fr), &pr, &k);
        // compare affine x
        let ax_f = ff.mul(&rf.x, &ff.inv(&rf.z));
        let ax_r = fr.mul(&rr.x, &fr.inv(&rr.z));
        assert_eq!(ff.to_uint(&ax_f), fr.to_uint(&ax_r));
        let _ = Csidh512::get();
    }
}
