//! Small helpers for the public scalars of the group action
//! (cofactors, which are products of the small primes `ℓᵢ`).

use mpise_fp::params::{NUM_PRIMES, PRIMES};
use mpise_mpi::{Uint, U512};

/// Multiplies a 512-bit value by a small constant.
///
/// # Panics
///
/// Panics (debug) if the product overflows 512 bits — cofactors of
/// CSIDH-512 never do (`4·∏ℓᵢ < 2^512`).
pub fn mul_u64(a: &U512, b: u64) -> U512 {
    let mut out = [0u64; 8];
    let mut carry = 0u64;
    for i in 0..8 {
        let t = a.limb(i) as u128 * b as u128 + carry as u128;
        out[i] = t as u64;
        carry = (t >> 64) as u64;
    }
    debug_assert_eq!(carry, 0, "cofactor overflowed 512 bits");
    Uint::from_limbs(out)
}

/// Computes `4 · ∏_{i ∈ included} ℓᵢ` — the scalar that clears every
/// factor of `p + 1` **except** the selected primes is built from the
/// complement set, so both directions are needed.
pub fn four_times_product(included: impl Iterator<Item = usize>) -> U512 {
    let mut acc = U512::from_u64(4);
    for i in included {
        acc = mul_u64(&acc, PRIMES[i]);
    }
    acc
}

/// Computes `∏_{i ∈ included} ℓᵢ` (no factor 4).
pub fn product(included: impl Iterator<Item = usize>) -> U512 {
    let mut acc = U512::ONE;
    for i in included {
        acc = mul_u64(&acc, PRIMES[i]);
    }
    acc
}

/// The full cofactor `p + 1 = 4·∏ᵢ ℓᵢ`.
pub fn p_plus_one() -> U512 {
    four_times_product(0..NUM_PRIMES)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpise_fp::params::Csidh512;

    #[test]
    fn p_plus_one_matches_params() {
        let c = Csidh512::get();
        assert_eq!(p_plus_one(), c.p.wrapping_add(&U512::ONE));
    }

    #[test]
    fn mul_u64_small() {
        assert_eq!(mul_u64(&U512::from_u64(6), 7), U512::from_u64(42));
        assert_eq!(mul_u64(&U512::ZERO, 999), U512::ZERO);
        // cross-limb carry
        let big = U512::from_limbs([u64::MAX, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(
            mul_u64(&big, 2),
            U512::from_limbs([u64::MAX - 1, 1, 0, 0, 0, 0, 0, 0])
        );
    }

    #[test]
    fn complement_products_multiply_to_p_plus_one() {
        let evens = (0..NUM_PRIMES).filter(|i| i % 2 == 0);
        let odds = (0..NUM_PRIMES).filter(|i| i % 2 == 1);
        let a = four_times_product(evens);
        let b = product(odds);
        // a * b == p+1: verify via the reference integers.
        use mpise_mpi::reference::RefInt;
        let prod = RefInt::from_limbs(a.limbs()).mul(&RefInt::from_limbs(b.limbs()));
        assert_eq!(prod.to_limbs(8), p_plus_one().limbs().to_vec());
    }
}
