//! Load generator for the key-exchange engine: runs the deterministic
//! client mix against a single-worker baseline and a multi-worker
//! engine, writes `LOAD_<date>.json`, and exits non-zero when the
//! throughput/determinism gate fails. See [`mpise_engine::loadgen`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(mpise_engine::loadgen::run_cli(&args));
}
