//! # mpise-engine — the batched CSIDH-512 key-exchange service
//!
//! The paper (and the crates below this one) accelerate **one**
//! CSIDH-512 operation at a time. This crate is the serving layer the
//! ROADMAP's north star asks for: a multi-worker **service engine**
//! that turns the single-request primitives of `mpise-csidh` into a
//! throughput system.
//!
//! * [`Engine`] accepts [`Request::Keygen`],
//!   [`Request::DeriveSharedSecret`] and
//!   [`Request::ValidatePublicKey`] through a bounded submission
//!   queue ([`queue::Bounded`]) and executes them on a configurable
//!   worker pool — one field-backend instance per worker, generic
//!   over any [`FpBatch`] backend.
//! * Every request carries a **deterministic seed**: outcomes depend
//!   only on `(seed, request)`, never on scheduling, batching or
//!   worker count (the loadgen determinism test enforces this
//!   byte-for-byte).
//! * Requests may carry a **deadline** and can be **cancelled**
//!   through their [`Ticket`]; [`Engine::shutdown`] performs a
//!   graceful drain — everything already accepted completes, nothing
//!   is dropped, and later submissions fail with
//!   [`EngineError::ShutDown`].
//! * Workers serve `ValidatePublicKey` traffic through the
//!   lane-parallel batch layer ([`mpise_csidh::batch::validate_many`]
//!   over [`FpBatch`]): consecutive validation requests are taken
//!   from the queue front and share lockstep Montgomery-ladder
//!   kernels.
//! * [`Engine::stats`] returns an [`EngineStats`] snapshot (per-op
//!   counts, queue depth, p50/p99 latency, throughput); the
//!   [`loadgen`] module drives N concurrent clients against the
//!   engine and writes a machine-readable `LOAD_<date>.json` report
//!   with a multi-worker throughput gate.

pub mod loadgen;
pub mod queue;
pub mod stats;

use mpise_csidh::batch::validate_many;
use mpise_csidh::{CsidhKeypair, PrivateKey, PublicKey};
use mpise_fp::FpBatch;
use queue::{Bounded, TryPushError};
use stats::StatsInner;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

pub use stats::EngineStats;

/// A key-exchange request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Request {
    /// Generate a key pair (exponents bounded by `bound`; CSIDH-512
    /// proper uses [`mpise_csidh::action::EXPONENT_BOUND`] = 5).
    Keygen {
        /// Private-exponent bound.
        bound: i8,
    },
    /// Derive the shared secret of `private` with `their_public`.
    DeriveSharedSecret {
        /// Our private key.
        private: PrivateKey,
        /// The peer's public key.
        their_public: PublicKey,
    },
    /// Check that a public key is a supersingular curve.
    ValidatePublicKey {
        /// The key to validate.
        key: PublicKey,
    },
}

/// A completed request's result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The generated key pair.
    Keypair {
        /// The secret exponent vector.
        private: PrivateKey,
        /// The corresponding public curve.
        public: PublicKey,
    },
    /// The derived shared secret.
    SharedSecret(PublicKey),
    /// The validation verdict.
    Validated(bool),
}

impl Outcome {
    /// Canonical wire bytes of the outcome, used by the loadgen
    /// determinism digest: public keys and shared secrets serialize
    /// through the 64-byte little-endian format, verdicts as one
    /// byte, key pairs as public key then exponent vector.
    pub fn payload_bytes(&self) -> Vec<u8> {
        match self {
            Outcome::Keypair { private, public } => {
                let mut out = public.to_bytes().to_vec();
                out.extend(private.exponents.iter().map(|&e| e as u8));
                out
            }
            Outcome::SharedSecret(pk) => pk.to_bytes().to_vec(),
            Outcome::Validated(v) => vec![u8::from(*v)],
        }
    }
}

/// Why a request did not produce an [`Outcome`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineError {
    /// The engine is shut down (or shutting down); nothing was queued.
    ShutDown,
    /// `try_submit` found the queue at capacity; nothing was queued.
    QueueFull,
    /// The deadline passed before a worker claimed the request.
    DeadlineExceeded,
    /// The ticket was cancelled before a worker claimed the request.
    Cancelled,
    /// The engine dropped the response channel (worker panic).
    Disconnected,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let text = match self {
            EngineError::ShutDown => "engine is shut down",
            EngineError::QueueFull => "submission queue is full",
            EngineError::DeadlineExceeded => "deadline exceeded before execution",
            EngineError::Cancelled => "request cancelled",
            EngineError::Disconnected => "engine dropped the response channel",
        };
        write!(out, "{text}")
    }
}

impl std::error::Error for EngineError {}

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Worker threads (each owns one backend instance).
    pub workers: usize,
    /// Bounded submission-queue capacity (back-pressure bound).
    pub queue_capacity: usize,
    /// Maximum validation requests served per lane-parallel batch;
    /// `1` disables batching.
    pub batch_lanes: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 4,
            queue_capacity: 256,
            batch_lanes: 16,
        }
    }
}

/// A pending request's client-side handle.
///
/// Dropping the ticket abandons the response (the worker's send just
/// fails); [`Ticket::cancel`] additionally asks the engine not to
/// start the work if it has not begun.
pub struct Ticket {
    id: u64,
    rx: mpsc::Receiver<Result<Outcome, EngineError>>,
    cancelled: Arc<AtomicBool>,
}

impl Ticket {
    /// The engine-assigned request id (monotonic per engine).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cancellation. Best-effort: a request already claimed
    /// by a worker still completes (and `wait` returns its outcome).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Blocks until the outcome (or the engine's refusal) arrives.
    ///
    /// # Errors
    ///
    /// Propagates the engine-side [`EngineError`] for this request.
    pub fn wait(self) -> Result<Outcome, EngineError> {
        self.rx.recv().unwrap_or(Err(EngineError::Disconnected))
    }
}

/// One queued unit of work.
struct Job {
    seed: u64,
    request: Request,
    deadline: Option<Instant>,
    submitted: Instant,
    cancelled: Arc<AtomicBool>,
    tx: mpsc::Sender<Result<Outcome, EngineError>>,
}

/// The multi-worker key-exchange service.
///
/// # Examples
///
/// ```
/// use mpise_engine::{Engine, EngineConfig, Outcome, Request};
/// use mpise_csidh::PublicKey;
/// use mpise_fp::FpFull;
///
/// let engine = Engine::start(EngineConfig { workers: 2, ..Default::default() }, FpFull::new);
/// let ticket = engine
///     .submit(7, Request::ValidatePublicKey { key: PublicKey::BASE }, None)
///     .unwrap();
/// assert_eq!(ticket.wait().unwrap(), Outcome::Validated(true));
/// engine.shutdown();
/// ```
pub struct Engine {
    queue: Arc<Bounded<Job>>,
    stats: Arc<StatsInner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    next_id: AtomicU64,
    config: EngineConfig,
}

impl Engine {
    /// Starts the worker pool. `backend` is called once inside each
    /// worker thread to build that worker's private field-backend
    /// instance (so backends need not be `Send`).
    ///
    /// # Panics
    ///
    /// Panics when `config.workers` or `config.batch_lanes` is zero.
    pub fn start<F, B>(config: EngineConfig, backend: B) -> Engine
    where
        F: FpBatch,
        B: Fn() -> F + Send + Sync + 'static,
    {
        assert!(config.workers > 0, "need at least one worker");
        assert!(config.batch_lanes > 0, "need at least one batch lane");
        let queue = Arc::new(Bounded::new(config.queue_capacity));
        let stats = Arc::new(StatsInner::new(config.workers));
        let backend = Arc::new(backend);
        let workers = (0..config.workers)
            .map(|worker| {
                let queue = Arc::clone(&queue);
                let stats = Arc::clone(&stats);
                let backend = Arc::clone(&backend);
                let lanes = config.batch_lanes;
                std::thread::spawn(move || worker_loop(backend(), &queue, &stats, lanes, worker))
            })
            .collect();
        Engine {
            queue,
            stats,
            workers: Mutex::new(workers),
            next_id: AtomicU64::new(0),
            config,
        }
    }

    fn make_job(&self, seed: u64, request: Request, deadline: Option<Duration>) -> (Job, Ticket) {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let cancelled = Arc::new(AtomicBool::new(false));
        let job = Job {
            seed,
            request,
            deadline: deadline.map(|d| Instant::now() + d),
            submitted: Instant::now(),
            cancelled: Arc::clone(&cancelled),
            tx,
        };
        (job, Ticket { id, rx, cancelled })
    }

    /// Submits a request, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// [`EngineError::ShutDown`] after [`Engine::shutdown`] — the
    /// request is not queued.
    pub fn submit(
        &self,
        seed: u64,
        request: Request,
        deadline: Option<Duration>,
    ) -> Result<Ticket, EngineError> {
        let (job, ticket) = self.make_job(seed, request, deadline);
        match self.queue.push(job) {
            Ok(()) => {
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Err(_) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(EngineError::ShutDown)
            }
        }
    }

    /// Submits without blocking.
    ///
    /// # Errors
    ///
    /// [`EngineError::QueueFull`] at capacity, [`EngineError::ShutDown`]
    /// after shutdown; the request is not queued in either case.
    pub fn try_submit(
        &self,
        seed: u64,
        request: Request,
        deadline: Option<Duration>,
    ) -> Result<Ticket, EngineError> {
        let (job, ticket) = self.make_job(seed, request, deadline);
        match self.queue.try_push(job) {
            Ok(()) => {
                self.stats.submitted.fetch_add(1, Ordering::Relaxed);
                Ok(ticket)
            }
            Err(err) => {
                self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Err(match err {
                    TryPushError::Closed(_) => EngineError::ShutDown,
                    TryPushError::Full(_) => EngineError::QueueFull,
                })
            }
        }
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> EngineStats {
        self.stats.snapshot(self.queue.len())
    }

    /// The configuration the engine was started with.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// Publishes the current counters into an `mpise-obs` metrics
    /// registry (typically [`mpise_obs::global`]): request counters by
    /// op, queue/throughput gauges, per-worker completion gauges, and
    /// the full latency reservoir as a histogram. Idempotent — each
    /// call overwrites the previous export, so periodic publication
    /// always reflects the snapshot, not a double count.
    pub fn publish_metrics(&self, reg: &mpise_obs::Registry) {
        let s = self.stats();
        let latencies = self.stats.latencies();
        let ops = "Requests answered, by operation";
        reg.counter(
            "mpise_engine_requests_submitted_total",
            "Requests accepted into the queue",
            &[],
        )
        .set(s.submitted);
        reg.counter(
            "mpise_engine_requests_rejected_total",
            "Submissions refused",
            &[],
        )
        .set(s.rejected);
        reg.counter(
            "mpise_engine_requests_completed_total",
            ops,
            &[("op", "keygen")],
        )
        .set(s.keygen);
        reg.counter(
            "mpise_engine_requests_completed_total",
            ops,
            &[("op", "derive")],
        )
        .set(s.derive);
        reg.counter(
            "mpise_engine_requests_completed_total",
            ops,
            &[("op", "validate")],
        )
        .set(s.validate);
        reg.counter(
            "mpise_engine_requests_expired_total",
            "Requests that missed their deadline",
            &[],
        )
        .set(s.expired);
        reg.counter(
            "mpise_engine_requests_cancelled_total",
            "Requests cancelled before execution",
            &[],
        )
        .set(s.cancelled);
        reg.counter(
            "mpise_engine_validate_batches_total",
            "Lane-parallel validation batches executed",
            &[],
        )
        .set(s.batches);
        reg.counter(
            "mpise_engine_batched_requests_total",
            "Validation requests served through batches",
            &[],
        )
        .set(s.batched_requests);
        reg.gauge(
            "mpise_engine_queue_depth",
            "Requests queued but not yet claimed",
            &[],
        )
        .set(s.queue_depth as f64);
        reg.gauge(
            "mpise_engine_throughput_rps",
            "Completed requests per second since start",
            &[],
        )
        .set(s.throughput_rps);
        if let Some(w) = s.mean_batch_width() {
            reg.gauge(
                "mpise_engine_mean_batch_width",
                "Mean lanes per validation batch",
                &[],
            )
            .set(w);
        }
        let worker_help = "Jobs answered, by worker";
        for (i, &n) in s.worker_completed.iter().enumerate() {
            let id = i.to_string();
            reg.gauge(
                "mpise_engine_worker_completed",
                worker_help,
                &[("worker", &id)],
            )
            .set(n as f64);
        }
        reg.histogram(
            "mpise_engine_latency_us",
            "Submit-to-response latency (microseconds)",
            &[],
            &mpise_obs::metrics::LATENCY_BUCKETS_US,
        )
        .replace_with_samples(&latencies);
    }

    /// Graceful drain: refuses new submissions, lets the workers
    /// finish everything already queued, and joins them. Every
    /// accepted request receives its response before this returns.
    /// Idempotent; later [`Engine::submit`] calls return
    /// [`EngineError::ShutDown`] instead of panicking.
    pub fn shutdown(&self) {
        self.queue.close();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("worker list")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Whether [`Engine::shutdown`] has begun.
    pub fn is_shut_down(&self) -> bool {
        self.queue.is_closed()
    }

    /// Drains the telemetry span trees merged in by exited workers.
    /// Spans are thread-local, so workers contribute their trees when
    /// they exit — call this after [`Engine::shutdown`] for the
    /// complete forest (empty while telemetry is disabled).
    pub fn take_worker_spans(&self) -> mpise_obs::SpanTree {
        std::mem::take(&mut *self.stats.spans.lock().expect("span lock"))
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Responds to a job and records its latency and op counter.
fn respond(stats: &StatsInner, job: &Job, result: Result<Outcome, EngineError>) {
    match &result {
        Ok(Outcome::Keypair { .. }) => stats.keygen.fetch_add(1, Ordering::Relaxed),
        Ok(Outcome::SharedSecret(_)) => stats.derive.fetch_add(1, Ordering::Relaxed),
        Ok(Outcome::Validated(_)) => stats.validate.fetch_add(1, Ordering::Relaxed),
        Err(EngineError::DeadlineExceeded) => stats.expired.fetch_add(1, Ordering::Relaxed),
        Err(EngineError::Cancelled) => stats.cancelled.fetch_add(1, Ordering::Relaxed),
        Err(_) => 0,
    };
    stats.record_latency(job.submitted.elapsed().as_micros() as u64);
    // A dropped ticket makes the send fail; that is fine.
    let _ = job.tx.send(result);
}

/// Pre-execution refusals (cancellation, deadline), checked when a
/// worker claims the job.
fn refusal(job: &Job) -> Option<EngineError> {
    if job.cancelled.load(Ordering::Relaxed) {
        return Some(EngineError::Cancelled);
    }
    if let Some(deadline) = job.deadline {
        if Instant::now() > deadline {
            return Some(EngineError::DeadlineExceeded);
        }
    }
    None
}

fn worker_loop<F: FpBatch>(
    f: F,
    queue: &Bounded<Job>,
    stats: &StatsInner,
    lanes: usize,
    worker: usize,
) {
    while let Some(job) = queue.pop() {
        let answered = if matches!(job.request, Request::ValidatePublicKey { .. }) {
            // Take a run of validation requests from the queue front:
            // independent requests share lockstep ladder kernels.
            let mut batch = vec![job];
            if lanes > 1 {
                batch.extend(queue.drain_front_matching(lanes - 1, |j| {
                    matches!(j.request, Request::ValidatePublicKey { .. })
                }));
            }
            let n = batch.len() as u64;
            run_validate_batch(&f, batch, stats);
            n
        } else {
            run_single(&f, job, stats);
            1
        };
        stats.worker_completed[worker].fetch_add(answered, Ordering::Relaxed);
    }
    // Spans are thread-local; hand this worker's finished tree to the
    // engine before the thread exits.
    let spans = mpise_obs::take_spans();
    if !spans.is_empty() {
        stats.spans.lock().expect("span lock").merge(spans);
    }
}

fn run_single<F: FpBatch>(f: &F, job: Job, stats: &StatsInner) {
    if let Some(err) = refusal(&job) {
        respond(stats, &job, Err(err));
        return;
    }
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(job.seed);
    let outcome = match job.request {
        Request::Keygen { bound } => {
            let kp = CsidhKeypair::generate_with_bound(f, &mut rng, bound);
            Outcome::Keypair {
                private: kp.private,
                public: kp.public,
            }
        }
        Request::DeriveSharedSecret {
            private,
            their_public,
        } => Outcome::SharedSecret(private.shared_secret(f, &mut rng, &their_public)),
        Request::ValidatePublicKey { key } => {
            Outcome::Validated(validate_many(f, &[key], &[job.seed])[0])
        }
    };
    respond(stats, &job, Ok(outcome));
}

fn run_validate_batch<F: FpBatch>(f: &F, batch: Vec<Job>, stats: &StatsInner) {
    // Refusals answered up front; survivors share the batch.
    let mut live: Vec<Job> = Vec::with_capacity(batch.len());
    for job in batch {
        match refusal(&job) {
            Some(err) => respond(stats, &job, Err(err)),
            None => live.push(job),
        }
    }
    if live.is_empty() {
        return;
    }
    let keys: Vec<PublicKey> = live
        .iter()
        .map(|j| match j.request {
            Request::ValidatePublicKey { key } => key,
            _ => unreachable!("batch contains only validation requests"),
        })
        .collect();
    let seeds: Vec<u64> = live.iter().map(|j| j.seed).collect();
    let verdicts = validate_many(f, &keys, &seeds);
    stats.batches.fetch_add(1, Ordering::Relaxed);
    stats
        .batched_requests
        .fetch_add(live.len() as u64, Ordering::Relaxed);
    for (job, verdict) in live.iter().zip(verdicts) {
        respond(stats, job, Ok(Outcome::Validated(verdict)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpise_fp::FpFull;
    use mpise_mpi::U512;

    fn bogus_key() -> PublicKey {
        // A = 2 is singular: rejected without field arithmetic, so
        // these requests are near-instant — ideal for queue tests.
        PublicKey {
            a: U512::from_u64(2),
        }
    }

    #[test]
    fn outcomes_are_seed_deterministic() {
        let engine = Engine::start(
            EngineConfig {
                workers: 2,
                ..Default::default()
            },
            FpFull::new,
        );
        // Bound 0 pins the exponent vector, so the outcome is fully
        // determined — any scheduling- or worker-dependence would show
        // up as payload divergence. (Seed-sensitivity of bound ≥ 1
        // keygen is a full group action, exercised by the release-mode
        // loadgen run instead of this debug-speed unit test.)
        let req = Request::Keygen { bound: 0 };
        let a = engine.submit(42, req, None).unwrap().wait().unwrap();
        let b = engine.submit(42, req, None).unwrap().wait().unwrap();
        assert_eq!(a, b, "same seed, same outcome");
        assert_eq!(
            a.payload_bytes(),
            b.payload_bytes(),
            "payload bytes are reproducible"
        );
        engine.shutdown();
    }

    #[test]
    fn keygen_bound_zero_is_identity() {
        let engine = Engine::start(
            EngineConfig {
                workers: 1,
                ..Default::default()
            },
            FpFull::new,
        );
        match engine
            .submit(1, Request::Keygen { bound: 0 }, None)
            .unwrap()
            .wait()
            .unwrap()
        {
            Outcome::Keypair { public, .. } => assert_eq!(public, PublicKey::BASE),
            other => panic!("expected a keypair, got {other:?}"),
        }
    }

    #[test]
    fn validations_batch_and_answer_in_order() {
        let engine = Engine::start(
            EngineConfig {
                workers: 1,
                batch_lanes: 8,
                ..Default::default()
            },
            FpFull::new,
        );
        let tickets: Vec<Ticket> = (0..12)
            .map(|i| {
                engine
                    .submit(i, Request::ValidatePublicKey { key: bogus_key() }, None)
                    .unwrap()
            })
            .collect();
        for t in tickets {
            assert_eq!(t.wait().unwrap(), Outcome::Validated(false));
        }
        let stats = engine.stats();
        assert_eq!(stats.validate, 12);
        assert_eq!(stats.batched_requests, 12);
        assert!(stats.batches <= 12);
        engine.shutdown();
    }

    #[test]
    fn expired_deadline_is_reported() {
        let engine = Engine::start(
            EngineConfig {
                workers: 1,
                ..Default::default()
            },
            FpFull::new,
        );
        let ticket = engine
            .submit(
                1,
                Request::ValidatePublicKey { key: bogus_key() },
                Some(Duration::ZERO),
            )
            .unwrap();
        // A zero deadline has passed by the time any worker claims it.
        assert_eq!(ticket.wait(), Err(EngineError::DeadlineExceeded));
        assert_eq!(engine.stats().expired, 1);
        engine.shutdown();
    }

    #[test]
    fn stats_snapshot_counts_latencies() {
        let engine = Engine::start(EngineConfig::default(), FpFull::new);
        for i in 0..5 {
            let _ = engine
                .submit(i, Request::ValidatePublicKey { key: bogus_key() }, None)
                .unwrap()
                .wait();
        }
        let stats = engine.stats();
        assert_eq!(stats.submitted, 5);
        assert_eq!(stats.completed, 5);
        assert!(stats.p50_us.is_some());
        assert!(stats.p50_us <= stats.p99_us);
        assert!(stats.p99_us <= stats.max_us);
        engine.shutdown();
    }

    #[test]
    fn worker_counters_cover_all_answered_jobs() {
        let engine = Engine::start(
            EngineConfig {
                workers: 2,
                ..Default::default()
            },
            FpFull::new,
        );
        for i in 0..9 {
            let _ = engine
                .submit(i, Request::ValidatePublicKey { key: bogus_key() }, None)
                .unwrap()
                .wait();
        }
        engine.shutdown();
        let stats = engine.stats();
        assert_eq!(stats.worker_completed.len(), 2);
        assert_eq!(
            stats.worker_completed.iter().sum::<u64>(),
            stats.completed + stats.expired + stats.cancelled
        );
    }

    #[test]
    fn publish_metrics_exports_the_snapshot() {
        let engine = Engine::start(
            EngineConfig {
                workers: 2,
                ..Default::default()
            },
            FpFull::new,
        );
        for i in 0..4 {
            let _ = engine
                .submit(i, Request::ValidatePublicKey { key: bogus_key() }, None)
                .unwrap()
                .wait();
        }
        let reg = mpise_obs::Registry::new();
        engine.publish_metrics(&reg);
        // Publishing twice must not double-count (counters are set,
        // the histogram is replaced).
        engine.publish_metrics(&reg);
        let text = reg.render_prometheus();
        assert!(text.contains("mpise_engine_requests_submitted_total 4"));
        assert!(text.contains("mpise_engine_requests_completed_total{op=\"validate\"} 4"));
        assert!(text.contains("mpise_engine_worker_completed{worker=\"0\"}"));
        assert!(text.contains("mpise_engine_worker_completed{worker=\"1\"}"));
        assert!(text.contains("mpise_engine_latency_us_count 4"));
        mpise_obs::prom::validate(&text).expect("exported text must parse");
        engine.shutdown();
    }
}
