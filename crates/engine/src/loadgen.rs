//! `loadgen` — drives concurrent clients against the engine and gates
//! multi-worker throughput.
//!
//! One binary (`cargo run --release --bin loadgen`) runs the same
//! deterministic request mix through two engine instances — a
//! single-worker baseline and the multi-worker configuration under
//! test — and writes a machine-readable `LOAD_<date>.json` report
//! (schema in DESIGN.md §10). The run doubles as two gates:
//!
//! * **throughput** — the multi-worker pass must beat the baseline by
//!   a sanity margin. With ≥ 3 effective cores the requirement is the
//!   full **2×**; CPU-bound field arithmetic cannot parallelise on
//!   fewer cores, so the requirement degrades smoothly to a
//!   no-regression margin (`clamp(0.75 · min(workers, cores), 0.75,
//!   2.0)`) instead of demanding physically impossible speedups on
//!   small hosts;
//! * **determinism** — both passes must produce byte-identical result
//!   payloads (shared secrets, public keys, verdicts): outcomes
//!   depend only on per-request seeds, never on worker count,
//!   batching or scheduling.
//!
//! All request seeds derive from one base seed via SplitMix64, so two
//! runs with the same options are byte-identical end to end (the
//! `tests/determinism.rs` golden test mirrors the bench pipeline's
//! golden serialization test).

use crate::{Engine, EngineConfig, EngineError, EngineStats, Request, Ticket};
use mpise_csidh::{group_action, PrivateKey, PublicKey};
use mpise_fp::params::NUM_PRIMES;
use mpise_fp::FpFull;
use mpise_mpi::U512;
use mpise_obs::time::utc_date_string;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Default base seed ("load" + a suffix picked so the default full
/// mix draws all three request kinds *and* the smoke mix includes
/// invalid-key rejections).
pub const LOADGEN_SEED: u64 = 0x10AD2;

/// What to run and where to put the report.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Worker count of the pass under test.
    pub workers: usize,
    /// Worker count of the baseline pass.
    pub baseline_workers: usize,
    /// Concurrent client threads.
    pub clients: usize,
    /// Requests each client submits.
    pub requests_per_client: usize,
    /// Engine batch lanes (same in both passes — the gate isolates
    /// the worker count).
    pub batch_lanes: usize,
    /// Base seed for the deterministic request mix.
    pub seed: u64,
    /// CI-sized run: smaller mix, no expensive keygen requests.
    pub smoke: bool,
    /// Output path; `None` = `LOAD_<utc-date>.json`.
    pub out: Option<String>,
    /// Where to dump the Prometheus text exposition; setting this (or
    /// `obs_out`, or `MPISE_OBS=1`) enables telemetry for the run.
    pub metrics_out: Option<String>,
    /// Where to dump the `mpise-obs/v1` JSON snapshot (metrics plus the
    /// worker span forest).
    pub obs_out: Option<String>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            workers: 4,
            baseline_workers: 1,
            clients: 4,
            requests_per_client: 6,
            batch_lanes: 8,
            seed: LOADGEN_SEED,
            smoke: false,
            out: None,
            metrics_out: None,
            obs_out: None,
        }
    }
}

impl LoadgenOptions {
    /// The CI-sized configuration.
    pub fn smoke() -> Self {
        LoadgenOptions {
            requests_per_client: 3,
            smoke: true,
            ..Default::default()
        }
    }
}

/// Deterministic fixture keys shared by every request mix.
#[derive(Debug, Clone, Copy)]
pub struct Fixtures {
    /// A valid derived curve.
    pub valid1: PublicKey,
    /// A second valid derived curve.
    pub valid2: PublicKey,
    /// An ordinary (invalid) curve.
    pub bogus: PublicKey,
    /// A sparse private key for cheap shared-secret derivations.
    pub sparse: PrivateKey,
}

impl Fixtures {
    /// Builds the fixtures on the host full-radix backend (two sparse
    /// group actions; deterministic in `seed`).
    pub fn generate(seed: u64) -> Self {
        let f = FpFull::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut e1 = [0i8; NUM_PRIMES];
        e1[0] = 1;
        let mut e2 = [0i8; NUM_PRIMES];
        e2[1] = -1;
        let mut es = [0i8; NUM_PRIMES];
        es[2] = 1;
        Fixtures {
            valid1: group_action(
                &f,
                &mut rng,
                &PublicKey::BASE,
                &PrivateKey { exponents: e1 },
            ),
            valid2: group_action(
                &f,
                &mut rng,
                &PublicKey::BASE,
                &PrivateKey { exponents: e2 },
            ),
            bogus: PublicKey { a: U512::ONE },
            sparse: PrivateKey { exponents: es },
        }
    }
}

/// SplitMix64 — the per-request seed stream.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The deterministic request plan for one `(client, index)` slot:
/// validation-heavy (so lane batching has traffic to merge), with a
/// derivation stripe and — outside smoke mode — an occasional keygen.
pub fn plan_request(
    base_seed: u64,
    client: usize,
    index: usize,
    fixtures: &Fixtures,
    smoke: bool,
) -> (u64, Request) {
    let slot = splitmix64(base_seed ^ ((client as u64) << 32) ^ index as u64);
    let seed = splitmix64(slot);
    let request = match slot % 8 {
        0..=2 => Request::ValidatePublicKey {
            key: fixtures.valid1,
        },
        3..=4 => Request::ValidatePublicKey {
            key: fixtures.valid2,
        },
        5 => Request::ValidatePublicKey {
            key: fixtures.bogus,
        },
        6 => Request::DeriveSharedSecret {
            private: fixtures.sparse,
            their_public: fixtures.valid1,
        },
        _ if smoke => Request::ValidatePublicKey {
            key: fixtures.valid1,
        },
        _ => Request::Keygen { bound: 1 },
    };
    (seed, request)
}

/// One pass's measurements.
#[derive(Debug, Clone)]
pub struct PassResult {
    /// Worker count of this pass.
    pub workers: usize,
    /// Requests submitted.
    pub requests: usize,
    /// Requests that produced an outcome.
    pub ok: usize,
    /// Requests that failed engine-side.
    pub errors: usize,
    /// Wall-clock seconds from first submission to last response.
    pub elapsed_secs: f64,
    /// Completed requests per wall-clock second.
    pub requests_per_sec: f64,
    /// Engine stats snapshot at the end of the pass.
    pub stats: EngineStats,
    /// Result payloads concatenated in `(client, index)` order.
    pub payloads: Vec<u8>,
    /// Worker span forest (empty unless telemetry was enabled).
    pub spans: mpise_obs::SpanTree,
}

/// Runs one pass: `clients` threads submit the deterministic mix and
/// wait for every response; the engine is drained and joined before
/// the result is returned.
pub fn run_pass(workers: usize, opts: &LoadgenOptions, fixtures: &Fixtures) -> PassResult {
    let engine = Engine::start(
        EngineConfig {
            workers,
            queue_capacity: (opts.clients * opts.requests_per_client).max(16),
            batch_lanes: opts.batch_lanes,
        },
        FpFull::new,
    );

    let t0 = Instant::now();
    let mut client_payloads: Vec<Vec<u8>> = Vec::with_capacity(opts.clients);
    let mut ok = 0usize;
    let mut errors = 0usize;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients)
            .map(|client| {
                let engine = &engine;
                scope.spawn(move || {
                    // Submit the whole window, then collect in order —
                    // the submission pattern of a pipelined client.
                    let tickets: Vec<Result<Ticket, EngineError>> = (0..opts.requests_per_client)
                        .map(|index| {
                            let (seed, request) =
                                plan_request(opts.seed, client, index, fixtures, opts.smoke);
                            engine.submit(seed, request, None)
                        })
                        .collect();
                    let mut payload = Vec::new();
                    let mut ok = 0usize;
                    let mut errors = 0usize;
                    for ticket in tickets {
                        match ticket.and_then(Ticket::wait) {
                            Ok(outcome) => {
                                ok += 1;
                                payload.extend(outcome.payload_bytes());
                            }
                            Err(_) => {
                                errors += 1;
                                payload.push(0xFF);
                            }
                        }
                    }
                    (payload, ok, errors)
                })
            })
            .collect();
        for handle in handles {
            let (payload, client_ok, client_errors) = handle.join().expect("client thread");
            client_payloads.push(payload);
            ok += client_ok;
            errors += client_errors;
        }
    });
    let elapsed_secs = t0.elapsed().as_secs_f64();
    let stats = engine.stats();
    if mpise_obs::enabled() {
        // Publication is idempotent set/replace, so the registry ends
        // up describing whichever pass published last (the loaded one).
        engine.publish_metrics(mpise_obs::global());
    }
    engine.shutdown();
    let spans = engine.take_worker_spans();

    PassResult {
        workers,
        requests: opts.clients * opts.requests_per_client,
        ok,
        errors,
        elapsed_secs,
        requests_per_sec: if elapsed_secs > 0.0 {
            ok as f64 / elapsed_secs
        } else {
            0.0
        },
        stats,
        payloads: client_payloads.concat(),
        spans,
    }
}

/// The throughput-gate verdict.
#[derive(Debug, Clone, Copy)]
pub struct GateResult {
    /// Baseline requests/sec.
    pub baseline_rps: f64,
    /// Multi-worker requests/sec.
    pub loaded_rps: f64,
    /// `loaded / baseline`.
    pub ratio: f64,
    /// `min(workers, host cores)` — what parallelism can physically
    /// deliver on this host.
    pub effective_parallelism: usize,
    /// The ratio the gate demands on this host.
    pub required_ratio: f64,
    /// Whether both the throughput and determinism conditions hold.
    pub pass: bool,
}

/// The ratio the throughput gate requires for a given worker count on
/// this host: the full 2× of the acceptance criterion whenever ≥ 3
/// cores are available to back it, degrading to a 0.75× no-regression
/// sanity margin on hosts where CPU-bound arithmetic cannot
/// parallelise.
pub fn required_ratio(workers: usize) -> (f64, usize) {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let effective = workers.min(cores).max(1);
    ((0.75 * effective as f64).clamp(0.75, 2.0), effective)
}

/// Everything one loadgen run produced.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Options the run used.
    pub options: LoadgenOptions,
    /// Baseline pass (first), loaded pass (second).
    pub passes: Vec<PassResult>,
    /// Whether both passes produced byte-identical payloads.
    pub payloads_identical: bool,
    /// FNV-1a 64 digest of the loaded pass's payload bytes.
    pub payload_digest: u64,
    /// The throughput-gate verdict.
    pub gate: GateResult,
}

/// FNV-1a 64-bit digest (no external hashing crates).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs the baseline and loaded passes and evaluates the gate.
pub fn run(opts: &LoadgenOptions) -> LoadReport {
    let fixtures = Fixtures::generate(opts.seed);
    eprintln!(
        "loadgen: baseline pass ({} worker(s), {} clients x {} requests) ...",
        opts.baseline_workers, opts.clients, opts.requests_per_client
    );
    let baseline = run_pass(opts.baseline_workers, opts, &fixtures);
    eprintln!(
        "loadgen: loaded pass ({} worker(s), same mix) ...",
        opts.workers
    );
    let loaded = run_pass(opts.workers, opts, &fixtures);

    let payloads_identical = baseline.payloads == loaded.payloads;
    let payload_digest = fnv1a64(&loaded.payloads);
    let (required, effective) = required_ratio(opts.workers);
    let ratio = if baseline.requests_per_sec > 0.0 {
        loaded.requests_per_sec / baseline.requests_per_sec
    } else {
        0.0
    };
    let gate = GateResult {
        baseline_rps: baseline.requests_per_sec,
        loaded_rps: loaded.requests_per_sec,
        ratio,
        effective_parallelism: effective,
        required_ratio: required,
        pass: ratio >= required && payloads_identical && baseline.errors == 0 && loaded.errors == 0,
    };
    LoadReport {
        options: opts.clone(),
        passes: vec![baseline, loaded],
        payloads_identical,
        payload_digest,
        gate,
    }
}

/// `Option` latency/width fields serialize as JSON `null` when absent
/// (an idle pass measured nothing; `0` would read as a measurement).
fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_owned(), |x| x.to_string())
}

fn pass_json(pass: &PassResult) -> String {
    format!(
        "    {{\"workers\": {}, \"requests\": {}, \"ok\": {}, \"errors\": {}, \
         \"elapsed_secs\": {:.4}, \"requests_per_sec\": {:.4}, \
         \"keygen\": {}, \"derive\": {}, \"validate\": {}, \
         \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \
         \"batches\": {}, \"batched_requests\": {}, \"mean_batch_width\": {}, \
         \"worker_completed\": [{}]}}",
        pass.workers,
        pass.requests,
        pass.ok,
        pass.errors,
        pass.elapsed_secs,
        pass.requests_per_sec,
        pass.stats.keygen,
        pass.stats.derive,
        pass.stats.validate,
        json_opt_u64(pass.stats.p50_us),
        json_opt_u64(pass.stats.p99_us),
        json_opt_u64(pass.stats.max_us),
        pass.stats.batches,
        pass.stats.batched_requests,
        pass.stats
            .mean_batch_width()
            .map_or_else(|| "null".to_owned(), |w| format!("{w:.3}")),
        pass.stats
            .worker_completed
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(", "),
    )
}

/// Serializes the whole report (see DESIGN.md §10 for the schema).
pub fn report_json(report: &LoadReport) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"schema\": \"mpise-loadgen/v1\",\n");
    out.push_str(&format!("  \"date\": \"{}\",\n", utc_date_string()));
    out.push_str(&format!(
        "  \"provenance\": {},\n",
        mpise_obs::Provenance::collect().json()
    ));
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if report.options.smoke {
            "smoke"
        } else {
            "full"
        }
    ));
    out.push_str(&format!(
        "  \"seed\": {},\n  \"clients\": {},\n  \"requests_per_client\": {},\n  \
         \"batch_lanes\": {},\n  \"host_parallelism\": {},\n",
        report.options.seed,
        report.options.clients,
        report.options.requests_per_client,
        report.options.batch_lanes,
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    ));
    out.push_str("  \"passes\": [\n");
    for (i, pass) in report.passes.iter().enumerate() {
        out.push_str(&pass_json(pass));
        out.push_str(if i + 1 < report.passes.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"payloads\": {{\"digest_fnv1a64\": \"{:#018x}\", \"bytes\": {}, \
         \"identical_across_passes\": {}}},\n",
        report.payload_digest,
        report.passes.last().map_or(0, |p| p.payloads.len()),
        report.payloads_identical,
    ));
    out.push_str(&format!(
        "  \"gate\": {{\"baseline_workers\": {}, \"loaded_workers\": {}, \
         \"baseline_rps\": {:.4}, \"loaded_rps\": {:.4}, \"ratio\": {:.4}, \
         \"effective_parallelism\": {}, \"required_ratio\": {:.2}, \"pass\": {}}}\n",
        report.options.baseline_workers,
        report.options.workers,
        report.gate.baseline_rps,
        report.gate.loaded_rps,
        report.gate.ratio,
        report.gate.effective_parallelism,
        report.gate.required_ratio,
        report.gate.pass,
    ));
    out.push_str("}\n");
    out
}

fn print_summary(report: &LoadReport) {
    for pass in &report.passes {
        println!(
            "pass with {} worker(s): {:.2} req/s ({} ok / {} requests, {:.2}s)",
            pass.workers, pass.requests_per_sec, pass.ok, pass.requests, pass.elapsed_secs
        );
        println!("{}", pass.stats);
    }
    println!(
        "payloads: {} bytes, digest {:#018x}, identical across passes: {}",
        report.passes.last().map_or(0, |p| p.payloads.len()),
        report.payload_digest,
        report.payloads_identical
    );
    println!(
        "gate: {:.2}x measured vs {:.2}x required (effective parallelism {})",
        report.gate.ratio, report.gate.required_ratio, report.gate.effective_parallelism
    );
}

/// Command-line entry point of the `loadgen` binaries; returns the
/// process exit code (0 = gate passed).
pub fn run_cli(args: &[String]) -> i32 {
    let mut opts = LoadgenOptions::default();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut parse_usize = |name: &str| -> Result<usize, i32> {
            iter.next().and_then(|v| v.parse().ok()).ok_or_else(|| {
                eprintln!("loadgen: {name} requires a positive integer");
                2
            })
        };
        match arg.as_str() {
            "--smoke" => {
                let keep = (
                    opts.out.take(),
                    opts.metrics_out.take(),
                    opts.obs_out.take(),
                );
                opts = LoadgenOptions::smoke();
                (opts.out, opts.metrics_out, opts.obs_out) = keep;
            }
            "--workers" => match parse_usize("--workers") {
                Ok(v) => opts.workers = v.max(1),
                Err(code) => return code,
            },
            "--baseline-workers" => match parse_usize("--baseline-workers") {
                Ok(v) => opts.baseline_workers = v.max(1),
                Err(code) => return code,
            },
            "--clients" => match parse_usize("--clients") {
                Ok(v) => opts.clients = v.max(1),
                Err(code) => return code,
            },
            "--requests" => match parse_usize("--requests") {
                Ok(v) => opts.requests_per_client = v.max(1),
                Err(code) => return code,
            },
            "--lanes" => match parse_usize("--lanes") {
                Ok(v) => opts.batch_lanes = v.max(1),
                Err(code) => return code,
            },
            "--seed" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(v) => opts.seed = v,
                None => {
                    eprintln!("loadgen: --seed requires an integer");
                    return 2;
                }
            },
            "--out" => match iter.next() {
                Some(path) => opts.out = Some(path.clone()),
                None => {
                    eprintln!("loadgen: --out requires a path");
                    return 2;
                }
            },
            "--metrics-out" => match iter.next() {
                Some(path) => opts.metrics_out = Some(path.clone()),
                None => {
                    eprintln!("loadgen: --metrics-out requires a path");
                    return 2;
                }
            },
            "--obs-out" => match iter.next() {
                Some(path) => opts.obs_out = Some(path.clone()),
                None => {
                    eprintln!("loadgen: --obs-out requires a path");
                    return 2;
                }
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: loadgen [--smoke] [--workers N] [--baseline-workers N] \
                     [--clients N] [--requests N] [--lanes N] [--seed N] [--out PATH] \
                     [--metrics-out PATH] [--obs-out PATH]\n\
                     \n\
                     Runs the deterministic client mix against a 1-worker baseline\n\
                     and an N-worker engine, writes LOAD_<utc-date>.json, and exits\n\
                     non-zero when the multi-worker throughput gate fails.\n\
                     --metrics-out / --obs-out (or MPISE_OBS=1) enable telemetry and\n\
                     dump the Prometheus text / mpise-obs/v1 JSON snapshot."
                );
                return 0;
            }
            other => {
                eprintln!("loadgen: unknown argument `{other}` (try --help)");
                return 2;
            }
        }
    }

    // Telemetry is opt-in: either output flag turns it on, and the
    // MPISE_OBS environment switch works even without a dump path.
    mpise_obs::enable_from_env();
    if opts.metrics_out.is_some() || opts.obs_out.is_some() {
        mpise_obs::set_enabled(true);
    }

    let report = run(&opts);
    print_summary(&report);

    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("LOAD_{}.json", utc_date_string()));
    if let Err(e) = std::fs::write(&path, report_json(&report)) {
        eprintln!("loadgen: failed to write {path}: {e}");
        return 2;
    }
    println!("\nwrote {path}");

    if mpise_obs::enabled() {
        if let Some(path) = &opts.metrics_out {
            if let Err(e) = std::fs::write(path, mpise_obs::global().render_prometheus()) {
                eprintln!("loadgen: failed to write {path}: {e}");
                return 2;
            }
            println!("wrote {path} (Prometheus text)");
        }
        if let Some(path) = &opts.obs_out {
            let mut spans = mpise_obs::SpanTree::default();
            for pass in &report.passes {
                spans.merge(pass.spans.clone());
            }
            let snapshot = mpise_obs::Snapshot::capture_with_spans(spans);
            if let Err(e) = std::fs::write(path, snapshot.to_json()) {
                eprintln!("loadgen: failed to write {path}: {e}");
                return 2;
            }
            println!("wrote {path} (mpise-obs/v1 snapshot)");
        }
    }

    if report.gate.pass {
        println!("gate: multi-worker throughput and payload determinism — PASS");
        0
    } else {
        println!(
            "gate: FAIL — ratio {:.2} (required {:.2}), payloads identical: {}",
            report.gate.ratio, report.gate.required_ratio, report.payloads_identical
        );
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_stream_is_stable() {
        // Pin the SplitMix64 stream: the request mix (and therefore
        // the golden payload digests) depends on it.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn plan_covers_every_request_kind() {
        let fixtures = Fixtures {
            valid1: PublicKey::BASE,
            valid2: PublicKey::BASE,
            bogus: PublicKey { a: U512::ONE },
            sparse: PrivateKey {
                exponents: [0; NUM_PRIMES],
            },
        };
        let mut kinds = [false; 3];
        for i in 0..64 {
            match plan_request(LOADGEN_SEED, 0, i, &fixtures, false).1 {
                Request::ValidatePublicKey { .. } => kinds[0] = true,
                Request::DeriveSharedSecret { .. } => kinds[1] = true,
                Request::Keygen { .. } => kinds[2] = true,
            }
        }
        assert_eq!(kinds, [true; 3], "mix exercises all request kinds");
        // Smoke mode avoids keygen.
        for i in 0..64 {
            assert!(!matches!(
                plan_request(LOADGEN_SEED, 0, i, &fixtures, true).1,
                Request::Keygen { .. }
            ));
        }
    }

    #[test]
    fn required_ratio_scales_with_parallelism() {
        let (r, eff) = required_ratio(1);
        assert_eq!(eff, 1);
        assert!((r - 0.75).abs() < 1e-9);
        let (r4, eff4) = required_ratio(4);
        assert!(eff4 >= 1);
        assert!((0.75..=2.0).contains(&r4));
    }

    #[test]
    fn fnv_digest_vectors() {
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
    }
}
