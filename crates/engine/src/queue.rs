//! The bounded submission queue under the worker pool.
//!
//! A plain `Mutex<VecDeque> + Condvar` multi-producer/multi-consumer
//! channel with three properties the engine needs that `std::sync::
//! mpsc` does not provide:
//!
//! * **bounded with blocking producers** — clients exert back-pressure
//!   instead of growing an unbounded backlog;
//! * **close-then-drain** — [`Bounded::close`] refuses new items but
//!   lets consumers pop everything already queued (graceful-drain
//!   shutdown: no submitted request is ever dropped);
//! * **front batching** — [`Bounded::drain_front_matching`] lets a
//!   worker opportunistically take a run of batchable requests from
//!   the front of the queue without blocking or reordering.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a non-blocking push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue was closed; the item is handed back.
    Closed(T),
    /// The queue was at capacity; the item is handed back.
    Full(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded, closable MPMC queue.
pub struct Bounded<T> {
    capacity: usize,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Bounded<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero (a zero-capacity queue would
    /// deadlock every producer).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Bounded {
            capacity,
            inner: Mutex::new(Inner {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Enqueues an item, blocking while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the item back when the queue is (or becomes) closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).expect("queue lock");
        }
    }

    /// Enqueues an item without blocking.
    ///
    /// # Errors
    ///
    /// [`TryPushError::Closed`] after [`Bounded::close`],
    /// [`TryPushError::Full`] at capacity; the item is handed back in
    /// both cases.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(TryPushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        inner.items.push_back(item);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the front item, blocking while the queue is empty and
    /// open. Returns `None` only when the queue is closed **and**
    /// fully drained — consumers see every item that was accepted.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.not_empty.wait(inner).expect("queue lock");
        }
    }

    /// Takes up to `max` additional items from the front while they
    /// satisfy `pred`, without blocking or skipping over non-matching
    /// items (batching never reorders the queue).
    pub fn drain_front_matching(&self, max: usize, pred: impl Fn(&T) -> bool) -> Vec<T> {
        let mut inner = self.inner.lock().expect("queue lock");
        let mut out = Vec::new();
        while out.len() < max {
            match inner.items.front() {
                Some(front) if pred(front) => {
                    out.push(inner.items.pop_front().expect("front exists"));
                }
                _ => break,
            }
        }
        if !out.is_empty() {
            self.not_full.notify_all();
        }
        out
    }

    /// Closes the queue: every subsequent push fails, every blocked
    /// producer wakes with an error, and consumers drain what remains.
    /// Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().expect("queue lock");
        inner.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`Bounded::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("queue lock").closed
    }

    /// Items currently queued (not yet claimed by a worker).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = Bounded::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
    }

    #[test]
    fn push_after_close_returns_the_item() {
        let q = Bounded::new(2);
        q.push(1).unwrap();
        q.close();
        assert_eq!(q.push(2), Err(2));
        assert_eq!(q.try_push(3), Err(TryPushError::Closed(3)));
        // The accepted item is still drained.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn try_push_full() {
        let q = Bounded::new(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(TryPushError::Full(2)));
    }

    #[test]
    fn drain_front_matching_stops_at_first_mismatch() {
        let q = Bounded::new(8);
        for i in [2, 4, 6, 7, 8] {
            q.push(i).unwrap();
        }
        let even = q.drain_front_matching(10, |x| x % 2 == 0);
        assert_eq!(even, vec![2, 4, 6]);
        // 8 stays behind 7: batching never reorders.
        assert_eq!(q.pop(), Some(7));
        assert_eq!(q.pop(), Some(8));
    }

    #[test]
    fn drain_front_matching_respects_max() {
        let q = Bounded::new(8);
        for i in 0..6 {
            q.push(i).unwrap();
        }
        assert_eq!(q.drain_front_matching(2, |_| true), vec![0, 1]);
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn blocked_producer_wakes_on_close() {
        let q = Arc::new(Bounded::new(1));
        q.push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(1));
        // Give the producer time to block on the full queue.
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        assert_eq!(producer.join().unwrap(), Err(1));
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(1));
        let q2 = Arc::clone(&q);
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }
}
