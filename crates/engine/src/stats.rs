//! Engine observability: operation counters and latency percentiles.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Shared mutable counters behind the engine (relaxed atomics; the
/// latency reservoir is a mutex because percentile extraction needs
/// the whole population).
pub(crate) struct StatsInner {
    pub(crate) started: Instant,
    pub(crate) submitted: AtomicU64,
    pub(crate) rejected: AtomicU64,
    pub(crate) keygen: AtomicU64,
    pub(crate) derive: AtomicU64,
    pub(crate) validate: AtomicU64,
    pub(crate) expired: AtomicU64,
    pub(crate) cancelled: AtomicU64,
    pub(crate) batches: AtomicU64,
    pub(crate) batched_requests: AtomicU64,
    /// Jobs answered per worker, indexed by worker id.
    pub(crate) worker_completed: Vec<AtomicU64>,
    pub(crate) latencies_us: Mutex<Vec<u64>>,
    /// Telemetry span trees handed in by exiting workers (spans are
    /// thread-local, so each worker merges its tree here on shutdown).
    pub(crate) spans: Mutex<mpise_obs::SpanTree>,
}

impl StatsInner {
    pub(crate) fn new(workers: usize) -> Self {
        StatsInner {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            keygen: AtomicU64::new(0),
            derive: AtomicU64::new(0),
            validate: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
            worker_completed: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            latencies_us: Mutex::new(Vec::new()),
            spans: Mutex::new(mpise_obs::SpanTree::default()),
        }
    }

    pub(crate) fn record_latency(&self, micros: u64) {
        self.latencies_us.lock().expect("stats lock").push(micros);
    }

    /// A copy of the retained latency population (microseconds).
    pub(crate) fn latencies(&self) -> Vec<u64> {
        self.latencies_us.lock().expect("stats lock").clone()
    }

    pub(crate) fn snapshot(&self, queue_depth: usize) -> EngineStats {
        let latencies = self.latencies_us.lock().expect("stats lock").clone();
        let completed = self.keygen.load(Ordering::Relaxed)
            + self.derive.load(Ordering::Relaxed)
            + self.validate.load(Ordering::Relaxed);
        let elapsed_secs = self.started.elapsed().as_secs_f64();
        EngineStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            keygen: self.keygen.load(Ordering::Relaxed),
            derive: self.derive.load(Ordering::Relaxed),
            validate: self.validate.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            worker_completed: self
                .worker_completed
                .iter()
                .map(|w| w.load(Ordering::Relaxed))
                .collect(),
            queue_depth,
            p50_us: percentile(&latencies, 50.0),
            p99_us: percentile(&latencies, 99.0),
            max_us: latencies.iter().copied().max(),
            elapsed_secs,
            throughput_rps: if elapsed_secs > 0.0 {
                completed as f64 / elapsed_secs
            } else {
                0.0
            },
        }
    }
}

/// Nearest-rank percentile over the recorded latencies (`None` when the
/// series is empty — an idle engine has no latency, not a zero one).
fn percentile(samples: &[u64], pct: f64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

/// A point-in-time snapshot of the engine's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Submissions refused (queue closed or full on `try_submit`).
    pub rejected: u64,
    /// Requests answered with an outcome (`keygen + derive + validate`).
    pub completed: u64,
    /// Completed key generations.
    pub keygen: u64,
    /// Completed shared-secret derivations.
    pub derive: u64,
    /// Completed public-key validations.
    pub validate: u64,
    /// Requests that missed their deadline before a worker took them.
    pub expired: u64,
    /// Requests cancelled before a worker took them.
    pub cancelled: u64,
    /// Validation batches executed on the lane-parallel path
    /// (including width-1 batches).
    pub batches: u64,
    /// Validation requests served through those batches.
    pub batched_requests: u64,
    /// Jobs answered per worker, indexed by worker id. Refusals count
    /// too, so the entries sum to `completed + expired + cancelled`.
    pub worker_completed: Vec<u64>,
    /// Requests queued but not yet claimed at snapshot time.
    pub queue_depth: usize,
    /// Median submit-to-response latency (microseconds); `None` until a
    /// first response exists.
    pub p50_us: Option<u64>,
    /// 99th-percentile submit-to-response latency (microseconds);
    /// `None` until a first response exists.
    pub p99_us: Option<u64>,
    /// Worst-case submit-to-response latency (microseconds); `None`
    /// until a first response exists.
    pub max_us: Option<u64>,
    /// Seconds since the engine started.
    pub elapsed_secs: f64,
    /// Completed requests per second since the engine started.
    pub throughput_rps: f64,
}

impl EngineStats {
    /// Mean lanes per validation batch; `None` on an idle engine (no
    /// batches ran, so there is no width to report — the old `1.0`
    /// placeholder read as a measured value).
    pub fn mean_batch_width(&self) -> Option<f64> {
        if self.batches == 0 {
            None
        } else {
            Some(self.batched_requests as f64 / self.batches as f64)
        }
    }
}

impl std::fmt::Display for EngineStats {
    fn fmt(&self, out: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            out,
            "requests: {} submitted, {} completed ({} keygen, {} derive, {} validate)",
            self.submitted, self.completed, self.keygen, self.derive, self.validate
        )?;
        writeln!(
            out,
            "dropped:  {} rejected, {} expired, {} cancelled; queue depth {}",
            self.rejected, self.expired, self.cancelled, self.queue_depth
        )?;
        match self.mean_batch_width() {
            Some(w) => writeln!(
                out,
                "batching: {} batches over {} validations (mean width {w:.2})",
                self.batches, self.batched_requests
            )?,
            None => writeln!(out, "batching: none")?,
        }
        let ms = |v: Option<u64>| match v {
            Some(us) => format!("{:.3} ms", us as f64 / 1e3),
            None => "n/a".to_owned(),
        };
        write!(
            out,
            "latency:  p50 {}, p99 {}, max {}; throughput {:.2} req/s over {:.2} s",
            ms(self.p50_us),
            ms(self.p99_us),
            ms(self.max_us),
            self.throughput_rps,
            self.elapsed_secs
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let samples: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&samples, 50.0), Some(50));
        assert_eq!(percentile(&samples, 99.0), Some(99));
        assert_eq!(percentile(&samples, 100.0), Some(100));
        assert_eq!(percentile(&[42], 50.0), Some(42));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn snapshot_aggregates() {
        let s = StatsInner::new(2);
        s.keygen.store(2, Ordering::Relaxed);
        s.validate.store(3, Ordering::Relaxed);
        s.record_latency(1000);
        s.record_latency(3000);
        let snap = s.snapshot(7);
        assert_eq!(snap.completed, 5);
        assert_eq!(snap.queue_depth, 7);
        assert_eq!(snap.p50_us, Some(1000));
        assert_eq!(snap.p99_us, Some(3000));
        assert!(snap.throughput_rps > 0.0);
    }

    #[test]
    fn idle_engine_reports_no_latency_or_batch_width() {
        // Regression: an idle engine used to report p50 = p99 = max = 0
        // and a fabricated mean batch width of 1.0, indistinguishable
        // from real measurements of a fast engine.
        let s = StatsInner::new(2);
        let snap = s.snapshot(0);
        assert_eq!(snap.p50_us, None);
        assert_eq!(snap.p99_us, None);
        assert_eq!(snap.max_us, None);
        assert_eq!(snap.mean_batch_width(), None);
        assert_eq!(snap.completed, 0);
        let text = snap.to_string();
        assert!(text.contains("batching: none"));
        assert!(text.contains("p50 n/a"));
    }

    #[test]
    fn batch_width_mean() {
        let s = StatsInner::new(1);
        s.batches.store(4, Ordering::Relaxed);
        s.batched_requests.store(10, Ordering::Relaxed);
        assert_eq!(s.snapshot(0).mean_batch_width(), Some(2.5));
    }

    #[test]
    fn display_is_stable() {
        let s = StatsInner::new(1);
        let text = s.snapshot(0).to_string();
        assert!(text.contains("requests:"));
        assert!(text.contains("latency:"));
    }
}
