//! Engine determinism: two loadgen passes with the same seed must
//! produce byte-identical result payloads, regardless of worker count
//! or batch composition.

use mpise_csidh::{PrivateKey, PublicKey};
use mpise_engine::loadgen::{run_pass, Fixtures, LoadgenOptions};
use mpise_fp::params::NUM_PRIMES;
use mpise_mpi::U512;

/// Debug-speed fixtures: the base curve is a genuine supersingular
/// validation target, `a = 1` an ordinary reject, and a zero exponent
/// vector makes derivations the identity action (no isogenies).
fn fixtures() -> Fixtures {
    Fixtures {
        valid1: PublicKey::BASE,
        valid2: PublicKey::BASE,
        bogus: PublicKey { a: U512::ONE },
        sparse: PrivateKey {
            exponents: [0; NUM_PRIMES],
        },
    }
}

fn options() -> LoadgenOptions {
    LoadgenOptions {
        workers: 2,
        clients: 2,
        requests_per_client: 2,
        batch_lanes: 4,
        seed: 0xD00D,
        smoke: true,
        ..Default::default()
    }
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let opts = options();
    let fixtures = fixtures();
    let first = run_pass(opts.workers, &opts, &fixtures);
    let second = run_pass(opts.workers, &opts, &fixtures);
    assert_eq!(first.errors, 0);
    assert_eq!(second.errors, 0);
    assert!(!first.payloads.is_empty(), "mix produced result payloads");
    assert_eq!(
        first.payloads, second.payloads,
        "same seed, same payload bytes"
    );
}

#[test]
fn worker_count_does_not_change_payloads() {
    let opts = options();
    let fixtures = fixtures();
    let single = run_pass(1, &opts, &fixtures);
    let multi = run_pass(opts.workers, &opts, &fixtures);
    assert_eq!(
        single.payloads, multi.payloads,
        "payloads depend only on (seed, request), never on scheduling"
    );
}

#[test]
fn different_seeds_change_the_request_stream() {
    let fixtures = fixtures();
    let opts_a = options();
    let opts_b = LoadgenOptions {
        seed: 0xBEEF,
        ..options()
    };
    let a = run_pass(1, &opts_a, &fixtures);
    let b = run_pass(1, &opts_b, &fixtures);
    // With every fixture pointing at only two distinct keys the
    // payloads can coincide, but the per-request seeds cannot: the
    // plan stream itself must differ.
    use mpise_engine::loadgen::plan_request;
    let seeds_a: Vec<u64> = (0..4)
        .map(|i| plan_request(opts_a.seed, 0, i, &fixtures, true).0)
        .collect();
    let seeds_b: Vec<u64> = (0..4)
        .map(|i| plan_request(opts_b.seed, 0, i, &fixtures, true).0)
        .collect();
    assert_ne!(seeds_a, seeds_b, "seed streams diverge");
    assert_eq!(a.errors + b.errors, 0);
}
