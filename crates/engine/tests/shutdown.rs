//! Queue-shutdown edge cases: graceful drain, post-shutdown
//! submissions, cancellation, and idempotence.

use mpise_csidh::PublicKey;
use mpise_engine::{Engine, EngineConfig, EngineError, Outcome, Request};
use mpise_fp::FpFull;
use mpise_mpi::U512;

/// A = 2 is singular, so validation rejects it before any field
/// arithmetic — near-instant even in debug builds.
fn bogus_key() -> PublicKey {
    PublicKey {
        a: U512::from_u64(2),
    }
}

#[test]
fn submit_after_shutdown_returns_error_without_panicking() {
    let engine = Engine::start(
        EngineConfig {
            workers: 1,
            ..Default::default()
        },
        FpFull::new,
    );
    engine.shutdown();
    assert!(engine.is_shut_down());

    let req = Request::ValidatePublicKey { key: bogus_key() };
    assert_eq!(
        engine.submit(1, req, None).map(|_| ()),
        Err(EngineError::ShutDown)
    );
    assert_eq!(
        engine.try_submit(2, req, None).map(|_| ()),
        Err(EngineError::ShutDown)
    );

    let stats = engine.stats();
    assert_eq!(stats.submitted, 0);
    assert_eq!(stats.rejected, 2);
}

#[test]
fn inflight_requests_complete_during_drain() {
    let engine = Engine::start(
        EngineConfig {
            workers: 1,
            batch_lanes: 1,
            ..Default::default()
        },
        FpFull::new,
    );

    // One slow request (a genuine supersingular validation) keeps the
    // single worker busy while four cheap ones queue up behind it.
    let mut tickets = vec![engine
        .submit(
            0,
            Request::ValidatePublicKey {
                key: PublicKey::BASE,
            },
            None,
        )
        .unwrap()];
    for seed in 1..5 {
        tickets.push(
            engine
                .submit(seed, Request::ValidatePublicKey { key: bogus_key() }, None)
                .unwrap(),
        );
    }

    // Close-then-drain: shutdown refuses new work but every accepted
    // request must still be answered.
    engine.shutdown();

    let mut verdicts = Vec::new();
    for ticket in tickets {
        match ticket.wait() {
            Ok(Outcome::Validated(v)) => verdicts.push(v),
            other => panic!("expected a verdict, got {other:?}"),
        }
    }
    assert_eq!(verdicts, vec![true, false, false, false, false]);

    let stats = engine.stats();
    assert_eq!(stats.submitted, 5);
    assert_eq!(stats.completed, 5);
    assert_eq!(stats.queue_depth, 0, "drain leaves nothing queued");
}

#[test]
fn cancelled_ticket_is_refused_at_claim_time() {
    let engine = Engine::start(
        EngineConfig {
            workers: 1,
            batch_lanes: 1,
            ..Default::default()
        },
        FpFull::new,
    );

    // Occupy the worker with a slow validation, then cancel a queued
    // request before the worker can claim it.
    let busy = engine
        .submit(
            0,
            Request::ValidatePublicKey {
                key: PublicKey::BASE,
            },
            None,
        )
        .unwrap();
    let doomed = engine
        .submit(1, Request::ValidatePublicKey { key: bogus_key() }, None)
        .unwrap();
    doomed.cancel();

    assert_eq!(busy.wait(), Ok(Outcome::Validated(true)));
    assert_eq!(doomed.wait(), Err(EngineError::Cancelled));
    assert_eq!(engine.stats().cancelled, 1);
    engine.shutdown();
}

#[test]
fn shutdown_is_idempotent() {
    let engine = Engine::start(
        EngineConfig {
            workers: 2,
            ..Default::default()
        },
        FpFull::new,
    );
    engine.shutdown();
    engine.shutdown();
    assert!(engine.is_shut_down());
    // Drop runs shutdown a third time; it must not panic or hang.
}
