//! The field-backend abstraction and the two host-speed backends.
//!
//! The CSIDH layers above (`mpise-csidh`) are generic over [`Fp`], so
//! the same high-level code runs on:
//!
//! * [`FpFull`] — full-radix (radix-2^64) Montgomery arithmetic,
//! * [`FpRed`] — reduced-radix (radix-2^57) Montgomery arithmetic,
//! * [`crate::simfp::SimFp`] — either of the above executed
//!   instruction-by-instruction on the Rocket simulator,
//!
//! mirroring how the paper swaps constant-time assembler field routines
//! beneath an unchanged C implementation of the protocol (§4).
//!
//! [`CountingFp`] wraps any backend and counts field operations; the
//! group-action cycle estimates multiply those counts by the per-op
//! cycle costs measured on the simulator.

use crate::params::{Csidh512, FULL_LIMBS, RED_LIMBS};
use mpise_mpi::{fast, Reduced, U512};
use std::fmt::Debug;
use std::sync::atomic::{AtomicU64, Ordering};

/// A prime-field backend for the CSIDH-512 field.
///
/// Elements are opaque; values cross the boundary as canonical
/// [`U512`] integers in `[0, p − 1]`. All operations are total on
/// canonical elements.
#[allow(clippy::wrong_self_convention)] // from_uint is a conversion *into* the field
pub trait Fp {
    /// The element representation.
    type Elem: Copy + Clone + PartialEq + Debug;

    /// The additive identity.
    fn zero(&self) -> Self::Elem;

    /// The multiplicative identity.
    fn one(&self) -> Self::Elem;

    /// Imports an integer (reduced modulo `p` if necessary).
    fn from_uint(&self, v: &U512) -> Self::Elem;

    /// Exports the canonical integer value in `[0, p − 1]`.
    fn to_uint(&self, a: &Self::Elem) -> U512;

    /// Field addition.
    fn add(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Field subtraction.
    fn sub(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Field multiplication.
    fn mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Field squaring.
    fn sqr(&self, a: &Self::Elem) -> Self::Elem;

    /// Field negation.
    fn neg(&self, a: &Self::Elem) -> Self::Elem {
        self.sub(&self.zero(), a)
    }

    /// Whether `a` is zero.
    fn is_zero(&self, a: &Self::Elem) -> bool;

    /// Branch-free select: returns `a` when `mask` is all-ones, `b`
    /// when `mask` is zero (used by the constant-time group action's
    /// dummy-isogeny bookkeeping).
    fn select(&self, mask: u64, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;

    /// Fixed-exponent power: the operation sequence depends only on
    /// `exp.bit_length()` (all exponents used by CSIDH are public,
    /// `p`-derived constants).
    fn pow(&self, base: &Self::Elem, exp: &U512) -> Self::Elem {
        let mut acc = self.one();
        for i in (0..exp.bit_length() as usize).rev() {
            acc = self.sqr(&acc);
            if exp.bit(i) == 1 {
                acc = self.mul(&acc, base);
            }
        }
        acc
    }

    /// Multiplicative inverse by Fermat's little theorem
    /// (`a^(p−2) mod p`); returns zero for zero.
    fn inv(&self, a: &Self::Elem) -> Self::Elem {
        self.pow(a, &Csidh512::get().p_minus_2)
    }

    /// Legendre symbol: `1` for a nonzero square, `-1` for a
    /// non-square, `0` for zero. Computed as `a^((p−1)/2)`.
    fn legendre(&self, a: &Self::Elem) -> i32 {
        if self.is_zero(a) {
            return 0;
        }
        let r = self.pow(a, &Csidh512::get().p_minus_1_half);
        if r == self.one() {
            1
        } else {
            -1
        }
    }

    /// Square root for `p ≡ 3 (mod 4)`: `a^((p+1)/4)`. Returns `None`
    /// for non-squares. Which of the two roots is returned is
    /// unspecified.
    fn sqrt(&self, a: &Self::Elem) -> Option<Self::Elem> {
        if self.is_zero(a) {
            return Some(self.zero());
        }
        // (p+1)/4 = ∏ℓᵢ (CSIDH-512: p + 1 = 4·∏ℓᵢ).
        let r = self.pow(a, &Csidh512::get().p_plus_1_quarter);
        if self.sqr(&r) == *a {
            Some(r)
        } else {
            None
        }
    }
}

/// Full-radix host backend: 8 × 64-bit digits, Montgomery domain
/// (§3.1, "full-radix implementation").
///
/// # Examples
///
/// ```
/// use mpise_fp::{Fp, FpFull};
/// use mpise_mpi::U512;
/// let f = FpFull::new();
/// let a = f.from_uint(&U512::from_u64(3));
/// let b = f.from_uint(&U512::from_u64(5));
/// assert_eq!(f.to_uint(&f.mul(&a, &b)), U512::from_u64(15));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FpFull;

impl FpFull {
    /// Creates the backend (parameters are process-wide).
    pub fn new() -> Self {
        FpFull
    }
}

impl Fp for FpFull {
    type Elem = U512;

    fn zero(&self) -> U512 {
        U512::ZERO
    }

    fn one(&self) -> U512 {
        *Csidh512::get().mont.one()
    }

    fn from_uint(&self, v: &U512) -> U512 {
        Csidh512::get().mont.to_mont(v)
    }

    fn to_uint(&self, a: &U512) -> U512 {
        Csidh512::get().mont.from_mont(a)
    }

    fn add(&self, a: &U512, b: &U512) -> U512 {
        fast::mod_add(a, b, &Csidh512::get().p)
    }

    fn sub(&self, a: &U512, b: &U512) -> U512 {
        fast::mod_sub(a, b, &Csidh512::get().p)
    }

    fn mul(&self, a: &U512, b: &U512) -> U512 {
        Csidh512::get().mont.mul(a, b)
    }

    fn sqr(&self, a: &U512) -> U512 {
        Csidh512::get().mont.sqr(a)
    }

    fn is_zero(&self, a: &U512) -> bool {
        a.is_zero()
    }

    fn select(&self, mask: u64, a: &U512, b: &U512) -> U512 {
        let mut out = [0u64; FULL_LIMBS];
        mpise_mpi::ct::select_limbs(mask, a.limbs(), b.limbs(), &mut out);
        U512::from_limbs(out)
    }
}

/// Reduced-radix host backend: 9 × 57-bit limbs, Montgomery domain
/// (§3.1, "reduced-radix implementation"; radix 2^57).
///
/// # Examples
///
/// ```
/// use mpise_fp::{Fp, FpRed};
/// use mpise_mpi::U512;
/// let f = FpRed::new();
/// let a = f.from_uint(&U512::from_u64(7));
/// assert_eq!(f.to_uint(&f.sqr(&a)), U512::from_u64(49));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FpRed;

impl FpRed {
    /// Creates the backend (parameters are process-wide).
    pub fn new() -> Self {
        FpRed
    }
}

impl Fp for FpRed {
    type Elem = Reduced<RED_LIMBS>;

    fn zero(&self) -> Self::Elem {
        Reduced::ZERO
    }

    fn one(&self) -> Self::Elem {
        *Csidh512::get().mont57.one()
    }

    fn from_uint(&self, v: &U512) -> Self::Elem {
        Csidh512::get().mont57.to_mont(&Reduced::from_uint(v))
    }

    fn to_uint(&self, a: &Self::Elem) -> U512 {
        Csidh512::get().mont57.from_mont(a).to_uint::<FULL_LIMBS>()
    }

    fn add(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        Csidh512::get().mont57.add(a, b)
    }

    fn sub(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        Csidh512::get().mont57.sub(a, b)
    }

    fn mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        Csidh512::get().mont57.mul(a, b)
    }

    fn sqr(&self, a: &Self::Elem) -> Self::Elem {
        Csidh512::get().mont57.sqr(a)
    }

    fn is_zero(&self, a: &Self::Elem) -> bool {
        a.is_zero()
    }

    fn select(&self, mask: u64, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        let mut out = [0u64; RED_LIMBS];
        mpise_mpi::ct::select_limbs(mask, a.limbs(), b.limbs(), &mut out);
        Reduced::from_limbs(out)
    }
}

/// Counters for the field operations performed through a
/// [`CountingFp`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Additions (including those inside `neg`).
    pub add: u64,
    /// Subtractions.
    pub sub: u64,
    /// Multiplications (including those inside `pow`/`inv`/`legendre`).
    pub mul: u64,
    /// Squarings.
    pub sqr: u64,
}

impl OpCounts {
    /// Total of all counted operations.
    pub fn total(&self) -> u64 {
        self.add + self.sub + self.mul + self.sqr
    }
}

/// An [`Fp`] adapter that counts every field operation.
///
/// `pow`, `inv` and `legendre` are provided methods implemented in
/// terms of `mul`/`sqr`, so their inner operations are counted too —
/// exactly what the group-action cycle estimate needs.
///
/// Counters are relaxed [`AtomicU64`]s, so one wrapper can be shared
/// (by reference or `Arc`) across the engine's worker threads; the
/// counts are exact because every increment is atomic, and relaxed
/// ordering suffices because nothing synchronises *through* the
/// counters — they are read after the workers are joined.
///
/// # Examples
///
/// ```
/// use mpise_fp::{CountingFp, Fp, FpFull};
/// use mpise_mpi::U512;
/// let f = CountingFp::new(FpFull::new());
/// let a = f.from_uint(&U512::from_u64(2));
/// let _ = f.mul(&a, &a);
/// let _ = f.add(&a, &a);
/// assert_eq!(f.counts().mul, 1);
/// assert_eq!(f.counts().add, 1);
/// ```
#[derive(Debug, Default)]
pub struct CountingFp<F> {
    inner: F,
    add: AtomicU64,
    sub: AtomicU64,
    mul: AtomicU64,
    sqr: AtomicU64,
}

impl<F: Clone> Clone for CountingFp<F> {
    /// Clones the backend and a snapshot of the current counts.
    fn clone(&self) -> Self {
        let c = self.counts();
        CountingFp {
            inner: self.inner.clone(),
            add: AtomicU64::new(c.add),
            sub: AtomicU64::new(c.sub),
            mul: AtomicU64::new(c.mul),
            sqr: AtomicU64::new(c.sqr),
        }
    }
}

impl<F> CountingFp<F> {
    /// Wraps a backend.
    pub fn new(inner: F) -> Self {
        CountingFp {
            inner,
            add: AtomicU64::new(0),
            sub: AtomicU64::new(0),
            mul: AtomicU64::new(0),
            sqr: AtomicU64::new(0),
        }
    }

    /// The counts so far.
    pub fn counts(&self) -> OpCounts {
        OpCounts {
            add: self.add.load(Ordering::Relaxed),
            sub: self.sub.load(Ordering::Relaxed),
            mul: self.mul.load(Ordering::Relaxed),
            sqr: self.sqr.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero.
    pub fn reset(&self) {
        self.add.store(0, Ordering::Relaxed);
        self.sub.store(0, Ordering::Relaxed);
        self.mul.store(0, Ordering::Relaxed);
        self.sqr.store(0, Ordering::Relaxed);
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &F {
        &self.inner
    }

    pub(crate) fn counter_add(&self) -> &AtomicU64 {
        &self.add
    }

    pub(crate) fn counter_sub(&self) -> &AtomicU64 {
        &self.sub
    }

    pub(crate) fn counter_mul(&self) -> &AtomicU64 {
        &self.mul
    }

    pub(crate) fn counter_sqr(&self) -> &AtomicU64 {
        &self.sqr
    }
}

impl<F: Fp> Fp for CountingFp<F> {
    type Elem = F::Elem;

    fn zero(&self) -> Self::Elem {
        self.inner.zero()
    }

    fn one(&self) -> Self::Elem {
        self.inner.one()
    }

    fn from_uint(&self, v: &U512) -> Self::Elem {
        self.inner.from_uint(v)
    }

    fn to_uint(&self, a: &Self::Elem) -> U512 {
        self.inner.to_uint(a)
    }

    fn add(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.add.fetch_add(1, Ordering::Relaxed);
        self.inner.add(a, b)
    }

    fn sub(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.sub.fetch_add(1, Ordering::Relaxed);
        self.inner.sub(a, b)
    }

    fn mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.mul.fetch_add(1, Ordering::Relaxed);
        self.inner.mul(a, b)
    }

    fn sqr(&self, a: &Self::Elem) -> Self::Elem {
        self.sqr.fetch_add(1, Ordering::Relaxed);
        self.inner.sqr(a)
    }

    fn is_zero(&self, a: &Self::Elem) -> bool {
        self.inner.is_zero(a)
    }

    fn select(&self, mask: u64, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.inner.select(mask, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpise_mpi::reference::RefInt;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_u512(rng: &mut StdRng) -> U512 {
        U512::from_limbs(std::array::from_fn(|_| rng.gen()))
    }

    fn ref_p() -> RefInt {
        RefInt::from_limbs(Csidh512::get().p.limbs())
    }

    fn check_backend<F: Fp>(f: &F) {
        let mut rng = StdRng::seed_from_u64(42);
        let rp = ref_p();
        for _ in 0..10 {
            let av = random_u512(&mut rng);
            let bv = random_u512(&mut rng);
            let ra = RefInt::from_limbs(av.limbs()).rem(&rp);
            let rb = RefInt::from_limbs(bv.limbs()).rem(&rp);
            let a = f.from_uint(&av);
            let b = f.from_uint(&bv);

            // mul
            let got = f.to_uint(&f.mul(&a, &b));
            assert_eq!(got.limbs().to_vec(), ra.mulmod(&rb, &rp).to_limbs(8));
            // sqr == mul self
            assert_eq!(f.sqr(&a), f.mul(&a, &a));
            // add/sub round trip
            let s = f.add(&a, &b);
            assert_eq!(f.to_uint(&f.sub(&s, &b)), f.to_uint(&a));
            // neg
            assert!(f.is_zero(&f.add(&a, &f.neg(&a))));
        }
    }

    #[test]
    fn full_backend_against_reference() {
        check_backend(&FpFull::new());
    }

    #[test]
    fn red_backend_against_reference() {
        check_backend(&FpRed::new());
    }

    #[test]
    fn backends_agree_with_each_other() {
        let mut rng = StdRng::seed_from_u64(7);
        let full = FpFull::new();
        let red = FpRed::new();
        for _ in 0..10 {
            let av = random_u512(&mut rng);
            let bv = random_u512(&mut rng);
            let f1 = full.to_uint(&full.mul(&full.from_uint(&av), &full.from_uint(&bv)));
            let f2 = red.to_uint(&red.mul(&red.from_uint(&av), &red.from_uint(&bv)));
            assert_eq!(f1, f2);
        }
    }

    #[test]
    fn inversion() {
        let f = FpFull::new();
        let a = f.from_uint(&U512::from_u64(12345));
        let ai = f.inv(&a);
        assert_eq!(f.to_uint(&f.mul(&a, &ai)), U512::ONE);
        assert!(f.is_zero(&f.inv(&f.zero())));
    }

    #[test]
    fn legendre_symbol() {
        let f = FpFull::new();
        // 4 = 2² is always a QR; check -1 characterization via count.
        let four = f.from_uint(&U512::from_u64(4));
        assert_eq!(f.legendre(&four), 1);
        assert_eq!(f.legendre(&f.zero()), 0);
        // A known square times a known square is a square; a nonsquare
        // exists (p ≡ 3 mod 4 means -1 is a nonsquare).
        let m1 = f.neg(&f.one());
        assert_eq!(f.legendre(&m1), -1, "-1 is a non-square for p ≡ 3 mod 4");
        // Squares map to 1 for random elements.
        let mut rng = StdRng::seed_from_u64(3);
        let x = f.from_uint(&random_u512(&mut rng));
        assert_eq!(f.legendre(&f.sqr(&x)), 1);
    }

    #[test]
    fn sqrt_of_squares() {
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..5 {
            let f = FpFull::new();
            let x = f.from_uint(&random_u512(&mut rng));
            let sq = f.sqr(&x);
            let r = f.sqrt(&sq).expect("a square has a root");
            assert!(f.sqr(&r) == sq);
            // root is ±x
            assert!(r == x || r == f.neg(&x));
        }
        let f = FpRed::new();
        let nine = f.from_uint(&U512::from_u64(9));
        let r = f.sqrt(&nine).unwrap();
        let r = f.to_uint(&r);
        let p = Csidh512::get().p;
        assert!(r == U512::from_u64(3) || r == p.wrapping_sub(&U512::from_u64(3)));
        // -1 is a non-square for p ≡ 3 mod 4.
        assert!(f.sqrt(&f.neg(&f.one())).is_none());
        assert!(f.is_zero(&f.sqrt(&f.zero()).unwrap()));
    }

    #[test]
    fn select_is_branch_free_choice() {
        let f = FpFull::new();
        let a = f.from_uint(&U512::from_u64(5));
        let b = f.from_uint(&U512::from_u64(9));
        assert_eq!(f.select(u64::MAX, &a, &b), a);
        assert_eq!(f.select(0, &a, &b), b);
        let g = FpRed::new();
        let a = g.from_uint(&U512::from_u64(5));
        let b = g.from_uint(&U512::from_u64(9));
        assert_eq!(g.select(u64::MAX, &a, &b), a);
        assert_eq!(g.select(0, &a, &b), b);
    }

    #[test]
    fn pow_edges() {
        let f = FpRed::new();
        let a = f.from_uint(&U512::from_u64(9));
        assert_eq!(f.to_uint(&f.pow(&a, &U512::ZERO)), U512::ONE);
        assert_eq!(
            f.to_uint(&f.pow(&a, &U512::from_u64(3))),
            U512::from_u64(729)
        );
    }

    #[test]
    fn counting_is_exact_across_threads() {
        // One shared wrapper, two worker threads (the engine's worker
        // pool shares a CountingFp for aggregate op stats): atomic
        // counters must not lose increments.
        let f = CountingFp::new(FpFull::new());
        let a = f.from_uint(&U512::from_u64(3));
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    for _ in 0..500 {
                        let _ = f.mul(&a, &a);
                        let _ = f.add(&a, &a);
                        let _ = f.sub(&a, &a);
                        let _ = f.sqr(&a);
                    }
                });
            }
        });
        let c = f.counts();
        assert_eq!(
            (c.mul, c.add, c.sub, c.sqr),
            (1000, 1000, 1000, 1000),
            "relaxed atomic counters must still count exactly"
        );
    }

    #[test]
    fn counting_clone_snapshots_counts() {
        let f = CountingFp::new(FpFull::new());
        let a = f.from_uint(&U512::from_u64(3));
        let _ = f.mul(&a, &a);
        let g = f.clone();
        let _ = f.mul(&a, &a);
        assert_eq!(g.counts().mul, 1, "clone is a snapshot");
        assert_eq!(f.counts().mul, 2);
    }

    #[test]
    fn counting_captures_pow_internals() {
        let f = CountingFp::new(FpFull::new());
        let a = f.from_uint(&U512::from_u64(5));
        let _ = f.inv(&a);
        let c = f.counts();
        // p-2 is 511 bits: one squaring per bit and ~250 muls.
        assert_eq!(c.sqr, 511);
        assert!(c.mul > 200 && c.mul < 320, "mul count {}", c.mul);
        f.reset();
        assert_eq!(f.counts(), OpCounts::default());
    }
}
