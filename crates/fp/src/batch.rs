//! Lane-parallel batching of independent field operations.
//!
//! The paper accelerates *one* field operation at a time; a service
//! that handles many independent key-exchange requests can instead
//! amortise per-call overhead across 8–32 independent **lanes** (the
//! structure-of-arrays batching of Zhang et al.'s multi-word modular
//! arithmetic code generators, applied to a CPU worker pool). The
//! [`FpBatch`] trait extends [`Fp`] with element-wise batch kernels:
//!
//! * the **default methods** fall back to the scalar [`Fp`] ops, so
//!   every backend is usable from the batch layer unchanged;
//! * [`FpFull`] and [`FpRed`] provide hand-batched implementations
//!   that resolve the process-wide [`Csidh512`] parameter set **once
//!   per batch** instead of once per element, and feed the Montgomery
//!   contexts directly — the per-call overhead (parameter lookup,
//!   trait dispatch) is paid once per `n` lanes.
//!
//! Batches are plain slices: callers keep one buffer per operand
//! (structure of arrays), lanes are independent, and every method
//! requires all slices to share one length.

use crate::backend::{CountingFp, Fp, FpFull, FpRed};
use crate::params::{Csidh512, RED_LIMBS};
use mpise_mpi::{fast, Reduced, U512};
use std::sync::atomic::Ordering;

/// Element-wise batched field operations over independent lanes.
///
/// All methods require `a.len() == b.len() == out.len()` (the lane
/// count); they panic on mismatched lengths. Lane `i` of `out` is the
/// scalar result for lane `i` of the inputs — [`FpBatch`] never mixes
/// lanes, so results are bit-identical to the scalar path (the
/// property tests in `crates/fp/tests/batch_props.rs` enforce this
/// for every lane count 1..=32).
pub trait FpBatch: Fp {
    /// Batched field addition: `out[i] = a[i] + b[i]`.
    fn add_n(&self, a: &[Self::Elem], b: &[Self::Elem], out: &mut [Self::Elem]) {
        check_lanes(a.len(), b.len(), out.len());
        for i in 0..out.len() {
            out[i] = self.add(&a[i], &b[i]);
        }
    }

    /// Batched field subtraction: `out[i] = a[i] - b[i]`.
    fn sub_n(&self, a: &[Self::Elem], b: &[Self::Elem], out: &mut [Self::Elem]) {
        check_lanes(a.len(), b.len(), out.len());
        for i in 0..out.len() {
            out[i] = self.sub(&a[i], &b[i]);
        }
    }

    /// Batched field multiplication: `out[i] = a[i] · b[i]`.
    fn mul_n(&self, a: &[Self::Elem], b: &[Self::Elem], out: &mut [Self::Elem]) {
        check_lanes(a.len(), b.len(), out.len());
        for i in 0..out.len() {
            out[i] = self.mul(&a[i], &b[i]);
        }
    }

    /// Batched field squaring: `out[i] = a[i]²`.
    fn sqr_n(&self, a: &[Self::Elem], out: &mut [Self::Elem]) {
        check_lanes(a.len(), a.len(), out.len());
        for i in 0..out.len() {
            out[i] = self.sqr(&a[i]);
        }
    }
}

#[inline]
fn check_lanes(a: usize, b: usize, out: usize) {
    assert!(
        a == b && b == out,
        "mismatched batch lane counts: {a} vs {b} vs {out}"
    );
}

impl FpBatch for FpFull {
    fn add_n(&self, a: &[U512], b: &[U512], out: &mut [U512]) {
        check_lanes(a.len(), b.len(), out.len());
        let p = &Csidh512::get().p;
        for i in 0..out.len() {
            out[i] = fast::mod_add(&a[i], &b[i], p);
        }
    }

    fn sub_n(&self, a: &[U512], b: &[U512], out: &mut [U512]) {
        check_lanes(a.len(), b.len(), out.len());
        let p = &Csidh512::get().p;
        for i in 0..out.len() {
            out[i] = fast::mod_sub(&a[i], &b[i], p);
        }
    }

    fn mul_n(&self, a: &[U512], b: &[U512], out: &mut [U512]) {
        check_lanes(a.len(), b.len(), out.len());
        let mont = &Csidh512::get().mont;
        for i in 0..out.len() {
            out[i] = mont.mul(&a[i], &b[i]);
        }
    }

    fn sqr_n(&self, a: &[U512], out: &mut [U512]) {
        check_lanes(a.len(), a.len(), out.len());
        let mont = &Csidh512::get().mont;
        for i in 0..out.len() {
            out[i] = mont.sqr(&a[i]);
        }
    }
}

impl FpBatch for FpRed {
    fn add_n(
        &self,
        a: &[Reduced<RED_LIMBS>],
        b: &[Reduced<RED_LIMBS>],
        out: &mut [Reduced<RED_LIMBS>],
    ) {
        check_lanes(a.len(), b.len(), out.len());
        let mont57 = &Csidh512::get().mont57;
        for i in 0..out.len() {
            out[i] = mont57.add(&a[i], &b[i]);
        }
    }

    fn sub_n(
        &self,
        a: &[Reduced<RED_LIMBS>],
        b: &[Reduced<RED_LIMBS>],
        out: &mut [Reduced<RED_LIMBS>],
    ) {
        check_lanes(a.len(), b.len(), out.len());
        let mont57 = &Csidh512::get().mont57;
        for i in 0..out.len() {
            out[i] = mont57.sub(&a[i], &b[i]);
        }
    }

    fn mul_n(
        &self,
        a: &[Reduced<RED_LIMBS>],
        b: &[Reduced<RED_LIMBS>],
        out: &mut [Reduced<RED_LIMBS>],
    ) {
        check_lanes(a.len(), b.len(), out.len());
        let mont57 = &Csidh512::get().mont57;
        for i in 0..out.len() {
            out[i] = mont57.mul(&a[i], &b[i]);
        }
    }

    fn sqr_n(&self, a: &[Reduced<RED_LIMBS>], out: &mut [Reduced<RED_LIMBS>]) {
        check_lanes(a.len(), a.len(), out.len());
        let mont57 = &Csidh512::get().mont57;
        for i in 0..out.len() {
            out[i] = mont57.sqr(&a[i]);
        }
    }
}

/// The op-counting adapter forwards batches to the inner backend's
/// batched kernels and bumps each counter by the lane count, so the
/// group-action cycle estimates stay exact under batching.
impl<F: FpBatch> FpBatch for CountingFp<F> {
    fn add_n(&self, a: &[Self::Elem], b: &[Self::Elem], out: &mut [Self::Elem]) {
        self.counter_add()
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        self.inner().add_n(a, b, out);
    }

    fn sub_n(&self, a: &[Self::Elem], b: &[Self::Elem], out: &mut [Self::Elem]) {
        self.counter_sub()
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        self.inner().sub_n(a, b, out);
    }

    fn mul_n(&self, a: &[Self::Elem], b: &[Self::Elem], out: &mut [Self::Elem]) {
        self.counter_mul()
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        self.inner().mul_n(a, b, out);
    }

    fn sqr_n(&self, a: &[Self::Elem], out: &mut [Self::Elem]) {
        self.counter_sqr()
            .fetch_add(out.len() as u64, Ordering::Relaxed);
        self.inner().sqr_n(a, out);
    }
}

/// A convenience wrapper exposing *only* the default scalar-fallback
/// batch path of a backend (no hand-batched overrides). Used by the
/// property tests to pin the fallback's behaviour, and by benchmarks
/// to measure what batching buys.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarFallback<F>(pub F);

impl<F: Fp> Fp for ScalarFallback<F> {
    type Elem = F::Elem;

    fn zero(&self) -> Self::Elem {
        self.0.zero()
    }

    fn one(&self) -> Self::Elem {
        self.0.one()
    }

    fn from_uint(&self, v: &U512) -> Self::Elem {
        self.0.from_uint(v)
    }

    fn to_uint(&self, a: &Self::Elem) -> U512 {
        self.0.to_uint(a)
    }

    fn add(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.0.add(a, b)
    }

    fn sub(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.0.sub(a, b)
    }

    fn mul(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.0.mul(a, b)
    }

    fn sqr(&self, a: &Self::Elem) -> Self::Elem {
        self.0.sqr(a)
    }

    fn is_zero(&self, a: &Self::Elem) -> bool {
        self.0.is_zero(a)
    }

    fn select(&self, mask: u64, a: &Self::Elem, b: &Self::Elem) -> Self::Elem {
        self.0.select(mask, a, b)
    }
}

// Deliberately no method overrides: every batch call goes through the
// trait's scalar-fallback defaults.
impl<F: Fp> FpBatch for ScalarFallback<F> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes_full(f: &FpFull, n: usize) -> Vec<U512> {
        (0..n)
            .map(|i| f.from_uint(&U512::from_u64(17 * i as u64 + 3)))
            .collect()
    }

    #[test]
    fn hand_batched_matches_scalar_full() {
        let f = FpFull::new();
        for n in [1usize, 2, 7, 32] {
            let a = lanes_full(&f, n);
            let b: Vec<U512> = a.iter().rev().copied().collect();
            let mut out = vec![f.zero(); n];
            f.mul_n(&a, &b, &mut out);
            for i in 0..n {
                assert_eq!(out[i], f.mul(&a[i], &b[i]));
            }
            f.add_n(&a, &b, &mut out);
            for i in 0..n {
                assert_eq!(out[i], f.add(&a[i], &b[i]));
            }
            f.sub_n(&a, &b, &mut out);
            for i in 0..n {
                assert_eq!(out[i], f.sub(&a[i], &b[i]));
            }
            f.sqr_n(&a, &mut out);
            for i in 0..n {
                assert_eq!(out[i], f.sqr(&a[i]));
            }
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let f = FpRed::new();
        let mut out: Vec<<FpRed as Fp>::Elem> = Vec::new();
        f.mul_n(&[], &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "mismatched batch lane counts")]
    fn mismatched_lanes_panic() {
        let f = FpFull::new();
        let a = lanes_full(&f, 3);
        let b = lanes_full(&f, 2);
        let mut out = vec![f.zero(); 3];
        f.add_n(&a, &b, &mut out);
    }

    #[test]
    fn counting_adapter_counts_whole_batches() {
        let f = CountingFp::new(FpFull::new());
        let a = lanes_full(f.inner(), 5);
        let mut out = vec![f.zero(); 5];
        f.mul_n(&a, &a, &mut out);
        f.sqr_n(&a, &mut out);
        let c = f.counts();
        assert_eq!(c.mul, 5);
        assert_eq!(c.sqr, 5);
    }
}
