//! Taint specifications for the generated kernels, binding the kernel
//! calling convention (see [`crate::kernels`]) to the static
//! constant-time analysis of `mpise-analyze`.
//!
//! The threat model matches the paper's: field-element *operands* are
//! key-dependent secrets (during the group action they are coordinates
//! derived from the private key), while the modulus constants, all
//! pointers, and the code itself are public. A kernel passes when no
//! secret operand limb can influence control flow, memory addressing,
//! or variable-latency execution.

use crate::kernels::{Config, KernelSet, OpKind};
use mpise_analyze::taint::{analyze_program, AnalysisOptions, Secrecy, TaintSpec};
use mpise_analyze::TaintReport;
use mpise_sim::Reg;

/// Builds the [`TaintSpec`] for one kernel operation under the shared
/// calling convention: `a0` result, `a1`/`a2` secret operands (`a2`
/// only for binary ops), `a3` public constant pool, `sp` stack.
pub fn kernel_taint_spec(op: OpKind) -> TaintSpec {
    let mut spec = TaintSpec::new();
    let out = spec.region("result", Secrecy::Public);
    let op1 = spec.region("operand-1", Secrecy::Secret);
    let consts = spec.region("constants", Secrecy::Public);
    let stack = spec.region("stack", Secrecy::Public);
    spec.entry_pointer(Reg::A0, out);
    spec.entry_pointer(Reg::A1, op1);
    spec.entry_pointer(Reg::A3, consts);
    spec.entry_pointer(Reg::Sp, stack);
    if op.arity() > 1 {
        let op2 = spec.region("operand-2", Secrecy::Secret);
        spec.entry_pointer(Reg::A2, op2);
    }
    spec
}

/// Runs the taint analysis on one kernel of one configuration.
pub fn verify_kernel(config: Config, op: OpKind) -> TaintReport {
    let set = KernelSet::build(config);
    analyze_program(
        set.kernel(op),
        &config.extension(),
        &kernel_taint_spec(op),
        &AnalysisOptions::default(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_shipped_kernel_is_statically_constant_time() {
        for config in Config::ALL {
            for op in OpKind::ALL {
                let report = verify_kernel(config, op);
                assert!(
                    report.passed(),
                    "{config}: {op:?} leaks:\n{}",
                    report.render()
                );
                assert!(report.insts_analyzed > 0, "{config}: {op:?} not analyzed");
            }
        }
    }

    #[test]
    fn analysis_covers_whole_kernels() {
        // Straight-line kernels: every instruction must be reachable.
        for config in [Config::ALL[0], Config::ALL[3]] {
            let set = KernelSet::build(config);
            for (op, prog) in set.iter() {
                let report = verify_kernel(config, op);
                assert_eq!(
                    report.insts_analyzed,
                    prog.len(),
                    "{config}: {op:?} has unreachable instructions"
                );
            }
        }
    }
}
