//! Generators for the fully unrolled RV64 assembly kernels of every
//! Table 4 operation.
//!
//! The paper's authors wrote "(constant-time) Assembler functions ...
//! from scratch for both the ISA-only and the ISE-supported version"
//! (§4). These modules generate the equivalent instruction sequences
//! programmatically — same algorithms, same MAC inner loops
//! (Listings 1–4), same carry-propagation idioms, fully unrolled, with
//! operands held in registers ("the register space is large enough to
//! store the operands and intermediates up to 512 bits").
//!
//! All kernels follow one calling convention:
//!
//! * `a0` — result pointer,
//! * `a1` — first operand pointer,
//! * `a2` — second operand pointer (binary operations only),
//! * `a3` — constant-pool pointer (modulus digits followed by the
//!   per-digit Montgomery constant; see [`const_pool_full`] /
//!   [`const_pool_red`]).
//!
//! Kernels end with `ret` and respect the standard ABI (callee-saved
//! registers are saved/restored; this overhead is part of the measured
//! cycle counts, as it was on the paper's hardware).

pub mod ablation;
pub mod full;
pub mod mac;
pub mod red;

use mpise_sim::asm::Program;
use mpise_sim::ext::IsaExtension;
use std::collections::BTreeMap;
use std::fmt;

/// Operand radix representation (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Radix {
    /// Radix 2^64: 8 digits for CSIDH-512.
    Full,
    /// Radix 2^57: 9 limbs for CSIDH-512.
    Reduced,
}

impl fmt::Display for Radix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Radix::Full => write!(f, "full-radix"),
            Radix::Reduced => write!(f, "reduced-radix"),
        }
    }
}

/// Whether kernels may use the custom instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IseMode {
    /// Base RV64GC instructions only.
    IsaOnly,
    /// Base ISA plus the radix-matching ISE of Table 1.
    IseSupported,
}

impl fmt::Display for IseMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IseMode::IsaOnly => write!(f, "ISA-only"),
            IseMode::IseSupported => write!(f, "ISE-supported"),
        }
    }
}

/// One of the four implementation configurations of Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Config {
    /// Operand representation.
    pub radix: Radix,
    /// Instruction budget.
    pub ise: IseMode,
}

impl Config {
    /// All four configurations, in Table 4 column order.
    pub const ALL: [Config; 4] = [
        Config {
            radix: Radix::Full,
            ise: IseMode::IsaOnly,
        },
        Config {
            radix: Radix::Full,
            ise: IseMode::IseSupported,
        },
        Config {
            radix: Radix::Reduced,
            ise: IseMode::IsaOnly,
        },
        Config {
            radix: Radix::Reduced,
            ise: IseMode::IseSupported,
        },
    ];

    /// The ISA extension a machine needs to run this configuration's
    /// kernels (empty for ISA-only).
    pub fn extension(&self) -> IsaExtension {
        match (self.radix, self.ise) {
            (_, IseMode::IsaOnly) => IsaExtension::new("rv64im"),
            (Radix::Full, IseMode::IseSupported) => mpise_core::full_radix_ext(),
            (Radix::Reduced, IseMode::IseSupported) => mpise_core::reduced_radix_ext(),
        }
    }

    /// Words per field element in kernel memory layout (one limb per
    /// 64-bit word in both radices).
    pub fn elem_words(&self) -> usize {
        match self.radix {
            Radix::Full => crate::params::FULL_LIMBS,
            Radix::Reduced => crate::params::RED_LIMBS,
        }
    }
}

impl fmt::Display for Config {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.radix, self.ise)
    }
}

/// The arithmetic operations of Table 4 (rows above the group action).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// 512×512-bit integer multiplication.
    IntMul,
    /// 512-bit integer squaring.
    IntSqr,
    /// Montgomery reduction of a double-length product.
    MontRedc,
    /// Fast modulo-p reduction of a value in `[0, 2p − 1]`.
    FastReduce,
    /// Fp addition.
    FpAdd,
    /// Fp subtraction.
    FpSub,
    /// Fp multiplication (multiply + Montgomery reduce + fast reduce).
    FpMul,
    /// Fp squaring.
    FpSqr,
}

impl OpKind {
    /// All operations in Table 4 row order.
    pub const ALL: [OpKind; 8] = [
        OpKind::IntMul,
        OpKind::IntSqr,
        OpKind::MontRedc,
        OpKind::FastReduce,
        OpKind::FpAdd,
        OpKind::FpSub,
        OpKind::FpMul,
        OpKind::FpSqr,
    ];

    /// The Table 4 row label.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::IntMul => "Integer multiplication",
            OpKind::IntSqr => "Integer squaring",
            OpKind::MontRedc => "Montgomery reduction",
            OpKind::FastReduce => "Fast modulo-p reduction",
            OpKind::FpAdd => "Fp-addition",
            OpKind::FpSub => "Fp-subtraction",
            OpKind::FpMul => "Fp-multiplication",
            OpKind::FpSqr => "Fp-squaring",
        }
    }

    /// The telemetry span name for this operation (see `mpise-obs`;
    /// static because span aggregation keys on `&'static str`).
    pub fn span_name(&self) -> &'static str {
        match self {
            OpKind::IntMul => "fp.int_mul",
            OpKind::IntSqr => "fp.int_sqr",
            OpKind::MontRedc => "fp.mont_redc",
            OpKind::FastReduce => "fp.fast_reduce",
            OpKind::FpAdd => "fp.add",
            OpKind::FpSub => "fp.sub",
            OpKind::FpMul => "fp.mul",
            OpKind::FpSqr => "fp.sqr",
        }
    }

    /// Number of operand pointers the kernel takes (besides result and
    /// constants).
    pub fn arity(&self) -> usize {
        match self {
            OpKind::IntMul | OpKind::FpAdd | OpKind::FpSub | OpKind::FpMul => 2,
            _ => 1,
        }
    }

    /// `(input_words_per_operand, output_words)` for a configuration.
    pub fn shape(&self, config: &Config) -> (usize, usize) {
        let n = config.elem_words();
        match self {
            OpKind::IntMul | OpKind::IntSqr => (n, 2 * n),
            OpKind::MontRedc => (2 * n, n),
            _ => (n, n),
        }
    }
}

/// A complete set of Table-4 kernels for one configuration.
#[derive(Debug)]
pub struct KernelSet {
    /// The configuration these kernels implement.
    pub config: Config,
    kernels: BTreeMap<OpKind, Program>,
}

impl KernelSet {
    /// Generates all eight kernels for `config`.
    pub fn build(config: Config) -> Self {
        let ise = config.ise == IseMode::IseSupported;
        let mut kernels = BTreeMap::new();
        for op in OpKind::ALL {
            let program = match config.radix {
                Radix::Full => full::generate(op, ise),
                Radix::Reduced => red::generate(op, ise),
            };
            kernels.insert(op, program);
        }
        KernelSet { config, kernels }
    }

    /// The kernel for one operation.
    pub fn kernel(&self, op: OpKind) -> &Program {
        &self.kernels[&op]
    }

    /// Iterates over `(op, program)` pairs in row order.
    pub fn iter(&self) -> impl Iterator<Item = (OpKind, &Program)> {
        self.kernels.iter().map(|(k, v)| (*k, v))
    }
}

/// Builds the constant pool for full-radix kernels: the 8 digits of `p`
/// followed by `-p^{-1} mod 2^64`.
pub fn const_pool_full() -> Vec<u64> {
    let c = crate::params::Csidh512::get();
    let mut pool = c.p.limbs().to_vec();
    pool.push(c.mont.p_inv());
    pool
}

/// Builds the constant pool for reduced-radix kernels: the 9 limbs of
/// `p` (57-bit) followed by `-p^{-1} mod 2^57`.
pub fn const_pool_red() -> Vec<u64> {
    let c = crate::params::Csidh512::get();
    let mut pool = c.mont57.modulus().limbs().to_vec();
    pool.push(c.mont57.p_inv());
    pool
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernel_sets_build() {
        for config in Config::ALL {
            let set = KernelSet::build(config);
            for (op, prog) in set.iter() {
                assert!(!prog.is_empty(), "{config}: {op:?} kernel is empty");
                // Every kernel must encode cleanly for its extension.
                let ext = config.extension();
                prog.encode(&ext)
                    .unwrap_or_else(|e| panic!("{config}: {op:?} fails to encode: {e}"));
            }
        }
    }

    #[test]
    fn isa_only_kernels_use_no_custom_instructions() {
        for radix in [Radix::Full, Radix::Reduced] {
            let set = KernelSet::build(Config {
                radix,
                ise: IseMode::IsaOnly,
            });
            for (op, prog) in set.iter() {
                assert!(
                    prog.insts()
                        .iter()
                        .all(|i| !matches!(i, mpise_sim::Inst::Custom { .. })),
                    "{radix}: {op:?} contains custom instructions in ISA-only mode"
                );
            }
        }
    }

    #[test]
    fn ise_kernels_are_shorter() {
        // The whole point of the ISEs: fewer instructions for the
        // multiplicative kernels.
        for radix in [Radix::Full, Radix::Reduced] {
            let isa = KernelSet::build(Config {
                radix,
                ise: IseMode::IsaOnly,
            });
            let ise = KernelSet::build(Config {
                radix,
                ise: IseMode::IseSupported,
            });
            for op in [
                OpKind::IntMul,
                OpKind::IntSqr,
                OpKind::MontRedc,
                OpKind::FpMul,
            ] {
                assert!(
                    ise.kernel(op).len() < isa.kernel(op).len(),
                    "{radix:?} {op:?}: ISE kernel not shorter ({} vs {})",
                    ise.kernel(op).len(),
                    isa.kernel(op).len()
                );
            }
        }
    }

    #[test]
    fn const_pools() {
        let f = const_pool_full();
        assert_eq!(f.len(), 9);
        assert_eq!(f[0], crate::params::P_LIMBS[0]);
        // p * (-p_inv) ≡ -1 mod 2^64
        assert_eq!(f[0].wrapping_mul(f[8]), 1u64.wrapping_neg());

        let r = const_pool_red();
        assert_eq!(r.len(), 10);
        let mask = (1u64 << 57) - 1;
        assert_eq!(r[0].wrapping_mul(r[9]) & mask, mask);
    }
}
