//! Ablation kernels for design choices the paper evaluated and
//! rejected.
//!
//! §4: "Our experiments showed that product-scanning is more efficient
//! than Karatsuba's algorithm for MPI multiplication, and so we used
//! the former." This module generates a one-level Karatsuba 512-bit
//! multiplication kernel (three 256-bit product-scanning multiplies
//! plus the recombination arithmetic) so the claim can be re-measured
//! on the same pipeline model — see the `ablation` binary in
//! `mpise-bench`.

use super::full::{A_REGS, B_REGS};
use mpise_core::full_radix::{CADD, MADDHU, MADDLU};
use mpise_sim::asm::{Assembler, Program};
use mpise_sim::Reg;

const L: usize = crate::params::FULL_LIMBS; // 8
const H: usize = L / 2; // 4

/// One full-radix MAC on the 192-bit accumulator (same sequences as
/// the main kernels).
fn mac(a: &mut Assembler, ise: bool, acc: [Reg; 3], x: Reg, y: Reg, t1: Reg, t2: Reg) {
    let [l, h, e] = acc;
    if ise {
        a.custom_r4(MADDHU, t2, x, y, l);
        a.custom_r4(MADDLU, l, x, y, l);
        a.custom_r4(CADD, e, h, t2, e);
        a.add(h, h, t2);
    } else {
        a.mulhu(t2, x, y);
        a.mul(t1, x, y);
        a.add(l, l, t1);
        a.sltu(t1, l, t1);
        a.add(t2, t2, t1);
        a.add(h, h, t2);
        a.sltu(t2, h, t2);
        a.add(e, e, t2);
    }
}

/// Emits a 4×4 product-scanning multiply of register operands into
/// `dst[8*word_off ..]`.
fn ps4x4(a: &mut Assembler, ise: bool, x: &[Reg; H], y: &[Reg; H], dst: Reg, word_off: usize) {
    let (t1, t2) = (Reg::A3, Reg::A7);
    let mut acc = [Reg::A4, Reg::A5, Reg::A6];
    for &r in &acc {
        a.li(r, 0);
    }
    for k in 0..2 * H - 1 {
        let lo = k.saturating_sub(H - 1);
        let hi = k.min(H - 1);
        for i in lo..=hi {
            mac(a, ise, acc, x[i], y[k - i], t1, t2);
        }
        a.sd(acc[0], 8 * (word_off + k) as i32, dst);
        acc.rotate_left(1);
        a.li(acc[2], 0);
    }
    a.sd(acc[0], 8 * (word_off + 2 * H - 1) as i32, dst);
}

/// One-level Karatsuba 512×512→1024 multiplication kernel:
/// `z0 = a₀b₀`, `z2 = a₁b₁`, `z1 = (a₀+a₁)(b₀+b₁) − z0 − z2`,
/// result `= z0 + z1·2^256 + z2·2^512`.
///
/// Calling convention identical to the `IntMul` kernel
/// (`a0 = dst[16]`, `a1 = a[8]`, `a2 = b[8]`).
pub fn karatsuba_int_mul(ise: bool) -> Program {
    let mut asm = Assembler::new();
    let saved = [
        Reg::S0,
        Reg::S1,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
    ];
    // Frame: 10 words for z1 (8 + carry words).
    let z1_words = 2 * H + 2;
    let frame = 8 * (saved.len() + z1_words) as i32;
    asm.addi(Reg::Sp, Reg::Sp, -frame);
    for (i, &r) in saved.iter().enumerate() {
        asm.sd(r, 8 * (z1_words + i) as i32, Reg::Sp);
    }

    // Load both operands fully (pointer-clobber trick for the last
    // digit, as in the main kernels).
    let mut a_regs = A_REGS;
    a_regs[L - 1] = Reg::A1;
    let mut b_regs = B_REGS;
    b_regs[L - 1] = Reg::A2;
    for (i, &r) in a_regs.iter().enumerate() {
        asm.ld(r, 8 * i as i32, Reg::A1);
    }
    for (i, &r) in b_regs.iter().enumerate() {
        asm.ld(r, 8 * i as i32, Reg::A2);
    }
    let a_lo: [Reg; H] = a_regs[..H].try_into().expect("half");
    let a_hi: [Reg; H] = a_regs[H..].try_into().expect("half");
    let b_lo: [Reg; H] = b_regs[..H].try_into().expect("half");
    let b_hi: [Reg; H] = b_regs[H..].try_into().expect("half");

    // z0 -> dst[0..8], z2 -> dst[8..16].
    ps4x4(&mut asm, ise, &a_lo, &b_lo, Reg::A0, 0);
    ps4x4(&mut asm, ise, &a_hi, &b_hi, Reg::A0, L);

    // sa = a_lo + a_hi (into a_lo regs, carry in sa_c), likewise sb.
    let (sa_c, sb_c) = (a_hi[0], b_hi[0]); // high-half regs become carries
    let (u, v) = (Reg::A4, Reg::A5);
    for i in 0..H {
        if i == 0 {
            asm.add(a_lo[0], a_lo[0], a_hi[0]);
            asm.sltu(u, a_lo[0], a_hi[0]);
        } else {
            asm.add(a_lo[i], a_lo[i], a_hi[i]);
            asm.sltu(v, a_lo[i], a_hi[i]);
            asm.add(a_lo[i], a_lo[i], u);
            asm.sltu(u, a_lo[i], u);
            asm.add(u, u, v);
        }
    }
    asm.mv(sa_c, u);
    for i in 0..H {
        if i == 0 {
            asm.add(b_lo[0], b_lo[0], b_hi[0]);
            asm.sltu(u, b_lo[0], b_hi[0]);
        } else {
            asm.add(b_lo[i], b_lo[i], b_hi[i]);
            asm.sltu(v, b_lo[i], b_hi[i]);
            asm.add(b_lo[i], b_lo[i], u);
            asm.sltu(u, b_lo[i], u);
            asm.add(u, u, v);
        }
    }
    asm.mv(sb_c, u);

    // z1_base = sa * sb -> stack[0..8].
    ps4x4(&mut asm, ise, &a_lo, &b_lo, Reg::Sp, 0);
    asm.sd(Reg::Zero, 8 * (2 * H) as i32, Reg::Sp);
    asm.sd(Reg::Zero, 8 * (2 * H + 1) as i32, Reg::Sp);

    // Carry cross terms: += sa_c * sb << 256, += sb_c * sa << 256,
    // += (sa_c & sb_c) << 512 — masked adds since carries are 0/1.
    let m = Reg::A6;
    let (w, c) = (Reg::A4, Reg::A5);
    for (carry_reg, operand) in [(sb_c, &a_lo), (sa_c, &b_lo)] {
        asm.neg(m, carry_reg);
        asm.li(c, 0);
        for i in 0..H {
            asm.ld(w, 8 * (H + i) as i32, Reg::Sp);
            asm.and(Reg::A7, operand[i], m);
            asm.add(w, w, Reg::A7);
            asm.sltu(Reg::A7, w, Reg::A7);
            asm.add(w, w, c);
            asm.sltu(c, w, c);
            asm.add(c, c, Reg::A7);
            asm.sd(w, 8 * (H + i) as i32, Reg::Sp);
        }
        // ripple the carry into word 2H (and potentially 2H+1)
        asm.ld(w, 8 * (2 * H) as i32, Reg::Sp);
        asm.add(w, w, c);
        asm.sltu(c, w, c);
        asm.sd(w, 8 * (2 * H) as i32, Reg::Sp);
        asm.ld(w, 8 * (2 * H + 1) as i32, Reg::Sp);
        asm.add(w, w, c);
        asm.sd(w, 8 * (2 * H + 1) as i32, Reg::Sp);
    }
    // += (sa_c & sb_c) << 512
    asm.and(m, sa_c, sb_c);
    asm.ld(w, 8 * (2 * H) as i32, Reg::Sp);
    asm.add(w, w, m);
    asm.sltu(c, w, m);
    asm.sd(w, 8 * (2 * H) as i32, Reg::Sp);
    asm.ld(w, 8 * (2 * H + 1) as i32, Reg::Sp);
    asm.add(w, w, c);
    asm.sd(w, 8 * (2 * H + 1) as i32, Reg::Sp);

    // z1 -= z0; z1 -= z2 (10-word borrows against 8-word values).
    let (x, bor, b1, b2) = (Reg::T0, Reg::T1, Reg::T2, Reg::T3);
    for z_off in [0usize, L] {
        asm.li(bor, 0);
        for i in 0..z1_words {
            asm.ld(w, 8 * i as i32, Reg::Sp);
            if i < L {
                asm.ld(x, 8 * (z_off + i) as i32, Reg::A0);
            } else {
                asm.li(x, 0);
            }
            asm.sltu(b1, w, x);
            asm.sub(w, w, x);
            asm.sltu(b2, w, bor);
            asm.sub(w, w, bor);
            asm.or(bor, b1, b2);
            asm.sd(w, 8 * i as i32, Reg::Sp);
        }
    }

    // dst[4..14] += z1 (10 words), rippling into dst[14], dst[15].
    asm.li(c, 0);
    for i in 0..z1_words {
        asm.ld(w, 8 * (H + i) as i32, Reg::A0);
        asm.ld(x, 8 * i as i32, Reg::Sp);
        asm.add(w, w, x);
        asm.sltu(b1, w, x);
        asm.add(w, w, c);
        asm.sltu(c, w, c);
        asm.add(c, c, b1);
        asm.sd(w, 8 * (H + i) as i32, Reg::A0);
    }
    for i in H + z1_words..2 * L {
        asm.ld(w, 8 * i as i32, Reg::A0);
        asm.add(w, w, c);
        asm.sltu(c, w, c);
        asm.sd(w, 8 * i as i32, Reg::A0);
    }

    for (i, &r) in saved.iter().enumerate() {
        asm.ld(r, 8 * (z1_words + i) as i32, Reg::Sp);
    }
    asm.addi(Reg::Sp, Reg::Sp, frame);
    asm.ret();
    asm.finish()
}

/// A *rolled* (looped) operand-scanning multiplication kernel:
/// `dst[0..16] = a[0..8] × b[0..8]` with operands streamed from memory
/// and genuine loop control, the way size-generic MPI library code is
/// written when unrolling is not an option.
///
/// §3 notes the paper's kernels are fully unrolled because "the
/// register space is large enough"; this kernel quantifies what that
/// buys (see the `ablation` binary): per inner MAC it pays two pointer
/// increments, two extra loads, a store and the loop branch.
pub fn rolled_int_mul(ise: bool) -> Program {
    let mut a = Assembler::new();
    // No callee-saved registers needed: everything fits in temporaries.
    // Register roles:
    let (i, j) = (Reg::T0, Reg::T1); // loop counters (down-counting)
    let (pa, pd) = (Reg::T2, Reg::T3); // running &a[j], &dst[i+j]
    let bi = Reg::T4; // current b digit
    let carry = Reg::T5;
    let (aj, w, lo, hi, c1) = (Reg::T6, Reg::A4, Reg::A5, Reg::A6, Reg::A7);
    let pb = Reg::A3; // running &b[i]
    let pd_row = Reg::S0; // &dst[i] — caller-saved? s0 must be saved.

    a.addi(Reg::Sp, Reg::Sp, -8);
    a.sd(Reg::S0, 0, Reg::Sp);

    // Zero the destination (2L words).
    a.li(i, (2 * L) as i64);
    a.mv(pd, Reg::A0);
    let zloop = a.new_label();
    a.bind(zloop);
    a.sd(Reg::Zero, 0, pd);
    a.addi(pd, pd, 8);
    a.addi(i, i, -1);
    a.bnez(i, zloop);

    // Outer loop over the digits of b.
    a.li(i, L as i64);
    a.mv(pb, Reg::A2);
    a.mv(pd_row, Reg::A0);
    let outer = a.new_label();
    a.bind(outer);
    a.ld(bi, 0, pb);
    a.li(carry, 0);
    a.mv(pa, Reg::A1);
    a.mv(pd, pd_row);
    a.li(j, L as i64);
    let inner = a.new_label();
    a.bind(inner);
    a.ld(aj, 0, pa);
    a.ld(w, 0, pd);
    if ise {
        // hi' = maddhu(aj, bi, w); w' = maddlu(aj, bi, w); then +carry.
        a.custom_r4(MADDHU, hi, aj, bi, w);
        a.custom_r4(MADDLU, w, aj, bi, w);
        a.custom_r4(CADD, hi, w, carry, hi);
        a.add(w, w, carry);
    } else {
        a.mulhu(hi, aj, bi);
        a.mul(lo, aj, bi);
        a.add(w, w, lo);
        a.sltu(c1, w, lo);
        a.add(hi, hi, c1);
        a.add(w, w, carry);
        a.sltu(c1, w, carry);
        a.add(hi, hi, c1);
    }
    a.mv(carry, hi);
    a.sd(w, 0, pd);
    a.addi(pa, pa, 8);
    a.addi(pd, pd, 8);
    a.addi(j, j, -1);
    a.bnez(j, inner);
    // dst[i + L] = carry (pd already points there).
    a.sd(carry, 0, pd);
    a.addi(pb, pb, 8);
    a.addi(pd_row, pd_row, 8);
    a.addi(i, i, -1);
    a.bnez(i, outer);

    a.ld(Reg::S0, 0, Reg::Sp);
    a.addi(Reg::Sp, Reg::Sp, 8);
    a.ret();
    a.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{Config, IseMode, OpKind, Radix};
    use crate::measure::KernelRunner;
    use mpise_mpi::mul::mul_ps;
    use mpise_mpi::U512;
    use mpise_sim::machine::DATA_BASE;
    use mpise_sim::Machine;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn run_karatsuba(ise: bool, a: &U512, b: &U512) -> (Vec<u64>, u64) {
        let prog = karatsuba_int_mul(ise);
        let ext = if ise {
            mpise_core::full_radix_ext()
        } else {
            mpise_sim::ext::IsaExtension::new("rv64im")
        };
        let mut m = Machine::with_ext(ext);
        m.load_program(&prog);
        m.mem.write_limbs(DATA_BASE + 0x100, a.limbs()).unwrap();
        m.mem.write_limbs(DATA_BASE + 0x200, b.limbs()).unwrap();
        let stats = m
            .call(&[
                (Reg::A0, DATA_BASE),
                (Reg::A1, DATA_BASE + 0x100),
                (Reg::A2, DATA_BASE + 0x200),
            ])
            .unwrap();
        (m.mem.read_limbs(DATA_BASE, 16).unwrap(), stats.cycles)
    }

    #[test]
    fn karatsuba_kernel_is_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        for ise in [false, true] {
            for _ in 0..5 {
                let a = U512::from_limbs(std::array::from_fn(|_| rng.gen()));
                let b = U512::from_limbs(std::array::from_fn(|_| rng.gen()));
                let (got, _) = run_karatsuba(ise, &a, &b);
                let (lo, hi) = mul_ps(&a, &b);
                let mut expect = lo.limbs().to_vec();
                expect.extend_from_slice(hi.limbs());
                assert_eq!(got, expect, "ise={ise} a={a} b={b}");
            }
        }
    }

    #[test]
    fn karatsuba_edge_values() {
        for ise in [false, true] {
            for (a, b) in [
                (U512::ZERO, U512::MAX),
                (U512::MAX, U512::MAX),
                (U512::ONE, U512::MAX),
            ] {
                let (got, _) = run_karatsuba(ise, &a, &b);
                let (lo, hi) = mul_ps(&a, &b);
                let mut expect = lo.limbs().to_vec();
                expect.extend_from_slice(hi.limbs());
                assert_eq!(got, expect, "ise={ise}");
            }
        }
    }

    fn run_rolled(ise: bool, a: &U512, b: &U512) -> (Vec<u64>, u64) {
        let prog = rolled_int_mul(ise);
        let ext = if ise {
            mpise_core::full_radix_ext()
        } else {
            mpise_sim::ext::IsaExtension::new("rv64im")
        };
        let mut m = Machine::with_ext(ext);
        m.load_program(&prog);
        m.mem.write_limbs(DATA_BASE + 0x100, a.limbs()).unwrap();
        m.mem.write_limbs(DATA_BASE + 0x200, b.limbs()).unwrap();
        let stats = m
            .call(&[
                (Reg::A0, DATA_BASE),
                (Reg::A1, DATA_BASE + 0x100),
                (Reg::A2, DATA_BASE + 0x200),
            ])
            .unwrap();
        (m.mem.read_limbs(DATA_BASE, 16).unwrap(), stats.cycles)
    }

    #[test]
    fn rolled_kernel_is_correct() {
        let mut rng = StdRng::seed_from_u64(2);
        for ise in [false, true] {
            for _ in 0..4 {
                let a = U512::from_limbs(std::array::from_fn(|_| rng.gen()));
                let b = U512::from_limbs(std::array::from_fn(|_| rng.gen()));
                let (got, _) = run_rolled(ise, &a, &b);
                let (lo, hi) = mul_ps(&a, &b);
                let mut expect = lo.limbs().to_vec();
                expect.extend_from_slice(hi.limbs());
                assert_eq!(got, expect, "ise={ise}");
            }
        }
    }

    #[test]
    fn unrolling_pays_off() {
        // §3: the paper unrolls fully because registers hold the whole
        // operands. The rolled kernel must be substantially slower.
        let a = U512::from_u64(7);
        let b = U512::from_u64(9);
        for (ise, mode) in [(false, IseMode::IsaOnly), (true, IseMode::IseSupported)] {
            let mut runner = KernelRunner::new(Config {
                radix: Radix::Full,
                ise: mode,
            });
            let (_, unrolled) = runner.run(OpKind::IntMul, &[a.limbs(), b.limbs()]);
            let (_, rolled) = run_rolled(ise, &a, &b);
            assert!(
                rolled as f64 > unrolled as f64 * 1.3,
                "ise={ise}: rolled {rolled} not >1.3x unrolled {unrolled}"
            );
        }
    }

    #[test]
    fn product_scanning_beats_karatsuba_on_this_core() {
        // The §4 claim, measured: with the register file large enough
        // for full operands, one-level Karatsuba's recombination
        // traffic outweighs the 16 saved MACs.
        for (ise, mode) in [(false, IseMode::IsaOnly), (true, IseMode::IseSupported)] {
            let mut runner = KernelRunner::new(Config {
                radix: Radix::Full,
                ise: mode,
            });
            let a = U512::from_u64(3);
            let b = U512::from_u64(5);
            let (_, ps_cycles) = runner.run(OpKind::IntMul, &[a.limbs(), b.limbs()]);
            let (_, kara_cycles) = run_karatsuba(ise, &a, &b);
            assert!(
                ps_cycles < kara_cycles,
                "ise={ise}: product scanning {ps_cycles} !< karatsuba {kara_cycles}"
            );
        }
    }
}
