//! Full-radix (radix-2^64) kernel generators.
//!
//! Every kernel is straight-line (fully unrolled), constant-time, and
//! structured exactly like the paper describes:
//!
//! * multiplication/squaring/reduction use product scanning with the
//!   MAC of Listing 1 (ISA-only) or Listing 3 (ISE-supported);
//! * the fast modulo-`p` reduction is the swap-based Algorithm 2 ("the
//!   faster option for our full-radix implementation", §3.1);
//! * `Fp` addition/subtraction use the carry/borrow chains built from
//!   `add`/`sub` + `sltu` (RISC-V has no carry flag);
//! * the full-radix ISEs do not help the purely additive kernels, so
//!   `FastReduce`/`FpAdd`/`FpSub` are identical in both modes — which
//!   is why Table 4 reports 107/163/143 cycles for both columns.

use super::OpKind;
use mpise_core::full_radix::{CADD, MADDHU, MADDLU};
use mpise_sim::asm::{Assembler, Program};
use mpise_sim::Reg;

const L: usize = crate::params::FULL_LIMBS; // 8 digits

/// Operand digit registers for the first operand: `s0..s6` plus the
/// (clobbered) source pointer `a1`.
pub(crate) const A_REGS: [Reg; 8] = [
    Reg::S0,
    Reg::S1,
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::A1,
];

/// Operand digit registers for the second operand: `t0..t6` plus the
/// (clobbered) source pointer `a2`.
pub(crate) const B_REGS: [Reg; 8] = [
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
    Reg::A2,
];

/// Modulus digit registers (`s0..s7`).
const P_REGS: [Reg; 8] = [
    Reg::S0,
    Reg::S1,
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
];

/// Montgomery-factor digit registers for the reduction (`t0..t6, s8`).
const M_REGS: [Reg; 8] = [
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
    Reg::S8,
];

/// Generates the full-radix kernel for `op` (`ise` selects the
/// Listing 3 MAC and `cadd`).
pub fn generate(op: OpKind, ise: bool) -> Program {
    match op {
        OpKind::IntMul => int_mul(ise),
        OpKind::IntSqr => int_sqr(ise),
        OpKind::MontRedc => mont_redc(ise),
        OpKind::FastReduce => fast_reduce(),
        OpKind::FpAdd => fp_add(),
        OpKind::FpSub => fp_sub(),
        OpKind::FpMul => fp_mul(ise),
        OpKind::FpSqr => fp_sqr(ise),
    }
}

/// Wraps `body` in a standard prologue/epilogue saving `saved`
/// callee-saved registers, with `extra_words` of scratch stack below
/// them (at `0(sp) .. 8*extra_words-8(sp)`).
fn with_frame(saved: &[Reg], extra_words: usize, body: impl FnOnce(&mut Assembler)) -> Program {
    let mut a = Assembler::new();
    let frame = 8 * (saved.len() + extra_words) as i32;
    if frame > 0 {
        a.addi(Reg::Sp, Reg::Sp, -frame);
        for (i, &r) in saved.iter().enumerate() {
            a.sd(r, 8 * (extra_words + i) as i32, Reg::Sp);
        }
    }
    body(&mut a);
    if frame > 0 {
        for (i, &r) in saved.iter().enumerate() {
            a.ld(r, 8 * (extra_words + i) as i32, Reg::Sp);
        }
        a.addi(Reg::Sp, Reg::Sp, frame);
    }
    a.ret();
    a.finish()
}

/// Loads `regs.len()` consecutive digits from `base` into `regs`.
/// `base` itself may be the last destination (pointer-clobber trick).
fn load_words(a: &mut Assembler, regs: &[Reg], base: Reg) {
    for (i, &r) in regs.iter().enumerate() {
        debug_assert!(r != base || i == regs.len() - 1, "pointer clobbered early");
        a.ld(r, 8 * i as i32, base);
    }
}

/// One MAC `(e‖h‖l) += x*y` — Listing 1 (ISA) or Listing 3 (ISE).
fn mac(a: &mut Assembler, ise: bool, acc: [Reg; 3], x: Reg, y: Reg, t1: Reg, t2: Reg) {
    let [l, h, e] = acc;
    if ise {
        // maddhu z,a,b,l ; maddlu l,a,b,l ; cadd e,h,z,e ; add h,h,z
        a.custom_r4(MADDHU, t2, x, y, l);
        a.custom_r4(MADDLU, l, x, y, l);
        a.custom_r4(CADD, e, h, t2, e);
        a.add(h, h, t2);
    } else {
        // mulhu z,a,b; mul y,a,b; add l,l,y; sltu y,l,y;
        // add z,z,y; add h,h,z; sltu z,h,z; add e,e,z
        a.mulhu(t2, x, y);
        a.mul(t1, x, y);
        a.add(l, l, t1);
        a.sltu(t1, l, t1);
        a.add(t2, t2, t1);
        a.add(h, h, t2);
        a.sltu(t2, h, t2);
        a.add(e, e, t2);
    }
}

/// Adds the single word `v` into the accumulator `(e‖h‖l)`.
fn acc_add_word(a: &mut Assembler, ise: bool, acc: [Reg; 3], v: Reg, t: Reg) {
    let [l, h, e] = acc;
    if ise {
        // cadd t,l,v,x0 ; add l,l,v ; cadd e,h,t,e ; add h,h,t
        a.custom_r4(CADD, t, l, v, Reg::Zero);
        a.add(l, l, v);
        a.custom_r4(CADD, e, h, t, e);
        a.add(h, h, t);
    } else {
        a.add(l, l, v);
        a.sltu(t, l, v);
        a.add(h, h, t);
        a.sltu(t, h, t);
        a.add(e, e, t);
    }
}

/// Emits the product-scanning multiplication body: `dst[0..16] = A*B`
/// with A in [`A_REGS`] (loaded from `src_a`) and B in [`B_REGS`]
/// (loaded from `src_b`). Clobbers `src_a`/`src_b`; preserves `dst`.
fn emit_int_mul_body(a: &mut Assembler, ise: bool, dst: Reg, src_a: Reg, src_b: Reg) {
    debug_assert!(!A_REGS.contains(&dst) && !B_REGS.contains(&dst));
    // Loads (the operand pointer receives the final digit).
    let mut a_regs = A_REGS;
    a_regs[L - 1] = src_a;
    let mut b_regs = B_REGS;
    b_regs[L - 1] = src_b;
    for (i, &r) in a_regs.iter().enumerate() {
        a.ld(r, 8 * i as i32, src_a);
    }
    for (i, &r) in b_regs.iter().enumerate() {
        a.ld(r, 8 * i as i32, src_b);
    }
    let (t1, t2) = (Reg::A3, Reg::A7);
    let mut acc = [Reg::A4, Reg::A5, Reg::A6];
    for &r in &acc {
        a.li(r, 0);
    }
    for k in 0..2 * L - 1 {
        let lo = k.saturating_sub(L - 1);
        let hi = k.min(L - 1);
        for i in lo..=hi {
            mac(a, ise, acc, a_regs[i], b_regs[k - i], t1, t2);
        }
        a.sd(acc[0], 8 * k as i32, dst);
        // Rotate the accumulator (register renaming, no moves).
        acc.rotate_left(1);
        a.li(acc[2], 0);
    }
    a.sd(acc[0], 8 * (2 * L - 1) as i32, dst); // t[15]: the final carry word
}

fn int_mul(ise: bool) -> Program {
    with_frame(
        &[
            Reg::S0,
            Reg::S1,
            Reg::S2,
            Reg::S3,
            Reg::S4,
            Reg::S5,
            Reg::S6,
        ],
        0,
        |a| {
            emit_int_mul_body(a, ise, Reg::A0, Reg::A1, Reg::A2);
        },
    )
}

/// Emits the squaring body: cross products once (product scanning),
/// then one doubling pass over `dst`, then the diagonal pass — the
/// standard trick that makes squaring ~25–45% cheaper than a general
/// multiplication.
fn emit_int_sqr_body(a: &mut Assembler, ise: bool, dst: Reg, src_a: Reg) {
    let mut a_regs = A_REGS;
    a_regs[L - 1] = src_a;
    for (i, &r) in a_regs.iter().enumerate() {
        a.ld(r, 8 * i as i32, src_a);
    }
    let (t1, t2) = (Reg::A3, Reg::A7);
    let mut acc = [Reg::A4, Reg::A5, Reg::A6];
    for &r in &acc {
        a.li(r, 0);
    }
    // Phase 1: cross products i < j, columns 1..=2L-3.
    a.sd(Reg::Zero, 0, dst); // column 0 has no cross term
    for k in 1..=2 * L - 3 {
        let lo = k.saturating_sub(L - 1);
        let hi = k.min(L - 1);
        for i in lo..=hi {
            let j = k - i;
            if i < j {
                mac(a, ise, acc, a_regs[i], a_regs[j], t1, t2);
            }
        }
        a.sd(acc[0], 8 * k as i32, dst);
        acc.rotate_left(1);
        a.li(acc[2], 0);
    }
    a.sd(acc[0], 8 * (2 * L - 2) as i32, dst);
    a.sd(acc[1], 8 * (2 * L - 1) as i32, dst);

    // Phase 2: double the cross-product sum in memory.
    let (w, c, c2) = (Reg::A4, Reg::A5, Reg::A6);
    a.li(c, 0);
    for k in 0..2 * L {
        a.ld(w, 8 * k as i32, dst);
        a.srli(c2, w, 63);
        a.slli(w, w, 1);
        a.or(w, w, c);
        a.sd(w, 8 * k as i32, dst);
        a.mv(c, c2);
    }

    // Phase 3: add the diagonal a_i^2 terms with a rippling carry.
    let (lo, hi, wv, carry, u) = (Reg::A4, Reg::A5, Reg::A6, Reg::A7, Reg::A3);
    a.li(carry, 0);
    for i in 0..L {
        if ise {
            // maddlu/maddhu keep the diagonal fused with the memory word.
            a.ld(wv, 8 * (2 * i) as i32, dst);
            a.add(wv, wv, carry);
            a.sltu(carry, wv, carry);
            a.custom_r4(MADDHU, hi, a_regs[i], a_regs[i], wv);
            a.custom_r4(MADDLU, wv, a_regs[i], a_regs[i], wv);
            a.sd(wv, 8 * (2 * i) as i32, dst);
            a.ld(wv, 8 * (2 * i + 1) as i32, dst);
            a.add(wv, wv, carry); // carry out of word 2i
            a.sltu(carry, wv, carry);
            a.add(wv, wv, hi);
            a.sltu(u, wv, hi);
            a.add(carry, carry, u);
            a.sd(wv, 8 * (2 * i + 1) as i32, dst);
        } else {
            a.mul(lo, a_regs[i], a_regs[i]);
            a.mulhu(hi, a_regs[i], a_regs[i]);
            a.ld(wv, 8 * (2 * i) as i32, dst);
            a.add(wv, wv, carry);
            a.sltu(carry, wv, carry);
            a.add(wv, wv, lo);
            a.sltu(u, wv, lo);
            a.add(carry, carry, u);
            a.sd(wv, 8 * (2 * i) as i32, dst);
            a.ld(wv, 8 * (2 * i + 1) as i32, dst);
            a.add(wv, wv, carry);
            a.sltu(carry, wv, carry);
            a.add(wv, wv, hi);
            a.sltu(u, wv, hi);
            a.add(carry, carry, u);
            a.sd(wv, 8 * (2 * i + 1) as i32, dst);
        }
    }
}

/// Squaring with the ISE: the 4-instruction MAC makes the
/// cross-product-halving trick a net loss (its doubling/diagonal
/// passes cost more than the 28 saved MACs), so the ISE-supported
/// squaring *is* the multiplication routine applied to `(a, a)` —
/// which is why Table 4 reports identical 371-cycle entries for
/// full-radix ISE multiplication and squaring.
fn emit_int_sqr_via_mul(a: &mut Assembler, dst: Reg, src_a: Reg) {
    let mut a_regs = A_REGS;
    a_regs[L - 1] = src_a;
    for (i, &r) in a_regs.iter().enumerate() {
        a.ld(r, 8 * i as i32, src_a);
    }
    let (t1, t2) = (Reg::A3, Reg::A7);
    let mut acc = [Reg::A4, Reg::A5, Reg::A6];
    for &r in &acc {
        a.li(r, 0);
    }
    for k in 0..2 * L - 1 {
        let lo = k.saturating_sub(L - 1);
        let hi = k.min(L - 1);
        for i in lo..=hi {
            mac(a, true, acc, a_regs[i], a_regs[k - i], t1, t2);
        }
        a.sd(acc[0], 8 * k as i32, dst);
        acc.rotate_left(1);
        a.li(acc[2], 0);
    }
    a.sd(acc[0], 8 * (2 * L - 1) as i32, dst);
}

fn int_sqr(ise: bool) -> Program {
    with_frame(
        &[
            Reg::S0,
            Reg::S1,
            Reg::S2,
            Reg::S3,
            Reg::S4,
            Reg::S5,
            Reg::S6,
        ],
        0,
        |a| {
            if ise {
                emit_int_sqr_via_mul(a, Reg::A0, Reg::A1);
            } else {
                emit_int_sqr_body(a, ise, Reg::A0, Reg::A1);
            }
        },
    )
}

/// Emits the product-scanning Montgomery reduction body:
/// `dst[0..8] = t[0..16]·R^{-1} mod' p`, result in `[0, 2p)`. Reads the
/// modulus and `p' = -p^{-1} mod 2^64` from the constant pool at
/// `consts`. Preserves `dst`, `src_t` and `consts`.
fn emit_redc_body(a: &mut Assembler, ise: bool, dst: Reg, src_t: Reg, consts: Reg) {
    load_words(a, &P_REGS, consts);
    let pinv = Reg::S9;
    a.ld(pinv, 8 * L as i32, consts);
    let (t1, t2, tval) = (Reg::A7, Reg::S10, Reg::A2);
    let mut acc = [Reg::A4, Reg::A5, Reg::A6];
    for &r in &acc {
        a.li(r, 0);
    }
    for k in 0..2 * L {
        // acc += t[k]
        a.ld(tval, 8 * k as i32, src_t);
        acc_add_word(a, ise, acc, tval, t1);
        if k < L {
            // acc += m_j * p_{k-j} for j < k, then derive m_k.
            for j in 0..k {
                mac(a, ise, acc, M_REGS[j], P_REGS[k - j], t1, t2);
            }
            a.mul(M_REGS[k], acc[0], pinv);
            mac(a, ise, acc, M_REGS[k], P_REGS[0], t1, t2);
            // acc[0] is now 0 by construction; drop it.
        } else {
            for j in (k - (L - 1))..L {
                mac(a, ise, acc, M_REGS[j], P_REGS[k - j], t1, t2);
            }
            a.sd(acc[0], 8 * (k - L) as i32, dst);
        }
        acc.rotate_left(1);
        a.li(acc[2], 0);
    }
}

fn mont_redc(ise: bool) -> Program {
    with_frame(
        &[
            Reg::S0,
            Reg::S1,
            Reg::S2,
            Reg::S3,
            Reg::S4,
            Reg::S5,
            Reg::S6,
            Reg::S7,
            Reg::S8,
            Reg::S9,
            Reg::S10,
        ],
        0,
        |a| {
            emit_redc_body(a, ise, Reg::A0, Reg::A1, Reg::A3);
        },
    )
}

/// Emits the borrow chain `t_regs <- x_regs - y_regs`, leaving the
/// final borrow (0/1) in `borrow`. `t_regs` may alias `y_regs`
/// (digit-wise: `y_i` is read before `t_i` is written).
fn emit_sub_chain(
    a: &mut Assembler,
    t_regs: &[Reg],
    x_regs: &[Reg],
    y_regs: &[Reg],
    borrow: Reg,
    u: Reg,
) {
    for i in 0..t_regs.len() {
        if i == 0 {
            a.sltu(borrow, x_regs[0], y_regs[0]);
            a.sub(t_regs[0], x_regs[0], y_regs[0]);
        } else {
            a.sltu(u, x_regs[i], y_regs[i]);
            a.sub(t_regs[i], x_regs[i], y_regs[i]);
            // subtract the incoming borrow
            let u2 = x_regs[i]; // x digit is dead after this step
            a.sltu(u2, t_regs[i], borrow);
            a.sub(t_regs[i], t_regs[i], borrow);
            a.or(borrow, u, u2);
        }
    }
}

/// Emits the carry chain `s_regs <- x_regs + y_regs`, leaving the
/// final carry in `carry`. `s_regs` may alias `y_regs` (the carry-out
/// comparison uses `x`, which must stay distinct).
fn emit_add_chain(
    a: &mut Assembler,
    s_regs: &[Reg],
    x_regs: &[Reg],
    y_regs: &[Reg],
    carry: Reg,
    u: Reg,
    v: Reg,
) {
    for i in 0..s_regs.len() {
        debug_assert_ne!(s_regs[i], x_regs[i], "s may alias y only");
        if i == 0 {
            a.add(s_regs[0], x_regs[0], y_regs[0]);
            a.sltu(carry, s_regs[0], x_regs[0]);
        } else {
            a.add(s_regs[i], x_regs[i], y_regs[i]);
            a.sltu(u, s_regs[i], x_regs[i]);
            a.add(s_regs[i], s_regs[i], carry);
            a.sltu(v, s_regs[i], carry);
            a.add(carry, u, v);
        }
    }
}

/// Emits the swap-based fast reduction (Algorithm 2) of the value in
/// `x_regs` against the modulus in `p_regs`, storing the canonical
/// result to `dst`. Clobbers `p_regs` (they receive `T = A − P`) and
/// the scratch registers.
fn emit_fast_reduce_tail(a: &mut Assembler, x_regs: &[Reg; 8], p_regs: &[Reg; 8], dst: Reg) {
    let (borrow, u) = (Reg::A4, Reg::A5);
    // T <- A - P, into the P registers.
    for i in 0..L {
        if i == 0 {
            a.sltu(borrow, x_regs[0], p_regs[0]);
            a.sub(p_regs[0], x_regs[0], p_regs[0]);
        } else {
            a.sltu(u, x_regs[i], p_regs[i]);
            a.sub(p_regs[i], x_regs[i], p_regs[i]);
            let u2 = Reg::A6;
            a.sltu(u2, p_regs[i], borrow);
            a.sub(p_regs[i], p_regs[i], borrow);
            a.or(borrow, u, u2);
        }
    }
    // M <- 0 - borrow ; R <- T xor (M and (A xor T))
    let m = Reg::A7;
    a.neg(m, borrow);
    for i in 0..L {
        a.xor(u, x_regs[i], p_regs[i]);
        a.and(u, u, m);
        a.xor(u, p_regs[i], u);
        a.sd(u, 8 * i as i32, dst);
    }
}

/// Fast modulo-p reduction (Algorithm 2): identical with and without
/// the full-radix ISE.
fn fast_reduce() -> Program {
    with_frame(&P_REGS, 0, |a| {
        let mut x_regs = B_REGS; // t0..t6, a2 (a2 free: unary op)
        x_regs[L - 1] = Reg::A2;
        for (i, &r) in x_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A1);
        }
        let p_regs = P_REGS;
        load_words(a, &p_regs, Reg::A3);
        emit_fast_reduce_tail(a, &x_regs, &p_regs, Reg::A0);
    })
}

/// Fp addition: carry-chain add then swap-based fast reduction.
/// Identical with and without the full-radix ISE.
fn fp_add() -> Program {
    with_frame(&P_REGS, 0, |a| {
        // Load A into the t-registers (a1 last), B into the s-registers.
        let a_regs = {
            let mut r = B_REGS;
            r[L - 1] = Reg::A1;
            r
        };
        for (i, &r) in a_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A1);
        }
        let mut b_regs = P_REGS;
        b_regs[L - 1] = Reg::A2;
        for (i, &r) in b_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A2);
        }
        // S <- A + B into the b registers.
        emit_add_chain(a, &b_regs, &a_regs, &b_regs, Reg::A4, Reg::A5, Reg::A6);
        // P into the a registers (now dead).
        for (i, &r) in a_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A3);
        }
        // Swap-based reduction of S against P: note A = S here.
        // Re-bind: x = b_regs (the sum), p = a_regs.
        let s_arr: [Reg; 8] = b_regs;
        let p_arr: [Reg; 8] = a_regs;
        emit_fast_reduce_tail(a, &s_arr, &p_arr, Reg::A0);
    })
}

/// Fp subtraction: `T ← A − B`, then add `M ∧ P` back (the Algorithm-1
/// variant of §3.1). Identical with and without the full-radix ISE.
fn fp_sub() -> Program {
    with_frame(&P_REGS, 0, |a| {
        let a_regs = {
            let mut r = B_REGS;
            r[L - 1] = Reg::A1;
            r
        };
        for (i, &r) in a_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A1);
        }
        let mut b_regs = P_REGS;
        b_regs[L - 1] = Reg::A2;
        for (i, &r) in b_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A2);
        }
        // T <- A - B into the b registers.
        emit_sub_chain(a, &b_regs, &a_regs, &b_regs, Reg::A4, Reg::A5);
        let m = Reg::A7;
        a.neg(m, Reg::A4);
        // Load P into the a registers and mask it.
        for (i, &r) in a_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A3);
            a.and(r, r, m);
        }
        // R <- T + (M & P), store. (x = masked P: the non-aliased input.)
        emit_add_chain(a, &b_regs, &a_regs, &b_regs, Reg::A4, Reg::A5, Reg::A6);
        for (i, &r) in b_regs.iter().enumerate() {
            a.sd(r, 8 * i as i32, Reg::A0);
        }
    })
}

const ALL_S: [Reg; 11] = [
    Reg::S0,
    Reg::S1,
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
    Reg::S8,
    Reg::S9,
    Reg::S10,
];

/// Fp multiplication: integer multiply into a stack buffer, Montgomery
/// reduction, then fast reduction — the composition whose cost Table 4
/// reports as the sum of its three component rows (plus staging).
fn fp_mul(ise: bool) -> Program {
    // Frame: 16 words t-buffer, 8 words r-buffer, saved a0 and a3.
    let t_off = 0;
    let r_off = 16;
    let a0_slot = 24;
    let a3_slot = 25;
    with_frame(&ALL_S, 26, move |a| {
        a.sd(Reg::A0, 8 * a0_slot, Reg::Sp);
        a.sd(Reg::A3, 8 * a3_slot, Reg::Sp); // mul body uses a3 as a temp
        a.addi(Reg::A0, Reg::Sp, 8 * t_off);
        emit_int_mul_body(a, ise, Reg::A0, Reg::A1, Reg::A2);
        a.addi(Reg::A1, Reg::Sp, 8 * t_off);
        a.addi(Reg::A0, Reg::Sp, 8 * r_off);
        a.ld(Reg::A3, 8 * a3_slot, Reg::Sp);
        emit_redc_body(a, ise, Reg::A0, Reg::A1, Reg::A3);
        // Fast reduce r-buffer into the caller's destination.
        let mut x_regs = B_REGS;
        x_regs[L - 1] = Reg::A2;
        a.addi(Reg::A1, Reg::Sp, 8 * r_off);
        for (i, &r) in x_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A1);
        }
        let p_regs = P_REGS;
        load_words(a, &p_regs, Reg::A3);
        a.ld(Reg::A0, 8 * a0_slot, Reg::Sp);
        emit_fast_reduce_tail(a, &x_regs, &p_regs, Reg::A0);
    })
}

/// Fp squaring: like [`fp_mul`] with the squaring front end.
fn fp_sqr(ise: bool) -> Program {
    let t_off = 0;
    let r_off = 16;
    let a0_slot = 24;
    let a3_slot = 25;
    with_frame(&ALL_S, 26, move |a| {
        a.sd(Reg::A0, 8 * a0_slot, Reg::Sp);
        a.sd(Reg::A3, 8 * a3_slot, Reg::Sp); // sqr body uses a3 as a temp
        a.addi(Reg::A0, Reg::Sp, 8 * t_off);
        if ise {
            emit_int_sqr_via_mul(a, Reg::A0, Reg::A1);
        } else {
            emit_int_sqr_body(a, ise, Reg::A0, Reg::A1);
        }
        a.addi(Reg::A1, Reg::Sp, 8 * t_off);
        a.addi(Reg::A0, Reg::Sp, 8 * r_off);
        a.ld(Reg::A3, 8 * a3_slot, Reg::Sp);
        emit_redc_body(a, ise, Reg::A0, Reg::A1, Reg::A3);
        let mut x_regs = B_REGS;
        x_regs[L - 1] = Reg::A2;
        a.addi(Reg::A1, Reg::Sp, 8 * r_off);
        for (i, &r) in x_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A1);
        }
        let p_regs = P_REGS;
        load_words(a, &p_regs, Reg::A3);
        a.ld(Reg::A0, 8 * a0_slot, Reg::Sp);
        emit_fast_reduce_tail(a, &x_regs, &p_regs, Reg::A0);
    })
}
