//! The four MAC micro-kernels of Listings 1–4 and the two
//! carry-propagation sequences of §3.2, as standalone programs.
//!
//! These exist to reproduce the instruction-count claims of the paper
//! (8 → 4 for the full-radix MAC, 6 → 2 for the reduced-radix MAC,
//! 3 → 2 for the final carry propagation) and to measure the latency
//! of each snippet in isolation.

use mpise_core::full_radix::{CADD, MADDHU, MADDLU};
use mpise_core::reduced_radix::{MADD57HU, MADD57LU, SRAIADD};
use mpise_sim::asm::{Assembler, Program};
use mpise_sim::Reg;

/// Operand/accumulator register convention shared by all MAC snippets:
/// `a = a0`, `b = a1`, `l = a2`, `h = a3`, `e = a4`; temporaries
/// `y = a5`, `z = a6`.
pub const A: Reg = Reg::A0;
/// Second multiplicand.
pub const B: Reg = Reg::A1;
/// Accumulator low word.
pub const ACC_L: Reg = Reg::A2;
/// Accumulator high word.
pub const ACC_H: Reg = Reg::A3;
/// Accumulator extra word (full-radix only).
pub const ACC_E: Reg = Reg::A4;
const Y: Reg = Reg::A5;
const Z: Reg = Reg::A6;

/// Listing 1: ISA-only full-radix MAC,
/// `(e ‖ h ‖ l) ← (e ‖ h ‖ l) + a·b`. Exactly 8 instructions.
pub fn listing1_full_isa() -> Program {
    let mut asm = Assembler::new();
    asm.mulhu(Z, A, B);
    asm.mul(Y, A, B);
    asm.add(ACC_L, ACC_L, Y);
    asm.sltu(Y, ACC_L, Y);
    asm.add(Z, Z, Y);
    asm.add(ACC_H, ACC_H, Z);
    asm.sltu(Z, ACC_H, Z);
    asm.add(ACC_E, ACC_E, Z);
    asm.finish()
}

/// Listing 2: ISA-only reduced-radix MAC,
/// `(h ‖ l) ← (h ‖ l) + a·b`. Exactly 6 instructions.
pub fn listing2_red_isa() -> Program {
    let mut asm = Assembler::new();
    asm.mulhu(Z, A, B);
    asm.mul(Y, A, B);
    asm.add(ACC_L, ACC_L, Y);
    asm.sltu(Y, ACC_L, Y);
    asm.add(Z, Z, Y);
    asm.add(ACC_H, ACC_H, Z);
    asm.finish()
}

/// Listing 3: ISE-supported full-radix MAC. Exactly 4 instructions.
pub fn listing3_full_ise() -> Program {
    let mut asm = Assembler::new();
    asm.custom_r4(MADDHU, Z, A, B, ACC_L);
    asm.custom_r4(MADDLU, ACC_L, A, B, ACC_L);
    asm.custom_r4(CADD, ACC_E, ACC_H, Z, ACC_E);
    asm.add(ACC_H, ACC_H, Z);
    asm.finish()
}

/// Listing 4: ISE-supported reduced-radix MAC. Exactly 2 instructions.
pub fn listing4_red_ise() -> Program {
    let mut asm = Assembler::new();
    asm.custom_r4(MADD57HU, ACC_H, A, B, ACC_H);
    asm.custom_r4(MADD57LU, ACC_L, A, B, ACC_L);
    asm.finish()
}

/// ISA-only carry propagation from limb `x = a0` into limb `y = a1`
/// with mask register `m = a2`: `srai z,x,57 ; add y,y,z ; and x,x,m`.
/// 3 instructions.
pub fn carry_prop_isa() -> Program {
    let mut asm = Assembler::new();
    asm.srai(Z, Reg::A0, 57);
    asm.add(Reg::A1, Reg::A1, Z);
    asm.and(Reg::A0, Reg::A0, Reg::A2);
    asm.finish()
}

/// ISE-supported carry propagation:
/// `sraiadd y,y,x,57 ; and x,x,m`. 2 instructions.
pub fn carry_prop_ise() -> Program {
    let mut asm = Assembler::new();
    asm.custom_shamt(SRAIADD, Reg::A1, Reg::A1, Reg::A0, 57);
    asm.and(Reg::A0, Reg::A0, Reg::A2);
    asm.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpise_core::{full_radix_ext, reduced_radix_ext};
    use mpise_sim::Machine;

    fn run_mac(prog: &Program, ext: mpise_sim::ext::IsaExtension, regs: &[(Reg, u64)]) -> Machine {
        // Append an ebreak so the machine halts after the snippet.
        let mut insts = prog.insts().to_vec();
        insts.push(mpise_sim::Inst::Ebreak);
        let mut m = Machine::with_ext(ext);
        m.load_program(&Program::from_insts(insts));
        for &(r, v) in regs {
            m.cpu.write_reg(r, v);
        }
        m.run().unwrap();
        m
    }

    #[test]
    fn instruction_counts_match_the_paper() {
        assert_eq!(listing1_full_isa().len(), 8);
        assert_eq!(listing2_red_isa().len(), 6);
        assert_eq!(listing3_full_ise().len(), 4);
        assert_eq!(listing4_red_ise().len(), 2);
        assert_eq!(carry_prop_isa().len(), 3);
        assert_eq!(carry_prop_ise().len(), 2);
    }

    #[test]
    fn listing1_and_listing3_agree() {
        let cases = [
            (3u64, 4u64, 5u64, 6u64, 7u64),
            (u64::MAX, u64::MAX, u64::MAX, u64::MAX, 0),
            (0xdead_beef_cafe_f00d, 0x0123_4567_89ab_cdef, 1, 2, 3),
        ];
        for (av, bv, l0, h0, e0) in cases {
            let regs = [(A, av), (B, bv), (ACC_L, l0), (ACC_H, h0), (ACC_E, e0)];
            let m1 = run_mac(
                &listing1_full_isa(),
                mpise_sim::ext::IsaExtension::new("none"),
                &regs,
            );
            let m3 = run_mac(&listing3_full_ise(), full_radix_ext(), &regs);
            for r in [ACC_L, ACC_H, ACC_E] {
                assert_eq!(m1.cpu.read_reg(r), m3.cpu.read_reg(r), "reg {r}");
            }
        }
    }

    #[test]
    fn listing2_and_listing4_agree_on_aligned_view() {
        // Listing 2 accumulates (h||l) as a 128-bit value; Listing 4
        // keeps l as "sum of low-57 parts" and h as "sum of >>57
        // parts". Their *values* agree: l4 + (h4 << 57) == l2 + (h2<<64).
        let a = (1u64 << 57) - 3;
        let b = (1u64 << 56) + 12345;
        let (l0, h0) = (99u64, 7u64);
        let regs2 = [(A, a), (B, b), (ACC_L, l0), (ACC_H, h0)];
        let m2 = run_mac(
            &listing2_red_isa(),
            mpise_sim::ext::IsaExtension::new("none"),
            &regs2,
        );
        // For the aligned comparison give listing 4 the same starting
        // value expressed in its representation: l = l0, h = h0<<7
        // (h0 counts 2^64 units = 2^7 units of 2^57).
        let regs4 = [(A, a), (B, b), (ACC_L, l0), (ACC_H, h0 << 7)];
        let m4 = run_mac(&listing4_red_ise(), reduced_radix_ext(), &regs4);
        let v2 = (m2.cpu.read_reg(ACC_H) as u128) << 64 | m2.cpu.read_reg(ACC_L) as u128;
        let v4 = ((m4.cpu.read_reg(ACC_H) as u128) << 57) + m4.cpu.read_reg(ACC_L) as u128;
        assert_eq!(v2, v4);
    }

    #[test]
    fn carry_props_agree() {
        let x = (5u64 << 57) | 0x1234;
        let y = 77u64;
        let mask = (1u64 << 57) - 1;
        let mi = run_mac(
            &carry_prop_isa(),
            mpise_sim::ext::IsaExtension::new("none"),
            &[(Reg::A0, x), (Reg::A1, y), (Reg::A2, mask)],
        );
        let me = run_mac(
            &carry_prop_ise(),
            reduced_radix_ext(),
            &[(Reg::A0, x), (Reg::A1, y), (Reg::A2, mask)],
        );
        assert_eq!(mi.cpu.read_reg(Reg::A0), me.cpu.read_reg(Reg::A0));
        assert_eq!(mi.cpu.read_reg(Reg::A1), me.cpu.read_reg(Reg::A1));
        assert_eq!(mi.cpu.read_reg(Reg::A1), 77 + 5);
        assert_eq!(mi.cpu.read_reg(Reg::A0), 0x1234);
    }
}
