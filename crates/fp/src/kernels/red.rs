//! Reduced-radix (radix-2^57) kernel generators.
//!
//! The MAC inner loop is Listing 2 (ISA-only, 128-bit `(h‖l)`
//! accumulator) or Listing 4 (ISE-supported, two auto-aligned 57-bit
//! accumulators). Carry propagation is the `srai/add/and` chain or the
//! fused `sraiadd/and` pair of §3.2. Following §3.1's analysis:
//!
//! * the stand-alone fast reduction (used as the final step of the
//!   Montgomery reduction) is *swap-based* (Algorithm 2);
//! * `Fp` addition and subtraction use the *addition-based* variant
//!   (Algorithm 1), which avoids having to bring the un-reduced sum
//!   into canonical form first.

use super::OpKind;
use mpise_core::reduced_radix::{MADD57HU, MADD57LU, SRAIADD};
use mpise_sim::asm::{Assembler, Program};
use mpise_sim::Reg;

const N: usize = crate::params::RED_LIMBS; // 9 limbs
const SHIFT: u8 = 57;

/// First-operand limb registers: `s0..s7` plus the clobbered pointer.
const A_REGS: [Reg; 9] = [
    Reg::S0,
    Reg::S1,
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
    Reg::A1,
];

/// Second-operand limb registers: `t0..t6, s8` plus the clobbered
/// pointer.
const B_REGS: [Reg; 9] = [
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
    Reg::S8,
    Reg::A2,
];

/// Modulus limb registers for the Montgomery reduction.
const P_REGS: [Reg; 9] = [
    Reg::S0,
    Reg::S1,
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
    Reg::S8,
];

/// Montgomery-factor limb registers for the reduction.
const M_REGS: [Reg; 9] = [
    Reg::T0,
    Reg::T1,
    Reg::T2,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
    Reg::S9,
    Reg::S10,
];

/// Generates the reduced-radix kernel for `op`.
pub fn generate(op: OpKind, ise: bool) -> Program {
    match op {
        OpKind::IntMul => int_mul(ise),
        OpKind::IntSqr => int_sqr(ise),
        OpKind::MontRedc => mont_redc(ise),
        OpKind::FastReduce => fast_reduce(ise),
        OpKind::FpAdd => fp_add(ise),
        OpKind::FpSub => fp_sub(ise),
        OpKind::FpMul => fp_mul(ise),
        OpKind::FpSqr => fp_sqr(ise),
    }
}

fn with_frame(saved: &[Reg], extra_words: usize, body: impl FnOnce(&mut Assembler)) -> Program {
    let mut a = Assembler::new();
    let frame = 8 * (saved.len() + extra_words) as i32;
    if frame > 0 {
        a.addi(Reg::Sp, Reg::Sp, -frame);
        for (i, &r) in saved.iter().enumerate() {
            a.sd(r, 8 * (extra_words + i) as i32, Reg::Sp);
        }
    }
    body(&mut a);
    if frame > 0 {
        for (i, &r) in saved.iter().enumerate() {
            a.ld(r, 8 * (extra_words + i) as i32, Reg::Sp);
        }
        a.addi(Reg::Sp, Reg::Sp, frame);
    }
    a.ret();
    a.finish()
}

/// Materializes the limb mask `2^57 − 1` into `rd` (two instructions).
fn load_mask(a: &mut Assembler, rd: Reg) {
    a.addi(rd, Reg::Zero, -1);
    a.srli(rd, rd, 64 - SHIFT as i32);
}

/// One reduced-radix MAC — Listing 2 (ISA: `(h‖l) += a·b` as a 128-bit
/// value) or Listing 4 (ISE: `l += lo57(a·b)`, `h += (a·b) >> 57`).
#[allow(clippy::too_many_arguments)]
fn mac(a: &mut Assembler, ise: bool, l: Reg, h: Reg, x: Reg, y: Reg, t1: Reg, t2: Reg) {
    if ise {
        a.custom_r4(MADD57HU, h, x, y, h);
        a.custom_r4(MADD57LU, l, x, y, l);
    } else {
        a.mulhu(t2, x, y);
        a.mul(t1, x, y);
        a.add(l, l, t1);
        a.sltu(t1, l, t1);
        a.add(t2, t2, t1);
        a.add(h, h, t2);
    }
}

/// Ends a product-scanning column: stores `l & mask` to
/// `dst[8*word]`, then shifts the accumulator down by 57 bits.
///
/// ISA: the accumulator is the 128-bit value `(h‖l)`;
/// ISE: `l` holds low-57 sums, `h` holds `>>57` sums, so the next `l`
/// is `h + (l >> 57)` in a single `sraiadd` ("the accumulator is
/// automatically aligned", §3.2).
#[allow(clippy::too_many_arguments)]
fn column_end(
    a: &mut Assembler,
    ise: bool,
    l: Reg,
    h: Reg,
    mask: Reg,
    t: Reg,
    dst: Reg,
    word: usize,
) {
    a.and(t, l, mask);
    a.sd(t, 8 * word as i32, dst);
    if ise {
        a.custom_shamt(SRAIADD, l, h, l, SHIFT);
        a.li(h, 0);
    } else {
        a.srli(l, l, SHIFT as i32);
        a.slli(t, h, 64 - SHIFT as i32);
        a.or(l, l, t);
        a.srli(h, h, SHIFT as i32);
    }
}

/// Like [`mac`] but *initializes* the accumulator with the first
/// partial product instead of adding to it (2 instructions in both
/// modes), used at the start of a squaring column.
fn mac_init(a: &mut Assembler, ise: bool, l: Reg, h: Reg, x: Reg, y: Reg) {
    if ise {
        a.custom_r4(MADD57HU, h, x, y, Reg::Zero);
        a.custom_r4(MADD57LU, l, x, y, Reg::Zero);
    } else {
        a.mulhu(h, x, y);
        a.mul(l, x, y);
    }
}

/// Carry propagation of `regs` (§3.2): `srai/add/and` per limb, or
/// `sraiadd/and` with the ISE. The top limb keeps its overflow/sign.
fn propagate(a: &mut Assembler, ise: bool, regs: &[Reg], mask: Reg, t: Reg) {
    for i in 0..regs.len() - 1 {
        if ise {
            a.custom_shamt(SRAIADD, regs[i + 1], regs[i + 1], regs[i], SHIFT);
        } else {
            a.srai(t, regs[i], SHIFT as i32);
            a.add(regs[i + 1], regs[i + 1], t);
        }
        a.and(regs[i], regs[i], mask);
    }
}

/// Emits `dst[0..18] = A · B` (canonical 57-bit limbs), A from `src_a`,
/// B from `src_b`. Clobbers `a3` (mask), `a4..a7` and the operand
/// registers.
fn emit_int_mul_body(a: &mut Assembler, ise: bool, dst: Reg, src_a: Reg, src_b: Reg) {
    let mut a_regs = A_REGS;
    a_regs[N - 1] = src_a;
    let mut b_regs = B_REGS;
    b_regs[N - 1] = src_b;
    for (i, &r) in a_regs.iter().enumerate() {
        a.ld(r, 8 * i as i32, src_a);
    }
    for (i, &r) in b_regs.iter().enumerate() {
        a.ld(r, 8 * i as i32, src_b);
    }
    let mask = Reg::A3;
    load_mask(a, mask);
    let (l, h, t1, t2) = (Reg::A4, Reg::A5, Reg::A6, Reg::A7);
    a.li(l, 0);
    a.li(h, 0);
    for k in 0..2 * N - 1 {
        let lo = k.saturating_sub(N - 1);
        let hi = k.min(N - 1);
        for i in lo..=hi {
            mac(a, ise, l, h, a_regs[i], b_regs[k - i], t1, t2);
        }
        column_end(a, ise, l, h, mask, t1, dst, k);
    }
    // After the last column the shifted-down remainder is the top limb.
    a.sd(l, 8 * (2 * N - 1) as i32, dst);
}

fn int_mul(ise: bool) -> Program {
    with_frame(
        &[
            Reg::S0,
            Reg::S1,
            Reg::S2,
            Reg::S3,
            Reg::S4,
            Reg::S5,
            Reg::S6,
            Reg::S7,
            Reg::S8,
        ],
        0,
        |a| emit_int_mul_body(a, ise, Reg::A0, Reg::A1, Reg::A2),
    )
}

/// Emits `dst[0..18] = A²`: per column, the cross products are
/// accumulated once, the column sum is doubled in registers, and the
/// diagonal term is added — avoiding both a second MAC per cross pair
/// and any extra memory passes.
fn emit_int_sqr_body(a: &mut Assembler, ise: bool, dst: Reg, src_a: Reg) {
    let mut a_regs = A_REGS;
    a_regs[N - 1] = src_a;
    for (i, &r) in a_regs.iter().enumerate() {
        a.ld(r, 8 * i as i32, src_a);
    }
    let mask = Reg::A3;
    load_mask(a, mask);
    let (l, h, t1, t2) = (Reg::A4, Reg::A5, Reg::A6, Reg::A7);
    let c = Reg::T0; // running 64-bit carry between columns
    a.li(c, 0);
    for k in 0..2 * N - 1 {
        let lo = k.saturating_sub(N - 1);
        let hi = k.min(N - 1);
        let crosses: Vec<(usize, usize)> = (lo..=hi)
            .map(|i| (i, k - i))
            .filter(|&(i, j)| i < j)
            .collect();
        // Cross terms once; the first product *initializes* the
        // accumulator instead of accumulating into a zeroed one,
        // saving the per-column `li l/h, 0` pair and one MAC tail.
        for (idx, &(i, j)) in crosses.iter().enumerate() {
            if idx == 0 {
                mac_init(a, ise, l, h, a_regs[i], a_regs[j]);
            } else {
                mac(a, ise, l, h, a_regs[i], a_regs[j], t1, t2);
            }
        }
        if !crosses.is_empty() {
            // Double the column sum (the carry from the previous
            // column is added afterwards, so it is not doubled).
            if ise {
                a.slli(l, l, 1);
                a.slli(h, h, 1);
            } else {
                a.slli(h, h, 1);
                a.srli(t1, l, 63);
                a.or(h, h, t1);
                a.slli(l, l, 1);
            }
            // Diagonal term for even columns.
            if k % 2 == 0 {
                mac(a, ise, l, h, a_regs[k / 2], a_regs[k / 2], t1, t2);
            }
        } else {
            // Pure diagonal column (k = 0 and k = 2N-2): the square
            // initializes the accumulator; nothing to double.
            debug_assert!(k % 2 == 0);
            mac_init(a, ise, l, h, a_regs[k / 2], a_regs[k / 2]);
        }
        // Add the carried-in remainder.
        if ise {
            a.add(l, l, c);
        } else {
            a.add(l, l, c);
            a.sltu(t1, l, c);
            a.add(h, h, t1);
        }
        a.and(t1, l, mask);
        a.sd(t1, 8 * k as i32, dst);
        // c = (accumulator) >> 57 for the next column.
        if ise {
            a.custom_shamt(SRAIADD, c, h, l, SHIFT);
        } else {
            a.srli(c, l, SHIFT as i32);
            a.slli(t1, h, 64 - SHIFT as i32);
            a.or(c, c, t1);
            // h >> 57 is zero here: h < 2^57 by the column bound.
        }
    }
    a.sd(c, 8 * (2 * N - 1) as i32, dst);
}

fn int_sqr(ise: bool) -> Program {
    with_frame(
        &[
            Reg::S0,
            Reg::S1,
            Reg::S2,
            Reg::S3,
            Reg::S4,
            Reg::S5,
            Reg::S6,
            Reg::S7,
        ],
        0,
        |a| emit_int_sqr_body(a, ise, Reg::A0, Reg::A1),
    )
}

/// Emits the product-scanning Montgomery reduction:
/// `dst[0..9] = t[0..18]·R^{-1} mod' p` with the result in `[0, 2p)`
/// (canonical limbs). Preserves `dst` and `src_t`; clobbers `consts`
/// (it becomes the mask register after the constant loads).
fn emit_redc_body(a: &mut Assembler, ise: bool, dst: Reg, src_t: Reg, consts: Reg) {
    for (i, &r) in P_REGS.iter().enumerate() {
        a.ld(r, 8 * i as i32, consts);
    }
    let pinv = Reg::S11;
    a.ld(pinv, 8 * N as i32, consts);
    let mask = consts; // consts pointer is dead from here on
    load_mask(a, mask);
    let (l, h, t1, t2, tval) = (Reg::A4, Reg::A5, Reg::A6, Reg::A7, Reg::A2);
    a.li(l, 0);
    a.li(h, 0);
    for k in 0..2 * N {
        // acc += t[k]
        a.ld(tval, 8 * k as i32, src_t);
        if ise {
            a.add(l, l, tval);
        } else {
            a.add(l, l, tval);
            a.sltu(t1, l, tval);
            a.add(h, h, t1);
        }
        if k < N {
            for j in 0..k {
                mac(a, ise, l, h, M_REGS[j], P_REGS[k - j], t1, t2);
            }
            // m_k = (l * p') mod 2^57
            a.mul(t1, l, pinv);
            a.and(M_REGS[k], t1, mask);
            mac(a, ise, l, h, M_REGS[k], P_REGS[0], t1, t2);
            // low 57 bits of l are now zero; shift them out.
            if ise {
                a.custom_shamt(SRAIADD, l, h, l, SHIFT);
                a.li(h, 0);
            } else {
                a.srli(l, l, SHIFT as i32);
                a.slli(t1, h, 64 - SHIFT as i32);
                a.or(l, l, t1);
                a.srli(h, h, SHIFT as i32);
            }
        } else {
            for j in (k - (N - 1))..N {
                mac(a, ise, l, h, M_REGS[j], P_REGS[k - j], t1, t2);
            }
            column_end(a, ise, l, h, mask, t1, dst, k - N);
        }
    }
}

fn mont_redc(ise: bool) -> Program {
    with_frame(
        &[
            Reg::S0,
            Reg::S1,
            Reg::S2,
            Reg::S3,
            Reg::S4,
            Reg::S5,
            Reg::S6,
            Reg::S7,
            Reg::S8,
            Reg::S9,
            Reg::S10,
            Reg::S11,
        ],
        0,
        |a| emit_redc_body(a, ise, Reg::A0, Reg::A1, Reg::A3),
    )
}

/// Emits the swap-based fast reduction (Algorithm 2) of a canonical
/// value in `[0, 2p)` loaded from `src`, storing the canonical result
/// to `dst`. `consts` points at the modulus limbs.
fn emit_fast_reduce_body(a: &mut Assembler, ise: bool, dst: Reg, src: Reg, consts: Reg) {
    // t0..t6, a2, src-pointer: avoids s8, which belongs to T below.
    let mut x_regs = B_REGS;
    x_regs[N - 2] = Reg::A2;
    x_regs[N - 1] = src;
    for (i, &r) in x_regs.iter().enumerate() {
        a.ld(r, 8 * i as i32, src);
    }
    let t_regs = P_REGS; // receives T = A - P
    for (i, &r) in t_regs.iter().enumerate() {
        a.ld(r, 8 * i as i32, consts);
    }
    let mask = consts; // consts dead after the loads
    load_mask(a, mask);
    // T <- A - P (lazy), then propagate borrows arithmetically.
    for i in 0..N {
        a.sub(t_regs[i], x_regs[i], t_regs[i]);
    }
    let t1 = Reg::A7;
    propagate(a, ise, &t_regs, mask, t1);
    // M <- sign mask of the top limb (all-ones iff A < P).
    let m = Reg::A6;
    a.srai(m, t_regs[N - 1], 63);
    // R <- T xor (M and (A xor T)); store.
    let u = Reg::A4;
    for i in 0..N {
        a.xor(u, x_regs[i], t_regs[i]);
        a.and(u, u, m);
        a.xor(u, t_regs[i], u);
        a.sd(u, 8 * i as i32, dst);
    }
}

fn fast_reduce(ise: bool) -> Program {
    with_frame(&P_REGS, 0, |a| {
        emit_fast_reduce_body(a, ise, Reg::A0, Reg::A1, Reg::A3);
    })
}

/// Fp addition, addition-based (Algorithm 1 with `T ← A + B − P`):
/// avoids propagating the raw sum into canonical form (§3.1).
fn fp_add(ise: bool) -> Program {
    with_frame(&P_REGS, 0, |a| {
        // Load B first (frees a2), then A into t0..t6, a2, a1.
        let b_regs = P_REGS;
        for (i, &r) in b_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A2);
        }
        let mut a_regs = B_REGS;
        a_regs[N - 2] = Reg::A2;
        a_regs[N - 1] = Reg::A1;
        for (i, &r) in a_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A1);
        }
        // T <- A + B - P, all lazy; then one propagation.
        for i in 0..N {
            a.add(b_regs[i], a_regs[i], b_regs[i]);
        }
        // P limbs reload into the a-registers (now dead).
        for (i, &r) in a_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A3);
        }
        for i in 0..N {
            a.sub(b_regs[i], b_regs[i], a_regs[i]);
        }
        let mask = Reg::A5;
        load_mask(a, mask);
        propagate(a, ise, &b_regs, mask, Reg::A7);
        // M <- sign(T); R <- T + (M & P); propagate; store.
        let m = Reg::A4;
        a.srai(m, b_regs[N - 1], 63);
        for i in 0..N {
            a.and(a_regs[i], a_regs[i], m);
            a.add(b_regs[i], b_regs[i], a_regs[i]);
        }
        propagate(a, ise, &b_regs, mask, Reg::A7);
        for (i, &r) in b_regs.iter().enumerate() {
            a.sd(r, 8 * i as i32, Reg::A0);
        }
    })
}

/// Fp subtraction: `T ← A − B`, conditional `+P`, addition-based.
fn fp_sub(ise: bool) -> Program {
    with_frame(&P_REGS, 0, |a| {
        // Load B first (frees a2), then A into t0..t6, a2, a1.
        let b_regs = P_REGS;
        for (i, &r) in b_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A2);
        }
        let mut a_regs = B_REGS;
        a_regs[N - 2] = Reg::A2;
        a_regs[N - 1] = Reg::A1;
        for (i, &r) in a_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A1);
        }
        // T <- A - B (lazy), propagate.
        for i in 0..N {
            a.sub(b_regs[i], a_regs[i], b_regs[i]);
        }
        let mask = Reg::A5;
        load_mask(a, mask);
        propagate(a, ise, &b_regs, mask, Reg::A7);
        // Conditional +P.
        let m = Reg::A4;
        a.srai(m, b_regs[N - 1], 63);
        for (i, &r) in a_regs.iter().enumerate() {
            a.ld(r, 8 * i as i32, Reg::A3);
            a.and(r, r, m);
            a.add(b_regs[i], b_regs[i], r);
        }
        propagate(a, ise, &b_regs, mask, Reg::A7);
        for (i, &r) in b_regs.iter().enumerate() {
            a.sd(r, 8 * i as i32, Reg::A0);
        }
    })
}

const ALL_S: [Reg; 12] = [
    Reg::S0,
    Reg::S1,
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
    Reg::S8,
    Reg::S9,
    Reg::S10,
    Reg::S11,
];

/// Fp multiplication: multiply into a stack buffer, Montgomery reduce,
/// fast reduce.
fn fp_mul(ise: bool) -> Program {
    let t_off = 0; // 18 words
    let r_off = 18; // 9 words
    let a0_slot = 27;
    let a3_slot = 28;
    with_frame(&ALL_S, 29, move |a| {
        a.sd(Reg::A0, 8 * a0_slot, Reg::Sp);
        a.sd(Reg::A3, 8 * a3_slot, Reg::Sp);
        a.addi(Reg::A0, Reg::Sp, 8 * t_off);
        emit_int_mul_body(a, ise, Reg::A0, Reg::A1, Reg::A2);
        a.addi(Reg::A1, Reg::Sp, 8 * t_off);
        a.addi(Reg::A0, Reg::Sp, 8 * r_off);
        a.ld(Reg::A3, 8 * a3_slot, Reg::Sp);
        emit_redc_body(a, ise, Reg::A0, Reg::A1, Reg::A3);
        a.addi(Reg::A1, Reg::Sp, 8 * r_off);
        a.ld(Reg::A0, 8 * a0_slot, Reg::Sp);
        a.ld(Reg::A3, 8 * a3_slot, Reg::Sp);
        emit_fast_reduce_body(a, ise, Reg::A0, Reg::A1, Reg::A3);
    })
}

/// Fp squaring: like [`fp_mul`] with the squaring front end.
fn fp_sqr(ise: bool) -> Program {
    let t_off = 0;
    let r_off = 18;
    let a0_slot = 27;
    let a3_slot = 28;
    with_frame(&ALL_S, 29, move |a| {
        a.sd(Reg::A0, 8 * a0_slot, Reg::Sp);
        a.sd(Reg::A3, 8 * a3_slot, Reg::Sp);
        a.addi(Reg::A0, Reg::Sp, 8 * t_off);
        emit_int_sqr_body(a, ise, Reg::A0, Reg::A1);
        a.addi(Reg::A1, Reg::Sp, 8 * t_off);
        a.addi(Reg::A0, Reg::Sp, 8 * r_off);
        a.ld(Reg::A3, 8 * a3_slot, Reg::Sp);
        emit_redc_body(a, ise, Reg::A0, Reg::A1, Reg::A3);
        a.addi(Reg::A1, Reg::Sp, 8 * r_off);
        a.ld(Reg::A0, 8 * a0_slot, Reg::Sp);
        a.ld(Reg::A3, 8 * a3_slot, Reg::Sp);
        emit_fast_reduce_body(a, ise, Reg::A0, Reg::A1, Reg::A3);
    })
}
