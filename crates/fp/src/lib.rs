//! # mpise-fp — the CSIDH-512 prime-field layer
//!
//! Everything the paper's software evaluation (§4, Table 4) measures
//! lives here:
//!
//! * [`params`]: the CSIDH-512 prime `p = 4·ℓ₁⋯ℓ₇₄ − 1` and its
//!   Montgomery constants, in both radix representations;
//! * [`backend`]: the [`backend::Fp`] trait and the two host-speed
//!   backends ([`backend::FpFull`] on radix-2^64,
//!   [`backend::FpRed`] on radix-2^57), plus an op-counting adapter;
//! * [`batch`]: the [`batch::FpBatch`] lane-parallel extension —
//!   element-wise `add_n`/`sub_n`/`mul_n`/`sqr_n` over 8–32
//!   independent lanes, hand-batched for both host backends (the
//!   engine's worker pool drives these);
//! * [`kernels`]: generators that emit the fully unrolled RV64
//!   assembly kernels for every Table 4 operation in all four
//!   configurations (full/reduced radix × ISA-only/ISE-supported) —
//!   the Rust equivalent of the hand-written assembler functions the
//!   authors wrote "from scratch";
//! * [`measure`]: executes those kernels on the `mpise-sim` Rocket
//!   model, checks them against the host backends, and reports cycle
//!   counts;
//! * [`simfp`]: an [`backend::Fp`] backend whose every operation
//!   runs on the simulator — used for the direct (full-simulation)
//!   reproduction of the CSIDH group-action row.

// Carry-chain and multi-array arithmetic code indexes several slices in
// lockstep; iterator rewrites of those loops obscure the digit algebra.
#![allow(clippy::needless_range_loop)]

pub mod backend;
pub mod batch;
pub mod ctspec;
pub mod kernels;
pub mod measure;
pub mod params;
pub mod simfp;

pub use backend::{CountingFp, Fp, FpFull, FpRed, OpCounts};
pub use batch::{FpBatch, ScalarFallback};
pub use params::Csidh512;
