//! Kernel execution and cycle measurement on the Rocket pipeline model.
//!
//! This module is the software-evaluation harness of §4: it loads each
//! generated kernel into a simulated machine, validates its result
//! against the host backends on random inputs, checks the
//! constant-time property (identical cycle counts across inputs), and
//! reports the cycle counts that populate Table 4.

use crate::kernels::{const_pool_full, const_pool_red, Config, KernelSet, OpKind, Radix};
use crate::params::{Csidh512, FULL_LIMBS, RED_LIMBS};
use mpise_mpi::reference::RefInt;
use mpise_mpi::{mul as mpi_mul, Reduced, U512};
use mpise_sim::machine::{RunStats, DATA_BASE};
use mpise_sim::timing::TimingStats;
use mpise_sim::{Machine, Reg};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Memory layout offsets (relative to [`DATA_BASE`]).
const RESULT_OFF: u64 = 0x000;
const OP1_OFF: u64 = 0x100;
const OP2_OFF: u64 = 0x200;
const CONST_OFF: u64 = 0x300;

/// Executes the kernels of one configuration.
#[derive(Debug)]
pub struct KernelRunner {
    /// The configuration being run.
    pub config: Config,
    /// One pre-loaded machine per operation, indexed by `op as usize`
    /// (a fixed array, not a map — [`KernelRunner::run`] sits on the
    /// full-simulation hot path of [`crate::simfp::SimFp`]).
    machines: [Option<Machine>; OpKind::ALL.len()],
}

impl KernelRunner {
    /// Builds machines (with the right ISA extension and constant pool)
    /// for every kernel of `config`.
    pub fn new(config: Config) -> Self {
        let set = KernelSet::build(config);
        let pool = match config.radix {
            Radix::Full => const_pool_full(),
            Radix::Reduced => const_pool_red(),
        };
        let mut machines: [Option<Machine>; OpKind::ALL.len()] = std::array::from_fn(|_| None);
        for (op, prog) in set.iter() {
            let mut m = Machine::with_ext(config.extension());
            m.load_program(prog);
            m.mem
                .write_limbs(DATA_BASE + CONST_OFF, &pool)
                .expect("constant pool fits");
            machines[op as usize] = Some(m);
        }
        KernelRunner { config, machines }
    }

    /// Runs one kernel on the given operand word arrays; returns the
    /// result words and the cycle count of the call.
    ///
    /// # Panics
    ///
    /// Panics if the kernel traps — generated kernels are straight-line
    /// and must not fault.
    pub fn run(&mut self, op: OpKind, inputs: &[&[u64]]) -> (Vec<u64>, u64) {
        let (out, stats) = self.run_full(op, inputs);
        (out, stats.cycles)
    }

    /// Like [`KernelRunner::run`] but returns the full per-call
    /// [`RunStats`] (instret, cycles, per-class timing deltas).
    ///
    /// # Panics
    ///
    /// Panics if the kernel traps — generated kernels are straight-line
    /// and must not fault.
    pub fn run_full(&mut self, op: OpKind, inputs: &[&[u64]]) -> (Vec<u64>, RunStats) {
        assert_eq!(inputs.len(), op.arity(), "wrong operand count for {op:?}");
        let (_, out_words) = op.shape(&self.config);
        let m = self.machines[op as usize].as_mut().expect("kernel exists");
        m.mem
            .write_limbs(DATA_BASE + OP1_OFF, inputs[0])
            .expect("operand fits");
        if inputs.len() > 1 {
            m.mem
                .write_limbs(DATA_BASE + OP2_OFF, inputs[1])
                .expect("operand fits");
        }
        let stats = m
            .call(&[
                (Reg::A0, DATA_BASE + RESULT_OFF),
                (Reg::A1, DATA_BASE + OP1_OFF),
                (Reg::A2, DATA_BASE + OP2_OFF),
                (Reg::A3, DATA_BASE + CONST_OFF),
            ])
            .unwrap_or_else(|e| panic!("{:?} kernel trapped: {e}", op));
        let out = m
            .mem
            .read_limbs(DATA_BASE + RESULT_OFF, out_words)
            .expect("result readable");
        // Sole choke point for simulated-cost attribution: every
        // simulator-backed field op funnels through here, so the cycles
        // are charged to the innermost open telemetry span exactly once.
        mpise_obs::add_sim_cost(stats.cycles, stats.instret);
        (out, stats)
    }
}

/// The measured cost of one Table 4 operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMeasurement {
    /// The operation.
    pub op: OpKind,
    /// Cycles per call on the Rocket pipeline model.
    pub cycles: u64,
    /// Instructions retired per call.
    pub instret: u64,
    /// Per-class retirement and stall counters for one call.
    pub timing: TimingStats,
}

/// Generates a random canonical residue (`< p`) in the word layout of
/// `radix`.
fn random_residue(rng: &mut StdRng, radix: Radix) -> Vec<u64> {
    let c = Csidh512::get();
    let v = loop {
        let cand = U512::from_limbs(std::array::from_fn(|_| rng.gen()));
        // Clear the top bit so cand < 2^511; then reject >= p.
        let cand = cand.and(&U512::MAX.shr(1));
        if cand < c.p {
            break cand;
        }
    };
    match radix {
        Radix::Full => v.limbs().to_vec(),
        Radix::Reduced => Reduced::<RED_LIMBS>::from_uint(&v).limbs().to_vec(),
    }
}

fn words_to_refint(words: &[u64], radix: Radix) -> RefInt {
    match radix {
        Radix::Full => RefInt::from_limbs(words),
        Radix::Reduced => {
            let mut acc = RefInt::zero();
            for (i, &w) in words.iter().enumerate() {
                acc = acc.add(&RefInt::from_limbs(&[w]).shl(57 * i));
            }
            acc
        }
    }
}

/// Computes the expected result of `op` on `inputs` using the host
/// arithmetic, as (value, modulus-to-compare-under).
///
/// `MontRedc` results are only defined modulo `p` (kernels return
/// `[0, 2p)`), so those are compared mod `p`; everything else must
/// match exactly.
fn expected(op: OpKind, config: &Config, inputs: &[&[u64]]) -> (RefInt, Option<RefInt>) {
    let c = Csidh512::get();
    let rp = RefInt::from_limbs(c.p.limbs());
    let radix = config.radix;
    let a_int = words_to_refint(inputs[0], radix);
    match op {
        OpKind::IntMul => {
            let b_int = words_to_refint(inputs[1], radix);
            (a_int.mul(&b_int), None)
        }
        OpKind::IntSqr => (a_int.mul(&a_int), None),
        OpKind::MontRedc => {
            // result * R ≡ t (mod p), result in [0, 2p)
            let r_bits = match radix {
                Radix::Full => 64 * FULL_LIMBS,
                Radix::Reduced => 57 * RED_LIMBS,
            };
            // Compute t * R^{-1} mod p via: find x with x*R ≡ t.
            // x = t * Rinv mod p; Rinv = R^(p-2)?? Simpler: use host
            // Montgomery contexts through the integer route:
            let t = a_int;
            // x = t * (R^{-1} mod p) mod p, computed as
            // t * R^{p-2 mod ...}: cheaper: x = (t * R_inv) where
            // R_inv = modpow(R, p-2, p).
            let r_big = RefInt::one().shl(r_bits);
            let pm2 = RefInt::from_limbs(c.p_minus_2.limbs());
            let r_inv = r_big.powmod(&pm2, &rp);
            (t.mulmod(&r_inv, &rp), Some(rp))
        }
        OpKind::FastReduce => (a_int.rem(&rp), None),
        OpKind::FpAdd => {
            let b_int = words_to_refint(inputs[1], radix);
            (a_int.add(&b_int).rem(&rp), None)
        }
        OpKind::FpSub => {
            let b_int = words_to_refint(inputs[1], radix);
            (a_int.add(&rp).sub(&b_int).rem(&rp), None)
        }
        OpKind::FpMul => {
            // Montgomery-domain multiply: a*b*R^{-1} mod p, canonical.
            let b_int = words_to_refint(inputs[1], radix);
            let r_bits = match radix {
                Radix::Full => 64 * FULL_LIMBS,
                Radix::Reduced => 57 * RED_LIMBS,
            };
            let r_big = RefInt::one().shl(r_bits);
            let pm2 = RefInt::from_limbs(c.p_minus_2.limbs());
            let r_inv = r_big.powmod(&pm2, &rp);
            (a_int.mulmod(&b_int, &rp).mulmod(&r_inv, &rp), None)
        }
        OpKind::FpSqr => {
            let r_bits = match radix {
                Radix::Full => 64 * FULL_LIMBS,
                Radix::Reduced => 57 * RED_LIMBS,
            };
            let r_big = RefInt::one().shl(r_bits);
            let pm2 = RefInt::from_limbs(c.p_minus_2.limbs());
            let r_inv = r_big.powmod(&pm2, &rp);
            (a_int.mulmod(&a_int, &rp).mulmod(&r_inv, &rp), None)
        }
    }
}

/// Generates valid random inputs for `op`.
fn random_inputs(rng: &mut StdRng, op: OpKind, config: &Config) -> Vec<Vec<u64>> {
    let radix = config.radix;
    let c = Csidh512::get();
    match op {
        OpKind::IntMul | OpKind::FpAdd | OpKind::FpSub | OpKind::FpMul => {
            vec![random_residue(rng, radix), random_residue(rng, radix)]
        }
        OpKind::IntSqr | OpKind::FpSqr => vec![random_residue(rng, radix)],
        OpKind::FastReduce => {
            // Value in [0, 2p): residue plus possibly p.
            let a = random_residue(rng, radix);
            if rng.gen::<bool>() {
                let v = words_to_refint(&a, radix).add(&RefInt::from_limbs(c.p.limbs()));
                let words = match radix {
                    Radix::Full => v.to_limbs(FULL_LIMBS),
                    Radix::Reduced => Reduced::<RED_LIMBS>::from_uint(&U512::from_limbs(
                        v.to_limbs(FULL_LIMBS).try_into().expect("8 limbs"),
                    ))
                    .limbs()
                    .to_vec(),
                };
                vec![words]
            } else {
                vec![a]
            }
        }
        OpKind::MontRedc => {
            // A double-length product of two residues.
            let a = random_residue(rng, radix);
            let b = random_residue(rng, radix);
            match radix {
                Radix::Full => {
                    let ua = U512::from_limbs(a.as_slice().try_into().expect("8 limbs"));
                    let ub = U512::from_limbs(b.as_slice().try_into().expect("8 limbs"));
                    let (lo, hi) = mpi_mul::mul_ps(&ua, &ub);
                    let mut t = lo.limbs().to_vec();
                    t.extend_from_slice(hi.limbs());
                    vec![t]
                }
                Radix::Reduced => {
                    let mut t = vec![0u64; 2 * RED_LIMBS];
                    mpise_mpi::reduced::mul_ps_slices_57(&a, &b, &mut t);
                    vec![t]
                }
            }
        }
    }
}

/// Validates one kernel on `iterations` random inputs and returns its
/// (constant) cycle count.
///
/// # Errors
///
/// Returns a description of the first mismatch: wrong value, value out
/// of canonical range, or input-dependent timing.
pub fn validate_and_measure(
    runner: &mut KernelRunner,
    op: OpKind,
    iterations: usize,
    seed: u64,
) -> Result<u64, String> {
    validate_and_measure_full(runner, op, iterations, seed).map(|m| m.cycles)
}

/// Like [`validate_and_measure`] but returns the full
/// [`OpMeasurement`] (cycles, instret, per-class timing).
///
/// # Errors
///
/// Returns a description of the first mismatch: wrong value, value out
/// of canonical range, or input-dependent timing.
pub fn validate_and_measure_full(
    runner: &mut KernelRunner,
    op: OpKind,
    iterations: usize,
    seed: u64,
) -> Result<OpMeasurement, String> {
    let _span = mpise_obs::span(op.span_name());
    let mut rng = StdRng::seed_from_u64(seed);
    let config = runner.config;
    let mut seen: Option<OpMeasurement> = None;
    for it in 0..iterations {
        let inputs = random_inputs(&mut rng, op, &config);
        let input_refs: Vec<&[u64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let (out, stats) = runner.run_full(op, &input_refs);
        let got = words_to_refint(&out, config.radix);
        let (want, modulus) = expected(op, &config, &input_refs);
        let ok = match &modulus {
            None => got == want,
            Some(m) => {
                got.rem(m) == want.rem(m) && got.cmp_ref(&m.add(m)) == std::cmp::Ordering::Less
            }
        };
        if !ok {
            return Err(format!("{config}: {op:?} wrong result on iteration {it}"));
        }
        match &seen {
            None => {
                seen = Some(OpMeasurement {
                    op,
                    cycles: stats.cycles,
                    instret: stats.instret,
                    timing: stats.timing,
                });
            }
            Some(m) if m.cycles != stats.cycles => {
                return Err(format!(
                    "{config}: {op:?} is not constant-time ({} vs {} cycles)",
                    m.cycles, stats.cycles
                ));
            }
            _ => {}
        }
    }
    Ok(seen.expect("at least one iteration"))
}

/// Measures all eight Table 4 operations for one configuration,
/// validating each against the host arithmetic.
///
/// # Panics
///
/// Panics on any validation failure (a kernel bug).
pub fn measure_config(config: Config, iterations: usize) -> Vec<OpMeasurement> {
    let _span = mpise_obs::span("fp.measure");
    let mut runner = KernelRunner::new(config);
    OpKind::ALL
        .iter()
        .map(|&op| {
            validate_and_measure_full(&mut runner, op, iterations, 0xC51D + op as u64)
                .unwrap_or_else(|e| panic!("{e}"))
        })
        .collect()
}

/// Measures the whole Table 4 matrix — all four configurations × all
/// eight operations — with one worker thread per configuration.
///
/// Each configuration owns its machines, so the four columns are
/// embarrassingly parallel; results come back in [`Config::ALL`] order
/// and are deterministic (same seeds as [`measure_config`]).
///
/// # Panics
///
/// Panics on any validation failure (a kernel bug) or if a worker
/// thread panics.
pub fn measure_matrix_parallel(iterations: usize) -> Vec<(Config, Vec<OpMeasurement>)> {
    std::thread::scope(|scope| {
        let workers: Vec<_> = Config::ALL
            .iter()
            .map(|&config| scope.spawn(move || (config, measure_config(config, iterations))))
            .collect();
        workers
            .into_iter()
            .map(|w| w.join().expect("measurement worker panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_isa_kernels_validate() {
        let mut runner = KernelRunner::new(Config::ALL[0]);
        for op in OpKind::ALL {
            validate_and_measure(&mut runner, op, 3, 1).unwrap();
        }
    }

    #[test]
    fn full_ise_kernels_validate() {
        let mut runner = KernelRunner::new(Config::ALL[1]);
        for op in OpKind::ALL {
            validate_and_measure(&mut runner, op, 3, 2).unwrap();
        }
    }

    #[test]
    fn red_isa_kernels_validate() {
        let mut runner = KernelRunner::new(Config::ALL[2]);
        for op in OpKind::ALL {
            validate_and_measure(&mut runner, op, 3, 3).unwrap();
        }
    }

    #[test]
    fn red_ise_kernels_validate() {
        let mut runner = KernelRunner::new(Config::ALL[3]);
        for op in OpKind::ALL {
            validate_and_measure(&mut runner, op, 3, 4).unwrap();
        }
    }

    #[test]
    fn ise_is_faster_where_it_matters() {
        // The headline shape of Table 4 at the kernel level.
        let isa = measure_config(Config::ALL[0], 2);
        let ise = measure_config(Config::ALL[1], 2);
        let red_isa = measure_config(Config::ALL[2], 2);
        let red_ise = measure_config(Config::ALL[3], 2);
        let get = |v: &[OpMeasurement], op: OpKind| {
            v.iter().find(|m| m.op == op).expect("measured").cycles
        };
        for op in [
            OpKind::IntMul,
            OpKind::IntSqr,
            OpKind::MontRedc,
            OpKind::FpMul,
            OpKind::FpSqr,
        ] {
            assert!(
                get(&ise, op) < get(&isa, op),
                "{op:?}: full ISE {} !< ISA {}",
                get(&ise, op),
                get(&isa, op)
            );
            assert!(
                get(&red_ise, op) < get(&red_isa, op),
                "{op:?}: red ISE {} !< ISA {}",
                get(&red_ise, op),
                get(&red_isa, op)
            );
        }
        // With ISEs, reduced radix overtakes full radix on Fp-mul/sqr
        // (§4: "the reduced-radix multiplication and squaring in Fp
        // become faster than the full-radix versions").
        assert!(get(&red_ise, OpKind::FpMul) < get(&ise, OpKind::FpMul));
        assert!(get(&red_ise, OpKind::FpSqr) < get(&ise, OpKind::FpSqr));
        // ISA-only: full radix wins on Fp-mul (§4).
        assert!(get(&isa, OpKind::FpMul) < get(&red_isa, OpKind::FpMul));
    }
}
