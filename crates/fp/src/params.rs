//! CSIDH-512 parameters.
//!
//! The CSIDH-512 prime (§2, "Basic CSIDH facts") is
//! `p = 4·ℓ₁·ℓ₂⋯ℓ₇₄ − 1`, where `ℓ₁ < … < ℓ₇₃` are the 73 smallest odd
//! primes (3 … 373) and `ℓ₇₄ = 587`. `p` is 511 bits long and satisfies
//! `p ≡ 3 (mod 8)`.

use mpise_mpi::reduced::MontCtx57;
use mpise_mpi::{MontCtx, Reduced, Uint, U512};
use std::sync::OnceLock;

/// Number of small odd primes dividing `(p + 1) / 4`.
pub const NUM_PRIMES: usize = 74;

/// Digits of a full-radix CSIDH-512 element (radix 2^64).
pub const FULL_LIMBS: usize = 8;

/// Limbs of a reduced-radix CSIDH-512 element (radix 2^57).
pub const RED_LIMBS: usize = 9;

/// The 74 small odd primes `ℓᵢ` of CSIDH-512.
pub const PRIMES: [u64; NUM_PRIMES] = [
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97,
    101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191, 193,
    197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307,
    311, 313, 317, 331, 337, 347, 349, 353, 359, 367, 373, 587,
];

/// The CSIDH-512 prime `p = 4·∏ℓᵢ − 1` as little-endian 64-bit digits.
///
/// These are the canonical limbs from the CSIDH reference code; the
/// test `prime_is_product_of_the_small_primes` re-derives them from
/// [`PRIMES`].
pub const P_LIMBS: [u64; FULL_LIMBS] = [
    0x1b81b90533c6c87b,
    0xc2721bf457aca835,
    0x516730cc1f0b4f25,
    0xa7aac6c567f35507,
    0x5afbfcc69322c9cd,
    0xb42d083aedc88c42,
    0xfc8ab0d15e3e4c4a,
    0x65b48e8f740f89bf,
];

/// All precomputed CSIDH-512 field constants, shared by every backend.
#[derive(Debug)]
pub struct Csidh512 {
    /// The prime `p`.
    pub p: U512,
    /// `(p − 1) / 2` — the Legendre-symbol exponent.
    pub p_minus_1_half: U512,
    /// `p − 2` — the Fermat-inversion exponent.
    pub p_minus_2: U512,
    /// `(p + 1) / 4 = ∏ℓᵢ`.
    pub p_plus_1_quarter: U512,
    /// Full-radix Montgomery context (`R = 2^512`).
    pub mont: MontCtx<FULL_LIMBS>,
    /// Reduced-radix Montgomery context (`R = 2^513`).
    pub mont57: MontCtx57<RED_LIMBS>,
}

impl Csidh512 {
    /// Returns the process-wide parameter set (built on first use).
    pub fn get() -> &'static Csidh512 {
        static INSTANCE: OnceLock<Csidh512> = OnceLock::new();
        INSTANCE.get_or_init(|| {
            let p = U512::from_limbs(P_LIMBS);
            let mont = MontCtx::new(p).expect("CSIDH-512 p is a valid Montgomery modulus");
            let mont57 = MontCtx57::new(Reduced::from_uint(&p))
                .expect("CSIDH-512 p is a valid radix-2^57 modulus");
            Csidh512 {
                p,
                p_minus_1_half: p.shr(1),
                p_minus_2: p.wrapping_sub(&Uint::from_u64(2)),
                p_plus_1_quarter: p.shr(2).wrapping_add(&Uint::ONE),
                mont,
                mont57,
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpise_mpi::reference::RefInt;

    #[test]
    fn prime_is_product_of_the_small_primes() {
        let mut prod = RefInt::from_u64(4);
        for &l in &PRIMES {
            prod = prod.mul(&RefInt::from_u64(l));
        }
        let p = prod.sub(&RefInt::one());
        assert_eq!(p.to_limbs(FULL_LIMBS), P_LIMBS.to_vec());
    }

    #[test]
    fn prime_shape() {
        let c = Csidh512::get();
        assert_eq!(c.p.bit_length(), 511);
        // p ≡ 3 (mod 8), required for End(E) = Z[sqrt(-p)] (§2).
        assert_eq!(c.p.limb(0) & 7, 3);
        assert!(c.p.is_odd());
    }

    #[test]
    fn primes_list_shape() {
        assert_eq!(PRIMES.len(), 74);
        // sorted, distinct, all odd
        for w in PRIMES.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(PRIMES.iter().all(|&l| l % 2 == 1));
        assert_eq!(PRIMES[72], 373);
        assert_eq!(PRIMES[73], 587);
        // Each really is prime.
        for &l in &PRIMES {
            assert!((2..l).take_while(|d| d * d <= l).all(|d| l % d != 0), "{l}");
        }
    }

    #[test]
    fn derived_exponents() {
        let c = Csidh512::get();
        assert_eq!(
            c.p_minus_1_half.wrapping_add(&c.p_minus_1_half),
            c.p.wrapping_sub(&U512::ONE)
        );
        assert_eq!(c.p_minus_2.wrapping_add(&U512::from_u64(2)), c.p);
        // (p+1)/4 = product of the primes
        let mut prod = RefInt::one();
        for &l in &PRIMES {
            prod = prod.mul(&RefInt::from_u64(l));
        }
        assert_eq!(
            c.p_plus_1_quarter.limbs().to_vec(),
            prod.to_limbs(FULL_LIMBS)
        );
    }

    #[test]
    fn mont_contexts_agree() {
        let c = Csidh512::get();
        // Multiply two values in both representations; results agree.
        let a =
            U512::from_hex("0x123456789abcdef0fedcba987654321000112233445566778899aabbccddeeff")
                .unwrap();
        let b =
            U512::from_hex("0x0fedcba987654321123456789abcdef0ffeeddccbbaa99887766554433221100")
                .unwrap();
        let am = c.mont.to_mont(&a);
        let bm = c.mont.to_mont(&b);
        let full = c.mont.from_mont(&c.mont.mul(&am, &bm));

        let ar = c.mont57.to_mont(&Reduced::from_uint(&a));
        let br = c.mont57.to_mont(&Reduced::from_uint(&b));
        let red = c.mont57.from_mont(&c.mont57.mul(&ar, &br));
        assert_eq!(red.to_uint::<FULL_LIMBS>(), full);
    }
}
