//! A field backend that executes every operation on the simulator.
//!
//! [`SimFp`] implements [`Fp`] by running the generated kernels of one
//! configuration on the Rocket pipeline model for every `add`, `sub`,
//! `mul` and `sqr`, accumulating the total simulated cycle count. With
//! it, the entire CSIDH group action runs "on" the simulated core —
//! the direct-mode reproduction of the last row of Table 4 (the
//! op-count × per-op-cost estimate is the fast mode; both are reported
//! in EXPERIMENTS.md).

use crate::backend::Fp;
use crate::kernels::{Config, OpKind, Radix};
use crate::measure::KernelRunner;
use crate::params::{Csidh512, FULL_LIMBS, RED_LIMBS};
use mpise_mpi::{Reduced, U512};
use std::cell::{Cell, RefCell};

/// Element representation: the kernel word layout padded to the
/// maximum limb count (reduced-radix uses all 9 words, full-radix the
/// first 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimElem {
    words: [u64; RED_LIMBS],
}

/// Simulator-backed CSIDH-512 field (see module docs).
///
/// # Examples
///
/// ```
/// use mpise_fp::simfp::SimFp;
/// use mpise_fp::kernels::Config;
/// use mpise_fp::Fp;
/// use mpise_mpi::U512;
///
/// let f = SimFp::new(Config::ALL[3]); // reduced-radix, ISE-supported
/// let a = f.from_uint(&U512::from_u64(6));
/// let b = f.from_uint(&U512::from_u64(7));
/// assert_eq!(f.to_uint(&f.mul(&a, &b)), U512::from_u64(42));
/// assert!(f.cycles() > 0);
/// ```
#[derive(Debug)]
pub struct SimFp {
    config: Config,
    runner: RefCell<KernelRunner>,
    cycles: Cell<u64>,
    calls: Cell<u64>,
}

impl SimFp {
    /// Builds the simulator backend for one configuration.
    pub fn new(config: Config) -> Self {
        SimFp {
            config,
            runner: RefCell::new(KernelRunner::new(config)),
            cycles: Cell::new(0),
            calls: Cell::new(0),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> Config {
        self.config
    }

    /// Total simulated cycles spent in field kernels so far.
    pub fn cycles(&self) -> u64 {
        self.cycles.get()
    }

    /// Total kernel calls so far.
    pub fn calls(&self) -> u64 {
        self.calls.get()
    }

    /// Resets the cycle and call counters.
    pub fn reset(&self) {
        self.cycles.set(0);
        self.calls.set(0);
    }

    fn words(&self) -> usize {
        self.config.elem_words()
    }

    fn run2(&self, op: OpKind, a: &SimElem, b: &SimElem) -> SimElem {
        let _span = mpise_obs::span(op.span_name());
        let n = self.words();
        let mut runner = self.runner.borrow_mut();
        let (out, stats) = runner.run_full(op, &[&a.words[..n], &b.words[..n]]);
        self.cycles.set(self.cycles.get() + stats.cycles);
        self.calls.set(self.calls.get() + 1);
        let mut words = [0u64; RED_LIMBS];
        words[..n].copy_from_slice(&out);
        SimElem { words }
    }

    fn run1(&self, op: OpKind, a: &SimElem) -> SimElem {
        let _span = mpise_obs::span(op.span_name());
        let n = self.words();
        let mut runner = self.runner.borrow_mut();
        let (out, stats) = runner.run_full(op, &[&a.words[..n]]);
        self.cycles.set(self.cycles.get() + stats.cycles);
        self.calls.set(self.calls.get() + 1);
        let mut words = [0u64; RED_LIMBS];
        words[..n].copy_from_slice(&out);
        SimElem { words }
    }

    fn pack(&self, v: &U512) -> SimElem {
        let mut words = [0u64; RED_LIMBS];
        match self.config.radix {
            Radix::Full => words[..FULL_LIMBS].copy_from_slice(v.limbs()),
            Radix::Reduced => {
                words.copy_from_slice(Reduced::<RED_LIMBS>::from_uint(v).limbs());
            }
        }
        SimElem { words }
    }

    fn unpack(&self, e: &SimElem) -> U512 {
        match self.config.radix {
            Radix::Full => {
                let mut limbs = [0u64; FULL_LIMBS];
                limbs.copy_from_slice(&e.words[..FULL_LIMBS]);
                U512::from_limbs(limbs)
            }
            Radix::Reduced => Reduced::<RED_LIMBS>::from_limbs(e.words).to_uint(),
        }
    }
}

impl Fp for SimFp {
    type Elem = SimElem;

    fn zero(&self) -> SimElem {
        SimElem {
            words: [0; RED_LIMBS],
        }
    }

    fn one(&self) -> SimElem {
        // Montgomery form of 1 for the matching radix.
        let c = Csidh512::get();
        match self.config.radix {
            Radix::Full => self.pack(c.mont.one()),
            Radix::Reduced => {
                let mut words = [0u64; RED_LIMBS];
                words.copy_from_slice(c.mont57.one().limbs());
                SimElem { words }
            }
        }
    }

    fn from_uint(&self, v: &U512) -> SimElem {
        // Host-side conversion into the Montgomery domain (the paper's
        // high-level C code performs conversions outside the measured
        // assembler kernels too).
        let c = Csidh512::get();
        match self.config.radix {
            Radix::Full => self.pack(&c.mont.to_mont(v)),
            Radix::Reduced => {
                let m = c.mont57.to_mont(&Reduced::from_uint(v));
                let mut words = [0u64; RED_LIMBS];
                words.copy_from_slice(m.limbs());
                SimElem { words }
            }
        }
    }

    fn to_uint(&self, a: &SimElem) -> U512 {
        let c = Csidh512::get();
        match self.config.radix {
            Radix::Full => c.mont.from_mont(&self.unpack(a)),
            Radix::Reduced => {
                let mut limbs = [0u64; RED_LIMBS];
                limbs.copy_from_slice(&a.words);
                c.mont57
                    .from_mont(&Reduced::from_limbs(limbs))
                    .to_uint::<FULL_LIMBS>()
            }
        }
    }

    fn add(&self, a: &SimElem, b: &SimElem) -> SimElem {
        self.run2(OpKind::FpAdd, a, b)
    }

    fn sub(&self, a: &SimElem, b: &SimElem) -> SimElem {
        self.run2(OpKind::FpSub, a, b)
    }

    fn mul(&self, a: &SimElem, b: &SimElem) -> SimElem {
        self.run2(OpKind::FpMul, a, b)
    }

    fn sqr(&self, a: &SimElem) -> SimElem {
        self.run1(OpKind::FpSqr, a)
    }

    fn is_zero(&self, a: &SimElem) -> bool {
        a.words.iter().all(|&w| w == 0)
    }

    fn select(&self, mask: u64, a: &SimElem, b: &SimElem) -> SimElem {
        let mut words = [0u64; RED_LIMBS];
        mpise_mpi::ct::select_limbs(mask, &a.words, &b.words, &mut words);
        SimElem { words }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::FpFull;

    #[test]
    fn sim_backends_agree_with_host() {
        let host = FpFull::new();
        for config in Config::ALL {
            let sim = SimFp::new(config);
            let a = U512::from_u64(123456789);
            let b = U512::from_u64(987654321);
            let (sa, sb) = (sim.from_uint(&a), sim.from_uint(&b));
            let (ha, hb) = (host.from_uint(&a), host.from_uint(&b));
            assert_eq!(
                sim.to_uint(&sim.mul(&sa, &sb)),
                host.to_uint(&host.mul(&ha, &hb)),
                "{config}"
            );
            assert_eq!(
                sim.to_uint(&sim.add(&sa, &sb)),
                host.to_uint(&host.add(&ha, &hb)),
                "{config}"
            );
            assert_eq!(
                sim.to_uint(&sim.sub(&sa, &sb)),
                host.to_uint(&host.sub(&ha, &hb)),
                "{config}"
            );
            assert_eq!(
                sim.to_uint(&sim.sqr(&sa)),
                host.to_uint(&host.sqr(&ha)),
                "{config}"
            );
        }
    }

    #[test]
    fn cycle_accounting() {
        let sim = SimFp::new(Config::ALL[0]);
        assert_eq!(sim.cycles(), 0);
        let a = sim.from_uint(&U512::from_u64(3));
        let _ = sim.mul(&a, &a);
        let after_one = sim.cycles();
        assert!(after_one > 100, "an Fp-mul costs hundreds of cycles");
        assert_eq!(sim.calls(), 1);
        let _ = sim.sqr(&a);
        assert!(sim.cycles() > after_one);
        sim.reset();
        assert_eq!(sim.cycles(), 0);
    }

    #[test]
    fn spans_reconcile_with_cycle_counter() {
        // The obs span tree and SimFp's own counter observe the same
        // kernel calls through the same choke point, so a span-wrapped
        // workload must account for every simulated cycle exactly.
        mpise_obs::set_enabled(true);
        let _ = mpise_obs::take_spans(); // drop anything stale on this thread
        let sim = SimFp::new(Config::ALL[3]);
        {
            let _g = mpise_obs::span("test.workload");
            let a = sim.from_uint(&U512::from_u64(5));
            let b = sim.from_uint(&U512::from_u64(9));
            let c = sim.mul(&a, &b);
            let _ = sim.add(&c, &a);
            let _ = sim.sqr(&b);
            let _ = sim.sub(&c, &b);
        }
        mpise_obs::set_enabled(false);
        let tree = mpise_obs::take_spans();
        let node = tree.child("test.workload").expect("span recorded");
        assert_eq!(node.total_cycles(), sim.cycles(), "every cycle attributed");
        assert!(node.total_instret() > 0);
        for child in ["fp.mul", "fp.add", "fp.sqr", "fp.sub"] {
            assert!(node.child(child).is_some(), "missing child span {child}");
        }
    }

    #[test]
    fn zero_and_one() {
        let sim = SimFp::new(Config::ALL[2]);
        assert!(sim.is_zero(&sim.zero()));
        assert_eq!(sim.to_uint(&sim.one()), U512::ONE);
        let one = sim.one();
        let two = sim.add(&one, &one);
        assert_eq!(sim.to_uint(&two), U512::from_u64(2));
    }
}
