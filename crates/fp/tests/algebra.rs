//! Algebraic property tests for the host field backends.
//!
//! Three oracle-independent families:
//!
//! * **inverse laws** — `(a + b) − b = a`, `a + (−a) = 0`, `a − a = 0`
//!   on seeded random elements, both radices;
//! * **schoolbook cross-check** — Montgomery `mul`/`sqr` round-trips
//!   (import → multiply → export) must match a plain `u128`
//!   schoolbook product reduced mod `p`, a path that shares no code
//!   with the Montgomery contexts;
//! * **radix equality** — the full-radix and reduced-radix backends
//!   must agree, byte for byte, on 10 000 seeded random elements per
//!   radix-pair operation.

use mpise_fp::params::Csidh512;
use mpise_fp::{Fp, FpFull, FpRed};
use mpise_mpi::reference::RefInt;
use mpise_mpi::U512;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_residue(rng: &mut StdRng) -> U512 {
    let p = Csidh512::get().p;
    loop {
        let cand = U512::from_limbs(std::array::from_fn(|_| rng.gen())).and(&U512::MAX.shr(1));
        if cand < p {
            return cand;
        }
    }
}

/// Schoolbook `a · b mod p` built from `u128` partial products — no
/// Montgomery arithmetic, no mpi multiply routines.
fn schoolbook_mulmod(a: &U512, b: &U512) -> U512 {
    let (al, bl) = (a.limbs(), b.limbs());
    let mut t = [0u64; 16];
    for i in 0..8 {
        let mut carry: u128 = 0;
        for j in 0..8 {
            let acc = t[i + j] as u128 + (al[i] as u128) * (bl[j] as u128) + carry;
            t[i + j] = acc as u64;
            carry = acc >> 64;
        }
        t[i + 8] = carry as u64;
    }
    let p = RefInt::from_limbs(Csidh512::get().p.limbs());
    let r = RefInt::from_limbs(&t).rem(&p);
    U512::from_limbs(r.to_limbs(8).try_into().expect("8 limbs"))
}

fn check_inverse_laws<F: Fp>(f: &F, seed: u64, iters: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..iters {
        let av = random_residue(&mut rng);
        let bv = random_residue(&mut rng);
        let a = f.from_uint(&av);
        let b = f.from_uint(&bv);
        // (a + b) − b = a
        assert_eq!(f.to_uint(&f.sub(&f.add(&a, &b), &b)), av);
        // a + (−a) = 0 and a − a = 0
        assert!(f.is_zero(&f.add(&a, &f.neg(&a))));
        assert!(f.is_zero(&f.sub(&a, &a)));
        // subtraction is addition of the negation
        assert_eq!(f.to_uint(&f.sub(&a, &b)), f.to_uint(&f.add(&a, &f.neg(&b))));
    }
}

#[test]
fn add_sub_inverse_laws_full_radix() {
    check_inverse_laws(&FpFull::new(), 0xA15E, 2_000);
}

#[test]
fn add_sub_inverse_laws_reduced_radix() {
    check_inverse_laws(&FpRed::new(), 0xA15E, 2_000);
}

fn check_schoolbook<F: Fp>(f: &F, seed: u64, iters: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..iters {
        let av = random_residue(&mut rng);
        let bv = random_residue(&mut rng);
        let a = f.from_uint(&av);
        let b = f.from_uint(&bv);
        // import → Montgomery multiply → export == schoolbook mod p
        assert_eq!(f.to_uint(&f.mul(&a, &b)), schoolbook_mulmod(&av, &bv));
        assert_eq!(f.to_uint(&f.sqr(&a)), schoolbook_mulmod(&av, &av));
    }
    // Edges: 0, 1, p−1 in every combination.
    let p = Csidh512::get().p;
    let edges = [U512::ZERO, U512::ONE, p.wrapping_sub(&U512::ONE)];
    for x in &edges {
        for y in &edges {
            let (a, b) = (f.from_uint(x), f.from_uint(y));
            assert_eq!(f.to_uint(&f.mul(&a, &b)), schoolbook_mulmod(x, y));
        }
    }
}

#[test]
fn montgomery_mul_matches_u128_schoolbook_full_radix() {
    check_schoolbook(&FpFull::new(), 0x5C00, 1_000);
}

#[test]
fn montgomery_mul_matches_u128_schoolbook_reduced_radix() {
    check_schoolbook(&FpRed::new(), 0x5C00, 1_000);
}

#[test]
fn full_and_reduced_radix_agree_on_10k_seeded_elements() {
    let full = FpFull::new();
    let red = FpRed::new();
    let mut rng = StdRng::seed_from_u64(0xE0_0A11);
    let mut prev = random_residue(&mut rng);
    for i in 0..10_000usize {
        let cur = random_residue(&mut rng);
        let (fa, fb) = (full.from_uint(&prev), full.from_uint(&cur));
        let (ra, rb) = (red.from_uint(&prev), red.from_uint(&cur));
        // One binary and one unary op per element keeps 10k affordable
        // while covering the whole op set over the run.
        let (gf, gr) = match i % 4 {
            0 => (full.add(&fa, &fb), red.add(&ra, &rb)),
            1 => (full.sub(&fa, &fb), red.sub(&ra, &rb)),
            2 => (full.mul(&fa, &fb), red.mul(&ra, &rb)),
            _ => (full.sqr(&fa), red.sqr(&ra)),
        };
        assert_eq!(
            full.to_uint(&gf).to_le_bytes(),
            red.to_uint(&gr).to_le_bytes(),
            "radix disagreement on element {i}"
        );
        prev = cur;
    }
}
