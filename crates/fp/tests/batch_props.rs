//! Property tests for the lane-parallel [`FpBatch`] kernels: every
//! batched operation must agree element-wise with the scalar [`Fp`]
//! operation, for every lane count in `1..=32`, on both radices, and
//! through the default scalar-fallback path.

use mpise_fp::params::Csidh512;
use mpise_fp::{FpBatch, FpFull, FpRed, ScalarFallback};
use mpise_mpi::U512;
use proptest::prelude::*;

/// Maps 512 arbitrary bits into `[0, p)`: mask to 511 bits, then one
/// conditional subtraction (511 bits < 2p).
fn reduce(raw: [u64; 8]) -> U512 {
    let p = &Csidh512::get().p;
    let cand = U512::from_limbs(raw).and(&U512::MAX.shr(1));
    if cand >= *p {
        cand.sbb(p, 0).0
    } else {
        cand
    }
}

/// Checks all four batched operations against the scalar trait on one
/// backend for one drawn set of lane inputs.
fn check_ops<F: FpBatch>(f: &F, pairs: &[([u64; 8], [u64; 8])]) -> Result<(), TestCaseError> {
    let a: Vec<F::Elem> = pairs
        .iter()
        .map(|(x, _)| f.from_uint(&reduce(*x)))
        .collect();
    let b: Vec<F::Elem> = pairs
        .iter()
        .map(|(_, y)| f.from_uint(&reduce(*y)))
        .collect();
    let lanes = pairs.len();
    let mut out = vec![f.zero(); lanes];

    f.add_n(&a, &b, &mut out);
    for i in 0..lanes {
        prop_assert_eq!(f.to_uint(&out[i]), f.to_uint(&f.add(&a[i], &b[i])));
    }
    f.sub_n(&a, &b, &mut out);
    for i in 0..lanes {
        prop_assert_eq!(f.to_uint(&out[i]), f.to_uint(&f.sub(&a[i], &b[i])));
    }
    f.mul_n(&a, &b, &mut out);
    for i in 0..lanes {
        prop_assert_eq!(f.to_uint(&out[i]), f.to_uint(&f.mul(&a[i], &b[i])));
    }
    f.sqr_n(&a, &mut out);
    for i in 0..lanes {
        prop_assert_eq!(f.to_uint(&out[i]), f.to_uint(&f.sqr(&a[i])));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Hand-batched full-radix kernels agree with scalar FpFull for
    /// random lane counts in `1..=32`.
    #[test]
    fn full_radix_batch_matches_scalar(
        pairs in prop::collection::vec(
            (prop::array::uniform8(any::<u64>()), prop::array::uniform8(any::<u64>())),
            1..33,
        )
    ) {
        check_ops(&FpFull::new(), &pairs)?;
    }

    /// Hand-batched reduced-radix kernels agree with scalar FpRed.
    #[test]
    fn reduced_radix_batch_matches_scalar(
        pairs in prop::collection::vec(
            (prop::array::uniform8(any::<u64>()), prop::array::uniform8(any::<u64>())),
            1..33,
        )
    ) {
        check_ops(&FpRed::new(), &pairs)?;
    }

    /// The default (scalar-fallback) `FpBatch` implementation agrees
    /// with the scalar trait on both radices — this pins the trait's
    /// default bodies, which any future backend inherits.
    #[test]
    fn default_fallback_matches_scalar(
        pairs in prop::collection::vec(
            (prop::array::uniform8(any::<u64>()), prop::array::uniform8(any::<u64>())),
            1..33,
        )
    ) {
        check_ops(&ScalarFallback(FpFull::new()), &pairs)?;
        check_ops(&ScalarFallback(FpRed::new()), &pairs)?;
    }
}

/// SplitMix64 for the deterministic exhaustive sweep below.
fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Every lane count in `1..=32` exactly once (the proptest above draws
/// lane counts randomly; this sweep guarantees none is skipped).
#[test]
fn every_lane_count_agrees_on_all_backends() {
    let mut state = 0x0BAD_5EED_u64;
    for lanes in 1..=32usize {
        let pairs: Vec<([u64; 8], [u64; 8])> = (0..lanes)
            .map(|_| {
                (
                    std::array::from_fn(|_| splitmix64(&mut state)),
                    std::array::from_fn(|_| splitmix64(&mut state)),
                )
            })
            .collect();
        check_ops(&FpFull::new(), &pairs).unwrap();
        check_ops(&FpRed::new(), &pairs).unwrap();
        check_ops(&ScalarFallback(FpFull::new()), &pairs).unwrap();
        check_ops(&ScalarFallback(FpRed::new()), &pairs).unwrap();
    }
}
