//! CMOS area model: gate equivalents (GE) per cell.
//!
//! 1 GE is one 2-input NAND (4 transistors); the weights below are the
//! usual transistor-count ratios of a static CMOS standard-cell
//! library. The `DspMul` macro is priced as an `w×w` array multiplier
//! (partial-product AND array plus a full-adder per product bit),
//! which is what its ASIC realization costs.

use crate::netlist::{CellKind, Netlist};

/// Gate-equivalent cost of one cell.
pub fn cell_ge(kind: CellKind, width: u32) -> f64 {
    match kind {
        CellKind::Inv => 0.67,
        CellKind::Nand2 | CellKind::Nor2 => 1.0,
        CellKind::And2 | CellKind::Or2 => 1.33,
        CellKind::Xor2 | CellKind::Xnor2 => 2.33,
        CellKind::Mux2 => 2.33,
        CellKind::HalfAdder => 3.0,
        CellKind::FullAdder => 6.33,
        CellKind::Dff => 5.33,
        CellKind::DspMul => {
            // AND array + (w² − w) adders + final carry-propagate.
            let w = width as f64;
            w * w * 1.33 + (w * w - w) * 6.33
        }
    }
}

/// Total gate-equivalent area of a netlist.
pub fn netlist_ge(n: &Netlist) -> f64 {
    n.cells().iter().map(|c| cell_ge(c.kind, c.width)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_are_ordered_sensibly() {
        assert!(cell_ge(CellKind::Inv, 0) < cell_ge(CellKind::Nand2, 0));
        assert!(cell_ge(CellKind::Nand2, 0) < cell_ge(CellKind::Xor2, 0));
        assert!(cell_ge(CellKind::HalfAdder, 0) < cell_ge(CellKind::FullAdder, 0));
    }

    #[test]
    fn dsp_macro_scales_quadratically() {
        let g16 = cell_ge(CellKind::DspMul, 16);
        let g64 = cell_ge(CellKind::DspMul, 64);
        assert!(g64 / g16 > 14.0 && g64 / g16 < 18.0);
    }

    #[test]
    fn netlist_totals() {
        let mut n = Netlist::new("t");
        let a = n.input();
        let b = n.input();
        let x = n.xor2(a, b);
        let q = n.dff(x);
        n.output(q);
        let total = netlist_ge(&n);
        assert!((total - (2.33 + 5.33)).abs() < 1e-9);
    }
}
