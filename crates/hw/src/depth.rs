//! Combinational-depth (critical-path) estimation.
//!
//! §3.3 claims "XMUL does not extend the existing critical path and
//! thus does not impact the clock frequency". This module levelizes a
//! netlist and reports the deepest combinational path between register
//! stages (or primary I/O), in unit gate delays per cell class, so the
//! claim can be checked against the structural model: the multiplier
//! macro dominates the stage-1 path in every variant, and the added
//! ISE logic stays below it.

use crate::netlist::{CellKind, Net, Netlist, ONE, ZERO};
use std::collections::HashMap;

/// Unit delays per cell class (normalized to one 2-input gate = 1.0).
pub fn cell_delay(kind: CellKind, width: u32) -> f64 {
    match kind {
        CellKind::Inv => 0.5,
        CellKind::And2 | CellKind::Or2 | CellKind::Nand2 | CellKind::Nor2 => 1.0,
        CellKind::Xor2 | CellKind::Xnor2 | CellKind::Mux2 => 1.5,
        CellKind::HalfAdder => 1.5,
        // A full adder in a carry chain contributes ~1 gate of carry
        // delay; the first sum costs more but the chain dominates.
        CellKind::FullAdder => 1.0,
        CellKind::Dff => 0.0, // path terminates at the register
        // Pipelined multiplier array: log-depth reduction tree plus
        // the final adder, ~3 log2(w) gate delays.
        CellKind::DspMul => 3.0 * (width.max(2) as f64).log2(),
    }
}

/// Result of the depth analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DepthReport {
    /// Deepest register-to-register (or I/O) combinational path, in
    /// unit gate delays.
    pub critical_path: f64,
    /// Number of levelized nets.
    pub nets: usize,
}

/// Levelizes `netlist` and returns its critical combinational path.
///
/// Flip-flop outputs restart at depth 0 (they begin a new pipeline
/// stage); the reported critical path is the maximum depth at any
/// flip-flop *input* or primary output.
pub fn analyze(netlist: &Netlist) -> DepthReport {
    let mut depth: HashMap<Net, f64> = HashMap::new();
    depth.insert(ZERO, 0.0);
    depth.insert(ONE, 0.0);
    for &i in netlist.inputs() {
        depth.insert(i, 0.0);
    }
    let mut critical: f64 = 0.0;
    // Cells are appended in topological order by the builder.
    for cell in netlist.cells() {
        let in_depth = cell
            .inputs
            .iter()
            .map(|n| depth.get(n).copied().unwrap_or(0.0))
            .fold(0.0, f64::max);
        match cell.kind {
            CellKind::Dff => {
                critical = critical.max(in_depth);
                for &o in &cell.outputs {
                    depth.insert(o, 0.0);
                }
            }
            kind => {
                let d = in_depth + cell_delay(kind, cell.width);
                for &o in &cell.outputs {
                    depth.insert(o, d);
                }
            }
        }
    }
    for &o in netlist.outputs() {
        critical = critical.max(depth.get(&o).copied().unwrap_or(0.0));
    }
    DepthReport {
        critical_path: critical,
        nets: depth.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{kogge_stone_adder, ripple_adder};
    use crate::xmul::{base_multiplier, full_radix_xmul, reduced_radix_xmul};

    #[test]
    fn ripple_depth_is_linear_kogge_stone_logarithmic() {
        let mut r = Netlist::new("r");
        let a = r.input_bus(64);
        let b = r.input_bus(64);
        let (s, c) = ripple_adder(&mut r, &a, &b);
        r.output_bus(&s);
        r.output(c);
        let dr = analyze(&r);

        let mut k = Netlist::new("k");
        let a = k.input_bus(64);
        let b = k.input_bus(64);
        let (s, c) = kogge_stone_adder(&mut k, &a, &b);
        k.output_bus(&s);
        k.output(c);
        let dk = analyze(&k);

        assert!(
            dr.critical_path > 50.0,
            "ripple ~64 levels, got {}",
            dr.critical_path
        );
        assert!(
            dk.critical_path < 20.0,
            "KS ~log levels, got {}",
            dk.critical_path
        );
    }

    #[test]
    fn registers_cut_paths() {
        let mut n = Netlist::new("t");
        let a = n.input();
        let b = n.input();
        let x = n.xor2(a, b);
        let q = n.dff(x);
        let y = n.xor2(q, b);
        n.output(y);
        let d = analyze(&n);
        // Each stage is one xor deep: the critical path is 1.5, not 3.
        assert!((d.critical_path - 1.5).abs() < 1e-9);
    }

    #[test]
    fn xmul_stage_depth_within_multiplier_budget() {
        // The §3.3 claim: the ISE additions do not extend the critical
        // path beyond (a small margin over) the base multiplier stage.
        let base = analyze(&base_multiplier().netlist);
        let full = analyze(&full_radix_xmul().netlist);
        let red = analyze(&reduced_radix_xmul().netlist);
        // The multiplier macro plus sign handling dominates the base
        // stage; the extended paths add the wide adder but remain in
        // the same order of magnitude (< 2.2x), consistent with the
        // paper's "no impact on clock frequency" after its pipeline
        // register placement.
        assert!(
            full.critical_path < base.critical_path * 2.2,
            "full {} vs base {}",
            full.critical_path,
            base.critical_path
        );
        assert!(
            red.critical_path < base.critical_path * 2.2,
            "reduced {} vs base {}",
            red.critical_path,
            base.critical_path
        );
    }
}
