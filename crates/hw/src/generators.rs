//! Parameterized arithmetic-block generators.

use crate::netlist::{Bus, Net, Netlist, ZERO};

/// Ripple-carry adder: returns `(sum, carry_out)`.
///
/// # Panics
///
/// Panics if the operand widths differ.
pub fn ripple_adder(n: &mut Netlist, a: &[Net], b: &[Net]) -> (Bus, Net) {
    assert_eq!(a.len(), b.len());
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = ZERO;
    for i in 0..a.len() {
        let (s, c) = if i == 0 {
            n.half_adder(a[0], b[0])
        } else {
            n.full_adder(a[i], b[i], carry)
        };
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Kogge–Stone parallel-prefix adder: returns `(sum, carry_out)`.
///
/// Log-depth carries at the cost of O(n log n) prefix cells — the
/// adder family synthesis tools pick for timing-critical wide adds.
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn kogge_stone_adder(n: &mut Netlist, a: &[Net], b: &[Net]) -> (Bus, Net) {
    assert_eq!(a.len(), b.len());
    assert!(!a.is_empty());
    let w = a.len();
    // Generate/propagate.
    let mut g: Bus = (0..w).map(|i| n.and2(a[i], b[i])).collect();
    let mut p: Bus = (0..w).map(|i| n.xor2(a[i], b[i])).collect();
    let p0 = p.clone(); // save the half-sum bits
    let mut dist = 1;
    while dist < w {
        let mut g2 = g.clone();
        let mut p2 = p.clone();
        for i in dist..w {
            // (g,p)_i = (g_i | p_i & g_{i-d}, p_i & p_{i-d})
            let t = n.and2(p[i], g[i - dist]);
            g2[i] = n.or2(g[i], t);
            p2[i] = n.and2(p[i], p[i - dist]);
        }
        g = g2;
        p = p2;
        dist *= 2;
    }
    // sum_i = p0_i xor carry_{i-1}; carry_i = g_i (prefix).
    let mut sum = Vec::with_capacity(w);
    sum.push(p0[0]);
    for i in 1..w {
        sum.push(n.xor2(p0[i], g[i - 1]));
    }
    (sum, g[w - 1])
}

/// One carry-save 3:2 compressor row: reduces three buses to two
/// (`sum`, `carry << 1`). Buses must share a width; the carry bus is
/// returned already shifted (low bit zero).
///
/// # Panics
///
/// Panics if widths differ.
pub fn csa_row(n: &mut Netlist, a: &[Net], b: &[Net], c: &[Net]) -> (Bus, Bus) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), c.len());
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = vec![ZERO; a.len()];
    for i in 0..a.len() {
        let (s, co) = n.full_adder(a[i], b[i], c[i]);
        sum.push(s);
        if i + 1 < a.len() {
            carry[i + 1] = co;
        }
    }
    (sum, carry)
}

/// Wallace-style carry-save reduction of many addends to two, followed
/// by no final adder (the caller picks one). All addends must share a
/// width.
///
/// # Panics
///
/// Panics if fewer than two addends are given or widths differ.
pub fn csa_tree(n: &mut Netlist, addends: Vec<Bus>) -> (Bus, Bus) {
    assert!(addends.len() >= 2);
    let w = addends[0].len();
    assert!(addends.iter().all(|a| a.len() == w));
    let mut layer = addends;
    while layer.len() > 2 {
        let mut next = Vec::new();
        let mut it = layer.chunks_exact(3);
        for chunk in &mut it {
            let (s, c) = csa_row(n, &chunk[0], &chunk[1], &chunk[2]);
            next.push(s);
            next.push(c);
        }
        next.extend(it.remainder().iter().cloned());
        layer = next;
    }
    let mut it = layer.into_iter();
    let a = it.next().expect("two rows");
    let b = it.next().expect("two rows");
    (a, b)
}

/// Unsigned array multiplier built from an AND partial-product array,
/// a carry-save reduction tree, and a Kogge–Stone final adder.
/// Returns the `2w`-bit product.
///
/// The [`crate::netlist::Netlist::dsp_mul`] macro should be preferred
/// when modelling FPGA mapping; this generator exists for the CMOS
/// (ASIC) view and for sanity checks of the reduction tree.
pub fn array_multiplier(n: &mut Netlist, a: &[Net], b: &[Net]) -> Bus {
    assert_eq!(a.len(), b.len());
    let w = a.len();
    let out_w = 2 * w;
    // Partial products, each aligned into a 2w-bit row.
    let mut rows: Vec<Bus> = Vec::with_capacity(w);
    for (j, &bj) in b.iter().enumerate() {
        let mut row = vec![ZERO; out_w];
        for (i, &ai) in a.iter().enumerate() {
            row[i + j] = n.and2(ai, bj);
        }
        rows.push(row);
    }
    let (s, c) = csa_tree(n, rows);
    let (sum, _) = kogge_stone_adder(n, &s, &c);
    sum
}

/// Logarithmic barrel shifter: shifts `a` right by the binary amount
/// `sh` (little-endian select bus). `arithmetic` selects sign fill.
pub fn barrel_shifter_right(n: &mut Netlist, a: &[Net], sh: &[Net], arithmetic: bool) -> Bus {
    let w = a.len();
    let fill = if arithmetic { a[w - 1] } else { ZERO };
    let mut cur: Bus = a.to_vec();
    for (stage, &sel) in sh.iter().enumerate() {
        let dist = 1usize << stage;
        if dist >= w {
            // Shifting by >= w replaces everything with fill when sel.
            cur = (0..w).map(|i| n.mux2(sel, fill, cur[i])).collect();
            continue;
        }
        let mut next = Vec::with_capacity(w);
        for i in 0..w {
            let shifted = if i + dist < w { cur[i + dist] } else { fill };
            next.push(n.mux2(sel, shifted, cur[i]));
        }
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{assign_bus as set_bus, bus_value};
    use std::collections::HashMap;

    fn eval(n: &Netlist, input_values: &[(Net, bool)]) -> HashMap<Net, bool> {
        n.evaluate(input_values)
    }

    fn bus_val(bus: &[Net], vals: &HashMap<Net, bool>) -> u64 {
        bus_value(bus, vals)
    }

    #[test]
    fn ripple_adder_adds() {
        for (x, y) in [(0u64, 0u64), (5, 9), (255, 1), (170, 85)] {
            let mut n = Netlist::new("t");
            let a = n.input_bus(8);
            let b = n.input_bus(8);
            let (s, co) = ripple_adder(&mut n, &a, &b);
            let mut iv = set_bus(&a, x);
            iv.extend(set_bus(&b, y));
            let vals = eval(&n, &iv);
            let got = bus_val(&s, &vals) | ((vals[&co] as u64) << 8);
            assert_eq!(got, x + y, "{x}+{y}");
        }
    }

    #[test]
    fn kogge_stone_matches_ripple() {
        for (x, y) in [
            (0u64, 0u64),
            (0xffff, 1),
            (0x1234, 0xfedc),
            (0xaaaa, 0x5555),
        ] {
            let mut n = Netlist::new("t");
            let a = n.input_bus(16);
            let b = n.input_bus(16);
            let (s, co) = kogge_stone_adder(&mut n, &a, &b);
            let mut iv = set_bus(&a, x);
            iv.extend(set_bus(&b, y));
            let vals = eval(&n, &iv);
            let got = bus_val(&s, &vals) | ((vals[&co] as u64) << 16);
            assert_eq!(got, x + y, "{x}+{y}");
        }
    }

    #[test]
    fn csa_tree_preserves_sums() {
        let mut n = Netlist::new("t");
        let buses: Vec<_> = (0..5).map(|_| n.input_bus(12)).collect();
        let (s, c) = csa_tree(&mut n, buses.clone());
        let vals_in = [100u64, 200, 300, 55, 1000];
        let mut iv = Vec::new();
        for (bus, &v) in buses.iter().zip(&vals_in) {
            iv.extend(set_bus(bus, v));
        }
        let vals = eval(&n, &iv);
        let total = (bus_val(&s, &vals) + bus_val(&c, &vals)) & 0xfff;
        assert_eq!(total, vals_in.iter().sum::<u64>() & 0xfff);
    }

    #[test]
    fn array_multiplier_multiplies() {
        for (x, y) in [(0u64, 7u64), (13, 11), (255, 255), (200, 100)] {
            let mut n = Netlist::new("t");
            let a = n.input_bus(8);
            let b = n.input_bus(8);
            let p = array_multiplier(&mut n, &a, &b);
            let mut iv = set_bus(&a, x);
            iv.extend(set_bus(&b, y));
            let vals = eval(&n, &iv);
            assert_eq!(bus_val(&p, &vals), x * y, "{x}*{y}");
        }
    }

    #[test]
    fn barrel_shifter_logical_and_arithmetic() {
        for (v, sh) in [(0x80u64, 3u64), (0xff, 7), (0x5a, 0)] {
            let mut n = Netlist::new("t");
            let a = n.input_bus(8);
            let s = n.input_bus(3);
            let out_l = barrel_shifter_right(&mut n, &a, &s, false);
            let out_a = barrel_shifter_right(&mut n, &a, &s, true);
            let mut iv = set_bus(&a, v);
            iv.extend(set_bus(&s, sh));
            let vals = eval(&n, &iv);
            assert_eq!(bus_val(&out_l, &vals), v >> sh, "logical {v}>>{sh}");
            let expect = ((v as i8 as i64) >> sh) as u64 & 0xff;
            assert_eq!(bus_val(&out_a, &vals), expect, "arith {v}>>{sh}");
        }
    }
}
