//! # mpise-hw — structural hardware cost model
//!
//! The paper evaluates its ISEs in hardware by extending the Rocket
//! core's pipelined multiplier into an "XMUL" unit and synthesizing
//! the result with Vivado for an Artix-7 FPGA (Table 3: LUTs, Regs,
//! DSPs, CMOS). We cannot run Vivado here, so this crate substitutes a
//! structural model (documented in DESIGN.md):
//!
//! * [`netlist`]: a gate-level netlist representation with a builder
//!   API (cells: inverters, 2-input gates, muxes, half/full adders,
//!   flip-flops, DSP-mapped multiplier macros);
//! * [`generators`]: parameterized RTL generators — ripple and
//!   parallel-prefix (Kogge–Stone) adders, carry-save reduction trees,
//!   an array multiplier, barrel shifters, mask networks;
//! * [`xmul`]: the three multiplier-datapath variants of the paper
//!   (base RV64M multiplier, + full-radix ISE, + reduced-radix ISE),
//!   built from the same datapath decomposition as the functional
//!   model in `mpise-core::xmul`;
//! * [`map`]: a greedy 6-input LUT technology mapper with
//!   carry-chain-aware adder handling, a flip-flop census, and
//!   DSP-block inference for the multiplier array;
//! * [`area`]: CMOS gate-equivalent weights per cell;
//! * [`rocket`]: the calibrated base-core figures plus the structural
//!   deltas, assembling Table 3.
//!
//! The *base core* line is a calibration constant (we cannot
//! synthesize Rocket); the two *delta* lines — the quantity the
//! experiment is actually about — are computed from real generated
//! netlists.

// Carry-chain and multi-array arithmetic code indexes several slices in
// lockstep; iterator rewrites of those loops obscure the digit algebra.
#![allow(clippy::needless_range_loop)]

pub mod area;
pub mod depth;
pub mod generators;
pub mod map;
pub mod netlist;
pub mod rocket;
pub mod xmul;

pub use map::MapReport;
pub use rocket::{table3, CoreCost, Table3};
