//! Technology mapping: 6-input LUT covering, register census and DSP
//! inference.
//!
//! The LUT mapper is a greedy cone-packing heuristic in the spirit of
//! Chortle/FlowMap's practical variants: gates are visited in
//! topological (construction) order; a gate is absorbed into the LUT
//! of its fan-ins when the merged input support stays within `K = 6`
//! and every absorbed fan-in has a single fan-out. Adder cells are
//! special-cased at one LUT per bit, modelling the dedicated
//! carry chains (`CARRY4`/`CARRY8`) FPGA tools use for ripple adders.

use crate::netlist::{CellKind, Net, Netlist, ONE, ZERO};
use std::collections::{BTreeSet, HashMap};

/// LUT input width of the target fabric (Artix-7: 6).
pub const K: usize = 6;

/// The mapping result for one netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MapReport {
    /// 6-input LUTs.
    pub luts: usize,
    /// Flip-flops.
    pub regs: usize,
    /// DSP blocks.
    pub dsps: usize,
    /// Netlist cell count (pre-mapping), for diagnostics.
    pub cells: usize,
}

impl MapReport {
    /// Component-wise difference (`self − base`), saturating at zero.
    pub fn delta(&self, base: &MapReport) -> MapReport {
        MapReport {
            luts: self.luts.saturating_sub(base.luts),
            regs: self.regs.saturating_sub(base.regs),
            dsps: self.dsps.saturating_sub(base.dsps),
            cells: self.cells.saturating_sub(base.cells),
        }
    }
}

/// DSP blocks needed for a `w × w` multiplier: tiling with the 16-bit
/// granularity of cascaded DSP48E1 slices (`ceil(w/16)²`), matching
/// the 16 DSPs Vivado reports for the Rocket core's 64-bit multiplier.
pub fn dsp_tiles(width: u32) -> usize {
    let t = width.div_ceil(16) as usize;
    t * t
}

/// Maps a netlist onto LUTs / FFs / DSPs.
pub fn map(netlist: &Netlist) -> MapReport {
    // Fan-out counts per net.
    let mut fanout: HashMap<Net, usize> = HashMap::new();
    for cell in netlist.cells() {
        for &i in &cell.inputs {
            *fanout.entry(i).or_insert(0) += 1;
        }
    }
    for &o in netlist.outputs() {
        *fanout.entry(o).or_insert(0) += 1;
    }

    // For each combinational gate output: the set of LUT inputs of the
    // (possibly merged) LUT rooted there, or None for non-LUT nets
    // (inputs, FF/adder/DSP outputs, constants).
    let mut support: HashMap<Net, BTreeSet<Net>> = HashMap::new();
    let mut luts = 0usize;
    let mut regs = 0usize;
    let mut dsps = 0usize;

    for cell in netlist.cells() {
        match cell.kind {
            CellKind::Dff => regs += 1,
            CellKind::DspMul => dsps += dsp_tiles(cell.width),
            CellKind::FullAdder | CellKind::HalfAdder => {
                // One LUT + carry-chain element per bit. The LUT in
                // front of a CARRY element has spare inputs, so
                // single-fanout gates feeding the adder's `a`/`b`
                // operands pack into it (standard Xilinx mapping of a
                // mux/and ahead of an adder).
                luts += 1;
                let mut budget: BTreeSet<Net> = BTreeSet::new();
                for &input in cell.inputs.iter().take(2) {
                    if let Some(sub) = support.get(&input) {
                        if fanout.get(&input).copied().unwrap_or(0) == 1 {
                            let mut merged = budget.clone();
                            merged.extend(sub.iter().copied());
                            if merged.len() < K {
                                budget = merged;
                                luts = luts.saturating_sub(1);
                            }
                        }
                    }
                }
            }
            _ => {
                // Plain combinational gate: try to absorb single-fanout
                // fan-in LUTs into one bigger LUT.
                let mut merged: BTreeSet<Net> = BTreeSet::new();
                let mut absorbed: Vec<Net> = Vec::new();
                for &input in &cell.inputs {
                    if input == ZERO || input == ONE {
                        continue; // constants are free
                    }
                    match support.get(&input) {
                        Some(sub) if fanout.get(&input).copied().unwrap_or(0) == 1 => {
                            merged.extend(sub.iter().copied());
                            absorbed.push(input);
                        }
                        _ => {
                            merged.insert(input);
                        }
                    }
                }
                if merged.len() > K {
                    // Merge overflows the LUT: keep fan-ins as separate
                    // LUT roots and feed them directly.
                    merged = cell
                        .inputs
                        .iter()
                        .copied()
                        .filter(|&n| n != ZERO && n != ONE)
                        .collect();
                    absorbed.clear();
                }
                // This gate becomes a LUT root; each absorbed fan-in
                // stops being one.
                luts += 1;
                luts = luts.saturating_sub(absorbed.len());
                support.insert(cell.outputs[0], merged);
            }
        }
    }

    MapReport {
        luts,
        regs,
        dsps,
        cells: netlist.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::ripple_adder;

    #[test]
    fn adders_map_to_one_lut_per_bit() {
        let mut n = Netlist::new("t");
        let a = n.input_bus(64);
        let b = n.input_bus(64);
        let (s, c) = ripple_adder(&mut n, &a, &b);
        n.output_bus(&s);
        n.output(c);
        let r = map(&n);
        assert_eq!(r.luts, 64);
        assert_eq!(r.regs, 0);
    }

    #[test]
    fn gate_chains_pack_into_luts() {
        // A 2-level tree with 6 total inputs packs into a single LUT.
        let mut n = Netlist::new("t");
        let ins = n.input_bus(6);
        let a = n.and2(ins[0], ins[1]);
        let b = n.and2(ins[2], ins[3]);
        let c = n.xor2(ins[4], ins[5]);
        let d = n.or2(a, b);
        let e = n.or2(d, c);
        n.output(e);
        let r = map(&n);
        assert_eq!(r.luts, 1, "5 gates over 6 inputs fit one 6-LUT");
    }

    #[test]
    fn wide_cones_split() {
        // 8 inputs cannot fit one 6-LUT.
        let mut n = Netlist::new("t");
        let ins = n.input_bus(8);
        let mut acc = ins[0];
        for &i in &ins[1..] {
            acc = n.xor2(acc, i);
        }
        n.output(acc);
        let r = map(&n);
        assert!(
            r.luts >= 2,
            "8-input parity needs at least 2 LUTs, got {}",
            r.luts
        );
    }

    #[test]
    fn shared_nets_are_not_absorbed() {
        // A net with fanout 2 must remain a LUT boundary.
        let mut n = Netlist::new("t");
        let ins = n.input_bus(4);
        let shared = n.and2(ins[0], ins[1]);
        let u = n.or2(shared, ins[2]);
        let v = n.xor2(shared, ins[3]);
        n.output(u);
        n.output(v);
        let r = map(&n);
        assert_eq!(r.luts, 3);
    }

    #[test]
    fn dsp_inference() {
        assert_eq!(dsp_tiles(64), 16);
        assert_eq!(dsp_tiles(16), 1);
        assert_eq!(dsp_tiles(17), 4);
        let mut n = Netlist::new("t");
        let a = n.input_bus(64);
        let b = n.input_bus(64);
        let p = n.dsp_mul(&a, &b);
        n.output_bus(&p);
        assert_eq!(map(&n).dsps, 16);
    }

    #[test]
    fn registers_counted() {
        let mut n = Netlist::new("t");
        let a = n.input_bus(10);
        let q = n.dff_bus(&a);
        n.output_bus(&q);
        assert_eq!(map(&n).regs, 10);
    }
}
