//! Gate-level netlist representation and builder.

use std::fmt;

/// Primitive cell kinds.
///
/// `DspMul` is a coarse-grained macro: an `n×n` unsigned multiplier
/// core that technology mapping assigns to DSP blocks rather than
/// LUTs, the way Vivado infers DSP48E1s for multiplier arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Inverter.
    Inv,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 2:1 multiplexer (inputs: sel, a, b; output = sel ? a : b).
    Mux2,
    /// Half adder (outputs: sum, carry).
    HalfAdder,
    /// Full adder (outputs: sum, carry).
    FullAdder,
    /// D flip-flop.
    Dff,
    /// DSP-mapped multiplier macro (see [`CellKind`] docs); the
    /// `width` field of the cell records the operand width.
    DspMul,
}

impl CellKind {
    /// Number of logic inputs the cell consumes.
    pub fn arity(self) -> usize {
        match self {
            CellKind::Inv | CellKind::Dff => 1,
            CellKind::And2
            | CellKind::Or2
            | CellKind::Nand2
            | CellKind::Nor2
            | CellKind::Xor2
            | CellKind::Xnor2
            | CellKind::HalfAdder => 2,
            CellKind::Mux2 | CellKind::FullAdder => 3,
            CellKind::DspMul => 0, // bus-level macro; inputs tracked separately
        }
    }
}

/// A net (wire) identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Net(pub u32);

/// Constant-zero net (always net 0).
pub const ZERO: Net = Net(0);
/// Constant-one net (always net 1).
pub const ONE: Net = Net(1);

/// One instantiated cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// The primitive kind.
    pub kind: CellKind,
    /// Input nets.
    pub inputs: Vec<Net>,
    /// Output nets (1 for gates, 2 for adders).
    pub outputs: Vec<Net>,
    /// Operand width for macro cells (0 otherwise).
    pub width: u32,
}

/// A bus is a little-endian vector of nets.
pub type Bus = Vec<Net>;

/// A netlist under construction.
///
/// # Examples
///
/// ```
/// use mpise_hw::netlist::Netlist;
/// let mut n = Netlist::new("demo");
/// let a = n.input_bus(4);
/// let b = n.input_bus(4);
/// let (sum, carry) = mpise_hw::generators::ripple_adder(&mut n, &a, &b);
/// n.output_bus(&sum);
/// n.output(carry);
/// assert_eq!(n.count(mpise_hw::netlist::CellKind::FullAdder)
///          + n.count(mpise_hw::netlist::CellKind::HalfAdder), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    name: &'static str,
    next_net: u32,
    cells: Vec<Cell>,
    inputs: Vec<Net>,
    outputs: Vec<Net>,
}

impl Netlist {
    /// Creates an empty netlist. Nets 0 and 1 are the constants.
    pub fn new(name: &'static str) -> Self {
        Netlist {
            name,
            next_net: 2,
            cells: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The netlist's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Primary inputs.
    pub fn inputs(&self) -> &[Net] {
        &self.inputs
    }

    /// Primary outputs.
    pub fn outputs(&self) -> &[Net] {
        &self.outputs
    }

    fn fresh(&mut self) -> Net {
        let n = Net(self.next_net);
        self.next_net += 1;
        n
    }

    /// Declares a primary input.
    pub fn input(&mut self) -> Net {
        let n = self.fresh();
        self.inputs.push(n);
        n
    }

    /// Declares a bus of primary inputs.
    pub fn input_bus(&mut self, width: usize) -> Bus {
        (0..width).map(|_| self.input()).collect()
    }

    /// Marks a net as a primary output.
    pub fn output(&mut self, n: Net) {
        self.outputs.push(n);
    }

    /// Marks a bus as primary outputs.
    pub fn output_bus(&mut self, bus: &[Net]) {
        self.outputs.extend_from_slice(bus);
    }

    fn gate(&mut self, kind: CellKind, inputs: &[Net]) -> Net {
        debug_assert_eq!(inputs.len(), kind.arity());
        let out = self.fresh();
        self.cells.push(Cell {
            kind,
            inputs: inputs.to_vec(),
            outputs: vec![out],
            width: 0,
        });
        out
    }

    /// Inverter.
    pub fn inv(&mut self, a: Net) -> Net {
        self.gate(CellKind::Inv, &[a])
    }

    /// 2-input AND.
    pub fn and2(&mut self, a: Net, b: Net) -> Net {
        self.gate(CellKind::And2, &[a, b])
    }

    /// 2-input OR.
    pub fn or2(&mut self, a: Net, b: Net) -> Net {
        self.gate(CellKind::Or2, &[a, b])
    }

    /// 2-input XOR.
    pub fn xor2(&mut self, a: Net, b: Net) -> Net {
        self.gate(CellKind::Xor2, &[a, b])
    }

    /// 2:1 mux: `sel ? a : b`.
    pub fn mux2(&mut self, sel: Net, a: Net, b: Net) -> Net {
        self.gate(CellKind::Mux2, &[sel, a, b])
    }

    /// Half adder; returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: Net, b: Net) -> (Net, Net) {
        let sum = self.fresh();
        let carry = self.fresh();
        self.cells.push(Cell {
            kind: CellKind::HalfAdder,
            inputs: vec![a, b],
            outputs: vec![sum, carry],
            width: 0,
        });
        (sum, carry)
    }

    /// Full adder; returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: Net, b: Net, cin: Net) -> (Net, Net) {
        let sum = self.fresh();
        let carry = self.fresh();
        self.cells.push(Cell {
            kind: CellKind::FullAdder,
            inputs: vec![a, b, cin],
            outputs: vec![sum, carry],
            width: 0,
        });
        (sum, carry)
    }

    /// D flip-flop.
    pub fn dff(&mut self, d: Net) -> Net {
        self.gate(CellKind::Dff, &[d])
    }

    /// Registers a whole bus.
    pub fn dff_bus(&mut self, bus: &[Net]) -> Bus {
        bus.iter().map(|&n| self.dff(n)).collect()
    }

    /// Bitwise mux over buses.
    ///
    /// # Panics
    ///
    /// Panics if the buses differ in width.
    pub fn mux_bus(&mut self, sel: Net, a: &[Net], b: &[Net]) -> Bus {
        assert_eq!(a.len(), b.len());
        (0..a.len()).map(|i| self.mux2(sel, a[i], b[i])).collect()
    }

    /// Bitwise AND of a bus with one control net (mask gating).
    pub fn and_bus(&mut self, bus: &[Net], ctrl: Net) -> Bus {
        bus.iter().map(|&n| self.and2(n, ctrl)).collect()
    }

    /// Bitwise XOR of two buses.
    ///
    /// # Panics
    ///
    /// Panics if the buses differ in width.
    pub fn xor_bus(&mut self, a: &[Net], b: &[Net]) -> Bus {
        assert_eq!(a.len(), b.len());
        (0..a.len()).map(|i| self.xor2(a[i], b[i])).collect()
    }

    /// A DSP-mapped `width × width` unsigned multiplier macro producing
    /// a `2·width` bus.
    pub fn dsp_mul(&mut self, a: &[Net], b: &[Net]) -> Bus {
        assert_eq!(a.len(), b.len());
        let width = a.len() as u32;
        let outputs: Bus = (0..2 * a.len()).map(|_| self.fresh()).collect();
        let mut inputs = a.to_vec();
        inputs.extend_from_slice(b);
        self.cells.push(Cell {
            kind: CellKind::DspMul,
            inputs,
            outputs: outputs.clone(),
            width,
        });
        outputs
    }

    /// Number of cells of one kind.
    pub fn count(&self, kind: CellKind) -> usize {
        self.cells.iter().filter(|c| c.kind == kind).count()
    }

    /// Total cell count.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the netlist has no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl Netlist {
    /// Evaluates the netlist combinationally: given values for the
    /// primary inputs, computes every reachable net. Flip-flops are
    /// treated as transparent (pass-through), so the result is the
    /// steady-state value after enough clock cycles — which is what
    /// functional verification of a pipelined datapath needs.
    ///
    /// Returns the value of every computed net; look up outputs via
    /// [`Netlist::outputs`] or [`bus_value`].
    ///
    /// # Panics
    ///
    /// Panics if a cell input was never assigned a value (an input
    /// missing from `input_values`).
    pub fn evaluate(&self, input_values: &[(Net, bool)]) -> std::collections::HashMap<Net, bool> {
        use std::collections::HashMap;
        let mut vals: HashMap<Net, bool> = input_values.iter().copied().collect();
        vals.insert(ZERO, false);
        vals.insert(ONE, true);
        for cell in &self.cells {
            let ins: Vec<bool> = cell
                .inputs
                .iter()
                .map(|i| {
                    *vals
                        .get(i)
                        .unwrap_or_else(|| panic!("net {i:?} undriven during evaluation"))
                })
                .collect();
            match cell.kind {
                CellKind::Inv => {
                    vals.insert(cell.outputs[0], !ins[0]);
                }
                CellKind::And2 => {
                    vals.insert(cell.outputs[0], ins[0] && ins[1]);
                }
                CellKind::Or2 => {
                    vals.insert(cell.outputs[0], ins[0] || ins[1]);
                }
                CellKind::Nand2 => {
                    vals.insert(cell.outputs[0], !(ins[0] && ins[1]));
                }
                CellKind::Nor2 => {
                    vals.insert(cell.outputs[0], !(ins[0] || ins[1]));
                }
                CellKind::Xor2 => {
                    vals.insert(cell.outputs[0], ins[0] ^ ins[1]);
                }
                CellKind::Xnor2 => {
                    vals.insert(cell.outputs[0], !(ins[0] ^ ins[1]));
                }
                CellKind::Mux2 => {
                    vals.insert(cell.outputs[0], if ins[0] { ins[1] } else { ins[2] });
                }
                CellKind::HalfAdder => {
                    vals.insert(cell.outputs[0], ins[0] ^ ins[1]);
                    vals.insert(cell.outputs[1], ins[0] && ins[1]);
                }
                CellKind::FullAdder => {
                    let s = ins[0] ^ ins[1] ^ ins[2];
                    let c = (ins[0] && ins[1]) || (ins[2] && (ins[0] ^ ins[1]));
                    vals.insert(cell.outputs[0], s);
                    vals.insert(cell.outputs[1], c);
                }
                CellKind::Dff => {
                    vals.insert(cell.outputs[0], ins[0]);
                }
                CellKind::DspMul => {
                    let w = cell.width as usize;
                    let a = bus_value_from(&cell.inputs[..w], &vals);
                    let b = bus_value_from(&cell.inputs[w..], &vals);
                    let p = a as u128 * b as u128;
                    for (k, &o) in cell.outputs.iter().enumerate() {
                        vals.insert(o, (p >> k) & 1 == 1);
                    }
                }
            }
        }
        vals
    }
}

/// Packs a bus into an integer (bit `i` of the result = `bus[i]`).
pub fn bus_value(bus: &[Net], vals: &std::collections::HashMap<Net, bool>) -> u64 {
    bus_value_from(bus, vals)
}

fn bus_value_from(bus: &[Net], vals: &std::collections::HashMap<Net, bool>) -> u64 {
    bus.iter()
        .enumerate()
        .map(|(i, n)| (vals[n] as u64) << i)
        .sum()
}

/// Builds the `(net, value)` assignment that drives `bus` with the
/// little-endian bits of `v`.
pub fn assign_bus(bus: &[Net], v: u64) -> Vec<(Net, bool)> {
    bus.iter()
        .enumerate()
        .map(|(i, &n)| (n, (v >> i) & 1 == 1))
        .collect()
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netlist `{}`: {} cells, {} inputs, {} outputs",
            self.name,
            self.cells.len(),
            self.inputs.len(),
            self.outputs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_basics() {
        let mut n = Netlist::new("t");
        let a = n.input();
        let b = n.input();
        let x = n.xor2(a, b);
        n.output(x);
        assert_eq!(n.len(), 1);
        assert_eq!(n.count(CellKind::Xor2), 1);
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 1);
    }

    #[test]
    fn adders_have_two_outputs() {
        let mut n = Netlist::new("t");
        let a = n.input();
        let b = n.input();
        let c = n.input();
        let (s, co) = n.full_adder(a, b, c);
        assert_ne!(s, co);
        let (s2, co2) = n.half_adder(a, b);
        assert_ne!(s2, co2);
        assert_eq!(n.count(CellKind::FullAdder), 1);
        assert_eq!(n.count(CellKind::HalfAdder), 1);
    }

    #[test]
    fn bus_helpers() {
        let mut n = Netlist::new("t");
        let a = n.input_bus(8);
        let b = n.input_bus(8);
        let sel = n.input();
        let m = n.mux_bus(sel, &a, &b);
        assert_eq!(m.len(), 8);
        assert_eq!(n.count(CellKind::Mux2), 8);
        let r = n.dff_bus(&m);
        assert_eq!(r.len(), 8);
        assert_eq!(n.count(CellKind::Dff), 8);
    }

    #[test]
    fn dsp_macro() {
        let mut n = Netlist::new("t");
        let a = n.input_bus(64);
        let b = n.input_bus(64);
        let p = n.dsp_mul(&a, &b);
        assert_eq!(p.len(), 128);
        assert_eq!(n.count(CellKind::DspMul), 1);
        assert_eq!(n.cells()[0].width, 64);
    }
}
