//! Table 3 assembly: the calibrated Rocket base core plus the
//! structurally derived ISE deltas.
//!
//! **Calibration (documented substitution, see DESIGN.md §2):** we
//! cannot synthesize the Rocket chip generator here, so the *base
//! core* row of Table 3 is carried as constants taken from the paper's
//! own Vivado run of the unmodified RV64GC core. The *deltas* of the
//! two extended cores — the quantity the hardware experiment is about
//! — are computed from the generated XMUL netlists through the LUT
//! mapper and the CMOS area model, plus a small decoder-modification
//! allowance.

use crate::area::netlist_ge;
use crate::map::{map, MapReport};
use crate::xmul::{base_multiplier, full_radix_xmul, reduced_radix_xmul};

/// Synthesis cost of one core configuration (one Table 3 row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreCost {
    /// Row label.
    pub name: &'static str,
    /// Slice LUTs.
    pub luts: u64,
    /// Flip-flops ("Regs").
    pub regs: u64,
    /// DSP blocks.
    pub dsps: u64,
    /// CMOS area (gate-equivalents × [`CMOS_PER_GE`], the unit scale
    /// of the paper's "CMOS" column).
    pub cmos: u64,
}

/// The paper's Vivado result for the unmodified 64-bit Rocket core
/// (Table 3, "Base core"); used as the calibration baseline.
pub const BASE_CORE: CoreCost = CoreCost {
    name: "Base core",
    luts: 4807,
    regs: 2156,
    dsps: 16,
    cmos: 428_680,
};

/// Scale between our gate-equivalent estimate and the paper's "CMOS"
/// unit, calibrated once (shared by both variants, so the full-radix
/// versus reduced-radix *ratio* remains purely structural).
pub const CMOS_PER_GE: f64 = 20.0;

/// LUTs charged for the decoder modifications (§3.3: "ISE-related
/// modifications were made to the instruction decoder"): decode of one
/// extra major-opcode point, the R4 rs3 read-port steering and the
/// XMUL op-select generation.
pub const DECODER_LUTS: u64 = 24;

/// Flip-flops charged for the decoder/scoreboard modifications.
pub const DECODER_REGS: u64 = 8;

/// The complete Table 3.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Base core row (calibration constants).
    pub base: CoreCost,
    /// Base core + full-radix ISE.
    pub full: CoreCost,
    /// Base core + reduced-radix ISE.
    pub reduced: CoreCost,
    /// Mapping diagnostics for the three XMUL netlists.
    pub xmul_reports: [MapReport; 3],
}

impl Table3 {
    /// Relative LUT overhead of a row versus the base core, percent.
    pub fn lut_overhead_percent(&self, row: &CoreCost) -> f64 {
        (row.luts as f64 - self.base.luts as f64) / self.base.luts as f64 * 100.0
    }

    /// Relative register overhead of a row versus the base core,
    /// percent.
    pub fn reg_overhead_percent(&self, row: &CoreCost) -> f64 {
        (row.regs as f64 - self.base.regs as f64) / self.base.regs as f64 * 100.0
    }

    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("Components                        LUTs   Regs  DSPs    CMOS\n");
        for row in [&self.base, &self.full, &self.reduced] {
            s.push_str(&format!(
                "{:32} {:>5}  {:>5}  {:>4}  {:>6}\n",
                row.name, row.luts, row.regs, row.dsps, row.cmos
            ));
        }
        s
    }
}

/// Builds Table 3: maps the three XMUL variants, takes the deltas over
/// the base multiplier, and adds them (plus the decoder allowance) to
/// the calibrated base core.
pub fn table3() -> Table3 {
    let base_mul = base_multiplier().netlist;
    let full_mul = full_radix_xmul().netlist;
    let red_mul = reduced_radix_xmul().netlist;

    let m_base = map(&base_mul);
    let m_full = map(&full_mul);
    let m_red = map(&red_mul);

    let ge_base = netlist_ge(&base_mul);
    let ge_full = netlist_ge(&full_mul);
    let ge_red = netlist_ge(&red_mul);

    let mk = |name, m: &MapReport, ge: f64| {
        let d = m.delta(&m_base);
        CoreCost {
            name,
            luts: BASE_CORE.luts + d.luts as u64 + DECODER_LUTS,
            regs: BASE_CORE.regs + d.regs as u64 + DECODER_REGS,
            // DSPs unchanged: XMUL reuses the DSP-mapped multiplier
            // array and adds only fabric logic (§4 / Table 3).
            dsps: BASE_CORE.dsps + (m.dsps - m_base.dsps) as u64,
            cmos: BASE_CORE.cmos + ((ge - ge_base).max(0.0) * CMOS_PER_GE) as u64,
        }
    };

    Table3 {
        base: BASE_CORE,
        full: mk("Base core + ISE (full-radix)", &m_full, ge_full),
        reduced: mk("Base core + ISE (reduced-radix)", &m_red, ge_red),
        xmul_reports: [m_base, m_full, m_red],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsps_unchanged() {
        let t = table3();
        assert_eq!(t.base.dsps, 16);
        assert_eq!(t.full.dsps, 16);
        assert_eq!(t.reduced.dsps, 16);
    }

    #[test]
    fn overheads_have_the_papers_shape() {
        let t = table3();
        // Both extensions cost something.
        assert!(t.full.luts > t.base.luts);
        assert!(t.reduced.luts > t.base.luts);
        assert!(t.full.regs > t.base.regs);
        assert!(t.reduced.regs > t.base.regs);
        // Reduced-radix needs more LUTs than full-radix (barrel
        // shifter + mask network; paper: +9% vs +4%).
        assert!(
            t.reduced.luts > t.full.luts,
            "reduced {} !> full {}",
            t.reduced.luts,
            t.full.luts
        );
        // LUT overheads in the paper's range: ~2–15%.
        let f = t.lut_overhead_percent(&t.full);
        let r = t.lut_overhead_percent(&t.reduced);
        assert!((1.0..12.0).contains(&f), "full LUT overhead {f:.1}%");
        assert!((2.0..18.0).contains(&r), "reduced LUT overhead {r:.1}%");
        // Register overheads ~5–15%.
        let fr = t.reg_overhead_percent(&t.full);
        let rr = t.reg_overhead_percent(&t.reduced);
        assert!((3.0..20.0).contains(&fr), "full reg overhead {fr:.1}%");
        assert!((3.0..20.0).contains(&rr), "reduced reg overhead {rr:.1}%");
        // CMOS overhead ~8–20% (paper: 12.7% / 15.5%).
        assert!(t.full.cmos > t.base.cmos);
        assert!(t.reduced.cmos > t.full.cmos);
    }

    #[test]
    fn render_contains_all_rows() {
        let t = table3();
        let s = t.render();
        assert!(s.contains("Base core"));
        assert!(s.contains("full-radix"));
        assert!(s.contains("reduced-radix"));
    }
}
