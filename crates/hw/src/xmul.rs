//! Netlists for the three multiplier-datapath variants of §3.3.
//!
//! The structure follows the datapath decomposition of
//! `mpise-core::xmul` (the executable specification): a 64×64
//! multiplier core, sign-handling, a wide adder, a shift/mask network
//! and operand-select muxes, wrapped in the 2-stage pipeline the paper
//! describes ("one register stage at input operands and another at the
//! output result").
//!
//! Each generator returns an [`XmulNetlist`] exposing its operand,
//! control and result buses, so the netlists are *functionally
//! verified* bit-for-bit against both the RV64M semantics and the
//! custom-instruction intrinsics (see the tests) — the hardware model
//! is not just an area estimate.
//!
//! The wide adders are ripple chains of full-adder cells: the LUT
//! mapper prices those at one LUT per bit, modelling the dedicated
//! carry chains an FPGA tool infers (a parallel-prefix alternative is
//! available in [`crate::generators`] and compared in the ablation
//! bench).

use crate::generators::{barrel_shifter_right, ripple_adder};
use crate::netlist::{Bus, Net, Netlist, ZERO};

/// Width of the register operands.
pub const W: usize = 64;

/// Number of pipeline-control / hazard-forwarding flip-flops charged
/// per added read port (valid bits, bypass select state for the third
/// operand that §3.3 says "can be fetched from the forwarding path").
pub const FORWARDING_CTRL_REGS: usize = 32;

/// A generated multiplier datapath with its interface buses.
#[derive(Debug, Clone)]
pub struct XmulNetlist {
    /// The netlist itself.
    pub netlist: Netlist,
    /// First operand (64 bits).
    pub x: Bus,
    /// Second operand (64 bits).
    pub y: Bus,
    /// Third operand (64 bits; constant-zero for the base multiplier).
    pub z: Bus,
    /// Shift amount (6 bits; empty when the variant has no shifter).
    pub shamt: Bus,
    /// Control word (see each generator's bit assignment).
    pub ctrl: Bus,
    /// The 64-bit result bus (after the output register).
    pub result: Bus,
}

/// Conditional two's-complement negation: `en ? -a : a`
/// (xor stage + increment chain).
fn conditional_negate(n: &mut Netlist, a: &[Net], en: Net) -> Bus {
    let flipped: Bus = a.iter().map(|&bit| n.xor2(bit, en)).collect();
    let mut out = Vec::with_capacity(a.len());
    let mut carry = en;
    for &bit in &flipped {
        let (s, c) = n.half_adder(bit, carry);
        out.push(s);
        carry = c;
    }
    out
}

/// Shared front end: stage-1 operand registers, sign handling and the
/// DSP multiplier. Control bits 0..3: negate-x, negate-y,
/// negate-product. Returns `(x_reg, y_reg, product)`.
fn multiplier_front(n: &mut Netlist, x: &Bus, y: &Bus, ctrl: &Bus) -> (Bus, Bus, Bus) {
    let xs = conditional_negate(n, x, ctrl[0]);
    let ys = conditional_negate(n, y, ctrl[1]);
    let p = n.dsp_mul(&xs, &ys);
    let ps = conditional_negate(n, &p, ctrl[2]);
    (x.clone(), y.clone(), ps)
}

/// The baseline Rocket-style pipelined multiplier: `mul`, `mulh`,
/// `mulhsu`, `mulhu`.
///
/// Control bits: `0` negate x, `1` negate y, `2` negate product,
/// `3` select high half.
pub fn base_multiplier() -> XmulNetlist {
    let mut n = Netlist::new("mul-base");
    let x_in = n.input_bus(W);
    let y_in = n.input_bus(W);
    let ctrl_in = n.input_bus(4);

    let x = n.dff_bus(&x_in);
    let y = n.dff_bus(&y_in);
    let ctrl = n.dff_bus(&ctrl_in);

    let (_, _, ps) = multiplier_front(&mut n, &x, &y, &ctrl);
    let out = n.mux_bus(ctrl[3], &ps[W..], &ps[..W]);
    let result = n.dff_bus(&out);
    n.output_bus(&result);
    XmulNetlist {
        netlist: n,
        x: x_in,
        y: y_in,
        z: vec![ZERO; W],
        shamt: vec![],
        ctrl: ctrl_in,
        result,
    }
}

/// The full-radix XMUL: base ops plus `maddlu`, `maddhu`, `cadd`.
///
/// Control bits: `0` negate x, `1` negate y, `2` negate product,
/// `3` select high half, `4` main path = x zero-extended (cadd),
/// `5` pre-add operand = y (else z), `6` pre-add enable,
/// `7` output = cadd post-adder.
pub fn full_radix_xmul() -> XmulNetlist {
    let mut n = Netlist::new("xmul-full");
    let x_in = n.input_bus(W);
    let y_in = n.input_bus(W);
    let z_in = n.input_bus(W);
    let ctrl_in = n.input_bus(8);

    let x = n.dff_bus(&x_in);
    let y = n.dff_bus(&y_in);
    let z = n.dff_bus(&z_in); // extra input-stage register
    let ctrl = n.dff_bus(&ctrl_in);

    let (_, _, ps) = multiplier_front(&mut n, &x, &y, &ctrl);

    // Main-path select: product, or x zero-extended (cadd bypass).
    let mut x_wide = x.clone();
    x_wide.extend(std::iter::repeat_n(ZERO, W));
    let main = n.mux_bus(ctrl[4], &x_wide, &ps);

    // Pre-adder operand: z (madd ops) or y (cadd), gated by enable,
    // zero-extended to 128 bits.
    let zy = n.mux_bus(ctrl[5], &y, &z);
    let pre = n.and_bus(&zy, ctrl[6]);
    let mut pre_wide = pre;
    pre_wide.extend(std::iter::repeat_n(ZERO, W));

    // 128-bit adder (carry-chain mapped).
    let (sum, _) = ripple_adder(&mut n, &main, &pre_wide);

    // cadd post-add: high half + z (64-bit adder), selected late.
    let sum_hi: Bus = sum[W..].to_vec();
    let (cadd_out, _) = ripple_adder(&mut n, &sum_hi, &z);

    // Output select: low/high half, then the cadd result.
    let hi_lo = n.mux_bus(ctrl[3], &sum[W..], &sum[..W]);
    let out = n.mux_bus(ctrl[7], &cadd_out, &hi_lo);

    // Stage-2 registers: result, the forwarded third operand, bypass
    // control state, and the pre-adder's high half (the `cadd`
    // result's second addition completes against this registered copy
    // in write-back, keeping the 128-bit adder off the critical path).
    let result = n.dff_bus(&out);
    let _z_fwd = n.dff_bus(&z);
    let hi_stage = n.dff_bus(&sum_hi);
    n.output_bus(&hi_stage);
    for _ in 0..FORWARDING_CTRL_REGS {
        let d = n.input();
        let q = n.dff(d);
        n.output(q);
    }
    n.output_bus(&result);
    XmulNetlist {
        netlist: n,
        x: x_in,
        y: y_in,
        z: z_in,
        shamt: vec![],
        ctrl: ctrl_in,
        result,
    }
}

/// The reduced-radix XMUL: base ops plus `madd57lu`, `madd57hu`,
/// `sraiadd`.
///
/// Control bits: `0` negate x, `1` negate y, `2` negate product,
/// `3` main = product >> 57 (madd57hu), `4` main = y >>(arith) imm
/// (sraiadd), `5` mask low 57 bits (madd57lu), `6` post-add operand =
/// x (else z), `7` post-add enable, `8` output = post-adder,
/// `9` select high half (base ops).
pub fn reduced_radix_xmul() -> XmulNetlist {
    let mut n = Netlist::new("xmul-reduced");
    let x_in = n.input_bus(W);
    let y_in = n.input_bus(W);
    let z_in = n.input_bus(W);
    let shamt_in = n.input_bus(6);
    let ctrl_in = n.input_bus(10);

    let x = n.dff_bus(&x_in);
    let y = n.dff_bus(&y_in);
    let z = n.dff_bus(&z_in);
    let shamt = n.dff_bus(&shamt_in);
    let ctrl = n.dff_bus(&ctrl_in);

    let (_, _, ps) = multiplier_front(&mut n, &x, &y, &ctrl);

    // Shift network: >>57 is wiring; the generic arithmetic shifter
    // for sraiadd is a real 64-bit barrel shifter on y.
    let p_shift57: Bus = ps[57..57 + W].to_vec();
    let sraiadd_path = barrel_shifter_right(&mut n, &y, &shamt, true);

    // Main-path select (low product / product>>57 / y>>imm).
    let lo_bus: Bus = ps[..W].to_vec();
    let lo_or_shift = n.mux_bus(ctrl[3], &p_shift57, &lo_bus);
    let main = n.mux_bus(ctrl[4], &sraiadd_path, &lo_or_shift);

    // Mask network: keep the low 57 bits for madd57lu.
    let mut masked = Vec::with_capacity(W);
    for (i, &bit) in main.iter().enumerate() {
        if i < 57 {
            masked.push(bit);
        } else {
            masked.push(n.mux2(ctrl[5], ZERO, bit));
        }
    }

    // Post-adder: + z (madd57lu/hu) or + x (sraiadd), gated.
    let zx = n.mux_bus(ctrl[6], &x, &z);
    let addend = n.and_bus(&zx, ctrl[7]);
    let (sum, _) = ripple_adder(&mut n, &masked, &addend);

    // Base-ops output select still needs the plain low/high halves.
    let hi_lo = n.mux_bus(ctrl[9], &ps[W..], &ps[..W]);
    let out = n.mux_bus(ctrl[8], &sum, &hi_lo);

    // Stage-2 registers: result, forwarded third operand, the masked
    // 57-bit low-product slice (write-back staging of the auto-aligned
    // accumulator path) and bypass control state.
    let result = n.dff_bus(&out);
    let _z_fwd = n.dff_bus(&z);
    let mask_stage = n.dff_bus(&masked[..57]);
    n.output_bus(&mask_stage);
    for _ in 0..FORWARDING_CTRL_REGS {
        let d = n.input();
        let q = n.dff(d);
        n.output(q);
    }
    n.output_bus(&result);
    XmulNetlist {
        netlist: n,
        x: x_in,
        y: y_in,
        z: z_in,
        shamt: shamt_in,
        ctrl: ctrl_in,
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::{assign_bus, bus_value, CellKind};
    use mpise_core::xmul::{Xmul, XmulOp};

    fn regs(n: &Netlist) -> usize {
        n.count(CellKind::Dff)
    }

    #[test]
    fn variants_build_and_are_ordered_by_size() {
        let base = base_multiplier().netlist;
        let full = full_radix_xmul().netlist;
        let red = reduced_radix_xmul().netlist;
        assert!(base.len() < full.len());
        assert!(
            full.len() < red.len(),
            "reduced-radix datapath is larger (barrel shifter + mask)"
        );
    }

    #[test]
    fn all_variants_share_one_dsp_multiplier() {
        for x in [base_multiplier(), full_radix_xmul(), reduced_radix_xmul()] {
            assert_eq!(x.netlist.count(CellKind::DspMul), 1, "{}", x.netlist.name());
        }
    }

    #[test]
    fn extended_variants_add_registers() {
        let base = regs(&base_multiplier().netlist);
        let full = regs(&full_radix_xmul().netlist);
        let red = regs(&reduced_radix_xmul().netlist);
        let d_full = full - base;
        let d_red = red - base;
        assert!((100..400).contains(&d_full), "full reg delta {d_full}");
        assert!((100..400).contains(&d_red), "reduced reg delta {d_red}");
    }

    /// Control-word encodings for the functional tests (the job of the
    /// modified instruction decoder in §3.3). Sign-negate enables are
    /// computed from the operand sign bits like the real datapath's
    /// sign logic would.
    fn base_ctrl(op: XmulOp, x: u64, y: u64) -> u64 {
        let (xs, ys) = ((x >> 63) & 1, (y >> 63) & 1);
        match op {
            XmulOp::Mul => xs | (ys << 1) | ((xs ^ ys) << 2),
            XmulOp::Mulh => xs | (ys << 1) | ((xs ^ ys) << 2) | (1 << 3),
            XmulOp::Mulhsu => xs | (xs << 2) | (1 << 3),
            XmulOp::Mulhu => 1 << 3,
            _ => unreachable!("base op"),
        }
    }

    fn run(x: &XmulNetlist, ctrl: u64, xv: u64, yv: u64, zv: u64, shamt: u64) -> u64 {
        let mut iv = assign_bus(&x.x, xv);
        iv.extend(assign_bus(&x.y, yv));
        if !x.z.iter().all(|&n| n == ZERO) {
            iv.extend(assign_bus(&x.z, zv));
        }
        if !x.shamt.is_empty() {
            iv.extend(assign_bus(&x.shamt, shamt));
        }
        iv.extend(assign_bus(&x.ctrl, ctrl));
        // Forwarding-control dummy inputs default: drive every primary
        // input not yet covered to 0.
        for &inp in x.netlist.inputs() {
            if !iv.iter().any(|(n, _)| *n == inp) {
                iv.push((inp, false));
            }
        }
        let vals = x.netlist.evaluate(&iv);
        bus_value(&x.result, &vals)
    }

    const CASES: [(u64, u64, u64); 6] = [
        (0, 0, 0),
        (3, 5, 7),
        (u64::MAX, u64::MAX, u64::MAX),
        (0x8000_0000_0000_0000, 2, 1),
        (0x1234_5678_9abc_def0, 0xfedc_ba98_7654_3210, 0xdead_beef),
        ((1 << 57) + 12345, (1 << 56) + 999, (1 << 62) + 7),
    ];

    #[test]
    fn base_netlist_matches_rv64m() {
        let bm = base_multiplier();
        let spec = Xmul::new();
        for &(xv, yv, _) in &CASES {
            for op in XmulOp::BASE {
                let got = run(&bm, base_ctrl(op, xv, yv), xv, yv, 0, 0);
                let want = spec.execute(op, xv, yv, 0, 0);
                assert_eq!(got, want, "{op:?} x={xv:#x} y={yv:#x}");
            }
        }
    }

    #[test]
    fn full_radix_netlist_matches_intrinsics() {
        let fx = full_radix_xmul();
        let spec = Xmul::new();
        for &(xv, yv, zv) in &CASES {
            // Base ops still work on the extended datapath
            // (pre-add disabled).
            for op in XmulOp::BASE {
                let got = run(&fx, base_ctrl(op, xv, yv), xv, yv, zv, 0);
                assert_eq!(got, spec.execute(op, xv, yv, 0, 0), "{op:?}");
            }
            // maddlu: pre-add z (bit 6), low half.
            let got = run(&fx, 1 << 6, xv, yv, zv, 0);
            assert_eq!(got, spec.execute(XmulOp::Maddlu, xv, yv, zv, 0), "maddlu");
            // maddhu: pre-add z, high half (bit 3).
            let got = run(&fx, (1 << 6) | (1 << 3), xv, yv, zv, 0);
            assert_eq!(got, spec.execute(XmulOp::Maddhu, xv, yv, zv, 0), "maddhu");
            // cadd: main = x zext (4), pre-add y (5,6), out = post (7).
            let got = run(
                &fx,
                (1 << 4) | (1 << 5) | (1 << 6) | (1 << 7),
                xv,
                yv,
                zv,
                0,
            );
            assert_eq!(got, spec.execute(XmulOp::Cadd, xv, yv, zv, 0), "cadd");
        }
    }

    #[test]
    fn reduced_radix_netlist_matches_intrinsics() {
        let rx = reduced_radix_xmul();
        let spec = Xmul::new();
        for &(xv, yv, zv) in &CASES {
            for op in XmulOp::BASE {
                let ctrl = match op {
                    XmulOp::Mul => base_ctrl(op, xv, yv) & 0b111,
                    _ => (base_ctrl(op, xv, yv) & 0b111) | (1 << 9),
                };
                let got = run(&rx, ctrl, xv, yv, zv, 0);
                assert_eq!(got, spec.execute(op, xv, yv, 0, 0), "{op:?}");
            }
            // madd57lu: mask (5), post-add z (7), out = post (8).
            let got = run(&rx, (1 << 5) | (1 << 7) | (1 << 8), xv, yv, zv, 0);
            assert_eq!(
                got,
                spec.execute(XmulOp::Madd57lu, xv, yv, zv, 0),
                "madd57lu"
            );
            // madd57hu: product>>57 (3), post-add z (7), out = post (8).
            let got = run(&rx, (1 << 3) | (1 << 7) | (1 << 8), xv, yv, zv, 0);
            assert_eq!(
                got,
                spec.execute(XmulOp::Madd57hu, xv, yv, zv, 0),
                "madd57hu"
            );
            // sraiadd: main = y>>imm (4), post-add x (6,7), out (8).
            for imm in [0u64, 1, 57, 63] {
                let got = run(
                    &rx,
                    (1 << 4) | (1 << 6) | (1 << 7) | (1 << 8),
                    xv,
                    yv,
                    zv,
                    imm,
                );
                assert_eq!(
                    got,
                    spec.execute(XmulOp::Sraiadd, xv, yv, 0, imm as u8),
                    "sraiadd imm={imm}"
                );
            }
        }
    }
}
