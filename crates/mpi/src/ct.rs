//! Constant-time primitives.
//!
//! The paper's field arithmetic is written as "(constant-time) Assembler
//! functions" (§4); these helpers are the Rust equivalents used by the
//! host backends. All functions are branch-free on their data inputs.

/// Expands a boolean-as-word (0 or 1) into an all-zero or all-one mask.
///
/// This is the `M ← 0 − SLTU(A, P)` step of Algorithms 1 and 2.
///
/// # Examples
///
/// ```
/// use mpise_mpi::ct::mask_from_bit;
/// assert_eq!(mask_from_bit(0), 0);
/// assert_eq!(mask_from_bit(1), u64::MAX);
/// ```
#[inline]
pub const fn mask_from_bit(bit: u64) -> u64 {
    debug_assert!(bit <= 1);
    bit.wrapping_neg()
}

/// Branch-free select: returns `a` when `mask` is all-ones, `b` when
/// `mask` is zero.
#[inline]
pub const fn select(mask: u64, a: u64, b: u64) -> u64 {
    (a & mask) | (b & !mask)
}

/// Branch-free select over limb slices, writing into `out`.
///
/// # Panics
///
/// Panics if the three slices have different lengths.
#[inline]
pub fn select_limbs(mask: u64, a: &[u64], b: &[u64], out: &mut [u64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    for i in 0..a.len() {
        out[i] = select(mask, a[i], b[i]);
    }
}

/// Branch-free conditional swap of two limb slices when `mask` is
/// all-ones.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn cswap_limbs(mask: u64, a: &mut [u64], b: &mut [u64]) {
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        let t = mask & (a[i] ^ b[i]);
        a[i] ^= t;
        b[i] ^= t;
    }
}

/// Constant-time equality of limb slices: returns 1 when equal, else 0.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn eq_limbs(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len());
    let mut acc = 0u64;
    for i in 0..a.len() {
        acc |= a[i] ^ b[i];
    }
    // acc == 0 <=> equal; fold to a single bit without branching.
    let nz = (acc | acc.wrapping_neg()) >> 63;
    1 ^ nz
}

/// Constant-time unsigned less-than over limb slices (little-endian):
/// returns 1 when `a < b`, else 0 — a multi-word `SLTU`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[inline]
pub fn lt_limbs(a: &[u64], b: &[u64]) -> u64 {
    assert_eq!(a.len(), b.len());
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let (d, b1) = a[i].overflowing_sub(b[i]);
        let (_, b2) = d.overflowing_sub(borrow);
        borrow = (b1 | b2) as u64;
    }
    borrow
}

/// 64-bit add with carry-in; returns `(sum, carry_out)`.
///
/// The software analogue of the `add`/`sltu` pair the paper counts in
/// Listing 1 — RISC-V has no carry flag, so this costs two
/// instructions per word on the base ISA.
#[inline]
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// 64-bit subtract with borrow-in; returns `(difference, borrow_out)`.
#[inline]
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let t = (a as u128)
        .wrapping_sub(b as u128)
        .wrapping_sub(borrow as u128);
    (t as u64, ((t >> 64) as u64) & 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_and_select() {
        assert_eq!(select(u64::MAX, 7, 9), 7);
        assert_eq!(select(0, 7, 9), 9);
        let mut out = [0u64; 3];
        select_limbs(u64::MAX, &[1, 2, 3], &[4, 5, 6], &mut out);
        assert_eq!(out, [1, 2, 3]);
        select_limbs(0, &[1, 2, 3], &[4, 5, 6], &mut out);
        assert_eq!(out, [4, 5, 6]);
    }

    #[test]
    fn cswap() {
        let mut a = [1u64, 2];
        let mut b = [3u64, 4];
        cswap_limbs(0, &mut a, &mut b);
        assert_eq!((a, b), ([1, 2], [3, 4]));
        cswap_limbs(u64::MAX, &mut a, &mut b);
        assert_eq!((a, b), ([3, 4], [1, 2]));
    }

    #[test]
    fn equality() {
        assert_eq!(eq_limbs(&[1, 2, 3], &[1, 2, 3]), 1);
        assert_eq!(eq_limbs(&[1, 2, 3], &[1, 2, 4]), 0);
        assert_eq!(eq_limbs(&[0], &[0]), 1);
        assert_eq!(eq_limbs(&[u64::MAX], &[u64::MAX]), 1);
        assert_eq!(eq_limbs(&[u64::MAX], &[0]), 0);
    }

    #[test]
    fn less_than() {
        assert_eq!(lt_limbs(&[5], &[6]), 1);
        assert_eq!(lt_limbs(&[6], &[5]), 0);
        assert_eq!(lt_limbs(&[5], &[5]), 0);
        // high limb dominates
        assert_eq!(lt_limbs(&[u64::MAX, 1], &[0, 2]), 1);
        assert_eq!(lt_limbs(&[0, 2], &[u64::MAX, 1]), 0);
    }

    #[test]
    fn adc_sbb_chain() {
        let (s, c) = adc(u64::MAX, u64::MAX, 1);
        assert_eq!((s, c), (u64::MAX, 1));
        let (d, b) = sbb(0, 1, 0);
        assert_eq!((d, b), (u64::MAX, 1));
        let (d, b) = sbb(5, 3, 1);
        assert_eq!((d, b), (1, 0));
        let (d, b) = sbb(0, 0, 1);
        assert_eq!((d, b), (u64::MAX, 1));
    }
}
