//! MPI division (Knuth Algorithm D) and modular inversion (binary
//! extended GCD).
//!
//! Neither operation appears in the paper's inner loops (CSIDH inverts
//! through Fermat exponentiation), but a general MPI library needs
//! them, and the binary-GCD inverse doubles as an independent check of
//! the Fermat inversion used by the field backends.

use crate::ct::sbb;
use crate::uint::Uint;

/// Returns `(quotient, remainder)` of `a / d` for same-width operands.
///
/// Implements Knuth's Algorithm D on 64-bit limbs with the standard
/// two-limb quotient estimate and at most two corrections.
///
/// # Panics
///
/// Panics if `d` is zero.
pub fn div_rem<const L: usize>(a: &Uint<L>, d: &Uint<L>) -> (Uint<L>, Uint<L>) {
    assert!(!d.is_zero(), "division by zero");
    if a < d {
        return (Uint::ZERO, *a);
    }
    let n = (d.bit_length() as usize).div_ceil(64); // significant divisor limbs
    if n == 1 {
        // Single-limb divisor: simple schoolbook short division.
        let dv = d.limb(0);
        let mut q = [0u64; L];
        let mut rem: u128 = 0;
        for i in (0..L).rev() {
            let cur = (rem << 64) | a.limb(i) as u128;
            q[i] = (cur / dv as u128) as u64;
            rem = cur % dv as u128;
        }
        return (Uint::from_limbs(q), Uint::from_u64(rem as u64));
    }

    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = d.limbs()[n - 1].leading_zeros();
    let mut u = vec![0u64; L + 1]; // numerator with one extra limb
    {
        let an = a.shl(shift); // cannot lose bits: we append a limb
        u[..L].copy_from_slice(an.limbs());
        if shift > 0 {
            u[L] = a.limb(L - 1) >> (64 - shift);
        }
    }
    let v = d.shl(shift);
    let v = &v.limbs()[..n];
    let mut q = [0u64; L];

    // D2-D7: main loop over quotient digits.
    for j in (0..=L - n).rev() {
        // D3: estimate qhat from the top two numerator limbs.
        let top = ((u[j + n] as u128) << 64) | u[j + n - 1] as u128;
        let mut qhat = top / v[n - 1] as u128;
        let mut rhat = top % v[n - 1] as u128;
        while qhat >> 64 != 0
            || (n >= 2 && qhat * v[n - 2] as u128 > ((rhat << 64) | u[j + n - 2] as u128))
        {
            qhat -= 1;
            rhat += v[n - 1] as u128;
            if rhat >> 64 != 0 {
                break;
            }
        }
        // D4: multiply-subtract u[j..j+n+1] -= qhat * v.
        let mut borrow: i128 = 0;
        let mut carry: u128 = 0;
        for i in 0..n {
            let prod = qhat * v[i] as u128 + carry;
            carry = prod >> 64;
            let sub = u[j + i] as i128 - (prod as u64) as i128 - borrow;
            u[j + i] = sub as u64;
            borrow = if sub < 0 { 1 } else { 0 };
        }
        let sub = u[j + n] as i128 - carry as i128 - borrow;
        u[j + n] = sub as u64;

        // D5/D6: if we subtracted too much, add one divisor back.
        if sub < 0 {
            qhat -= 1;
            let mut c = 0u64;
            for i in 0..n {
                let t = u[j + i] as u128 + v[i] as u128 + c as u128;
                u[j + i] = t as u64;
                c = (t >> 64) as u64;
            }
            u[j + n] = u[j + n].wrapping_add(c);
        }
        q[j] = qhat as u64;
    }

    // D8: denormalize the remainder.
    let mut r = [0u64; L];
    r.copy_from_slice(&u[..L]);
    let r = Uint::from_limbs(r).shr(shift);
    (Uint::from_limbs(q), r)
}

/// `a mod d`.
///
/// # Panics
///
/// Panics if `d` is zero.
pub fn rem<const L: usize>(a: &Uint<L>, d: &Uint<L>) -> Uint<L> {
    div_rem(a, d).1
}

/// Right shift by one of a value with a carry bit above the top limb.
fn shr1_with_carry<const L: usize>(v: &Uint<L>, carry: u64) -> Uint<L> {
    let mut out = v.shr(1);
    if carry != 0 {
        let mut limbs = *out.limbs();
        limbs[L - 1] |= 1 << 63;
        out = Uint::from_limbs(limbs);
    }
    out
}

/// Modular inverse by the binary extended GCD: `a^{-1} mod m` for odd
/// `m`, or `None` when `gcd(a, m) != 1` (including `a = 0`).
///
/// # Panics
///
/// Panics if `m` is even or < 3 (binary inversion needs an odd
/// modulus, which all Montgomery moduli are).
///
/// # Examples
///
/// ```
/// use mpise_mpi::{div::modinv, Uint};
/// let m = Uint::<4>::from_u64(1000003); // prime
/// let a = Uint::from_u64(1234);
/// let inv = modinv(&a, &m).unwrap();
/// // a * inv ≡ 1 (mod m)
/// let prod = mpise_mpi::reference::RefInt::from_limbs(a.limbs())
///     .mulmod(&mpise_mpi::reference::RefInt::from_limbs(inv.limbs()),
///             &mpise_mpi::reference::RefInt::from_limbs(m.limbs()));
/// assert_eq!(prod.to_limbs(1), vec![1]);
/// ```
pub fn modinv<const L: usize>(a: &Uint<L>, m: &Uint<L>) -> Option<Uint<L>> {
    assert!(
        m.is_odd() && *m > Uint::from_u64(2),
        "modulus must be odd and >= 3"
    );
    if a.is_zero() {
        return None;
    }
    let a = rem(a, m);
    if a.is_zero() {
        return None;
    }
    let mut u = a;
    let mut v = *m;
    let mut x1 = Uint::<L>::ONE; // x1·a ≡ u (mod m)
    let mut x2 = Uint::<L>::ZERO; // x2·a ≡ v (mod m)
    while !u.is_zero() {
        while !u.is_odd() {
            u = u.shr(1);
            if x1.is_odd() {
                let (s, c) = x1.adc(m, 0);
                x1 = shr1_with_carry(&s, c);
            } else {
                x1 = x1.shr(1);
            }
        }
        while !v.is_odd() && !v.is_zero() {
            v = v.shr(1);
            if x2.is_odd() {
                let (s, c) = x2.adc(m, 0);
                x2 = shr1_with_carry(&s, c);
            } else {
                x2 = x2.shr(1);
            }
        }
        if u >= v {
            u = u.wrapping_sub(&v);
            x1 = mod_sub_full(&x1, &x2, m);
        } else {
            v = v.wrapping_sub(&u);
            x2 = mod_sub_full(&x2, &x1, m);
        }
    }
    if v == Uint::ONE {
        Some(x2)
    } else {
        None // gcd(a, m) != 1
    }
}

/// `a - b mod m` for `a, b < m` (no top-bit-free requirement).
fn mod_sub_full<const L: usize>(a: &Uint<L>, b: &Uint<L>, m: &Uint<L>) -> Uint<L> {
    let mut out = [0u64; L];
    let mut borrow = 0u64;
    for i in 0..L {
        let (d, b2) = sbb(a.limb(i), b.limb(i), borrow);
        out[i] = d;
        borrow = b2;
    }
    if borrow == 1 {
        // add m back
        let (s, _) = Uint::from_limbs(out).adc(m, 0);
        s
    } else {
        Uint::from_limbs(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::RefInt;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type U256 = Uint<4>;

    fn check_div(a: U256, d: U256) {
        let (q, r) = div_rem(&a, &d);
        // a == q*d + r and r < d
        assert!(r < d, "r={r} d={d}");
        let ra = RefInt::from_limbs(a.limbs());
        let qd = RefInt::from_limbs(q.limbs()).mul(&RefInt::from_limbs(d.limbs()));
        let back = qd.add(&RefInt::from_limbs(r.limbs()));
        assert_eq!(back, ra, "a={a} d={d}");
    }

    #[test]
    fn division_basics() {
        check_div(U256::from_u64(100), U256::from_u64(7));
        check_div(U256::from_u64(7), U256::from_u64(100));
        check_div(U256::ZERO, U256::ONE);
        check_div(U256::MAX, U256::ONE);
        check_div(U256::MAX, U256::MAX);
        check_div(U256::MAX, U256::from_u64(3));
    }

    #[test]
    fn division_multi_limb_divisors() {
        let a =
            U256::from_hex("0xdeadbeefcafef00d0123456789abcdeffedcba98765432100011223344556677")
                .unwrap();
        for d_hex in [
            "0x10000000000000001",
            "0xffffffffffffffffffffffffffffffff",
            "0x8000000000000000000000000000000000000000000000001",
            "0x123456789abcdef0fedcba9876543210f",
        ] {
            check_div(a, U256::from_hex(d_hex).unwrap());
        }
    }

    #[test]
    fn division_randomized_against_reference() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let a = U256::from_limbs(std::array::from_fn(|_| rng.gen()));
            // Random divisor width from 1 to 4 limbs.
            let limbs = rng.gen_range(1..=4);
            let mut dl = [0u64; 4];
            for l in dl.iter_mut().take(limbs) {
                *l = rng.gen();
            }
            if dl.iter().all(|&x| x == 0) {
                dl[0] = 1;
            }
            check_div(a, U256::from_limbs(dl));
        }
    }

    #[test]
    fn qhat_correction_paths() {
        // Crafted inputs that force the Algorithm-D correction steps:
        // divisor with all-ones top limb and numerator just below a
        // multiple.
        let d = U256::from_hex("0xffffffffffffffff0000000000000000").unwrap();
        let a = U256::from_hex("0xfffffffffffffffeffffffffffffffffffffffffffffffff").unwrap();
        check_div(a, d);
        let d = U256::from_hex("0x80000000000000000000000000000001").unwrap();
        let a = U256::MAX;
        check_div(a, d);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn zero_divisor_panics() {
        let _ = div_rem(&U256::ONE, &U256::ZERO);
    }

    #[test]
    fn modinv_small_prime() {
        let m = U256::from_u64(1_000_003);
        for a in [1u64, 2, 999, 1_000_002] {
            let inv = modinv(&U256::from_u64(a), &m).unwrap();
            let prod = RefInt::from_u64(a).mulmod(
                &RefInt::from_limbs(inv.limbs()),
                &RefInt::from_u64(1_000_003),
            );
            assert_eq!(prod, RefInt::one(), "a={a}");
        }
    }

    #[test]
    fn modinv_detects_common_factors() {
        let m = U256::from_u64(9); // odd composite
        assert!(modinv(&U256::from_u64(3), &m).is_none());
        assert!(modinv(&U256::from_u64(6), &m).is_none());
        assert!(modinv(&U256::from_u64(2), &m).is_some());
        assert!(modinv(&U256::ZERO, &m).is_none());
    }

    #[test]
    fn modinv_multi_limb() {
        // 2^255 - 19 (prime, odd): random inverses check out.
        let m =
            U256::from_hex("0x7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed")
                .unwrap();
        let rm = RefInt::from_limbs(m.limbs());
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let a = U256::from_limbs(std::array::from_fn(|_| rng.gen()));
            let a = rem(&a, &m);
            if a.is_zero() {
                continue;
            }
            let inv = modinv(&a, &m).unwrap();
            let prod = RefInt::from_limbs(a.limbs()).mulmod(&RefInt::from_limbs(inv.limbs()), &rm);
            assert_eq!(prod, RefInt::one());
        }
    }
}
