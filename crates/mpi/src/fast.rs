//! Fast modulo-`p` reduction (Algorithms 1 and 2 of the paper) and the
//! modular add/sub built from them.
//!
//! When an operand `A` is known to lie in `[0, 2p − 1]`, a full
//! Montgomery reduction is unnecessary: one conditional subtraction
//! reduces it to `[0, p − 1]`. The paper gives two constant-time
//! realizations and analyses which is cheaper on RISC-V (§3.1):
//!
//! * **addition-based** (Algorithm 1): `R ← (A − P) + (M ∧ P)` — costs
//!   a full carry-propagating addition at the end, which is expensive
//!   without a carry flag;
//! * **swap-based** (Algorithm 2): `R ← T ⊕ (M ∧ (A ⊕ T))` — replaces
//!   the addition with carry-free xors, making it the faster option for
//!   the full-radix RISC-V implementation.
//!
//! Both compute the mask `M ← 0 − SLTU(A, P)` from the borrow of the
//! subtraction.

use crate::ct::mask_from_bit;
use crate::uint::Uint;

/// Algorithm 1: addition-based fast reduction of `a ∈ [0, 2p − 1]` to
/// `[0, p − 1]`. Constant time.
///
/// # Examples
///
/// ```
/// use mpise_mpi::{Uint, fast::fast_reduce_add};
/// let p = Uint::<4>::from_u64(1000003);
/// assert_eq!(fast_reduce_add(&Uint::from_u64(1000005), &p), Uint::from_u64(2));
/// assert_eq!(fast_reduce_add(&Uint::from_u64(42), &p), Uint::from_u64(42));
/// ```
pub fn fast_reduce_add<const L: usize>(a: &Uint<L>, p: &Uint<L>) -> Uint<L> {
    let (t, borrow) = a.sbb(p, 0); // T <- A - P (borrow = SLTU(A, P))
    let m = mask_from_bit(borrow); // M <- 0 - SLTU(A, P)
    let masked = p.mask(m); // M <- M & P
    t.wrapping_add(&masked) // R <- T + M
}

/// Algorithm 2: conditional-swap-based fast reduction of
/// `a ∈ [0, 2p − 1]` to `[0, p − 1]`. Constant time, carry-free final
/// step.
///
/// # Examples
///
/// ```
/// use mpise_mpi::{Uint, fast::fast_reduce_swap};
/// let p = Uint::<4>::from_u64(1000003);
/// assert_eq!(fast_reduce_swap(&Uint::from_u64(2000005), &p), Uint::from_u64(1000002));
/// ```
pub fn fast_reduce_swap<const L: usize>(a: &Uint<L>, p: &Uint<L>) -> Uint<L> {
    let (t, borrow) = a.sbb(p, 0); // T <- A - P
    let m = mask_from_bit(borrow); // M <- 0 - SLTU(A, P)
    let masked = a.xor(&t).mask(m); // M <- M & (A ^ T)
    t.xor(&masked) // R <- T ^ M
}

/// Modular addition `a + b mod p` for `a, b ∈ [0, p − 1]`, using the
/// Algorithm-1 variant (`T ← A − B` replaced appropriately).
///
/// Requires `p < 2^(64·L − 1)` so the intermediate sum cannot overflow
/// the digit count — true for CSIDH-512 (511-bit `p` in 512 bits).
pub fn mod_add<const L: usize>(a: &Uint<L>, b: &Uint<L>, p: &Uint<L>) -> Uint<L> {
    debug_assert!(p.bit(64 * L - 1) == 0, "top bit of p must be free");
    let sum = a.wrapping_add(b); // cannot overflow: a, b < p < 2^(64L-1)
    fast_reduce_swap(&sum, p)
}

/// Modular subtraction `a − b mod p` for `a, b ∈ [0, p − 1]`: the
/// Algorithm-1 variant with `T ← A − B` (the mask then conditionally
/// adds `p` back), as described in §3.1.
pub fn mod_sub<const L: usize>(a: &Uint<L>, b: &Uint<L>, p: &Uint<L>) -> Uint<L> {
    let (t, borrow) = a.sbb(b, 0);
    let m = mask_from_bit(borrow);
    t.wrapping_add(&p.mask(m))
}

/// Modular negation `−a mod p` for `a ∈ [0, p − 1]`.
pub fn mod_neg<const L: usize>(a: &Uint<L>, p: &Uint<L>) -> Uint<L> {
    mod_sub(&Uint::ZERO, a, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::RefInt;

    type U256 = Uint<4>;

    fn p256() -> U256 {
        // A 255-bit prime (2^255 - 19) leaves the top bit free.
        U256::from_hex("0x7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed")
            .unwrap()
    }

    #[test]
    fn both_algorithms_agree_on_range_edges() {
        let p = p256();
        let two_p_minus_1 = p.wrapping_add(&p).wrapping_sub(&U256::ONE);
        for a in [
            U256::ZERO,
            U256::ONE,
            p.wrapping_sub(&U256::ONE),
            p,
            p.wrapping_add(&U256::ONE),
            two_p_minus_1,
        ] {
            let r1 = fast_reduce_add(&a, &p);
            let r2 = fast_reduce_swap(&a, &p);
            assert_eq!(r1, r2, "a={a}");
            let expect = RefInt::from_limbs(a.limbs()).rem(&RefInt::from_limbs(p.limbs()));
            assert_eq!(r1.limbs().to_vec(), expect.to_limbs(4), "a={a}");
            assert!(r1 < p);
        }
    }

    #[test]
    fn mod_add_matches_reference() {
        let p = p256();
        let rp = RefInt::from_limbs(p.limbs());
        let cases = [
            (U256::ZERO, U256::ZERO),
            (p.wrapping_sub(&U256::ONE), p.wrapping_sub(&U256::ONE)),
            (
                U256::from_hex("0x123456789abcdef0123456789abcdef").unwrap(),
                p.wrapping_sub(&U256::from_u64(1)),
            ),
        ];
        for (a, b) in cases {
            let got = mod_add(&a, &b, &p);
            let expect = RefInt::from_limbs(a.limbs())
                .add(&RefInt::from_limbs(b.limbs()))
                .rem(&rp);
            assert_eq!(got.limbs().to_vec(), expect.to_limbs(4));
        }
    }

    #[test]
    fn mod_sub_matches_reference() {
        let p = p256();
        let rp = RefInt::from_limbs(p.limbs());
        let a = U256::from_u64(5);
        let b = U256::from_u64(9);
        let got = mod_sub(&a, &b, &p);
        // 5 - 9 mod p = p - 4
        let expect = rp.sub(&RefInt::from_u64(4));
        assert_eq!(got.limbs().to_vec(), expect.to_limbs(4));
        // and the easy direction
        assert_eq!(mod_sub(&b, &a, &p), U256::from_u64(4));
    }

    #[test]
    fn mod_neg_roundtrip() {
        let p = p256();
        let a = U256::from_hex("0xdeadbeef").unwrap();
        let n = mod_neg(&a, &p);
        assert_eq!(mod_add(&a, &n, &p), U256::ZERO);
        assert_eq!(mod_neg(&U256::ZERO, &p), U256::ZERO);
    }

    #[test]
    fn subtraction_variant_is_fp_sub() {
        // §3.1: "A variant of Algorithm 1, where line 1 is modified to
        // T = A − B ... can be used for Fp-subtraction."
        let p = p256();
        let a = U256::from_u64(100);
        let b = U256::from_u64(250);
        let r = mod_sub(&a, &b, &p);
        assert_eq!(mod_add(&r, &b, &p), a);
    }
}
