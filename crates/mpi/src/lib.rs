//! # mpise-mpi — multi-precision integer arithmetic
//!
//! The arithmetic layer of the DAC'24 reproduction: flexible (scalable)
//! multi-precision integer (MPI) arithmetic in both operand
//! representations the paper studies (§1, §3.1):
//!
//! * **full-radix** (radix 2^64): [`Uint<L>`](uint::Uint) — `L` 64-bit
//!   digits, carries propagated instantly;
//! * **reduced-radix** (radix 2^57): [`Reduced<N>`](reduced::Reduced) —
//!   `N` 57-bit limbs held in 64-bit words, carries delayed and
//!   propagated in one pass.
//!
//! On top of both representations the crate provides:
//!
//! * schoolbook multiplication in both scanning orders plus Karatsuba
//!   ([`mul`]),
//! * Montgomery reduction and multiplication ([`mont`]),
//! * the two fast modulo-`p` reduction algorithms of the paper
//!   (addition-based Algorithm 1 and swap-based Algorithm 2, [`fast`]),
//! * constant-time primitives ([`ct`]), and
//! * an independent, simple reference implementation used only by tests
//!   (the [`crate::reference`] module).
//!
//! Everything that the paper implements in constant time is constant
//! time here too: no secret-dependent branches or table lookups in the
//! arithmetic paths (the *shape* of the computation depends only on the
//! limb count).

// Carry-chain and multi-array arithmetic code indexes several slices in
// lockstep; iterator rewrites of those loops obscure the digit algebra.
#![allow(clippy::needless_range_loop)]

pub mod ct;
pub mod div;
pub mod fast;
pub mod mont;
pub mod mul;
pub mod reduced;
pub mod reference;
pub mod uint;

pub use mont::MontCtx;
pub use reduced::Reduced;
pub use uint::Uint;

/// A 512-bit full-radix integer (8 digits) — the operand size of the
/// CSIDH-512 case study.
pub type U512 = Uint<8>;

/// A 1024-bit full-radix integer (16 digits), used for double-length
/// products.
pub type U1024 = Uint<16>;
