//! Montgomery reduction and multiplication for the full-radix
//! representation (§3, "we implemented this operation through
//! Montgomery multiplication, which is a common choice for moduli that
//! do not have a special form").

use crate::fast::{fast_reduce_swap, mod_add};
use crate::mul::{mul_ps, square_ps};
use crate::uint::Uint;
use std::fmt;

/// Error returned by [`MontCtx::new`] for unusable moduli.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MontError {
    /// The modulus is even (Montgomery arithmetic needs `gcd(p, 2) = 1`).
    EvenModulus,
    /// The modulus uses the top bit of the top digit, which this
    /// implementation reserves so that `a + b` of two residues cannot
    /// overflow (fast-reduction requirement).
    TopBitSet,
    /// The modulus is zero or one.
    TooSmall,
}

impl fmt::Display for MontError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MontError::EvenModulus => write!(f, "modulus must be odd"),
            MontError::TopBitSet => write!(f, "modulus must leave the top bit free"),
            MontError::TooSmall => write!(f, "modulus must be at least 2"),
        }
    }
}

impl std::error::Error for MontError {}

/// Precomputed Montgomery context for an odd modulus `p` with
/// `R = 2^(64·L)`.
///
/// Residues handled by this context are always kept in canonical form
/// `[0, p − 1]`.
///
/// # Examples
///
/// ```
/// use mpise_mpi::{MontCtx, Uint};
/// let p = Uint::<4>::from_u64(1000003);
/// let ctx = MontCtx::new(p).unwrap();
/// let a = ctx.to_mont(&Uint::from_u64(12345));
/// let b = ctx.to_mont(&Uint::from_u64(67890));
/// let c = ctx.mul(&a, &b);
/// assert_eq!(ctx.from_mont(&c), Uint::from_u64(12345 * 67890 % 1000003));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MontCtx<const L: usize> {
    p: Uint<L>,
    p_inv: u64,
    r: Uint<L>,
    r2: Uint<L>,
}

/// Computes `-m^{-1} mod 2^64` for odd `m` by Newton iteration
/// (5 steps double the precision from 5 to 64+ bits).
pub fn neg_inv_u64(m: u64) -> u64 {
    debug_assert!(m & 1 == 1, "inverse needs an odd modulus");
    let mut inv = m; // correct to 5 bits (for odd m: m*m ≡ 1 mod 8... seed is fine)
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(m.wrapping_mul(inv)));
    }
    debug_assert_eq!(m.wrapping_mul(inv), 1);
    inv.wrapping_neg()
}

impl<const L: usize> MontCtx<L> {
    /// Builds a context for the odd modulus `p`.
    ///
    /// # Errors
    ///
    /// See [`MontError`].
    pub fn new(p: Uint<L>) -> Result<Self, MontError> {
        if !p.is_odd() {
            return Err(MontError::EvenModulus);
        }
        if p.bit(64 * L - 1) == 1 {
            return Err(MontError::TopBitSet);
        }
        if p <= Uint::ONE {
            return Err(MontError::TooSmall);
        }
        let p_inv = neg_inv_u64(p.limb(0));
        // r = 2^(64L) mod p by 64L modular doublings of 1;
        // r2 = 2^(128L) mod p by 64L more.
        let mut v = Uint::ONE;
        for _ in 0..64 * L {
            v = mod_add(&v, &v, &p);
        }
        let r = v;
        for _ in 0..64 * L {
            v = mod_add(&v, &v, &p);
        }
        let r2 = v;
        Ok(MontCtx { p, p_inv, r, r2 })
    }

    /// The modulus.
    pub fn modulus(&self) -> &Uint<L> {
        &self.p
    }

    /// `-p^{-1} mod 2^64` — the per-digit reduction constant.
    pub fn p_inv(&self) -> u64 {
        self.p_inv
    }

    /// `R mod p`, i.e. the Montgomery form of 1.
    pub fn one(&self) -> &Uint<L> {
        &self.r
    }

    /// `R² mod p`, the to-Montgomery conversion constant.
    pub fn r2(&self) -> &Uint<L> {
        &self.r2
    }

    /// Montgomery reduction: given `t = t_hi·2^(64L) + t_lo < p·R`,
    /// returns `t·R^{-1} mod p` in `[0, p − 1]`. Constant time.
    ///
    /// This is the operation of the paper's "Montgomery reduction" row
    /// in Table 4.
    pub fn redc(&self, t_lo: &Uint<L>, t_hi: &Uint<L>) -> Uint<L> {
        let mut t = vec![0u64; 2 * L + 1];
        t[..L].copy_from_slice(t_lo.limbs());
        t[L..2 * L].copy_from_slice(t_hi.limbs());

        for i in 0..L {
            let m = t[i].wrapping_mul(self.p_inv);
            let mut carry = 0u64;
            for j in 0..L {
                let wide = t[i + j] as u128 + m as u128 * self.p.limb(j) as u128 + carry as u128;
                t[i + j] = wide as u64;
                carry = (wide >> 64) as u64;
            }
            // Propagate the column carry upwards.
            let mut k = i + L;
            while carry != 0 {
                let wide = t[k] as u128 + carry as u128;
                t[k] = wide as u64;
                carry = (wide >> 64) as u64;
                k += 1;
            }
        }
        debug_assert!(t[..L].iter().all(|&w| w == 0));

        let mut r_limbs = [0u64; L];
        r_limbs.copy_from_slice(&t[L..2 * L]);
        let r = Uint::from_limbs(r_limbs);
        let extra = t[2 * L]; // 0 or 1: the 2^(64L) overflow bit

        // Result value is extra·2^(64L) + r < 2p. Subtract p when the
        // value is ≥ p, in constant time.
        let (sub, borrow) = r.sbb(&self.p, 0);
        // If extra == 1 the true value is ≥ 2^(64L) > p: always subtract
        // (the borrow is "paid" by the extra bit). Otherwise subtract
        // only when no borrow occurred.
        let keep_sub = crate::ct::mask_from_bit(extra | (1 - borrow));
        let mut out = [0u64; L];
        crate::ct::select_limbs(keep_sub, sub.limbs(), r.limbs(), &mut out);
        Uint::from_limbs(out)
    }

    /// Montgomery multiplication: `a·b·R^{-1} mod p` for residues in
    /// `[0, p − 1]`. Constant time. Separated form: product scanning
    /// followed by [`MontCtx::redc`].
    pub fn mul(&self, a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        let (lo, hi) = mul_ps(a, b);
        self.redc(&lo, &hi)
    }

    /// Montgomery multiplication in the Coarsely Integrated Operand
    /// Scanning (CIOS) form of Koç–Acar–Kaliski: multiplication rows
    /// and reduction steps interleaved in one loop nest.
    ///
    /// §3.1 observes that with a large register file and full
    /// unrolling, the separated and integrated techniques "are very
    /// similar in performance"; this variant exists so that claim can
    /// be benchmarked (see the `mpi_ops` bench). Identical results to
    /// [`MontCtx::mul`].
    pub fn mul_cios(&self, a: &Uint<L>, b: &Uint<L>) -> Uint<L> {
        let mut tl = [0u64; L];
        let (mut t_hi, mut t_hi2) = (0u64, 0u64); // the two overflow words
        for i in 0..L {
            // t += a * b[i]
            let bi = b.limb(i);
            let mut carry = 0u64;
            for j in 0..L {
                let wide = tl[j] as u128 + a.limb(j) as u128 * bi as u128 + carry as u128;
                tl[j] = wide as u64;
                carry = (wide >> 64) as u64;
            }
            let wide = t_hi as u128 + carry as u128;
            t_hi = wide as u64;
            t_hi2 = t_hi2.wrapping_add((wide >> 64) as u64);

            // m = t[0] * p' mod 2^64; t = (t + m*p) / 2^64
            let m = tl[0].wrapping_mul(self.p_inv);
            let wide = tl[0] as u128 + m as u128 * self.p.limb(0) as u128;
            let mut carry = (wide >> 64) as u64;
            for j in 1..L {
                let wide = tl[j] as u128 + m as u128 * self.p.limb(j) as u128 + carry as u128;
                tl[j - 1] = wide as u64;
                carry = (wide >> 64) as u64;
            }
            let wide = t_hi as u128 + carry as u128;
            tl[L - 1] = wide as u64;
            t_hi = t_hi2.wrapping_add((wide >> 64) as u64);
            t_hi2 = 0;
        }
        // Result = t_hi·2^(64L) + tl < 2p: one conditional subtraction.
        let r = Uint::from_limbs(tl);
        let (sub, borrow) = r.sbb(&self.p, 0);
        let keep_sub = crate::ct::mask_from_bit(t_hi | (1 - borrow));
        let mut out = [0u64; L];
        crate::ct::select_limbs(keep_sub, sub.limbs(), r.limbs(), &mut out);
        Uint::from_limbs(out)
    }

    /// Montgomery squaring, using the dedicated squaring routine
    /// (Table 4's "Integer squaring" path).
    pub fn sqr(&self, a: &Uint<L>) -> Uint<L> {
        let (lo, hi) = square_ps(a);
        self.redc(&lo, &hi)
    }

    /// Converts into the Montgomery domain: `a·R mod p`.
    pub fn to_mont(&self, a: &Uint<L>) -> Uint<L> {
        // Reduce a first so the precondition a < p holds for any input.
        let a = fast_reduce_swap(&a.clone(), &self.p);
        self.mul(&a, &self.r2)
    }

    /// Converts out of the Montgomery domain: `a·R^{-1} mod p`.
    pub fn from_mont(&self, a: &Uint<L>) -> Uint<L> {
        self.redc(a, &Uint::ZERO)
    }

    /// Modular exponentiation of a Montgomery-form base by a plain
    /// exponent, returning Montgomery form. The sequence of operations
    /// depends only on `exp.bit_length()`, which is public for every
    /// use in this project (`p`-derived exponents).
    pub fn pow(&self, base_mont: &Uint<L>, exp: &Uint<L>) -> Uint<L> {
        let mut acc = self.r; // Montgomery 1
        let bits = exp.bit_length();
        for i in (0..bits as usize).rev() {
            acc = self.sqr(&acc);
            if exp.bit(i) == 1 {
                acc = self.mul(&acc, base_mont);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::RefInt;

    type U256 = Uint<4>;

    fn p25519() -> U256 {
        U256::from_hex("0x7fffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffed")
            .unwrap()
    }

    #[test]
    fn rejects_bad_moduli() {
        assert_eq!(
            MontCtx::new(U256::from_u64(4)).unwrap_err(),
            MontError::EvenModulus
        );
        assert_eq!(MontCtx::new(U256::ONE).unwrap_err(), MontError::TooSmall);
        assert_eq!(MontCtx::new(U256::MAX).unwrap_err(), MontError::TopBitSet);
    }

    #[test]
    fn neg_inv_is_correct_for_odd_values() {
        for m in [1u64, 3, 0xffff_ffff_ffff_ffff, 0x1b81_b905_33c6_c87b] {
            let ni = neg_inv_u64(m);
            assert_eq!(m.wrapping_mul(ni), 1u64.wrapping_neg());
        }
    }

    #[test]
    fn constants_match_reference() {
        let p = p25519();
        let ctx = MontCtx::new(p).unwrap();
        let rp = RefInt::from_limbs(p.limbs());
        let r_ref = RefInt::one().shl(256).rem(&rp);
        assert_eq!(ctx.one().limbs().to_vec(), r_ref.to_limbs(4));
        let r2_ref = RefInt::one().shl(512).rem(&rp);
        assert_eq!(ctx.r2().limbs().to_vec(), r2_ref.to_limbs(4));
    }

    #[test]
    fn round_trip_to_from_mont() {
        let ctx = MontCtx::new(p25519()).unwrap();
        for v in [
            U256::ZERO,
            U256::ONE,
            U256::from_u64(0xdead_beef),
            p25519().wrapping_sub(&U256::ONE),
        ] {
            assert_eq!(ctx.from_mont(&ctx.to_mont(&v)), v);
        }
    }

    #[test]
    fn mul_matches_reference() {
        let p = p25519();
        let ctx = MontCtx::new(p).unwrap();
        let rp = RefInt::from_limbs(p.limbs());
        let a =
            U256::from_hex("0x4fe1a2b3c4d5e6f708192a3b4c5d6e7f8091a2b3c4d5e6f708192a3b4c5d6e7f")
                .unwrap();
        let b =
            U256::from_hex("0x123456789abcdef0fedcba9876543210deadbeefcafef00d0123456789abcdef")
                .unwrap();
        let am = ctx.to_mont(&a);
        let bm = ctx.to_mont(&b);
        let got = ctx.from_mont(&ctx.mul(&am, &bm));
        let expect = RefInt::from_limbs(a.limbs()).mulmod(&RefInt::from_limbs(b.limbs()), &rp);
        assert_eq!(got.limbs().to_vec(), expect.to_limbs(4));
    }

    #[test]
    fn sqr_equals_mul_self() {
        let ctx = MontCtx::new(p25519()).unwrap();
        let a = ctx.to_mont(
            &U256::from_hex("0x3141592653589793238462643383279502884197169399375105820974944592")
                .unwrap(),
        );
        assert_eq!(ctx.sqr(&a), ctx.mul(&a, &a));
    }

    #[test]
    fn redc_handles_maximal_product() {
        // t = (p-1)^2 exercises the extra carry path.
        let p = p25519();
        let ctx = MontCtx::new(p).unwrap();
        let pm1 = p.wrapping_sub(&U256::ONE);
        let m = ctx.mul(&pm1, &pm1);
        assert!(m < p);
        // (p-1)*(p-1)*R^{-1} mod p -- verify against reference.
        let rp = RefInt::from_limbs(p.limbs());
        // R^{-1} mod p = R^(p-2)? easier: redc(t) * R ≡ t (mod p).
        let lhs = RefInt::from_limbs(m.limbs()).mulmod(&RefInt::one().shl(256), &rp);
        let rhs = RefInt::from_limbs(pm1.limbs()).mulmod(&RefInt::from_limbs(pm1.limbs()), &rp);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn pow_fermat_little_theorem() {
        let p = p25519();
        let ctx = MontCtx::new(p).unwrap();
        let a = ctx.to_mont(&U256::from_u64(7));
        let e = p.wrapping_sub(&U256::ONE);
        let r = ctx.pow(&a, &e);
        assert_eq!(r, *ctx.one(), "a^(p-1) = 1 mod p");
    }

    #[test]
    fn pow_small_exponents() {
        let ctx = MontCtx::new(p25519()).unwrap();
        let a = ctx.to_mont(&U256::from_u64(3));
        assert_eq!(ctx.from_mont(&ctx.pow(&a, &U256::ZERO)), U256::ONE);
        assert_eq!(ctx.from_mont(&ctx.pow(&a, &U256::ONE)), U256::from_u64(3));
        assert_eq!(
            ctx.from_mont(&ctx.pow(&a, &U256::from_u64(5))),
            U256::from_u64(243)
        );
    }

    #[test]
    fn cios_equals_separated_form() {
        let ctx = MontCtx::new(p25519()).unwrap();
        let cases = [
            (U256::ZERO, U256::ZERO),
            (U256::ONE, U256::ONE),
            (
                ctx.to_mont(&U256::from_u64(12345)),
                ctx.to_mont(&U256::from_u64(67890)),
            ),
            (
                p25519().wrapping_sub(&U256::ONE),
                p25519().wrapping_sub(&U256::ONE),
            ),
        ];
        for (a, b) in cases {
            assert_eq!(ctx.mul(&a, &b), ctx.mul_cios(&a, &b), "a={a} b={b}");
        }
    }

    #[test]
    fn cios_randomized() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let p = p25519();
        let ctx = MontCtx::new(p).unwrap();
        let mut rng = StdRng::seed_from_u64(31337);
        for _ in 0..100 {
            let a = crate::fast::fast_reduce_swap(
                &U256::from_limbs(std::array::from_fn(|_| rng.gen())).shr(1),
                &p,
            );
            let b = crate::fast::fast_reduce_swap(
                &U256::from_limbs(std::array::from_fn(|_| rng.gen())).shr(1),
                &p,
            );
            assert_eq!(ctx.mul(&a, &b), ctx.mul_cios(&a, &b));
        }
    }

    #[test]
    fn small_modulus_exhaustive() {
        // p = 251 in 1 limb: check all products exhaustively (sampled).
        let p = Uint::<1>::from_u64(251);
        let ctx = MontCtx::new(p).unwrap();
        for a in (0..251u64).step_by(7) {
            for b in (0..251u64).step_by(11) {
                let am = ctx.to_mont(&Uint::from_u64(a));
                let bm = ctx.to_mont(&Uint::from_u64(b));
                let got = ctx.from_mont(&ctx.mul(&am, &bm));
                assert_eq!(got.limb(0), a * b % 251);
            }
        }
    }
}
