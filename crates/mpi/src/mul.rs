//! MPI multiplication and squaring: operand scanning, product scanning
//! and Karatsuba (§3.1, "High-level techniques").
//!
//! The paper found product scanning more efficient than Karatsuba on
//! RV64GC and used it everywhere; all three are implemented here so the
//! claim can be re-checked (see the `bench` crate's ablations).
//!
//! The central building block is the Multiply-and-ACcumulate (MAC)
//! operation `S ← S + a·b` on a 192-bit accumulator `(e ‖ h ‖ l)` —
//! [`Acc192`] mirrors Listing 1 word for word.

use crate::uint::Uint;

/// The 192-bit accumulator `(e ‖ h ‖ l)` of the full-radix MAC
/// (Listing 1).
///
/// # Examples
///
/// ```
/// use mpise_mpi::mul::Acc192;
/// let mut s = Acc192::ZERO;
/// s.mac(u64::MAX, u64::MAX); // accumulate (2^64-1)^2
/// s.mac(u64::MAX, u64::MAX);
/// let (l, h, e) = (s.l, s.h, s.e);
/// // 2 * (2^64-1)^2 = 2^129 - 2^66 + 2
/// assert_eq!((e, h, l), (1, 0xffff_ffff_ffff_fffc, 2));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Acc192 {
    /// Low word.
    pub l: u64,
    /// Middle word.
    pub h: u64,
    /// High (overflow) word.
    pub e: u64,
}

impl Acc192 {
    /// The zero accumulator.
    pub const ZERO: Self = Acc192 { l: 0, h: 0, e: 0 };

    /// `S ← S + a·b`, computed exactly like Listing 1:
    /// `mulhu`/`mul`/`add`/`sltu`/`add`/`add`/`sltu`/`add`.
    #[inline]
    pub fn mac(&mut self, a: u64, b: u64) {
        let z = ((a as u128 * b as u128) >> 64) as u64; // mulhu z, a, b
        let y = a.wrapping_mul(b); // mul y, a, b
        let l = self.l.wrapping_add(y); // add l, l, y
        let y = (l < y) as u64; // sltu y, l, y
        let z = z.wrapping_add(y); // add z, z, y  (cannot overflow)
        let h = self.h.wrapping_add(z); // add h, h, z
        let z = (h < z) as u64; // sltu z, h, z
        let e = self.e.wrapping_add(z); // add e, e, z
        *self = Acc192 { l, h, e };
    }

    /// Shifts the accumulator right by one word, returning the low word
    /// — the per-column step of product scanning (`r_k ← l; l ← h;
    /// h ← e; e ← 0`).
    #[inline]
    pub fn shift_out(&mut self) -> u64 {
        let out = self.l;
        self.l = self.h;
        self.h = self.e;
        self.e = 0;
        out
    }
}

/// Product-scanning (column-wise / Comba) multiplication on slices:
/// `out[..a.len()+b.len()] ← a · b`.
///
/// # Panics
///
/// Panics if `out.len() != a.len() + b.len()`.
pub fn mul_ps_slices(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert_eq!(out.len(), a.len() + b.len());
    let mut acc = Acc192::ZERO;
    for k in 0..out.len() {
        let lo = k.saturating_sub(b.len() - 1);
        let hi = k.min(a.len() - 1);
        let mut i = lo;
        while i <= hi {
            acc.mac(a[i], b[k - i]);
            i += 1;
        }
        out[k] = acc.shift_out();
    }
}

/// Operand-scanning (row-wise / schoolbook) multiplication on slices.
///
/// # Panics
///
/// Panics if `out.len() != a.len() + b.len()`.
pub fn mul_os_slices(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert_eq!(out.len(), a.len() + b.len());
    out.fill(0);
    for (i, &ai) in a.iter().enumerate() {
        let mut carry = 0u64;
        for (j, &bj) in b.iter().enumerate() {
            let t = ai as u128 * bj as u128 + out[i + j] as u128 + carry as u128;
            out[i + j] = t as u64;
            carry = (t >> 64) as u64;
        }
        out[i + b.len()] = carry;
    }
}

/// Product-scanning squaring on slices, with the usual halving of the
/// cross-product count: each `a_i·a_j` (i<j) is accumulated twice and
/// each `a_i²` once.
///
/// # Panics
///
/// Panics if `out.len() != 2 * a.len()`.
pub fn square_ps_slices(a: &[u64], out: &mut [u64]) {
    assert_eq!(out.len(), 2 * a.len());
    let n = a.len();
    let mut acc = Acc192::ZERO;
    for k in 0..out.len() {
        let lo = k.saturating_sub(n - 1);
        let hi = k.min(n - 1);
        let mut i = lo;
        // Cross terms (i < k-i): accumulate twice.
        while i < k - i && i <= hi {
            acc.mac(a[i], a[k - i]);
            acc.mac(a[i], a[k - i]);
            i += 1;
        }
        // Diagonal term when k is even.
        if k % 2 == 0 && k / 2 < n {
            acc.mac(a[k / 2], a[k / 2]);
        }
        out[k] = acc.shift_out();
    }
}

/// One-level Karatsuba multiplication on slices (equal, even lengths).
///
/// Splits each operand in half, computes three half-size
/// product-scanning multiplications, and combines them. The paper
/// measured this against plain product scanning and found product
/// scanning faster on RV64GC for 512-bit operands (§4).
///
/// # Panics
///
/// Panics if the operand lengths differ, are odd, or
/// `out.len() != a.len() + b.len()`.
pub fn mul_karatsuba_slices(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len() % 2, 0, "Karatsuba needs an even digit count");
    assert_eq!(out.len(), a.len() + b.len());
    let n = a.len();
    let h = n / 2;
    let (a0, a1) = a.split_at(h);
    let (b0, b1) = b.split_at(h);

    // z0 = a0*b0, z2 = a1*b1.
    let mut z0 = vec![0u64; n];
    let mut z2 = vec![0u64; n];
    mul_ps_slices(a0, b0, &mut z0);
    mul_ps_slices(a1, b1, &mut z2);

    // (a0+a1) and (b0+b1), each h digits + carry bit.
    let mut sa = vec![0u64; h];
    let mut sb = vec![0u64; h];
    let mut ca = 0u64;
    let mut cb = 0u64;
    for i in 0..h {
        let (s, c) = crate::ct::adc(a0[i], a1[i], ca);
        sa[i] = s;
        ca = c;
        let (s, c) = crate::ct::adc(b0[i], b1[i], cb);
        sb[i] = s;
        cb = c;
    }

    // z1 = (a0+a1)(b0+b1): (h+1)-digit operands handled as h-digit
    // product plus the carry cross terms.
    let mut z1 = vec![0u64; 2 * h + 2];
    {
        let mut base = vec![0u64; n];
        mul_ps_slices(&sa, &sb, &mut base);
        z1[..n].copy_from_slice(&base);
        // + ca * sb << (64h) and + cb * sa << (64h) and + ca*cb << (128h)
        let mut carry = 0u64;
        if ca == 1 {
            for i in 0..h {
                let t = z1[h + i] as u128 + sb[i] as u128 + carry as u128;
                z1[h + i] = t as u64;
                carry = (t >> 64) as u64;
            }
        }
        let mut carry2 = 0u64;
        if cb == 1 {
            for i in 0..h {
                let t = z1[h + i] as u128 + sa[i] as u128 + carry2 as u128;
                z1[h + i] = t as u64;
                carry2 = (t >> 64) as u64;
            }
        }
        let top = z1[2 * h] as u128 + carry as u128 + carry2 as u128 + (ca * cb) as u128;
        z1[2 * h] = top as u64;
        z1[2 * h + 1] = (top >> 64) as u64;
    }

    // z1 -= z0 + z2 (never underflows).
    let mut borrow = 0u64;
    for i in 0..n {
        let (d, b1) = crate::ct::sbb(z1[i], z0[i], borrow);
        let (d, b2) = crate::ct::sbb(d, z2[i], 0);
        z1[i] = d;
        borrow = b1 + b2;
    }
    for i in n..2 * h + 2 {
        let (d, b1) = crate::ct::sbb(z1[i], borrow, 0);
        z1[i] = d;
        borrow = b1;
    }
    debug_assert_eq!(borrow, 0);

    // out = z0 + z1 << (64h) + z2 << (128h).
    out[..n].copy_from_slice(&z0);
    out[n..].copy_from_slice(&z2);
    let mut carry = 0u64;
    for (i, &z) in z1.iter().enumerate() {
        if h + i >= out.len() {
            debug_assert_eq!(z + carry, 0);
            break;
        }
        let t = out[h + i] as u128 + z as u128 + carry as u128;
        out[h + i] = t as u64;
        carry = (t >> 64) as u64;
    }
    if carry > 0 {
        let mut i = h + z1.len();
        while carry > 0 && i < out.len() {
            let t = out[i] as u128 + carry as u128;
            out[i] = t as u64;
            carry = (t >> 64) as u64;
            i += 1;
        }
        debug_assert_eq!(carry, 0);
    }
}

/// Product-scanning multiplication: returns `(low, high)` halves of the
/// `2L`-digit product.
pub fn mul_ps<const L: usize>(a: &Uint<L>, b: &Uint<L>) -> (Uint<L>, Uint<L>) {
    let mut out = vec![0u64; 2 * L];
    mul_ps_slices(a.limbs(), b.limbs(), &mut out);
    split(&out)
}

/// Operand-scanning multiplication: returns `(low, high)`.
pub fn mul_os<const L: usize>(a: &Uint<L>, b: &Uint<L>) -> (Uint<L>, Uint<L>) {
    let mut out = vec![0u64; 2 * L];
    mul_os_slices(a.limbs(), b.limbs(), &mut out);
    split(&out)
}

/// One-level Karatsuba multiplication: returns `(low, high)`.
///
/// # Panics
///
/// Panics if `L` is odd.
pub fn mul_karatsuba<const L: usize>(a: &Uint<L>, b: &Uint<L>) -> (Uint<L>, Uint<L>) {
    let mut out = vec![0u64; 2 * L];
    mul_karatsuba_slices(a.limbs(), b.limbs(), &mut out);
    split(&out)
}

/// Product-scanning squaring: returns `(low, high)`.
pub fn square_ps<const L: usize>(a: &Uint<L>) -> (Uint<L>, Uint<L>) {
    let mut out = vec![0u64; 2 * L];
    square_ps_slices(a.limbs(), &mut out);
    split(&out)
}

fn split<const L: usize>(wide: &[u64]) -> (Uint<L>, Uint<L>) {
    let mut lo = [0u64; L];
    let mut hi = [0u64; L];
    lo.copy_from_slice(&wide[..L]);
    hi.copy_from_slice(&wide[L..]);
    (Uint::from_limbs(lo), Uint::from_limbs(hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::RefInt;

    type U256 = Uint<4>;

    fn check_against_reference(a: U256, b: U256) {
        let ra = RefInt::from_limbs(a.limbs());
        let rb = RefInt::from_limbs(b.limbs());
        let expect = ra.mul(&rb).to_limbs(8);

        for f in [mul_ps::<4>, mul_os::<4>, mul_karatsuba::<4>] {
            let (lo, hi) = f(&a, &b);
            let mut got = lo.limbs().to_vec();
            got.extend_from_slice(hi.limbs());
            assert_eq!(got, expect, "a={a} b={b}");
        }
    }

    #[test]
    fn small_products() {
        check_against_reference(U256::from_u64(6), U256::from_u64(7));
        check_against_reference(U256::ZERO, U256::MAX);
        check_against_reference(U256::ONE, U256::MAX);
    }

    #[test]
    fn max_times_max() {
        check_against_reference(U256::MAX, U256::MAX);
    }

    #[test]
    fn mixed_patterns() {
        let a =
            U256::from_hex("0xdeadbeefcafef00d_0123456789abcdef_fedcba9876543210_ffffffffffffffff")
                .unwrap();
        let b = U256::from_hex("0x1_0000000000000000_ffffffffffffffff_8000000000000000").unwrap();
        check_against_reference(a, b);
        check_against_reference(b, a);
    }

    #[test]
    fn squaring_matches_multiplication() {
        for hex in [
            "0x3",
            "0xffffffffffffffff",
            "0xdeadbeefcafef00d_0123456789abcdef_fedcba9876543210_ffffffffffffffff",
        ] {
            let a = U256::from_hex(hex).unwrap();
            assert_eq!(square_ps(&a), mul_ps(&a, &a), "a={a}");
        }
    }

    #[test]
    fn acc192_tracks_wide_sum() {
        let mut acc = Acc192::ZERO;
        // 100 accumulations of the max partial product exercise e.
        for _ in 0..100 {
            acc.mac(u64::MAX, u64::MAX);
        }
        // Reference with 256-bit arithmetic via RefInt.
        let p = RefInt::from_limbs(&[1, u64::MAX - 1]); // (2^64-1)^2
        let mut total = RefInt::zero();
        for _ in 0..100 {
            total = total.add(&p);
        }
        let limbs = total.to_limbs(3);
        assert_eq!((acc.l, acc.h, acc.e), (limbs[0], limbs[1], limbs[2]));
    }

    #[test]
    fn mac_instruction_count_is_eight() {
        // Listing 1 uses exactly 8 instructions; Acc192::mac mirrors it
        // 1:1. This is verified against the generated kernels in
        // mpise-fp; here we pin the arithmetic identity S' = S + a*b.
        let mut acc = Acc192 { l: 5, h: 6, e: 7 };
        acc.mac(0x1234_5678_9abc_def0, 0x0fed_cba9_8765_4321);
        let s0 = 7u128 << 64 | 6u128; // e||h
        let p = 0x1234_5678_9abc_def0u128 * 0x0fed_cba9_8765_4321u128;
        let l = 5u128 + (p & u64::MAX as u128);
        let hi = s0 + (p >> 64) + (l >> 64);
        assert_eq!(acc.l, l as u64);
        assert_eq!(acc.h, hi as u64);
        assert_eq!(acc.e, (hi >> 64) as u64);
    }

    #[test]
    fn asymmetric_slice_lengths() {
        let a = [u64::MAX, u64::MAX, u64::MAX];
        let b = [u64::MAX];
        let mut out_ps = [0u64; 4];
        let mut out_os = [0u64; 4];
        mul_ps_slices(&a, &b, &mut out_ps);
        mul_os_slices(&a, &b, &mut out_os);
        assert_eq!(out_ps, out_os);
        let ra = RefInt::from_limbs(&a).mul(&RefInt::from_limbs(&b));
        assert_eq!(out_ps.to_vec(), ra.to_limbs(4));
    }

    #[test]
    fn karatsuba_eight_limbs() {
        let a = Uint::<8>::from_hex("0x8f40e1c9a3b5d7f0_1122334455667788_99aabbccddeeff00_deadbeefcafef00d_0123456789abcdef_fedcba9876543210_aaaaaaaaaaaaaaaa_5555555555555555").unwrap();
        let b = Uint::<8>::MAX;
        assert_eq!(mul_karatsuba(&a, &b), mul_ps(&a, &b));
    }
}
