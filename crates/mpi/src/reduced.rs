//! Reduced-radix (radix-2^57) representation and arithmetic (§3.1).
//!
//! A value is held as `N` limbs of nominally 57 bits each, stored in
//! 64-bit words. The seven spare bits per word let additions *delay*
//! carry propagation: limb values may temporarily grow past 2^57
//! ("lazy" form) and are brought back below 2^57 by a single
//! propagation pass ([`Reduced::propagate`]), which in the paper costs
//! `srai + add + and` per limb on the base ISA and `sraiadd + and` with
//! the `sraiadd` custom instruction.
//!
//! Subtractions produce limbs that are negative in two's complement;
//! propagation uses an *arithmetic* shift so borrows ripple correctly —
//! this is why the paper's carry-propagation instruction is
//! `sraiadd` (arithmetic) and not a logical-shift fusion.

use crate::ct::{mask_from_bit, select_limbs};
use crate::mont::MontError;
use crate::uint::Uint;
use mpise_core::intrinsics::{madd57hu, madd57lu, sraiadd};
use mpise_core::{REDUCED_RADIX_BITS, REDUCED_RADIX_MASK};
use std::fmt;

/// Limb width in bits (57).
pub const RADIX_BITS: u32 = REDUCED_RADIX_BITS;
/// Limb mask `2^57 − 1`.
pub const MASK: u64 = REDUCED_RADIX_MASK;

/// A reduced-radix integer of `N` limbs (57 bits per limb nominally).
///
/// # Examples
///
/// ```
/// use mpise_mpi::{Reduced, Uint};
/// let x = Uint::<2>::from_u64(u64::MAX);
/// let r: Reduced<3> = Reduced::from_uint(&x);
/// assert_eq!(r.to_uint::<2>(), x);
/// assert!(r.is_canonical());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reduced<const N: usize> {
    limbs: [u64; N],
}

impl<const N: usize> Reduced<N> {
    /// The value 0.
    pub const ZERO: Self = Reduced { limbs: [0; N] };

    /// The value 1.
    pub const ONE: Self = {
        let mut limbs = [0; N];
        limbs[0] = 1;
        Reduced { limbs }
    };

    /// Total bit capacity in canonical form (`57 · N`).
    pub const BITS: u32 = RADIX_BITS * N as u32;

    /// Constructs from raw limbs (which may be lazy).
    pub const fn from_limbs(limbs: [u64; N]) -> Self {
        Reduced { limbs }
    }

    /// The raw limbs.
    pub const fn limbs(&self) -> &[u64; N] {
        &self.limbs
    }

    /// Limb `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= N`.
    pub const fn limb(&self, i: usize) -> u64 {
        self.limbs[i]
    }

    /// Whether every limb is strictly below 2^57 (canonical form).
    pub fn is_canonical(&self) -> bool {
        self.limbs.iter().all(|&l| l <= MASK)
    }

    /// Whether the value is zero (requires canonical form to be
    /// meaningful).
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Converts a full-radix integer into reduced radix (canonical).
    ///
    /// # Panics
    ///
    /// Panics if the value needs more than `57 · N` bits.
    pub fn from_uint<const L: usize>(a: &Uint<L>) -> Self {
        assert!(
            a.bit_length() <= Self::BITS,
            "value of {} bits does not fit {} reduced limbs",
            a.bit_length(),
            N
        );
        let mut limbs = [0u64; N];
        let src = a.limbs();
        for (k, limb) in limbs.iter_mut().enumerate() {
            let bit = RADIX_BITS as usize * k;
            let (word, off) = (bit / 64, bit % 64);
            if word >= L {
                break;
            }
            let mut v = src[word] >> off;
            if off > 64 - RADIX_BITS as usize && word + 1 < L {
                v |= src[word + 1] << (64 - off);
            }
            *limb = v & MASK;
        }
        Reduced { limbs }
    }

    /// Converts back to full radix.
    ///
    /// # Panics
    ///
    /// Panics if the value is not canonical or does not fit `L` digits.
    pub fn to_uint<const L: usize>(&self) -> Uint<L> {
        assert!(self.is_canonical(), "to_uint requires canonical form");
        let mut out = [0u64; L];
        for (k, &limb) in self.limbs.iter().enumerate() {
            let bit = RADIX_BITS as usize * k;
            let (word, off) = (bit / 64, bit % 64);
            if word < L {
                out[word] |= limb << off;
                let spill = if off == 0 { 0 } else { limb >> (64 - off) };
                if spill != 0 {
                    assert!(word + 1 < L, "value does not fit {L} digits");
                    out[word + 1] |= spill;
                }
            } else {
                assert_eq!(limb, 0, "value does not fit {L} digits");
            }
        }
        Uint::from_limbs(out)
    }

    /// Lazy addition: limb-wise, no carry handling. The caller is
    /// responsible for the headroom bookkeeping (each addition grows
    /// limbs by at most one bit).
    pub fn add_lazy(&self, other: &Self) -> Self {
        let mut out = [0u64; N];
        for i in 0..N {
            out[i] = self.limbs[i].wrapping_add(other.limbs[i]);
        }
        Reduced { limbs: out }
    }

    /// Lazy subtraction: limb-wise two's complement; limbs may go
    /// negative and are fixed up by [`Reduced::propagate`]'s arithmetic
    /// shift.
    pub fn sub_lazy(&self, other: &Self) -> Self {
        let mut out = [0u64; N];
        for i in 0..N {
            out[i] = self.limbs[i].wrapping_sub(other.limbs[i]);
        }
        Reduced { limbs: out }
    }

    /// One-time carry propagation (§3.2): for each limb, the bits above
    /// 57 — interpreted as a *signed* quantity — move into the next
    /// limb. The top limb keeps any overflow/sign; for values in the
    /// expected range it ends canonical (or all-ones-sign for negative
    /// values, which [`MontCtx57::reduce_once`] exploits).
    ///
    /// This is the `srai/add/and` chain of the paper; with the
    /// `sraiadd` ISE the per-limb cost drops from 3 to 2 instructions.
    pub fn propagate(&self) -> Self {
        let mut out = self.limbs;
        for i in 0..N - 1 {
            // sraiadd y, y, x, 57 ; and x, x, m
            out[i + 1] = sraiadd(out[i + 1], out[i], RADIX_BITS);
            out[i] &= MASK;
        }
        Reduced { limbs: out }
    }

    /// Whether the value is negative when the top limb is interpreted
    /// as signed (meaningful after [`Reduced::propagate`] of a lazy
    /// subtraction).
    pub fn is_negative(&self) -> bool {
        (self.limbs[N - 1] as i64) < 0
    }
}

impl<const N: usize> Default for Reduced<N> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const N: usize> fmt::Debug for Reduced<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reduced<{N}>[")?;
        for (i, l) in self.limbs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l:#x}")?;
        }
        write!(f, "]")
    }
}

/// Product-scanning multiplication of canonical reduced-radix values on
/// slices, producing `a.len() + b.len()` canonical 57-bit limbs.
///
/// Written with the `madd57lu`/`madd57hu` intrinsics exactly as the
/// ISE-supported kernel (Listing 4): per partial product, the low 57
/// bits accumulate into `l` and bits 120…57 into `h`; at the end of a
/// column `l` flushes into the result and `h` (plus `l`'s overflow)
/// becomes the next column's `l`.
///
/// # Panics
///
/// Panics if an input limb exceeds 2^57 − 1 or
/// `out.len() != a.len() + b.len()`.
pub fn mul_ps_slices_57(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert_eq!(out.len(), a.len() + b.len());
    assert!(
        a.iter().chain(b).all(|&l| l <= MASK),
        "inputs must be canonical"
    );
    let (mut l, mut h) = (0u64, 0u64);
    for k in 0..out.len() - 1 {
        let lo = k.saturating_sub(b.len() - 1);
        let hi = k.min(a.len() - 1);
        for i in lo..=hi {
            // madd57hu h, a, b, h ; madd57lu l, a, b, l   (Listing 4)
            h = madd57hu(a[i], b[k - i], h);
            l = madd57lu(a[i], b[k - i], l);
        }
        out[k] = l & MASK;
        l = h.wrapping_add(l >> RADIX_BITS);
        h = 0;
    }
    out[a.len() + b.len() - 1] = l;
    debug_assert!(out[a.len() + b.len() - 1] <= MASK);
}

/// Reference ISA-only variant of [`mul_ps_slices_57`]: a 128-bit
/// `(h ‖ l)` accumulator fed by `mul`/`mulhu` MACs (Listing 2), aligned
/// at each column with the shift sequence of §3.1. Produces identical
/// results; exists so tests can pin the two instruction sequences to
/// the same function.
pub fn mul_ps_slices_57_isa(a: &[u64], b: &[u64], out: &mut [u64]) {
    assert_eq!(out.len(), a.len() + b.len());
    assert!(
        a.iter().chain(b).all(|&l| l <= MASK),
        "inputs must be canonical"
    );
    let mut acc: u128 = 0;
    for k in 0..out.len() - 1 {
        let lo = k.saturating_sub(b.len() - 1);
        let hi = k.min(a.len() - 1);
        for i in lo..=hi {
            acc += a[i] as u128 * b[k - i] as u128;
        }
        out[k] = (acc as u64) & MASK;
        acc >>= RADIX_BITS;
    }
    out[a.len() + b.len() - 1] = acc as u64;
    debug_assert_eq!(acc >> RADIX_BITS, 0);
}

/// Product-scanning squaring in radix 2^57 (cross terms doubled).
///
/// # Panics
///
/// Panics if an input limb exceeds 2^57 − 1 or `out.len() != 2 * a.len()`.
pub fn square_ps_slices_57(a: &[u64], out: &mut [u64]) {
    assert_eq!(out.len(), 2 * a.len());
    assert!(a.iter().all(|&l| l <= MASK), "input must be canonical");
    let n = a.len();
    let (mut l, mut h) = (0u64, 0u64);
    for k in 0..out.len() - 1 {
        let lo = k.saturating_sub(n - 1);
        let hi = k.min(n - 1);
        let mut i = lo;
        while i < k - i && i <= hi {
            // Double cross terms: two MAC pairs on the same inputs.
            h = madd57hu(a[i], a[k - i], h);
            l = madd57lu(a[i], a[k - i], l);
            h = madd57hu(a[i], a[k - i], h);
            l = madd57lu(a[i], a[k - i], l);
            i += 1;
        }
        if k % 2 == 0 {
            h = madd57hu(a[k / 2], a[k / 2], h);
            l = madd57lu(a[k / 2], a[k / 2], l);
        }
        out[k] = l & MASK;
        l = h.wrapping_add(l >> RADIX_BITS);
        h = 0;
    }
    out[2 * n - 1] = l;
}

/// Computes `-m^{-1} mod 2^57` for odd `m`.
pub fn neg_inv_57(m: u64) -> u64 {
    debug_assert!(m & 1 == 1);
    let mut inv = m;
    for _ in 0..5 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(m.wrapping_mul(inv)));
    }
    inv.wrapping_neg() & MASK
}

/// Montgomery context in reduced radix: `R = 2^(57·N)`.
///
/// The modulus must be odd, and must leave at least one full limb of
/// headroom (`p < 2^(57·(N−1) + 56)`) so that sums of two residues stay
/// canonical — for CSIDH-512, a 511-bit `p` in nine 57-bit limbs
/// (513 bits capacity) satisfies this.
///
/// # Examples
///
/// ```
/// use mpise_mpi::{reduced::MontCtx57, Reduced, Uint};
/// let p = Uint::<2>::from_hex("0x7fffffffffffffffffffffffffffff67").unwrap(); // 127-bit prime
/// let ctx = MontCtx57::<3>::new(Reduced::from_uint(&p)).unwrap();
/// let a = ctx.to_mont(&Reduced::from_uint(&Uint::<2>::from_u64(1234567)));
/// let b = ctx.to_mont(&Reduced::from_uint(&Uint::<2>::from_u64(89)));
/// let c = ctx.from_mont(&ctx.mul(&a, &b));
/// assert_eq!(c.to_uint::<2>(), Uint::from_u64(1234567 * 89));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MontCtx57<const N: usize> {
    p: Reduced<N>,
    p_inv: u64,
    r: Reduced<N>,
    r2: Reduced<N>,
}

impl<const N: usize> MontCtx57<N> {
    /// Builds a context for the odd canonical modulus `p`.
    ///
    /// # Errors
    ///
    /// [`MontError::EvenModulus`] for even moduli,
    /// [`MontError::TopBitSet`] when the top limb leaves no headroom,
    /// [`MontError::TooSmall`] for 0/1.
    pub fn new(p: Reduced<N>) -> Result<Self, MontError> {
        if p.limb(0) & 1 == 0 {
            return Err(MontError::EvenModulus);
        }
        if !p.is_canonical() || p.limb(N - 1) >> (RADIX_BITS - 1) != 0 {
            return Err(MontError::TopBitSet);
        }
        if p.limbs().iter().all(|&l| l <= 1)
            && p.limb(0) <= 1
            && !p.limbs()[1..].iter().any(|&l| l != 0)
        {
            return Err(MontError::TooSmall);
        }
        let p_inv = neg_inv_57(p.limb(0));
        let mut v = Reduced::ONE;
        let mut ctx = MontCtx57 {
            p,
            p_inv,
            r: Reduced::ZERO,
            r2: Reduced::ZERO,
        };
        for _ in 0..RADIX_BITS as usize * N {
            v = ctx.add(&v, &v);
        }
        ctx.r = v;
        for _ in 0..RADIX_BITS as usize * N {
            v = ctx.add(&v, &v);
        }
        ctx.r2 = v;
        Ok(ctx)
    }

    /// The modulus.
    pub fn modulus(&self) -> &Reduced<N> {
        &self.p
    }

    /// `-p^{-1} mod 2^57`.
    pub fn p_inv(&self) -> u64 {
        self.p_inv
    }

    /// Montgomery form of 1 (`R mod p`).
    pub fn one(&self) -> &Reduced<N> {
        &self.r
    }

    /// `R² mod p`.
    pub fn r2(&self) -> &Reduced<N> {
        &self.r2
    }

    /// Modular addition with fast reduction: result canonical in
    /// `[0, p − 1]`. Constant time.
    pub fn add(&self, a: &Reduced<N>, b: &Reduced<N>) -> Reduced<N> {
        debug_assert!(a.is_canonical() && b.is_canonical());
        let s = a.add_lazy(b).propagate();
        self.reduce_once(&s)
    }

    /// Modular subtraction: result canonical in `[0, p − 1]`.
    /// Constant time (Algorithm-1 variant with `T ← A − B`).
    pub fn sub(&self, a: &Reduced<N>, b: &Reduced<N>) -> Reduced<N> {
        let t = a.sub_lazy(b).propagate();
        let m = mask_from_bit((t.limb(N - 1) >> 63) & 1);
        let fix = Reduced::from_limbs(std::array::from_fn(|i| self.p.limb(i) & m));
        t.add_lazy(&fix).propagate()
    }

    /// Modular negation.
    pub fn neg(&self, a: &Reduced<N>) -> Reduced<N> {
        self.sub(&Reduced::ZERO, a)
    }

    /// Fast reduction of a canonical value in `[0, 2p − 1]` to
    /// `[0, p − 1]` — the reduced-radix realization of Algorithm 2
    /// (swap-based; the select replaces the conditional swap).
    pub fn reduce_once(&self, a: &Reduced<N>) -> Reduced<N> {
        debug_assert!(a.is_canonical());
        let t = a.sub_lazy(&self.p).propagate();
        // Negative iff a < p.
        let m = mask_from_bit((t.limb(N - 1) >> 63) & 1);
        let mut out = [0u64; N];
        select_limbs(m, a.limbs(), t.limbs(), &mut out);
        Reduced::from_limbs(out)
    }

    /// Montgomery reduction of a `2N`-limb canonical product (57-bit
    /// limbs): returns `t·R^{-1} mod p` canonical in `[0, p − 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `t.len() != 2 * N`.
    pub fn redc(&self, t: &[u64]) -> Reduced<N> {
        assert_eq!(t.len(), 2 * N);
        let mut w: Vec<u128> = t.iter().map(|&x| x as u128).collect();
        w.push(0);
        for i in 0..N {
            let m = (w[i] as u64).wrapping_mul(self.p_inv) & MASK;
            for j in 0..N {
                w[i + j] += m as u128 * self.p.limb(j) as u128;
            }
            // Flush the (now zero mod 2^57) column's carry upward.
            debug_assert_eq!((w[i] as u64) & MASK, 0);
            let c = w[i] >> RADIX_BITS;
            w[i + 1] += c;
            w[i] = 0;
        }
        // Normalize the upper half into 57-bit limbs.
        let mut out = [0u64; N];
        let mut carry: u128 = 0;
        for k in 0..N {
            let v = w[N + k] + carry;
            out[k] = (v as u64) & MASK;
            carry = v >> RADIX_BITS;
        }
        debug_assert_eq!(carry, 0, "redc result exceeds 2p");
        self.reduce_once(&Reduced::from_limbs(out))
    }

    /// Montgomery multiplication. Constant time.
    pub fn mul(&self, a: &Reduced<N>, b: &Reduced<N>) -> Reduced<N> {
        let mut t = vec![0u64; 2 * N];
        mul_ps_slices_57(a.limbs(), b.limbs(), &mut t);
        self.redc(&t)
    }

    /// Montgomery squaring. Constant time.
    pub fn sqr(&self, a: &Reduced<N>) -> Reduced<N> {
        let mut t = vec![0u64; 2 * N];
        square_ps_slices_57(a.limbs(), &mut t);
        self.redc(&t)
    }

    /// Converts to Montgomery form.
    pub fn to_mont(&self, a: &Reduced<N>) -> Reduced<N> {
        let a = self.reduce_once(a);
        self.mul(&a, &self.r2)
    }

    /// Converts out of Montgomery form.
    pub fn from_mont(&self, a: &Reduced<N>) -> Reduced<N> {
        let mut t = vec![0u64; 2 * N];
        t[..N].copy_from_slice(a.limbs());
        self.redc(&t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::RefInt;

    type U128x = Uint<2>;

    fn p127() -> U128x {
        // 2^127 - 1 is prime (Mersenne).
        U128x::from_hex("0x7fffffffffffffffffffffffffffffff").unwrap()
    }

    #[test]
    fn uint_round_trip() {
        for hex in [
            "0x0",
            "0x1",
            "0xffffffffffffffff",
            "0x123456789abcdef0aabbccdd",
        ] {
            let u = U128x::from_hex(hex).unwrap();
            let r: Reduced<3> = Reduced::from_uint(&u);
            assert!(r.is_canonical());
            assert_eq!(r.to_uint::<2>(), u);
        }
    }

    #[test]
    fn lazy_add_then_propagate() {
        let a: Reduced<3> =
            Reduced::from_uint(&U128x::from_hex("0xffffffffffffffffffffffffffffffff").unwrap());
        let s = a.add_lazy(&a);
        assert!(!s.is_canonical());
        let prop = s.propagate();
        // 2a needs 129 bits, fits 3*57 = 171 bits.
        assert!(prop.is_canonical());
        let expect = RefInt::from_limbs(a.to_uint::<2>().limbs()).shl(1);
        let got: Uint<3> = prop.to_uint();
        assert_eq!(got.limbs().to_vec(), expect.to_limbs(3));
    }

    #[test]
    fn sub_lazy_propagates_borrows_arithmetically() {
        let a: Reduced<3> = Reduced::from_uint(&U128x::from_u64(5));
        let b: Reduced<3> = Reduced::from_uint(&U128x::from_u64(7));
        let t = a.sub_lazy(&b).propagate();
        assert!(t.is_negative());
        let t2 = b.sub_lazy(&a).propagate();
        assert!(!t2.is_negative());
        assert_eq!(t2.to_uint::<2>(), U128x::from_u64(2));
    }

    #[test]
    fn mul57_matches_reference_and_isa_variant() {
        let a = U128x::from_hex("0x7edcba9876543210fedcba9876543210").unwrap();
        let b = U128x::from_hex("0x7123456789abcdef0123456789abcdef").unwrap();
        let ra: Reduced<3> = Reduced::from_uint(&a);
        let rb: Reduced<3> = Reduced::from_uint(&b);
        let mut out_ise = [0u64; 6];
        let mut out_isa = [0u64; 6];
        mul_ps_slices_57(ra.limbs(), rb.limbs(), &mut out_ise);
        mul_ps_slices_57_isa(ra.limbs(), rb.limbs(), &mut out_isa);
        assert_eq!(out_ise, out_isa);
        // Cross-check the value against the schoolbook reference.
        let prod: Uint<6> = Reduced::<6>::from_limbs(out_ise).to_uint();
        let expect = RefInt::from_limbs(a.limbs()).mul(&RefInt::from_limbs(b.limbs()));
        assert_eq!(prod.limbs().to_vec(), expect.to_limbs(6));
    }

    #[test]
    fn square57_matches_mul() {
        let a = U128x::from_hex("0x3243f6a8885a308d313198a2e0370734").unwrap();
        let ra: Reduced<3> = Reduced::from_uint(&a);
        let mut sq = [0u64; 6];
        let mut ml = [0u64; 6];
        square_ps_slices_57(ra.limbs(), &mut sq);
        mul_ps_slices_57(ra.limbs(), ra.limbs(), &mut ml);
        assert_eq!(sq, ml);
    }

    #[test]
    fn neg_inv_57_correct() {
        for m in [1u64, 3, MASK, 0x0012_3456_789a_bcdf_u64 | 1] {
            let ni = neg_inv_57(m & MASK | 1);
            let m = m & MASK | 1;
            assert_eq!(m.wrapping_mul(ni) & MASK, MASK, "m={m:#x}");
        }
    }

    #[test]
    fn mont_mul_matches_reference() {
        let p = p127();
        let ctx = MontCtx57::<3>::new(Reduced::from_uint(&p)).unwrap();
        let rp = RefInt::from_limbs(p.limbs());
        let a = U128x::from_hex("0x48d159e26af37bc048d159e26af37bc0").unwrap();
        let b = U128x::from_hex("0x159e26af37bc048d159e26af37bc048d").unwrap();
        let am = ctx.to_mont(&Reduced::from_uint(&a));
        let bm = ctx.to_mont(&Reduced::from_uint(&b));
        let got = ctx.from_mont(&ctx.mul(&am, &bm));
        let expect = RefInt::from_limbs(a.limbs()).mulmod(&RefInt::from_limbs(b.limbs()), &rp);
        assert_eq!(got.to_uint::<2>().limbs().to_vec(), expect.to_limbs(2));
    }

    #[test]
    fn add_sub_round_trip_mod_p() {
        let p = p127();
        let ctx = MontCtx57::<3>::new(Reduced::from_uint(&p)).unwrap();
        let a: Reduced<3> =
            Reduced::from_uint(&U128x::from_hex("0x7000000000000000000000000000dead").unwrap());
        let b: Reduced<3> = Reduced::from_uint(&U128x::from_u64(12345));
        let s = ctx.add(&a, &b);
        assert!(s.is_canonical());
        let d = ctx.sub(&s, &b);
        assert_eq!(d.to_uint::<2>(), a.to_uint::<2>());
        // a + (p - a) == 0
        let n = ctx.neg(&a);
        assert!(ctx.add(&a, &n).is_zero());
    }

    #[test]
    fn reduce_once_edges() {
        let p = p127();
        let ctx = MontCtx57::<3>::new(Reduced::from_uint(&p)).unwrap();
        let pr: Reduced<3> = Reduced::from_uint(&p);
        assert!(ctx.reduce_once(&pr).is_zero());
        let pm1: Reduced<3> = Reduced::from_uint(&p.wrapping_sub(&U128x::ONE));
        assert_eq!(ctx.reduce_once(&pm1), pm1);
        // 2p - 1 reduces to p - 1.
        let two_p_m1 = pr.add_lazy(&pm1).propagate();
        assert_eq!(ctx.reduce_once(&two_p_m1), pm1);
    }

    #[test]
    fn from_mont_of_r_is_one() {
        let ctx = MontCtx57::<3>::new(Reduced::from_uint(&p127())).unwrap();
        assert_eq!(ctx.from_mont(ctx.one()).to_uint::<2>(), U128x::ONE);
    }

    #[test]
    fn rejects_bad_moduli() {
        assert!(MontCtx57::<3>::new(Reduced::from_uint(&U128x::from_u64(4))).is_err());
        // Non-canonical limbs rejected via TopBitSet/canonical check.
        let bad = Reduced::<3>::from_limbs([u64::MAX, 0, 1]);
        assert!(MontCtx57::<3>::new(bad).is_err());
    }
}
