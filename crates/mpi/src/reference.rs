//! A deliberately simple arbitrary-precision natural-number
//! implementation used as an independent cross-check in tests.
//!
//! Nothing here is optimized or constant-time; correctness comes from
//! simplicity (schoolbook algorithms, binary long division). The
//! optimized code in [`crate::mul`], [`crate::mont`], [`crate::fast`]
//! and [`crate::reduced`] is validated against this module.

/// An arbitrary-precision natural number (little-endian 64-bit limbs,
/// normalized: no trailing zero limbs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefInt {
    limbs: Vec<u64>,
}

impl RefInt {
    /// The value 0.
    pub fn zero() -> Self {
        RefInt { limbs: vec![] }
    }

    /// The value 1.
    pub fn one() -> Self {
        RefInt { limbs: vec![1] }
    }

    /// Constructs from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut r = RefInt { limbs: vec![v] };
        r.normalize();
        r
    }

    /// Constructs from little-endian limbs (trailing zeros allowed).
    pub fn from_limbs(limbs: &[u64]) -> Self {
        let mut r = RefInt {
            limbs: limbs.to_vec(),
        };
        r.normalize();
        r
    }

    /// Returns the value as exactly `n` little-endian limbs.
    ///
    /// # Panics
    ///
    /// Panics if the value does not fit in `n` limbs.
    pub fn to_limbs(&self, n: usize) -> Vec<u64> {
        assert!(self.limbs.len() <= n, "value does not fit in {n} limbs");
        let mut out = self.limbs.clone();
        out.resize(n, 0);
        out
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Number of significant bits.
    pub fn bit_length(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => 64 * (self.limbs.len() - 1) + (64 - top.leading_zeros() as usize),
        }
    }

    /// Bit `i` (0 = least significant; out-of-range bits read 0).
    pub fn bit(&self, i: usize) -> bool {
        self.limbs
            .get(i / 64)
            .is_some_and(|l| (l >> (i % 64)) & 1 == 1)
    }

    /// Comparison.
    pub fn cmp_ref(&self, other: &Self) -> std::cmp::Ordering {
        self.limbs
            .len()
            .cmp(&other.limbs.len())
            .then_with(|| self.limbs.iter().rev().cmp(other.limbs.iter().rev()))
    }

    /// Addition.
    pub fn add(&self, other: &Self) -> Self {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u128;
        for i in 0..n {
            let t = carry
                + *self.limbs.get(i).unwrap_or(&0) as u128
                + *other.limbs.get(i).unwrap_or(&0) as u128;
            out.push(t as u64);
            carry = t >> 64;
        }
        out.push(carry as u64);
        RefInt::from_limbs(&out)
    }

    /// Subtraction (`self - other`).
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(
            self.cmp_ref(other) != std::cmp::Ordering::Less,
            "reference subtraction would underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i128;
        for i in 0..self.limbs.len() {
            let t = self.limbs[i] as i128 - *other.limbs.get(i).unwrap_or(&0) as i128 - borrow;
            if t < 0 {
                out.push((t + (1i128 << 64)) as u64);
                borrow = 1;
            } else {
                out.push(t as u64);
                borrow = 0;
            }
        }
        RefInt::from_limbs(&out)
    }

    /// Schoolbook multiplication.
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return RefInt::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let t = a as u128 * b as u128 + out[i + j] as u128 + carry;
                out[i + j] = t as u64;
                carry = t >> 64;
            }
            out[i + other.limbs.len()] = carry as u64;
        }
        RefInt::from_limbs(&out)
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> Self {
        if self.is_zero() {
            return RefInt::zero();
        }
        let (words, bits) = (n / 64, n % 64);
        let mut out = vec![0u64; self.limbs.len() + words + 1];
        for (i, &l) in self.limbs.iter().enumerate() {
            out[i + words] |= l << bits;
            if bits > 0 {
                out[i + words + 1] |= l >> (64 - bits);
            }
        }
        RefInt::from_limbs(&out)
    }

    /// Remainder modulo `m`, by binary long division.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &Self) -> Self {
        assert!(!m.is_zero(), "division by zero");
        if self.cmp_ref(m) == std::cmp::Ordering::Less {
            return self.clone();
        }
        let mut r = RefInt::zero();
        for i in (0..self.bit_length()).rev() {
            r = r.shl(1);
            if self.bit(i) {
                r = r.add(&RefInt::one());
            }
            if r.cmp_ref(m) != std::cmp::Ordering::Less {
                r = r.sub(m);
            }
        }
        r
    }

    /// Modular multiplication `self * other mod m`.
    pub fn mulmod(&self, other: &Self, m: &Self) -> Self {
        self.mul(other).rem(m)
    }

    /// Modular exponentiation `self^e mod m` (square-and-multiply).
    pub fn powmod(&self, e: &Self, m: &Self) -> Self {
        let mut result = RefInt::one().rem(m);
        let base = self.rem(m);
        for i in (0..e.bit_length()).rev() {
            result = result.mulmod(&result, m);
            if e.bit(i) {
                result = result.mulmod(&base, m);
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        let a = RefInt::from_limbs(&[5, 0, 0]);
        assert_eq!(a, RefInt::from_u64(5));
        assert!(RefInt::from_limbs(&[0, 0]).is_zero());
    }

    #[test]
    fn add_sub() {
        let a = RefInt::from_limbs(&[u64::MAX, u64::MAX]);
        let b = RefInt::one();
        let s = a.add(&b);
        assert_eq!(s.to_limbs(3), vec![0, 0, 1]);
        assert_eq!(s.sub(&b), a);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        RefInt::one().sub(&RefInt::from_u64(2));
    }

    #[test]
    fn mul_and_shift() {
        let a = RefInt::from_u64(0xffff_ffff_ffff_ffff);
        let sq = a.mul(&a);
        assert_eq!(sq.to_limbs(2), vec![1, u64::MAX - 1]);
        assert_eq!(a.shl(64).to_limbs(2), vec![0, u64::MAX]);
        assert_eq!(a.shl(1).to_limbs(2), vec![u64::MAX - 1, 1]);
    }

    #[test]
    fn rem_small_cases() {
        let a = RefInt::from_u64(100);
        let m = RefInt::from_u64(7);
        assert_eq!(a.rem(&m), RefInt::from_u64(2));
        assert_eq!(RefInt::from_u64(6).rem(&m), RefInt::from_u64(6));
        assert_eq!(RefInt::from_u64(7).rem(&m), RefInt::zero());
    }

    #[test]
    fn rem_multi_limb() {
        // (2^128 - 1) mod (2^64 + 1) : 2^128 ≡ 1, so result is 2^64...
        // compute directly: 2^128-1 = (2^64+1)(2^64-1), so rem = 0.
        let a = RefInt::from_limbs(&[u64::MAX, u64::MAX]);
        let m = RefInt::from_limbs(&[1, 1]);
        assert!(a.rem(&m).is_zero());
    }

    #[test]
    fn powmod_fermat() {
        // 2^(p-1) ≡ 1 mod p for prime p = 1000003.
        let p = RefInt::from_u64(1_000_003);
        let e = RefInt::from_u64(1_000_002);
        assert_eq!(RefInt::from_u64(2).powmod(&e, &p), RefInt::one());
    }

    #[test]
    fn bits() {
        let a = RefInt::from_u64(0b1001);
        assert!(a.bit(0));
        assert!(!a.bit(1));
        assert!(a.bit(3));
        assert!(!a.bit(100));
        assert_eq!(a.bit_length(), 4);
    }
}
