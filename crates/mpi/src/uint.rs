//! Full-radix (radix-2^64) unsigned integers of a fixed digit count.

use crate::ct::{adc, eq_limbs, lt_limbs, sbb};
use std::cmp::Ordering;
use std::fmt;

/// An unsigned integer of `L` 64-bit digits, little-endian
/// (digit 0 is least significant) — the full-radix representation of
/// §3.1.
///
/// Arithmetic methods expose carries and borrows explicitly so that
/// higher layers can build exactly the operation sequences the paper's
/// kernels use.
///
/// # Examples
///
/// ```
/// use mpise_mpi::Uint;
/// let a = Uint::<4>::from_u64(10);
/// let b = Uint::<4>::from_u64(32);
/// let (sum, carry) = a.adc(&b, 0);
/// assert_eq!(sum, Uint::from_u64(42));
/// assert_eq!(carry, 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Uint<const L: usize> {
    limbs: [u64; L],
}

impl<const L: usize> Uint<L> {
    /// The value 0.
    pub const ZERO: Self = Uint { limbs: [0; L] };

    /// The value 1.
    pub const ONE: Self = {
        let mut limbs = [0; L];
        limbs[0] = 1;
        Uint { limbs }
    };

    /// The maximum representable value, `2^(64·L) − 1`.
    pub const MAX: Self = Uint {
        limbs: [u64::MAX; L],
    };

    /// Number of digits.
    pub const LIMBS: usize = L;

    /// Width in bits.
    pub const BITS: u32 = 64 * L as u32;

    /// Constructs from little-endian digits.
    pub const fn from_limbs(limbs: [u64; L]) -> Self {
        Uint { limbs }
    }

    /// Constructs from a single 64-bit value.
    pub const fn from_u64(v: u64) -> Self {
        let mut limbs = [0; L];
        limbs[0] = v;
        Uint { limbs }
    }

    /// The little-endian digits.
    pub const fn limbs(&self) -> &[u64; L] {
        &self.limbs
    }

    /// Digit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= L`.
    pub const fn limb(&self, i: usize) -> u64 {
        self.limbs[i]
    }

    /// Parses a (big-endian) hexadecimal string, with or without a
    /// `0x` prefix and with optional `_` separators.
    ///
    /// # Errors
    ///
    /// Returns a message when the string is empty, contains a non-hex
    /// character, or does not fit in `L` digits.
    pub fn from_hex(s: &str) -> Result<Self, String> {
        let s = s.trim().trim_start_matches("0x");
        let digits: Vec<u8> = s
            .bytes()
            .filter(|&b| b != b'_')
            .map(|b| match b {
                b'0'..=b'9' => Ok(b - b'0'),
                b'a'..=b'f' => Ok(b - b'a' + 10),
                b'A'..=b'F' => Ok(b - b'A' + 10),
                _ => Err(format!("invalid hex character `{}`", b as char)),
            })
            .collect::<Result<_, _>>()?;
        if digits.is_empty() {
            return Err("empty hex string".to_owned());
        }
        if digits.len() > L * 16 {
            return Err(format!(
                "hex value has {} digits, more than the {} that fit in {} limbs",
                digits.len(),
                L * 16,
                L
            ));
        }
        let mut limbs = [0u64; L];
        for (i, &d) in digits.iter().rev().enumerate() {
            limbs[i / 16] |= (d as u64) << (4 * (i % 16));
        }
        Ok(Uint { limbs })
    }

    /// Renders as lower-case big-endian hex with a `0x` prefix
    /// (full width, zero-padded).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(2 + 16 * L);
        s.push_str("0x");
        for l in self.limbs.iter().rev() {
            s.push_str(&format!("{l:016x}"));
        }
        s
    }

    /// Serializes to little-endian bytes.
    pub fn to_le_bytes(&self) -> Vec<u8> {
        self.limbs.iter().flat_map(|l| l.to_le_bytes()).collect()
    }

    /// Deserializes from little-endian bytes.
    ///
    /// # Errors
    ///
    /// Returns a message when `bytes.len() != 8 * L`.
    pub fn from_le_bytes(bytes: &[u8]) -> Result<Self, String> {
        if bytes.len() != 8 * L {
            return Err(format!("expected {} bytes, got {}", 8 * L, bytes.len()));
        }
        let mut limbs = [0u64; L];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            limbs[i] = u64::from_le_bytes(chunk.try_into().expect("chunk of 8"));
        }
        Ok(Uint { limbs })
    }

    /// Whether the value is zero (not constant time; see
    /// [`crate::ct::eq_limbs`] for the constant-time version).
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Whether the value is odd.
    pub const fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 64 * L`.
    pub const fn bit(&self, i: usize) -> u64 {
        (self.limbs[i / 64] >> (i % 64)) & 1
    }

    /// Index of the highest set bit plus one (0 for the value 0).
    pub fn bit_length(&self) -> u32 {
        for (i, &l) in self.limbs.iter().enumerate().rev() {
            if l != 0 {
                return 64 * i as u32 + 64 - l.leading_zeros();
            }
        }
        0
    }

    /// Addition with carry-in; returns `(sum mod 2^(64·L), carry_out)`.
    /// Constant time.
    pub fn adc(&self, other: &Self, mut carry: u64) -> (Self, u64) {
        let mut out = [0u64; L];
        for i in 0..L {
            let (s, c) = adc(self.limbs[i], other.limbs[i], carry);
            out[i] = s;
            carry = c;
        }
        (Uint { limbs: out }, carry)
    }

    /// Subtraction with borrow-in; returns
    /// `(difference mod 2^(64·L), borrow_out)`. Constant time.
    pub fn sbb(&self, other: &Self, mut borrow: u64) -> (Self, u64) {
        let mut out = [0u64; L];
        for i in 0..L {
            let (d, b) = sbb(self.limbs[i], other.limbs[i], borrow);
            out[i] = d;
            borrow = b;
        }
        (Uint { limbs: out }, borrow)
    }

    /// Wrapping addition.
    pub fn wrapping_add(&self, other: &Self) -> Self {
        self.adc(other, 0).0
    }

    /// Wrapping subtraction.
    pub fn wrapping_sub(&self, other: &Self) -> Self {
        self.sbb(other, 0).0
    }

    /// Constant-time unsigned less-than: 1 when `self < other`, else 0.
    pub fn ct_lt(&self, other: &Self) -> u64 {
        lt_limbs(&self.limbs, &other.limbs)
    }

    /// Constant-time equality: 1 when equal, else 0.
    pub fn ct_eq(&self, other: &Self) -> u64 {
        eq_limbs(&self.limbs, &other.limbs)
    }

    /// Bit-wise and.
    pub fn and(&self, other: &Self) -> Self {
        let mut out = [0u64; L];
        for i in 0..L {
            out[i] = self.limbs[i] & other.limbs[i];
        }
        Uint { limbs: out }
    }

    /// Bit-wise or.
    pub fn or(&self, other: &Self) -> Self {
        let mut out = [0u64; L];
        for i in 0..L {
            out[i] = self.limbs[i] | other.limbs[i];
        }
        Uint { limbs: out }
    }

    /// Bit-wise exclusive or.
    pub fn xor(&self, other: &Self) -> Self {
        let mut out = [0u64; L];
        for i in 0..L {
            out[i] = self.limbs[i] ^ other.limbs[i];
        }
        Uint { limbs: out }
    }

    /// Masks every limb with `mask` (0 or all-ones) — the `M ∧ P` step
    /// of Algorithm 1.
    pub fn mask(&self, mask: u64) -> Self {
        let mut out = [0u64; L];
        for i in 0..L {
            out[i] = self.limbs[i] & mask;
        }
        Uint { limbs: out }
    }

    /// Logical right shift by `n` bits (`n < 64·L`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 64 * L`.
    pub fn shr(&self, n: u32) -> Self {
        assert!((n as usize) < 64 * L);
        let (words, bits) = ((n / 64) as usize, n % 64);
        let mut out = [0u64; L];
        for i in 0..L - words {
            let mut v = self.limbs[i + words] >> bits;
            if bits > 0 && i + words + 1 < L {
                v |= self.limbs[i + words + 1] << (64 - bits);
            }
            out[i] = v;
        }
        Uint { limbs: out }
    }

    /// Logical left shift by `n` bits (`n < 64·L`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 64 * L`.
    pub fn shl(&self, n: u32) -> Self {
        assert!((n as usize) < 64 * L);
        let (words, bits) = ((n / 64) as usize, n % 64);
        let mut out = [0u64; L];
        for i in (words..L).rev() {
            let mut v = self.limbs[i - words] << bits;
            if bits > 0 && i > words {
                v |= self.limbs[i - words - 1] >> (64 - bits);
            }
            out[i] = v;
        }
        Uint { limbs: out }
    }

    /// Widens into a larger digit count.
    ///
    /// # Panics
    ///
    /// Panics if `M < L`.
    pub fn widen<const M: usize>(&self) -> Uint<M> {
        assert!(M >= L, "widen target must not be smaller");
        let mut limbs = [0u64; M];
        limbs[..L].copy_from_slice(&self.limbs);
        Uint::from_limbs(limbs)
    }

    /// Truncates to a smaller digit count, discarding high digits.
    pub fn truncate<const M: usize>(&self) -> Uint<M> {
        let mut limbs = [0u64; M];
        let n = M.min(L);
        limbs[..n].copy_from_slice(&self.limbs[..n]);
        Uint::from_limbs(limbs)
    }
}

impl<const L: usize> Default for Uint<L> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const L: usize> Ord for Uint<L> {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..L).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl<const L: usize> PartialOrd for Uint<L> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<const L: usize> From<u64> for Uint<L> {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl<const L: usize> std::ops::BitAnd for Uint<L> {
    type Output = Uint<L>;

    fn bitand(self, rhs: Uint<L>) -> Uint<L> {
        self.and(&rhs)
    }
}

impl<const L: usize> std::ops::BitOr for Uint<L> {
    type Output = Uint<L>;

    fn bitor(self, rhs: Uint<L>) -> Uint<L> {
        self.or(&rhs)
    }
}

impl<const L: usize> std::ops::BitXor for Uint<L> {
    type Output = Uint<L>;

    fn bitxor(self, rhs: Uint<L>) -> Uint<L> {
        self.xor(&rhs)
    }
}

impl<const L: usize> std::ops::Not for Uint<L> {
    type Output = Uint<L>;

    fn not(self) -> Uint<L> {
        self.xor(&Uint::MAX)
    }
}

impl<const L: usize> std::ops::Shl<u32> for Uint<L> {
    type Output = Uint<L>;

    /// Logical left shift; see [`Uint::shl`].
    fn shl(self, n: u32) -> Uint<L> {
        Uint::shl(&self, n)
    }
}

impl<const L: usize> std::ops::Shr<u32> for Uint<L> {
    type Output = Uint<L>;

    /// Logical right shift; see [`Uint::shr`].
    fn shr(self, n: u32) -> Uint<L> {
        Uint::shr(&self, n)
    }
}

impl<const L: usize> fmt::Debug for Uint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Uint<{L}>({})", self.to_hex())
    }
}

impl<const L: usize> fmt::Display for Uint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl<const L: usize> fmt::LowerHex for Uint<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.to_hex().trim_start_matches("0x"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type U256 = Uint<4>;

    #[test]
    fn constants() {
        assert!(U256::ZERO.is_zero());
        assert_eq!(U256::ONE.limb(0), 1);
        assert!(!U256::ONE.is_zero());
        assert!(U256::ONE.is_odd());
        assert_eq!(U256::BITS, 256);
    }

    #[test]
    fn hex_round_trip() {
        let h = "0x0123456789abcdef_fedcba9876543210_0011223344556677_8899aabbccddeeff";
        let v = U256::from_hex(h).unwrap();
        assert_eq!(v.limb(0), 0x8899aabbccddeeff);
        assert_eq!(v.limb(3), 0x0123456789abcdef);
        let v2 = U256::from_hex(&v.to_hex()).unwrap();
        assert_eq!(v, v2);
    }

    #[test]
    fn hex_short_strings_pad() {
        let v = U256::from_hex("ff").unwrap();
        assert_eq!(v, U256::from_u64(255));
        assert!(U256::from_hex("").is_err());
        assert!(U256::from_hex("xyz").is_err());
        // 65 hex digits do not fit in 4 limbs
        let too_long = "1".repeat(65);
        assert!(U256::from_hex(&too_long).is_err());
    }

    #[test]
    fn bytes_round_trip() {
        let v = U256::from_hex("0xdeadbeefcafef00d").unwrap();
        let b = v.to_le_bytes();
        assert_eq!(b.len(), 32);
        assert_eq!(U256::from_le_bytes(&b).unwrap(), v);
        assert!(U256::from_le_bytes(&b[1..]).is_err());
    }

    #[test]
    fn add_sub_with_carries() {
        let (s, c) = U256::MAX.adc(&U256::ONE, 0);
        assert_eq!(s, U256::ZERO);
        assert_eq!(c, 1);
        let (d, b) = U256::ZERO.sbb(&U256::ONE, 0);
        assert_eq!(d, U256::MAX);
        assert_eq!(b, 1);
        let (s, c) = U256::from_u64(20).adc(&U256::from_u64(22), 0);
        assert_eq!((s, c), (U256::from_u64(42), 0));
    }

    #[test]
    fn add_then_sub_round_trips() {
        let a = U256::from_hex("0x123456789abcdef0123456789abcdef0").unwrap();
        let b = U256::from_hex("0xfedcba9876543210fedcba9876543210").unwrap();
        let (s, _) = a.adc(&b, 0);
        let (d, borrow) = s.sbb(&b, 0);
        assert_eq!(d, a);
        assert_eq!(borrow, 0);
    }

    #[test]
    fn comparisons() {
        let a = U256::from_u64(5);
        let b = U256::from_u64(6);
        assert_eq!(a.ct_lt(&b), 1);
        assert_eq!(b.ct_lt(&a), 0);
        assert_eq!(a.ct_lt(&a), 0);
        assert_eq!(a.ct_eq(&a), 1);
        assert_eq!(a.ct_eq(&b), 0);
        assert!(a < b);
        let hi = U256::from_limbs([0, 0, 0, 1]);
        assert!(b < hi);
        assert_eq!(b.ct_lt(&hi), 1);
    }

    #[test]
    fn shifts() {
        let v = U256::from_u64(1);
        assert_eq!(v.shl(64), U256::from_limbs([0, 1, 0, 0]));
        assert_eq!(v.shl(65), U256::from_limbs([0, 2, 0, 0]));
        assert_eq!(v.shl(255).shr(255), v);
        let w = U256::from_hex("0x8000000000000000_0000000000000000").unwrap();
        assert_eq!(w.shr(127), U256::ONE);
        assert_eq!(U256::MAX.shr(1).bit_length(), 255);
    }

    #[test]
    fn bits() {
        let v = U256::from_u64(0b1010);
        assert_eq!(v.bit(0), 0);
        assert_eq!(v.bit(1), 1);
        assert_eq!(v.bit(3), 1);
        assert_eq!(v.bit_length(), 4);
        assert_eq!(U256::ZERO.bit_length(), 0);
        assert_eq!(U256::MAX.bit_length(), 256);
    }

    #[test]
    fn widen_truncate() {
        let v = U256::from_u64(77);
        let w: Uint<8> = v.widen();
        assert_eq!(w.limb(0), 77);
        let t: Uint<2> = w.truncate();
        assert_eq!(t.limb(0), 77);
    }

    #[test]
    fn operator_overloads() {
        let a = U256::from_u64(0b1100);
        let b = U256::from_u64(0b1010);
        assert_eq!(a & b, U256::from_u64(0b1000));
        assert_eq!(a | b, U256::from_u64(0b1110));
        assert_eq!(a ^ b, U256::from_u64(0b0110));
        assert_eq!(!U256::ZERO, U256::MAX);
        assert_eq!(a << 4, U256::from_u64(0b1100_0000));
        assert_eq!(a >> 2, U256::from_u64(0b11));
    }

    #[test]
    fn display_forms() {
        let v = U256::from_u64(255);
        assert!(v.to_string().starts_with("0x"));
        assert!(format!("{v:x}").ends_with("ff"));
        assert!(!format!("{v:?}").is_empty());
    }
}
