//! `obscheck` — validates exported telemetry and gate artifacts.
//!
//! ```text
//! obscheck <artifact> [artifact ...]
//! ```
//!
//! Arguments are classified by extension. `.prom` files must parse as
//! Prometheus text (non-empty, well-formed sample lines, no duplicate
//! metric families or series). `.json` files must declare one of the
//! known artifact schemas and carry that schema's required keys:
//!
//! * `mpise-obs/v1` — telemetry snapshot (`metrics`, `spans`);
//! * `mpise-bench/v1` — pipeline benchmark (`kernels`, `action`, `host`);
//! * `mpise-loadgen/v1` — load-generator run (`passes`, `payloads`);
//! * `mpise-difftest/v1` — conformance gate (`modes`, `isa_fuzz`,
//!   `kernel_difftest`, `kat_corpus`, `pass`).
//!
//! Every JSON artifact must embed provenance (`git_commit`). Exit code
//! 0 = all checks pass, 1 = an artifact is invalid, 2 = usage/IO.
//! CI's `obs-smoke` job runs this over the `loadgen --smoke` telemetry
//! output and `difftest-smoke` over the gate artifact.

use mpise_obs::prom;

fn main() {
    std::process::exit(run(&std::env::args().skip(1).collect::<Vec<_>>()));
}

/// Known JSON artifact schemas with per-schema required keys.
const SCHEMAS: &[(&str, &[&str])] = &[
    ("mpise-obs/v1", &["\"metrics\"", "\"spans\""]),
    (
        "mpise-bench/v1",
        &["\"mode\"", "\"kernels\"", "\"action\"", "\"host\""],
    ),
    (
        "mpise-loadgen/v1",
        &["\"mode\"", "\"passes\"", "\"payloads\""],
    ),
    (
        "mpise-difftest/v1",
        &[
            "\"modes\"",
            "\"isa_fuzz\"",
            "\"kernel_difftest\"",
            "\"kat_corpus\"",
            "\"pass\"",
        ],
    ),
];

fn run(args: &[String]) -> i32 {
    if args.is_empty() {
        eprintln!("usage: obscheck <artifact.prom|artifact.json> ...");
        return 2;
    }
    for path in args {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obscheck: cannot read {path}: {e}");
                return 2;
            }
        };
        let code = if path.ends_with(".json") {
            check_json(path, &text)
        } else {
            check_prom(path, &text)
        };
        if code != 0 {
            return code;
        }
    }
    0
}

fn check_prom(path: &str, text: &str) -> i32 {
    match prom::validate(text) {
        Ok(summary) => {
            println!(
                "obscheck: {path}: {} families, {} samples — OK",
                summary.families, summary.samples
            );
            0
        }
        Err(e) => {
            eprintln!("obscheck: {path}: INVALID — {e}");
            1
        }
    }
}

fn check_json(path: &str, json: &str) -> i32 {
    let Some((schema, required)) = SCHEMAS
        .iter()
        .find(|(name, _)| json.contains(&format!("\"schema\": \"{name}\"")))
    else {
        eprintln!(
            "obscheck: {path}: INVALID — no known schema declaration \
             (expected one of: {})",
            SCHEMAS
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return 1;
    };
    for key in required
        .iter()
        .chain(["\"provenance\"", "\"git_commit\""].iter())
    {
        if !json.contains(key) {
            eprintln!("obscheck: {path}: INVALID — {schema} artifact missing {key}");
            return 1;
        }
    }
    println!("obscheck: {path}: {schema} artifact — OK");
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &std::path::Path, name: &str, body: &str) -> String {
        let p = dir.join(name);
        std::fs::write(&p, body).expect("write temp artifact");
        p.to_string_lossy().into_owned()
    }

    #[test]
    fn classifies_and_validates_each_schema() {
        let dir = std::env::temp_dir().join("obscheck-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let obs = write(
            &dir,
            "obs.json",
            r#"{"schema": "mpise-obs/v1", "provenance": {"git_commit": "x"},
                "metrics": {}, "spans": []}"#,
        );
        let diff = write(
            &dir,
            "difftest.json",
            r#"{"schema": "mpise-difftest/v1", "provenance": {"git_commit": "x"},
                "modes": {"isa_fuzz": {}, "kernel_difftest": {}, "kat_corpus": {}},
                "pass": true}"#,
        );
        let prom = write(&dir, "m.prom", "mpise_test_total 1\n");
        assert_eq!(run(&[prom.clone(), obs.clone(), diff.clone()]), 0);
        // Legacy call shape still works: prom first, snapshot second.
        assert_eq!(run(&[prom, obs]), 0);

        let bad = write(
            &dir,
            "bad.json",
            r#"{"schema": "mpise-difftest/v1", "provenance": {"git_commit": "x"},
                "modes": {"isa_fuzz": {}}}"#,
        );
        assert_eq!(run(&[bad]), 1);
        let unknown = write(&dir, "unknown.json", r#"{"schema": "other/v9"}"#);
        assert_eq!(run(&[unknown]), 1);
        assert_eq!(run(&[]), 2);
    }
}
