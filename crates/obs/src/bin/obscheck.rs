//! `obscheck` — validates exported telemetry artifacts.
//!
//! ```text
//! obscheck <metrics.prom> [snapshot.json]
//! ```
//!
//! Checks that a Prometheus text dump parses (non-empty, well-formed
//! sample lines, no duplicate metric families or series) and, when a
//! second path is given, that the JSON snapshot declares the
//! `mpise-obs/v1` schema with provenance. Exit code 0 = all checks
//! pass; CI's `obs-smoke` job runs this over the `loadgen --smoke`
//! telemetry output.

use mpise_obs::prom;

fn main() {
    std::process::exit(run(&std::env::args().skip(1).collect::<Vec<_>>()));
}

fn run(args: &[String]) -> i32 {
    let Some(prom_path) = args.first() else {
        eprintln!("usage: obscheck <metrics.prom> [snapshot.json]");
        return 2;
    };
    let text = match std::fs::read_to_string(prom_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obscheck: cannot read {prom_path}: {e}");
            return 2;
        }
    };
    match prom::validate(&text) {
        Ok(summary) => println!(
            "obscheck: {prom_path}: {} families, {} samples — OK",
            summary.families, summary.samples
        ),
        Err(e) => {
            eprintln!("obscheck: {prom_path}: INVALID — {e}");
            return 1;
        }
    }

    if let Some(json_path) = args.get(1) {
        let json = match std::fs::read_to_string(json_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obscheck: cannot read {json_path}: {e}");
                return 2;
            }
        };
        for required in [
            "\"schema\": \"mpise-obs/v1\"",
            "\"provenance\"",
            "\"git_commit\"",
            "\"metrics\"",
            "\"spans\"",
        ] {
            if !json.contains(required) {
                eprintln!("obscheck: {json_path}: INVALID — missing {required}");
                return 1;
            }
        }
        println!("obscheck: {json_path}: mpise-obs/v1 snapshot — OK");
    }
    0
}
