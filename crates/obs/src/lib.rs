//! # mpise-obs — unified telemetry for the mpise workspace
//!
//! The paper's whole evaluation (§4, Tables 3–4) is an exercise in
//! *attributing* cycles: which kernel, which loop, which pipeline
//! stall. This crate is the one place that attribution lives for the
//! runtime crates (`sim`, `fp`, `csidh`, `engine`, `bench`):
//!
//! * **Spans** ([`span`], [`SpanTree`]) — hierarchical, per-thread
//!   regions with wall-time plus simulated cycle/instret deltas
//!   charged by the simulator-backed layers ([`add_sim_cost`]), so a
//!   CSIDH action decomposes into its sample / cofactor / isogeny /
//!   normalize phases exactly like the paper's cost model;
//! * **Metrics** ([`metrics::Registry`]) — counters, gauges and
//!   fixed-bucket histograms with Prometheus labels, exported as
//!   Prometheus text ([`metrics::Registry::render_prometheus`]) or as
//!   the versioned [`Snapshot`] JSON (`mpise-obs/v1`);
//! * **Provenance** ([`provenance::Provenance`]) — git commit, host
//!   and timestamp stamped into every artifact;
//! * **Validation** ([`prom::validate`], the `obscheck` binary) — the
//!   CI gate over the exported Prometheus text.
//!
//! The whole layer is **disabled by default**: every instrumentation
//! point is gated on one relaxed atomic ([`enabled`]), so the
//! instrumented hot paths cost one predictable branch when telemetry
//! is off. Binaries opt in with [`set_enabled`] (or the
//! `MPISE_OBS=1` environment variable via [`enable_from_env`]).
//!
//! The crate depends on `std` only — it sits below every runtime
//! crate in the workspace graph.

pub mod metrics;
pub mod prom;
pub mod provenance;
pub mod span;
pub mod time;

pub use metrics::{global, Registry};
pub use provenance::Provenance;
pub use span::{add_sim_cost, span, take_spans, SpanGuard, SpanNode, SpanTree};

use std::sync::atomic::{AtomicBool, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether telemetry collection is on (off by default).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns telemetry collection on or off, process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Enables telemetry when the `MPISE_OBS` environment variable is set
/// to anything but `0`/empty; returns the resulting state.
pub fn enable_from_env() -> bool {
    if let Ok(v) = std::env::var("MPISE_OBS") {
        if !v.is_empty() && v != "0" {
            set_enabled(true);
        }
    }
    enabled()
}

/// A complete `mpise-obs/v1` snapshot: provenance + metrics + span
/// forest, serialized by [`Snapshot::to_json`].
#[derive(Debug)]
pub struct Snapshot {
    /// Run provenance.
    pub provenance: Provenance,
    /// Metrics JSON array (from [`metrics::Registry::metrics_json`]).
    pub metrics_json: String,
    /// The span forest.
    pub spans: SpanTree,
}

impl Snapshot {
    /// Captures the global registry plus the calling thread's finished
    /// spans. Drains the span tree ([`take_spans`]).
    pub fn capture() -> Self {
        Snapshot {
            provenance: Provenance::collect(),
            metrics_json: global().metrics_json(),
            spans: take_spans(),
        }
    }

    /// Captures the global registry with an explicit span forest
    /// (e.g. merged from several worker threads).
    pub fn capture_with_spans(spans: SpanTree) -> Self {
        Snapshot {
            provenance: Provenance::collect(),
            metrics_json: global().metrics_json(),
            spans,
        }
    }

    /// Serializes the versioned snapshot document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n  \"schema\": \"mpise-obs/v1\",\n  \"provenance\": {},\n  \
             \"metrics\": {},\n  \"spans\": {}\n}}\n",
            self.provenance.json(),
            self.metrics_json,
            self.spans.to_json(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_is_versioned_and_shaped() {
        let snap = Snapshot {
            provenance: Provenance {
                git_commit: "deadbeef".to_owned(),
                host: "ci".to_owned(),
                timestamp: "2026-08-07T00:00:00Z".to_owned(),
                unix_secs: 1,
            },
            metrics_json: String::from("[]"),
            spans: SpanTree::default(),
        };
        let json = snap.to_json();
        assert!(json.contains("\"schema\": \"mpise-obs/v1\""));
        assert!(json.contains("\"git_commit\": \"deadbeef\""));
        assert!(json.contains("\"metrics\": []"));
        assert!(json.contains("\"spans\": {}"));
    }

    #[test]
    fn env_opt_in() {
        // Only exercises the parsing contract for values already in
        // the environment; never mutates the process environment.
        let was = enabled();
        let _ = enable_from_env();
        if std::env::var("MPISE_OBS").map_or(true, |v| v.is_empty() || v == "0") {
            assert_eq!(enabled(), was, "unset/0 must not change the state");
        } else {
            assert!(enabled());
        }
        set_enabled(was);
    }
}
