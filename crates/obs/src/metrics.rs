//! The metrics registry: counters, gauges and fixed-bucket histograms
//! with Prometheus-style labels, exported as Prometheus text format or
//! as part of the `mpise-obs/v1` JSON snapshot.
//!
//! Handles are cheap `Arc`-backed atomics, so hot paths increment
//! without touching the registry lock; the lock is only taken to
//! register a series or to render an export.
//!
//! # Examples
//!
//! ```
//! use mpise_obs::metrics::Registry;
//! let r = Registry::new();
//! let reqs = r.counter("requests_total", "Requests served", &[("kind", "validate")]);
//! reqs.add(3);
//! let depth = r.gauge("queue_depth", "Requests queued", &[]);
//! depth.set(7.0);
//! let text = r.render_prometheus();
//! assert!(text.contains("requests_total{kind=\"validate\"} 3"));
//! assert!(text.contains("queue_depth 7"));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotone counter handle.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrites the value (for absorbing an externally maintained
    /// counter, e.g. an `EngineStats` snapshot).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (an `f64` stored as bits in an atomic).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Shared state of one histogram series.
#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the buckets (ascending; an implicit `+Inf`
    /// bucket follows).
    bounds: Vec<f64>,
    /// Per-bucket observation counts (len = bounds.len() + 1).
    buckets: Vec<AtomicU64>,
    /// Sum of observations × 1000 (fixed-point, so the atomic stays
    /// integral; Prometheus sums are floats and 1/1000 resolution is
    /// ample for microsecond latencies).
    sum_milli: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket histogram handle.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

/// Default latency buckets in microseconds: 100 µs … 10 s, roughly
/// one bucket per 1–2–5 decade step.
pub const LATENCY_BUCKETS_US: [f64; 12] = [
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    5_000.0,
    10_000.0,
    25_000.0,
    100_000.0,
    500_000.0,
    2_000_000.0,
    10_000_000.0,
];

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let inner = &self.0;
        let idx = inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(inner.bounds.len());
        inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        inner
            .sum_milli
            .fetch_add((v * 1000.0).max(0.0) as u64, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Clears all buckets, then records every sample — for absorbing a
    /// retained sample population (e.g. an engine's latency reservoir)
    /// into the export.
    pub fn replace_with_samples(&self, samples: &[u64]) {
        let inner = &self.0;
        for b in &inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        inner.sum_milli.store(0, Ordering::Relaxed);
        inner.count.store(0, Ordering::Relaxed);
        for &s in samples {
            self.observe(s as f64);
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn prometheus_type(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    /// Series keyed by their rendered label set (`{k="v",…}` or "").
    series: BTreeMap<String, Series>,
}

/// A thread-safe registry of metric families.
///
/// Use [`global`] for the process-wide registry the binaries export,
/// or [`Registry::new`] for an isolated one (tests).
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\"")))
        .collect();
    pairs.sort();
    format!("{{{}}}", pairs.join(","))
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: Kind,
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut families = self.families.lock().expect("metrics registry lock");
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            help: help.to_owned(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` already registered as a {}",
            family.kind.prometheus_type()
        );
        family
            .series
            .entry(label_key(labels))
            .or_insert_with(make)
            .clone()
    }

    /// Registers (or retrieves) a counter series.
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, labels, Kind::Counter, || {
            Series::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Series::Counter(c) => c,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or retrieves) a gauge series.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, labels, Kind::Gauge, || {
            Series::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
        }) {
            Series::Gauge(g) => g,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Registers (or retrieves) a histogram series with the given
    /// ascending bucket bounds.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        match self.series(name, help, labels, Kind::Histogram, || {
            Series::Histogram(Histogram(Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum_milli: AtomicU64::new(0),
                count: AtomicU64::new(0),
            })))
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!("kind checked above"),
        }
    }

    /// Renders the registry in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let families = self.families.lock().expect("metrics registry lock");
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", family.help));
            out.push_str(&format!(
                "# TYPE {name} {}\n",
                family.kind.prometheus_type()
            ));
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", fmt_f64(g.get())));
                    }
                    Series::Histogram(h) => {
                        let inner = &h.0;
                        let base = labels.trim_start_matches('{').trim_end_matches('}');
                        let mut cumulative = 0u64;
                        for (i, bound) in inner.bounds.iter().enumerate() {
                            cumulative += inner.buckets[i].load(Ordering::Relaxed);
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                join_labels(base, &format!("le=\"{}\"", fmt_f64(*bound))),
                            ));
                        }
                        cumulative += inner.buckets[inner.bounds.len()].load(Ordering::Relaxed);
                        out.push_str(&format!(
                            "{name}_bucket{} {cumulative}\n",
                            join_labels(base, "le=\"+Inf\""),
                        ));
                        out.push_str(&format!(
                            "{name}_sum{labels} {}\n",
                            fmt_f64(inner.sum_milli.load(Ordering::Relaxed) as f64 / 1000.0)
                        ));
                        out.push_str(&format!(
                            "{name}_count{labels} {}\n",
                            inner.count.load(Ordering::Relaxed)
                        ));
                    }
                }
            }
        }
        out
    }

    /// The `"metrics"` JSON array of the `mpise-obs/v1` snapshot.
    pub fn metrics_json(&self) -> String {
        let families = self.families.lock().expect("metrics registry lock");
        let mut out = String::from("[");
        for (fi, (name, family)) in families.iter().enumerate() {
            if fi > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{name}\", \"type\": \"{}\", \"help\": \"{}\", \"series\": [",
                family.kind.prometheus_type(),
                family.help,
            ));
            for (si, (labels, series)) in family.series.iter().enumerate() {
                if si > 0 {
                    out.push_str(", ");
                }
                let labels_json = labels_to_json(labels);
                match series {
                    Series::Counter(c) => out.push_str(&format!(
                        "{{\"labels\": {labels_json}, \"value\": {}}}",
                        c.get()
                    )),
                    Series::Gauge(g) => out.push_str(&format!(
                        "{{\"labels\": {labels_json}, \"value\": {}}}",
                        fmt_f64(g.get())
                    )),
                    Series::Histogram(h) => {
                        let inner = &h.0;
                        let counts: Vec<String> = inner
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed).to_string())
                            .collect();
                        let bounds: Vec<String> =
                            inner.bounds.iter().map(|b| fmt_f64(*b)).collect();
                        out.push_str(&format!(
                            "{{\"labels\": {labels_json}, \"bounds\": [{}], \
                             \"buckets\": [{}], \"sum\": {}, \"count\": {}}}",
                            bounds.join(", "),
                            counts.join(", "),
                            fmt_f64(inner.sum_milli.load(Ordering::Relaxed) as f64 / 1000.0),
                            inner.count.load(Ordering::Relaxed),
                        ));
                    }
                }
            }
            out.push_str("]}");
        }
        out.push(']');
        out
    }
}

/// Joins a base label string (no braces, possibly empty) with one
/// extra label into a rendered `{...}` set.
fn join_labels(base: &str, extra: &str) -> String {
    if base.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{{{base},{extra}}}")
    }
}

/// Renders an f64 the way Prometheus expects: integral values without
/// a trailing `.0`.
fn fmt_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Parses a rendered label set back into a JSON object.
fn labels_to_json(labels: &str) -> String {
    if labels.is_empty() {
        return String::from("{}");
    }
    let inner = labels.trim_start_matches('{').trim_end_matches('}');
    let mut out = String::from("{");
    for (i, pair) in inner.split(',').enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match pair.split_once('=') {
            Some((k, v)) => out.push_str(&format!("\"{k}\": {v}")),
            None => out.push_str(&format!("\"{pair}\": \"\"")),
        }
    }
    out.push('}');
    out
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry exported by the `loadgen`, `bench` and
/// `key_service` binaries.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_render() {
        let r = Registry::new();
        let c = r.counter("reqs_total", "requests", &[("kind", "keygen")]);
        c.inc();
        c.add(2);
        assert_eq!(c.get(), 3);
        let g = r.gauge("depth", "queue depth", &[]);
        g.set(4.5);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE reqs_total counter"));
        assert!(text.contains("reqs_total{kind=\"keygen\"} 3"));
        assert!(text.contains("depth 4.5"));
    }

    #[test]
    fn same_series_shares_the_handle() {
        let r = Registry::new();
        let a = r.counter("c", "x", &[("w", "0")]);
        let b = r.counter("c", "x", &[("w", "0")]);
        a.inc();
        assert_eq!(b.get(), 1);
        // A different label set is a separate series.
        let other = r.counter("c", "x", &[("w", "1")]);
        assert_eq!(other.get(), 0);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        let _ = r.counter("m", "x", &[]);
        let _ = r.gauge("m", "x", &[]);
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_prometheus() {
        let r = Registry::new();
        let h = r.histogram("lat_us", "latency", &[], &[10.0, 100.0]);
        h.observe(5.0);
        h.observe(50.0);
        h.observe(500.0);
        assert_eq!(h.count(), 3);
        let text = r.render_prometheus();
        assert!(text.contains("lat_us_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_us_bucket{le=\"100\"} 2"));
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_us_sum 555"));
        assert!(text.contains("lat_us_count 3"));
    }

    #[test]
    fn histogram_replace_with_samples() {
        let r = Registry::new();
        let h = r.histogram("lat", "latency", &[], &[10.0]);
        h.observe(1.0);
        h.replace_with_samples(&[5, 20, 30]);
        assert_eq!(h.count(), 3);
        let text = r.render_prometheus();
        assert!(text.contains("lat_bucket{le=\"10\"} 1"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
    }

    #[test]
    fn json_export_shape() {
        let r = Registry::new();
        r.counter("a_total", "a", &[("k", "v")]).inc();
        r.histogram("h", "h", &[], &[1.0]).observe(0.5);
        let json = r.metrics_json();
        assert!(json.contains("\"name\": \"a_total\""));
        assert!(json.contains("\"labels\": {\"k\": \"v\"}"));
        assert!(json.contains("\"bounds\": [1]"));
        assert!(json.contains("\"count\": 1"));
    }

    #[test]
    fn label_order_is_canonical() {
        assert_eq!(label_key(&[("b", "2"), ("a", "1")]), "{a=\"1\",b=\"2\"}");
        assert_eq!(label_key(&[]), "");
    }
}
