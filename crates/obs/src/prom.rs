//! Validation of Prometheus text exposition output.
//!
//! The CI `obs-smoke` job runs `loadgen --smoke` with telemetry
//! enabled and feeds the resulting `/metrics`-style dump through
//! [`validate`] (via the `obscheck` binary): the output must be
//! non-empty, every sample line must parse, every metric family must
//! declare its type exactly once, and no series may appear twice.

use std::collections::BTreeSet;

/// A summary of a validated exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromSummary {
    /// Distinct metric families seen.
    pub families: usize,
    /// Sample lines seen.
    pub samples: usize,
}

/// Checks a Prometheus text exposition for well-formedness.
///
/// # Errors
///
/// Returns a description of the first problem: empty input, an
/// unparsable line, a duplicate `# TYPE` declaration, or a duplicate
/// series (same name + label set).
pub fn validate(text: &str) -> Result<PromSummary, String> {
    let mut typed: BTreeSet<String> = BTreeSet::new();
    let mut seen_series: BTreeSet<String> = BTreeSet::new();
    let mut samples = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a metric name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: TYPE without a kind"))?;
            if !matches!(
                kind,
                "counter" | "gauge" | "histogram" | "summary" | "untyped"
            ) {
                return Err(format!("line {lineno}: unknown metric type `{kind}`"));
            }
            if !typed.insert(name.to_owned()) {
                return Err(format!("line {lineno}: duplicate TYPE for metric `{name}`"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment
        }
        let series = parse_sample_line(line).map_err(|e| format!("line {lineno}: {e}"))?;
        if !seen_series.insert(series) {
            return Err(format!("line {lineno}: duplicate series `{line}`"));
        }
        samples += 1;
    }

    if samples == 0 {
        return Err("exposition contains no sample lines".to_owned());
    }
    Ok(PromSummary {
        families: typed.len(),
        samples,
    })
}

/// Parses one sample line, returning its identity (`name{labels}`).
fn parse_sample_line(line: &str) -> Result<String, String> {
    let (series, value) = match line.find('}') {
        Some(close) => {
            let (series, rest) = line.split_at(close + 1);
            (series, rest.trim())
        }
        None => line
            .split_once(' ')
            .ok_or_else(|| "sample line has no value".to_owned())?,
    };
    let name_end = series.find('{').unwrap_or(series.len());
    let name = &series[..name_end];
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        return Err(format!("invalid metric name `{name}`"));
    }
    if name_end < series.len() {
        let labels = &series[name_end..];
        if !labels.starts_with('{') || !labels.ends_with('}') {
            return Err(format!("malformed label set `{labels}`"));
        }
    }
    let value = value.trim();
    if value.is_empty() {
        return Err("sample line has no value".to_owned());
    }
    if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
        return Err(format!("unparsable sample value `{value}`"));
    }
    Ok(series.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_a_well_formed_exposition() {
        let text = "# HELP reqs_total requests\n# TYPE reqs_total counter\n\
                    reqs_total{kind=\"a\"} 3\nreqs_total{kind=\"b\"} 4\n\
                    # TYPE depth gauge\ndepth 1.5\n";
        let summary = validate(text).unwrap();
        assert_eq!(summary.families, 2);
        assert_eq!(summary.samples, 3);
    }

    #[test]
    fn accepts_registry_output() {
        let r = crate::metrics::Registry::new();
        r.counter("a_total", "a", &[("k", "v")]).inc();
        r.gauge("g", "g", &[]).set(2.5);
        r.histogram("h_us", "h", &[("w", "0")], &[1.0, 10.0])
            .observe(3.0);
        validate(&r.render_prometheus()).expect("registry output is valid");
    }

    #[test]
    fn rejects_empty_and_duplicates() {
        assert!(validate("").is_err());
        assert!(validate("# TYPE a counter\n").is_err(), "no samples");
        assert!(
            validate("# TYPE a counter\n# TYPE a counter\na 1\n").is_err(),
            "duplicate TYPE"
        );
        assert!(
            validate("a{x=\"1\"} 1\na{x=\"1\"} 2\n").is_err(),
            "duplicate series"
        );
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(validate("1bad 3\n").is_err(), "name starts with a digit");
        assert!(validate("ok notanumber\n").is_err(), "non-numeric value");
        assert!(validate("novalue\n").is_err(), "missing value");
        assert!(validate("# TYPE a zigzag\na 1\n").is_err(), "unknown type");
    }
}
