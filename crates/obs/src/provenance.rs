//! Run provenance: which commit, host and instant produced an
//! artifact.
//!
//! The `BENCH_<date>.json`, `LOAD_<date>.json` and `mpise-obs/v1`
//! writers embed a [`Provenance`] block so artifacts from different CI
//! runs are comparable: two reports with the same `git_commit` should
//! have byte-identical deterministic sections, and a regression can be
//! bisected by commit rather than by upload date. Everything is
//! collected with std only (the git commit is read straight from
//! `.git/`), and every field degrades to `"unknown"` rather than
//! failing the run.

use crate::time::{unix_secs, utc_datetime_string};
use std::path::{Path, PathBuf};

/// Where and when an artifact was produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Full git commit hash of the working tree, or `"unknown"`.
    pub git_commit: String,
    /// Hostname, or `"unknown"`.
    pub host: String,
    /// RFC 3339 UTC timestamp (`YYYY-MM-DDTHH:MM:SSZ`).
    pub timestamp: String,
    /// Seconds since the Unix epoch.
    pub unix_secs: u64,
}

impl Provenance {
    /// Collects the provenance of the current process.
    pub fn collect() -> Self {
        let now = unix_secs();
        Provenance {
            git_commit: git_commit().unwrap_or_else(|| "unknown".to_owned()),
            host: hostname().unwrap_or_else(|| "unknown".to_owned()),
            timestamp: utc_datetime_string(now),
            unix_secs: now,
        }
    }

    /// The provenance as a JSON object (one line, no trailing newline).
    pub fn json(&self) -> String {
        format!(
            "{{\"git_commit\": \"{}\", \"host\": \"{}\", \"timestamp\": \"{}\", \
             \"unix_secs\": {}}}",
            escape(&self.git_commit),
            escape(&self.host),
            escape(&self.timestamp),
            self.unix_secs,
        )
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Finds the enclosing `.git` directory, walking up from the current
/// working directory.
fn find_git_dir() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let candidate = dir.join(".git");
        if candidate.is_dir() {
            return Some(candidate);
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Resolves HEAD to a commit hash: detached HEAD holds the hash
/// directly; a symbolic ref is resolved through the loose ref file or
/// `packed-refs`.
fn git_commit() -> Option<String> {
    let git_dir = find_git_dir()?;
    resolve_head(&git_dir)
}

fn resolve_head(git_dir: &Path) -> Option<String> {
    let head = std::fs::read_to_string(git_dir.join("HEAD")).ok()?;
    let head = head.trim();
    let reference = match head.strip_prefix("ref: ") {
        None => return is_hash(head).then(|| head.to_owned()),
        Some(r) => r.trim(),
    };
    if let Ok(loose) = std::fs::read_to_string(git_dir.join(reference)) {
        let loose = loose.trim();
        if is_hash(loose) {
            return Some(loose.to_owned());
        }
    }
    let packed = std::fs::read_to_string(git_dir.join("packed-refs")).ok()?;
    for line in packed.lines() {
        if let Some((hash, name)) = line.split_once(' ') {
            if name.trim() == reference && is_hash(hash) {
                return Some(hash.to_owned());
            }
        }
    }
    None
}

fn is_hash(s: &str) -> bool {
    s.len() >= 40 && s.chars().all(|c| c.is_ascii_hexdigit())
}

fn hostname() -> Option<String> {
    if let Ok(h) = std::env::var("HOSTNAME") {
        if !h.is_empty() {
            return Some(h);
        }
    }
    for path in ["/proc/sys/kernel/hostname", "/etc/hostname"] {
        if let Ok(h) = std::fs::read_to_string(path) {
            let h = h.trim().to_owned();
            if !h.is_empty() {
                return Some(h);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_never_fails() {
        let p = Provenance::collect();
        assert!(!p.git_commit.is_empty());
        assert!(!p.host.is_empty());
        assert!(p.timestamp.ends_with('Z'));
        assert!(p.unix_secs > 1_600_000_000, "clock is past 2020");
    }

    #[test]
    fn git_commit_resolves_in_this_repo() {
        // The workspace is a git repository, so the commit must
        // resolve to a real hash here (not the "unknown" fallback).
        let commit = git_commit().expect("repo has a HEAD");
        assert!(is_hash(&commit), "{commit} is not a hash");
    }

    #[test]
    fn json_escapes_and_shapes() {
        let p = Provenance {
            git_commit: "abc".to_owned(),
            host: "a\"b".to_owned(),
            timestamp: "2026-08-07T00:00:00Z".to_owned(),
            unix_secs: 1,
        };
        let j = p.json();
        assert!(j.contains("\"git_commit\": \"abc\""));
        assert!(j.contains("a\\\"b"));
        assert!(j.contains("\"unix_secs\": 1"));
    }
}
