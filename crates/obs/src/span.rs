//! Hierarchical spans with wall-time and simulated-cycle attribution.
//!
//! A span is a named region of execution. Spans nest: entering a span
//! while another is open makes it a child, so a CSIDH group action
//! decomposes into its sample / cofactor / isogeny / normalize phases
//! exactly like the paper's cost model. Each span accumulates
//!
//! * wall-clock time (host nanoseconds),
//! * **simulated** cycles and retired instructions, attributed by the
//!   simulator-backed layers via [`add_sim_cost`] — when a field
//!   kernel runs on the Rocket pipeline model, its `RunStats` delta is
//!   charged to the innermost open span.
//!
//! Collection is per-thread (a thread-local frame stack), aggregated
//! by name: re-entering `"csidh.isogeny"` under the same parent folds
//! into one node with `count += 1`. [`take_spans`] drains the calling
//! thread's finished tree.
//!
//! Everything is gated on the global [`crate::enabled`] flag: when
//! telemetry is off (the default), [`span`] and [`add_sim_cost`] cost
//! one relaxed atomic load and touch no thread-local state.
//!
//! # Examples
//!
//! ```
//! mpise_obs::set_enabled(true);
//! {
//!     let _action = mpise_obs::span("csidh.action");
//!     {
//!         let _phase = mpise_obs::span("csidh.isogeny");
//!         mpise_obs::add_sim_cost(1200, 800);
//!     }
//! }
//! let tree = mpise_obs::take_spans();
//! let action = tree.child("csidh.action").unwrap();
//! assert_eq!(action.total_cycles(), 1200);
//! assert_eq!(action.child("csidh.isogeny").unwrap().instret, 800);
//! mpise_obs::set_enabled(false);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::time::Instant;

/// One aggregated node of a finished span tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanNode {
    /// Times a span with this name closed under this parent.
    pub count: u64,
    /// Total wall-clock nanoseconds across those closings.
    pub wall_ns: u64,
    /// Simulated cycles attributed directly to this span (children
    /// excluded; see [`SpanNode::total_cycles`]).
    pub cycles: u64,
    /// Simulated instructions retired, attributed directly.
    pub instret: u64,
    /// Child spans by name.
    pub children: BTreeMap<&'static str, SpanNode>,
}

impl SpanNode {
    /// Looks up a direct child by name.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.children.get(name)
    }

    /// Simulated cycles of this span including all descendants.
    pub fn total_cycles(&self) -> u64 {
        self.cycles
            + self
                .children
                .values()
                .map(SpanNode::total_cycles)
                .sum::<u64>()
    }

    /// Retired simulated instructions including all descendants.
    pub fn total_instret(&self) -> u64 {
        self.instret
            + self
                .children
                .values()
                .map(SpanNode::total_instret)
                .sum::<u64>()
    }

    fn merge(&mut self, other: SpanNode) {
        self.count += other.count;
        self.wall_ns += other.wall_ns;
        self.cycles += other.cycles;
        self.instret += other.instret;
        for (name, child) in other.children {
            self.children.entry(name).or_default().merge(child);
        }
    }
}

/// A finished, per-thread span forest (the virtual root's children).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTree {
    /// Top-level spans by name.
    pub roots: BTreeMap<&'static str, SpanNode>,
}

impl SpanTree {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }

    /// Looks up a top-level span by name.
    pub fn child(&self, name: &str) -> Option<&SpanNode> {
        self.roots.get(name)
    }

    /// Simulated cycles summed over the whole forest.
    pub fn total_cycles(&self) -> u64 {
        self.roots.values().map(SpanNode::total_cycles).sum()
    }

    /// Folds another tree into this one (aggregating by name), e.g. to
    /// combine the trees of several worker threads.
    pub fn merge(&mut self, other: SpanTree) {
        for (name, node) in other.roots {
            self.roots.entry(name).or_default().merge(node);
        }
    }

    /// Renders the tree as indented text, one line per node.
    pub fn render(&self) -> String {
        fn walk(out: &mut String, name: &str, node: &SpanNode, depth: usize) {
            out.push_str(&format!(
                "{:indent$}{name}: count {}, wall {:.3} ms, cycles {} (subtree {})\n",
                "",
                node.count,
                node.wall_ns as f64 / 1e6,
                node.cycles,
                node.total_cycles(),
                indent = depth * 2,
            ));
            for (child_name, child) in &node.children {
                walk(out, child_name, child, depth + 1);
            }
        }
        let mut out = String::new();
        for (name, node) in &self.roots {
            walk(&mut out, name, node, 0);
        }
        out
    }

    /// Folded-stack (flamegraph-compatible) lines weighted by
    /// simulated cycles: `a;b;c <cycles>` per node with nonzero direct
    /// cycles.
    pub fn folded(&self) -> String {
        fn walk(out: &mut String, path: &str, node: &SpanNode) {
            if node.cycles > 0 {
                out.push_str(&format!("{path} {}\n", node.cycles));
            }
            for (name, child) in &node.children {
                walk(out, &format!("{path};{name}"), child);
            }
        }
        let mut out = String::new();
        for (name, node) in &self.roots {
            walk(&mut out, name, node);
        }
        out
    }

    /// JSON value of the forest (an object keyed by span name), as
    /// embedded in the `mpise-obs/v1` snapshot.
    pub fn to_json(&self) -> String {
        fn node_json(node: &SpanNode) -> String {
            let mut out = format!(
                "{{\"count\": {}, \"wall_ns\": {}, \"cycles\": {}, \"instret\": {}, \
                 \"total_cycles\": {}, \"children\": {{",
                node.count,
                node.wall_ns,
                node.cycles,
                node.instret,
                node.total_cycles(),
            );
            for (i, (name, child)) in node.children.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{name}\": {}", node_json(child)));
            }
            out.push_str("}}");
            out
        }
        let mut out = String::from("{");
        for (i, (name, node)) in self.roots.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("\"{name}\": {}", node_json(node)));
        }
        out.push('}');
        out
    }
}

/// One open span on a thread's stack.
struct Frame {
    name: &'static str,
    start: Instant,
    cycles: u64,
    instret: u64,
    children: BTreeMap<&'static str, SpanNode>,
}

#[derive(Default)]
struct Collector {
    stack: Vec<Frame>,
    finished: SpanTree,
}

thread_local! {
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::default());
}

/// RAII guard returned by [`span`]; closing (dropping) it records the
/// span into the thread's tree.
#[must_use = "a span is measured between its creation and its drop"]
pub struct SpanGuard {
    active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        COLLECTOR.with(|c| {
            let mut c = c.borrow_mut();
            let Some(frame) = c.stack.pop() else { return };
            let node = SpanNode {
                count: 1,
                wall_ns: frame.start.elapsed().as_nanos() as u64,
                cycles: frame.cycles,
                instret: frame.instret,
                children: frame.children,
            };
            match c.stack.last_mut() {
                Some(parent) => parent.children.entry(frame.name).or_default().merge(node),
                None => c.finished.roots.entry(frame.name).or_default().merge(node),
            }
        });
    }
}

/// Opens a span named `name` on the calling thread. Inert (and
/// near-free) while telemetry is disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { active: false };
    }
    COLLECTOR.with(|c| {
        c.borrow_mut().stack.push(Frame {
            name,
            start: Instant::now(),
            cycles: 0,
            instret: 0,
            children: BTreeMap::new(),
        });
    });
    SpanGuard { active: true }
}

/// Charges simulated `cycles` and `instret` to the innermost open span
/// of the calling thread (no-op when telemetry is disabled or no span
/// is open). The simulator-backed field layers call this once per
/// kernel run with the run's `RunStats` delta.
pub fn add_sim_cost(cycles: u64, instret: u64) {
    if !crate::enabled() {
        return;
    }
    COLLECTOR.with(|c| {
        if let Some(frame) = c.borrow_mut().stack.last_mut() {
            frame.cycles += cycles;
            frame.instret += instret;
        }
    });
}

/// Drains and returns the calling thread's finished span tree.
/// Still-open spans stay on the stack and are not included.
pub fn take_spans() -> SpanTree {
    COLLECTOR.with(|c| std::mem::take(&mut c.borrow_mut().finished))
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::sync::Mutex;

    /// Serializes span tests: they share the process-global enabled
    /// flag and must not interleave with each other.
    static GATE: Mutex<()> = Mutex::new(());

    fn with_telemetry<T>(test: impl FnOnce() -> T) -> T {
        let _guard = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        crate::set_enabled(true);
        let _ = take_spans();
        let out = test();
        crate::set_enabled(false);
        out
    }

    #[test]
    fn disabled_records_nothing() {
        let _guard = GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
        crate::set_enabled(false);
        let _ = take_spans();
        {
            let _s = span("never");
            add_sim_cost(100, 10);
        }
        assert!(take_spans().is_empty());
    }

    #[test]
    fn nesting_and_aggregation() {
        let tree = with_telemetry(|| {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
                add_sim_cost(10, 5);
            }
            add_sim_cost(1, 1);
            drop(_outer);
            take_spans()
        });
        let outer = tree.child("outer").expect("outer recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(outer.cycles, 1, "direct cost only");
        let inner = outer.child("inner").expect("inner recorded");
        assert_eq!(inner.count, 3, "same-named spans aggregate");
        assert_eq!(inner.cycles, 30);
        assert_eq!(outer.total_cycles(), 31);
        assert_eq!(outer.total_instret(), 16);
        assert_eq!(tree.total_cycles(), 31);
    }

    #[test]
    fn cost_outside_any_span_is_dropped() {
        let tree = with_telemetry(|| {
            add_sim_cost(99, 99);
            {
                let _s = span("real");
                add_sim_cost(7, 7);
            }
            take_spans()
        });
        assert_eq!(tree.total_cycles(), 7);
    }

    #[test]
    fn merge_combines_worker_trees() {
        let (mut a, b) = with_telemetry(|| {
            {
                let _s = span("work");
                add_sim_cost(5, 5);
            }
            let a = take_spans();
            {
                let _s = span("work");
                add_sim_cost(6, 6);
            }
            (a, take_spans())
        });
        a.merge(b);
        let work = a.child("work").unwrap();
        assert_eq!(work.count, 2);
        assert_eq!(work.cycles, 11);
    }

    #[test]
    fn render_folded_and_json_shapes() {
        let tree = with_telemetry(|| {
            let _a = span("a");
            {
                let _b = span("b");
                add_sim_cost(4, 2);
            }
            drop(_a);
            take_spans()
        });
        assert!(tree.render().contains("a:"));
        assert!(tree.render().contains("  b:"));
        assert_eq!(tree.folded(), "a;b 4\n");
        let json = tree.to_json();
        assert!(json.contains("\"a\""));
        assert!(json.contains("\"total_cycles\": 4"));
    }
}
