//! UTC timestamps without external date crates (Hinnant's
//! civil-from-days algorithm), shared by every artifact writer in the
//! workspace — the `bench` and `loadgen` date stamps previously each
//! carried their own copy.

/// Seconds since the Unix epoch.
pub fn unix_secs() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs()
}

/// `(year, month, day)` of a Unix timestamp in UTC.
fn civil_from_secs(secs: u64) -> (i64, i64, i64) {
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    (y, m, d)
}

/// `YYYY-MM-DD` in UTC for the given Unix timestamp.
pub fn utc_date_string_at(secs: u64) -> String {
    let (y, m, d) = civil_from_secs(secs);
    format!("{y:04}-{m:02}-{d:02}")
}

/// `YYYY-MM-DD` in UTC, now.
pub fn utc_date_string() -> String {
    utc_date_string_at(unix_secs())
}

/// RFC 3339 `YYYY-MM-DDTHH:MM:SSZ` for the given Unix timestamp.
pub fn utc_datetime_string(secs: u64) -> String {
    let (y, m, d) = civil_from_secs(secs);
    let rem = secs % 86_400;
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_instants() {
        assert_eq!(utc_datetime_string(0), "1970-01-01T00:00:00Z");
        // 2024-02-29 (leap day) 12:34:56 UTC.
        assert_eq!(utc_datetime_string(1_709_210_096), "2024-02-29T12:34:56Z");
        assert_eq!(utc_date_string_at(1_709_210_096), "2024-02-29");
    }

    #[test]
    fn now_is_well_formed() {
        let d = utc_date_string();
        assert_eq!(d.len(), 10);
        assert_eq!(&d[4..5], "-");
        let t = utc_datetime_string(unix_secs());
        assert_eq!(t.len(), 20);
        assert!(t.ends_with('Z'));
    }
}
