//! Programmatic assembler, textual assembler and disassembler.
//!
//! Kernels in this reproduction are authored the way the paper's authors
//! wrote theirs — as straight-line assembly — but *generated* by Rust
//! code. [`Assembler`] is the builder: one method per mnemonic, plus
//! labels, pseudo-instructions and custom (ISE) instructions. The
//! textual front-end ([`parse_program`]) accepts standard assembler
//! syntax and is used by tests and the examples.

use crate::encode::{encode, EncodeError};
use crate::ext::{CustomId, IsaExtension};
use crate::inst::{AluImmOp, AluOp, BranchOp, Inst, LoadOp, StoreOp};
use crate::reg::Reg;
use std::collections::HashMap;
use std::fmt;

/// A finished instruction sequence.
///
/// Instruction `i` lives at byte address `4 * i` relative to the load
/// address chosen by [`crate::Machine::load_program`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    insts: Vec<Inst>,
}

impl Program {
    /// Creates a program directly from instructions (no label fixups).
    pub fn from_insts(insts: Vec<Inst>) -> Self {
        Program { insts }
    }

    /// The instructions in program order.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Encodes every instruction to its 32-bit binary form.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EncodeError`].
    pub fn encode(&self, ext: &IsaExtension) -> Result<Vec<u32>, EncodeError> {
        self.insts.iter().map(|i| encode(i, ext)).collect()
    }

    /// Renders the program as assembly text, one instruction per line,
    /// using `ext` to resolve custom mnemonics.
    pub fn disassemble(&self, ext: &IsaExtension) -> String {
        let mut out = String::new();
        for (i, inst) in self.insts.iter().enumerate() {
            out.push_str(&format!("{:6}: {}\n", i * 4, display_with_ext(inst, ext)));
        }
        out
    }
}

/// Formats one instruction, resolving custom ids to their mnemonics.
pub fn display_with_ext(inst: &Inst, ext: &IsaExtension) -> String {
    if let Inst::Custom {
        id,
        rd,
        rs1,
        rs2,
        rs3,
        imm,
    } = *inst
    {
        if let Some(def) = ext.by_id(id) {
            return if def.format.has_rs3() {
                format!("{} {rd}, {rs1}, {rs2}, {rs3}", def.mnemonic)
            } else {
                format!("{} {rd}, {rs1}, {rs2}, {imm}", def.mnemonic)
            };
        }
    }
    inst.to_string()
}

/// A branch/jump target created by [`Assembler::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Errors produced when finishing or parsing a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A label was referenced but never bound.
    UnboundLabel(usize),
    /// A parse error with line number and message.
    Parse {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// An instruction failed to encode (range check).
    Encode(EncodeError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UnboundLabel(i) => write!(f, "label L{i} was never bound"),
            AsmError::Parse { line, msg } => write!(f, "parse error on line {line}: {msg}"),
            AsmError::Encode(e) => write!(f, "encode error: {e}"),
        }
    }
}

impl std::error::Error for AsmError {}

impl From<EncodeError> for AsmError {
    fn from(e: EncodeError) -> Self {
        AsmError::Encode(e)
    }
}

#[derive(Debug, Clone, Copy)]
enum Fixup {
    Branch(Label),
    Jal(Label),
}

/// Builder for [`Program`]s.
///
/// # Examples
///
/// Branching backwards over a label:
///
/// ```
/// use mpise_sim::{Assembler, Reg};
///
/// let mut a = Assembler::new();
/// let top = a.new_label();
/// a.li(Reg::T0, 10);
/// a.bind(top);
/// a.addi(Reg::T0, Reg::T0, -1);
/// a.bnez(Reg::T0, top);
/// a.ebreak();
/// let p = a.try_finish().unwrap();
/// assert_eq!(p.len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    insts: Vec<Inst>,
    fixups: Vec<(usize, Fixup)>,
    labels: Vec<Option<usize>>,
}

macro_rules! r_type_methods {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
                self.push(Inst::Op { op: AluOp::$op, rd, rs1, rs2 });
            }
        )+
    };
}

macro_rules! i_type_methods {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rd: Reg, rs1: Reg, imm: i32) {
                self.push(Inst::OpImm { op: AluImmOp::$op, rd, rs1, imm });
            }
        )+
    };
}

macro_rules! branch_methods {
    ($($(#[$doc:meta])* $name:ident => $op:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $name(&mut self, rs1: Reg, rs2: Reg, target: Label) {
                let at = self.insts.len();
                self.fixups.push((at, Fixup::Branch(target)));
                self.push(Inst::Branch { op: BranchOp::$op, rs1, rs2, offset: 0 });
            }
        )+
    };
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether nothing has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, inst: Inst) {
        self.insts.push(inst);
    }

    /// Creates a new, unbound label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound (each label is bound once).
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.insts.len());
    }

    r_type_methods! {
        /// `add rd, rs1, rs2`
        add => Add,
        /// `sub rd, rs1, rs2`
        sub => Sub,
        /// `sll rd, rs1, rs2`
        sll => Sll,
        /// `slt rd, rs1, rs2`
        slt => Slt,
        /// `sltu rd, rs1, rs2` — the carry/borrow detector of RISC-V MPI code.
        sltu => Sltu,
        /// `xor rd, rs1, rs2`
        xor => Xor,
        /// `srl rd, rs1, rs2`
        srl => Srl,
        /// `sra rd, rs1, rs2`
        sra => Sra,
        /// `or rd, rs1, rs2`
        or => Or,
        /// `and rd, rs1, rs2`
        and => And,
        /// `mul rd, rs1, rs2` — low 64 bits of the product.
        mul => Mul,
        /// `mulh rd, rs1, rs2`
        mulh => Mulh,
        /// `mulhsu rd, rs1, rs2`
        mulhsu => Mulhsu,
        /// `mulhu rd, rs1, rs2` — high 64 bits of the unsigned product.
        mulhu => Mulhu,
        /// `div rd, rs1, rs2`
        div => Div,
        /// `divu rd, rs1, rs2`
        divu => Divu,
        /// `rem rd, rs1, rs2`
        rem => Rem,
        /// `remu rd, rs1, rs2`
        remu => Remu,
        /// `addw rd, rs1, rs2`
        addw => Addw,
        /// `subw rd, rs1, rs2`
        subw => Subw,
        /// `mulw rd, rs1, rs2`
        mulw => Mulw,
    }

    i_type_methods! {
        /// `addi rd, rs1, imm`
        addi => Addi,
        /// `slti rd, rs1, imm`
        slti => Slti,
        /// `sltiu rd, rs1, imm`
        sltiu => Sltiu,
        /// `xori rd, rs1, imm`
        xori => Xori,
        /// `ori rd, rs1, imm`
        ori => Ori,
        /// `andi rd, rs1, imm`
        andi => Andi,
        /// `slli rd, rs1, shamt`
        slli => Slli,
        /// `srli rd, rs1, shamt`
        srli => Srli,
        /// `srai rd, rs1, shamt`
        srai => Srai,
        /// `addiw rd, rs1, imm`
        addiw => Addiw,
    }

    branch_methods! {
        /// `beq rs1, rs2, label`
        beq => Beq,
        /// `bne rs1, rs2, label`
        bne => Bne,
        /// `blt rs1, rs2, label`
        blt => Blt,
        /// `bge rs1, rs2, label`
        bge => Bge,
        /// `bltu rs1, rs2, label`
        bltu => Bltu,
        /// `bgeu rs1, rs2, label`
        bgeu => Bgeu,
    }

    /// `lui rd, imm20`
    pub fn lui(&mut self, rd: Reg, imm20: i32) {
        self.push(Inst::Lui { rd, imm20 });
    }

    /// `ld rd, offset(rs1)`
    pub fn ld(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.push(Inst::Load {
            op: LoadOp::Ld,
            rd,
            rs1,
            offset,
        });
    }

    /// `lw rd, offset(rs1)`
    pub fn lw(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.push(Inst::Load {
            op: LoadOp::Lw,
            rd,
            rs1,
            offset,
        });
    }

    /// `lbu rd, offset(rs1)`
    pub fn lbu(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.push(Inst::Load {
            op: LoadOp::Lbu,
            rd,
            rs1,
            offset,
        });
    }

    /// `sd rs2, offset(rs1)`
    pub fn sd(&mut self, rs2: Reg, offset: i32, rs1: Reg) {
        self.push(Inst::Store {
            op: StoreOp::Sd,
            rs1,
            rs2,
            offset,
        });
    }

    /// `sw rs2, offset(rs1)`
    pub fn sw(&mut self, rs2: Reg, offset: i32, rs1: Reg) {
        self.push(Inst::Store {
            op: StoreOp::Sw,
            rs1,
            rs2,
            offset,
        });
    }

    /// `sb rs2, offset(rs1)`
    pub fn sb(&mut self, rs2: Reg, offset: i32, rs1: Reg) {
        self.push(Inst::Store {
            op: StoreOp::Sb,
            rs1,
            rs2,
            offset,
        });
    }

    /// `jal rd, label`
    pub fn jal(&mut self, rd: Reg, target: Label) {
        let at = self.insts.len();
        self.fixups.push((at, Fixup::Jal(target)));
        self.push(Inst::Jal { rd, offset: 0 });
    }

    /// `jalr rd, offset(rs1)`
    pub fn jalr(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.push(Inst::Jalr { rd, rs1, offset });
    }

    /// `ebreak` — terminates a [`crate::Machine`] run normally.
    pub fn ebreak(&mut self) {
        self.push(Inst::Ebreak);
    }

    /// `ecall`
    pub fn ecall(&mut self) {
        self.push(Inst::Ecall);
    }

    /// `fence`
    pub fn fence(&mut self) {
        self.push(Inst::Fence);
    }

    // ----- pseudo-instructions -----

    /// `nop` (encoded as `addi x0, x0, 0`).
    pub fn nop(&mut self) {
        self.addi(Reg::Zero, Reg::Zero, 0);
    }

    /// `mv rd, rs` (encoded as `addi rd, rs, 0`).
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }

    /// `neg rd, rs` (encoded as `sub rd, x0, rs`).
    pub fn neg(&mut self, rd: Reg, rs: Reg) {
        self.sub(rd, Reg::Zero, rs);
    }

    /// `not rd, rs` (encoded as `xori rd, rs, -1`).
    pub fn not(&mut self, rd: Reg, rs: Reg) {
        self.xori(rd, rs, -1);
    }

    /// `seqz rd, rs` (encoded as `sltiu rd, rs, 1`).
    pub fn seqz(&mut self, rd: Reg, rs: Reg) {
        self.sltiu(rd, rs, 1);
    }

    /// `snez rd, rs` (encoded as `sltu rd, x0, rs`).
    pub fn snez(&mut self, rd: Reg, rs: Reg) {
        self.sltu(rd, Reg::Zero, rs);
    }

    /// `bnez rs, label`
    pub fn bnez(&mut self, rs: Reg, target: Label) {
        self.bne(rs, Reg::Zero, target);
    }

    /// `beqz rs, label`
    pub fn beqz(&mut self, rs: Reg, target: Label) {
        self.beq(rs, Reg::Zero, target);
    }

    /// `j label` (encoded as `jal x0, label`).
    pub fn j(&mut self, target: Label) {
        self.jal(Reg::Zero, target);
    }

    /// `ret` (encoded as `jalr x0, 0(ra)`).
    pub fn ret(&mut self) {
        self.jalr(Reg::Zero, 0, Reg::Ra);
    }

    /// Loads a 64-bit constant, choosing the shortest standard sequence:
    /// one `addi` for 12-bit values, `lui(+addiw)` for 32-bit values,
    /// and the generic `lui/addiw/slli/addi…` ladder otherwise (up to
    /// 8 instructions, as emitted by GNU as / LLVM for `li`).
    pub fn li(&mut self, rd: Reg, value: i64) {
        if (-2048..=2047).contains(&value) {
            self.addi(rd, Reg::Zero, value as i32);
            return;
        }
        if value == value as i32 as i64 {
            // 32-bit: lui + optional addiw.
            let v = value as i32;
            let hi = (v.wrapping_add(0x800)) >> 12;
            let lo = v.wrapping_sub(hi << 12);
            self.lui(rd, hi);
            if lo != 0 {
                self.addiw(rd, rd, lo);
            }
            return;
        }
        // Generic 64-bit ladder: materialize the upper part recursively,
        // then shift in 12-bit chunks.
        let lo12 = ((value << 52) >> 52) as i32; // sign-extended low 12
        let hi = value.wrapping_sub(lo12 as i64) >> 12;
        self.li(rd, hi);
        self.slli(rd, rd, 12);
        if lo12 != 0 {
            self.addi(rd, rd, lo12);
        }
    }

    /// Emits a custom (ISE) instruction in R4 form.
    pub fn custom_r4(&mut self, id: CustomId, rd: Reg, rs1: Reg, rs2: Reg, rs3: Reg) {
        self.push(Inst::Custom {
            id,
            rd,
            rs1,
            rs2,
            rs3,
            imm: 0,
        });
    }

    /// Emits a custom (ISE) instruction in register–shamt form.
    pub fn custom_shamt(&mut self, id: CustomId, rd: Reg, rs1: Reg, rs2: Reg, imm: u8) {
        self.push(Inst::Custom {
            id,
            rd,
            rs1,
            rs2,
            rs3: Reg::Zero,
            imm,
        });
    }

    /// Resolves labels and returns the finished program.
    ///
    /// # Errors
    ///
    /// [`AsmError::UnboundLabel`] if a referenced label was never bound.
    pub fn try_finish(mut self) -> Result<Program, AsmError> {
        for &(at, fixup) in &self.fixups {
            let target = match fixup {
                Fixup::Branch(l) | Fixup::Jal(l) => {
                    self.labels[l.0].ok_or(AsmError::UnboundLabel(l.0))?
                }
            };
            let offset = (target as i64 - at as i64) * 4;
            match (&mut self.insts[at], fixup) {
                (Inst::Branch { offset: o, .. }, Fixup::Branch(_)) => *o = offset as i32,
                (Inst::Jal { offset: o, .. }, Fixup::Jal(_)) => *o = offset as i32,
                _ => unreachable!("fixup does not point at a control instruction"),
            }
        }
        Ok(Program { insts: self.insts })
    }

    /// Resolves labels and returns the finished program.
    ///
    /// # Panics
    ///
    /// Panics on unbound labels; use [`Assembler::try_finish`] to handle
    /// that as an error.
    pub fn finish(self) -> Program {
        self.try_finish().expect("unbound label")
    }
}

// ---------------------------------------------------------------------
// Textual assembler
// ---------------------------------------------------------------------

/// Parses assembler source into a [`Program`].
///
/// Supported syntax: one instruction per line; `label:` definitions;
/// `#` or `//` comments; all mnemonics known to [`Inst`] plus the
/// pseudo-instructions `li`, `mv`, `neg`, `not`, `nop`, `j`, `ret`,
/// `beqz`, `bnez`, `seqz`, `snez`; and any custom mnemonics registered
/// in `ext` (R4 operands `rd, rs1, rs2, rs3`; shamt operands
/// `rd, rs1, rs2, imm`).
///
/// # Errors
///
/// [`AsmError::Parse`] with the offending line, or label errors at
/// fixup time.
///
/// # Examples
///
/// ```
/// use mpise_sim::{asm::parse_program, ext::IsaExtension};
/// let p = parse_program(
///     "li t0, 3\nloop: addi t0, t0, -1\n bnez t0, loop\n ebreak\n",
///     &IsaExtension::new("none"),
/// ).unwrap();
/// assert_eq!(p.len(), 4);
/// ```
pub fn parse_program(src: &str, ext: &IsaExtension) -> Result<Program, AsmError> {
    let mut a = Assembler::new();
    let mut named: HashMap<String, Label> = HashMap::new();
    let mut get_label = |a: &mut Assembler, name: &str| -> Label {
        *named
            .entry(name.to_owned())
            .or_insert_with(|| a.new_label())
    };

    for (lineno, raw_line) in src.lines().enumerate() {
        let line = raw_line
            .split('#')
            .next()
            .unwrap_or("")
            .split("//")
            .next()
            .unwrap_or("")
            .trim();
        if line.is_empty() {
            continue;
        }
        let perr = |msg: String| AsmError::Parse {
            line: lineno + 1,
            msg,
        };

        let mut rest = line;
        // Leading label definitions.
        while let Some(colon) = rest.find(':') {
            let (name, tail) = rest.split_at(colon);
            let name = name.trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
            {
                break;
            }
            let l = get_label(&mut a, name);
            a.bind(l);
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            continue;
        }

        let (mnemonic, operands) = match rest.split_once(char::is_whitespace) {
            Some((m, o)) => (m, o.trim()),
            None => (rest, ""),
        };
        let ops: Vec<&str> = if operands.is_empty() {
            vec![]
        } else {
            operands.split(',').map(str::trim).collect()
        };

        let reg = |s: &str| -> Result<Reg, AsmError> {
            s.parse::<Reg>().map_err(|e| perr(e.to_string()))
        };
        let imm = |s: &str| -> Result<i64, AsmError> {
            let s = s.trim();
            let (neg, body) = match s.strip_prefix('-') {
                Some(b) => (true, b),
                None => (false, s),
            };
            let v = if let Some(hex) = body.strip_prefix("0x") {
                i64::from_str_radix(hex, 16)
            } else {
                body.parse::<i64>()
            }
            .map_err(|_| perr(format!("bad immediate `{s}`")))?;
            Ok(if neg { -v } else { v })
        };
        // `offset(base)` operand for loads/stores.
        let mem_operand = |s: &str| -> Result<(i32, Reg), AsmError> {
            let open = s
                .find('(')
                .ok_or_else(|| perr(format!("expected offset(base), got `{s}`")))?;
            let close = s
                .rfind(')')
                .ok_or_else(|| perr(format!("missing `)` in `{s}`")))?;
            let off = if s[..open].trim().is_empty() {
                0
            } else {
                imm(&s[..open])? as i32
            };
            Ok((off, reg(s[open + 1..close].trim())?))
        };
        let want = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                Err(perr(format!(
                    "`{mnemonic}` expects {n} operands, got {}",
                    ops.len()
                )))
            }
        };

        // R-type table lookup.
        let r_ops: &[(&str, AluOp)] = &[
            ("add", AluOp::Add),
            ("sub", AluOp::Sub),
            ("sll", AluOp::Sll),
            ("slt", AluOp::Slt),
            ("sltu", AluOp::Sltu),
            ("xor", AluOp::Xor),
            ("srl", AluOp::Srl),
            ("sra", AluOp::Sra),
            ("or", AluOp::Or),
            ("and", AluOp::And),
            ("addw", AluOp::Addw),
            ("subw", AluOp::Subw),
            ("sllw", AluOp::Sllw),
            ("srlw", AluOp::Srlw),
            ("sraw", AluOp::Sraw),
            ("mul", AluOp::Mul),
            ("mulh", AluOp::Mulh),
            ("mulhsu", AluOp::Mulhsu),
            ("mulhu", AluOp::Mulhu),
            ("div", AluOp::Div),
            ("divu", AluOp::Divu),
            ("rem", AluOp::Rem),
            ("remu", AluOp::Remu),
            ("mulw", AluOp::Mulw),
            ("divw", AluOp::Divw),
            ("divuw", AluOp::Divuw),
            ("remw", AluOp::Remw),
            ("remuw", AluOp::Remuw),
        ];
        let i_ops: &[(&str, AluImmOp)] = &[
            ("addi", AluImmOp::Addi),
            ("slti", AluImmOp::Slti),
            ("sltiu", AluImmOp::Sltiu),
            ("xori", AluImmOp::Xori),
            ("ori", AluImmOp::Ori),
            ("andi", AluImmOp::Andi),
            ("slli", AluImmOp::Slli),
            ("srli", AluImmOp::Srli),
            ("srai", AluImmOp::Srai),
            ("addiw", AluImmOp::Addiw),
            ("slliw", AluImmOp::Slliw),
            ("srliw", AluImmOp::Srliw),
            ("sraiw", AluImmOp::Sraiw),
        ];
        let loads: &[(&str, LoadOp)] = &[
            ("lb", LoadOp::Lb),
            ("lh", LoadOp::Lh),
            ("lw", LoadOp::Lw),
            ("ld", LoadOp::Ld),
            ("lbu", LoadOp::Lbu),
            ("lhu", LoadOp::Lhu),
            ("lwu", LoadOp::Lwu),
        ];
        let stores: &[(&str, StoreOp)] = &[
            ("sb", StoreOp::Sb),
            ("sh", StoreOp::Sh),
            ("sw", StoreOp::Sw),
            ("sd", StoreOp::Sd),
        ];
        let branches: &[(&str, BranchOp)] = &[
            ("beq", BranchOp::Beq),
            ("bne", BranchOp::Bne),
            ("blt", BranchOp::Blt),
            ("bge", BranchOp::Bge),
            ("bltu", BranchOp::Bltu),
            ("bgeu", BranchOp::Bgeu),
        ];

        if let Some((_, op)) = r_ops.iter().find(|(m, _)| *m == mnemonic) {
            want(3)?;
            let (rd, rs1, rs2) = (reg(ops[0])?, reg(ops[1])?, reg(ops[2])?);
            a.push(Inst::Op {
                op: *op,
                rd,
                rs1,
                rs2,
            });
        } else if let Some((_, op)) = i_ops.iter().find(|(m, _)| *m == mnemonic) {
            want(3)?;
            a.push(Inst::OpImm {
                op: *op,
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                imm: imm(ops[2])? as i32,
            });
        } else if let Some((_, op)) = loads.iter().find(|(m, _)| *m == mnemonic) {
            want(2)?;
            let (offset, rs1) = mem_operand(ops[1])?;
            a.push(Inst::Load {
                op: *op,
                rd: reg(ops[0])?,
                rs1,
                offset,
            });
        } else if let Some((_, op)) = stores.iter().find(|(m, _)| *m == mnemonic) {
            want(2)?;
            let (offset, rs1) = mem_operand(ops[1])?;
            a.push(Inst::Store {
                op: *op,
                rs1,
                rs2: reg(ops[0])?,
                offset,
            });
        } else if let Some((_, op)) = branches.iter().find(|(m, _)| *m == mnemonic) {
            want(3)?;
            let (rs1, rs2) = (reg(ops[0])?, reg(ops[1])?);
            let l = get_label(&mut a, ops[2]);
            let at = a.insts.len();
            a.fixups.push((at, Fixup::Branch(l)));
            a.push(Inst::Branch {
                op: *op,
                rs1,
                rs2,
                offset: 0,
            });
        } else if let Some(def) = ext.by_mnemonic(mnemonic) {
            if def.format.has_rs3() {
                want(4)?;
                a.custom_r4(
                    def.id,
                    reg(ops[0])?,
                    reg(ops[1])?,
                    reg(ops[2])?,
                    reg(ops[3])?,
                );
            } else {
                want(4)?;
                a.custom_shamt(
                    def.id,
                    reg(ops[0])?,
                    reg(ops[1])?,
                    reg(ops[2])?,
                    imm(ops[3])? as u8,
                );
            }
        } else {
            match mnemonic {
                "lui" => {
                    want(2)?;
                    a.lui(reg(ops[0])?, imm(ops[1])? as i32);
                }
                "li" => {
                    want(2)?;
                    a.li(reg(ops[0])?, imm(ops[1])?);
                }
                "mv" => {
                    want(2)?;
                    a.mv(reg(ops[0])?, reg(ops[1])?);
                }
                "neg" => {
                    want(2)?;
                    a.neg(reg(ops[0])?, reg(ops[1])?);
                }
                "not" => {
                    want(2)?;
                    a.not(reg(ops[0])?, reg(ops[1])?);
                }
                "seqz" => {
                    want(2)?;
                    a.seqz(reg(ops[0])?, reg(ops[1])?);
                }
                "snez" => {
                    want(2)?;
                    a.snez(reg(ops[0])?, reg(ops[1])?);
                }
                "nop" => {
                    want(0)?;
                    a.nop();
                }
                "j" => {
                    want(1)?;
                    let l = get_label(&mut a, ops[0]);
                    a.j(l);
                }
                "jal" => {
                    want(2)?;
                    let rd = reg(ops[0])?;
                    let l = get_label(&mut a, ops[1]);
                    a.jal(rd, l);
                }
                "jalr" => {
                    want(2)?;
                    let (offset, rs1) = mem_operand(ops[1])?;
                    a.jalr(reg(ops[0])?, offset, rs1);
                }
                "beqz" => {
                    want(2)?;
                    let rs = reg(ops[0])?;
                    let l = get_label(&mut a, ops[1]);
                    a.beqz(rs, l);
                }
                "bnez" => {
                    want(2)?;
                    let rs = reg(ops[0])?;
                    let l = get_label(&mut a, ops[1]);
                    a.bnez(rs, l);
                }
                "ret" => {
                    want(0)?;
                    a.ret();
                }
                "ebreak" => {
                    want(0)?;
                    a.ebreak();
                }
                "ecall" => {
                    want(0)?;
                    a.ecall();
                }
                "fence" => {
                    want(0)?;
                    a.fence();
                }
                _ => return Err(perr(format!("unknown mnemonic `{mnemonic}`"))),
            }
        }
    }
    a.try_finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_fixups_forward_and_backward() {
        let mut a = Assembler::new();
        let end = a.new_label();
        let top = a.new_label();
        a.bind(top);
        a.beq(Reg::A0, Reg::A1, end); // at 0 -> 3: offset +12
        a.addi(Reg::A0, Reg::A0, 1);
        a.bne(Reg::A0, Reg::A1, top); // at 2 -> 0: offset -8
        a.bind(end);
        a.ebreak();
        let p = a.finish();
        assert_eq!(
            p.insts()[0],
            Inst::Branch {
                op: BranchOp::Beq,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: 12
            }
        );
        assert_eq!(
            p.insts()[2],
            Inst::Branch {
                op: BranchOp::Bne,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: -8
            }
        );
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut a = Assembler::new();
        let l = a.new_label();
        a.j(l);
        assert!(matches!(a.try_finish(), Err(AsmError::UnboundLabel(_))));
    }

    #[test]
    fn li_sequences() {
        // Small immediate: single addi.
        let mut a = Assembler::new();
        a.li(Reg::T0, 42);
        assert_eq!(a.len(), 1);
        // 32-bit: lui + addiw.
        let mut a = Assembler::new();
        a.li(Reg::T0, 0x1234_5678);
        assert_eq!(a.len(), 2);
        // Full 64-bit: bounded ladder.
        let mut a = Assembler::new();
        a.li(Reg::T0, 0x0123_4567_89ab_cdefu64 as i64);
        assert!(a.len() <= 8, "li ladder too long: {}", a.len());
    }

    #[test]
    fn parse_round_trips_disassembly() {
        let ext = IsaExtension::new("none");
        let src = "\
            add a0, a1, a2\n\
            mulhu t0, t1, t2\n\
            ld t3, 8(a0)\n\
            sd t3, 16(a0)\n\
            srai s2, s3, 57\n\
            ebreak\n";
        let p = parse_program(src, &ext).unwrap();
        assert_eq!(p.len(), 6);
        let dis = p.disassemble(&ext);
        // Re-parse the disassembly (strip addresses).
        let stripped: String = dis
            .lines()
            .map(|l| l.split(": ").nth(1).unwrap().to_owned() + "\n")
            .collect();
        let p2 = parse_program(&stripped, &ext).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn parse_labels_and_comments() {
        let ext = IsaExtension::new("none");
        let src = "\
            # countdown\n\
            li t0, 3\n\
            loop: addi t0, t0, -1 // decrement\n\
            bnez t0, loop\n\
            ebreak\n";
        let p = parse_program(src, &ext).unwrap();
        assert_eq!(
            p.insts()[2],
            Inst::Branch {
                op: BranchOp::Bne,
                rs1: Reg::T0,
                rs2: Reg::Zero,
                offset: -4
            }
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let ext = IsaExtension::new("none");
        let err = parse_program("nop\nfrobnicate a0, a1\n", &ext).unwrap_err();
        match err {
            AsmError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_bad_operand_counts() {
        let ext = IsaExtension::new("none");
        assert!(parse_program("add a0, a1\n", &ext).is_err());
        assert!(parse_program("ld a0\n", &ext).is_err());
    }

    #[test]
    fn hex_and_negative_immediates() {
        let ext = IsaExtension::new("none");
        let p = parse_program("addi t0, t1, -0x10\naddi t2, t3, 0x7ff\n", &ext).unwrap();
        assert_eq!(
            p.insts()[0],
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::T0,
                rs1: Reg::T1,
                imm: -16
            }
        );
    }
}
