//! Architectural CPU state and single-instruction semantics.

use crate::ext::{CustomArgs, IsaExtension};
use crate::inst::{AluImmOp, AluOp, Inst, LoadOp};
use crate::mem::{MemError, Memory};
use crate::reg::Reg;
use std::fmt;

/// Reasons execution stops or faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// `ebreak` executed (normal kernel termination in this harness).
    Breakpoint,
    /// `ecall` executed.
    EnvironmentCall,
    /// A custom instruction whose id is not registered was executed.
    IllegalInstruction,
    /// A data memory access faulted.
    Memory(MemError),
    /// The PC left the loaded program region.
    PcOutOfProgram {
        /// The faulting PC value.
        pc: u64,
    },
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Breakpoint => write!(f, "breakpoint"),
            Trap::EnvironmentCall => write!(f, "environment call"),
            Trap::IllegalInstruction => write!(f, "illegal instruction"),
            Trap::Memory(e) => write!(f, "memory fault: {e}"),
            Trap::PcOutOfProgram { pc } => write!(f, "pc {pc:#x} left the program"),
        }
    }
}

impl std::error::Error for Trap {}

impl From<MemError> for Trap {
    fn from(e: MemError) -> Self {
        Trap::Memory(e)
    }
}

/// The architectural state of one RV64 hart: 32 general-purpose
/// registers and the program counter.
///
/// `x0` reads as zero and ignores writes, enforced by
/// [`Cpu::write_reg`].
#[derive(Debug, Clone)]
pub struct Cpu {
    regs: [u64; 32],
    /// Program counter (byte address of the next instruction).
    pub pc: u64,
}

impl Default for Cpu {
    fn default() -> Self {
        Self::new()
    }
}

impl Cpu {
    /// Creates a CPU with all registers and the PC cleared.
    pub fn new() -> Self {
        Cpu {
            regs: [0; 32],
            pc: 0,
        }
    }

    /// Reads a register (`x0` always reads 0).
    #[inline]
    pub fn read_reg(&self, r: Reg) -> u64 {
        self.regs[r.number() as usize]
    }

    /// Writes a register; writes to `x0` are discarded.
    #[inline]
    pub fn write_reg(&mut self, r: Reg, v: u64) {
        if r != Reg::Zero {
            self.regs[r.number() as usize] = v;
        }
    }

    /// A snapshot of all 32 registers (index = register number).
    pub fn regs(&self) -> [u64; 32] {
        self.regs
    }

    /// Executes one instruction, updating registers, memory and the PC.
    ///
    /// Returns `Ok(())` when execution may continue, or the [`Trap`]
    /// that stopped it. `ebreak`/`ecall` report themselves as traps —
    /// the [`crate::Machine`] treats [`Trap::Breakpoint`] as a normal
    /// halt.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] other than normal continuation.
    pub fn step(&mut self, inst: &Inst, mem: &mut Memory, ext: &IsaExtension) -> Result<(), Trap> {
        let next_pc = self.pc.wrapping_add(4);
        match *inst {
            Inst::Lui { rd, imm20 } => {
                self.write_reg(rd, ((imm20 as i64) << 12) as u64);
            }
            Inst::Auipc { rd, imm20 } => {
                self.write_reg(rd, self.pc.wrapping_add(((imm20 as i64) << 12) as u64));
            }
            Inst::Jal { rd, offset } => {
                self.write_reg(rd, next_pc);
                self.pc = self.pc.wrapping_add(offset as i64 as u64);
                return Ok(());
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.read_reg(rs1).wrapping_add(offset as i64 as u64) & !1;
                self.write_reg(rd, next_pc);
                self.pc = target;
                return Ok(());
            }
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                if op.taken(self.read_reg(rs1), self.read_reg(rs2)) {
                    self.pc = self.pc.wrapping_add(offset as i64 as u64);
                    return Ok(());
                }
            }
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.read_reg(rs1).wrapping_add(offset as i64 as u64);
                let raw = mem.load(addr, op.width())?;
                let v = match op {
                    LoadOp::Lb => raw as u8 as i8 as i64 as u64,
                    LoadOp::Lh => raw as u16 as i16 as i64 as u64,
                    LoadOp::Lw => raw as u32 as i32 as i64 as u64,
                    LoadOp::Ld | LoadOp::Lbu | LoadOp::Lhu | LoadOp::Lwu => raw,
                };
                self.write_reg(rd, v);
            }
            Inst::Store {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let addr = self.read_reg(rs1).wrapping_add(offset as i64 as u64);
                mem.store(addr, self.read_reg(rs2), op.width())?;
            }
            Inst::OpImm { op, rd, rs1, imm } => {
                let x = self.read_reg(rs1);
                let v = eval_alu_imm(op, x, imm);
                self.write_reg(rd, v);
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                let v = eval_alu(op, self.read_reg(rs1), self.read_reg(rs2));
                self.write_reg(rd, v);
            }
            Inst::Fence => {}
            Inst::Ecall => return Err(Trap::EnvironmentCall),
            Inst::Ebreak => return Err(Trap::Breakpoint),
            Inst::Custom {
                id,
                rd,
                rs1,
                rs2,
                rs3,
                imm,
            } => {
                let def = ext.by_id(id).ok_or(Trap::IllegalInstruction)?;
                let v = (def.exec)(CustomArgs {
                    rs1: self.read_reg(rs1),
                    rs2: self.read_reg(rs2),
                    rs3: self.read_reg(rs3),
                    imm,
                });
                self.write_reg(rd, v);
            }
        }
        self.pc = next_pc;
        Ok(())
    }
}

/// Pure evaluation of a register–register ALU/M operation.
///
/// Exposed so tests and the hardware model can check instruction
/// semantics without a full CPU.
// The divide-by-zero cases mirror the RISC-V spec text (quotient of
// all ones, remainder = dividend); spelling them out beats checked_div.
#[allow(clippy::manual_checked_ops)]
pub fn eval_alu(op: AluOp, x: u64, y: u64) -> u64 {
    use AluOp::*;
    match op {
        Add => x.wrapping_add(y),
        Sub => x.wrapping_sub(y),
        Sll => x << (y & 63),
        Slt => ((x as i64) < (y as i64)) as u64,
        Sltu => (x < y) as u64,
        Xor => x ^ y,
        Srl => x >> (y & 63),
        Sra => ((x as i64) >> (y & 63)) as u64,
        Or => x | y,
        And => x & y,
        Addw => (x as i32).wrapping_add(y as i32) as i64 as u64,
        Subw => (x as i32).wrapping_sub(y as i32) as i64 as u64,
        Sllw => ((x as i32) << (y & 31)) as i64 as u64,
        Srlw => (((x as u32) >> (y & 31)) as i32) as i64 as u64,
        Sraw => ((x as i32) >> (y & 31)) as i64 as u64,
        Mul => x.wrapping_mul(y),
        Mulh => (((x as i64 as i128) * (y as i64 as i128)) >> 64) as u64,
        Mulhsu => (((x as i64 as i128) * (y as u128 as i128)) >> 64) as u64,
        Mulhu => (((x as u128) * (y as u128)) >> 64) as u64,
        Div => {
            if y == 0 {
                u64::MAX
            } else if x as i64 == i64::MIN && y as i64 == -1 {
                x
            } else {
                ((x as i64) / (y as i64)) as u64
            }
        }
        Divu => {
            if y == 0 {
                u64::MAX
            } else {
                x / y
            }
        }
        Rem => {
            if y == 0 {
                x
            } else if x as i64 == i64::MIN && y as i64 == -1 {
                0
            } else {
                ((x as i64) % (y as i64)) as u64
            }
        }
        Remu => {
            if y == 0 {
                x
            } else {
                x % y
            }
        }
        Mulw => (x as i32).wrapping_mul(y as i32) as i64 as u64,
        Divw => {
            let (x, y) = (x as i32, y as i32);
            let r = if y == 0 {
                -1
            } else if x == i32::MIN && y == -1 {
                x
            } else {
                x / y
            };
            r as i64 as u64
        }
        Divuw => {
            let (x, y) = (x as u32, y as u32);
            let r = if y == 0 { u32::MAX } else { x / y };
            r as i32 as i64 as u64
        }
        Remw => {
            let (x, y) = (x as i32, y as i32);
            let r = if y == 0 {
                x
            } else if x == i32::MIN && y == -1 {
                0
            } else {
                x % y
            };
            r as i64 as u64
        }
        Remuw => {
            let (x, y) = (x as u32, y as u32);
            let r = if y == 0 { x } else { x % y };
            r as i32 as i64 as u64
        }
    }
}

/// Pure evaluation of a register–immediate ALU operation.
pub fn eval_alu_imm(op: AluImmOp, x: u64, imm: i32) -> u64 {
    use AluImmOp::*;
    let simm = imm as i64 as u64;
    match op {
        Addi => x.wrapping_add(simm),
        Slti => ((x as i64) < imm as i64) as u64,
        Sltiu => (x < simm) as u64,
        Xori => x ^ simm,
        Ori => x | simm,
        Andi => x & simm,
        Slli => x << (imm & 63),
        Srli => x >> (imm & 63),
        Srai => ((x as i64) >> (imm & 63)) as u64,
        Addiw => (x as i32).wrapping_add(imm) as i64 as u64,
        Slliw => ((x as i32) << (imm & 31)) as i64 as u64,
        Srliw => (((x as u32) >> (imm & 31)) as i32) as i64 as u64,
        Sraiw => ((x as i32) >> (imm & 31)) as i64 as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::StoreOp;

    fn cpu_with(pairs: &[(Reg, u64)]) -> Cpu {
        let mut c = Cpu::new();
        for &(r, v) in pairs {
            c.write_reg(r, v);
        }
        c
    }

    #[test]
    fn x0_is_hardwired_zero() {
        let mut c = Cpu::new();
        c.write_reg(Reg::Zero, 123);
        assert_eq!(c.read_reg(Reg::Zero), 0);
    }

    #[test]
    fn alu_semantics_spot_checks() {
        assert_eq!(eval_alu(AluOp::Add, u64::MAX, 1), 0);
        assert_eq!(eval_alu(AluOp::Sub, 0, 1), u64::MAX);
        assert_eq!(eval_alu(AluOp::Sltu, 1, 2), 1);
        assert_eq!(eval_alu(AluOp::Sltu, 2, 1), 0);
        assert_eq!(eval_alu(AluOp::Slt, u64::MAX, 0), 1); // -1 < 0
        assert_eq!(eval_alu(AluOp::Sra, u64::MAX, 63), u64::MAX);
        assert_eq!(eval_alu(AluOp::Srl, u64::MAX, 63), 1);
        assert_eq!(eval_alu(AluOp::Mulhu, u64::MAX, u64::MAX), u64::MAX - 1);
        assert_eq!(eval_alu(AluOp::Mulh, u64::MAX, u64::MAX), 0); // (-1)*(-1)
        assert_eq!(eval_alu(AluOp::Mul, 1 << 63, 2), 0);
    }

    #[test]
    fn division_edge_cases_match_spec() {
        // Division by zero: quotient all-ones, remainder = dividend.
        assert_eq!(eval_alu(AluOp::Div, 42, 0), u64::MAX);
        assert_eq!(eval_alu(AluOp::Divu, 42, 0), u64::MAX);
        assert_eq!(eval_alu(AluOp::Rem, 42, 0), 42);
        assert_eq!(eval_alu(AluOp::Remu, 42, 0), 42);
        // Signed overflow: MIN / -1 = MIN, MIN % -1 = 0.
        let min = i64::MIN as u64;
        assert_eq!(eval_alu(AluOp::Div, min, u64::MAX), min);
        assert_eq!(eval_alu(AluOp::Rem, min, u64::MAX), 0);
    }

    #[test]
    fn word_ops_sign_extend() {
        assert_eq!(eval_alu(AluOp::Addw, 0x7fff_ffff, 1), 0xffff_ffff_8000_0000);
        assert_eq!(eval_alu_imm(AluImmOp::Addiw, 0xffff_ffff, 1), 0);
        assert_eq!(eval_alu(AluOp::Sllw, 1, 31), 0xffff_ffff_8000_0000u64);
    }

    #[test]
    fn mulhsu_mixed_signs() {
        // -1 (signed) * 2 (unsigned) = -2 → high word = all ones.
        assert_eq!(eval_alu(AluOp::Mulhsu, u64::MAX, 2), u64::MAX);
        // 2 (signed) * 2^63 (unsigned): product = 2^64, high = 1.
        assert_eq!(eval_alu(AluOp::Mulhsu, 2, 1 << 63), 1);
    }

    #[test]
    fn step_load_store() {
        let mut mem = Memory::new(0x100, 32);
        let ext = IsaExtension::new("none");
        let mut c = cpu_with(&[(Reg::A0, 0x100), (Reg::T0, 0xabcd)]);
        c.step(
            &Inst::Store {
                op: StoreOp::Sd,
                rs1: Reg::A0,
                rs2: Reg::T0,
                offset: 8,
            },
            &mut mem,
            &ext,
        )
        .unwrap();
        c.step(
            &Inst::Load {
                op: LoadOp::Ld,
                rd: Reg::T1,
                rs1: Reg::A0,
                offset: 8,
            },
            &mut mem,
            &ext,
        )
        .unwrap();
        assert_eq!(c.read_reg(Reg::T1), 0xabcd);
        assert_eq!(c.pc, 8);
    }

    #[test]
    fn step_branch_taken_and_not_taken() {
        let mut mem = Memory::new(0, 8);
        let ext = IsaExtension::new("none");
        let mut c = cpu_with(&[(Reg::A0, 1)]);
        c.pc = 100;
        c.step(
            &Inst::Branch {
                op: crate::inst::BranchOp::Bne,
                rs1: Reg::A0,
                rs2: Reg::Zero,
                offset: -20,
            },
            &mut mem,
            &ext,
        )
        .unwrap();
        assert_eq!(c.pc, 80);
        c.step(
            &Inst::Branch {
                op: crate::inst::BranchOp::Beq,
                rs1: Reg::A0,
                rs2: Reg::Zero,
                offset: -20,
            },
            &mut mem,
            &ext,
        )
        .unwrap();
        assert_eq!(c.pc, 84); // fall-through
    }

    #[test]
    fn jal_and_jalr_link() {
        let mut mem = Memory::new(0, 8);
        let ext = IsaExtension::new("none");
        let mut c = Cpu::new();
        c.pc = 40;
        c.step(
            &Inst::Jal {
                rd: Reg::Ra,
                offset: 16,
            },
            &mut mem,
            &ext,
        )
        .unwrap();
        assert_eq!(c.read_reg(Reg::Ra), 44);
        assert_eq!(c.pc, 56);
        c.step(
            &Inst::Jalr {
                rd: Reg::Zero,
                rs1: Reg::Ra,
                offset: 0,
            },
            &mut mem,
            &ext,
        )
        .unwrap();
        assert_eq!(c.pc, 44);
    }

    #[test]
    fn ebreak_traps() {
        let mut mem = Memory::new(0, 8);
        let ext = IsaExtension::new("none");
        let mut c = Cpu::new();
        assert_eq!(c.step(&Inst::Ebreak, &mut mem, &ext), Err(Trap::Breakpoint));
        assert_eq!(
            c.step(&Inst::Ecall, &mut mem, &ext),
            Err(Trap::EnvironmentCall)
        );
    }

    #[test]
    fn unknown_custom_traps() {
        let mut mem = Memory::new(0, 8);
        let ext = IsaExtension::new("none");
        let mut c = Cpu::new();
        let r = c.step(
            &Inst::Custom {
                id: crate::ext::CustomId(7),
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
                rs3: Reg::A3,
                imm: 0,
            },
            &mut mem,
            &ext,
        );
        assert_eq!(r, Err(Trap::IllegalInstruction));
    }
}
