//! Binary instruction decoding (the inverse of [`crate::encode`]).

use crate::ext::{decode_custom_operands, IsaExtension};
use crate::inst::{AluImmOp, AluOp, BranchOp, Inst, LoadOp, StoreOp};
use crate::reg::Reg;
use std::fmt;

/// Error returned when a 32-bit word is not a recognized instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The raw word that failed to decode.
    pub raw: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "illegal instruction {:#010x}", self.raw)
    }
}

impl std::error::Error for DecodeError {}

fn rd(raw: u32) -> Reg {
    Reg::from_number(((raw >> 7) & 0x1f) as u8).expect("5-bit field")
}
fn rs1(raw: u32) -> Reg {
    Reg::from_number(((raw >> 15) & 0x1f) as u8).expect("5-bit field")
}
fn rs2(raw: u32) -> Reg {
    Reg::from_number(((raw >> 20) & 0x1f) as u8).expect("5-bit field")
}
fn funct3(raw: u32) -> u32 {
    (raw >> 12) & 0x7
}
fn funct7(raw: u32) -> u32 {
    raw >> 25
}

/// Sign-extends the low `bits` of `v`.
fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

fn i_imm(raw: u32) -> i32 {
    sext(raw >> 20, 12)
}

fn s_imm(raw: u32) -> i32 {
    sext(((raw >> 25) << 5) | ((raw >> 7) & 0x1f), 12)
}

fn b_imm(raw: u32) -> i32 {
    let imm = (((raw >> 31) & 1) << 12)
        | (((raw >> 7) & 1) << 11)
        | (((raw >> 25) & 0x3f) << 5)
        | (((raw >> 8) & 0xf) << 1);
    sext(imm, 13)
}

fn j_imm(raw: u32) -> i32 {
    let imm = (((raw >> 31) & 1) << 20)
        | (((raw >> 12) & 0xff) << 12)
        | (((raw >> 20) & 1) << 11)
        | (((raw >> 21) & 0x3ff) << 1);
    sext(imm, 21)
}

/// Decodes a 32-bit word into an [`Inst`].
///
/// Custom opcode space is resolved against `ext`; pass an empty
/// [`IsaExtension`] to decode pure RV64I/M.
///
/// # Errors
///
/// Returns [`DecodeError`] for any word that is neither a supported base
/// instruction nor matched by the extension registry.
pub fn decode(raw: u32, ext: &IsaExtension) -> Result<Inst, DecodeError> {
    let err = || DecodeError { raw };
    let opcode = raw & 0x7f;
    let inst = match opcode {
        0b0110111 => Inst::Lui {
            rd: rd(raw),
            imm20: sext(raw >> 12, 20),
        },
        0b0010111 => Inst::Auipc {
            rd: rd(raw),
            imm20: sext(raw >> 12, 20),
        },
        0b1101111 => Inst::Jal {
            rd: rd(raw),
            offset: j_imm(raw),
        },
        0b1100111 if funct3(raw) == 0 => Inst::Jalr {
            rd: rd(raw),
            rs1: rs1(raw),
            offset: i_imm(raw),
        },
        0b1100011 => {
            let op = match funct3(raw) {
                0b000 => BranchOp::Beq,
                0b001 => BranchOp::Bne,
                0b100 => BranchOp::Blt,
                0b101 => BranchOp::Bge,
                0b110 => BranchOp::Bltu,
                0b111 => BranchOp::Bgeu,
                _ => return Err(err()),
            };
            Inst::Branch {
                op,
                rs1: rs1(raw),
                rs2: rs2(raw),
                offset: b_imm(raw),
            }
        }
        0b0000011 => {
            let op = match funct3(raw) {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b011 => LoadOp::Ld,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                0b110 => LoadOp::Lwu,
                _ => return Err(err()),
            };
            Inst::Load {
                op,
                rd: rd(raw),
                rs1: rs1(raw),
                offset: i_imm(raw),
            }
        }
        0b0100011 => {
            let op = match funct3(raw) {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                0b011 => StoreOp::Sd,
                _ => return Err(err()),
            };
            Inst::Store {
                op,
                rs1: rs1(raw),
                rs2: rs2(raw),
                offset: s_imm(raw),
            }
        }
        0b0010011 => {
            let f3 = funct3(raw);
            match f3 {
                0b001 | 0b101 => {
                    let shamt = ((raw >> 20) & 0x3f) as i32;
                    let hi = funct7(raw) >> 1; // top 6 bits select sra vs srl
                    let op = match (f3, hi) {
                        (0b001, 0b000000) => AluImmOp::Slli,
                        (0b101, 0b000000) => AluImmOp::Srli,
                        (0b101, 0b010000) => AluImmOp::Srai,
                        _ => return Err(err()),
                    };
                    Inst::OpImm {
                        op,
                        rd: rd(raw),
                        rs1: rs1(raw),
                        imm: shamt,
                    }
                }
                _ => {
                    let op = match f3 {
                        0b000 => AluImmOp::Addi,
                        0b010 => AluImmOp::Slti,
                        0b011 => AluImmOp::Sltiu,
                        0b100 => AluImmOp::Xori,
                        0b110 => AluImmOp::Ori,
                        0b111 => AluImmOp::Andi,
                        _ => return Err(err()),
                    };
                    Inst::OpImm {
                        op,
                        rd: rd(raw),
                        rs1: rs1(raw),
                        imm: i_imm(raw),
                    }
                }
            }
        }
        0b0011011 => {
            let f3 = funct3(raw);
            match f3 {
                0b000 => Inst::OpImm {
                    op: AluImmOp::Addiw,
                    rd: rd(raw),
                    rs1: rs1(raw),
                    imm: i_imm(raw),
                },
                0b001 | 0b101 => {
                    let shamt = ((raw >> 20) & 0x1f) as i32;
                    let op = match (f3, funct7(raw)) {
                        (0b001, 0b0000000) => AluImmOp::Slliw,
                        (0b101, 0b0000000) => AluImmOp::Srliw,
                        (0b101, 0b0100000) => AluImmOp::Sraiw,
                        _ => return Err(err()),
                    };
                    Inst::OpImm {
                        op,
                        rd: rd(raw),
                        rs1: rs1(raw),
                        imm: shamt,
                    }
                }
                _ => return Err(err()),
            }
        }
        0b0110011 => {
            use AluOp::*;
            let op = match (funct7(raw), funct3(raw)) {
                (0b0000000, 0b000) => Add,
                (0b0100000, 0b000) => Sub,
                (0b0000000, 0b001) => Sll,
                (0b0000000, 0b010) => Slt,
                (0b0000000, 0b011) => Sltu,
                (0b0000000, 0b100) => Xor,
                (0b0000000, 0b101) => Srl,
                (0b0100000, 0b101) => Sra,
                (0b0000000, 0b110) => Or,
                (0b0000000, 0b111) => And,
                (0b0000001, 0b000) => Mul,
                (0b0000001, 0b001) => Mulh,
                (0b0000001, 0b010) => Mulhsu,
                (0b0000001, 0b011) => Mulhu,
                (0b0000001, 0b100) => Div,
                (0b0000001, 0b101) => Divu,
                (0b0000001, 0b110) => Rem,
                (0b0000001, 0b111) => Remu,
                _ => return Err(err()),
            };
            Inst::Op {
                op,
                rd: rd(raw),
                rs1: rs1(raw),
                rs2: rs2(raw),
            }
        }
        0b0111011 => {
            use AluOp::*;
            let op = match (funct7(raw), funct3(raw)) {
                (0b0000000, 0b000) => Addw,
                (0b0100000, 0b000) => Subw,
                (0b0000000, 0b001) => Sllw,
                (0b0000000, 0b101) => Srlw,
                (0b0100000, 0b101) => Sraw,
                (0b0000001, 0b000) => Mulw,
                (0b0000001, 0b100) => Divw,
                (0b0000001, 0b101) => Divuw,
                (0b0000001, 0b110) => Remw,
                (0b0000001, 0b111) => Remuw,
                _ => return Err(err()),
            };
            Inst::Op {
                op,
                rd: rd(raw),
                rs1: rs1(raw),
                rs2: rs2(raw),
            }
        }
        0b0001111 => Inst::Fence,
        0b1110011 => match raw >> 20 {
            0 => Inst::Ecall,
            1 => Inst::Ebreak,
            _ => return Err(err()),
        },
        _ => {
            // Not a base opcode: try the extension registry.
            let def = ext.match_encoding(raw).ok_or_else(err)?;
            let (rd, rs1, rs2, rs3, imm) = decode_custom_operands(def.format, raw);
            Inst::Custom {
                id: def.id,
                rd,
                rs1,
                rs2,
                rs3,
                imm,
            }
        }
    };
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn golden_decodes() {
        let e = IsaExtension::new("none");
        assert_eq!(
            decode(0x00c5_8533, &e).unwrap(),
            Inst::Op {
                op: AluOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2
            }
        );
        assert_eq!(
            decode(0xff01_0113, &e).unwrap(),
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::Sp,
                rs1: Reg::Sp,
                imm: -16
            }
        );
        assert_eq!(decode(0x0010_0073, &e).unwrap(), Inst::Ebreak);
    }

    #[test]
    fn illegal_rejected() {
        let e = IsaExtension::new("none");
        assert!(decode(0xffff_ffff, &e).is_err());
        assert!(decode(0x0000_0000, &e).is_err());
        // custom-3 opcode without a registered extension
        assert!(decode(0x0000_007b, &e).is_err());
    }

    #[test]
    fn negative_branch_offset_round_trip() {
        let e = IsaExtension::new("none");
        let i = Inst::Branch {
            op: BranchOp::Bltu,
            rs1: Reg::T0,
            rs2: Reg::T1,
            offset: -4096,
        };
        let raw = encode(&i, &e).unwrap();
        assert_eq!(decode(raw, &e).unwrap(), i);
    }

    #[test]
    fn negative_jal_offset_round_trip() {
        let e = IsaExtension::new("none");
        let i = Inst::Jal {
            rd: Reg::Zero,
            offset: -1048576,
        };
        let raw = encode(&i, &e).unwrap();
        assert_eq!(decode(raw, &e).unwrap(), i);
    }
}
