//! Binary instruction encoding (RV64I/M plus registered custom formats).

use crate::ext::{encode_custom, IsaExtension};
use crate::inst::{AluImmOp, AluOp, BranchOp, Inst, LoadOp, StoreOp};
use std::fmt;

/// Error returned when an [`Inst`] cannot be encoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// An immediate or offset does not fit its encoding field.
    ImmOutOfRange {
        /// The instruction being encoded, rendered as assembly.
        inst: String,
        /// Number of bits available in the encoding.
        bits: u32,
    },
    /// A branch/jump offset is not 2-byte aligned (RISC-V requires even
    /// offsets even without the C extension).
    MisalignedOffset(String),
    /// A custom instruction's id is not present in the supplied
    /// extension registry.
    UnknownCustom(String),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { inst, bits } => {
                write!(f, "immediate of `{inst}` does not fit in {bits} bits")
            }
            EncodeError::MisalignedOffset(inst) => {
                write!(
                    f,
                    "control-transfer offset of `{inst}` is not 2-byte aligned"
                )
            }
            EncodeError::UnknownCustom(inst) => {
                write!(f, "custom instruction `{inst}` is not registered")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OP_IMM: u32 = 0b0010011;
const OPC_OP_IMM_32: u32 = 0b0011011;
const OPC_OP: u32 = 0b0110011;
const OPC_OP_32: u32 = 0b0111011;
const OPC_MISC_MEM: u32 = 0b0001111;
const OPC_SYSTEM: u32 = 0b1110011;

#[allow(dead_code)]
pub(crate) const OPCODES: [u32; 13] = [
    OPC_LUI,
    OPC_AUIPC,
    OPC_JAL,
    OPC_JALR,
    OPC_BRANCH,
    OPC_LOAD,
    OPC_STORE,
    OPC_OP_IMM,
    OPC_OP_IMM_32,
    OPC_OP,
    OPC_OP_32,
    OPC_MISC_MEM,
    OPC_SYSTEM,
];

fn fits_signed(v: i64, bits: u32) -> bool {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (min..=max).contains(&v)
}

fn r_type(opcode: u32, funct3: u32, funct7: u32, rd: u32, rs1: u32, rs2: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn i_type(opcode: u32, funct3: u32, rd: u32, rs1: u32, imm12: i32) -> u32 {
    (((imm12 as u32) & 0xfff) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn s_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, imm12: i32) -> u32 {
    let imm = imm12 as u32;
    (((imm >> 5) & 0x7f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm & 0x1f) << 7)
        | opcode
}

fn b_type(opcode: u32, funct3: u32, rs1: u32, rs2: u32, offset: i32) -> u32 {
    let imm = offset as u32;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3f) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xf) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
}

fn u_type(opcode: u32, rd: u32, imm20: i32) -> u32 {
    (((imm20 as u32) & 0xfffff) << 12) | (rd << 7) | opcode
}

fn j_type(opcode: u32, rd: u32, offset: i32) -> u32 {
    let imm = offset as u32;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xff) << 12)
        | (rd << 7)
        | opcode
}

/// funct3/funct7 for an R-type [`AluOp`] and its major opcode.
pub(crate) fn alu_op_fields(op: AluOp) -> (u32, u32, u32) {
    use AluOp::*;
    // (opcode, funct3, funct7)
    match op {
        Add => (OPC_OP, 0b000, 0b0000000),
        Sub => (OPC_OP, 0b000, 0b0100000),
        Sll => (OPC_OP, 0b001, 0b0000000),
        Slt => (OPC_OP, 0b010, 0b0000000),
        Sltu => (OPC_OP, 0b011, 0b0000000),
        Xor => (OPC_OP, 0b100, 0b0000000),
        Srl => (OPC_OP, 0b101, 0b0000000),
        Sra => (OPC_OP, 0b101, 0b0100000),
        Or => (OPC_OP, 0b110, 0b0000000),
        And => (OPC_OP, 0b111, 0b0000000),
        Mul => (OPC_OP, 0b000, 0b0000001),
        Mulh => (OPC_OP, 0b001, 0b0000001),
        Mulhsu => (OPC_OP, 0b010, 0b0000001),
        Mulhu => (OPC_OP, 0b011, 0b0000001),
        Div => (OPC_OP, 0b100, 0b0000001),
        Divu => (OPC_OP, 0b101, 0b0000001),
        Rem => (OPC_OP, 0b110, 0b0000001),
        Remu => (OPC_OP, 0b111, 0b0000001),
        Addw => (OPC_OP_32, 0b000, 0b0000000),
        Subw => (OPC_OP_32, 0b000, 0b0100000),
        Sllw => (OPC_OP_32, 0b001, 0b0000000),
        Srlw => (OPC_OP_32, 0b101, 0b0000000),
        Sraw => (OPC_OP_32, 0b101, 0b0100000),
        Mulw => (OPC_OP_32, 0b000, 0b0000001),
        Divw => (OPC_OP_32, 0b100, 0b0000001),
        Divuw => (OPC_OP_32, 0b101, 0b0000001),
        Remw => (OPC_OP_32, 0b110, 0b0000001),
        Remuw => (OPC_OP_32, 0b111, 0b0000001),
    }
}

pub(crate) fn branch_funct3(op: BranchOp) -> u32 {
    match op {
        BranchOp::Beq => 0b000,
        BranchOp::Bne => 0b001,
        BranchOp::Blt => 0b100,
        BranchOp::Bge => 0b101,
        BranchOp::Bltu => 0b110,
        BranchOp::Bgeu => 0b111,
    }
}

pub(crate) fn load_funct3(op: LoadOp) -> u32 {
    match op {
        LoadOp::Lb => 0b000,
        LoadOp::Lh => 0b001,
        LoadOp::Lw => 0b010,
        LoadOp::Ld => 0b011,
        LoadOp::Lbu => 0b100,
        LoadOp::Lhu => 0b101,
        LoadOp::Lwu => 0b110,
    }
}

pub(crate) fn store_funct3(op: StoreOp) -> u32 {
    match op {
        StoreOp::Sb => 0b000,
        StoreOp::Sh => 0b001,
        StoreOp::Sw => 0b010,
        StoreOp::Sd => 0b011,
    }
}

/// Encodes an instruction into its 32-bit binary form.
///
/// Custom instructions are resolved against `ext`; pass an empty
/// [`IsaExtension`] when the program contains none.
///
/// # Errors
///
/// Returns [`EncodeError`] when an immediate is out of range, a branch
/// offset is misaligned, or a custom id is unknown.
pub fn encode(inst: &Inst, ext: &IsaExtension) -> Result<u32, EncodeError> {
    let imm_err = |bits| EncodeError::ImmOutOfRange {
        inst: inst.to_string(),
        bits,
    };
    Ok(match *inst {
        Inst::Lui { rd, imm20 } => {
            if !fits_signed(imm20 as i64, 20) && !(0..(1 << 20)).contains(&(imm20 as i64)) {
                return Err(imm_err(20));
            }
            u_type(OPC_LUI, rd.number() as u32, imm20)
        }
        Inst::Auipc { rd, imm20 } => {
            if !fits_signed(imm20 as i64, 20) && !(0..(1 << 20)).contains(&(imm20 as i64)) {
                return Err(imm_err(20));
            }
            u_type(OPC_AUIPC, rd.number() as u32, imm20)
        }
        Inst::Jal { rd, offset } => {
            if offset % 2 != 0 {
                return Err(EncodeError::MisalignedOffset(inst.to_string()));
            }
            if !fits_signed(offset as i64, 21) {
                return Err(imm_err(21));
            }
            j_type(OPC_JAL, rd.number() as u32, offset)
        }
        Inst::Jalr { rd, rs1, offset } => {
            if !fits_signed(offset as i64, 12) {
                return Err(imm_err(12));
            }
            i_type(
                OPC_JALR,
                0b000,
                rd.number() as u32,
                rs1.number() as u32,
                offset,
            )
        }
        Inst::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            if offset % 2 != 0 {
                return Err(EncodeError::MisalignedOffset(inst.to_string()));
            }
            if !fits_signed(offset as i64, 13) {
                return Err(imm_err(13));
            }
            b_type(
                OPC_BRANCH,
                branch_funct3(op),
                rs1.number() as u32,
                rs2.number() as u32,
                offset,
            )
        }
        Inst::Load {
            op,
            rd,
            rs1,
            offset,
        } => {
            if !fits_signed(offset as i64, 12) {
                return Err(imm_err(12));
            }
            i_type(
                OPC_LOAD,
                load_funct3(op),
                rd.number() as u32,
                rs1.number() as u32,
                offset,
            )
        }
        Inst::Store {
            op,
            rs1,
            rs2,
            offset,
        } => {
            if !fits_signed(offset as i64, 12) {
                return Err(imm_err(12));
            }
            s_type(
                OPC_STORE,
                store_funct3(op),
                rs1.number() as u32,
                rs2.number() as u32,
                offset,
            )
        }
        Inst::OpImm { op, rd, rs1, imm } => {
            use AluImmOp::*;
            let rd = rd.number() as u32;
            let rs1 = rs1.number() as u32;
            match op {
                Addi | Slti | Sltiu | Xori | Ori | Andi | Addiw => {
                    if !fits_signed(imm as i64, 12) {
                        return Err(imm_err(12));
                    }
                    let (opcode, f3) = match op {
                        Addi => (OPC_OP_IMM, 0b000),
                        Slti => (OPC_OP_IMM, 0b010),
                        Sltiu => (OPC_OP_IMM, 0b011),
                        Xori => (OPC_OP_IMM, 0b100),
                        Ori => (OPC_OP_IMM, 0b110),
                        Andi => (OPC_OP_IMM, 0b111),
                        Addiw => (OPC_OP_IMM_32, 0b000),
                        _ => unreachable!(),
                    };
                    i_type(opcode, f3, rd, rs1, imm)
                }
                Slli | Srli | Srai => {
                    if !(0..64).contains(&imm) {
                        return Err(imm_err(6));
                    }
                    let (f3, hi) = match op {
                        Slli => (0b001, 0b000000u32),
                        Srli => (0b101, 0b000000),
                        Srai => (0b101, 0b010000),
                        _ => unreachable!(),
                    };
                    i_type(OPC_OP_IMM, f3, rd, rs1, ((hi << 6) | imm as u32) as i32)
                }
                Slliw | Srliw | Sraiw => {
                    if !(0..32).contains(&imm) {
                        return Err(imm_err(5));
                    }
                    let (f3, hi) = match op {
                        Slliw => (0b001, 0b0000000u32),
                        Srliw => (0b101, 0b0000000),
                        Sraiw => (0b101, 0b0100000),
                        _ => unreachable!(),
                    };
                    i_type(OPC_OP_IMM_32, f3, rd, rs1, ((hi << 5) | imm as u32) as i32)
                }
            }
        }
        Inst::Op { op, rd, rs1, rs2 } => {
            let (opcode, f3, f7) = alu_op_fields(op);
            r_type(
                opcode,
                f3,
                f7,
                rd.number() as u32,
                rs1.number() as u32,
                rs2.number() as u32,
            )
        }
        Inst::Fence => i_type(OPC_MISC_MEM, 0b000, 0, 0, 0),
        Inst::Ecall => i_type(OPC_SYSTEM, 0b000, 0, 0, 0),
        Inst::Ebreak => i_type(OPC_SYSTEM, 0b000, 0, 0, 1),
        Inst::Custom {
            id,
            rd,
            rs1,
            rs2,
            rs3,
            imm,
        } => {
            let def = ext
                .by_id(id)
                .ok_or_else(|| EncodeError::UnknownCustom(inst.to_string()))?;
            encode_custom(def.format, rd, rs1, rs2, rs3, imm)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::Reg;

    fn enc(i: Inst) -> u32 {
        encode(&i, &IsaExtension::new("none")).unwrap()
    }

    // Golden encodings cross-checked against the RISC-V spec / GNU as.
    #[test]
    fn golden_add() {
        // add a0, a1, a2 => 0x00c58533
        let raw = enc(Inst::Op {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        });
        assert_eq!(raw, 0x00c5_8533);
    }

    #[test]
    fn golden_mulhu() {
        // mulhu t0, t1, t2 => 0x027332b3
        let raw = enc(Inst::Op {
            op: AluOp::Mulhu,
            rd: Reg::T0,
            rs1: Reg::T1,
            rs2: Reg::T2,
        });
        assert_eq!(raw, 0x0273_32b3);
    }

    #[test]
    fn golden_sltu() {
        // sltu a0, a1, a2 => 0x00c5b533
        let raw = enc(Inst::Op {
            op: AluOp::Sltu,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        });
        assert_eq!(raw, 0x00c5_b533);
    }

    #[test]
    fn golden_addi() {
        // addi sp, sp, -16 => 0xff010113
        let raw = enc(Inst::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::Sp,
            rs1: Reg::Sp,
            imm: -16,
        });
        assert_eq!(raw, 0xff01_0113);
    }

    #[test]
    fn golden_srai() {
        // srai a0, a1, 57 => 0x4395d513
        let raw = enc(Inst::OpImm {
            op: AluImmOp::Srai,
            rd: Reg::A0,
            rs1: Reg::A1,
            imm: 57,
        });
        assert_eq!(raw, 0x4395_d513);
    }

    #[test]
    fn golden_ld_sd() {
        // ld t0, 8(a0) => 0x00853283 ; sd t0, 16(a0) => 0x00553823
        let ld = enc(Inst::Load {
            op: LoadOp::Ld,
            rd: Reg::T0,
            rs1: Reg::A0,
            offset: 8,
        });
        assert_eq!(ld, 0x0085_3283);
        let sd = enc(Inst::Store {
            op: StoreOp::Sd,
            rs1: Reg::A0,
            rs2: Reg::T0,
            offset: 16,
        });
        assert_eq!(sd, 0x0055_3823);
    }

    #[test]
    fn golden_ebreak_ecall() {
        assert_eq!(enc(Inst::Ebreak), 0x0010_0073);
        assert_eq!(enc(Inst::Ecall), 0x0000_0073);
    }

    #[test]
    fn golden_branch() {
        // bne a0, zero, 8 => 0x00051463
        let raw = enc(Inst::Branch {
            op: BranchOp::Bne,
            rs1: Reg::A0,
            rs2: Reg::Zero,
            offset: 8,
        });
        assert_eq!(raw, 0x0005_1463);
    }

    #[test]
    fn golden_jal() {
        // jal ra, 16 => 0x010000ef
        let raw = enc(Inst::Jal {
            rd: Reg::Ra,
            offset: 16,
        });
        assert_eq!(raw, 0x0100_00ef);
    }

    #[test]
    fn out_of_range_rejected() {
        let e = encode(
            &Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 4096,
            },
            &IsaExtension::new("none"),
        );
        assert!(matches!(e, Err(EncodeError::ImmOutOfRange { .. })));

        let e = encode(
            &Inst::OpImm {
                op: AluImmOp::Slli,
                rd: Reg::A0,
                rs1: Reg::A0,
                imm: 64,
            },
            &IsaExtension::new("none"),
        );
        assert!(e.is_err());
    }

    #[test]
    fn misaligned_branch_rejected() {
        let e = encode(
            &Inst::Branch {
                op: BranchOp::Beq,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: 3,
            },
            &IsaExtension::new("none"),
        );
        assert!(matches!(e, Err(EncodeError::MisalignedOffset(_))));
    }

    #[test]
    fn unknown_custom_rejected() {
        let e = encode(
            &Inst::Custom {
                id: crate::ext::CustomId(999),
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
                rs3: Reg::A3,
                imm: 0,
            },
            &IsaExtension::new("none"),
        );
        assert!(matches!(e, Err(EncodeError::UnknownCustom(_))));
    }
}
