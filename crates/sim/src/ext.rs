//! Instruction-set extension (ISE) hook.
//!
//! The paper proposes two alternative sets of custom instructions (§3.2,
//! Table 1). This module defines the interface through which such a set
//! plugs into the simulator: an [`IsaExtension`] is a collection of
//! [`CustomInstDef`]s, each describing a mnemonic, a binary encoding
//! format, a pure execution function and the functional unit it executes
//! on (which determines its timing).
//!
//! All of the paper's instructions are pure register-to-register
//! computations — `rd ← f(rs1, rs2, rs3)` or `rd ← f(rs1, rs2, imm)` —
//! so a pure-function model is sufficient and keeps the instructions
//! trivially testable in isolation. The design-rule checks of
//! `mpise-core` enforce exactly this shape (no memory access, no extra
//! architectural state), mirroring the ISE guidelines the paper adopts
//! from Marshall et al. (CHES 2021).
//!
//! Note that the two ISE sets may legitimately reuse the same encodings:
//! the paper presents them as alternatives, not as a combined extension
//! (e.g. `cadd` and `madd57lu` both use funct2 = 10 on the custom-3
//! opcode). A [`Machine`](crate::Machine) therefore hosts at most one
//! extension per major opcode/funct point, and registering conflicting
//! definitions is an error.

use crate::reg::Reg;
use std::fmt;

/// Identifier for a custom instruction, unique within a process.
///
/// Extension crates allocate stable ids for their instructions (see
/// `mpise-core`); the simulator treats the id as opaque.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CustomId(pub u16);

impl fmt::Display for CustomId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Binary encoding format of a custom instruction.
///
/// The paper uses two formats (Figures 1–3):
///
/// * [`CustomFormat::R4`]: the standard R4-type format (as used by the
///   RV64GC floating-point fused multiply-add), with three source
///   registers: `rs3[31:27] | funct2[26:25] | rs2 | rs1 | funct3 | rd |
///   opcode`.
/// * [`CustomFormat::RShamt`]: an R-type with a 6-bit shift amount in
///   place of `funct7[5:0]` and a fixed bit 31, used by `sraiadd`:
///   `1[31] | shamt[30:25] | rs2 | rs1 | funct3 | rd | opcode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CustomFormat {
    /// R4-type: three source registers plus a 2-bit minor opcode.
    R4 {
        /// Major opcode (7 bits). The paper uses custom-3 = `0b1111011`.
        opcode: u8,
        /// funct3 field (3 bits). The paper uses `0b111`.
        funct3: u8,
        /// funct2 minor opcode (bits 26:25).
        funct2: u8,
    },
    /// R-type with an embedded 6-bit shift amount.
    RShamt {
        /// Major opcode (7 bits). The paper uses custom-1 = `0b0101011`.
        opcode: u8,
        /// funct3 field (3 bits).
        funct3: u8,
        /// Fixed value of bit 31 distinguishing this from other encodings
        /// on the same opcode.
        bit31: bool,
    },
}

impl CustomFormat {
    /// The major opcode of the format.
    pub const fn opcode(self) -> u8 {
        match self {
            CustomFormat::R4 { opcode, .. } | CustomFormat::RShamt { opcode, .. } => opcode,
        }
    }

    /// Whether the format carries a third source register (R4) rather
    /// than an immediate.
    pub const fn has_rs3(self) -> bool {
        matches!(self, CustomFormat::R4 { .. })
    }
}

/// Source operand values handed to a custom instruction's execution
/// function.
///
/// `rs3` is zero for [`CustomFormat::RShamt`] instructions and `imm` is
/// zero for [`CustomFormat::R4`] instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CustomArgs {
    /// Value of the first source register.
    pub rs1: u64,
    /// Value of the second source register.
    pub rs2: u64,
    /// Value of the third source register (R4 format only).
    pub rs3: u64,
    /// Immediate shift amount (RShamt format only).
    pub imm: u8,
}

/// Functional unit a custom instruction executes on, which selects its
/// timing class in [`crate::timing::PipelineModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecUnit {
    /// Single-cycle integer ALU.
    Alu,
    /// The (extended) 2-stage pipelined multiplier — "XMUL" in the paper.
    /// One result per cycle; results available to dependants after the
    /// multiplier latency.
    Xmul,
}

/// Definition of one custom instruction.
#[derive(Clone)]
pub struct CustomInstDef {
    /// Stable identifier (see [`CustomId`]).
    pub id: CustomId,
    /// Assembler mnemonic, e.g. `"maddlu"`.
    pub mnemonic: &'static str,
    /// Binary encoding format.
    pub format: CustomFormat,
    /// Pure execution function: computes the `rd` value from the source
    /// operands.
    pub exec: fn(CustomArgs) -> u64,
    /// Functional unit / timing class.
    pub unit: ExecUnit,
}

impl fmt::Debug for CustomInstDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CustomInstDef")
            .field("id", &self.id)
            .field("mnemonic", &self.mnemonic)
            .field("format", &self.format)
            .field("unit", &self.unit)
            .finish()
    }
}

/// A named set of custom instructions that can be attached to a
/// [`Machine`](crate::Machine).
///
/// # Examples
///
/// ```
/// use mpise_sim::ext::{CustomArgs, CustomFormat, CustomId, CustomInstDef, ExecUnit, IsaExtension};
///
/// fn addx3(a: CustomArgs) -> u64 {
///     a.rs1.wrapping_add(a.rs2).wrapping_add(a.rs3)
/// }
///
/// let mut ext = IsaExtension::new("demo");
/// ext.define(CustomInstDef {
///     id: CustomId(100),
///     mnemonic: "addx3",
///     format: CustomFormat::R4 { opcode: 0b1111011, funct3: 0b111, funct2: 0b00 },
///     exec: addx3,
///     unit: ExecUnit::Alu,
/// }).unwrap();
/// assert_eq!(ext.by_mnemonic("addx3").unwrap().id, CustomId(100));
/// ```
#[derive(Debug, Clone, Default)]
pub struct IsaExtension {
    name: &'static str,
    defs: Vec<CustomInstDef>,
    /// O(1) id → `defs` index lookup (`defs` index + 1; 0 = absent),
    /// indexed by `CustomId.0`. The simulator resolves every executed
    /// custom instruction through [`IsaExtension::by_id`], so this must
    /// not be a linear scan.
    id_index: Vec<u32>,
}

/// Error returned when a custom instruction definition conflicts with an
/// already-registered one (same encoding point or same mnemonic/id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictError {
    /// Mnemonic of the instruction that failed to register.
    pub mnemonic: &'static str,
    /// Mnemonic of the already-registered instruction it collides with.
    pub existing: &'static str,
}

impl fmt::Display for ConflictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "custom instruction `{}` conflicts with `{}`",
            self.mnemonic, self.existing
        )
    }
}

impl std::error::Error for ConflictError {}

impl IsaExtension {
    /// Creates an empty extension with a human-readable name.
    pub fn new(name: &'static str) -> Self {
        IsaExtension {
            name,
            defs: Vec::new(),
            id_index: Vec::new(),
        }
    }

    /// The extension's name (e.g. `"Xmpifull"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Registers an instruction definition.
    ///
    /// # Errors
    ///
    /// Returns [`ConflictError`] when the encoding point, mnemonic or id
    /// is already taken within this extension.
    pub fn define(&mut self, def: CustomInstDef) -> Result<(), ConflictError> {
        for d in &self.defs {
            let clash = d.format == def.format || d.mnemonic == def.mnemonic || d.id == def.id;
            if clash {
                return Err(ConflictError {
                    mnemonic: def.mnemonic,
                    existing: d.mnemonic,
                });
            }
        }
        let slot = def.id.0 as usize;
        if self.id_index.len() <= slot {
            self.id_index.resize(slot + 1, 0);
        }
        self.id_index[slot] = self.defs.len() as u32 + 1;
        self.defs.push(def);
        Ok(())
    }

    /// All instruction definitions in registration order.
    pub fn defs(&self) -> &[CustomInstDef] {
        &self.defs
    }

    /// Looks up a definition by id (constant time — this sits on the
    /// simulator's instruction dispatch path).
    #[inline]
    pub fn by_id(&self, id: CustomId) -> Option<&CustomInstDef> {
        let slot = *self.id_index.get(id.0 as usize)?;
        if slot == 0 {
            None
        } else {
            Some(&self.defs[slot as usize - 1])
        }
    }

    /// Looks up a definition by mnemonic.
    pub fn by_mnemonic(&self, mnemonic: &str) -> Option<&CustomInstDef> {
        self.defs.iter().find(|d| d.mnemonic == mnemonic)
    }

    /// Finds the definition matching a raw 32-bit encoding, if any.
    pub fn match_encoding(&self, raw: u32) -> Option<&CustomInstDef> {
        let opcode = (raw & 0x7f) as u8;
        let funct3 = ((raw >> 12) & 0x7) as u8;
        self.defs.iter().find(|d| match d.format {
            CustomFormat::R4 {
                opcode: op,
                funct3: f3,
                funct2,
            } => op == opcode && f3 == funct3 && ((raw >> 25) & 0x3) as u8 == funct2,
            CustomFormat::RShamt {
                opcode: op,
                funct3: f3,
                bit31,
            } => op == opcode && f3 == funct3 && ((raw >> 31) != 0) == bit31,
        })
    }

    /// Merges another extension's definitions into this one.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConflictError`] encountered; definitions
    /// registered before the conflict remain.
    pub fn merge(&mut self, other: &IsaExtension) -> Result<(), ConflictError> {
        for d in other.defs() {
            self.define(d.clone())?;
        }
        Ok(())
    }
}

/// Convenience: encodes the operand fields of a custom instruction into
/// its raw binary form according to `format`.
///
/// Used by both the encoder and the extension crates' tests.
pub fn encode_custom(format: CustomFormat, rd: Reg, rs1: Reg, rs2: Reg, rs3: Reg, imm: u8) -> u32 {
    let rd = rd.number() as u32;
    let rs1 = rs1.number() as u32;
    let rs2 = rs2.number() as u32;
    match format {
        CustomFormat::R4 {
            opcode,
            funct3,
            funct2,
        } => {
            let rs3 = rs3.number() as u32;
            (rs3 << 27)
                | ((funct2 as u32) << 25)
                | (rs2 << 20)
                | (rs1 << 15)
                | ((funct3 as u32) << 12)
                | (rd << 7)
                | opcode as u32
        }
        CustomFormat::RShamt {
            opcode,
            funct3,
            bit31,
        } => {
            ((bit31 as u32) << 31)
                | (((imm & 0x3f) as u32) << 25)
                | (rs2 << 20)
                | (rs1 << 15)
                | ((funct3 as u32) << 12)
                | (rd << 7)
                | opcode as u32
        }
    }
}

/// Extracts `(rd, rs1, rs2, rs3, imm)` from a raw encoding according to
/// `format` (the inverse of [`encode_custom`]).
pub fn decode_custom_operands(format: CustomFormat, raw: u32) -> (Reg, Reg, Reg, Reg, u8) {
    let rd = Reg::from_number(((raw >> 7) & 0x1f) as u8).expect("5-bit field");
    let rs1 = Reg::from_number(((raw >> 15) & 0x1f) as u8).expect("5-bit field");
    let rs2 = Reg::from_number(((raw >> 20) & 0x1f) as u8).expect("5-bit field");
    match format {
        CustomFormat::R4 { .. } => {
            let rs3 = Reg::from_number(((raw >> 27) & 0x1f) as u8).expect("5-bit field");
            (rd, rs1, rs2, rs3, 0)
        }
        CustomFormat::RShamt { .. } => {
            let imm = ((raw >> 25) & 0x3f) as u8;
            (rd, rs1, rs2, Reg::Zero, imm)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(a: CustomArgs) -> u64 {
        a.rs1 ^ a.rs2 ^ a.rs3 ^ a.imm as u64
    }

    fn r4(funct2: u8) -> CustomFormat {
        CustomFormat::R4 {
            opcode: 0b1111011,
            funct3: 0b111,
            funct2,
        }
    }

    #[test]
    fn define_and_lookup() {
        let mut e = IsaExtension::new("t");
        e.define(CustomInstDef {
            id: CustomId(1),
            mnemonic: "foo",
            format: r4(0),
            exec: dummy,
            unit: ExecUnit::Xmul,
        })
        .unwrap();
        assert!(e.by_id(CustomId(1)).is_some());
        assert!(e.by_mnemonic("foo").is_some());
        assert!(e.by_mnemonic("bar").is_none());
    }

    #[test]
    fn conflicting_encoding_rejected() {
        let mut e = IsaExtension::new("t");
        let mk = |id, m| CustomInstDef {
            id: CustomId(id),
            mnemonic: m,
            format: r4(0),
            exec: dummy,
            unit: ExecUnit::Alu,
        };
        e.define(mk(1, "foo")).unwrap();
        let err = e.define(mk(2, "bar")).unwrap_err();
        assert_eq!(err.existing, "foo");
    }

    #[test]
    fn conflicting_mnemonic_rejected() {
        let mut e = IsaExtension::new("t");
        e.define(CustomInstDef {
            id: CustomId(1),
            mnemonic: "foo",
            format: r4(0),
            exec: dummy,
            unit: ExecUnit::Alu,
        })
        .unwrap();
        let err = e
            .define(CustomInstDef {
                id: CustomId(2),
                mnemonic: "foo",
                format: r4(1),
                exec: dummy,
                unit: ExecUnit::Alu,
            })
            .unwrap_err();
        assert_eq!(err.mnemonic, "foo");
    }

    #[test]
    fn custom_encode_decode_round_trip_r4() {
        let f = r4(0b10);
        let raw = encode_custom(f, Reg::A0, Reg::A1, Reg::A2, Reg::T3, 0);
        assert_eq!(raw & 0x7f, 0b1111011);
        let (rd, rs1, rs2, rs3, imm) = decode_custom_operands(f, raw);
        assert_eq!(
            (rd, rs1, rs2, rs3, imm),
            (Reg::A0, Reg::A1, Reg::A2, Reg::T3, 0)
        );
    }

    #[test]
    fn custom_encode_decode_round_trip_rshamt() {
        let f = CustomFormat::RShamt {
            opcode: 0b0101011,
            funct3: 0b111,
            bit31: true,
        };
        let raw = encode_custom(f, Reg::T0, Reg::T1, Reg::T2, Reg::Zero, 57);
        assert_eq!(raw >> 31, 1);
        let (rd, rs1, rs2, rs3, imm) = decode_custom_operands(f, raw);
        assert_eq!(
            (rd, rs1, rs2, rs3, imm),
            (Reg::T0, Reg::T1, Reg::T2, Reg::Zero, 57)
        );
    }

    #[test]
    fn match_encoding_selects_by_funct2() {
        let mut e = IsaExtension::new("t");
        for (id, m, f2) in [(1u16, "a", 0u8), (2, "b", 1)] {
            e.define(CustomInstDef {
                id: CustomId(id),
                mnemonic: m,
                format: r4(f2),
                exec: dummy,
                unit: ExecUnit::Xmul,
            })
            .unwrap();
        }
        let raw_a = encode_custom(r4(0), Reg::A0, Reg::A1, Reg::A2, Reg::A3, 0);
        let raw_b = encode_custom(r4(1), Reg::A0, Reg::A1, Reg::A2, Reg::A3, 0);
        assert_eq!(e.match_encoding(raw_a).unwrap().mnemonic, "a");
        assert_eq!(e.match_encoding(raw_b).unwrap().mnemonic, "b");
        let raw_c = encode_custom(r4(3), Reg::A0, Reg::A1, Reg::A2, Reg::A3, 0);
        assert!(e.match_encoding(raw_c).is_none());
    }

    #[test]
    fn merge_propagates_conflicts() {
        let mut a = IsaExtension::new("a");
        let mut b = IsaExtension::new("b");
        let mk = |id: u16, m: &'static str, f2| CustomInstDef {
            id: CustomId(id),
            mnemonic: m,
            format: r4(f2),
            exec: dummy,
            unit: ExecUnit::Alu,
        };
        a.define(mk(1, "x", 0)).unwrap();
        b.define(mk(2, "y", 0)).unwrap(); // same encoding point as "x"
        assert!(a.merge(&b).is_err());
    }
}
