//! Typed representation of the simulated instruction set.
//!
//! The model covers RV64I and RV64M — the instruction classes that MPI
//! arithmetic kernels use (§2 of the paper: `add`, `sub`, `slli`, `srli`,
//! `srai`, `sltu`, `mul`, `mulhu`, loads/stores, …) — plus a
//! [`Inst::Custom`] variant through which instruction-set extensions are
//! threaded (see [`crate::ext`]).
//!
//! The RV64C (compressed) extension changes code size, not semantics or —
//! on the in-order Rocket pipeline — cycle counts of cache-resident
//! kernels, so it is intentionally not modelled; all instructions are
//! 32 bits wide.

use crate::ext::CustomId;
use crate::reg::Reg;
use std::fmt;

/// Register–register ALU and multiply/divide operations (R-type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `add`: 64-bit addition.
    Add,
    /// `sub`: 64-bit subtraction.
    Sub,
    /// `sll`: logical left shift by `rs2[5:0]`.
    Sll,
    /// `slt`: signed set-less-than.
    Slt,
    /// `sltu`: unsigned set-less-than (the carry/borrow detector of
    /// RISC-V MPI code).
    Sltu,
    /// `xor`: bit-wise exclusive or.
    Xor,
    /// `srl`: logical right shift by `rs2[5:0]`.
    Srl,
    /// `sra`: arithmetic right shift by `rs2[5:0]`.
    Sra,
    /// `or`: bit-wise inclusive or.
    Or,
    /// `and`: bit-wise and.
    And,
    /// `addw`: 32-bit addition, sign-extended.
    Addw,
    /// `subw`: 32-bit subtraction, sign-extended.
    Subw,
    /// `sllw`: 32-bit left shift, sign-extended.
    Sllw,
    /// `srlw`: 32-bit logical right shift, sign-extended.
    Srlw,
    /// `sraw`: 32-bit arithmetic right shift, sign-extended.
    Sraw,
    /// `mul`: low 64 bits of the product.
    Mul,
    /// `mulh`: high 64 bits of the signed×signed product.
    Mulh,
    /// `mulhsu`: high 64 bits of the signed×unsigned product.
    Mulhsu,
    /// `mulhu`: high 64 bits of the unsigned×unsigned product.
    Mulhu,
    /// `div`: signed division.
    Div,
    /// `divu`: unsigned division.
    Divu,
    /// `rem`: signed remainder.
    Rem,
    /// `remu`: unsigned remainder.
    Remu,
    /// `mulw`: 32-bit multiply, sign-extended.
    Mulw,
    /// `divw`: 32-bit signed division, sign-extended.
    Divw,
    /// `divuw`: 32-bit unsigned division, sign-extended.
    Divuw,
    /// `remw`: 32-bit signed remainder, sign-extended.
    Remw,
    /// `remuw`: 32-bit unsigned remainder, sign-extended.
    Remuw,
}

impl AluOp {
    /// The assembler mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
            AluOp::Addw => "addw",
            AluOp::Subw => "subw",
            AluOp::Sllw => "sllw",
            AluOp::Srlw => "srlw",
            AluOp::Sraw => "sraw",
            AluOp::Mul => "mul",
            AluOp::Mulh => "mulh",
            AluOp::Mulhsu => "mulhsu",
            AluOp::Mulhu => "mulhu",
            AluOp::Div => "div",
            AluOp::Divu => "divu",
            AluOp::Rem => "rem",
            AluOp::Remu => "remu",
            AluOp::Mulw => "mulw",
            AluOp::Divw => "divw",
            AluOp::Divuw => "divuw",
            AluOp::Remw => "remw",
            AluOp::Remuw => "remuw",
        }
    }

    /// Whether the operation executes on the (extended) multiplier unit,
    /// i.e. has the 2-stage pipelined-multiplier timing of the paper.
    pub const fn is_multiply(self) -> bool {
        matches!(
            self,
            AluOp::Mul | AluOp::Mulh | AluOp::Mulhsu | AluOp::Mulhu | AluOp::Mulw
        )
    }

    /// Whether the operation is an iterative divide/remainder.
    pub const fn is_divide(self) -> bool {
        matches!(
            self,
            AluOp::Div
                | AluOp::Divu
                | AluOp::Rem
                | AluOp::Remu
                | AluOp::Divw
                | AluOp::Divuw
                | AluOp::Remw
                | AluOp::Remuw
        )
    }
}

/// Register–immediate ALU operations (I-type, including immediate shifts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluImmOp {
    /// `addi`: add sign-extended 12-bit immediate.
    Addi,
    /// `slti`: signed set-less-than immediate.
    Slti,
    /// `sltiu`: unsigned set-less-than immediate.
    Sltiu,
    /// `xori`: xor immediate.
    Xori,
    /// `ori`: or immediate.
    Ori,
    /// `andi`: and immediate.
    Andi,
    /// `slli`: left shift by 6-bit shamt.
    Slli,
    /// `srli`: logical right shift by 6-bit shamt.
    Srli,
    /// `srai`: arithmetic right shift by 6-bit shamt.
    Srai,
    /// `addiw`: 32-bit add immediate, sign-extended.
    Addiw,
    /// `slliw`: 32-bit left shift, sign-extended.
    Slliw,
    /// `srliw`: 32-bit logical right shift, sign-extended.
    Srliw,
    /// `sraiw`: 32-bit arithmetic right shift, sign-extended.
    Sraiw,
}

impl AluImmOp {
    /// The assembler mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluImmOp::Addi => "addi",
            AluImmOp::Slti => "slti",
            AluImmOp::Sltiu => "sltiu",
            AluImmOp::Xori => "xori",
            AluImmOp::Ori => "ori",
            AluImmOp::Andi => "andi",
            AluImmOp::Slli => "slli",
            AluImmOp::Srli => "srli",
            AluImmOp::Srai => "srai",
            AluImmOp::Addiw => "addiw",
            AluImmOp::Slliw => "slliw",
            AluImmOp::Srliw => "srliw",
            AluImmOp::Sraiw => "sraiw",
        }
    }

    /// Whether the immediate is a shift amount (6 bits for RV64 shifts,
    /// 5 bits for the `*w` forms) rather than a sign-extended 12-bit value.
    pub const fn is_shift(self) -> bool {
        matches!(
            self,
            AluImmOp::Slli
                | AluImmOp::Srli
                | AluImmOp::Srai
                | AluImmOp::Slliw
                | AluImmOp::Srliw
                | AluImmOp::Sraiw
        )
    }
}

/// Conditional branch comparisons (B-type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// `beq`: branch if equal.
    Beq,
    /// `bne`: branch if not equal.
    Bne,
    /// `blt`: branch if signed less-than.
    Blt,
    /// `bge`: branch if signed greater-or-equal.
    Bge,
    /// `bltu`: branch if unsigned less-than.
    Bltu,
    /// `bgeu`: branch if unsigned greater-or-equal.
    Bgeu,
}

impl BranchOp {
    /// The assembler mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            BranchOp::Beq => "beq",
            BranchOp::Bne => "bne",
            BranchOp::Blt => "blt",
            BranchOp::Bge => "bge",
            BranchOp::Bltu => "bltu",
            BranchOp::Bgeu => "bgeu",
        }
    }

    /// Evaluates the branch condition on two register values.
    pub fn taken(self, a: u64, b: u64) -> bool {
        match self {
            BranchOp::Beq => a == b,
            BranchOp::Bne => a != b,
            BranchOp::Blt => (a as i64) < (b as i64),
            BranchOp::Bge => (a as i64) >= (b as i64),
            BranchOp::Bltu => a < b,
            BranchOp::Bgeu => a >= b,
        }
    }
}

/// Memory load widths and sign treatment (I-type loads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// `lb`: signed byte.
    Lb,
    /// `lh`: signed half-word.
    Lh,
    /// `lw`: signed word.
    Lw,
    /// `ld`: double-word.
    Ld,
    /// `lbu`: unsigned byte.
    Lbu,
    /// `lhu`: unsigned half-word.
    Lhu,
    /// `lwu`: unsigned word.
    Lwu,
}

impl LoadOp {
    /// The assembler mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            LoadOp::Lb => "lb",
            LoadOp::Lh => "lh",
            LoadOp::Lw => "lw",
            LoadOp::Ld => "ld",
            LoadOp::Lbu => "lbu",
            LoadOp::Lhu => "lhu",
            LoadOp::Lwu => "lwu",
        }
    }

    /// Access width in bytes.
    pub const fn width(self) -> u64 {
        match self {
            LoadOp::Lb | LoadOp::Lbu => 1,
            LoadOp::Lh | LoadOp::Lhu => 2,
            LoadOp::Lw | LoadOp::Lwu => 4,
            LoadOp::Ld => 8,
        }
    }
}

/// Memory store widths (S-type).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// `sb`: byte.
    Sb,
    /// `sh`: half-word.
    Sh,
    /// `sw`: word.
    Sw,
    /// `sd`: double-word.
    Sd,
}

impl StoreOp {
    /// The assembler mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            StoreOp::Sb => "sb",
            StoreOp::Sh => "sh",
            StoreOp::Sw => "sw",
            StoreOp::Sd => "sd",
        }
    }

    /// Access width in bytes.
    pub const fn width(self) -> u64 {
        match self {
            StoreOp::Sb => 1,
            StoreOp::Sh => 2,
            StoreOp::Sw => 4,
            StoreOp::Sd => 8,
        }
    }
}

/// A decoded instruction.
///
/// Branch, jump, load and store offsets are byte offsets held as `i32`;
/// the encoder validates their ranges. ALU immediates are the
/// sign-extended architectural value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `lui rd, imm`: load upper immediate (`imm` is the final value's
    /// upper 20 bits, i.e. the instruction writes `imm << 12`
    /// sign-extended).
    Lui { rd: Reg, imm20: i32 },
    /// `auipc rd, imm`: add `imm << 12` to the PC.
    Auipc { rd: Reg, imm20: i32 },
    /// `jal rd, offset`: jump and link.
    Jal { rd: Reg, offset: i32 },
    /// `jalr rd, offset(rs1)`: indirect jump and link.
    Jalr { rd: Reg, rs1: Reg, offset: i32 },
    /// Conditional branch.
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Memory load: `rd <- mem[rs1 + offset]`.
    Load {
        op: LoadOp,
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    /// Memory store: `mem[rs1 + offset] <- rs2`.
    Store {
        op: StoreOp,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Register–immediate ALU operation.
    OpImm {
        op: AluImmOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Register–register ALU / multiply / divide operation.
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `fence`: treated as a no-op by this single-hart model.
    Fence,
    /// `ecall`: environment call; terminates a [`crate::Machine`] run.
    Ecall,
    /// `ebreak`: breakpoint; terminates a [`crate::Machine`] run.
    Ebreak,
    /// A custom (ISE) instruction, resolved against the machine's
    /// registered extensions. `rs3` and `imm` are interpreted according
    /// to the instruction's [`crate::ext::CustomFormat`].
    Custom {
        id: CustomId,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
        rs3: Reg,
        imm: u8,
    },
}

impl Inst {
    /// The destination register, when the instruction writes one
    /// (writes to `x0` still count; the CPU discards them).
    pub fn def(&self) -> Option<Reg> {
        match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::OpImm { rd, .. }
            | Inst::Op { rd, .. }
            | Inst::Custom { rd, .. } => Some(rd),
            Inst::Branch { .. } | Inst::Store { .. } | Inst::Fence | Inst::Ecall | Inst::Ebreak => {
                None
            }
        }
    }

    /// The source registers read by the instruction, in operand order.
    pub fn uses(&self) -> Vec<Reg> {
        match *self {
            Inst::Lui { .. } | Inst::Auipc { .. } | Inst::Jal { .. } => vec![],
            Inst::Jalr { rs1, .. } => vec![rs1],
            Inst::Branch { rs1, rs2, .. } => vec![rs1, rs2],
            Inst::Load { rs1, .. } => vec![rs1],
            Inst::Store { rs1, rs2, .. } => vec![rs1, rs2],
            Inst::OpImm { rs1, .. } => vec![rs1],
            Inst::Op { rs1, rs2, .. } => vec![rs1, rs2],
            Inst::Fence | Inst::Ecall | Inst::Ebreak => vec![],
            Inst::Custom { rs1, rs2, rs3, .. } => vec![rs1, rs2, rs3],
        }
    }

    /// Whether this is a control-transfer instruction (branch or jump).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. }
        )
    }
}

impl fmt::Display for Inst {
    /// Formats in standard assembler syntax, e.g. `add a0, a1, a2` or
    /// `ld t0, 8(a1)`. Custom instructions print as
    /// `custom.<id> rd, rs1, rs2, rs3/imm`; the machine-level
    /// disassembler in [`crate::asm`] substitutes real mnemonics using
    /// the extension registry.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Lui { rd, imm20 } => write!(f, "lui {rd}, {:#x}", imm20),
            Inst::Auipc { rd, imm20 } => write!(f, "auipc {rd}, {:#x}", imm20),
            Inst::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Inst::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs1}, {rs2}, {offset}", op.mnemonic()),
            Inst::Load {
                op,
                rd,
                rs1,
                offset,
            } => write!(f, "{} {rd}, {offset}({rs1})", op.mnemonic()),
            Inst::Store {
                op,
                rs1,
                rs2,
                offset,
            } => write!(f, "{} {rs2}, {offset}({rs1})", op.mnemonic()),
            Inst::OpImm { op, rd, rs1, imm } => {
                write!(f, "{} {rd}, {rs1}, {imm}", op.mnemonic())
            }
            Inst::Op { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Inst::Fence => write!(f, "fence"),
            Inst::Ecall => write!(f, "ecall"),
            Inst::Ebreak => write!(f, "ebreak"),
            Inst::Custom {
                id,
                rd,
                rs1,
                rs2,
                rs3,
                imm,
            } => write!(f, "custom.{} {rd}, {rs1}, {rs2}, {rs3}/{imm}", id.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn def_and_uses() {
        let i = Inst::Op {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(i.def(), Some(Reg::A0));
        assert_eq!(i.uses(), vec![Reg::A1, Reg::A2]);

        let s = Inst::Store {
            op: StoreOp::Sd,
            rs1: Reg::A0,
            rs2: Reg::T0,
            offset: 8,
        };
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), vec![Reg::A0, Reg::T0]);
    }

    #[test]
    fn multiply_classification() {
        assert!(AluOp::Mul.is_multiply());
        assert!(AluOp::Mulhu.is_multiply());
        assert!(!AluOp::Add.is_multiply());
        assert!(AluOp::Divu.is_divide());
        assert!(!AluOp::Mulhu.is_divide());
    }

    #[test]
    fn branch_conditions() {
        assert!(BranchOp::Beq.taken(5, 5));
        assert!(!BranchOp::Bne.taken(5, 5));
        assert!(BranchOp::Blt.taken(u64::MAX, 0)); // -1 < 0 signed
        assert!(!BranchOp::Bltu.taken(u64::MAX, 0)); // but not unsigned
        assert!(BranchOp::Bgeu.taken(u64::MAX, 0));
        assert!(BranchOp::Bge.taken(3, 3));
    }

    #[test]
    fn display_forms() {
        let i = Inst::Load {
            op: LoadOp::Ld,
            rd: Reg::T0,
            rs1: Reg::A1,
            offset: 16,
        };
        assert_eq!(i.to_string(), "ld t0, 16(a1)");
        let b = Inst::Branch {
            op: BranchOp::Bne,
            rs1: Reg::A0,
            rs2: Reg::Zero,
            offset: -8,
        };
        assert_eq!(b.to_string(), "bne a0, zero, -8");
    }

    #[test]
    fn widths() {
        assert_eq!(LoadOp::Ld.width(), 8);
        assert_eq!(LoadOp::Lbu.width(), 1);
        assert_eq!(StoreOp::Sw.width(), 4);
    }
}
