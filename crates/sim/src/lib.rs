//! # mpise-sim — RV64 instruction-set simulator with a Rocket-style timing model
//!
//! This crate is the execution substrate for the DAC'24 reproduction
//! "RISC-V Instruction Set Extensions for Multi-Precision Integer
//! Arithmetic". It provides:
//!
//! * a typed model of the RV64I + M instructions relevant to
//!   multi-precision integer (MPI) arithmetic ([`Inst`]),
//! * binary encoding and decoding ([`encode`], [`decode`]),
//! * an assembler/disassembler for both programmatic ([`asm::Assembler`])
//!   and textual ([`asm::parse_program`]) kernel authoring,
//! * an architectural simulator ([`Machine`]) with byte-addressed memory,
//! * a cycle-accurate-in-spirit timing model of a 5-stage in-order core
//!   with a 2-stage pipelined multiplier ([`timing::PipelineModel`]),
//!   mirroring the 64-bit Rocket core used in the paper, and
//! * an extension hook ([`ext::IsaExtension`]) through which custom
//!   instruction-set extensions (ISEs) — such as the paper's `maddlu`,
//!   `maddhu`, `cadd`, `madd57lu`, `madd57hu` and `sraiadd` — plug into
//!   decode, execution and timing.
//!
//! The simulator is instruction-accurate: every architectural effect is
//! modelled exactly. The cycle model is a deliberately simple in-order
//! issue model with operand forwarding, which is faithful for the
//! straight-line, cache-resident kernels measured in the paper.
//!
//! ## Example
//!
//! ```
//! use mpise_sim::{Assembler, Machine, Reg};
//!
//! // a0 = a1 + a2, then stop.
//! let mut a = Assembler::new();
//! a.add(Reg::A0, Reg::A1, Reg::A2);
//! a.ebreak();
//!
//! let mut m = Machine::new();
//! m.load_program(&a.finish());
//! m.cpu.write_reg(Reg::A1, 20);
//! m.cpu.write_reg(Reg::A2, 22);
//! let stats = m.run().unwrap();
//! assert_eq!(m.cpu.read_reg(Reg::A0), 42);
//! assert_eq!(stats.instret, 2);
//! ```

pub mod asm;
pub mod cpu;
pub mod decode;
pub mod encode;
pub mod ext;
pub mod inst;
pub mod machine;
pub mod mem;
pub mod profile;
pub mod reg;
pub mod timing;
pub mod trace;

pub use asm::Assembler;
pub use cpu::{Cpu, Trap};
pub use ext::{CustomArgs, CustomFormat, CustomInstDef, ExecUnit, IsaExtension};
pub use inst::Inst;
pub use machine::{Machine, RunStats};
pub use mem::Memory;
pub use reg::Reg;
pub use timing::{PipelineModel, TimingConfig};
