//! The top-level simulator: CPU + memory + program + extensions + timing.

use crate::asm::Program;
use crate::cpu::{Cpu, Trap};
use crate::ext::IsaExtension;
use crate::inst::Inst;
use crate::mem::Memory;
use crate::reg::Reg;
use crate::timing::{PipelineModel, TimingConfig, TimingStats};
use crate::trace::Tracer;

/// Default base address of loaded programs.
pub const PROG_BASE: u64 = 0x0000_1000;
/// Default base address of data memory.
pub const DATA_BASE: u64 = 0x8000_0000;
/// Default data memory size (1 MiB).
pub const DATA_SIZE: usize = 1 << 20;
/// Default instruction budget before a run aborts (guards against
/// runaway loops in tests).
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// How a [`Machine::run`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// `ebreak` executed.
    Breakpoint,
    /// `ecall` executed.
    EnvironmentCall,
    /// Execution returned to the sentinel return address installed by
    /// [`Machine::call`].
    Returned,
}

/// Result of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions retired.
    pub instret: u64,
    /// Cycles elapsed under the pipeline model.
    pub cycles: u64,
    /// Why the run stopped.
    pub halt: Halt,
    /// Detailed per-class counters.
    pub timing: TimingStats,
}

impl RunStats {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instret == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instret as f64
        }
    }
}

/// Error produced by [`Machine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The CPU trapped (memory fault, illegal instruction, PC escape).
    Trap(Trap),
    /// The instruction budget ([`Machine::set_fuel`]) was exhausted.
    OutOfFuel {
        /// The budget that was exhausted.
        fuel: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Trap(t) => write!(f, "trap: {t}"),
            RunError::OutOfFuel { fuel } => write!(f, "out of fuel after {fuel} instructions"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<Trap> for RunError {
    fn from(t: Trap) -> Self {
        RunError::Trap(t)
    }
}

/// A complete simulated RV64 machine.
///
/// The program lives in a dedicated instruction region starting at
/// [`PROG_BASE`] (Harvard-style — kernels address data only through
/// pointers, matching how the paper's kernels receive operand pointers
/// in `a0..a2`). Data memory starts at [`DATA_BASE`]; the stack pointer
/// is initialised to its top.
///
/// # Examples
///
/// Calling a two-argument "function" with [`Machine::call`]:
///
/// ```
/// use mpise_sim::{Assembler, Machine, Reg};
/// let mut a = Assembler::new();
/// a.mul(Reg::A0, Reg::A0, Reg::A1);
/// a.ret();
/// let mut m = Machine::new();
/// m.load_program(&a.finish());
/// let stats = m.call(&[(Reg::A0, 6), (Reg::A1, 7)]).unwrap();
/// assert_eq!(m.cpu.read_reg(Reg::A0), 42);
/// assert!(stats.cycles >= stats.instret);
/// ```
#[derive(Debug)]
pub struct Machine {
    /// Architectural CPU state.
    pub cpu: Cpu,
    /// Data memory.
    pub mem: Memory,
    ext: IsaExtension,
    program: Vec<Inst>,
    prog_base: u64,
    pipeline: PipelineModel,
    fuel: u64,
    tracer: Option<Tracer>,
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

impl Machine {
    /// Creates a machine with default memory, no extensions and the
    /// Rocket-like default timing.
    pub fn new() -> Self {
        Self::with_ext(IsaExtension::new("rv64im"))
    }

    /// Creates a machine with the given ISA extension attached.
    pub fn with_ext(ext: IsaExtension) -> Self {
        let mut cpu = Cpu::new();
        cpu.write_reg(Reg::Sp, DATA_BASE + DATA_SIZE as u64);
        Machine {
            cpu,
            mem: Memory::new(DATA_BASE, DATA_SIZE),
            ext,
            program: Vec::new(),
            prog_base: PROG_BASE,
            pipeline: PipelineModel::new(TimingConfig::default()),
            fuel: DEFAULT_FUEL,
            tracer: None,
        }
    }

    /// Replaces the timing configuration (resets the pipeline clock).
    pub fn set_timing(&mut self, config: TimingConfig) {
        self.pipeline = PipelineModel::new(config);
    }

    /// Sets the instruction budget for subsequent runs.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Attaches an execution tracer (see [`crate::trace`]).
    pub fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.tracer = tracer;
    }

    /// Takes the tracer back out, with whatever it recorded.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    /// The attached extension registry.
    pub fn ext(&self) -> &IsaExtension {
        &self.ext
    }

    /// Loads `program` at [`PROG_BASE`] and points the PC at its first
    /// instruction.
    pub fn load_program(&mut self, program: &Program) {
        self.program = program.insts().to_vec();
        self.cpu.pc = self.prog_base;
    }

    /// Base address of the loaded program.
    pub fn prog_base(&self) -> u64 {
        self.prog_base
    }

    /// Sentinel address used by [`Machine::call`] as the return address:
    /// one instruction past the end of the program.
    pub fn return_sentinel(&self) -> u64 {
        self.prog_base + 4 * self.program.len() as u64
    }

    fn fetch(&self) -> Result<&Inst, Trap> {
        let pc = self.cpu.pc;
        if pc < self.prog_base || !pc.is_multiple_of(4) {
            return Err(Trap::PcOutOfProgram { pc });
        }
        let idx = ((pc - self.prog_base) / 4) as usize;
        self.program.get(idx).ok_or(Trap::PcOutOfProgram { pc })
    }

    /// Runs from the current PC until `ebreak`, `ecall`, or return to
    /// the sentinel address. The pipeline clock continues from where it
    /// was; use [`Machine::reset_clock`] between measurements.
    ///
    /// # Errors
    ///
    /// [`RunError::Trap`] on faults, [`RunError::OutOfFuel`] when the
    /// instruction budget is exhausted.
    pub fn run(&mut self) -> Result<RunStats, RunError> {
        let start_instret = self.pipeline.stats().instret();
        let start_cycles = self.pipeline.cycles();
        let sentinel = self.return_sentinel();
        let mut fuel = self.fuel;
        loop {
            if self.cpu.pc == sentinel {
                return Ok(self.finish_stats(start_instret, start_cycles, Halt::Returned));
            }
            if fuel == 0 {
                return Err(RunError::OutOfFuel { fuel: self.fuel });
            }
            fuel -= 1;

            let inst = *self.fetch().map_err(RunError::Trap)?;
            let pc_before = self.cpu.pc;
            let result = self.cpu.step(&inst, &mut self.mem, &self.ext);

            // Timing: every attempted instruction that architecturally
            // retires (including the trapping ebreak/ecall) is costed.
            let taken = inst.is_control() && self.cpu.pc != pc_before.wrapping_add(4);
            let unit = match inst {
                Inst::Custom { id, .. } => self.ext.by_id(id).map(|d| d.unit),
                _ => None,
            };
            self.pipeline.retire(&inst, taken, unit);
            if let Some(t) = &mut self.tracer {
                t.record(pc_before, &inst, &self.cpu);
            }

            match result {
                Ok(()) => {}
                Err(Trap::Breakpoint) => {
                    return Ok(self.finish_stats(start_instret, start_cycles, Halt::Breakpoint));
                }
                Err(Trap::EnvironmentCall) => {
                    return Ok(self.finish_stats(
                        start_instret,
                        start_cycles,
                        Halt::EnvironmentCall,
                    ));
                }
                Err(t) => return Err(RunError::Trap(t)),
            }
        }
    }

    fn finish_stats(&self, start_instret: u64, start_cycles: u64, halt: Halt) -> RunStats {
        RunStats {
            instret: self.pipeline.stats().instret() - start_instret,
            cycles: self.pipeline.cycles() - start_cycles,
            halt,
            timing: *self.pipeline.stats(),
        }
    }

    /// Resets the pipeline clock and scoreboard (architectural state is
    /// untouched). Call between back-to-back measurements.
    pub fn reset_clock(&mut self) {
        self.pipeline.reset();
    }

    /// Calls the loaded program as a function: sets the given argument
    /// registers, points `ra` at the return sentinel, runs to
    /// completion, and reports the stats of just this call.
    ///
    /// The pipeline clock is reset first, so `stats.cycles` is the cost
    /// of the call alone — this is how all Table 4 rows are measured.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from [`Machine::run`].
    pub fn call(&mut self, args: &[(Reg, u64)]) -> Result<RunStats, RunError> {
        self.reset_clock();
        self.cpu.pc = self.prog_base;
        self.cpu.write_reg(Reg::Ra, self.return_sentinel());
        for &(r, v) in args {
            self.cpu.write_reg(r, v);
        }
        self.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    #[test]
    fn run_to_ebreak() {
        let mut a = Assembler::new();
        a.li(Reg::T0, 5);
        a.li(Reg::T1, 7);
        a.add(Reg::A0, Reg::T0, Reg::T1);
        a.ebreak();
        let mut m = Machine::new();
        m.load_program(&a.finish());
        let stats = m.run().unwrap();
        assert_eq!(m.cpu.read_reg(Reg::A0), 12);
        assert_eq!(stats.halt, Halt::Breakpoint);
        assert_eq!(stats.instret, 4);
    }

    #[test]
    fn call_returns_via_sentinel() {
        let mut a = Assembler::new();
        a.add(Reg::A0, Reg::A0, Reg::A1);
        a.ret();
        let mut m = Machine::new();
        m.load_program(&a.finish());
        let stats = m.call(&[(Reg::A0, 1), (Reg::A1, 2)]).unwrap();
        assert_eq!(stats.halt, Halt::Returned);
        assert_eq!(m.cpu.read_reg(Reg::A0), 3);
    }

    #[test]
    fn loop_executes_correct_trip_count() {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.li(Reg::T0, 100);
        a.li(Reg::T1, 0);
        a.bind(top);
        a.addi(Reg::T1, Reg::T1, 3);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, top);
        a.ebreak();
        let mut m = Machine::new();
        m.load_program(&a.finish());
        let stats = m.run().unwrap();
        assert_eq!(m.cpu.read_reg(Reg::T1), 300);
        // 2 setup + 100*3 loop + ebreak
        assert_eq!(stats.instret, 2 + 300 + 1);
        // 99 taken branches pay the flush penalty.
        assert_eq!(stats.timing.flush_cycles, 99 * 2);
    }

    #[test]
    fn memory_access_through_pointers() {
        let mut a = Assembler::new();
        a.ld(Reg::T0, 0, Reg::A0);
        a.ld(Reg::T1, 8, Reg::A0);
        a.add(Reg::T0, Reg::T0, Reg::T1);
        a.sd(Reg::T0, 0, Reg::A1);
        a.ret();
        let mut m = Machine::new();
        m.load_program(&a.finish());
        m.mem.write_limbs(DATA_BASE, &[30, 12]).unwrap();
        m.call(&[(Reg::A0, DATA_BASE), (Reg::A1, DATA_BASE + 64)])
            .unwrap();
        assert_eq!(m.mem.load_u64(DATA_BASE + 64).unwrap(), 42);
    }

    #[test]
    fn out_of_fuel() {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.bind(top);
        a.j(top);
        let mut m = Machine::new();
        m.load_program(&a.finish());
        m.set_fuel(1000);
        assert!(matches!(m.run(), Err(RunError::OutOfFuel { .. })));
    }

    #[test]
    fn pc_escape_is_a_trap() {
        let mut a = Assembler::new();
        a.jalr(Reg::Zero, 0, Reg::Zero); // jump to 0, outside program
        let mut m = Machine::new();
        m.load_program(&a.finish());
        assert!(matches!(
            m.run(),
            Err(RunError::Trap(Trap::PcOutOfProgram { .. }))
        ));
    }

    #[test]
    fn call_resets_clock_per_invocation() {
        let mut a = Assembler::new();
        a.add(Reg::A0, Reg::A0, Reg::A1);
        a.ret();
        let mut m = Machine::new();
        m.load_program(&a.finish());
        let s1 = m.call(&[(Reg::A0, 1), (Reg::A1, 2)]).unwrap();
        let s2 = m.call(&[(Reg::A0, 3), (Reg::A1, 4)]).unwrap();
        assert_eq!(s1.cycles, s2.cycles);
    }
}
