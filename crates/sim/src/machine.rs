//! The top-level simulator: CPU + memory + program + extensions + timing.

use crate::asm::Program;
use crate::cpu::{Cpu, Trap};
use crate::ext::{CustomArgs, IsaExtension};
use crate::inst::Inst;
use crate::mem::Memory;
use crate::profile::PcProfiler;
use crate::reg::Reg;
use crate::timing::{PipelineModel, PreDecoded, TimingConfig, TimingStats};
use crate::trace::Tracer;

/// Default base address of loaded programs.
pub const PROG_BASE: u64 = 0x0000_1000;
/// Default base address of data memory.
pub const DATA_BASE: u64 = 0x8000_0000;
/// Default data memory size (1 MiB).
pub const DATA_SIZE: usize = 1 << 20;
/// Default instruction budget before a run aborts (guards against
/// runaway loops in tests).
pub const DEFAULT_FUEL: u64 = 200_000_000;

/// How a [`Machine::run`] ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Halt {
    /// `ebreak` executed.
    Breakpoint,
    /// `ecall` executed.
    EnvironmentCall,
    /// Execution returned to the sentinel return address installed by
    /// [`Machine::call`].
    Returned,
}

/// Result of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions retired.
    pub instret: u64,
    /// Cycles elapsed under the pipeline model.
    pub cycles: u64,
    /// Why the run stopped.
    pub halt: Halt,
    /// Detailed per-class counters **for this run only**: like
    /// `instret` and `cycles`, a delta between the pipeline counters at
    /// the start and end of the run, so back-to-back [`Machine::run`]
    /// calls report disjoint counts that sum to the totals.
    pub timing: TimingStats,
}

impl RunStats {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instret == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instret as f64
        }
    }
}

/// Error produced by [`Machine::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The CPU trapped (memory fault, illegal instruction, PC escape).
    Trap(Trap),
    /// The instruction budget ([`Machine::set_fuel`]) was exhausted.
    OutOfFuel {
        /// The budget that was exhausted.
        fuel: u64,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Trap(t) => write!(f, "trap: {t}"),
            RunError::OutOfFuel { fuel } => write!(f, "out of fuel after {fuel} instructions"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<Trap> for RunError {
    fn from(t: Trap) -> Self {
        RunError::Trap(t)
    }
}

/// A complete simulated RV64 machine.
///
/// The program lives in a dedicated instruction region starting at
/// [`PROG_BASE`] (Harvard-style — kernels address data only through
/// pointers, matching how the paper's kernels receive operand pointers
/// in `a0..a2`). Data memory starts at [`DATA_BASE`]; the stack pointer
/// is initialised to its top.
///
/// # Examples
///
/// Calling a two-argument "function" with [`Machine::call`]:
///
/// ```
/// use mpise_sim::{Assembler, Machine, Reg};
/// let mut a = Assembler::new();
/// a.mul(Reg::A0, Reg::A0, Reg::A1);
/// a.ret();
/// let mut m = Machine::new();
/// m.load_program(&a.finish());
/// let stats = m.call(&[(Reg::A0, 6), (Reg::A1, 7)]).unwrap();
/// assert_eq!(m.cpu.read_reg(Reg::A0), 42);
/// assert!(stats.cycles >= stats.instret);
/// ```
#[derive(Debug)]
pub struct Machine {
    /// Architectural CPU state.
    pub cpu: Cpu,
    /// Data memory.
    pub mem: Memory,
    ext: IsaExtension,
    program: Vec<Inst>,
    /// Per-instruction metadata pre-computed at [`Machine::load_program`]
    /// time (timing facts, control-flow kind, resolved custom handler),
    /// parallel to `program`. This is what keeps the fetch→step→retire
    /// loop free of allocation and extension-registry lookups.
    pre: Vec<PreInst>,
    prog_base: u64,
    pipeline: PipelineModel,
    fuel: u64,
    tracer: Option<Tracer>,
    profiler: Option<PcProfiler>,
}

/// How an instruction interacts with the fetch stream, pre-classified
/// so the run loop's taken-branch decision is branch-free on the type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ControlKind {
    /// Not a control-transfer instruction.
    None,
    /// Conditional branch: redirects fetch only when its target differs
    /// from the fall-through address.
    CondBranch,
    /// Unconditional jump (`jal`/`jalr`): always redirects fetch on
    /// Rocket, even when the target happens to be the fall-through
    /// address.
    Jump,
}

/// One pre-decoded program slot (see [`Machine::load_program`]).
#[derive(Debug, Clone, Copy)]
struct PreInst {
    /// Timing facts consumed by [`PipelineModel::retire_pre`].
    timing: PreDecoded,
    /// Control-flow classification for the taken heuristic.
    control: ControlKind,
    /// Resolved execution function for registered custom instructions;
    /// `None` for base-ISA instructions (executed by [`Cpu::step`]) and
    /// unregistered ids (which trap there).
    custom_exec: Option<fn(CustomArgs) -> u64>,
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

impl Machine {
    /// Creates a machine with default memory, no extensions and the
    /// Rocket-like default timing.
    pub fn new() -> Self {
        Self::with_ext(IsaExtension::new("rv64im"))
    }

    /// Creates a machine with the given ISA extension attached.
    pub fn with_ext(ext: IsaExtension) -> Self {
        let mut cpu = Cpu::new();
        cpu.write_reg(Reg::Sp, DATA_BASE + DATA_SIZE as u64);
        Machine {
            cpu,
            mem: Memory::new(DATA_BASE, DATA_SIZE),
            ext,
            program: Vec::new(),
            pre: Vec::new(),
            prog_base: PROG_BASE,
            pipeline: PipelineModel::new(TimingConfig::default()),
            fuel: DEFAULT_FUEL,
            tracer: None,
            profiler: None,
        }
    }

    /// Replaces the timing configuration (resets the pipeline clock).
    pub fn set_timing(&mut self, config: TimingConfig) {
        self.pipeline = PipelineModel::new(config);
    }

    /// Sets the instruction budget for subsequent runs.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Attaches an execution tracer (see [`crate::trace`]).
    pub fn set_tracer(&mut self, tracer: Option<Tracer>) {
        self.tracer = tracer;
    }

    /// Takes the tracer back out, with whatever it recorded.
    pub fn take_tracer(&mut self) -> Option<Tracer> {
        self.tracer.take()
    }

    /// Attaches a sampling PC profiler (see [`crate::profile`]).
    pub fn set_profiler(&mut self, profiler: Option<PcProfiler>) {
        self.profiler = profiler;
    }

    /// Takes the profiler back out, with whatever it sampled.
    pub fn take_profiler(&mut self) -> Option<PcProfiler> {
        self.profiler.take()
    }

    /// The attached extension registry.
    pub fn ext(&self) -> &IsaExtension {
        &self.ext
    }

    /// Loads `program` at [`PROG_BASE`], points the PC at its first
    /// instruction, and pre-decodes every instruction (timing facts,
    /// control-flow kind, resolved custom-instruction handler) so the
    /// run loop does no per-step lookup or allocation work.
    pub fn load_program(&mut self, program: &Program) {
        self.program = program.insts().to_vec();
        self.pre = self
            .program
            .iter()
            .map(|inst| {
                let (unit, custom_exec) = match inst {
                    Inst::Custom { id, .. } => match self.ext.by_id(*id) {
                        Some(def) => (Some(def.unit), Some(def.exec)),
                        None => (None, None),
                    },
                    _ => (None, None),
                };
                let control = match inst {
                    Inst::Jal { .. } | Inst::Jalr { .. } => ControlKind::Jump,
                    Inst::Branch { .. } => ControlKind::CondBranch,
                    _ => ControlKind::None,
                };
                PreInst {
                    timing: PreDecoded::of(inst, unit),
                    control,
                    custom_exec,
                }
            })
            .collect();
        self.cpu.pc = self.prog_base;
    }

    /// Base address of the loaded program.
    pub fn prog_base(&self) -> u64 {
        self.prog_base
    }

    /// Sentinel address used by [`Machine::call`] as the return address:
    /// one instruction past the end of the program.
    pub fn return_sentinel(&self) -> u64 {
        self.prog_base + 4 * self.program.len() as u64
    }

    /// Runs from the current PC until `ebreak`, `ecall`, or return to
    /// the sentinel address. The pipeline clock continues from where it
    /// was; use [`Machine::reset_clock`] between measurements. The
    /// returned [`RunStats`] (`instret`, `cycles` *and* `timing`) are
    /// all deltas covering this run only.
    ///
    /// # Errors
    ///
    /// [`RunError::Trap`] on faults, [`RunError::OutOfFuel`] when the
    /// instruction budget is exhausted.
    pub fn run(&mut self) -> Result<RunStats, RunError> {
        // Monomorphise the loop on tracer/profiler presence so the
        // common uninstrumented path pays nothing for either hook.
        match (self.tracer.is_some(), self.profiler.is_some()) {
            (false, false) => self.run_loop::<false, false>(),
            (false, true) => self.run_loop::<false, true>(),
            (true, false) => self.run_loop::<true, false>(),
            (true, true) => self.run_loop::<true, true>(),
        }
    }

    fn run_loop<const TRACE: bool, const PROF: bool>(&mut self) -> Result<RunStats, RunError> {
        let start_timing = *self.pipeline.stats();
        let start_cycles = self.pipeline.cycles();
        let sentinel = self.return_sentinel();
        let prog_base = self.prog_base;
        let prog_len = self.program.len();
        let mut fuel = self.fuel;
        loop {
            let pc = self.cpu.pc;
            if pc == sentinel {
                return Ok(self.finish_stats(&start_timing, start_cycles, Halt::Returned));
            }
            if fuel == 0 {
                return Err(RunError::OutOfFuel { fuel: self.fuel });
            }
            fuel -= 1;

            // Fetch: one wrapping subtraction covers the below-base,
            // misaligned and past-the-end cases at once.
            let off = pc.wrapping_sub(prog_base);
            let idx = (off >> 2) as usize;
            if off & 3 != 0 || idx >= prog_len {
                return Err(RunError::Trap(Trap::PcOutOfProgram { pc }));
            }
            let inst = self.program[idx];
            let pre = self.pre[idx];

            // Execute. Registered custom instructions take the resolved
            // fast path (no registry lookup); everything else — base
            // ISA and unregistered customs, which must trap — goes
            // through the full `Cpu::step`.
            let result = match (pre.custom_exec, inst) {
                (
                    Some(exec),
                    Inst::Custom {
                        rd,
                        rs1,
                        rs2,
                        rs3,
                        imm,
                        ..
                    },
                ) => {
                    let v = exec(CustomArgs {
                        rs1: self.cpu.read_reg(rs1),
                        rs2: self.cpu.read_reg(rs2),
                        rs3: self.cpu.read_reg(rs3),
                        imm,
                    });
                    self.cpu.write_reg(rd, v);
                    self.cpu.pc = pc.wrapping_add(4);
                    Ok(())
                }
                _ => self.cpu.step(&inst, &mut self.mem, &self.ext),
            };

            // Timing: every attempted instruction that architecturally
            // retires (including the trapping ebreak/ecall) is costed.
            // Unconditional jumps always redirect fetch on Rocket, even
            // to the fall-through address; only conditional branches
            // use the fall-through comparison.
            let taken = match pre.control {
                ControlKind::None => false,
                ControlKind::CondBranch => self.cpu.pc != pc.wrapping_add(4),
                ControlKind::Jump => true,
            };
            self.pipeline.retire_pre(&pre.timing, taken);
            if TRACE {
                if let Some(t) = &mut self.tracer {
                    t.record(pc, &inst, &self.cpu);
                }
            }
            if PROF {
                if let Some(p) = &mut self.profiler {
                    p.record(pc, &inst, &self.ext);
                }
            }

            match result {
                Ok(()) => {}
                Err(Trap::Breakpoint) => {
                    return Ok(self.finish_stats(&start_timing, start_cycles, Halt::Breakpoint));
                }
                Err(Trap::EnvironmentCall) => {
                    return Ok(self.finish_stats(
                        &start_timing,
                        start_cycles,
                        Halt::EnvironmentCall,
                    ));
                }
                Err(t) => return Err(RunError::Trap(t)),
            }
        }
    }

    fn finish_stats(&self, start_timing: &TimingStats, start_cycles: u64, halt: Halt) -> RunStats {
        let timing = self.pipeline.stats().delta(start_timing);
        RunStats {
            instret: timing.instret(),
            cycles: self.pipeline.cycles() - start_cycles,
            halt,
            timing,
        }
    }

    /// Resets the pipeline clock and scoreboard (architectural state is
    /// untouched). Call between back-to-back measurements.
    pub fn reset_clock(&mut self) {
        self.pipeline.reset();
    }

    /// Calls the loaded program as a function: sets the given argument
    /// registers, points `ra` at the return sentinel, runs to
    /// completion, and reports the stats of just this call.
    ///
    /// The pipeline clock is reset first, so `stats.cycles` is the cost
    /// of the call alone — this is how all Table 4 rows are measured.
    ///
    /// # Errors
    ///
    /// Propagates [`RunError`] from [`Machine::run`].
    pub fn call(&mut self, args: &[(Reg, u64)]) -> Result<RunStats, RunError> {
        self.reset_clock();
        self.cpu.pc = self.prog_base;
        self.cpu.write_reg(Reg::Ra, self.return_sentinel());
        for &(r, v) in args {
            self.cpu.write_reg(r, v);
        }
        self.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;

    #[test]
    fn run_to_ebreak() {
        let mut a = Assembler::new();
        a.li(Reg::T0, 5);
        a.li(Reg::T1, 7);
        a.add(Reg::A0, Reg::T0, Reg::T1);
        a.ebreak();
        let mut m = Machine::new();
        m.load_program(&a.finish());
        let stats = m.run().unwrap();
        assert_eq!(m.cpu.read_reg(Reg::A0), 12);
        assert_eq!(stats.halt, Halt::Breakpoint);
        assert_eq!(stats.instret, 4);
    }

    #[test]
    fn call_returns_via_sentinel() {
        let mut a = Assembler::new();
        a.add(Reg::A0, Reg::A0, Reg::A1);
        a.ret();
        let mut m = Machine::new();
        m.load_program(&a.finish());
        let stats = m.call(&[(Reg::A0, 1), (Reg::A1, 2)]).unwrap();
        assert_eq!(stats.halt, Halt::Returned);
        assert_eq!(m.cpu.read_reg(Reg::A0), 3);
    }

    #[test]
    fn loop_executes_correct_trip_count() {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.li(Reg::T0, 100);
        a.li(Reg::T1, 0);
        a.bind(top);
        a.addi(Reg::T1, Reg::T1, 3);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, top);
        a.ebreak();
        let mut m = Machine::new();
        m.load_program(&a.finish());
        let stats = m.run().unwrap();
        assert_eq!(m.cpu.read_reg(Reg::T1), 300);
        // 2 setup + 100*3 loop + ebreak
        assert_eq!(stats.instret, 2 + 300 + 1);
        // 99 taken branches pay the flush penalty.
        assert_eq!(stats.timing.flush_cycles, 99 * 2);
    }

    #[test]
    fn memory_access_through_pointers() {
        let mut a = Assembler::new();
        a.ld(Reg::T0, 0, Reg::A0);
        a.ld(Reg::T1, 8, Reg::A0);
        a.add(Reg::T0, Reg::T0, Reg::T1);
        a.sd(Reg::T0, 0, Reg::A1);
        a.ret();
        let mut m = Machine::new();
        m.load_program(&a.finish());
        m.mem.write_limbs(DATA_BASE, &[30, 12]).unwrap();
        m.call(&[(Reg::A0, DATA_BASE), (Reg::A1, DATA_BASE + 64)])
            .unwrap();
        assert_eq!(m.mem.load_u64(DATA_BASE + 64).unwrap(), 42);
    }

    #[test]
    fn out_of_fuel() {
        let mut a = Assembler::new();
        let top = a.new_label();
        a.bind(top);
        a.j(top);
        let mut m = Machine::new();
        m.load_program(&a.finish());
        m.set_fuel(1000);
        assert!(matches!(m.run(), Err(RunError::OutOfFuel { .. })));
    }

    #[test]
    fn pc_escape_is_a_trap() {
        let mut a = Assembler::new();
        a.jalr(Reg::Zero, 0, Reg::Zero); // jump to 0, outside program
        let mut m = Machine::new();
        m.load_program(&a.finish());
        assert!(matches!(
            m.run(),
            Err(RunError::Trap(Trap::PcOutOfProgram { .. }))
        ));
    }

    #[test]
    fn back_to_back_runs_report_per_run_deltas() {
        // Regression: `RunStats::timing` used to return the cumulative
        // per-class counters while `instret`/`cycles` were deltas, so a
        // second `run()` on the same machine double-counted.
        let mut a = Assembler::new();
        a.li(Reg::T0, 3);
        a.mul(Reg::T1, Reg::T0, Reg::T0);
        a.ld(Reg::T2, 0, Reg::Sp);
        a.ebreak();
        let mut m = Machine::new();
        m.cpu.write_reg(Reg::Sp, DATA_BASE);
        m.load_program(&a.finish());

        let s1 = m.run().unwrap();
        m.cpu.pc = m.prog_base(); // rerun without resetting the clock
        let s2 = m.run().unwrap();

        for s in [&s1, &s2] {
            assert_eq!(s.timing.alu, 1, "one li per run");
            assert_eq!(s.timing.mul, 1, "one mul per run");
            assert_eq!(s.timing.load, 1, "one load per run");
            assert_eq!(s.timing.system, 1, "one ebreak per run");
            assert_eq!(s.timing.instret(), s.instret, "timing sums to instret");
        }
        assert_eq!(
            s1.timing, s2.timing,
            "identical straight-line runs must report identical deltas"
        );
    }

    #[test]
    fn jal_to_fall_through_pays_redirect_penalty() {
        // Regression: `jal +4` targets the fall-through address, which
        // the old `pc != pc + 4` heuristic classified as not-taken; an
        // unconditional jump always redirects fetch on Rocket.
        let mut a = Assembler::new();
        a.push(crate::inst::Inst::Jal {
            rd: Reg::Zero,
            offset: 4,
        });
        a.ebreak();
        let mut m = Machine::new();
        m.load_program(&a.finish());
        let stats = m.run().unwrap();
        let penalty = TimingConfig::default().branch_taken_penalty;
        assert_eq!(stats.timing.flush_cycles, penalty);
        assert_eq!(stats.cycles, 2 + penalty);
    }

    #[test]
    fn conditional_branch_to_fall_through_is_not_taken() {
        // The fall-through heuristic stays in force for conditional
        // branches: a taken branch to pc+4 is indistinguishable from
        // not-taken and costs no redirect.
        let mut a = Assembler::new();
        a.push(crate::inst::Inst::Branch {
            op: crate::inst::BranchOp::Beq,
            rs1: Reg::Zero,
            rs2: Reg::Zero,
            offset: 4,
        });
        a.ebreak();
        let mut m = Machine::new();
        m.load_program(&a.finish());
        let stats = m.run().unwrap();
        assert_eq!(stats.timing.flush_cycles, 0);
    }

    #[test]
    fn custom_fast_path_matches_step_semantics() {
        use crate::ext::{CustomArgs, CustomFormat, CustomId, CustomInstDef, ExecUnit};
        fn addx3(a: CustomArgs) -> u64 {
            a.rs1.wrapping_add(a.rs2).wrapping_add(a.rs3)
        }
        let mut ext = IsaExtension::new("t");
        ext.define(CustomInstDef {
            id: CustomId(900),
            mnemonic: "addx3",
            format: CustomFormat::R4 {
                opcode: 0b1111011,
                funct3: 0b111,
                funct2: 0b00,
            },
            exec: addx3,
            unit: ExecUnit::Xmul,
        })
        .unwrap();
        let mut a = Assembler::new();
        a.push(crate::inst::Inst::Custom {
            id: CustomId(900),
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
            rs3: Reg::A3,
            imm: 0,
        });
        a.ebreak();
        let mut m = Machine::with_ext(ext);
        m.load_program(&a.finish());
        m.cpu.write_reg(Reg::A1, 10);
        m.cpu.write_reg(Reg::A2, 20);
        m.cpu.write_reg(Reg::A3, 12);
        let stats = m.run().unwrap();
        assert_eq!(m.cpu.read_reg(Reg::A0), 42);
        assert_eq!(stats.timing.custom_xmul, 1);
    }

    #[test]
    fn call_resets_clock_per_invocation() {
        let mut a = Assembler::new();
        a.add(Reg::A0, Reg::A0, Reg::A1);
        a.ret();
        let mut m = Machine::new();
        m.load_program(&a.finish());
        let s1 = m.call(&[(Reg::A0, 1), (Reg::A1, 2)]).unwrap();
        let s2 = m.call(&[(Reg::A0, 3), (Reg::A1, 4)]).unwrap();
        assert_eq!(s1.cycles, s2.cycles);
    }
}
