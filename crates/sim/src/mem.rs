//! Byte-addressed little-endian memory.

use std::fmt;

/// Error for an access outside the mapped region or with bad alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// Address (plus width) falls outside the mapped region.
    OutOfBounds {
        /// Faulting address.
        addr: u64,
        /// Access width in bytes.
        width: u64,
    },
    /// Address is not naturally aligned for the access width.
    Misaligned {
        /// Faulting address.
        addr: u64,
        /// Access width in bytes.
        width: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, width } => {
                write!(f, "{width}-byte access at {addr:#x} is out of bounds")
            }
            MemError::Misaligned { addr, width } => {
                write!(f, "{width}-byte access at {addr:#x} is misaligned")
            }
        }
    }
}

impl std::error::Error for MemError {}

/// A flat, byte-addressed, little-endian memory region.
///
/// The region starts at [`Memory::base`] and spans [`Memory::len`] bytes.
/// Natural alignment is enforced for multi-byte accesses, like on the
/// Rocket core used in the paper (which takes a misaligned-access trap).
///
/// # Examples
///
/// ```
/// use mpise_sim::Memory;
/// let mut m = Memory::new(0x1000, 64);
/// m.store_u64(0x1008, 0xdead_beef_cafe_f00d).unwrap();
/// assert_eq!(m.load_u64(0x1008).unwrap(), 0xdead_beef_cafe_f00d);
/// assert_eq!(m.load_u8(0x1008).unwrap(), 0x0d); // little-endian
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    base: u64,
    bytes: Vec<u8>,
}

impl Memory {
    /// Creates a zero-filled memory of `len` bytes starting at `base`.
    pub fn new(base: u64, len: usize) -> Self {
        Memory {
            base,
            bytes: vec![0; len],
        }
    }

    /// Lowest mapped address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size of the mapped region in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    fn offset(&self, addr: u64, width: u64) -> Result<usize, MemError> {
        if width > 1 && !addr.is_multiple_of(width) {
            return Err(MemError::Misaligned { addr, width });
        }
        let end = addr
            .checked_add(width)
            .ok_or(MemError::OutOfBounds { addr, width })?;
        if addr < self.base || end > self.base + self.bytes.len() as u64 {
            return Err(MemError::OutOfBounds { addr, width });
        }
        Ok((addr - self.base) as usize)
    }

    /// Loads an unsigned value of `width` bytes (1, 2, 4 or 8).
    ///
    /// # Errors
    ///
    /// [`MemError`] on out-of-bounds or misaligned access.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn load(&self, addr: u64, width: u64) -> Result<u64, MemError> {
        assert!(matches!(width, 1 | 2 | 4 | 8), "unsupported width {width}");
        let off = self.offset(addr, width)?;
        let mut v = 0u64;
        for i in (0..width as usize).rev() {
            v = (v << 8) | self.bytes[off + i] as u64;
        }
        Ok(v)
    }

    /// Stores the low `width` bytes of `value` (width 1, 2, 4 or 8).
    ///
    /// # Errors
    ///
    /// [`MemError`] on out-of-bounds or misaligned access.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not 1, 2, 4 or 8.
    pub fn store(&mut self, addr: u64, value: u64, width: u64) -> Result<(), MemError> {
        assert!(matches!(width, 1 | 2 | 4 | 8), "unsupported width {width}");
        let off = self.offset(addr, width)?;
        for i in 0..width as usize {
            self.bytes[off + i] = (value >> (8 * i)) as u8;
        }
        Ok(())
    }

    /// Loads a byte.
    pub fn load_u8(&self, addr: u64) -> Result<u8, MemError> {
        self.load(addr, 1).map(|v| v as u8)
    }

    /// Loads a 32-bit word.
    pub fn load_u32(&self, addr: u64) -> Result<u32, MemError> {
        self.load(addr, 4).map(|v| v as u32)
    }

    /// Loads a 64-bit double-word.
    pub fn load_u64(&self, addr: u64) -> Result<u64, MemError> {
        self.load(addr, 8)
    }

    /// Stores a 64-bit double-word.
    pub fn store_u64(&mut self, addr: u64, value: u64) -> Result<(), MemError> {
        self.store(addr, value, 8)
    }

    /// Copies `data` into memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] when the slice does not fit.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) -> Result<(), MemError> {
        let width = data.len() as u64;
        if addr < self.base || addr + width > self.base + self.bytes.len() as u64 {
            return Err(MemError::OutOfBounds { addr, width });
        }
        let off = (addr - self.base) as usize;
        self.bytes[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] when the range is not mapped.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<&[u8], MemError> {
        let width = len as u64;
        if addr < self.base || addr + width > self.base + self.bytes.len() as u64 {
            return Err(MemError::OutOfBounds { addr, width });
        }
        let off = (addr - self.base) as usize;
        Ok(&self.bytes[off..off + len])
    }

    /// Writes an array of 64-bit limbs at `addr` (little-endian, limb 0
    /// lowest) — the layout MPI kernels use for operands.
    pub fn write_limbs(&mut self, addr: u64, limbs: &[u64]) -> Result<(), MemError> {
        for (i, &l) in limbs.iter().enumerate() {
            self.store_u64(addr + 8 * i as u64, l)?;
        }
        Ok(())
    }

    /// Reads `n` 64-bit limbs starting at `addr`.
    pub fn read_limbs(&self, addr: u64, n: usize) -> Result<Vec<u64>, MemError> {
        (0..n).map(|i| self.load_u64(addr + 8 * i as u64)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(0, 16);
        m.store_u64(0, 0x0102_0304_0506_0708).unwrap();
        assert_eq!(m.load_u8(0).unwrap(), 0x08);
        assert_eq!(m.load_u8(7).unwrap(), 0x01);
        assert_eq!(m.load(0, 4).unwrap(), 0x0506_0708);
        assert_eq!(m.load(4, 4).unwrap(), 0x0102_0304);
    }

    #[test]
    fn bounds_checked() {
        let mut m = Memory::new(0x100, 8);
        assert!(m.load_u64(0x100).is_ok());
        assert!(m.load_u64(0x108).is_err());
        assert!(m.load_u8(0xff).is_err());
        assert!(m.store_u64(0x108, 0).is_err());
    }

    #[test]
    fn alignment_checked() {
        let m = Memory::new(0, 32);
        assert!(matches!(
            m.load_u64(4),
            Err(MemError::Misaligned { addr: 4, width: 8 })
        ));
        assert!(m.load(2, 2).is_ok());
        assert!(m.load(1, 2).is_err());
        assert!(m.load_u8(3).is_ok());
    }

    #[test]
    fn limb_round_trip() {
        let mut m = Memory::new(0x1000, 128);
        let limbs = [1u64, u64::MAX, 0x1234_5678_9abc_def0, 42];
        m.write_limbs(0x1000, &limbs).unwrap();
        assert_eq!(m.read_limbs(0x1000, 4).unwrap(), limbs);
    }

    #[test]
    fn byte_round_trip() {
        let mut m = Memory::new(0, 8);
        m.write_bytes(2, &[9, 8, 7]).unwrap();
        assert_eq!(m.read_bytes(2, 3).unwrap(), &[9, 8, 7]);
        assert!(m.write_bytes(6, &[1, 2, 3]).is_err());
    }
}
