//! Instruction-mix profiling.
//!
//! Collects per-mnemonic retirement counts during a run — the data
//! behind "how many `mulhu`/`sltu`/`add` does a Montgomery
//! multiplication really execute", which drives the instruction-count
//! arguments of §3.1.

use crate::ext::IsaExtension;
use crate::inst::Inst;
use std::collections::BTreeMap;

/// Per-mnemonic retirement counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstMix {
    counts: BTreeMap<String, u64>,
    total: u64,
}

impl InstMix {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one retired instruction (custom mnemonics resolved via
    /// `ext`).
    pub fn record(&mut self, inst: &Inst, ext: &IsaExtension) {
        let mnemonic = mnemonic_of(inst, ext);
        *self.counts.entry(mnemonic).or_insert(0) += 1;
        self.total += 1;
    }

    /// Count for one mnemonic (0 when never retired).
    pub fn count(&self, mnemonic: &str) -> u64 {
        self.counts.get(mnemonic).copied().unwrap_or(0)
    }

    /// Total retired instructions.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// All `(mnemonic, count)` pairs, most frequent first.
    pub fn sorted(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self.counts.iter().map(|(k, &c)| (k.as_str(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Renders a histogram.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (m, c) in self.sorted() {
            out.push_str(&format!(
                "{:10} {:>8}  ({:5.1}%)\n",
                m,
                c,
                100.0 * c as f64 / self.total.max(1) as f64
            ));
        }
        out.push_str(&format!("{:10} {:>8}\n", "total", self.total));
        out
    }
}

fn mnemonic_of(inst: &Inst, ext: &IsaExtension) -> String {
    match inst {
        Inst::Lui { .. } => "lui".to_owned(),
        Inst::Auipc { .. } => "auipc".to_owned(),
        Inst::Jal { .. } => "jal".to_owned(),
        Inst::Jalr { .. } => "jalr".to_owned(),
        Inst::Branch { op, .. } => op.mnemonic().to_owned(),
        Inst::Load { op, .. } => op.mnemonic().to_owned(),
        Inst::Store { op, .. } => op.mnemonic().to_owned(),
        Inst::OpImm { op, .. } => op.mnemonic().to_owned(),
        Inst::Op { op, .. } => op.mnemonic().to_owned(),
        Inst::Fence => "fence".to_owned(),
        Inst::Ecall => "ecall".to_owned(),
        Inst::Ebreak => "ebreak".to_owned(),
        Inst::Custom { id, .. } => ext
            .by_id(*id)
            .map(|d| d.mnemonic.to_owned())
            .unwrap_or_else(|| format!("custom.{}", id.0)),
    }
}

/// Computes the static instruction mix of a program (no execution).
pub fn static_mix(program: &crate::asm::Program, ext: &IsaExtension) -> InstMix {
    let mut mix = InstMix::new();
    for inst in program.insts() {
        mix.record(inst, ext);
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::Reg;

    #[test]
    fn static_mix_counts() {
        let mut a = Assembler::new();
        a.mulhu(Reg::T0, Reg::A0, Reg::A1);
        a.mul(Reg::T1, Reg::A0, Reg::A1);
        a.add(Reg::T2, Reg::T0, Reg::T1);
        a.add(Reg::T3, Reg::T2, Reg::T1);
        a.ebreak();
        let mix = static_mix(&a.finish(), &IsaExtension::new("none"));
        assert_eq!(mix.count("mulhu"), 1);
        assert_eq!(mix.count("add"), 2);
        assert_eq!(mix.count("nop"), 0);
        assert_eq!(mix.total(), 5);
        assert_eq!(mix.sorted()[0], ("add", 2));
        assert!(mix.render().contains("mulhu"));
    }

    #[test]
    fn custom_mnemonics_resolved() {
        let ext = mpise_core_free_test_ext();
        let mut a = Assembler::new();
        a.custom_r4(crate::ext::CustomId(77), Reg::A0, Reg::A1, Reg::A2, Reg::A3);
        let mix = static_mix(&a.finish(), &ext);
        assert_eq!(mix.count("frob"), 1);
    }

    fn mpise_core_free_test_ext() -> IsaExtension {
        let mut e = IsaExtension::new("t");
        e.define(crate::ext::CustomInstDef {
            id: crate::ext::CustomId(77),
            mnemonic: "frob",
            format: crate::ext::CustomFormat::R4 {
                opcode: 0b1111011,
                funct3: 0,
                funct2: 0,
            },
            exec: |a| a.rs1,
            unit: crate::ext::ExecUnit::Alu,
        })
        .unwrap();
        e
    }
}
