//! Instruction-mix and PC profiling.
//!
//! Two complementary views of where a kernel's instructions go:
//!
//! * [`InstMix`] — per-mnemonic retirement counts ("how many
//!   `mulhu`/`sltu`/`add` does a Montgomery multiplication really
//!   execute", the instruction-count arguments of §3.1);
//! * [`PcProfiler`] — a sampling PC profiler attached to a
//!   [`crate::Machine`]: every `interval`-th retired PC is bucketed
//!   into caller-named code regions (kernel symbolization) and the
//!   result renders as folded-stack (flamegraph-compatible) lines.
//!   The profiler owns an [`InstMix`] as its exhaustive (non-sampled)
//!   companion view, so one machine hook feeds both.

use crate::ext::IsaExtension;
use crate::inst::Inst;
use std::collections::BTreeMap;

/// Per-mnemonic retirement counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstMix {
    counts: BTreeMap<String, u64>,
    total: u64,
}

impl InstMix {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one retired instruction (custom mnemonics resolved via
    /// `ext`).
    pub fn record(&mut self, inst: &Inst, ext: &IsaExtension) {
        let mnemonic = mnemonic_of(inst, ext);
        *self.counts.entry(mnemonic).or_insert(0) += 1;
        self.total += 1;
    }

    /// Count for one mnemonic (0 when never retired).
    pub fn count(&self, mnemonic: &str) -> u64 {
        self.counts.get(mnemonic).copied().unwrap_or(0)
    }

    /// Total retired instructions.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// All `(mnemonic, count)` pairs, most frequent first.
    pub fn sorted(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<(&str, u64)> = self.counts.iter().map(|(k, &c)| (k.as_str(), c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Renders a histogram.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (m, c) in self.sorted() {
            out.push_str(&format!(
                "{:10} {:>8}  ({:5.1}%)\n",
                m,
                c,
                100.0 * c as f64 / self.total.max(1) as f64
            ));
        }
        out.push_str(&format!("{:10} {:>8}\n", "total", self.total));
        out
    }
}

fn mnemonic_of(inst: &Inst, ext: &IsaExtension) -> String {
    match inst {
        Inst::Lui { .. } => "lui".to_owned(),
        Inst::Auipc { .. } => "auipc".to_owned(),
        Inst::Jal { .. } => "jal".to_owned(),
        Inst::Jalr { .. } => "jalr".to_owned(),
        Inst::Branch { op, .. } => op.mnemonic().to_owned(),
        Inst::Load { op, .. } => op.mnemonic().to_owned(),
        Inst::Store { op, .. } => op.mnemonic().to_owned(),
        Inst::OpImm { op, .. } => op.mnemonic().to_owned(),
        Inst::Op { op, .. } => op.mnemonic().to_owned(),
        Inst::Fence => "fence".to_owned(),
        Inst::Ecall => "ecall".to_owned(),
        Inst::Ebreak => "ebreak".to_owned(),
        Inst::Custom { id, .. } => ext
            .by_id(*id)
            .map(|d| d.mnemonic.to_owned())
            .unwrap_or_else(|| format!("custom.{}", id.0)),
    }
}

/// One named PC range `[start, end)` of a loaded program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Symbol name of the region (kernel, phase, loop body, …).
    pub name: String,
    /// First PC of the region.
    pub start: u64,
    /// One past the last PC of the region.
    pub end: u64,
}

/// A sampling PC profiler for [`crate::Machine`].
///
/// Attach with [`crate::Machine::set_profiler`]; recover with
/// [`crate::Machine::take_profiler`]. Every `interval`-th retired
/// instruction's PC is attributed to the innermost-fitting registered
/// [`Region`] (ties broken toward the later-starting, i.e. more
/// specific, region); PCs outside every region land in the implicit
/// `<other>` bucket. The profiler also maintains an exhaustive
/// [`InstMix`] over *all* retirements, so the per-mnemonic histogram
/// needs no second hook.
///
/// # Examples
///
/// ```
/// use mpise_sim::{Assembler, Machine, Reg, profile::PcProfiler};
/// let mut a = Assembler::new();
/// a.li(Reg::T0, 7);
/// a.mul(Reg::T0, Reg::T0, Reg::T0);
/// a.ebreak();
/// let mut m = Machine::new();
/// m.load_program(&a.finish());
/// let mut p = PcProfiler::new(1);
/// p.add_region("kernel", m.prog_base(), m.return_sentinel());
/// m.set_profiler(Some(p));
/// m.run().unwrap();
/// let p = m.take_profiler().unwrap();
/// assert_eq!(p.samples_taken(), 3);
/// assert_eq!(p.mix().count("mul"), 1);
/// assert!(p.folded("sim").starts_with("sim;kernel 3"));
/// ```
#[derive(Debug, Clone)]
pub struct PcProfiler {
    interval: u64,
    tick: u64,
    regions: Vec<Region>,
    region_samples: Vec<u64>,
    other_samples: u64,
    total_retired: u64,
    mix: InstMix,
}

impl PcProfiler {
    /// Creates a profiler sampling every `interval`-th retirement
    /// (1 = exhaustive; clamped to ≥ 1).
    pub fn new(interval: u64) -> Self {
        PcProfiler {
            interval: interval.max(1),
            tick: 0,
            regions: Vec::new(),
            region_samples: Vec::new(),
            other_samples: 0,
            total_retired: 0,
            mix: InstMix::new(),
        }
    }

    /// Registers a named PC region `[start, end)`. Overlapping regions
    /// are allowed; samples go to the latest-starting region that
    /// contains the PC.
    pub fn add_region(&mut self, name: impl Into<String>, start: u64, end: u64) {
        self.regions.push(Region {
            name: name.into(),
            start,
            end,
        });
        self.region_samples.push(0);
    }

    /// Records one retired instruction (called by the machine).
    pub fn record(&mut self, pc: u64, inst: &Inst, ext: &IsaExtension) {
        self.total_retired += 1;
        self.mix.record(inst, ext);
        self.tick += 1;
        if self.tick < self.interval {
            return;
        }
        self.tick = 0;
        let mut best: Option<usize> = None;
        for (i, r) in self.regions.iter().enumerate() {
            if pc >= r.start && pc < r.end {
                best = match best {
                    Some(b) if self.regions[b].start >= r.start => Some(b),
                    _ => Some(i),
                };
            }
        }
        match best {
            Some(i) => self.region_samples[i] += 1,
            None => self.other_samples += 1,
        }
    }

    /// Total instructions seen (sampled or not).
    pub fn total_retired(&self) -> u64 {
        self.total_retired
    }

    /// Samples actually taken.
    pub fn samples_taken(&self) -> u64 {
        self.region_samples.iter().sum::<u64>() + self.other_samples
    }

    /// The sampling interval.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// `(region name, samples)` pairs in registration order, plus a
    /// final `("<other>", n)` bucket when any PC fell outside every
    /// region.
    pub fn region_samples(&self) -> Vec<(&str, u64)> {
        let mut out: Vec<(&str, u64)> = self
            .regions
            .iter()
            .zip(&self.region_samples)
            .map(|(r, &n)| (r.name.as_str(), n))
            .collect();
        if self.other_samples > 0 {
            out.push(("<other>", self.other_samples));
        }
        out
    }

    /// The exhaustive per-mnemonic mix (every retirement, unsampled).
    pub fn mix(&self) -> &InstMix {
        &self.mix
    }

    /// Folded-stack (flamegraph-compatible) lines, one per non-empty
    /// bucket: `root;region samples`.
    pub fn folded(&self, root: &str) -> String {
        let mut out = String::new();
        for (name, n) in self.region_samples() {
            if n > 0 {
                out.push_str(&format!("{root};{name} {n}\n"));
            }
        }
        out
    }

    /// Renders the sample histogram as text.
    pub fn render(&self) -> String {
        let taken = self.samples_taken().max(1);
        let mut out = String::new();
        for (name, n) in self.region_samples() {
            out.push_str(&format!(
                "{:24} {:>10}  ({:5.1}%)\n",
                name,
                n,
                100.0 * n as f64 / taken as f64
            ));
        }
        out.push_str(&format!(
            "{:24} {:>10}  (interval {}, {} retired)\n",
            "samples",
            self.samples_taken(),
            self.interval,
            self.total_retired
        ));
        out
    }
}

/// Computes the static instruction mix of a program (no execution).
pub fn static_mix(program: &crate::asm::Program, ext: &IsaExtension) -> InstMix {
    let mut mix = InstMix::new();
    for inst in program.insts() {
        mix.record(inst, ext);
    }
    mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::Reg;

    #[test]
    fn static_mix_counts() {
        let mut a = Assembler::new();
        a.mulhu(Reg::T0, Reg::A0, Reg::A1);
        a.mul(Reg::T1, Reg::A0, Reg::A1);
        a.add(Reg::T2, Reg::T0, Reg::T1);
        a.add(Reg::T3, Reg::T2, Reg::T1);
        a.ebreak();
        let mix = static_mix(&a.finish(), &IsaExtension::new("none"));
        assert_eq!(mix.count("mulhu"), 1);
        assert_eq!(mix.count("add"), 2);
        assert_eq!(mix.count("nop"), 0);
        assert_eq!(mix.total(), 5);
        assert_eq!(mix.sorted()[0], ("add", 2));
        assert!(mix.render().contains("mulhu"));
    }

    #[test]
    fn custom_mnemonics_resolved() {
        let ext = mpise_core_free_test_ext();
        let mut a = Assembler::new();
        a.custom_r4(crate::ext::CustomId(77), Reg::A0, Reg::A1, Reg::A2, Reg::A3);
        let mix = static_mix(&a.finish(), &ext);
        assert_eq!(mix.count("frob"), 1);
    }

    #[test]
    fn unregistered_custom_falls_back_to_numbered_mnemonic() {
        let mut a = Assembler::new();
        a.custom_r4(
            crate::ext::CustomId(123),
            Reg::A0,
            Reg::A1,
            Reg::A2,
            Reg::A3,
        );
        let mix = static_mix(&a.finish(), &IsaExtension::new("none"));
        assert_eq!(mix.count("custom.123"), 1);
        assert!(mix.render().contains("custom.123"));
    }

    #[test]
    fn custom_mnemonics_resolved_during_execution() {
        // The dynamic path: the machine hook feeds the profiler's
        // InstMix through the same `ext.by_id` resolution as the
        // static view.
        let ext = mpise_core_free_test_ext();
        let mut a = Assembler::new();
        a.custom_r4(crate::ext::CustomId(77), Reg::A0, Reg::A1, Reg::A2, Reg::A3);
        a.ebreak();
        let mut m = crate::Machine::with_ext(ext);
        m.load_program(&a.finish());
        m.set_profiler(Some(PcProfiler::new(1)));
        m.run().unwrap();
        let p = m.take_profiler().unwrap();
        assert_eq!(p.mix().count("frob"), 1);
        assert_eq!(p.mix().count("ebreak"), 1);
        assert_eq!(p.mix().total(), 2);
    }

    #[test]
    fn profiler_buckets_pcs_into_regions() {
        // 4 insts in "head" [base, base+16), 6 in "tail", ebreak
        // outside both regions.
        let mut a = Assembler::new();
        for _ in 0..10 {
            a.addi(Reg::T0, Reg::T0, 1);
        }
        a.ebreak();
        let mut m = crate::Machine::new();
        m.load_program(&a.finish());
        let base = m.prog_base();
        let mut p = PcProfiler::new(1);
        p.add_region("head", base, base + 16);
        p.add_region("tail", base + 16, base + 40);
        m.set_profiler(Some(p));
        m.run().unwrap();
        let p = m.take_profiler().unwrap();
        assert_eq!(p.total_retired(), 11);
        assert_eq!(p.samples_taken(), 11);
        assert_eq!(
            p.region_samples(),
            vec![("head", 4), ("tail", 6), ("<other>", 1)]
        );
        let folded = p.folded("run");
        assert!(folded.contains("run;head 4\n"));
        assert!(folded.contains("run;tail 6\n"));
        assert!(folded.contains("run;<other> 1\n"));
        assert!(p.render().contains("head"));
    }

    #[test]
    fn sampling_interval_thins_samples_but_not_mix() {
        let mut a = Assembler::new();
        for _ in 0..99 {
            a.addi(Reg::T0, Reg::T0, 1);
        }
        a.ebreak();
        let mut m = crate::Machine::new();
        m.load_program(&a.finish());
        let mut p = PcProfiler::new(10);
        p.add_region("all", m.prog_base(), m.return_sentinel());
        m.set_profiler(Some(p));
        m.run().unwrap();
        let p = m.take_profiler().unwrap();
        // 100 retirements at interval 10 → exactly 10 samples, but the
        // mix still sees every retirement.
        assert_eq!(p.total_retired(), 100);
        assert_eq!(p.samples_taken(), 10);
        assert_eq!(p.region_samples(), vec![("all", 10)]);
        assert_eq!(p.mix().count("addi"), 99);
        assert_eq!(p.mix().total(), 100);
    }

    #[test]
    fn overlapping_regions_prefer_the_inner_symbol() {
        let mut a = Assembler::new();
        for _ in 0..4 {
            a.addi(Reg::T0, Reg::T0, 1);
        }
        a.ebreak();
        let mut m = crate::Machine::new();
        m.load_program(&a.finish());
        let base = m.prog_base();
        let mut p = PcProfiler::new(1);
        p.add_region("outer", base, base + 20);
        p.add_region("inner", base + 4, base + 12);
        m.set_profiler(Some(p));
        m.run().unwrap();
        let p = m.take_profiler().unwrap();
        assert_eq!(p.region_samples(), vec![("outer", 3), ("inner", 2)]);
    }

    #[test]
    fn interval_zero_is_clamped() {
        let p = PcProfiler::new(0);
        assert_eq!(p.interval(), 1);
    }

    fn mpise_core_free_test_ext() -> IsaExtension {
        let mut e = IsaExtension::new("t");
        e.define(crate::ext::CustomInstDef {
            id: crate::ext::CustomId(77),
            mnemonic: "frob",
            format: crate::ext::CustomFormat::R4 {
                opcode: 0b1111011,
                funct3: 0,
                funct2: 0,
            },
            exec: |a| a.rs1,
            unit: crate::ext::ExecUnit::Alu,
        })
        .unwrap();
        e
    }
}
