//! General-purpose register names for the RV64 integer register file.

use std::fmt;
use std::str::FromStr;

/// One of the 32 general-purpose integer registers of RV64.
///
/// The enum discriminants equal the architectural register numbers, so
/// `Reg::A0 as u8 == 10`. Register `x0` ([`Reg::Zero`]) is hard-wired to
/// zero; writes to it are discarded by the simulator.
///
/// # Examples
///
/// ```
/// use mpise_sim::Reg;
/// assert_eq!(Reg::A0.number(), 10);
/// assert_eq!(Reg::from_number(10), Some(Reg::A0));
/// assert_eq!("t3".parse::<Reg>().unwrap(), Reg::T3);
/// assert_eq!(Reg::S11.to_string(), "s11");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    /// `x0`: hard-wired zero.
    Zero = 0,
    /// `x1`: return address.
    Ra = 1,
    /// `x2`: stack pointer.
    Sp = 2,
    /// `x3`: global pointer.
    Gp = 3,
    /// `x4`: thread pointer.
    Tp = 4,
    /// `x5`: temporary 0.
    T0 = 5,
    /// `x6`: temporary 1.
    T1 = 6,
    /// `x7`: temporary 2.
    T2 = 7,
    /// `x8`: saved register 0 / frame pointer.
    S0 = 8,
    /// `x9`: saved register 1.
    S1 = 9,
    /// `x10`: argument/return 0.
    A0 = 10,
    /// `x11`: argument/return 1.
    A1 = 11,
    /// `x12`: argument 2.
    A2 = 12,
    /// `x13`: argument 3.
    A3 = 13,
    /// `x14`: argument 4.
    A4 = 14,
    /// `x15`: argument 5.
    A5 = 15,
    /// `x16`: argument 6.
    A6 = 16,
    /// `x17`: argument 7.
    A7 = 17,
    /// `x18`: saved register 2.
    S2 = 18,
    /// `x19`: saved register 3.
    S3 = 19,
    /// `x20`: saved register 4.
    S4 = 20,
    /// `x21`: saved register 5.
    S5 = 21,
    /// `x22`: saved register 6.
    S6 = 22,
    /// `x23`: saved register 7.
    S7 = 23,
    /// `x24`: saved register 8.
    S8 = 24,
    /// `x25`: saved register 9.
    S9 = 25,
    /// `x26`: saved register 10.
    S10 = 26,
    /// `x27`: saved register 11.
    S11 = 27,
    /// `x28`: temporary 3.
    T3 = 28,
    /// `x29`: temporary 4.
    T4 = 29,
    /// `x30`: temporary 5.
    T5 = 30,
    /// `x31`: temporary 6.
    T6 = 31,
}

impl Reg {
    /// All 32 registers in architectural order (`x0` through `x31`).
    pub const ALL: [Reg; 32] = [
        Reg::Zero,
        Reg::Ra,
        Reg::Sp,
        Reg::Gp,
        Reg::Tp,
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::S0,
        Reg::S1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
        Reg::A6,
        Reg::A7,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
        Reg::S8,
        Reg::S9,
        Reg::S10,
        Reg::S11,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
    ];

    /// The callee-saved registers of the standard RV64 calling convention
    /// (`s0`–`s11`). Kernels that use them must save and restore them;
    /// the kernel generators in `mpise-fp` rely on this list for their
    /// prologues and epilogues.
    pub const CALLEE_SAVED: [Reg; 12] = [
        Reg::S0,
        Reg::S1,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
        Reg::S8,
        Reg::S9,
        Reg::S10,
        Reg::S11,
    ];

    /// Caller-saved registers freely available to leaf kernels (the
    /// temporaries and the argument registers).
    pub const CALLER_SAVED: [Reg; 15] = [
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
        Reg::A6,
        Reg::A7,
    ];

    /// Returns the architectural register number (0–31).
    #[inline]
    pub const fn number(self) -> u8 {
        self as u8
    }

    /// Returns the register with the given architectural number, or
    /// `None` when `n > 31`.
    #[inline]
    pub const fn from_number(n: u8) -> Option<Reg> {
        if n < 32 {
            Some(Reg::ALL[n as usize])
        } else {
            None
        }
    }

    /// The ABI mnemonic of the register (e.g. `"a0"`, `"s11"`).
    pub const fn abi_name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self as usize]
    }

    /// Whether this register is callee-saved under the standard ABI.
    pub const fn is_callee_saved(self) -> bool {
        matches!(
            self,
            Reg::S0
                | Reg::S1
                | Reg::S2
                | Reg::S3
                | Reg::S4
                | Reg::S5
                | Reg::S6
                | Reg::S7
                | Reg::S8
                | Reg::S9
                | Reg::S10
                | Reg::S11
        )
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abi_name())
    }
}

/// Error returned when parsing a register name fails.
///
/// Produced by [`Reg::from_str`]; the offending name is carried for
/// diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegError(pub String);

impl fmt::Display for ParseRegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown register name `{}`", self.0)
    }
}

impl std::error::Error for ParseRegError {}

impl FromStr for Reg {
    type Err = ParseRegError;

    /// Parses either an ABI name (`a0`, `t3`, `fp`) or a numeric name
    /// (`x0`–`x31`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "fp" {
            return Ok(Reg::S0);
        }
        if let Some(rest) = s.strip_prefix('x') {
            if let Ok(n) = rest.parse::<u8>() {
                if let Some(r) = Reg::from_number(n) {
                    return Ok(r);
                }
            }
        }
        Reg::ALL
            .iter()
            .copied()
            .find(|r| r.abi_name() == s)
            .ok_or_else(|| ParseRegError(s.to_owned()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_round_trip() {
        for (i, r) in Reg::ALL.iter().enumerate() {
            assert_eq!(r.number() as usize, i);
            assert_eq!(Reg::from_number(i as u8), Some(*r));
        }
        assert_eq!(Reg::from_number(32), None);
        assert_eq!(Reg::from_number(255), None);
    }

    #[test]
    fn abi_names_round_trip() {
        for r in Reg::ALL {
            assert_eq!(r.abi_name().parse::<Reg>().unwrap(), r);
        }
    }

    #[test]
    fn numeric_names_parse() {
        assert_eq!("x0".parse::<Reg>().unwrap(), Reg::Zero);
        assert_eq!("x31".parse::<Reg>().unwrap(), Reg::T6);
        assert!("x32".parse::<Reg>().is_err());
        assert!("q7".parse::<Reg>().is_err());
    }

    #[test]
    fn fp_aliases_s0() {
        assert_eq!("fp".parse::<Reg>().unwrap(), Reg::S0);
    }

    #[test]
    fn callee_saved_classification() {
        for r in Reg::CALLEE_SAVED {
            assert!(r.is_callee_saved());
        }
        for r in Reg::CALLER_SAVED {
            assert!(!r.is_callee_saved());
        }
        assert!(!Reg::Zero.is_callee_saved());
    }

    #[test]
    fn display_matches_abi_name() {
        assert_eq!(Reg::A0.to_string(), "a0");
        assert_eq!(format!("{}", Reg::Zero), "zero");
    }
}
