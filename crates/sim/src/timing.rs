//! Rocket-style in-order pipeline timing model.
//!
//! The paper evaluates on a 64-bit Rocket core: a 5-stage, in-order,
//! single-issue pipeline with full operand forwarding, a pipelined
//! multiplier, and (after the paper's modification) an extended
//! multiplier "XMUL" that executes both the base multiply instructions
//! and all custom ISE instructions with a 2-stage pipeline — one result
//! per cycle, results available to dependants one cycle later than an
//! ALU result (§3.3: "all custom instructions (and also `mul[hu]`)
//! execute in one cycle", with "a 2-stage pipeline ... one register
//! stage at input operands and another at the output result").
//!
//! [`PipelineModel`] reproduces exactly the hazards that matter for the
//! straight-line MPI kernels of the paper:
//!
//! * in-order, single-issue: one instruction per cycle, program order;
//! * operand forwarding: an ALU result is available to the next
//!   instruction with no bubble;
//! * multiplier latency: a dependant of a `mul`/`mulhu`/XMUL result
//!   issues ≥ [`TimingConfig::mul_latency`] cycles after the producer;
//! * load-use: a dependant of a load issues ≥
//!   [`TimingConfig::load_latency`] cycles after the load (cache hit);
//! * taken control flow pays [`TimingConfig::branch_taken_penalty`]
//!   flush cycles (Rocket resolves branches late; we model the common
//!   not-taken-predicted case of short kernels);
//! * divides block the pipeline for [`TimingConfig::div_latency`]
//!   cycles (iterative, unpipelined).

use crate::ext::ExecUnit;
use crate::inst::Inst;
use crate::reg::Reg;

/// Latency/penalty parameters of the pipeline model.
///
/// The defaults model the Rocket configuration of the paper; they are
/// plain data so experiments can explore other micro-architectures
/// (e.g. a 3-cycle multiplier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingConfig {
    /// Cycles until an ALU result can be consumed (1 = full forwarding).
    pub alu_latency: u64,
    /// Cycles until a multiplier (or XMUL) result can be consumed.
    pub mul_latency: u64,
    /// Cycles a divide occupies the pipeline (unpipelined).
    pub div_latency: u64,
    /// Cycles until a loaded value can be consumed (cache-hit load-use).
    pub load_latency: u64,
    /// Extra cycles after a taken branch or jump (fetch redirect).
    pub branch_taken_penalty: u64,
}

impl Default for TimingConfig {
    /// The Rocket-like configuration used for all paper experiments.
    fn default() -> Self {
        TimingConfig {
            alu_latency: 1,
            mul_latency: 2,
            div_latency: 33,
            load_latency: 2,
            branch_taken_penalty: 2,
        }
    }
}

/// Classification of one retired instruction, for statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// Single-cycle integer ALU operation (including `lui` etc.).
    Alu,
    /// Base-ISA multiply executed on the (X)MUL unit.
    Mul,
    /// Iterative divide/remainder.
    Div,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Branch or jump.
    Control,
    /// Custom instruction on the ALU.
    CustomAlu,
    /// Custom instruction on the XMUL unit.
    CustomXmul,
    /// `fence`/`ecall`/`ebreak`.
    System,
}

/// Per-class retirement counters and stall accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimingStats {
    /// Retired ALU instructions.
    pub alu: u64,
    /// Retired base multiplies.
    pub mul: u64,
    /// Retired divides.
    pub div: u64,
    /// Retired loads.
    pub load: u64,
    /// Retired stores.
    pub store: u64,
    /// Retired control-transfer instructions.
    pub control: u64,
    /// Retired custom instructions (ALU-class).
    pub custom_alu: u64,
    /// Retired custom instructions (XMUL-class).
    pub custom_xmul: u64,
    /// Retired system instructions.
    pub system: u64,
    /// Cycles lost to data-hazard interlocks.
    pub stall_cycles: u64,
    /// Cycles lost to control-flow redirects.
    pub flush_cycles: u64,
}

impl TimingStats {
    /// Total retired instructions.
    pub fn instret(&self) -> u64 {
        self.alu
            + self.mul
            + self.div
            + self.load
            + self.store
            + self.control
            + self.custom_alu
            + self.custom_xmul
            + self.system
    }

    /// Field-wise difference `self − earlier`.
    ///
    /// All counters are monotone, so subtracting a snapshot taken at
    /// the start of a measurement yields the per-run delta. This is how
    /// [`crate::machine::RunStats::timing`] is produced: every field of
    /// a [`crate::machine::RunStats`] covers exactly one run.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not an earlier snapshot
    /// of the same counter stream (a counter would underflow).
    pub fn delta(&self, earlier: &TimingStats) -> TimingStats {
        TimingStats {
            alu: self.alu - earlier.alu,
            mul: self.mul - earlier.mul,
            div: self.div - earlier.div,
            load: self.load - earlier.load,
            store: self.store - earlier.store,
            control: self.control - earlier.control,
            custom_alu: self.custom_alu - earlier.custom_alu,
            custom_xmul: self.custom_xmul - earlier.custom_xmul,
            system: self.system - earlier.system,
            stall_cycles: self.stall_cycles - earlier.stall_cycles,
            flush_cycles: self.flush_cycles - earlier.flush_cycles,
        }
    }
}

/// Timing-relevant facts about one instruction, computed once.
///
/// [`PipelineModel::retire`] re-derives these on every call (allocating
/// for the source-register list); a [`crate::Machine`] instead
/// pre-decodes its whole program into `PreDecoded` records at load time
/// and feeds them to [`PipelineModel::retire_pre`], which keeps the
/// per-instruction hot path free of allocation and lookup work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreDecoded {
    /// Timing class of the instruction.
    pub class: InstClass,
    /// Register numbers of the non-`x0` sources (first `nuses` entries).
    pub uses: [u8; 3],
    /// Number of live entries in `uses`.
    pub nuses: u8,
    /// Destination register number; 0 when the instruction writes no
    /// register (or writes `x0`, which never creates a hazard).
    pub def: u8,
}

impl PreDecoded {
    /// Pre-decodes one instruction. `custom_unit` must be provided for
    /// [`Inst::Custom`] exactly as for [`PipelineModel::retire`].
    pub fn of(inst: &Inst, custom_unit: Option<ExecUnit>) -> Self {
        let mut uses = [0u8; 3];
        let mut nuses = 0u8;
        for src in inst.uses() {
            if src != Reg::Zero {
                uses[nuses as usize] = src.number();
                nuses += 1;
            }
        }
        let def = match inst.def() {
            Some(rd) => rd.number(),
            None => 0,
        };
        PreDecoded {
            class: classify(inst, custom_unit),
            uses,
            nuses,
            def,
        }
    }
}

/// The in-order issue model. Feed it each retired instruction via
/// [`PipelineModel::retire`]; read the elapsed time from
/// [`PipelineModel::cycles`].
#[derive(Debug, Clone)]
pub struct PipelineModel {
    config: TimingConfig,
    /// Cycle at which each register's newest value becomes forwardable.
    ready: [u64; 32],
    /// Earliest cycle the next instruction may issue.
    next_issue: u64,
    stats: TimingStats,
}

impl PipelineModel {
    /// Creates a model with the given configuration.
    pub fn new(config: TimingConfig) -> Self {
        PipelineModel {
            config,
            ready: [0; 32],
            next_issue: 0,
            stats: TimingStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TimingConfig {
        &self.config
    }

    /// Elapsed cycles so far (the cycle at which the next instruction
    /// could issue).
    pub fn cycles(&self) -> u64 {
        self.next_issue
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &TimingStats {
        &self.stats
    }

    /// Resets time and register scoreboard, keeping the configuration.
    pub fn reset(&mut self) {
        self.ready = [0; 32];
        self.next_issue = 0;
        self.stats = TimingStats::default();
    }

    /// Accounts for one retired instruction.
    ///
    /// `taken` reports whether a control instruction redirected fetch
    /// (ignored for non-control instructions). `custom_unit` must be
    /// provided for [`Inst::Custom`] and gives its functional unit.
    pub fn retire(&mut self, inst: &Inst, taken: bool, custom_unit: Option<ExecUnit>) {
        self.retire_pre(&PreDecoded::of(inst, custom_unit), taken);
    }

    /// Accounts for one retired, pre-decoded instruction.
    ///
    /// Identical semantics to [`PipelineModel::retire`] but without the
    /// per-call decode/allocation work — the hot path of
    /// [`crate::Machine::run`].
    #[inline]
    pub fn retire_pre(&mut self, pre: &PreDecoded, taken: bool) {
        let class = pre.class;
        let cfg = self.config;

        // Issue once all sources are forwardable.
        let mut issue = self.next_issue;
        for &src in &pre.uses[..pre.nuses as usize] {
            issue = issue.max(self.ready[src as usize]);
        }
        self.stats.stall_cycles += issue - self.next_issue;

        // Result availability.
        let latency = match class {
            InstClass::Alu | InstClass::CustomAlu | InstClass::Control => cfg.alu_latency,
            InstClass::Mul | InstClass::CustomXmul => cfg.mul_latency,
            InstClass::Div => cfg.div_latency,
            InstClass::Load => cfg.load_latency,
            InstClass::Store | InstClass::System => cfg.alu_latency,
        };
        // `def == 0` covers both "no destination" and "writes x0": slot
        // 0 is written unconditionally (branch-free) but never read,
        // because pre-decoded source lists exclude x0.
        self.ready[pre.def as usize] = issue + latency;

        // Next issue slot.
        let mut next = issue + 1;
        if class == InstClass::Div {
            next = issue + cfg.div_latency; // divider blocks
        }
        if class == InstClass::Control && taken {
            next += cfg.branch_taken_penalty;
            self.stats.flush_cycles += cfg.branch_taken_penalty;
        }
        self.next_issue = next;

        match class {
            InstClass::Alu => self.stats.alu += 1,
            InstClass::Mul => self.stats.mul += 1,
            InstClass::Div => self.stats.div += 1,
            InstClass::Load => self.stats.load += 1,
            InstClass::Store => self.stats.store += 1,
            InstClass::Control => self.stats.control += 1,
            InstClass::CustomAlu => self.stats.custom_alu += 1,
            InstClass::CustomXmul => self.stats.custom_xmul += 1,
            InstClass::System => self.stats.system += 1,
        }
    }
}

/// Classifies an instruction into its timing class.
pub fn classify(inst: &Inst, custom_unit: Option<ExecUnit>) -> InstClass {
    match inst {
        Inst::Op { op, .. } if op.is_multiply() => InstClass::Mul,
        Inst::Op { op, .. } if op.is_divide() => InstClass::Div,
        Inst::Op { .. } | Inst::OpImm { .. } | Inst::Lui { .. } | Inst::Auipc { .. } => {
            InstClass::Alu
        }
        Inst::Load { .. } => InstClass::Load,
        Inst::Store { .. } => InstClass::Store,
        Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. } => InstClass::Control,
        Inst::Fence | Inst::Ecall | Inst::Ebreak => InstClass::System,
        Inst::Custom { .. } => match custom_unit {
            Some(ExecUnit::Xmul) => InstClass::CustomXmul,
            _ => InstClass::CustomAlu,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, LoadOp};

    fn op(op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> Inst {
        Inst::Op { op, rd, rs1, rs2 }
    }

    #[test]
    fn independent_alu_ops_are_one_cycle_each() {
        let mut p = PipelineModel::new(TimingConfig::default());
        for _ in 0..10 {
            p.retire(&op(AluOp::Add, Reg::T0, Reg::A0, Reg::A1), false, None);
        }
        assert_eq!(p.cycles(), 10);
        assert_eq!(p.stats().stall_cycles, 0);
    }

    #[test]
    fn dependent_alu_ops_forward_without_stall() {
        let mut p = PipelineModel::new(TimingConfig::default());
        p.retire(&op(AluOp::Add, Reg::T0, Reg::A0, Reg::A1), false, None);
        p.retire(&op(AluOp::Add, Reg::T1, Reg::T0, Reg::A1), false, None);
        assert_eq!(p.cycles(), 2);
        assert_eq!(p.stats().stall_cycles, 0);
    }

    #[test]
    fn mul_consumer_stalls_one_cycle() {
        let mut p = PipelineModel::new(TimingConfig::default());
        p.retire(&op(AluOp::Mulhu, Reg::T0, Reg::A0, Reg::A1), false, None);
        p.retire(&op(AluOp::Add, Reg::T1, Reg::T0, Reg::A1), false, None);
        // mul issues at 0, result ready at 2; add issues at 2.
        assert_eq!(p.cycles(), 3);
        assert_eq!(p.stats().stall_cycles, 1);
    }

    #[test]
    fn mul_followed_by_independent_op_has_no_stall() {
        let mut p = PipelineModel::new(TimingConfig::default());
        p.retire(&op(AluOp::Mulhu, Reg::T0, Reg::A0, Reg::A1), false, None);
        p.retire(&op(AluOp::Add, Reg::T1, Reg::A2, Reg::A3), false, None);
        p.retire(&op(AluOp::Add, Reg::T2, Reg::T0, Reg::A1), false, None);
        // t0 ready at 2, consumed by the instruction issuing at 2 anyway.
        assert_eq!(p.cycles(), 3);
        assert_eq!(p.stats().stall_cycles, 0);
    }

    #[test]
    fn back_to_back_muls_pipeline() {
        let mut p = PipelineModel::new(TimingConfig::default());
        for _ in 0..8 {
            p.retire(&op(AluOp::Mulhu, Reg::T0, Reg::A0, Reg::A1), false, None);
        }
        // Pipelined: one per cycle even though each writes t0.
        // (In-order issue never reads t0, so no hazard.)
        assert_eq!(p.cycles(), 8);
    }

    #[test]
    fn load_use_interlock() {
        let mut p = PipelineModel::new(TimingConfig::default());
        p.retire(
            &Inst::Load {
                op: LoadOp::Ld,
                rd: Reg::T0,
                rs1: Reg::A0,
                offset: 0,
            },
            false,
            None,
        );
        p.retire(&op(AluOp::Add, Reg::T1, Reg::T0, Reg::A1), false, None);
        assert_eq!(p.cycles(), 3);
        assert_eq!(p.stats().stall_cycles, 1);
    }

    #[test]
    fn taken_branch_pays_flush() {
        let mut p = PipelineModel::new(TimingConfig::default());
        let b = Inst::Branch {
            op: crate::inst::BranchOp::Bne,
            rs1: Reg::A0,
            rs2: Reg::Zero,
            offset: -8,
        };
        p.retire(&b, true, None);
        assert_eq!(p.cycles(), 1 + 2);
        p.retire(&b, false, None);
        assert_eq!(p.cycles(), 4); // not-taken costs 1
        assert_eq!(p.stats().flush_cycles, 2);
    }

    #[test]
    fn divide_blocks_pipeline() {
        let mut p = PipelineModel::new(TimingConfig::default());
        p.retire(&op(AluOp::Divu, Reg::T0, Reg::A0, Reg::A1), false, None);
        p.retire(&op(AluOp::Add, Reg::T1, Reg::A2, Reg::A3), false, None);
        assert_eq!(p.cycles(), 33 + 1);
    }

    #[test]
    fn custom_xmul_has_mul_latency() {
        let mut p = PipelineModel::new(TimingConfig::default());
        let c = Inst::Custom {
            id: crate::ext::CustomId(0),
            rd: Reg::T0,
            rs1: Reg::A0,
            rs2: Reg::A1,
            rs3: Reg::A2,
            imm: 0,
        };
        p.retire(&c, false, Some(ExecUnit::Xmul));
        p.retire(&op(AluOp::Add, Reg::T1, Reg::T0, Reg::A1), false, None);
        assert_eq!(p.cycles(), 3);
        assert_eq!(p.stats().custom_xmul, 1);
    }

    #[test]
    fn x0_never_creates_hazards() {
        let mut p = PipelineModel::new(TimingConfig::default());
        p.retire(&op(AluOp::Mulhu, Reg::Zero, Reg::A0, Reg::A1), false, None);
        p.retire(&op(AluOp::Add, Reg::T0, Reg::Zero, Reg::A1), false, None);
        assert_eq!(p.cycles(), 2);
        assert_eq!(p.stats().stall_cycles, 0);
    }

    #[test]
    fn instret_totals() {
        let mut p = PipelineModel::new(TimingConfig::default());
        p.retire(&op(AluOp::Add, Reg::T0, Reg::A0, Reg::A1), false, None);
        p.retire(&op(AluOp::Mulhu, Reg::T0, Reg::A0, Reg::A1), false, None);
        p.retire(&Inst::Ebreak, false, None);
        assert_eq!(p.stats().instret(), 3);
    }
}
