//! Execution tracing for debugging kernels.

use crate::cpu::Cpu;
use crate::inst::Inst;
use crate::reg::Reg;

/// One retired instruction with its architectural effects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// PC the instruction executed at.
    pub pc: u64,
    /// The instruction.
    pub inst: Inst,
    /// Destination register and the value written, if any.
    pub wrote: Option<(Reg, u64)>,
}

/// Records retired instructions up to a bounded capacity.
///
/// Attach with [`crate::Machine::set_tracer`]; recover with
/// [`crate::Machine::take_tracer`]. Tracing is off by default because
/// MPI kernels retire hundreds of instructions per call.
///
/// # Examples
///
/// ```
/// use mpise_sim::{Assembler, Machine, Reg, trace::Tracer};
/// let mut a = Assembler::new();
/// a.li(Reg::T0, 7);
/// a.ebreak();
/// let mut m = Machine::new();
/// m.load_program(&a.finish());
/// m.set_tracer(Some(Tracer::new(16)));
/// m.run().unwrap();
/// let t = m.take_tracer().unwrap();
/// assert_eq!(t.entries()[0].wrote, Some((Reg::T0, 7)));
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    entries: Vec<TraceEntry>,
    capacity: usize,
    /// Total instructions seen (may exceed the retained capacity).
    pub total: u64,
}

impl Tracer {
    /// Creates a tracer retaining at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            entries: Vec::new(),
            capacity,
            total: 0,
        }
    }

    /// Records one retired instruction (called by the machine).
    pub fn record(&mut self, pc: u64, inst: &Inst, cpu_after: &Cpu) {
        self.total += 1;
        if self.entries.len() < self.capacity {
            let wrote = inst.def().map(|rd| (rd, cpu_after.read_reg(rd)));
            self.entries.push(TraceEntry {
                pc,
                inst: *inst,
                wrote,
            });
        }
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Renders the trace as text, one line per instruction.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            match e.wrote {
                Some((rd, v)) => {
                    out.push_str(&format!(
                        "{:#8x}: {:32} {rd} = {v:#018x}\n",
                        e.pc,
                        e.inst.to_string()
                    ));
                }
                None => out.push_str(&format!("{:#8x}: {}\n", e.pc, e.inst)),
            }
        }
        if self.total > self.entries.len() as u64 {
            out.push_str(&format!(
                "... {} more instructions not retained\n",
                self.total - self.entries.len() as u64
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::machine::Machine;

    #[test]
    fn capacity_is_bounded() {
        let mut a = Assembler::new();
        for _ in 0..10 {
            a.addi(Reg::T0, Reg::T0, 1);
        }
        a.ebreak();
        let mut m = Machine::new();
        m.load_program(&a.finish());
        m.set_tracer(Some(Tracer::new(3)));
        m.run().unwrap();
        let t = m.take_tracer().unwrap();
        assert_eq!(t.entries().len(), 3);
        assert_eq!(t.total, 11);
        assert!(t.render().contains("more instructions"));
    }

    #[test]
    fn take_tracer_resets_the_machine() {
        let mut a = Assembler::new();
        a.addi(Reg::T0, Reg::T0, 1);
        a.ebreak();
        let mut m = Machine::new();
        m.load_program(&a.finish());
        m.set_tracer(Some(Tracer::new(8)));
        m.run().unwrap();
        let t = m.take_tracer().unwrap();
        assert_eq!(t.total, 2);
        // The machine no longer holds a tracer: taking again yields
        // nothing, and a re-run records nothing.
        assert!(m.take_tracer().is_none());
        m.cpu.pc = m.prog_base();
        m.run().unwrap();
        assert!(m.take_tracer().is_none());
        // A freshly attached tracer starts from zero rather than
        // accumulating onto the old run.
        m.set_tracer(Some(Tracer::new(8)));
        m.cpu.pc = m.prog_base();
        m.run().unwrap();
        assert_eq!(m.take_tracer().unwrap().total, 2);
    }

    #[test]
    fn records_writes() {
        let mut a = Assembler::new();
        a.li(Reg::A0, 5);
        a.sd(Reg::A0, 0, Reg::Sp); // no def
        a.ebreak();
        let mut m = Machine::new();
        m.cpu.write_reg(Reg::Sp, crate::machine::DATA_BASE + 64);
        m.load_program(&a.finish());
        m.set_tracer(Some(Tracer::new(8)));
        m.run().unwrap();
        let t = m.take_tracer().unwrap();
        assert_eq!(t.entries()[0].wrote, Some((Reg::A0, 5)));
        assert_eq!(t.entries()[1].wrote, None);
    }
}
