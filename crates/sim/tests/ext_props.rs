//! Property tests for the custom-instruction binary encoding
//! ([`mpise_sim::ext::encode_custom`] / `decode_custom_operands`):
//! operand round-trips and field placement across *all*
//! [`CustomFormat`]s, with randomly drawn opcodes and funct fields —
//! not just the two encodings the paper ships.

use mpise_sim::ext::{decode_custom_operands, encode_custom, CustomFormat};
use mpise_sim::Reg;
use proptest::prelude::*;

fn reg(n: u8) -> Reg {
    Reg::from_number(n & 0x1f).expect("5-bit register number")
}

proptest! {
    /// R4: all five operand fields and the three encoding constants
    /// survive an encode→decode round-trip; `imm` is structurally zero.
    #[test]
    fn r4_round_trips(
        opcode in 0u8..128,
        funct3 in 0u8..8,
        funct2 in 0u8..4,
        rd in 0u8..32,
        rs1 in 0u8..32,
        rs2 in 0u8..32,
        rs3 in 0u8..32,
    ) {
        let format = CustomFormat::R4 { opcode, funct3, funct2 };
        let raw = encode_custom(format, reg(rd), reg(rs1), reg(rs2), reg(rs3), 0);

        prop_assert_eq!((raw & 0x7f) as u8, opcode);
        prop_assert_eq!(((raw >> 12) & 0x7) as u8, funct3);
        prop_assert_eq!(((raw >> 25) & 0x3) as u8, funct2);

        let decoded = decode_custom_operands(format, raw);
        prop_assert_eq!(decoded, (reg(rd), reg(rs1), reg(rs2), reg(rs3), 0));
    }

    /// RShamt: rd/rs1/rs2 and the 6-bit shift amount round-trip; rs3
    /// decodes as the structural zero register; bit 31 is pinned.
    #[test]
    fn rshamt_round_trips(
        opcode in 0u8..128,
        funct3 in 0u8..8,
        bit31 in 0u8..2,
        rd in 0u8..32,
        rs1 in 0u8..32,
        rs2 in 0u8..32,
        imm in 0u8..64,
    ) {
        let bit31 = bit31 == 1;
        let format = CustomFormat::RShamt { opcode, funct3, bit31 };
        // rs3 is ignored by the RShamt encoder; pass a junk register to
        // prove it cannot leak into the encoding.
        let raw = encode_custom(format, reg(rd), reg(rs1), reg(rs2), Reg::T6, imm);

        prop_assert_eq!((raw & 0x7f) as u8, opcode);
        prop_assert_eq!(((raw >> 12) & 0x7) as u8, funct3);
        prop_assert_eq!(raw >> 31 == 1, bit31);

        let decoded = decode_custom_operands(format, raw);
        prop_assert_eq!(decoded, (reg(rd), reg(rs1), reg(rs2), Reg::Zero, imm));
    }

    /// The RShamt immediate field is masked to 6 bits on encode, so an
    /// oversized shift amount can never corrupt rs2 or bit 31.
    #[test]
    fn rshamt_masks_oversized_shift(imm in 0u8..=255, rs2 in 0u8..32) {
        let format = CustomFormat::RShamt { opcode: 0b0101011, funct3: 0b111, bit31: true };
        let raw = encode_custom(format, Reg::A0, Reg::A1, reg(rs2), Reg::Zero, imm);
        let (_, _, rs2_out, _, imm_out) = decode_custom_operands(format, raw);
        prop_assert_eq!(rs2_out, reg(rs2));
        prop_assert_eq!(imm_out, imm & 0x3f);
        prop_assert_eq!(raw >> 31, 1);
    }

    /// Distinct operand tuples encode to distinct words under one
    /// format (the operand fields are injective).
    #[test]
    fn encoding_is_injective_in_operands(
        a in (0u8..32, 0u8..32, 0u8..32, 0u8..32),
        b in (0u8..32, 0u8..32, 0u8..32, 0u8..32),
    ) {
        let format = CustomFormat::R4 { opcode: 0b1111011, funct3: 0b111, funct2: 0b01 };
        let enc = |t: (u8, u8, u8, u8)| {
            encode_custom(format, reg(t.0), reg(t.1), reg(t.2), reg(t.3), 0)
        };
        if a != b {
            prop_assert_ne!(enc(a), enc(b));
        } else {
            prop_assert_eq!(enc(a), enc(b));
        }
    }
}
